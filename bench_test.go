// Benchmarks regenerating the paper's tables and figures (one per table and
// figure, per DESIGN.md's experiment index), plus ablations and predictor
// micro-benchmarks.
//
// Each experiment benchmark runs its full pipeline at a reduced instruction
// budget so `go test -bench=.` stays tractable; custom metrics report the
// headline numbers (mean misprediction %, harmonic-mean IPC). The
// full-resolution results in EXPERIMENTS.md come from `cmd/reproduce`,
// which runs the same code at 8M instructions per benchmark.
package branchsim_test

import (
	"testing"

	"branchsim"
)

// benchOpts scales experiments down for benchmarking.
var benchOpts = branchsim.ExperimentOptions{Insts: 400_000, Warmup: 100_000}

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) *branchsim.Experiment {
	b.Helper()
	var out *branchsim.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		out, err = branchsim.RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// reportCell publishes one result cell as a benchmark metric.
func reportCell(b *testing.B, out *branchsim.Experiment, tablePrefix string, row, col int, metric string) {
	b.Helper()
	tab := out.Table(tablePrefix)
	if tab == nil {
		b.Fatalf("table %q missing", tablePrefix)
	}
	if row < 0 {
		row = len(tab.Rows) + row
	}
	b.ReportMetric(tab.Values[row][col], metric)
}

// BenchmarkFigure1 regenerates Figure 1: mean misprediction vs budget for
// gshare, bi-mode, multi-component and perceptron (2KB-512KB).
func BenchmarkFigure1(b *testing.B) {
	out := runExperiment(b, "figure1")
	reportCell(b, out, "Figure 1", -1, 3, "perceptron@512K-misp%")
	reportCell(b, out, "Figure 1", -1, 0, "gshare@512K-misp%")
}

// BenchmarkTable2 regenerates Table 2: predictor access latencies from the
// delay model.
func BenchmarkTable2(b *testing.B) {
	out := runExperiment(b, "table2")
	reportCell(b, out, "Table 2", -1, 2, "perceptron@512K-cycles")
}

// BenchmarkFigure2 regenerates Figure 2: ideal vs realistic IPC for the
// perceptron and multi-component predictors.
func BenchmarkFigure2(b *testing.B) {
	out := runExperiment(b, "figure2")
	reportCell(b, out, "Figure 2 (ideal)", -1, 0, "perceptron@512K-ideal-IPC")
	reportCell(b, out, "Figure 2 (realistic)", -1, 0, "perceptron@512K-real-IPC")
}

// BenchmarkFigure5 regenerates Figure 5: mean misprediction for the complex
// predictors and gshare.fast, 16KB-512KB.
func BenchmarkFigure5(b *testing.B) {
	out := runExperiment(b, "figure5")
	reportCell(b, out, "Figure 5", -1, 3, "gshare.fast@512K-misp%")
	reportCell(b, out, "Figure 5", -1, 2, "perceptron@512K-misp%")
}

// BenchmarkFigure6 regenerates Figure 6: per-benchmark misprediction rates
// at the 53-64KB design point.
func BenchmarkFigure6(b *testing.B) {
	out := runExperiment(b, "figure6")
	reportCell(b, out, "Figure 6", -1, 3, "gshare.fast-mean-misp%")
}

// BenchmarkFigure7 regenerates Figure 7: harmonic-mean IPC with 1-cycle and
// overriding prediction across budgets.
func BenchmarkFigure7(b *testing.B) {
	out := runExperiment(b, "figure7")
	reportCell(b, out, "Figure 7 (right)", -1, 3, "gshare.fast@512K-IPC")
	reportCell(b, out, "Figure 7 (right)", -1, 2, "perceptron@512K-IPC")
}

// BenchmarkFigure8 regenerates Figure 8: per-benchmark IPC at the 53-64KB
// design point under overriding timing.
func BenchmarkFigure8(b *testing.B) {
	out := runExperiment(b, "figure8")
	reportCell(b, out, "Figure 8", -1, 3, "gshare.fast-hmean-IPC")
}

// BenchmarkDelayedUpdate regenerates the §3.2 delayed-PHT-update ablation.
func BenchmarkDelayedUpdate(b *testing.B) {
	out := runExperiment(b, "delayedupdate")
	reportCell(b, out, "Delayed PHT update", 0, 0, "lag0-misp%")
	reportCell(b, out, "Delayed PHT update", 2, 0, "lag64-misp%")
}

// BenchmarkOverrideRate regenerates the §4.5 override-rate accounting.
func BenchmarkOverrideRate(b *testing.B) {
	out := runExperiment(b, "overriderate")
	reportCell(b, out, "Override rates", -1, 2, "perceptron-mean-override%")
}

// BenchmarkMultiBranch regenerates the §3.3.1 multiple-branch experiment.
func BenchmarkMultiBranch(b *testing.B) {
	out := runExperiment(b, "multibranch")
	reportCell(b, out, "Multiple-branch", 0, 0, "b1-misp%")
	reportCell(b, out, "Multiple-branch", 3, 0, "b8-misp%")
}

// BenchmarkBufferSweep runs the PHT-buffer-split ablation.
func BenchmarkBufferSweep(b *testing.B) {
	runExperiment(b, "buffersweep")
}

// BenchmarkQuickSweep runs the quick-predictor-size ablation.
func BenchmarkQuickSweep(b *testing.B) {
	runExperiment(b, "quicksweep")
}

// BenchmarkDepthSweep runs the pipeline-depth ablation.
func BenchmarkDepthSweep(b *testing.B) {
	out := runExperiment(b, "depthsweep")
	reportCell(b, out, "Pipeline depth", -1, 0, "depth40-gshare.fast-IPC")
}

// --- Predictor micro-benchmarks: cost per predict+update. ---

func benchPredictor(b *testing.B, p branchsim.Predictor) {
	b.Helper()
	bench, _ := branchsim.BenchmarkByName("gzip")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	n := 0
	for n < b.N {
		if !w.Next(&inst) {
			b.Fatal("stream ended")
		}
		if !inst.IsBranch() {
			continue
		}
		pred := p.Predict(inst.PC)
		p.Update(inst.PC, inst.Taken)
		_ = pred
		n++
	}
}

func BenchmarkPredictGShare(b *testing.B) {
	benchPredictor(b, branchsim.NewGShare(64<<10))
}

func BenchmarkPredictGShareFast(b *testing.B) {
	benchPredictor(b, branchsim.NewGShareFast(64<<10))
}

func BenchmarkPredictPerceptron(b *testing.B) {
	benchPredictor(b, branchsim.NewPerceptron(64<<10))
}

func BenchmarkPredictMultiComponent(b *testing.B) {
	benchPredictor(b, branchsim.NewMultiComponent(64<<10))
}

func BenchmarkPredict2BcGskew(b *testing.B) {
	benchPredictor(b, branchsim.NewGSkew2Bc(64<<10))
}

// BenchmarkWorkloadGeneration measures raw trace-generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(&inst)
	}
}

// --- Record/replay trace-layer benchmarks (scripts/bench.sh →
// BENCH_trace.json). GenerateStream vs ReplayStream is the per-instruction
// comparison; the AccuracySweep pair is the grid-level one the tentpole
// optimizes: one benchmark stream consumed by several predictor cells,
// either regenerated per cell or recorded once and replayed. ---

// BenchmarkGenerateStream measures per-instruction cost of live synthesis.
func BenchmarkGenerateStream(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(&inst)
	}
}

// BenchmarkReplayStream measures per-instruction cost of replaying a
// recording of the same stream.
func BenchmarkReplayStream(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, 1_000_000)
	cur := rec.Replay()
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cur.Next(&inst) {
			cur = rec.Replay()
			cur.Next(&inst)
		}
	}
}

// sweepKinds and sweepInsts shape the sweep benchmarks: six predictor
// cells over one benchmark, the per-benchmark slice of a Figure 1/5 grid.
var sweepKinds = []string{"gshare", "bimode", "local", "2bcgskew", "perceptron", "gshare.fast"}

const sweepInsts = 200_000

func sweepCell(b *testing.B, kind string, src branchsim.Source) {
	b.Helper()
	p, err := branchsim.NewPredictorByName(kind, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	res := branchsim.RunAccuracy(p, src, branchsim.AccuracyOptions{MaxInsts: sweepInsts})
	if res.Branches == 0 {
		b.Fatal("degenerate sweep cell: no branches")
	}
}

// BenchmarkAccuracySweepRegenerate is the pre-refactor data path: every
// predictor cell re-synthesizes the benchmark stream.
func BenchmarkAccuracySweepRegenerate(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, branchsim.NewWorkload(bench))
		}
	}
}

// BenchmarkAccuracySweepReplay is the record/replay data path as the
// experiment grid actually runs it: the stream is recorded once in setup —
// the process-wide trace store records each benchmark once per process and
// replays it for every (predictor, budget) cell, so recording amortizes to
// ~zero across a real grid's dozens of cells — and every cell replays it
// through the batched branch fast path (the replay cursor implements
// BranchSource). scripts/bench.sh compares this against the PR 2 baseline
// and against the SlowPath twin below in BENCH_branchreplay.json.
func BenchmarkAccuracySweepReplay(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, rec.Replay())
		}
	}
}

// opaqueReplay hides every protocol but Source, forcing the accuracy
// simulator down the instruction-at-a-time path replays used before the
// branch fast path existed.
type opaqueReplay struct{ src branchsim.Source }

func (o opaqueReplay) Next(inst *branchsim.Inst) bool { return o.src.Next(inst) }
func (o opaqueReplay) Name() string                   { return o.src.Name() }

// BenchmarkAccuracySweepReplaySlowPath is the identical sweep forced down
// the old data path: same recording, same cells, but every replayed
// instruction is materialized and inspected. The ratio of this to
// BenchmarkAccuracySweepReplay is the sweep_speedup of
// BENCH_branchreplay.json.
func BenchmarkAccuracySweepReplaySlowPath(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, opaqueReplay{rec.Replay()})
		}
	}
}

// BenchmarkBranchBatchFill measures raw branch-index replay throughput:
// the cost per branch of filling BranchRec batches from a recording, with
// no predictor behind it. Compare BenchmarkReplayStream (per instruction)
// times the branch density to see what the index skips.
func BenchmarkBranchBatchFill(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, 1_000_000)
	cur := rec.Replay()
	var batch [branchsim.BatchLen]branchsim.BranchRec
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := cur.NextBranches(batch[:])
		if k == 0 {
			cur.Reset()
			continue
		}
		n += k
	}
}

// BenchmarkPipelineSimulation measures timing-simulator throughput
// (instructions per op).
func BenchmarkPipelineSimulation(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("eon")
	for i := 0; i < b.N; i++ {
		pred := branchsim.NewGShareFast(64 << 10)
		branchsim.RunTiming(branchsim.DefaultMachine(), pred, branchsim.NewWorkload(bench), 100_000, 0)
	}
}

// BenchmarkFastFamily runs the §5 pipelined-family study.
func BenchmarkFastFamily(b *testing.B) {
	out := runExperiment(b, "fastfamily")
	reportCell(b, out, "Pipelined predictor family", 1, 1, "bimode.fast-IPC")
}

func BenchmarkPredictBiModeFast(b *testing.B) {
	benchPredictor(b, branchsim.NewBiModeFast(64<<10))
}

func BenchmarkPredictYAGS(b *testing.B) {
	benchPredictor(b, branchsim.NewYAGS(64<<10))
}

// BenchmarkRecovery runs the §3.2 checkpointing-value ablation.
func BenchmarkRecovery(b *testing.B) {
	out := runExperiment(b, "recovery")
	reportCell(b, out, "Misprediction recovery", -1, 0, "ckpt@512K-IPC")
	reportCell(b, out, "Misprediction recovery", -1, 1, "nockpt@512K-IPC")
}
