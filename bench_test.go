// Benchmarks regenerating the paper's tables and figures (one per table and
// figure, per DESIGN.md's experiment index), plus ablations and predictor
// micro-benchmarks.
//
// Each experiment benchmark runs its full pipeline at a reduced instruction
// budget so `go test -bench=.` stays tractable; custom metrics report the
// headline numbers (mean misprediction %, harmonic-mean IPC). The
// full-resolution results in EXPERIMENTS.md come from `cmd/reproduce`,
// which runs the same code at 8M instructions per benchmark.
package branchsim_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"branchsim"
)

// benchOpts scales experiments down for benchmarking.
var benchOpts = branchsim.ExperimentOptions{Insts: 400_000, Warmup: 100_000}

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) *branchsim.Experiment {
	b.Helper()
	var out *branchsim.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		out, err = branchsim.RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// reportCell publishes one result cell as a benchmark metric.
func reportCell(b *testing.B, out *branchsim.Experiment, tablePrefix string, row, col int, metric string) {
	b.Helper()
	tab := out.Table(tablePrefix)
	if tab == nil {
		b.Fatalf("table %q missing", tablePrefix)
	}
	if row < 0 {
		row = len(tab.Rows) + row
	}
	b.ReportMetric(tab.Values[row][col], metric)
}

// BenchmarkFigure1 regenerates Figure 1: mean misprediction vs budget for
// gshare, bi-mode, multi-component and perceptron (2KB-512KB).
func BenchmarkFigure1(b *testing.B) {
	out := runExperiment(b, "figure1")
	reportCell(b, out, "Figure 1", -1, 3, "perceptron@512K-misp%")
	reportCell(b, out, "Figure 1", -1, 0, "gshare@512K-misp%")
}

// BenchmarkTable2 regenerates Table 2: predictor access latencies from the
// delay model.
func BenchmarkTable2(b *testing.B) {
	out := runExperiment(b, "table2")
	reportCell(b, out, "Table 2", -1, 2, "perceptron@512K-cycles")
}

// BenchmarkFigure2 regenerates Figure 2: ideal vs realistic IPC for the
// perceptron and multi-component predictors.
func BenchmarkFigure2(b *testing.B) {
	out := runExperiment(b, "figure2")
	reportCell(b, out, "Figure 2 (ideal)", -1, 0, "perceptron@512K-ideal-IPC")
	reportCell(b, out, "Figure 2 (realistic)", -1, 0, "perceptron@512K-real-IPC")
}

// BenchmarkFigure5 regenerates Figure 5: mean misprediction for the complex
// predictors and gshare.fast, 16KB-512KB.
func BenchmarkFigure5(b *testing.B) {
	out := runExperiment(b, "figure5")
	reportCell(b, out, "Figure 5", -1, 3, "gshare.fast@512K-misp%")
	reportCell(b, out, "Figure 5", -1, 2, "perceptron@512K-misp%")
}

// BenchmarkFigure6 regenerates Figure 6: per-benchmark misprediction rates
// at the 53-64KB design point.
func BenchmarkFigure6(b *testing.B) {
	out := runExperiment(b, "figure6")
	reportCell(b, out, "Figure 6", -1, 3, "gshare.fast-mean-misp%")
}

// BenchmarkFigure7 regenerates Figure 7: harmonic-mean IPC with 1-cycle and
// overriding prediction across budgets.
func BenchmarkFigure7(b *testing.B) {
	out := runExperiment(b, "figure7")
	reportCell(b, out, "Figure 7 (right)", -1, 3, "gshare.fast@512K-IPC")
	reportCell(b, out, "Figure 7 (right)", -1, 2, "perceptron@512K-IPC")
}

// BenchmarkFigure8 regenerates Figure 8: per-benchmark IPC at the 53-64KB
// design point under overriding timing.
func BenchmarkFigure8(b *testing.B) {
	out := runExperiment(b, "figure8")
	reportCell(b, out, "Figure 8", -1, 3, "gshare.fast-hmean-IPC")
}

// BenchmarkDelayedUpdate regenerates the §3.2 delayed-PHT-update ablation.
func BenchmarkDelayedUpdate(b *testing.B) {
	out := runExperiment(b, "delayedupdate")
	reportCell(b, out, "Delayed PHT update", 0, 0, "lag0-misp%")
	reportCell(b, out, "Delayed PHT update", 2, 0, "lag64-misp%")
}

// BenchmarkOverrideRate regenerates the §4.5 override-rate accounting.
func BenchmarkOverrideRate(b *testing.B) {
	out := runExperiment(b, "overriderate")
	reportCell(b, out, "Override rates", -1, 2, "perceptron-mean-override%")
}

// BenchmarkMultiBranch regenerates the §3.3.1 multiple-branch experiment.
func BenchmarkMultiBranch(b *testing.B) {
	out := runExperiment(b, "multibranch")
	reportCell(b, out, "Multiple-branch", 0, 0, "b1-misp%")
	reportCell(b, out, "Multiple-branch", 3, 0, "b8-misp%")
}

// BenchmarkBufferSweep runs the PHT-buffer-split ablation.
func BenchmarkBufferSweep(b *testing.B) {
	runExperiment(b, "buffersweep")
}

// BenchmarkQuickSweep runs the quick-predictor-size ablation.
func BenchmarkQuickSweep(b *testing.B) {
	runExperiment(b, "quicksweep")
}

// BenchmarkDepthSweep runs the pipeline-depth ablation.
func BenchmarkDepthSweep(b *testing.B) {
	out := runExperiment(b, "depthsweep")
	reportCell(b, out, "Pipeline depth", -1, 0, "depth40-gshare.fast-IPC")
}

// --- Predictor micro-benchmarks: cost per predict+update. ---

func benchPredictor(b *testing.B, p branchsim.Predictor) {
	b.Helper()
	bench, _ := branchsim.BenchmarkByName("gzip")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	n := 0
	for n < b.N {
		if !w.Next(&inst) {
			b.Fatal("stream ended")
		}
		if !inst.IsBranch() {
			continue
		}
		pred := p.Predict(inst.PC)
		p.Update(inst.PC, inst.Taken)
		_ = pred
		n++
	}
}

func BenchmarkPredictGShare(b *testing.B) {
	benchPredictor(b, branchsim.NewGShare(64<<10))
}

func BenchmarkPredictGShareFast(b *testing.B) {
	benchPredictor(b, branchsim.NewGShareFast(64<<10))
}

func BenchmarkPredictPerceptron(b *testing.B) {
	benchPredictor(b, branchsim.NewPerceptron(64<<10))
}

func BenchmarkPredictMultiComponent(b *testing.B) {
	benchPredictor(b, branchsim.NewMultiComponent(64<<10))
}

func BenchmarkPredict2BcGskew(b *testing.B) {
	benchPredictor(b, branchsim.NewGSkew2Bc(64<<10))
}

// BenchmarkWorkloadGeneration measures raw trace-generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(&inst)
	}
}

// --- Record/replay trace-layer benchmarks (scripts/bench.sh →
// BENCH_trace.json). GenerateStream vs ReplayStream is the per-instruction
// comparison; the AccuracySweep pair is the grid-level one the tentpole
// optimizes: one benchmark stream consumed by several predictor cells,
// either regenerated per cell or recorded once and replayed. ---

// BenchmarkGenerateStream measures per-instruction cost of live synthesis.
func BenchmarkGenerateStream(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	w := branchsim.NewWorkload(bench)
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(&inst)
	}
}

// BenchmarkReplayStream measures per-instruction cost of replaying a
// recording of the same stream.
func BenchmarkReplayStream(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, 1_000_000)
	cur := rec.Replay()
	var inst branchsim.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cur.Next(&inst) {
			cur = rec.Replay()
			cur.Next(&inst)
		}
	}
}

// sweepKinds and sweepInsts shape the sweep benchmarks: six predictor
// cells over one benchmark, the per-benchmark slice of a Figure 1/5 grid.
var sweepKinds = []string{"gshare", "bimode", "local", "2bcgskew", "perceptron", "gshare.fast"}

const sweepInsts = 200_000

func sweepCell(b *testing.B, kind string, src branchsim.Source) {
	b.Helper()
	p, err := branchsim.NewPredictorByName(kind, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	res := branchsim.RunAccuracy(p, src, branchsim.AccuracyOptions{MaxInsts: sweepInsts})
	if res.Branches == 0 {
		b.Fatal("degenerate sweep cell: no branches")
	}
}

// BenchmarkAccuracySweepRegenerate is the pre-refactor data path: every
// predictor cell re-synthesizes the benchmark stream.
func BenchmarkAccuracySweepRegenerate(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, branchsim.NewWorkload(bench))
		}
	}
}

// BenchmarkAccuracySweepReplay is the record/replay data path as the
// experiment grid actually runs it: the stream is recorded once in setup —
// the process-wide trace store records each benchmark once per process and
// replays it for every (predictor, budget) cell, so recording amortizes to
// ~zero across a real grid's dozens of cells — and every cell replays it
// through the batched branch fast path (the replay cursor implements
// BranchSource). scripts/bench.sh compares this against the PR 2 baseline
// and against the SlowPath twin below in BENCH_branchreplay.json.
func BenchmarkAccuracySweepReplay(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, rec.Replay())
		}
	}
}

// opaqueReplay hides every protocol but Source, forcing the accuracy
// simulator down the instruction-at-a-time path replays used before the
// branch fast path existed.
type opaqueReplay struct{ src branchsim.Source }

func (o opaqueReplay) Next(inst *branchsim.Inst) bool { return o.src.Next(inst) }
func (o opaqueReplay) Name() string                   { return o.src.Name() }

// BenchmarkAccuracySweepReplaySlowPath is the identical sweep forced down
// the old data path: same recording, same cells, but every replayed
// instruction is materialized and inspected. The ratio of this to
// BenchmarkAccuracySweepReplay is the sweep_speedup of
// BENCH_branchreplay.json.
func BenchmarkAccuracySweepReplaySlowPath(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range sweepKinds {
			sweepCell(b, kind, opaqueReplay{rec.Replay()})
		}
	}
}

// --- Grid-fusion benchmarks (scripts/bench.sh → BENCH_fusion.json).
// One benchmark's column of a classic-predictor budget grid — the
// cheap-table-lane regime grid fusion targets: per-branch work is a couple
// of table accesses, so per-cell stream walks and per-branch interface
// dispatch dominate. Fused runs the column as the experiment layer now
// does: every 256-entry branch batch pulled once and fed to all lanes,
// cheap lanes stepping through it with one BatchStepper call per batch.
// PerCell is the identical column down the path fusion replaced: one full
// batched replay per cell. Heavy lanes (perceptron, multi-component) are
// compute-bound and gain only the shared fill; they are benchmarked by the
// experiment benchmarks above, not gated here. ---

// fusionLaneKinds and fusionBudgets shape the fused gate column: the
// classic table predictors across the Figure 1 budget axis.
var fusionLaneKinds = []string{"gshare", "bimode", "bimodal"}

var fusionBudgets = []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}

func fusionLanes(b *testing.B) []branchsim.AccuracyLane {
	b.Helper()
	var lanes []branchsim.AccuracyLane
	for _, kind := range fusionLaneKinds {
		for _, budget := range fusionBudgets {
			p, err := branchsim.NewPredictorByName(kind, budget)
			if err != nil {
				b.Fatal(err)
			}
			lanes = append(lanes, branchsim.AccuracyLane{P: p})
		}
	}
	return lanes
}

// BenchmarkFusedSweep runs the column through RunAccuracyMany: one trace
// pass for the whole grid column.
func BenchmarkFusedSweep(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lanes := fusionLanes(b)
		res := branchsim.RunAccuracyMany(lanes, rec.Replay(), branchsim.AccuracyOptions{MaxInsts: sweepInsts})
		if len(res) != len(lanes) || res[0].Branches == 0 {
			b.Fatal("degenerate fused sweep")
		}
	}
}

// BenchmarkFusedSweepPerCell is the identical column down the per-cell
// path: every lane replays the recording itself through RunAccuracy, as
// the accuracy grids did before fusion. The ratio of this to
// BenchmarkFusedSweep is the fused_speedup gate of BENCH_fusion.json.
func BenchmarkFusedSweepPerCell(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, sweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lane := range fusionLanes(b) {
			res := branchsim.RunAccuracy(lane.P, rec.Replay(), branchsim.AccuracyOptions{MaxInsts: sweepInsts})
			if res.Branches == 0 {
				b.Fatal("degenerate sweep cell")
			}
		}
	}
}

// BenchmarkBranchBatchFill measures raw branch-index replay throughput:
// the cost per branch of filling BranchRec batches from a recording, with
// no predictor behind it. Compare BenchmarkReplayStream (per instruction)
// times the branch density to see what the index skips.
func BenchmarkBranchBatchFill(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, 1_000_000)
	cur := rec.Replay()
	var batch [branchsim.BatchLen]branchsim.BranchRec
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := cur.NextBranches(batch[:])
		if k == 0 {
			cur.Reset()
			continue
		}
		n += k
	}
}

// BenchmarkPipelineSimulation measures timing-simulator throughput
// (instructions per op).
func BenchmarkPipelineSimulation(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("eon")
	for i := 0; i < b.N; i++ {
		pred := branchsim.NewGShareFast(64 << 10)
		branchsim.RunTiming(branchsim.DefaultMachine(), pred, branchsim.NewWorkload(bench), 100_000, 0)
	}
}

// --- Timing fast-path benchmarks (scripts/bench.sh → BENCH_timing.json).
// The sweep is one benchmark's design-point column of the real timing grid:
// the cells Figures 2, 7 (both halves), 8 and the override-rate ablation
// each visit at the 64KB budget, duplicates included. Fast runs it as
// cmd/reproduce now does — stream recorded once, cache hierarchy simulated
// once into a memory sidecar, every cell a batched replay, duplicate cells
// served from the timing memo. Slow forces the identical cell list down the
// pre-fast-path route: every cell simulated independently, instruction at a
// time through the Source interface, with the full cache hierarchy live. ---

// timingGridCells is the design-point cell column: 19 grid visits, 9
// distinct simulations. Figure 7's ideal perceptron repeats Figure 2's,
// Figure 8 revisits Figure 7's overriding row per benchmark, the
// override-rate ablation recounts the realistic cells, and gshare.fast's
// organization is mode-invariant.
var timingGridCells = []struct {
	kind string
	mode branchsim.TimingMode
}{
	// Figure 2: ideal vs realistic, perceptron and multi-component.
	{"perceptron", branchsim.Ideal}, {"multicomponent", branchsim.Ideal},
	{"perceptron", branchsim.Realistic}, {"multicomponent", branchsim.Realistic},
	// Figure 7 left: 1-cycle idealization of the four contenders.
	{"multicomponent", branchsim.Ideal}, {"2bcgskew", branchsim.Ideal},
	{"perceptron", branchsim.Ideal}, {"gshare.fast", branchsim.Ideal},
	// Figure 7 right: the same contenders in the overriding organization.
	{"multicomponent", branchsim.Realistic}, {"2bcgskew", branchsim.Realistic},
	{"perceptron", branchsim.Realistic}, {"gshare.fast", branchsim.Realistic},
	// Figure 8: per-benchmark IPC at the design point — the overriding
	// row again for this benchmark.
	{"multicomponent", branchsim.Realistic}, {"2bcgskew", branchsim.Realistic},
	{"perceptron", branchsim.Realistic}, {"gshare.fast", branchsim.Realistic},
	// Override-rate ablation: recounts the complex realistic cells.
	{"multicomponent", branchsim.Realistic}, {"2bcgskew", branchsim.Realistic},
	{"perceptron", branchsim.Realistic},
}

const (
	timingSweepBudget = 64 << 10
	timingSweepInsts  = 150_000
	timingSweepWarmup = 37_500
)

// timingGridOrg mirrors the experiment layer's cell construction through
// the public facade: Ideal is the bare budget-sized predictor, Realistic
// puts it behind a small quick gshare in the overriding organization, and
// the pipelined gshare.fast is its own organization in both modes.
func timingGridOrg(b *testing.B, kind string, mode branchsim.TimingMode) branchsim.Predictor {
	b.Helper()
	if kind == "gshare.fast" {
		return branchsim.NewGShareFast(timingSweepBudget)
	}
	p, err := branchsim.NewPredictorByName(kind, timingSweepBudget)
	if err != nil {
		b.Fatal(err)
	}
	if mode == branchsim.Ideal {
		return p
	}
	return branchsim.NewOverriding(branchsim.NewGShare(512), p, 4)
}

func timingSweepCell(b *testing.B, res branchsim.TimingResult) {
	b.Helper()
	if res.Insts == 0 || res.Cycles == 0 {
		b.Fatal("degenerate timing cell: no measured instructions")
	}
}

// BenchmarkTimingSweepFast times the grid column on the fast path: the
// process-wide trace store's recording and memory sidecar are warmed in
// setup (one recording pass and one cache simulation serve every cell, as
// across a real grid's hundreds), each iteration runs the 19 cells through
// a fresh timing memo so the 10 duplicates are served from memory and the
// 9 distinct cells replay through the batched sidecar loop.
func BenchmarkTimingSweepFast(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	opts := branchsim.ExperimentOptions{Insts: timingSweepInsts, Warmup: timingSweepWarmup, Parallel: 1}
	branchsim.NewTimingMemo().Cell("gshare", timingSweepBudget, branchsim.Ideal, bench, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo := branchsim.NewTimingMemo()
		for _, cell := range timingGridCells {
			timingSweepCell(b, memo.Cell(cell.kind, timingSweepBudget, cell.mode, bench, opts))
		}
	}
}

// BenchmarkTimingSweepSlow is the identical cell list down the old data
// path: every cell simulated independently (no memo), every instruction
// dispatched through the Source interface, the cache hierarchy simulated
// live per cell. The ratio of this to BenchmarkTimingSweepFast is the
// fastpath speedup of BENCH_timing.json.
func BenchmarkTimingSweepSlow(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	cfg := branchsim.DefaultMachine()
	rec := branchsim.RecordWorkload(bench, timingSweepInsts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range timingGridCells {
			org := timingGridOrg(b, cell.kind, cell.mode)
			timingSweepCell(b, branchsim.RunTiming(cfg, org, opaqueReplay{rec.Replay()}, timingSweepInsts, timingSweepWarmup))
		}
	}
}

// --- Fused-timing benchmarks (scripts/bench.sh → BENCH_timingfusion.json).
// One benchmark's column of a depth-sweep timing grid: machine depth
// variants × the classic table predictors, all on the default cache
// geometry — the regime timing fusion targets, where per-lane predictor
// work is a couple of table accesses and the per-cell trace walk, batch
// decode and sidecar lookups dominate. Heavy lanes (overriding perceptron)
// are compute-bound and amortize nothing but the shared walk; they ride
// the experiment benchmarks above, not this gate. ---

// timingFusionLanes is the gate column: depths {10,20,30,40} off the
// Table 1 machine (shared cache geometry), each swept over gshare budgets
// {4K,16K,64K} — a 12-lane column.
func timingFusionLanes(b *testing.B) []branchsim.TimingLane {
	b.Helper()
	var lanes []branchsim.TimingLane
	for _, depth := range []int{10, 20, 30, 40} {
		cfg := branchsim.DefaultMachine()
		cfg.PipelineDepth = depth
		cfg.FrontEndDepth = depth / 2
		for _, budget := range []int{4 << 10, 16 << 10, 64 << 10} {
			p, err := branchsim.NewPredictorByName("gshare", budget)
			if err != nil {
				b.Fatal(err)
			}
			lanes = append(lanes, branchsim.TimingLane{Cfg: cfg, Pred: p})
		}
	}
	return lanes
}

// BenchmarkFusedTimingSweep runs the column through RunTimingMany: one
// trace pass and one sidecar feed every pipeline configuration.
func BenchmarkFusedTimingSweep(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, timingSweepInsts)
	side := branchsim.NewMemSidecar(rec, branchsim.DefaultMachine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lanes := timingFusionLanes(b)
		res := branchsim.RunTimingMany(lanes, rec.Replay(), side, timingSweepInsts, timingSweepWarmup)
		if len(res) != len(lanes) {
			b.Fatal("degenerate fused timing sweep")
		}
		for _, r := range res {
			timingSweepCell(b, r)
		}
	}
}

// BenchmarkFusedTimingSweepPerCell is the identical column down the
// per-cell path fusion replaced: every lane replays the recording itself
// through RunTimingFast (sidecar warm — this is the fast path of
// BENCH_timing.json, not the live-cache slow path). The ratio of this to
// BenchmarkFusedTimingSweep is the fused_speedup gate of
// BENCH_timingfusion.json.
func BenchmarkFusedTimingSweepPerCell(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	rec := branchsim.RecordWorkload(bench, timingSweepInsts)
	side := branchsim.NewMemSidecar(rec, branchsim.DefaultMachine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lane := range timingFusionLanes(b) {
			timingSweepCell(b, branchsim.RunTimingFast(lane.Cfg, lane.Pred, rec, side, timingSweepInsts, timingSweepWarmup))
		}
	}
}

// --- Cell store + scheduler benchmarks (scripts/bench.sh → BENCH_grid.json).
// The same design-point column as the timing sweep above, but exercised
// through the persistence and planner layers: a cold run simulates every
// distinct cell and writes it back to a fresh result store; a warm run opens
// a second store over the same directory (a second process's view — its
// in-memory flight cache is empty, so every cell must come off disk) and
// serves the whole column without simulating. The sharded/serial pair runs
// the identical distinct-cell plan through the worker-pool scheduler at
// GOMAXPROCS vs one worker. ---

// gridDistinctCells is timingGridCells with the duplicates removed: the 7
// distinct simulations behind the 19 grid visits (gshare.fast's organization
// is mode-invariant, so it appears once).
var gridDistinctCells = []struct {
	kind string
	mode branchsim.TimingMode
}{
	{"perceptron", branchsim.Ideal}, {"perceptron", branchsim.Realistic},
	{"multicomponent", branchsim.Ideal}, {"multicomponent", branchsim.Realistic},
	{"2bcgskew", branchsim.Ideal}, {"2bcgskew", branchsim.Realistic},
	{"gshare.fast", branchsim.Ideal},
}

func gridOpts(store *branchsim.ResultStore) branchsim.ExperimentOptions {
	return branchsim.ExperimentOptions{
		Insts:    timingSweepInsts,
		Warmup:   timingSweepWarmup,
		Parallel: 1,
		Store:    store,
	}
}

// runGridColumn runs the distinct-cell column through a fresh memo, so every
// cell reaches the store (or the simulator) rather than the in-memory tier.
func runGridColumn(b *testing.B, bench branchsim.Benchmark, opts branchsim.ExperimentOptions) {
	b.Helper()
	memo := branchsim.NewTimingMemo()
	for _, cell := range gridDistinctCells {
		timingSweepCell(b, memo.Cell(cell.kind, timingSweepBudget, cell.mode, bench, opts))
	}
}

// BenchmarkGridColdStore measures the cold cost cmd/reproduce pays on a
// first run: every cell fully simulated plus written back to a brand-new
// store directory. The trace store and memory sidecar are warmed in setup,
// as across a real grid.
func BenchmarkGridColdStore(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	branchsim.NewTimingMemo().Cell("gshare", timingSweepBudget, branchsim.Ideal, bench, gridOpts(nil))
	root := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := branchsim.OpenResultStore(filepath.Join(root, strconv.Itoa(i)))
		if err != nil {
			b.Fatal(err)
		}
		runGridColumn(b, bench, gridOpts(st))
	}
}

// BenchmarkGridWarmStore measures the warm cost of the same column: the
// store is populated once in setup, and each iteration opens a fresh Store
// over that directory and serves every cell from disk — no cell simulates.
// The ratio of BenchmarkGridColdStore to this is the warm_speedup gate of
// BENCH_grid.json.
func BenchmarkGridWarmStore(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	dir := b.TempDir()
	st0, err := branchsim.OpenResultStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	runGridColumn(b, bench, gridOpts(st0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := branchsim.OpenResultStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		runGridColumn(b, bench, gridOpts(st))
		if s := st.Stats(); s.Misses != 0 || s.Invalidations != 0 {
			b.Fatalf("warm iteration simulated: %+v", s)
		}
	}
}

// runGridPlan runs the distinct-cell column as the planner layer does: each
// cell a PlannedCell executed by the worker-pool scheduler. A fresh memo per
// call keeps every cell a real simulation.
func runGridPlan(b *testing.B, bench branchsim.Benchmark, parallel int) {
	memo := branchsim.NewTimingMemo()
	opts := gridOpts(nil)
	cells := make([]branchsim.PlannedCell, 0, len(gridDistinctCells))
	for _, cell := range gridDistinctCells {
		cells = append(cells, branchsim.PlannedCell{
			Key: fmt.Sprintf("timing|kind=%s|org=%d|budget=%d|bench=%s", cell.kind, cell.mode, timingSweepBudget, bench.Name),
			Run: func() {
				// b.Fatal must not run on a worker goroutine; Error is safe.
				if res := memo.Cell(cell.kind, timingSweepBudget, cell.mode, bench, opts); res.Insts == 0 || res.Cycles == 0 {
					b.Error("degenerate timing cell: no measured instructions")
				}
			},
		})
	}
	branchsim.RunCells(parallel, cells)
}

// BenchmarkGridSharded runs the distinct-cell plan on the worker-pool
// scheduler at GOMAXPROCS workers — how cmd/reproduce shards a grid.
func BenchmarkGridSharded(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	branchsim.NewTimingMemo().Cell("gshare", timingSweepBudget, branchsim.Ideal, bench, gridOpts(nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runGridPlan(b, bench, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkGridSerial is the identical plan on one worker. On a multi-core
// machine sharded/serial is the scheduler's speedup; on one core the gate
// degrades to no-regression (scripts/bench.sh picks the bound by core
// count).
func BenchmarkGridSerial(b *testing.B) {
	bench, _ := branchsim.BenchmarkByName("gcc")
	branchsim.NewTimingMemo().Cell("gshare", timingSweepBudget, branchsim.Ideal, bench, gridOpts(nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runGridPlan(b, bench, 1)
	}
}

// BenchmarkFastFamily runs the §5 pipelined-family study.
func BenchmarkFastFamily(b *testing.B) {
	out := runExperiment(b, "fastfamily")
	reportCell(b, out, "Pipelined predictor family", 1, 1, "bimode.fast-IPC")
}

func BenchmarkPredictBiModeFast(b *testing.B) {
	benchPredictor(b, branchsim.NewBiModeFast(64<<10))
}

func BenchmarkPredictYAGS(b *testing.B) {
	benchPredictor(b, branchsim.NewYAGS(64<<10))
}

// BenchmarkRecovery runs the §3.2 checkpointing-value ablation.
func BenchmarkRecovery(b *testing.B) {
	out := runExperiment(b, "recovery")
	reportCell(b, out, "Misprediction recovery", -1, 0, "ckpt@512K-IPC")
	reportCell(b, out, "Misprediction recovery", -1, 1, "nockpt@512K-IPC")
}
