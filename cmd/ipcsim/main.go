// Command ipcsim runs cycle-level timing simulations: one or more predictor
// organizations over the synthetic SPECint2000 benchmarks, reporting
// per-benchmark IPC and the harmonic mean (the paper's Figures 2, 7 and 8).
//
// The -mode flag selects the organization:
//
//	ideal      the predictor answers in a single cycle regardless of size
//	           (the paper's "no delay" curves)
//	realistic  complex predictors sit behind a 2K-entry quick gshare in an
//	           overriding organization with delay-model latency;
//	           gshare.fast runs pipelined and needs no overriding
//
// Example:
//
//	ipcsim -predictors gshare.fast,perceptron -budget 65536 -mode realistic
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"branchsim/internal/experiments"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/prof"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
	"branchsim/internal/tracestore"
	"branchsim/internal/workload"
)

func main() {
	var (
		predictors = flag.String("predictors", "gshare.fast", "comma-separated predictor kinds")
		budget     = flag.Int("budget", 64<<10, "hardware budget in bytes")
		benchmarks = flag.String("benchmarks", "all", "comma-separated benchmark names or 'all'")
		insts      = flag.Int64("insts", workload.DefaultInstructions, "dynamic instructions per benchmark")
		warmup     = flag.Int64("warmup", 0, "warm-up instructions excluded from statistics")
		mode       = flag.String("mode", "realistic", "predictor timing: ideal or realistic")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this path")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	profiles, err := selectProfiles(*benchmarks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Streams are recorded once per benchmark and replayed for every
	// predictor kind, and the memory hierarchy is simulated once per
	// benchmark via the store's sidecars (see internal/tracestore).
	cfg := pipeline.DefaultConfig()
	store := tracestore.New()
	for _, kind := range strings.Split(*predictors, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		fmt.Printf("%s @ %dKB, %s timing (%d insts/benchmark)\n", kind, *budget>>10, *mode, *insts)
		var ipcs []float64
		for _, prof := range profiles {
			p, err := buildPredictor(kind, *budget, *mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			key := tracestore.Key{Name: prof.Name, Seed: prof.Seed, Insts: *insts}
			gen := func() trace.Source { return workload.New(prof) }
			src := store.Source(key, gen)
			sim := pipeline.New(cfg, p)
			sim.SetMemSidecar(store.MemSidecar(key, pipeline.MemGeometryOf(cfg), gen))
			res := sim.Run(src, *insts, *warmup)
			ipcs = append(ipcs, res.IPC())
			extra := ""
			if res.OverrideRate > 0 {
				extra = fmt.Sprintf("  override %.2f%%", 100*res.OverrideRate)
			}
			fmt.Printf("  %-12s IPC %6.3f  (mispredict %5.2f%%%s)\n",
				prof.ShortName(), res.IPC(), res.MispredictPercent(), extra)
		}
		fmt.Printf("  %-12s IPC %6.3f (harmonic mean)\n\n", "HMEAN", stats.HarmonicMean(ipcs))
	}
}

// buildPredictor assembles the predictor organization for the mode.
func buildPredictor(kind string, budget int, mode string) (predictor.Predictor, error) {
	switch mode {
	case "ideal":
		return experiments.NewPredictor(kind, budget)
	case "realistic":
		if kind == "gshare.fast" {
			// gshare.fast is pipelined: realistic and ideal timing
			// coincide by design.
			return experiments.NewPredictor(kind, budget)
		}
		return experiments.NewOverriding(kind, budget)
	default:
		return nil, fmt.Errorf("ipcsim: unknown mode %q (ideal or realistic)", mode)
	}
}

func selectProfiles(names string) ([]workload.Profile, error) {
	if names == "all" || names == "" {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("ipcsim: unknown benchmark %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}
