// Command compare diffs two result files produced by `reproduce -json`,
// reporting every cell that moved beyond a relative tolerance — the
// regression check for calibration and refactoring work.
//
// Example:
//
//	reproduce -json baseline.json
//	...change code...
//	reproduce -json after.json
//	compare -tolerance 0.05 baseline.json after.json
package main

import (
	"flag"
	"fmt"
	"os"

	"branchsim/internal/prof"
	"branchsim/internal/results"
)

func main() {
	tolerance := flag.Float64("tolerance", 0.05, "relative change to flag")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this path")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: compare [-tolerance f] old.json new.json")
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	old, err := results.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	new, err := results.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diffs := results.Compare(old, new, *tolerance)
	if len(diffs) == 0 {
		fmt.Printf("no differences beyond %.1f%% (%d experiments compared)\n",
			100**tolerance, len(new.Experiments))
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	fmt.Printf("%d cells moved beyond %.1f%%\n", len(diffs), 100**tolerance)
	os.Exit(1)
}
