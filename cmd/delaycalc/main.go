// Command delaycalc prints the delay model's estimates: SRAM access times
// in FO4 and cycles, predictor latencies across budgets (Table 2), and the
// largest single-cycle PHT.
package main

import (
	"flag"
	"fmt"

	"branchsim/internal/delaymodel"
	"branchsim/internal/experiments"
)

func main() {
	var (
		bytes   = flag.Int("bytes", 0, "print access time for one table of this many bytes")
		entries = flag.Int("entries", 0, "entry count for -bytes (defaults to bytes*4, 2-bit counters)")
	)
	flag.Parse()

	m := delaymodel.Default
	if *bytes > 0 {
		e := *entries
		if e == 0 {
			e = *bytes * 4
		}
		fo4 := m.AccessFO4(*bytes, e)
		fmt.Printf("%d bytes, %d entries: %.1f FO4 = %d cycles at %g FO4/clock\n",
			*bytes, e, fo4, m.CyclesFor(fo4), m.ClockFO4)
		return
	}

	fmt.Printf("clock: %g FO4 (3.5 GHz at 100 nm, after Hrishikesh et al.)\n", m.ClockFO4)
	fmt.Printf("largest single-cycle PHT: %d entries\n\n", m.SingleCycleEntries())
	fmt.Print(experiments.Table2(experiments.Options{}).Render())

	fmt.Println("predictor area at the 90nm SRAM anchor (§3.3.2):")
	for _, kb := range []int{16, 64, 100, 256, 512} {
		bytes := kb << 10
		fmt.Printf("  %4d KB: %6.2f mm² (%.1f%% of a %d mm² die)\n",
			kb, delaymodel.AreaMM2(bytes), 100*delaymodel.ChipFraction(bytes),
			int(delaymodel.ChipAreaMM2))
	}
}
