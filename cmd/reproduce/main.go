// Command reproduce regenerates the paper's tables and figures (and this
// repository's extra ablations) and prints them as text tables and charts.
//
// Examples:
//
//	reproduce                          # every experiment, default budgets
//	reproduce -experiment figure5
//	reproduce -experiment figure7 -insts 12000000 -warmup 3000000
//	reproduce -list
//
// Stdout is byte-for-byte reproducible for a given configuration: wall-clock
// progress lines only appear with -timings, and go to stderr. The result
// store (-store) does not change stdout either — store-served cells are
// bit-identical to fresh simulation — it only makes reruns incremental: a
// second run serves every cell from disk, and a config tweak recomputes
// only the cells whose canonical identity changed. Likewise -nofuse: the
// grid-fused accuracy sweeps (one trace pass per benchmark feeding every
// predictor lane) are an execution strategy, not an identity, and both
// modes print the same bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"branchsim/internal/experiments"
	"branchsim/internal/prof"
	"branchsim/internal/results"
	"branchsim/internal/resultstore"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		insts      = flag.Int64("insts", 0, "instructions per benchmark (0 = default 8M)")
		warmup     = flag.Int64("warmup", 0, "warm-up instructions (0 = insts/4)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath   = flag.String("json", "", "also write results as JSON to this path (for cmd/compare)")
		label      = flag.String("label", "", "label stored in the JSON results")
		timings    = flag.Bool("timings", false, "print per-experiment wall-clock timings to stderr")
		storeDir   = flag.String("store", ".resultstore", "persistent result-store directory (cells served from and written back to disk)")
		nostore    = flag.Bool("nostore", false, "disable the persistent result store; every cell simulates in-process")
		nofuse     = flag.Bool("nofuse", false, "disable grid-fused accuracy sweeps; every accuracy cell walks its own trace pass")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this path")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var store *resultstore.Store
	if !*nostore && *storeDir != "" {
		store, err = resultstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fuse := experiments.FuseAuto
	if *nofuse {
		fuse = experiments.FuseOff
	}
	opts := experiments.Options{Insts: *insts, Warmup: *warmup, Parallel: *parallel, Store: store, Fuse: fuse}
	ids := experiments.IDs()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	file := &results.File{Label: *label, Insts: opts.Insts, Warmup: opts.Warmup}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		outcome := runner(opts)
		fmt.Print(outcome.Render())
		fmt.Println()
		if *timings {
			fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(start).Round(time.Millisecond))
		}
		file.Experiments = append(file.Experiments, results.FromOutcome(outcome))
	}
	if *timings {
		n, bytes := experiments.TraceStoreStats()
		fmt.Fprintf(os.Stderr, "(trace store: %d recordings, %.1f MB; streams generated once, replayed per grid cell)\n",
			n, float64(bytes)/(1<<20))
		sn, sbytes := experiments.SidecarStats()
		fmt.Fprintf(os.Stderr, "(mem sidecars: %d columns, %.1f MB; cache hierarchy simulated once per recording+geometry)\n",
			sn, float64(sbytes)/(1<<20))
		cells, hits := experiments.TimingMemoStats()
		fmt.Fprintf(os.Stderr, "(timing memo: %d distinct cells simulated, %d duplicate cells served from memory)\n",
			cells, hits)
		acells, ahits := experiments.AccuracyMemoStats()
		fmt.Fprintf(os.Stderr, "(accuracy memo: %d distinct cells simulated, %d duplicate cells served from memory)\n",
			acells, ahits)
		groups, lanes, fusedCells, soloCells := experiments.FusionStats()
		meanLanes := 0.0
		if groups > 0 {
			meanLanes = float64(lanes) / float64(groups)
		}
		fmt.Fprintf(os.Stderr, "(grid fusion: %d fused trace passes run (%.1f lanes each); %d accuracy cells served fused, %d solo)\n",
			groups, meanLanes, fusedCells, soloCells)
		tgroups, tlanes, tfusedCells, tsoloCells := experiments.TimingFusionStats()
		tmeanLanes := 0.0
		if tgroups > 0 {
			tmeanLanes = float64(tlanes) / float64(tgroups)
		}
		fmt.Fprintf(os.Stderr, "(timing fusion: %d fused timing passes run (%.1f lanes each); %d timing cells served fused, %d solo)\n",
			tgroups, tmeanLanes, tfusedCells, tsoloCells)
		if store != nil {
			s := store.Stats()
			fmt.Fprintf(os.Stderr, "(result store: %d cells served from disk, %d cold cells computed, %d invalid entries recomputed; %d cells written back, %d write errors)\n",
				s.Hits, s.Misses, s.Invalidations, s.Writes, s.WriteErrors)
		}
	}
	if *jsonPath != "" {
		if err := file.Save(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonPath)
	}
}
