// Command tracegen dumps the synthetic benchmark instruction streams for
// inspection: either a human-readable listing of the first N instructions
// or summary statistics of a longer run.
//
// Examples:
//
//	tracegen -benchmark gzip -n 40           # listing
//	tracegen -benchmark twolf -stats -n 2000000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "gzip", "benchmark name")
		n         = flag.Int64("n", 32, "instructions to emit / analyze")
		stat      = flag.Bool("stats", false, "print summary statistics instead of a listing")
	)
	flag.Parse()

	prof, ok := workload.ByName(*benchmark)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *benchmark)
		os.Exit(1)
	}
	p := workload.New(prof)

	if *stat {
		printStats(p, *n)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var inst trace.Inst
	for i := int64(0); i < *n && p.Next(&inst); i++ {
		switch inst.Kind {
		case trace.CondBranch:
			dir := "N"
			if inst.Taken {
				dir = "T"
			}
			fmt.Fprintf(w, "%08x  br    %s -> %08x\n", inst.PC, dir, inst.Target)
		case trace.Jump:
			fmt.Fprintf(w, "%08x  jmp   -> %08x\n", inst.PC, inst.Target)
		case trace.Load:
			fmt.Fprintf(w, "%08x  load  r%d <- [%08x] (r%d)\n", inst.PC, inst.Dst, inst.Addr, inst.Src1)
		case trace.Store:
			fmt.Fprintf(w, "%08x  store [%08x] <- r%d (r%d)\n", inst.PC, inst.Addr, inst.Src1, inst.Src2)
		default:
			fmt.Fprintf(w, "%08x  %-5s r%d <- r%d, r%d\n", inst.PC, inst.Kind, inst.Dst, inst.Src1, inst.Src2)
		}
	}
}

func printStats(p *workload.Program, n int64) {
	var inst trace.Inst
	kinds := make([]int64, trace.NumKinds)
	var taken, branches int64
	for i := int64(0); i < n && p.Next(&inst); i++ {
		kinds[inst.Kind]++
		if inst.Kind == trace.CondBranch {
			branches++
			if inst.Taken {
				taken++
			}
		}
	}
	insts, _, _ := p.Stats()
	fmt.Printf("benchmark:        %s\n", p.Name())
	fmt.Printf("instructions:     %d\n", insts)
	fmt.Printf("static branches:  %d\n", p.StaticBranches())
	fmt.Printf("code footprint:   %d bytes\n", p.CodeFootprint())
	for k := 0; k < trace.NumKinds; k++ {
		fmt.Printf("  %-6s %9d (%5.2f%%)\n", trace.Kind(k), kinds[k],
			100*float64(kinds[k])/float64(insts))
	}
	if branches > 0 {
		fmt.Printf("taken rate:       %.2f%%\n", 100*float64(taken)/float64(branches))
	}
}
