// Command tracegen dumps the synthetic benchmark instruction streams for
// inspection: either a human-readable listing of the first N instructions
// or summary statistics of a longer run. It also records streams to — and
// replays them from — the deterministic varint-delta binary trace format,
// the offline half of the record/replay layer the experiment grid uses in
// memory.
//
// Examples:
//
//	tracegen -benchmark gzip -n 40                # listing
//	tracegen -benchmark twolf -stats -n 2000000
//	tracegen -benchmark gcc -n 1000000 -record gcc.bptrace
//	tracegen -replay gcc.bptrace -stats -n 1000000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "gzip", "benchmark name")
		n         = flag.Int64("n", 32, "instructions to emit / analyze")
		stat      = flag.Bool("stats", false, "print summary statistics instead of a listing")
		record    = flag.String("record", "", "record the first -n instructions to this trace file")
		replay    = flag.String("replay", "", "replay the stream from this trace file instead of generating it")
	)
	flag.Parse()

	var src trace.Source
	var prog *workload.Program
	var rec *trace.Recording
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		rec, err = trace.ReadRecording(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		src = rec.Replay()
	} else {
		prof, ok := workload.ByName(*benchmark)
		if !ok {
			fatal(fmt.Errorf("tracegen: unknown benchmark %q", *benchmark))
		}
		prog = workload.New(prof)
		src = prog
	}

	if *record != "" {
		rec = trace.Record(src, *n)
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		written, err := rec.WriteTo(f)
		if err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: recorded %d instructions (%d bytes) to %s\n",
			rec.Len(), written, *record)
		// Listing/stats below replay the recording just written, so
		// -record composes with both output modes.
		src = rec.Replay()
	}

	if *stat {
		printStats(src, prog, rec, *n)
		return
	}
	printListing(src, *n)
}

func printListing(src trace.Source, n int64) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var inst trace.Inst
	for i := int64(0); i < n && src.Next(&inst); i++ {
		switch inst.Kind {
		case trace.CondBranch:
			dir := "N"
			if inst.Taken {
				dir = "T"
			}
			fmt.Fprintf(w, "%08x  br    %s -> %08x\n", inst.PC, dir, inst.Target)
		case trace.Jump:
			fmt.Fprintf(w, "%08x  jmp   -> %08x\n", inst.PC, inst.Target)
		case trace.Load:
			fmt.Fprintf(w, "%08x  load  r%d <- [%08x] (r%d)\n", inst.PC, inst.Dst, inst.Addr, inst.Src1)
		case trace.Store:
			fmt.Fprintf(w, "%08x  store [%08x] <- r%d (r%d)\n", inst.PC, inst.Addr, inst.Src1, inst.Src2)
		default:
			fmt.Fprintf(w, "%08x  %-5s r%d <- r%d, r%d\n", inst.PC, inst.Kind, inst.Dst, inst.Src1, inst.Src2)
		}
	}
}

// printStats summarizes up to n instructions of src. prog is non-nil only
// for live generation, where the static program shape is known; rec is
// non-nil when the stream is a recording, whose precomputed branch index
// then supplies the branch and taken counts directly — the same index the
// accuracy simulator's batch fast path replays.
func printStats(src trace.Source, prog *workload.Program, rec *trace.Recording, n int64) {
	var inst trace.Inst
	kinds := make([]int64, trace.NumKinds)
	var insts, taken, branches int64
	useIndex := rec != nil && rec.Len() <= n
	for insts < n && src.Next(&inst) {
		insts++
		kinds[inst.Kind]++
		if !useIndex && inst.Kind == trace.CondBranch {
			branches++
			if inst.Taken {
				taken++
			}
		}
	}
	if useIndex {
		branches, taken = rec.BranchStats()
	}
	fmt.Printf("benchmark:        %s\n", src.Name())
	fmt.Printf("instructions:     %d\n", insts)
	if prog != nil {
		fmt.Printf("static branches:  %d\n", prog.StaticBranches())
		fmt.Printf("code footprint:   %d bytes\n", prog.CodeFootprint())
	}
	for k := 0; k < trace.NumKinds; k++ {
		fmt.Printf("  %-6s %9d (%5.2f%%)\n", trace.Kind(k), kinds[k],
			100*float64(kinds[k])/float64(insts))
	}
	if branches > 0 {
		fmt.Printf("branch density:   %.2f%% (1 branch per %.1f insts)\n",
			100*float64(branches)/float64(insts), float64(insts)/float64(branches))
		fmt.Printf("taken rate:       %.2f%%\n", 100*float64(taken)/float64(branches))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
