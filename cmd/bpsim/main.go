// Command bpsim runs functional (accuracy-only) branch prediction
// simulations: one or more predictors over one or more synthetic SPECint2000
// benchmarks, reporting per-benchmark and mean misprediction rates.
//
// Examples:
//
//	bpsim -predictors gshare.fast,perceptron -budget 65536
//	bpsim -predictors gshare -budget 8192 -benchmarks gzip,twolf -insts 5000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"branchsim/internal/experiments"
	"branchsim/internal/funcsim"
	"branchsim/internal/prof"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
	"branchsim/internal/tracestore"
	"branchsim/internal/workload"
)

func main() {
	var (
		predictors = flag.String("predictors", "gshare.fast", "comma-separated predictor kinds")
		budget     = flag.Int("budget", 64<<10, "hardware budget in bytes")
		benchmarks = flag.String("benchmarks", "all", "comma-separated benchmark names or 'all'")
		insts      = flag.Int64("insts", workload.DefaultInstructions, "dynamic instructions per benchmark")
		warmup     = flag.Int64("warmup", 0, "warm-up instructions excluded from statistics")
		list       = flag.Bool("list", false, "list available predictors and benchmarks, then exit")
		perClass   = flag.Bool("perclass", false, "print per-branch-class misprediction diagnostics")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this path")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		fmt.Println("predictors:", strings.Join(experiments.PredictorKinds(), " "))
		names := make([]string, 0, 12)
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
		fmt.Println("benchmarks:", strings.Join(names, " "))
		return
	}

	profiles, err := selectProfiles(*benchmarks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Each benchmark's stream is recorded on first use and replayed for
	// every subsequent predictor kind, so multi-predictor invocations pay
	// generation cost once per benchmark.
	store := tracestore.New()
	for _, kind := range strings.Split(*predictors, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		fmt.Printf("%s @ %dKB (%d insts/benchmark)\n", kind, *budget>>10, *insts)
		var rates []float64
		for _, prof := range profiles {
			p, err := experiments.NewPredictor(kind, *budget)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			src := store.Source(
				tracestore.Key{Name: prof.Name, Seed: prof.Seed, Insts: *insts},
				func() trace.Source { return workload.New(prof) })
			if *perClass {
				src = workload.Classify(src, prof)
			}
			res := funcsim.Run(p, src, funcsim.Options{
				MaxInsts:    *insts,
				WarmupInsts: *warmup,
				PerClass:    *perClass,
			})
			rates = append(rates, res.MispredictPercent())
			fmt.Printf("  %-12s %7.3f%% mispredicted  (%d branches, predictor %s, %d bytes)\n",
				prof.ShortName(), res.MispredictPercent(), res.Branches,
				res.Predictor, res.PredSizeByte)
			if *perClass {
				names := make([]string, 0, len(res.ClassRates))
				for n := range res.ClassRates {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, n := range names {
					r := res.ClassRates[n]
					fmt.Printf("      %-14s %7.3f%%  share %5.1f%%\n",
						n, r.Percent(), 100*float64(r.Total)/float64(res.Branches))
				}
			}
		}
		fmt.Printf("  %-12s %7.3f%% (arithmetic mean)\n\n", "MEAN", stats.Mean(rates))
	}
}

func selectProfiles(names string) ([]workload.Profile, error) {
	if names == "all" || names == "" {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("bpsim: unknown benchmark %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}
