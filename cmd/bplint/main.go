// Command bplint runs the repository's custom static-analysis suite
// (internal/analysis) over Go packages. It is built only on the standard
// library — no analysis framework dependency — and is wired into
// scripts/check.sh and CI.
//
// Usage:
//
//	bplint [flags] [patterns]
//
// Patterns are package directories; a pattern ending in /... walks the
// tree. The default is ./... from the module root. Findings print as
//
//	file:line:col: message [analyzer]
//
// sorted by file, line, column and analyzer — the order is deterministic
// across runs and across the cache — and can be suppressed per line with a
// //bplint:allow <analyzer> comment on the finding's line or the line
// above (see package analysis).
//
// Exit codes follow the gofmt/staticcheck convention:
//
//	0  clean run, no findings
//	1  the analyzers produced findings
//	2  usage, load or internal error
//
// -json switches stdout to a machine-readable JSON array of findings
// (empty array on a clean run) for tooling; -sarif switches it to a SARIF
// 2.1.0 log (one run, ruleId per analyzer, content-hash fingerprints) for
// code-scanning upload; -annotate additionally emits GitHub Actions
// ::error workflow commands on stderr so CI violations annotate the
// offending lines in the run. -allows switches to the audit listing:
// every active //bplint:allow directive with its justification, so
// waivers stay reviewable.
//
// Analysis fans out over a worker pool, one package per task, and finding
// sets are cached under <module root>/.bplint keyed by a transitive
// content hash (package sources, module-local dependency sources, tool
// sources, analyzer set, Go version). A warm run skips type-checking
// entirely and replays byte-identical output; -nocache bypasses the cache
// and -cachedir relocates it.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"branchsim/internal/analysis"
)

// cacheVersion invalidates every cached finding set when the cache format
// changes; analyzer and tool-source changes invalidate through the salt's
// transitive hash of cmd/bplint (which imports internal/analysis).
const cacheVersion = "bplint-cache-v2"

// options carries the parsed command line; run is pure in it, so tests
// drive the whole tool without exec-ing a binary.
type options struct {
	list     bool
	allows   bool
	asJSON   bool
	asSARIF  bool
	annotate bool
	noCache  bool
	only     string
	cacheDir string
	patterns []string
}

func main() {
	var opts options
	flag.BoolVar(&opts.list, "list", false, "list analyzers and exit")
	flag.StringVar(&opts.only, "run", "", "comma-separated analyzer names to run (default all)")
	flag.BoolVar(&opts.asJSON, "json", false, "print findings as a JSON array on stdout")
	flag.BoolVar(&opts.asSARIF, "sarif", false, "print findings as a SARIF 2.1.0 log on stdout")
	flag.BoolVar(&opts.annotate, "annotate", false, "emit GitHub Actions ::error annotations on stderr")
	flag.BoolVar(&opts.allows, "allows", false, "list every //bplint:allow directive with its justification and exit")
	flag.BoolVar(&opts.noCache, "nocache", false, "disable the finding cache")
	flag.StringVar(&opts.cacheDir, "cachedir", "", "finding cache directory (default <module root>/.bplint)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bplint [flags] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	opts.patterns = flag.Args()
	os.Exit(run(opts, os.Stdout, os.Stderr))
}

// run executes the tool and returns its process exit code: 0 clean, 1
// findings, 2 usage/load/internal error.
func run(opts options, stdout, stderr io.Writer) int {
	analyzers := analysis.All()
	if opts.list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if opts.only != "" {
		var err error
		analyzers, err = selectAnalyzers(analyzers, opts.only)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := opts.patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := resolvePatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if opts.allows {
		return runAllows(dirs, stdout, stderr)
	}

	var cache *findingCache
	if !opts.noCache {
		cache, err = openCache(opts, loader, analyzers)
		if err != nil {
			// The cache is an accelerator, not a correctness requirement:
			// fall back to uncached analysis.
			fmt.Fprintf(stderr, "bplint: cache disabled: %v\n", err)
			cache = nil
		}
	}

	findings, err := analyze(loader, dirs, analyzers, cache)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	sortFindings(findings)

	switch {
	case opts.asSARIF && opts.asJSON:
		fmt.Fprintln(stderr, "bplint: -json and -sarif are mutually exclusive")
		return 2
	case opts.asSARIF:
		if err := printSARIF(stdout, findings, loader.Root, analyzers); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case opts.asJSON:
		if err := printJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if opts.annotate {
		for _, f := range findings {
			// GitHub Actions workflow command: annotates the file/line in
			// the run's diff and log views.
			fmt.Fprintf(stderr, "::error file=%s,line=%d,col=%d::[%s] %s\n",
				escapeWorkflowProperty(f.Pos.Filename), f.Pos.Line, f.Pos.Column,
				f.Analyzer, escapeWorkflowData(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bplint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// analyze produces the findings for dirs: cache hits replay stored finding
// sets without loading anything; misses are loaded sequentially (the
// recursive importer shares loader state) and then analyzed concurrently,
// one package per worker-pool task — the analyzer passes only read the
// type-checked packages, so they fan out freely.
func analyze(loader *analysis.Loader, dirs []string, analyzers []*analysis.Analyzer, cache *findingCache) ([]analysis.Finding, error) {
	perDir := make([][]analysis.Finding, len(dirs))
	var misses []int
	for i, dir := range dirs {
		if cache != nil {
			if fs, ok := cache.get(dir); ok {
				perDir[i] = fs
				continue
			}
		}
		misses = append(misses, i)
	}

	if len(misses) > 0 {
		pkgs := make([]*analysis.Package, len(misses))
		for k, i := range misses {
			pkg, err := loader.LoadDir(dirs[i])
			if err != nil {
				return nil, err
			}
			pkgs[k] = pkg
		}
		module := loader.Module

		type result struct {
			k        int
			findings []analysis.Finding
		}
		jobs := make(chan int)
		out := make(chan result)
		workers := runtime.NumCPU()
		if workers > len(misses) {
			workers = len(misses)
		}
		for w := 0; w < workers; w++ {
			go func() {
				for k := range jobs {
					out <- result{k, analysis.Run(pkgs[k], module, analyzers)}
				}
			}()
		}
		go func() {
			for k := range pkgs {
				jobs <- k
			}
			close(jobs)
		}()
		for range misses {
			r := <-out
			i := misses[r.k]
			perDir[i] = r.findings
			if cache != nil {
				cache.put(dirs[i], r.findings)
			}
		}
	}

	var findings []analysis.Finding
	for _, fs := range perDir {
		findings = append(findings, fs...)
	}
	return findings, nil
}

// sortFindings orders findings by file, line, column and analyzer so the
// output is deterministic regardless of package order, worker scheduling
// or cache hits.
func sortFindings(findings []analysis.Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// runAllows prints the audit listing of every active allow directive.
func runAllows(dirs []string, stdout, stderr io.Writer) int {
	directives, err := analysis.CollectAllowDirectives(dirs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range directives {
		reason := d.Reason
		if reason == "" {
			reason = "(no justification given)"
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", d.File, d.Line, strings.Join(d.Analyzers, ","), reason)
	}
	fmt.Fprintf(stderr, "bplint: %d allow directive(s)\n", len(directives))
	return 0
}

// findingCache memoizes per-package finding sets under .bplint/, keyed by
// the transitive content hash of the package plus the tool configuration.
type findingCache struct {
	dir    string
	hasher *analysis.ModuleHasher
}

// openCache builds the cache handle: the salt folds in the cache format
// version, the Go version, the analyzer selection, and the transitive
// source hash of cmd/bplint itself (which imports internal/analysis), so
// editing any analyzer invalidates every entry.
func openCache(opts options, loader *analysis.Loader, analyzers []*analysis.Analyzer) (*findingCache, error) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	base := analysis.NewModuleHasher(loader.Module, loader.Root, "")
	toolHash, err := base.PackageHash(filepath.Join(loader.Root, "cmd", "bplint"))
	if err != nil {
		return nil, err
	}
	salt := cacheVersion + "|" + runtime.Version() + "|" + strings.Join(names, ",") + "|" + toolHash
	dir := opts.cacheDir
	if dir == "" {
		dir = filepath.Join(loader.Root, ".bplint")
	}
	return &findingCache{
		dir:    dir,
		hasher: analysis.NewModuleHasher(loader.Module, loader.Root, salt),
	}, nil
}

func (c *findingCache) path(dir string) (string, error) {
	key, err := c.hasher.PackageHash(dir)
	if err != nil {
		return "", err
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// get returns the cached finding set for the package in dir, if any.
func (c *findingCache) get(dir string) ([]analysis.Finding, bool) {
	path, err := c.path(dir)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var findings []analysis.Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, false
	}
	return findings, true
}

// put stores the finding set for the package in dir; cache write failures
// are deliberately silent (the run's own output is already correct).
func (c *findingCache) put(dir string, findings []analysis.Finding) {
	path, err := c.path(dir)
	if err != nil {
		return
	}
	if findings == nil {
		findings = []analysis.Finding{}
	}
	data, err := json.Marshal(findings)
	if err != nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	_ = os.WriteFile(path, data, 0o644)
}

// jsonFinding is the stable machine-readable shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// escapeWorkflowData escapes the free-text data of a GitHub Actions
// workflow command: a literal %, \r or \n in a finding message would
// otherwise terminate the command early or be re-interpreted as command
// syntax.
func escapeWorkflowData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeWorkflowProperty escapes a workflow-command property value (the
// file=... part), which additionally reserves the property separator ","
// and the command terminator ":".
func escapeWorkflowProperty(s string) string {
	s = escapeWorkflowData(s)
	s = strings.ReplaceAll(s, ",", "%2C")
	s = strings.ReplaceAll(s, ":", "%3A")
	return s
}

// SARIF 2.1.0 shapes, reduced to the fields code-scanning consumes.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string    `json:"id"`
	ShortDesc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string            `json:"ruleId"`
	Level        string            `json:"level"`
	Message      sarifText         `json:"message"`
	Locations    []sarifLocation   `json:"locations"`
	Fingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// printSARIF writes the findings as one SARIF 2.1.0 run. Each analyzer is
// a rule; each finding carries a content-hash partial fingerprint over
// (analyzer, repo-relative path, message) so code-scanning tracks a
// finding across unrelated line drift instead of keying on positions.
func printSARIF(w io.Writer, findings []analysis.Finding, root string, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDesc: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		sum := sha256.Sum256([]byte(f.Analyzer + "|" + uri + "|" + f.Message))
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: uri},
				Region:   sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
			Fingerprints: map[string]string{"bplintFinding/v1": fmt.Sprintf("%x", sum)},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "bplint", Rules: rules}}, Results: results}},
	})
}

// selectAnalyzers filters all down to the comma-separated names, erroring
// on unknown ones (listed in sorted order, so the message is stable).
func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("bplint: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// resolvePatterns expands directory patterns ("./...", "dir", "dir/...")
// into a sorted, de-duplicated list of package directories.
func resolvePatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
					seen[abs] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if _, err := os.Stat(pat); err != nil {
			return nil, fmt.Errorf("bplint: %w", err)
		}
		if abs, err := filepath.Abs(pat); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, pat)
		}
	}
	if len(dirs) == 0 {
		return nil, errors.New("bplint: no packages matched the given patterns")
	}
	sort.Strings(dirs)
	return dirs, nil
}
