// Command bplint runs the repository's custom static-analysis suite
// (internal/analysis) over Go packages and exits nonzero on findings. It is
// built only on the standard library — no analysis framework dependency —
// and is wired into scripts/check.sh and CI.
//
// Usage:
//
//	bplint [flags] [patterns]
//
// Patterns are package directories; a pattern ending in /... walks the
// tree. The default is ./... from the module root. Findings print as
//
//	file:line:col: message [analyzer]
//
// and can be suppressed per line with a //bplint:allow <analyzer> comment
// on the finding's line or the line above (see package analysis).
//
// -json switches stdout to a machine-readable JSON array of findings
// (empty array on a clean run) for tooling; -annotate additionally emits
// GitHub Actions ::error workflow commands on stderr so CI violations
// annotate the offending lines in the run. The nonzero exit and the
// "bplint: N finding(s)" summary on stderr are unchanged in every mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"branchsim/internal/analysis"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list analyzers and exit")
		only     = flag.String("run", "", "comma-separated analyzer names to run (default all)")
		asJSON   = flag.Bool("json", false, "print findings as a JSON array on stdout")
		annotate = flag.Bool("annotate", false, "emit GitHub Actions ::error annotations on stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: bplint [flags] [patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	dirs, err := resolvePatterns(patterns)
	if err != nil {
		fatal(err)
	}

	var findings []analysis.Finding
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, analysis.Run(pkg, loader.Module, analyzers)...)
	}
	if *asJSON {
		if err := printJSON(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *annotate {
		for _, f := range findings {
			// GitHub Actions workflow command: annotates the file/line in
			// the run's diff and log views.
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the stable machine-readable shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		fatal(fmt.Errorf("bplint: unknown analyzer %q", n))
	}
	return out
}

// resolvePatterns expands directory patterns ("./...", "dir", "dir/...")
// into a sorted, de-duplicated list of package directories.
func resolvePatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
					seen[abs] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if abs, err := filepath.Abs(pat); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
