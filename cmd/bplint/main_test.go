package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"time"

	"branchsim/internal/analysis"
)

// TestSortFindingsDeterministic pins the global output order: file, then
// line, then column, then analyzer — independent of the order packages
// were analyzed or cached in.
func TestSortFindingsDeterministic(t *testing.T) {
	mk := func(file string, line, col int, analyzer string) analysis.Finding {
		return analysis.Finding{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
		}
	}
	shuffled := []analysis.Finding{
		mk("b.go", 1, 1, "determinism"),
		mk("a.go", 9, 1, "frozen"),
		mk("a.go", 2, 5, "maporder"),
		mk("a.go", 2, 5, "frozen"),
		mk("a.go", 2, 1, "panicmsg"),
	}
	want := []analysis.Finding{
		mk("a.go", 2, 1, "panicmsg"),
		mk("a.go", 2, 5, "frozen"),
		mk("a.go", 2, 5, "maporder"),
		mk("a.go", 9, 1, "frozen"),
		mk("b.go", 1, 1, "determinism"),
	}
	sortFindings(shuffled)
	for i := range want {
		if shuffled[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, shuffled[i], want[i])
		}
	}
}

// TestExitCodes pins the process exit contract: 0 clean, 1 findings, 2
// usage/load error.
func TestExitCodes(t *testing.T) {
	const badFixture = "../../internal/analysis/testdata/determinism/bad"
	cases := []struct {
		name string
		opts options
		want int
	}{
		{"clean", options{patterns: []string{"../../internal/rng"}, noCache: true}, 0},
		{"findings", options{patterns: []string{badFixture}, noCache: true}, 1},
		{"unknown-analyzer", options{only: "nosuchanalyzer", noCache: true}, 2},
		{"missing-dir", options{patterns: []string{"./definitely-missing"}, noCache: true}, 2},
		{"list", options{list: true}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.opts, &stdout, &stderr); got != tc.want {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestWorkflowEscaping pins the GitHub Actions workflow-command escaping:
// %, \r and \n in free text would terminate or corrupt the ::error
// command, and property values additionally reserve "," and ":".
func TestWorkflowEscaping(t *testing.T) {
	data := []struct{ in, want string }{
		{"plain text", "plain text"},
		{"100% drift", "100%25 drift"},
		{"line one\nline two", "line one%0Aline two"},
		{"cr\rlf\n", "cr%0Dlf%0A"},
		{"a%0Ab", "a%250Ab"}, // pre-escaped input must round-trip, not pass through
		{"x, y: z", "x, y: z"},
	}
	for _, tc := range data {
		if got := escapeWorkflowData(tc.in); got != tc.want {
			t.Errorf("escapeWorkflowData(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	props := []struct{ in, want string }{
		{"dir/file.go", "dir/file.go"},
		{"a,b.go", "a%2Cb.go"},
		{"c:/odd.go", "c%3A/odd.go"},
		{"p%,:\n.go", "p%25%2C%3A%0A.go"},
	}
	for _, tc := range props {
		if got := escapeWorkflowProperty(tc.in); got != tc.want {
			t.Errorf("escapeWorkflowProperty(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSARIFOutput runs the tool in -sarif mode over a known-bad fixture
// and checks the log shape code-scanning depends on: version, one rule
// per analyzer, ruleId naming the analyzer, repo-relative URIs and a
// stable content-hash fingerprint.
func TestSARIFOutput(t *testing.T) {
	opts := options{
		patterns: []string{"../../internal/analysis/testdata/determinism/bad"},
		noCache:  true,
		asSARIF:  true,
	}
	var stdout, stderr bytes.Buffer
	if code := run(opts, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "bplint" {
		t.Errorf("driver name %q, want bplint", run0.Tool.Driver.Name)
	}
	if len(run0.Tool.Driver.Rules) != len(analysis.All()) {
		t.Errorf("%d rules, want one per analyzer (%d)", len(run0.Tool.Driver.Rules), len(analysis.All()))
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results for a known-bad fixture")
	}
	for _, r := range run0.Results {
		if r.RuleID == "" || r.Level != "error" {
			t.Errorf("result %+v: want non-empty ruleId and level error", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		uri := r.Locations[0].Physical.Artifact.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("URI %q is not repo-relative slash-separated", uri)
		}
		fp := r.Fingerprints["bplintFinding/v1"]
		if len(fp) != 64 {
			t.Errorf("fingerprint %q is not a sha256 hex digest", fp)
		}
	}

	// The same run must produce byte-identical SARIF: fingerprints are
	// content hashes, not positions or timestamps.
	var again bytes.Buffer
	if code := run(opts, &again, &bytes.Buffer{}); code != 1 {
		t.Fatal("second SARIF run failed")
	}
	if !bytes.Equal(stdout.Bytes(), again.Bytes()) {
		t.Error("SARIF output is not deterministic across runs")
	}

	var both bytes.Buffer
	opts.asJSON = true
	if code := run(opts, &both, &both); code != 2 {
		t.Errorf("-json with -sarif should be a usage error, got exit %d", code)
	}
}

// TestCacheWarmRun proves the two cache guarantees: a warm run's stdout is
// byte-identical to the cold run's, and it is at least twice as fast
// (in practice far more — it skips type-checking entirely).
func TestCacheWarmRun(t *testing.T) {
	cacheDir := t.TempDir()
	opts := options{
		patterns: []string{"../../internal/analysis/testdata/determinism/bad"},
		cacheDir: cacheDir,
	}

	var cold, warm bytes.Buffer
	start := time.Now()
	if code := run(opts, &cold, &bytes.Buffer{}); code != 1 {
		t.Fatalf("cold run exit = %d, want 1", code)
	}
	coldDur := time.Since(start)

	start = time.Now()
	if code := run(opts, &warm, &bytes.Buffer{}); code != 1 {
		t.Fatalf("warm run exit = %d, want 1", code)
	}
	warmDur := time.Since(start)

	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if cold.Len() == 0 {
		t.Fatal("cold run produced no findings output")
	}
	if warmDur > coldDur/2 {
		t.Errorf("warm run (%v) is not at least 2x faster than cold (%v)", warmDur, coldDur)
	}
}

// TestCacheInvalidation: a different analyzer selection must not reuse a
// cached finding set computed under another selection.
func TestCacheInvalidation(t *testing.T) {
	cacheDir := t.TempDir()
	const badFixture = "../../internal/analysis/testdata/determinism/bad"

	var all, one bytes.Buffer
	if code := run(options{patterns: []string{badFixture}, cacheDir: cacheDir}, &all, &bytes.Buffer{}); code != 1 {
		t.Fatalf("full-suite run exit = %d, want 1", code)
	}
	if code := run(options{patterns: []string{badFixture}, cacheDir: cacheDir, only: "panicmsg"}, &one, &bytes.Buffer{}); code == 2 {
		t.Fatalf("panicmsg-only run errored:\n%s", one.String())
	}
	if bytes.Equal(all.Bytes(), one.Bytes()) {
		t.Errorf("analyzer selection did not change cached output:\n%s", all.String())
	}
}
