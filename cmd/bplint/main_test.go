package main

import (
	"bytes"
	"go/token"
	"testing"
	"time"

	"branchsim/internal/analysis"
)

// TestSortFindingsDeterministic pins the global output order: file, then
// line, then column, then analyzer — independent of the order packages
// were analyzed or cached in.
func TestSortFindingsDeterministic(t *testing.T) {
	mk := func(file string, line, col int, analyzer string) analysis.Finding {
		return analysis.Finding{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
		}
	}
	shuffled := []analysis.Finding{
		mk("b.go", 1, 1, "determinism"),
		mk("a.go", 9, 1, "frozen"),
		mk("a.go", 2, 5, "maporder"),
		mk("a.go", 2, 5, "frozen"),
		mk("a.go", 2, 1, "panicmsg"),
	}
	want := []analysis.Finding{
		mk("a.go", 2, 1, "panicmsg"),
		mk("a.go", 2, 5, "frozen"),
		mk("a.go", 2, 5, "maporder"),
		mk("a.go", 9, 1, "frozen"),
		mk("b.go", 1, 1, "determinism"),
	}
	sortFindings(shuffled)
	for i := range want {
		if shuffled[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, shuffled[i], want[i])
		}
	}
}

// TestExitCodes pins the process exit contract: 0 clean, 1 findings, 2
// usage/load error.
func TestExitCodes(t *testing.T) {
	const badFixture = "../../internal/analysis/testdata/determinism/bad"
	cases := []struct {
		name string
		opts options
		want int
	}{
		{"clean", options{patterns: []string{"../../internal/rng"}, noCache: true}, 0},
		{"findings", options{patterns: []string{badFixture}, noCache: true}, 1},
		{"unknown-analyzer", options{only: "nosuchanalyzer", noCache: true}, 2},
		{"missing-dir", options{patterns: []string{"./definitely-missing"}, noCache: true}, 2},
		{"list", options{list: true}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.opts, &stdout, &stderr); got != tc.want {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestCacheWarmRun proves the two cache guarantees: a warm run's stdout is
// byte-identical to the cold run's, and it is at least twice as fast
// (in practice far more — it skips type-checking entirely).
func TestCacheWarmRun(t *testing.T) {
	cacheDir := t.TempDir()
	opts := options{
		patterns: []string{"../../internal/analysis/testdata/determinism/bad"},
		cacheDir: cacheDir,
	}

	var cold, warm bytes.Buffer
	start := time.Now()
	if code := run(opts, &cold, &bytes.Buffer{}); code != 1 {
		t.Fatalf("cold run exit = %d, want 1", code)
	}
	coldDur := time.Since(start)

	start = time.Now()
	if code := run(opts, &warm, &bytes.Buffer{}); code != 1 {
		t.Fatalf("warm run exit = %d, want 1", code)
	}
	warmDur := time.Since(start)

	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if cold.Len() == 0 {
		t.Fatal("cold run produced no findings output")
	}
	if warmDur > coldDur/2 {
		t.Errorf("warm run (%v) is not at least 2x faster than cold (%v)", warmDur, coldDur)
	}
}

// TestCacheInvalidation: a different analyzer selection must not reuse a
// cached finding set computed under another selection.
func TestCacheInvalidation(t *testing.T) {
	cacheDir := t.TempDir()
	const badFixture = "../../internal/analysis/testdata/determinism/bad"

	var all, one bytes.Buffer
	if code := run(options{patterns: []string{badFixture}, cacheDir: cacheDir}, &all, &bytes.Buffer{}); code != 1 {
		t.Fatalf("full-suite run exit = %d, want 1", code)
	}
	if code := run(options{patterns: []string{badFixture}, cacheDir: cacheDir, only: "panicmsg"}, &one, &bytes.Buffer{}); code == 2 {
		t.Fatalf("panicmsg-only run errored:\n%s", one.String())
	}
	if bytes.Equal(all.Bytes(), one.Bytes()) {
		t.Errorf("analyzer selection did not change cached output:\n%s", all.String())
	}
}
