// Package branchsim is the public API of the branch-predictor simulation
// library reproducing Jiménez, "Reconsidering Complex Branch Predictors"
// (HPCA 2003). It re-exports the pieces a downstream user composes:
//
//   - Predictors: the classic baselines (bimodal, gshare, gselect, bi-mode,
//     local two-level, the Alpha 21264 tournament), the complex academic
//     predictors the paper evaluates (2Bc-gskew, Evers' multi-component
//     hybrid, the global+local perceptron), and the paper's contribution,
//     the pipelined single-cycle GShareFast.
//   - Organizations: Overriding (quick predictor backed by a slow accurate
//     one, as in the Alpha EV6/EV8 front ends).
//   - A CACTI-style DelayModel giving access latencies at an 8-FO4 clock.
//   - Twelve synthetic SPECint2000-like Workloads and the trace format.
//   - Two simulators: the functional accuracy driver and the cycle-level
//     out-of-order pipeline (Table 1 machine).
//   - The experiment registry regenerating every table and figure.
//
// Quick start:
//
//	p := branchsim.NewGShareFast(64 << 10)
//	prog := branchsim.NewWorkload(branchsim.Benchmarks()[0])
//	res := branchsim.RunAccuracy(p, prog, branchsim.AccuracyOptions{MaxInsts: 1e6})
//	fmt.Printf("%s: %.2f%% mispredicted\n", p.Name(), res.MispredictPercent())
package branchsim

import (
	"branchsim/internal/core"
	"branchsim/internal/delaymodel"
	"branchsim/internal/experiments"
	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// Predictor is a conditional branch direction predictor: Predict(pc) then
// Update(pc, taken), strictly alternating in program order.
type Predictor = predictor.Predictor

// CycleAware predictors (GShareFast) receive the fetch-cycle clock.
type CycleAware = predictor.CycleAware

// GShareFast is the paper's pipelined single-cycle predictor (§3).
type GShareFast = core.GShareFast

// GShareFastConfig sizes a GShareFast (entries, PHT latency, update lag,
// buffer width).
type GShareFastConfig = core.Config

// Overriding is the quick+slow delay-hiding organization (§2.6.1).
type Overriding = core.Overriding

// Predictor constructors, budget-sized. Each returns the largest
// configuration of its kind fitting (approximately) the byte budget.
var (
	NewBimodal        = predictor.NewBimodalFromBudget
	NewGShare         = predictor.NewGShareFromBudget
	NewGSelect        = predictor.NewGSelectFromBudget
	NewBiMode         = predictor.NewBiModeFromBudget
	NewLocal          = predictor.NewLocalFromBudget
	NewEV6            = predictor.NewEV6FromBudget
	NewGSkew2Bc       = predictor.NewGSkew2BcFromBudget
	NewMultiComponent = predictor.NewMultiComponentFromBudget
	NewPerceptron     = predictor.NewPerceptronFromBudget
	NewYAGS           = predictor.NewYAGSFromBudget
	NewAgree          = predictor.NewAgreeFromBudget
)

// BiModeFast is the bi-mode predictor reorganized with the gshare.fast
// pipelining — the §5 future-work direction, implemented.
type BiModeFast = core.BiModeFast

// NewBiModeFast returns a pipelined bi-mode sized to budgetBytes with
// delay-model latency.
func NewBiModeFast(budgetBytes int) *BiModeFast {
	return experiments.NewBiModeFast(budgetBytes)
}

// NewGShareFast returns the paper's pipelined predictor sized to
// budgetBytes, with its PHT read latency taken from the default delay
// model.
func NewGShareFast(budgetBytes int) *GShareFast {
	return experiments.NewGShareFast(budgetBytes)
}

// NewGShareFastConfig builds a GShareFast from an explicit configuration.
func NewGShareFastConfig(cfg GShareFastConfig) *GShareFast { return core.New(cfg) }

// NewOverriding wraps slow behind quick with the given access latency.
func NewOverriding(quick, slow Predictor, latency int) *Overriding {
	return core.NewOverriding(quick, slow, latency)
}

// NewPredictorByName builds any registered predictor kind ("gshare",
// "perceptron", "gshare.fast", ...) sized to budgetBytes.
func NewPredictorByName(kind string, budgetBytes int) (Predictor, error) {
	return experiments.NewPredictor(kind, budgetBytes)
}

// PredictorKinds lists the names NewPredictorByName accepts.
func PredictorKinds() []string { return experiments.PredictorKinds() }

// DelayModel estimates SRAM access latencies in FO4 and cycles.
type DelayModel = delaymodel.Model

// DefaultDelayModel is calibrated to the paper's anchors (1K-entry PHT in
// one 8-FO4 cycle; hundreds-of-KB tables at ~9-11 cycles).
var DefaultDelayModel = delaymodel.Default

// Inst is one dynamic instruction of the synthetic ISA.
type Inst = trace.Inst

// Source produces a dynamic instruction stream: either a live synthetic
// workload or a recorded trace's replay cursor.
type Source = trace.Source

// Generator is the historical name for Source.
type Generator = trace.Generator

// BranchRec is one conditional branch of a stream, positioned by its
// 0-based instruction index — the record of the accuracy fast path.
type BranchRec = trace.BranchRec

// BranchSource batch-serves a stream's conditional branches without
// materializing the instructions between them. Replay cursors (via the
// recording's precomputed branch index) and live Workloads implement it;
// RunAccuracy and RunAccuracyBlocks detect it and switch to a batched
// inner loop with bit-identical results.
type BranchSource = trace.BranchSource

// BatchLen is the recommended NextBranches batch length.
const BatchLen = trace.BatchLen

// InstSource batch-serves a stream's instructions — the timing simulator's
// fast-path protocol. Replay cursors implement it straight from the
// recording's columnar storage; RunTiming detects it and switches to a
// batched inner loop with bit-identical results.
type InstSource = trace.InstSource

// InstBatchLen is the recommended NextInsts batch length.
const InstBatchLen = trace.InstBatchLen

// Recording is a materialized instruction stream: record a workload once,
// replay it across a whole experiment grid. Replay is bit-identical to live
// generation. Recording implements io.WriterTo (the deterministic
// varint-delta trace format); ReadTrace decodes it.
type Recording = trace.Recording

// Record drains up to maxInsts instructions from src into a Recording.
func Record(src Source, maxInsts int64) *Recording { return trace.Record(src, maxInsts) }

// RecordWorkload records a benchmark's deterministic stream.
func RecordWorkload(b Benchmark, maxInsts int64) *Recording { return workload.Record(b, maxInsts) }

// ReadTrace decodes a recording written with Recording.WriteTo.
var ReadTrace = trace.ReadRecording

// Benchmark describes one synthetic SPECint2000-like workload.
type Benchmark = workload.Profile

// Workload is an instantiated synthetic benchmark program.
type Workload = workload.Program

// Benchmarks returns the twelve benchmark profiles in SPEC order.
func Benchmarks() []Benchmark { return workload.Profiles() }

// BenchmarkByName finds a profile by name ("gzip" or "164.gzip").
func BenchmarkByName(name string) (Benchmark, bool) { return workload.ByName(name) }

// NewWorkload instantiates a benchmark's deterministic instruction stream.
func NewWorkload(b Benchmark) *Workload { return workload.New(b) }

// AccuracyOptions configures RunAccuracy.
type AccuracyOptions = funcsim.Options

// AccuracyResult reports a functional (accuracy-only) run.
type AccuracyResult = funcsim.Result

// RunAccuracy streams a workload's branches through a predictor and counts
// mispredictions.
func RunAccuracy(p Predictor, g Generator, opts AccuracyOptions) AccuracyResult {
	return funcsim.Run(p, g, opts)
}

// AccuracyLane is one predictor's slot in a fused RunAccuracyMany sweep.
type AccuracyLane = funcsim.Lane

// RunAccuracyMany streams one trace pass through every lane's predictor at
// once — the grid-fused sweep driver — returning per-lane results
// bit-identical to per-lane RunAccuracy calls.
func RunAccuracyMany(lanes []AccuracyLane, src BranchSource, opts AccuracyOptions) []AccuracyResult {
	return funcsim.RunMany(lanes, src, opts)
}

// BlockPredictor is the block-at-a-time protocol of the multiple-branch
// extension (§3.3.1); GShareFast implements it.
type BlockPredictor = funcsim.BlockPredictor

// RunAccuracyBlocks evaluates a block predictor with up to
// opts.BlockBranches branches predicted per block from block-start history.
func RunAccuracyBlocks(p BlockPredictor, name string, g Generator, opts AccuracyOptions) AccuracyResult {
	return funcsim.RunBlocks(p, name, g, opts)
}

// MachineConfig parameterizes the cycle-level pipeline model.
type MachineConfig = pipeline.Config

// DefaultMachine returns the paper's Table 1 machine (8-wide, 20-deep,
// 64KB L1s, 2MB L2, 512-entry BTB).
func DefaultMachine() MachineConfig { return pipeline.DefaultConfig() }

// TimingResult reports a cycle-level run (IPC, misprediction and override
// rates, cache statistics).
type TimingResult = pipeline.Result

// RunTiming replays a workload through the pipeline model with the given
// predictor organization.
func RunTiming(cfg MachineConfig, p Predictor, g Generator, maxInsts, warmupInsts int64) TimingResult {
	return pipeline.New(cfg, p).Run(g, maxInsts, warmupInsts)
}

// MemSidecar is a precomputed memory-hierarchy outcome column for one
// (recording, cache geometry) pair. In trace-driven no-wrong-path timing
// the L1I/L1D/L2 access sequence is predictor-independent, so it can be
// simulated once per recording and shared by every predictor evaluated on
// it.
type MemSidecar = pipeline.MemSidecar

// NewMemSidecar simulates rec's cache-hierarchy accesses once under cfg's
// cache geometry and returns the per-instruction outcomes for RunTimingFast.
func NewMemSidecar(rec *Recording, cfg MachineConfig) *MemSidecar {
	return pipeline.BuildMemSidecar(rec, pipeline.MemGeometryOf(cfg))
}

// RunTimingFast replays a recording through the pipeline model with the
// sidecar's precomputed memory latencies, bit-identical to RunTiming over
// rec.Replay() but without re-simulating the cache hierarchy. The sidecar
// must come from NewMemSidecar(rec, cfg); one that does not cover the run
// is ignored and the live hierarchy is simulated instead.
func RunTimingFast(cfg MachineConfig, p Predictor, rec *Recording, side *MemSidecar, maxInsts, warmupInsts int64) TimingResult {
	sim := pipeline.New(cfg, p)
	sim.SetMemSidecar(side)
	return sim.Run(rec.Replay(), maxInsts, warmupInsts)
}

// TimingLane is one (machine config, predictor organization) cell of a
// fused timing sweep. Lane configs may vary pipeline shape, latencies and
// BTB freely but must share one cache geometry — RunTimingMany panics on a
// mixed batch.
type TimingLane = pipeline.Lane

// RunTimingMany replays one workload through every lane's pipeline at
// once: each instruction batch is decoded once and stepped through all
// lanes, so the trace walk, batch decode and sidecar lookups are paid once
// per sweep instead of once per cell. Results are index-aligned with lanes
// and bit-identical to running each lane alone through RunTiming /
// RunTimingFast. A nil or non-covering sidecar falls back to per-lane live
// cache simulation, still in one pass.
func RunTimingMany(lanes []TimingLane, src Source, side *MemSidecar, maxInsts, warmupInsts int64) []TimingResult {
	return pipeline.RunMany(lanes, src, side, maxInsts, warmupInsts)
}

// TimingMode selects the predictor organization for timing cells: Ideal
// gives every predictor a single-cycle response; Realistic puts complex
// predictors behind a 2K-entry quick gshare in the overriding organization.
type TimingMode = experiments.TimingMode

// Timing modes.
const (
	Ideal     = experiments.Ideal
	Realistic = experiments.Realistic
)

// TimingMemo memoizes timing Results by canonical cell key — (kind,
// organization, budget, benchmark, measurement window, machine) — so cells
// duplicated across experiment grids are simulated once. The experiment
// registry runs every figure and ablation through a process-wide memo;
// NewTimingMemo gives a custom grid its own.
type TimingMemo = experiments.TimingMemo

// NewTimingMemo returns an empty timing memo. Its Cell method is the
// memoized grid-cell primitive: recorded stream and memory sidecar from the
// process-wide trace store, batched replay, Result cached in the memo.
func NewTimingMemo() *TimingMemo { return experiments.NewTimingMemo() }

// AccuracyMemo is the timing memo's functional-simulation sibling:
// accuracy Results memoized by canonical cell key.
type AccuracyMemo = experiments.AccuracyMemo

// NewAccuracyMemo returns an empty accuracy memo.
func NewAccuracyMemo() *AccuracyMemo { return experiments.NewAccuracyMemo() }

// ResultStore is the persistent tier beneath the memos: a disk-backed,
// content-addressed store of cell results, keyed by the full canonical
// cell identity including the recorded stream's content digest
// (Recording.Digest). Set ExperimentOptions.Store to thread one through an
// experiment run; store-served cells are bit-identical to fresh
// simulation, so stdout stays byte-for-byte reproducible warm or cold.
type ResultStore = resultstore.Store

// ResultStoreStats counts a store's traffic: cells served from disk,
// computed cold, recomputed after invalidation, and written back.
type ResultStoreStats = resultstore.Stats

// OpenResultStore opens (creating if needed) a persistent result store
// rooted at dir.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// PlannedCell is one schedulable unit of an experiment grid: a canonical
// key and the closure that computes it.
type PlannedCell = experiments.PlannedCell

// RunCells executes planned cells on a worker pool of at most parallel
// goroutines — the scheduler the experiment grids shard their distinct
// cells through. A panic inside any cell is re-raised carrying that cell's
// canonical key.
func RunCells(parallel int, cells []PlannedCell) { experiments.RunCells(parallel, cells) }

// ExperimentOptions configures experiment runs.
type ExperimentOptions = experiments.Options

// Experiment is a rendered experiment outcome.
type Experiment = experiments.Outcome

// Experiments returns the registered experiment ids (one per paper table
// and figure, plus ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one table or figure by id.
func RunExperiment(id string, opts ExperimentOptions) (*Experiment, error) {
	runner, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return runner(opts), nil
}
