package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SizeBytes guards the paper's hardware-budget accounting: for every
// concrete type implementing the predictor.Predictor contract (detected
// structurally, so wrappers in any package are covered), each state-carrying
// slice or array field must be referenced — directly or through
// same-package helpers — from the type's SizeBytes method. A table that is
// allocated but never counted silently under-reports the budget that forms
// the x axis of every figure.
//
// Bookkeeping fields that model mechanism rather than SRAM (and whose
// hardware cost is charged analytically) are annotated at the field with
// //bplint:allow sizebytes and a reason.
var SizeBytes = &Analyzer{
	Name: "sizebytes",
	Doc:  "require Predictor implementations to account every state table in SizeBytes",
	Run:  runSizeBytes,
}

// predictorIface is the structural mirror of predictor.Predictor, built
// here so the analyzer needs no import of the package under test:
//
//	Predict(uint64) bool
//	Update(uint64, bool)
//	SizeBytes() int
//	Name() string
var predictorIface = func() *types.Interface {
	u64 := types.NewVar(token.NoPos, nil, "", types.Typ[types.Uint64])
	tkn := types.NewVar(token.NoPos, nil, "", types.Typ[types.Bool])
	ret := func(t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, nil, "", t))
	}
	sig := func(params *types.Tuple, results *types.Tuple) *types.Signature {
		return types.NewSignatureType(nil, nil, nil, params, results, false)
	}
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Predict", sig(types.NewTuple(u64), ret(types.Typ[types.Bool]))),
		types.NewFunc(token.NoPos, nil, "Update", sig(types.NewTuple(u64, tkn), nil)),
		types.NewFunc(token.NoPos, nil, "SizeBytes", sig(nil, ret(types.Typ[types.Int]))),
		types.NewFunc(token.NoPos, nil, "Name", sig(nil, ret(types.Typ[types.String]))),
	}, nil)
	iface.Complete()
	return iface
}()

func runSizeBytes(pass *Pass) {
	declByObj := funcDecls(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !types.Implements(named, predictorIface) &&
			!types.Implements(types.NewPointer(named), predictorIface) {
			continue
		}
		checkPredictorType(pass, named, st, declByObj)
	}
}

func checkPredictorType(pass *Pass, named *types.Named, st *types.Struct, declByObj map[types.Object]*ast.FuncDecl) {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, "SizeBytes")
	sizeFn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	root := declByObj[sizeFn]
	if root == nil {
		// SizeBytes is promoted from a type in another package; its body is
		// out of reach, so stay silent rather than guess.
		return
	}
	referenced := reachableFieldRefs(pass, root, declByObj)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Anonymous() || !stateCarrying(f.Type()) {
			continue
		}
		if !referenced[f] {
			pass.Reportf(f.Pos(),
				"%s.%s is a state-carrying %s never counted by (%s).SizeBytes — hardware budget under-reported",
				named.Obj().Name(), f.Name(), f.Type().Underlying(), named.Obj().Name())
		}
	}
}

// funcDecls maps every function/method object declared in the package to
// its AST declaration.
func funcDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	m := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// reachableFieldRefs collects every struct field selected in root's body or
// in the body of any same-package function or method transitively called
// from it. The over-approximation errs toward silence: a field counted via
// a helper (e.g. a sub-table's own sizeBytes method) is treated as
// referenced.
func reachableFieldRefs(pass *Pass, root *ast.FuncDecl, declByObj map[types.Object]*ast.FuncDecl) map[*types.Var]bool {
	refs := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]bool{root: true}
	queue := []*ast.FuncDecl{root}
	enqueue := func(obj types.Object) {
		if decl := declByObj[obj]; decl != nil && !seen[decl] {
			seen[decl] = true
			queue = append(queue, decl)
		}
	}
	for len(queue) > 0 {
		decl := queue[0]
		queue = queue[1:]
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if sel := pass.Info.Selections[e]; sel != nil {
					switch sel.Kind() {
					case types.FieldVal:
						if v, ok := sel.Obj().(*types.Var); ok {
							refs[v] = true
						}
					case types.MethodVal, types.MethodExpr:
						enqueue(sel.Obj())
					}
				} else if obj := pass.Info.Uses[e.Sel]; obj != nil {
					enqueue(obj)
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[e]; obj != nil {
					enqueue(obj)
				}
			}
			return true
		})
	}
	return refs
}

// stateCarrying reports whether a field type is a slice or array whose
// elements hold predictor state: numerics, booleans, structs, or pointers
// to those.
func stateCarrying(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return stateElem(u.Elem())
	case *types.Array:
		return stateElem(u.Elem())
	}
	return false
}

func stateElem(e types.Type) bool {
	switch u := e.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsNumeric|types.IsBoolean) != 0
	case *types.Struct:
		return true
	case *types.Pointer:
		return stateElem(u.Elem())
	}
	return false
}
