package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes standard-library type-checking across fixture
// tests; fixture packages get distinct synthetic import paths.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
	loaderErr    error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLoader
}

// wantRe matches expectation comments in fixtures: // want "substring"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectations returns line → wanted message substring for one package.
func expectations(pkg *Package) map[string]map[int]string {
	wants := map[string]map[int]string{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int]string{}
				}
				wants[pos.Filename][pos.Line] = m[1]
			}
		}
	}
	return wants
}

// checkFixture loads dir under importPath, runs exactly one analyzer, and
// verifies the findings match the fixture's want comments one-for-one.
func checkFixture(t *testing.T, a *Analyzer, dir, importPath string) (nfindings int) {
	t.Helper()
	loader := fixtureLoader(t)
	pkg, err := loader.LoadDirAs(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := expectations(pkg)
	findings := Run(pkg, "branchsim", []*Analyzer{a})

	matched := map[string]map[int]bool{}
	for _, f := range findings {
		want, ok := wants[f.Pos.Filename][f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("finding at %s does not contain %q: %s", f.Pos, want, f.Message)
		}
		if matched[f.Pos.Filename] == nil {
			matched[f.Pos.Filename] = map[int]bool{}
		}
		matched[f.Pos.Filename][f.Pos.Line] = true
	}
	for file, lines := range wants {
		for line, want := range lines {
			if !matched[file][line] {
				t.Errorf("missing finding at %s:%d (want %q)", file, line, want)
			}
		}
	}
	return len(findings)
}

// testAnalyzer exercises one analyzer on its bad (≥1 true positive) and
// good (clean pass) fixtures.
func testAnalyzer(t *testing.T, a *Analyzer, pathPrefix string) {
	t.Helper()
	t.Run("bad", func(t *testing.T) {
		dir := filepath.Join("testdata", a.Name, "bad")
		n := checkFixture(t, a, dir, fmt.Sprintf("%s/%sbad", pathPrefix, a.Name))
		if n == 0 {
			t.Fatalf("%s produced no findings on its known-bad fixture", a.Name)
		}
	})
	t.Run("good", func(t *testing.T) {
		dir := filepath.Join("testdata", a.Name, "good")
		if n := checkFixture(t, a, dir, fmt.Sprintf("%s/%sgood", pathPrefix, a.Name)); n != 0 {
			t.Fatalf("%s produced %d findings on its known-good fixture", a.Name, n)
		}
	})
}

func TestDeterminism(t *testing.T) { testAnalyzer(t, Determinism, "branchsim/internal") }

// TestDeterminismCoversTraceRecording pins the analyzer's reach over the
// record/replay layer: recordings are memoized by (profile, seed, budget)
// and substituted for live generation across the whole experiment grid, so
// internal/trace and internal/tracestore must stay inside the determinism
// gate — and so must internal/funcsim, whose batched branch fast path
// carries the accuracy grids, and internal/pipeline and
// internal/experiments, whose batched/sidecar/memoized timing fast path
// carries the IPC grids. The bad fixture is mounted at each real import
// path and must keep producing findings there. A private loader keeps
// these synthetic packages out of the shared cache, where they would
// shadow the real ones for the self-host test.
func TestDeterminismCoversTraceRecording(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, importPath := range []string{
		"branchsim/internal/trace",
		"branchsim/internal/tracestore",
		"branchsim/internal/funcsim",
		"branchsim/internal/pipeline",
		"branchsim/internal/experiments",
	} {
		t.Run(importPath, func(t *testing.T) {
			dir := filepath.Join("testdata", "determinism", "bad")
			pkg, err := loader.LoadDirAs(dir, importPath)
			if err != nil {
				t.Fatalf("loading %s as %s: %v", dir, importPath, err)
			}
			if fs := Run(pkg, "branchsim", []*Analyzer{Determinism}); len(fs) == 0 {
				t.Fatalf("determinism produced no findings under %s", importPath)
			}
		})
	}
}
func TestPanicMsg(t *testing.T)  { testAnalyzer(t, PanicMsg, "branchsim/internal") }
func TestSizeBytes(t *testing.T) { testAnalyzer(t, SizeBytes, "branchsim/internal") }
func TestPow2Mask(t *testing.T)  { testAnalyzer(t, Pow2Mask, "branchsim/internal") }

// FloatCmp only fires inside internal/stats and internal/experiments, so
// its fixtures mount there; a third pass proves the path gate by running
// the bad fixture under a path the analyzer ignores.
func TestFloatCmp(t *testing.T) {
	testAnalyzer(t, FloatCmp, "branchsim/internal/stats")
	t.Run("ungated-path", func(t *testing.T) {
		dir := filepath.Join("testdata", "floatcmp", "bad")
		pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/predictor/floatfix")
		if err != nil {
			t.Fatal(err)
		}
		if fs := Run(pkg, "branchsim", []*Analyzer{FloatCmp}); len(fs) != 0 {
			t.Fatalf("floatcmp fired outside its gated packages: %v", fs)
		}
	})
}

// PredictPure only fires under internal/predictor, so its fixtures mount
// there; a third pass proves the path gate by mounting the bad fixture
// under a path the analyzer ignores.
func TestPredictPure(t *testing.T) {
	testAnalyzer(t, PredictPure, "branchsim/internal/predictor")
	t.Run("ungated-path", func(t *testing.T) {
		dir := filepath.Join("testdata", "predictpure", "bad")
		pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/core/purefix")
		if err != nil {
			t.Fatal(err)
		}
		if fs := Run(pkg, "branchsim", []*Analyzer{PredictPure}); len(fs) != 0 {
			t.Fatalf("predictpure fired outside internal/predictor: %v", fs)
		}
	})
}

func TestLockGuard(t *testing.T) { testAnalyzer(t, LockGuard, "branchsim/internal") }
func TestKeyFields(t *testing.T) { testAnalyzer(t, KeyFields, "branchsim/internal") }
func TestHotAlloc(t *testing.T)  { testAnalyzer(t, HotAlloc, "branchsim/internal") }
func TestProtoMix(t *testing.T)  { testAnalyzer(t, ProtoMix, "branchsim/internal") }

func TestFrozen(t *testing.T)        { testAnalyzer(t, Frozen, "branchsim/internal") }
func TestSharedCapture(t *testing.T) { testAnalyzer(t, SharedCapture, "branchsim/internal") }
func TestOncePublish(t *testing.T)   { testAnalyzer(t, OncePublish, "branchsim/internal") }
func TestMapOrder(t *testing.T)      { testAnalyzer(t, MapOrder, "branchsim/internal") }

// GlobalState only fires in the hot shared packages, so its fixtures mount
// under internal/pipeline; a third pass proves the path gate by mounting
// the bad fixture under a path the analyzer ignores.
func TestGlobalState(t *testing.T) {
	testAnalyzer(t, GlobalState, "branchsim/internal/pipeline")
	t.Run("ungated-path", func(t *testing.T) {
		dir := filepath.Join("testdata", "globalstate", "bad")
		pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/predictor/globalfix")
		if err != nil {
			t.Fatal(err)
		}
		if fs := Run(pkg, "branchsim", []*Analyzer{GlobalState}); len(fs) != 0 {
			t.Fatalf("globalstate fired outside its gated packages: %v", fs)
		}
	})
}

func TestTwinSync(t *testing.T)   { testAnalyzer(t, TwinSync, "branchsim/internal") }
func TestFieldLanes(t *testing.T) { testAnalyzer(t, FieldLanes, "branchsim/internal") }

// TestSeededDrift is the regression gate for the twin certification: the
// drift pair is the same package twice, except the bad half edited one
// scalar statement without mirroring it into the fused sweep. The bad
// half must produce exactly one twinsync finding — the edited line — and
// the good half exactly zero, pinning both the detection and the
// no-false-positive side of the normalizer.
func TestSeededDrift(t *testing.T) {
	bad := filepath.Join("testdata", "twinsync", "drift", "bad")
	if n := checkFixture(t, TwinSync, bad, "branchsim/internal/driftbad"); n != 1 {
		t.Fatalf("seeded drift produced %d twinsync findings, want exactly 1", n)
	}
	good := filepath.Join("testdata", "twinsync", "drift", "good")
	if n := checkFixture(t, TwinSync, good, "branchsim/internal/driftgood"); n != 0 {
		t.Fatalf("in-sync drift pair produced %d twinsync findings, want 0", n)
	}
}

// SwitchEnum only fires in trace, funcsim and pipeline (by import path
// leaf), so its fixtures mount under synthetic paths ending in /pipeline;
// a third pass proves the gate by mounting the bad fixture elsewhere.
func TestSwitchEnum(t *testing.T) {
	t.Run("bad", func(t *testing.T) {
		dir := filepath.Join("testdata", "switchenum", "bad")
		if n := checkFixture(t, SwitchEnum, dir, "branchsim/internal/enumbad/pipeline"); n == 0 {
			t.Fatal("switchenum produced no findings on its known-bad fixture")
		}
	})
	t.Run("good", func(t *testing.T) {
		dir := filepath.Join("testdata", "switchenum", "good")
		if n := checkFixture(t, SwitchEnum, dir, "branchsim/internal/enumgood/pipeline"); n != 0 {
			t.Fatalf("switchenum produced %d findings on its known-good fixture", n)
		}
	})
	t.Run("ungated-path", func(t *testing.T) {
		dir := filepath.Join("testdata", "switchenum", "bad")
		pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/predictor/enumfix")
		if err != nil {
			t.Fatal(err)
		}
		if fs := Run(pkg, "branchsim", []*Analyzer{SwitchEnum}); len(fs) != 0 {
			t.Fatalf("switchenum fired outside its gated packages: %v", fs)
		}
	})
}

// TestEquivCover runs the bad/good pair (the uncovered-StepBatch finding
// sits on an annotatable line), then checks the twin-group finding — whose
// position is the //bplint:twin directive itself, where no want comment
// can ride — by count and content on a dedicated fixture.
func TestEquivCover(t *testing.T) {
	testAnalyzer(t, EquivCover, "branchsim/internal")
	t.Run("uncovered-twin-group", func(t *testing.T) {
		dir := filepath.Join("testdata", "equivcover", "twinbad")
		pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/equivtwinbad")
		if err != nil {
			t.Fatal(err)
		}
		fs := Run(pkg, "branchsim", []*Analyzer{EquivCover})
		if len(fs) != 1 || !strings.Contains(fs[0].Message, "has no equivalence test") {
			t.Fatalf("want exactly one uncovered-twin-group finding, got %v", fs)
		}
	})
}

// TestAllowDirectiveScope verifies a directive only suppresses the named
// analyzer: the determinism bad fixture keeps all its findings when the
// directive in it names nothing relevant (there is none), and the good
// fixture's os.Getenv is suppressed by name.
func TestAllowDirectiveScope(t *testing.T) {
	dir := filepath.Join("testdata", "determinism", "good")
	pkg, err := fixtureLoader(t).LoadDirAs(dir, "branchsim/internal/allowscope")
	if err != nil {
		t.Fatal(err)
	}
	// PanicMsg is not named by the fixture's directive; running it must not
	// be affected by the determinism allow (it finds nothing here anyway,
	// but the determinism analyzer itself must stay suppressed).
	if fs := Run(pkg, "branchsim", []*Analyzer{Determinism}); len(fs) != 0 {
		t.Fatalf("allow directive failed to suppress determinism: %v", fs)
	}
}
