package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GlobalState inventories package-level mutable state in the hot shared
// packages — the ones every experiment goroutine (and, next, every
// reproduce shard) runs through: internal/trace, internal/tracestore,
// internal/funcsim, internal/pipeline and internal/experiments. A
// package-level variable there is process-shared by construction; the
// sharded drivers are sound only if each such variable is one of
//
//   - a synchronization primitive itself (mutex, Once, WaitGroup, chan);
//   - self-guarded: a struct (or pointer to one) carrying its own mutex,
//     whose fields lockguard then polices (the process-wide trace store
//     and timing memo);
//   - write-once: initialized in its declaration or func init() and never
//     assigned afterwards (lookup tables, registries);
//   - or explicitly audited with //bplint:allow globalstate <reason>.
//
// Anything else — a bare counter, a mutable map, a reassignable pointer —
// is reported. This is the static inventory behind the "measure the real
// constraint before scaling" step: before the parallel-reproduce refactor
// lands, every piece of cross-goroutine state is either proven disciplined
// or carries a signed waiver.
var GlobalState = &Analyzer{
	Name: "globalstate",
	Doc:  "package-level vars in hot packages must be guarded, write-once, or carry an allow",
	Run:  runGlobalState,
}

// globalStatePkgs are the hot shared packages the analyzer gates on — the
// same set the determinism analyzer's coverage test pins.
var globalStatePkgs = map[string]bool{
	"internal/trace":       true,
	"internal/tracestore":  true,
	"internal/funcsim":     true,
	"internal/pipeline":    true,
	"internal/experiments": true,
}

func runGlobalState(pass *Pass) {
	rel := pass.RelPath()
	if !globalStatePkgs[rel] {
		ok := false
		for p := range globalStatePkgs {
			if strings.HasPrefix(rel, p+"/") {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}

	writes := collectGlobalWrites(pass)
	writtenLate := map[*types.Var]token.Pos{}
	for _, w := range writes {
		if w.inInit {
			continue
		}
		if _, seen := writtenLate[w.obj]; !seen {
			writtenLate[w.obj] = w.pos
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok || name.Name == "_" {
						continue
					}
					checkGlobal(pass, name, v, writtenLate)
				}
			}
		}
	}
}

func checkGlobal(pass *Pass, name *ast.Ident, v *types.Var, writtenLate map[*types.Var]token.Pos) {
	if syncPrimitive(v.Type()) || selfGuarded(v.Type()) {
		return
	}
	if pos, ok := writtenLate[v]; ok {
		pass.Reportf(name.Pos(),
			"package-level var %s is written after init (line %d) but is neither a sync primitive nor self-guarded — guard it, make it write-once, or document //bplint:allow globalstate",
			name.Name, pass.Fset.Position(pos).Line)
		return
	}
	// Never assigned outside init: write-once. Mutable aggregates (maps,
	// slices, pointers to plain structs) could still be mutated through
	// element or field stores; those arrive as writes rooted at the var
	// and are caught above, so reaching here means the package treats the
	// value as read-only.
}

// syncPrimitive reports whether t is itself a synchronization mechanism.
func syncPrimitive(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return syncPrimitive(t.Underlying().(*types.Pointer).Elem())
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// selfGuarded reports whether t (or its pointee) is a struct that carries
// its own mutex field — the shape lockguard's annotations then police.
func selfGuarded(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if named := namedOf(st.Field(i).Type()); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" &&
				strings.HasSuffix(named.Obj().Name(), "Mutex") {
				return true
			}
		}
	}
	return false
}
