package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dataflow.go is the shared-state dataflow core under the v3 analyzers
// (frozen, sharedcapture, oncepublish, globalstate, maporder): a
// package-level def/use summary built on flow.go's container-chain
// dominance vocabulary. For every function it records, per local variable,
// where the value originates (a constructor expression or not), every
// write through it, and the earliest point it escapes the function — into
// a return value, another object, an unsanctioned call, a goroutine or a
// closure. Alongside it collects every Lock/Unlock site (generalizing
// lockguard's collector to bare `mu.Lock()` locals) and every write to a
// package-level variable.
//
// Like the rest of the suite this is a conservative approximation, tuned
// so that what it cannot prove safe it reports (the allow directive is the
// escape hatch): aliasing a pointer to another variable counts as an
// escape, as does passing it to any call the analyzer does not explicitly
// sanction.

// useKind classifies one appearance of a variable (as the root identifier
// of an access chain).
type useKind int

const (
	useRead   useKind = iota
	useWrite          // root of an assignment LHS or ++/--
	useEscape         // the value leaves the function (see escapeKind)
)

// escapeKind refines useEscape.
type escapeKind int

const (
	escNone   escapeKind = iota
	escReturn            // mentioned in a return statement
	escStore             // stored into a field, element, global or other variable
	escCall              // passed to (or receiving) a call; callee may sanction it
	escGo                // reaches another goroutine: go/defer statement or closure capture
	escAddr              // address taken with & (only meaningful for value-typed locals)
)

// varUse is one classified appearance of a tracked variable.
type varUse struct {
	kind   useKind
	esc    escapeKind
	callee types.Object // for escCall: the called function/method, if resolvable
	deref  bool         // the use goes through a selector/index (x.f, x[i]), not x itself
	pos    token.Pos
	fn     ast.Node   // enclosing function scope (FuncDecl or FuncLit)
	chain  []ast.Node // statement containers inside fn
}

// localFlow summarizes one function-local variable.
type localFlow struct {
	obj      *types.Var
	ctor     token.Pos  // position of a constructor origin, or NoPos
	ctorType types.Type // the constructed type (composite literal type, new's elem)
	uses     []varUse   // in source order
}

// funcFlow summarizes one function declaration's body.
type funcFlow struct {
	decl   *ast.FuncDecl
	params map[*types.Var]bool // receiver + parameters (+ named results)
	locals map[*types.Var]*localFlow
}

// firstEscape returns the earliest escape of v not excused by sanction
// (sanction may be nil). Escapes inside other functions (closures) count:
// once a closure can see the variable, the constructor no longer owns it.
func (lf *localFlow) firstEscape(sanction func(varUse) bool) token.Pos {
	for _, u := range lf.uses {
		if u.kind != useEscape {
			continue
		}
		if sanction != nil && sanction(u) {
			continue
		}
		return u.pos
	}
	return token.NoPos
}

// funcFlows builds the per-function dataflow summaries for every function
// declaration in the package.
func funcFlows(pass *Pass) map[types.Object]*funcFlow {
	flows := map[types.Object]*funcFlow{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			flows[obj] = buildFuncFlow(pass, fd)
		}
	}
	return flows
}

func buildFuncFlow(pass *Pass, fd *ast.FuncDecl) *funcFlow {
	ff := &funcFlow{decl: fd, params: map[*types.Var]bool{}, locals: map[*types.Var]*localFlow{}}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					ff.params[v] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)

	// First pass: find the locals and their constructor origins.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.Info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				lf := &localFlow{obj: v, ctor: token.NoPos}
				if len(st.Rhs) == len(st.Lhs) {
					if t, ok := ctorExpr(pass, st.Rhs[i]); ok {
						lf.ctor, lf.ctorType = st.Rhs[i].Pos(), t
					}
				}
				ff.locals[v] = lf
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				v, ok := pass.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				lf := &localFlow{obj: v, ctor: token.NoPos}
				if len(st.Values) == 0 {
					// var x T: the zero value is a constructor origin.
					lf.ctor, lf.ctorType = name.Pos(), v.Type()
				} else if i < len(st.Values) {
					if t, ok := ctorExpr(pass, st.Values[i]); ok {
						lf.ctor, lf.ctorType = st.Values[i].Pos(), t
					}
				}
				ff.locals[v] = lf
			}
		}
		return true
	})

	// Second pass: classify every use of a tracked local.
	var stack []ast.Node
	stack = append(stack, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				if lf := ff.locals[v]; lf != nil {
					lf.uses = append(lf.uses, classifyUse(pass, id, stack, fd))
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return ff
}

// ctorExpr reports whether e constructs a fresh value — a composite
// literal, its address, or new(T) — and returns the constructed type.
func ctorExpr(pass *Pass, e ast.Expr) (types.Type, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		if tv, ok := pass.Info.Types[x]; ok && tv.Type != nil {
			return tv.Type, true
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				if tv, ok := pass.Info.Types[cl]; ok && tv.Type != nil {
					return tv.Type, true
				}
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				if tv, ok := pass.Info.Types[x.Args[0]]; ok && tv.Type != nil {
					return tv.Type, true
				}
			}
		}
	}
	return nil, false
}

// classifyUse decides what one appearance of a tracked variable does:
// read, write, or one of the escape shapes. id sits at the top of stack's
// ancestry; fd is the declaring function.
func classifyUse(pass *Pass, id *ast.Ident, stack []ast.Node, fd *ast.FuncDecl) varUse {
	fn := enclosingFunc(stack)
	u := varUse{kind: useRead, pos: id.Pos(), fn: fn, chain: containerChain(stack, fn)}

	// Capture: the use sits inside a function literal, which may outlive
	// the frame and run on another goroutine.
	if fn != ast.Node(fd) {
		u.kind, u.esc = useEscape, escGo
		return u
	}

	// Walk outward through the access chain the ident roots. deref tracks
	// whether we moved through a selector/index — i.e. the use touches
	// state the variable points to rather than the variable itself.
	cur := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr:
			if p.X == cur {
				u.deref = true
				cur = p
				continue
			}
			// id is the Sel half: resolved to a field/method object, the
			// caller's Uses lookup would not have matched the variable.
			return u
		case *ast.IndexExpr:
			if p.X == cur {
				u.deref = true
			}
			cur = p
			continue
		case *ast.ParenExpr, *ast.StarExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
			cur = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				u.kind, u.esc = useEscape, escAddr
				cur = p
				continue
			}
			cur = p
			continue
		case *ast.CallExpr:
			if p.Fun == cur {
				// x.M(...): the variable is the receiver of the call.
				u.kind, u.esc = useEscape, escCall
				u.callee = calleeOf(pass, p)
				return u
			}
			// The variable (or its address) is an argument.
			u.kind, u.esc = useEscape, escCall
			u.callee = calleeOf(pass, p)
			return u
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					if u.esc == escAddr {
						return u // &x on the LHS cannot happen; keep the escape
					}
					u.kind = useWrite
					return u
				}
			}
			// On the RHS: a bare alias or a store into something else —
			// either way the constructor loses sole ownership. Reads that
			// never leave the expression (x.f on a RHS) are not stores.
			if u.deref && u.esc == escNone {
				return u
			}
			u.kind, u.esc = useEscape, escStore
			return u
		case *ast.IncDecStmt:
			u.kind = useWrite
			return u
		case *ast.ReturnStmt:
			u.kind, u.esc = useEscape, escReturn
			return u
		case *ast.CompositeLit:
			// Placed inside another value.
			if !u.deref {
				u.kind, u.esc = useEscape, escStore
			}
			return u
		case *ast.SendStmt:
			if p.Value == cur || !u.deref {
				u.kind, u.esc = useEscape, escGo
			}
			return u
		case *ast.GoStmt, *ast.DeferStmt:
			u.kind, u.esc = useEscape, escGo
			return u
		case *ast.RangeStmt:
			if p.X == cur {
				return u // ranging over the value is a read
			}
			return u
		case ast.Stmt, *ast.FuncLit:
			return u
		default:
			cur = p
		}
	}
	return u
}

// calleeOf resolves the called function or method object of a call, or nil.
func calleeOf(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// lockOp is one Lock/Unlock call site, generalized over lockguard's
// collector: both field mutexes (x.mu.Lock()) and bare local/global
// mutexes (mu.Lock()) are recognized.
type lockOp struct {
	unlock   bool
	deferred bool
	name     string // "mu" or "x.mu": the full locked expression
	pos      token.Pos
	fn       ast.Node
	chain    []ast.Node
}

// collectLockOps gathers every Lock/RLock/Unlock/RUnlock call in the files.
func collectLockOps(pass *Pass) []lockOp {
	var ops []lockOp
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		var unlock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
		case "Unlock", "RUnlock":
			unlock = true
		default:
			return
		}
		// The locked expression must be mutex-shaped: a sync.Mutex/RWMutex
		// (or embedder) value, so Foo.Lock() on arbitrary types stays out.
		tv, ok := pass.Info.Types[ast.Unparen(sel.X)]
		if !ok || tv.Type == nil || !hasMethodNamed(pass.Pkg, tv.Type, "Lock") {
			return
		}
		deferred := false
		if len(stack) > 0 {
			if _, isDefer := stack[len(stack)-1].(*ast.DeferStmt); isDefer {
				deferred = true
			}
		}
		fn := enclosingFunc(stack)
		ops = append(ops, lockOp{
			unlock:   unlock,
			deferred: deferred,
			name:     types.ExprString(ast.Unparen(sel.X)),
			pos:      call.Pos(),
			fn:       fn,
			chain:    containerChain(stack, fn),
		})
	})
	return ops
}

// lockDominates reports whether some Lock (of any mutex when name is "",
// else of the named one) dominates position pos in scope fn with chain,
// with no possibly-intervening non-deferred Unlock of the same mutex —
// the same approximation lockguard uses.
func lockDominates(ops []lockOp, name string, fn ast.Node, pos token.Pos, chain []ast.Node) bool {
	for _, l := range ops {
		if l.unlock || l.fn != fn || l.pos >= pos {
			continue
		}
		if name != "" && l.name != name {
			continue
		}
		if !chainCovers(chain, l.chain) {
			continue
		}
		killed := false
		for _, u := range ops {
			if u.unlock && !u.deferred && u.fn == fn && u.name == l.name &&
				u.pos > l.pos && u.pos < pos {
				killed = true
				break
			}
		}
		if !killed {
			return true
		}
	}
	return false
}

// globalWrite is one write to a package-level variable.
type globalWrite struct {
	obj    *types.Var
	pos    token.Pos
	inInit bool // inside func init() — single-goroutine by the language spec
}

// collectGlobalWrites finds every write through a package-level variable:
// assignments and ++/-- whose lvalue is rooted at the variable (including
// element and field stores), outside the declaration itself.
func collectGlobalWrites(pass *Pass) []globalWrite {
	isPkgVar := func(id *ast.Ident) *types.Var {
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() != pass.Pkg.Scope() {
			return nil
		}
		return v
	}
	var writes []globalWrite
	record := func(e ast.Expr, pos token.Pos, stack []ast.Node) {
		id := rootIdent(ast.Unparen(e))
		if id == nil {
			return
		}
		v := isPkgVar(id)
		if v == nil {
			return
		}
		inInit := false
		if fd, ok := enclosingFunc(stack).(*ast.FuncDecl); ok &&
			fd.Recv == nil && fd.Name.Name == "init" {
			inInit = true
		}
		writes = append(writes, globalWrite{obj: v, pos: pos, inInit: inInit})
	}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs, lhs.Pos(), stack)
			}
		case *ast.IncDecStmt:
			record(st.X, st.Pos(), stack)
		}
	})
	return writes
}

// insideOnceDo reports whether the stack places the current node inside a
// function literal passed to a sync.Once Do call, and returns the
// expression string of the Once value ("e.once"). Write-once publication
// through a Once is the one sanctioned late-write pattern.
func insideOnceDo(pass *Pass, stack []ast.Node) (string, bool) {
	for i := len(stack) - 1; i > 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		argOf := false
		for _, a := range call.Args {
			if a == ast.Node(lit) {
				argOf = true
			}
		}
		if !argOf {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			continue
		}
		if !isSyncOnce(pass.Info.Types[ast.Unparen(sel.X)].Type) {
			continue
		}
		return types.ExprString(ast.Unparen(sel.X)), true
	}
	return "", false
}

// isSyncOnce reports whether t is sync.Once (or a pointer to it).
func isSyncOnce(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Once"
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
