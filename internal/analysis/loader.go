package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module. Imports inside
// the module are resolved recursively from source; standard-library imports
// go through the stdlib source importer, so no compiled export data and no
// external tooling is needed.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // absolute module root directory

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (dir or one
// of its parents must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		root = parent
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Module:  module,
		Root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", path)
}

// LoadDir loads the package in dir, deriving its import path from the
// directory's position under the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.Module)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadDirAs loads the package in dir under an explicit import path. Tests
// use it to give fixture packages simulator-like paths.
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local packages load recursively
// from source, everything else falls through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// PackageDirs walks root and returns every directory holding a Go package,
// skipping hidden directories, testdata and vendor trees.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
