package analysis

import (
	"go/ast"
	"go/types"
)

// flow.go holds the small flow-analysis vocabulary shared by the v2
// analyzers (predictpure, lockguard, keyfields, hotalloc, protomix): root
// identifiers of access chains, statement-container chains for the
// dominance approximation, and enclosing-function lookup.

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, or nil when the chain is rooted in something else (a call result,
// a literal). It is how the flow analyzers decide whether an lvalue or a
// method receiver reaches state owned by a function's receiver or
// parameters.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFunc returns the innermost function literal or declaration on
// the stack, or nil at package scope. Function literals are their own
// analysis scope: a lock taken in a closure proves nothing about its
// enclosing function and vice versa.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return stack[i]
		}
	}
	return nil
}

// containerChain returns the statement containers (blocks and switch/select
// clause bodies) on the stack strictly inside fn, outermost first. Two
// positions share a prefix of container chains exactly when they share
// control-flow context, which is what the lockguard dominance
// approximation compares.
func containerChain(stack []ast.Node, fn ast.Node) []ast.Node {
	var chain []ast.Node
	seenFn := fn == nil
	for _, n := range stack {
		if !seenFn {
			if n == fn {
				seenFn = true
			}
			continue
		}
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			chain = append(chain, n)
		}
	}
	return chain
}

// chainCovers reports whether every container in inner's chain also
// appears in outer's chain — i.e. code at inner executes only when control
// has entered every scope that code at outer is in. (Chains come from one
// AST walk, so identity comparison suffices.)
func chainCovers(outer, inner []ast.Node) bool {
	covered := map[ast.Node]bool{}
	for _, n := range outer {
		covered[n] = true
	}
	for _, n := range inner {
		if !covered[n] {
			return false
		}
	}
	return true
}

// hasMethodNamed reports whether t (or its pointer) has a method with the
// given name, looking through embedding.
func hasMethodNamed(pkg *types.Package, t types.Type, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, pkg, name)
	if _, ok := obj.(*types.Func); ok {
		return true
	}
	obj, _, _ = types.LookupFieldOrMethod(t, true, pkg, name)
	_, ok := obj.(*types.Func)
	return ok
}
