// Package fix is the known-good fixture for the sizebytes analyzer: every
// state table is counted (one through a helper method), and the one
// bookkeeping slice is explicitly allowed.
package fix

// Counted is a two-table predictor with honest accounting.
type Counted struct {
	pht        []uint8
	hysteresis []bool
	scratch    []uint64 //bplint:allow sizebytes driver scratch, not hardware state
	name       string
}

// Predict implements the Predictor contract.
func (c *Counted) Predict(pc uint64) bool { return c.pht[pc%uint64(len(c.pht))] > 1 }

// Update implements the Predictor contract.
func (c *Counted) Update(pc uint64, taken bool) {
	c.scratch = append(c.scratch, pc)
	c.hysteresis[pc%uint64(len(c.hysteresis))] = taken
}

// SizeBytes counts the PHT directly and the hysteresis bits via a helper.
func (c *Counted) SizeBytes() int { return len(c.pht) + c.hystBytes() }

func (c *Counted) hystBytes() int { return (len(c.hysteresis) + 7) / 8 }

// Name implements the Predictor contract.
func (c *Counted) Name() string { return c.name }
