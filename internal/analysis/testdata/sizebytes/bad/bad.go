// Package fix is the known-bad fixture for the sizebytes analyzer: Leaky
// satisfies the Predictor contract but its SizeBytes forgets the
// hysteresis table, under-reporting the hardware budget.
package fix

// Leaky is a two-table predictor that counts only one table.
type Leaky struct {
	pht        []uint8
	hysteresis []bool // want "Leaky.hysteresis is a state-carrying"
	name       string
}

// Predict implements the Predictor contract.
func (l *Leaky) Predict(pc uint64) bool { return l.pht[pc%uint64(len(l.pht))] > 1 }

// Update implements the Predictor contract.
func (l *Leaky) Update(pc uint64, taken bool) {
	i := pc % uint64(len(l.hysteresis))
	l.hysteresis[i] = taken
}

// SizeBytes forgets hysteresis.
func (l *Leaky) SizeBytes() int { return len(l.pht) }

// Name implements the Predictor contract.
func (l *Leaky) Name() string { return l.name }
