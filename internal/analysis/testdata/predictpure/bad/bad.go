// Package fix is the known-bad fixture for the predictpure analyzer: its
// Predict mutates predictor state directly, through a same-package helper,
// and through a cross-package mutator-named method.
package fix

import "sync/atomic"

type counter struct{ v int }

func (c *counter) Add(d int) { c.v += d }

type pred struct {
	table []int8
	hist  uint64
	ctr   counter
	n     atomic.Int64
}

func (p *pred) index(pc uint64) int { return int(pc) % len(p.table) }

// train bumps the indexed counter — an impure helper Predict must not call.
func (p *pred) train(pc uint64) { p.table[p.index(pc)]++ }

func (p *pred) Predict(pc uint64) bool {
	p.hist = p.hist<<1 | 1 // want "must not mutate predictor state"
	p.ctr.Add(1)           // want "must not mutate predictor state"
	p.train(pc)            // want "must not mutate predictor state"
	p.n.Add(1)             // want "must not mutate predictor state"
	p.table[p.index(pc)]-- // want "must not mutate predictor state"
	return p.table[p.index(pc)] >= 0
}

func (p *pred) PredictBits(pc uint64) (bool, int) {
	p.hist++ // want "must not mutate predictor state"
	return p.table[p.index(pc)] >= 0, int(p.hist)
}

// Update is the designated mutation point; it may do all of the above.
func (p *pred) Update(pc uint64, taken bool) {
	if taken {
		p.train(pc)
	} else {
		p.table[p.index(pc)]--
	}
	p.hist = p.hist<<1 | 1
}
