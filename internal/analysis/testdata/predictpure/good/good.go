// Package fix is the known-good fixture for the predictpure analyzer: its
// Predict only reads state (through a pure same-package helper), local
// bindings are not mutations, and the dot-product-memo pattern carries a
// documented allow directive.
package fix

type pred struct {
	table     []int8
	hist      uint64
	memoPC    uint64
	memoValid bool
}

// output is a pure helper: it reads the table, never writes it.
func (p *pred) output(pc uint64) int {
	y := int(p.table[int(pc)%len(p.table)])
	if p.hist&1 == 1 {
		y++
	}
	return y
}

func (p *pred) Predict(pc uint64) bool {
	y := p.output(pc) // pure helper call: not a violation
	y += 0            // rebinding a local is not a state mutation
	// Mirrors the perceptron dot-product memo: Update consults the memo
	// only on a PC match and always invalidates it, so the write is
	// observationally pure.
	//bplint:allow predictpure memo never changes an outcome; Update invalidates it on every call
	p.memoPC, p.memoValid = pc, true
	return y >= 0
}

func (p *pred) Update(pc uint64, taken bool) {
	p.memoValid = false
	if taken {
		p.table[int(pc)%len(p.table)]++
	} else {
		p.table[int(pc)%len(p.table)]--
	}
	p.hist = p.hist<<1 | 1
}
