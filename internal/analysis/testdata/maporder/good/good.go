// Package fix is the known-good fixture for the maporder analyzer:
// collect-and-sort before emission, order-insensitive arithmetic, plus one
// documented allow.
package fix

import (
	"fmt"
	"sort"
)

// report collects keys, sorts them, and only then formats: the sanctioned
// pattern.
func report(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d\n", k, m[k])
	}
	return s
}

// total is order-insensitive arithmetic, not an emission sink.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// progress logs inside the range, documented as order-indifferent.
func progress(m map[string]int) {
	for k := range m {
		fmt.Println("done:", k) //bplint:allow maporder fixture: progress only, never in results
	}
}
