// Package fix is the known-bad fixture for the maporder analyzer: map
// iteration order flowing into formatted output, writer calls and
// string-built canonical keys.
package fix

import (
	"fmt"
	"io"
	"strings"
)

func report(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want "nondeterministic iteration order"
	}
	return b.String()
}

func dump(w io.Writer, m map[string]int) {
	for k := range m {
		w.Write([]byte(k)) // want "nondeterministic iteration order"
	}
}

func key(parts map[string]string) string {
	s := ""
	for k, v := range parts {
		s += k + "=" + v // want "nondeterministic value"
	}
	return s
}

func stdout(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "nondeterministic iteration order"
	}
}
