// Package fix is the known-bad fixture for the equivcover analyzer: a
// BatchStepper implementation whose only test runs it but never compares
// it against the scalar Predict/Update protocol — no comparison sink, no
// equivalence certificate.
package fix

type batcher struct {
	n int64
}

func newBatcher() *batcher { return &batcher{} }

func (b *batcher) Predict(pc uint64) bool { return pc&1 == 0 }

func (b *batcher) Update(pc uint64, taken bool) {
	if taken {
		b.n++
	}
}

// StepBatch is the fused batch path of the predictor above.
func (b *batcher) StepBatch(pcs []uint64, takens []bool, from int) int64 { // want "has no equivalence test"
	var mispred int64
	for i := range pcs {
		pred := pcs[i]&1 == 0
		if takens[i] {
			b.n++
		}
		if i >= from && pred != takens[i] {
			mispred++
		}
	}
	return mispred
}
