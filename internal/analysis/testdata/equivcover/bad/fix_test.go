package fix

import "testing"

// TestBatchRuns exercises StepBatch but never compares it to the scalar
// protocol: a smoke test, not an equivalence certificate, so the lint
// must still flag the implementation.
func TestBatchRuns(t *testing.T) {
	b := newBatcher()
	if b.StepBatch([]uint64{1, 2, 3}, []bool{true, false, true}, 0) < 0 {
		t.Fatal("negative mispredict count")
	}
}
