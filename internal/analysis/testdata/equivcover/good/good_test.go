package fix

import (
	"reflect"
	"testing"
)

// TestBumpEquivalence runs the scalar reference and the fused sweep over
// the same column and demands bit-identical tallies: the dynamic half of
// the twin certification.
func TestBumpEquivalence(t *testing.T) {
	takens := []bool{true, false, true, true}
	s := &scalarSim{}
	f := &fusedSim{}
	s.bump(takens)
	f.bumpAll(takens)
	if !reflect.DeepEqual(s.taken, f.taken) {
		t.Fatalf("fused sweep drifted: scalar %d, fused %d", s.taken, f.taken)
	}
}

// TestStepBatchEquivalence replays the batch through the scalar
// Predict/Update protocol and compares mispredict counts.
func TestStepBatchEquivalence(t *testing.T) {
	pcs := []uint64{1, 2, 3, 4}
	takens := []bool{true, false, true, false}
	got := newBatcher().StepBatch(pcs, takens, 0)
	ref := newBatcher()
	var want int64
	for i := range pcs {
		pred := ref.Predict(pcs[i])
		ref.Update(pcs[i], takens[i])
		if pred != takens[i] {
			want++
		}
	}
	if got != want {
		t.Fatalf("batch path drifted: got %d mispredicts, scalar replay %d", got, want)
	}
}
