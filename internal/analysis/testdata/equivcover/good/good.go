// Package fix is the known-good fixture for the equivcover analyzer: the
// twin pair and the BatchStepper implementation are both reached by tests
// with genuine comparison sinks, and one uncovered legacy path carries a
// documented allow.
package fix

type scalarSim struct {
	taken int64
}

func (s *scalarSim) bump(takens []bool) {
	for _, t := range takens {
		if t {
			s.taken++
		}
	}
}

type fusedSim struct {
	taken int64
}

// bumpAll is the fused sweep over one batch column.
//
//bplint:twin fix.scalarSim.bump
func (f *fusedSim) bumpAll(takens []bool) {
	for i := range takens {
		if takens[i] {
			f.taken++
		}
	}
}

type batcher struct {
	n int64
}

func newBatcher() *batcher { return &batcher{} }

func (b *batcher) Predict(pc uint64) bool { return pc&1 == 0 }

func (b *batcher) Update(pc uint64, taken bool) {
	if taken {
		b.n++
	}
}

// StepBatch is the fused batch path of the predictor above.
func (b *batcher) StepBatch(pcs []uint64, takens []bool, from int) int64 {
	var mispred int64
	for i := range pcs {
		pred := pcs[i]&1 == 0
		if takens[i] {
			b.n++
		}
		if i >= from && pred != takens[i] {
			mispred++
		}
	}
	return mispred
}

type legacy struct{}

// StepBatch keeps a retired batch path alive for one release; nothing
// compares it anymore and the allow documents that.
func (l *legacy) StepBatch(pcs []uint64, takens []bool, from int) int64 { //bplint:allow equivcover fixture: retired path, deleted next release
	return 0
}
