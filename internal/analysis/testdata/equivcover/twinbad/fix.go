// Package fix is the uncovered-twin-group fixture for the equivcover
// analyzer: a statically certified twin pair with no equivalence test at
// all. The finding lands on the //bplint:twin directive line, where no
// want comment can ride, so fixture_test.go checks it by count.
package fix

type scalarSim struct {
	taken int64
}

func (s *scalarSim) bump(takens []bool) {
	for _, t := range takens {
		if t {
			s.taken++
		}
	}
}

type fusedSim struct {
	taken int64
}

// bumpAll mirrors bump batch-wise, but nothing ever compares the two.
//
//bplint:twin fix.scalarSim.bump
func (f *fusedSim) bumpAll(takens []bool) {
	for i := range takens {
		if takens[i] {
			f.taken++
		}
	}
}
