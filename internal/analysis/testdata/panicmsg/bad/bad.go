// Package fix is the known-bad fixture for the panicmsg analyzer: every
// panic lacks a provable "fix: " prefix.
package fix

import (
	"errors"
	"fmt"
)

// Check panics without the package prefix in the shapes seen in practice.
func Check(n int) {
	if n < 0 {
		panic("negative size") // want "panic message must be a string"
	}
	if n == 0 {
		panic(fmt.Sprintf("bad count %d", n)) // want "panic message must be a string"
	}
	if n > 1<<20 {
		panic(errors.New("fix: too large")) // want "panic message must be a string"
	}
}
