// Package fix is the known-good fixture for the panicmsg analyzer: every
// panic provably starts with "fix: ", or is explicitly allowed.
package fix

import "fmt"

// Check panics with the package prefix in each accepted shape.
func Check(n int) {
	if n < 0 {
		panic("fix: negative size")
	}
	if n == 0 {
		panic(fmt.Sprintf("fix: bad count %d", n))
	}
	if n > 1<<20 {
		panic("fix: too large: " + fmt.Sprint(n))
	}
}

// Rethrow re-raises a recovered value, which cannot carry the prefix.
func Rethrow(r any) {
	if r != nil {
		panic(r) //bplint:allow panicmsg re-raising a recovered value
	}
}
