package fix

// The fused timing sweep's lane step shape: the closure-per-lane variant.
// Capturing the lane cursor in a function literal allocates one heap
// closure per lane per batch — the structure the analyzer must reject
// (timing.go in the good fixture holds the accepted hoisted-locals
// structure-of-arrays twin).

type timingCursor struct {
	fetchCycle uint64
	lastCommit uint64
}

//bplint:hotpath fused timing lane sweep, closure-per-lane shape
func sweepClosures(cursors []timingCursor, lats []uint64) {
	for li := range cursors {
		cu := &cursors[li]
		advance := func(lat uint64) { // want "closure literal allocates in a hot path"
			cu.fetchCycle += lat
			if c := cu.fetchCycle + 1; c > cu.lastCommit {
				cu.lastCommit = c
			}
		}
		for _, lat := range lats {
			advance(lat)
		}
	}
}
