// Package fix is the known-bad fixture for the hotalloc analyzer: every
// allocation-causing construct inside a //bplint:hotpath function.
package fix

import "fmt"

type point struct{ x, y int }

type sink interface{ Put(v any) }

func helper() {}

//bplint:hotpath the batch loop under test
func hot(vals []int, s sink, out []int) []int {
	f := func() int { return 1 } // want "closure literal allocates in a hot path"
	_ = f
	m := map[int]int{} // want "map literal allocates in a hot path"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates in a hot path"
	_ = sl
	p := &point{} // want "escapes to the heap in a hot path"
	_ = p
	buf := make([]byte, 16) // want "make allocates in a hot path"
	_ = buf
	out = append(out, 1) // want "append may grow its backing array in a hot path"
	fmt.Println("x")     // want "formats through interfaces and allocates in a hot path"
	s.Put(vals)          // want "boxed into interface parameter allocates in a hot path"
	_ = any(vals[0])     // want "conversion of vals"
	go helper()          // want "go statement allocates a goroutine in a hot path"
	return out
}
