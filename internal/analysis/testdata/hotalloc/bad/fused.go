package fix

// The grid-fused sweep's batch loop shape: the per-lane closure variant.
// Wrapping each lane's step in a function literal allocates one heap
// object per lane per batch — the structure the analyzer must reject
// (fused.go in the good fixture holds the accepted structure-of-arrays
// twin).

type lanePred interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

//bplint:hotpath fused batch loop, closure-per-lane shape
func stepClosures(preds []lanePred, pcs []uint64, takens []bool, mispred []int64) {
	for li := range preds {
		p := preds[li]
		step := func(i int) { // want "closure literal allocates in a hot path"
			if p.Predict(pcs[i]) != takens[i] {
				mispred[li]++
			}
			p.Update(pcs[i], takens[i])
		}
		for i := range pcs {
			step(i)
		}
	}
}
