package fix

// The grid-fused sweep's batch loop shape: per-lane state packed into
// index-aligned slices (structure of arrays) and indexed in the loop
// allocates nothing — the accepted twin of the closure-per-lane variant
// in the bad fixture, and the shape funcsim's fused driver uses.

type lanePred interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

//bplint:hotpath fused batch loop, structure-of-arrays shape
func stepLanes(preds []lanePred, pcs []uint64, takens []bool, mispred []int64) {
	for li := range preds {
		p := preds[li]
		for i := range pcs {
			if p.Predict(pcs[i]) != takens[i] {
				mispred[li]++
			}
			p.Update(pcs[i], takens[i])
		}
	}
}
