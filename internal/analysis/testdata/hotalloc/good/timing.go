package fix

// The fused timing sweep's lane step shape: each lane's pipeline cursor
// lives in an index-aligned SoA slice, is hoisted into locals for the
// per-instruction stage arithmetic, and is written back once at the end of
// the lane's step — nothing escapes, nothing boxes. The accepted twin of
// the closure-per-lane variant in the bad fixture, and the shape
// pipeline's fused sweeps use.

type timingCursor struct {
	fetchCycle uint64
	lastCommit uint64
}

//bplint:hotpath fused timing lane sweep, structure-of-arrays cursors
func sweepLanes(cursors []timingCursor, lats []uint64) {
	for li := range cursors {
		cu := &cursors[li]
		fetchCycle := cu.fetchCycle
		lastCommit := cu.lastCommit
		for _, lat := range lats {
			fetchCycle += lat
			if c := fetchCycle + 1; c > lastCommit {
				lastCommit = c
			}
		}
		cu.fetchCycle = fetchCycle
		cu.lastCommit = lastCommit
	}
}
