// Package fix is the known-good fixture for the hotalloc analyzer: plain
// struct literals stored by value stay on the stack, pointer-shaped and
// constant values box for free, panic only materializes on the failure
// path, cold functions may allocate freely, and a deliberate cold-side
// allocation inside a hot function carries a documented allow directive.
package fix

type rec struct {
	pc    uint64
	taken bool
}

type sink interface{ Put(v any) }

//bplint:hotpath steady-state fill loop
func fill(dst []rec, pcs []uint64) int {
	n := 0
	for i := range pcs {
		if n == len(dst) {
			break
		}
		dst[n] = rec{pc: pcs[i], taken: pcs[i]&1 == 1} // by-value struct literal: stack
		n++
	}
	if n == 0 {
		panic("fix: empty fill") // builtin; the argument is a constant
	}
	return n
}

//bplint:hotpath pointer-shaped interface values do not box
func publish(s sink, r *rec) {
	s.Put(r)   // pointer: fits the interface data word
	s.Put(nil) // nil: no allocation
	s.Put(3)   // constant: materialized statically
}

//bplint:hotpath cold-side allocation is documented
func grow(dst []rec) []rec {
	//bplint:allow hotalloc amortized doubling, runs outside the steady state
	dst = append(dst, rec{})
	return dst
}

// cold is unmarked: allocation here is nobody's business.
func cold() map[int]int {
	return map[int]int{1: 1}
}
