// Package fix is the known-bad fixture for the frozen analyzer: writes to
// //bplint:frozen state after the value has escaped its constructor, writes
// through already-published values, and an exported mutator.
package fix

//bplint:frozen
type rec struct {
	vals []int
	n    int
}

var published *rec

// push is an unexported builder helper: legal in itself, each call site is
// checked against the owning variable's escape point.
func (r *rec) push(v int) { r.vals = append(r.vals, v) }

// Mutate lets other packages write frozen state.
func Mutate(r *rec) { // want "frozen builders must stay unexported"
	r.n = 2
}

func buildAndLeak() *rec {
	r := &rec{}
	r.push(1)
	published = r
	r.n = 1 // want "written after r escapes its constructor"
	return r
}

func mutateAfterEscape() *rec {
	r := &rec{}
	published = r
	r.push(2) // want "written after r escapes its constructor"
	return r
}

func steal() {
	r := published
	r.n = 3 // want "already-published value"
}

func direct() {
	published.n = 4 // want "does not construct"
}
