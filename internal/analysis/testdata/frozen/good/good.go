// Package fix is the known-good fixture for the frozen analyzer: the
// sanctioned construction patterns — build-then-return, early returns
// inside the build loop, value-typed assembly, builder helpers, sync.Once
// late publication — plus one documented allow.
package fix

import "sync"

//bplint:frozen
type rec struct {
	vals []int
	n    int
}

//bplint:frozen
type summary struct {
	total int
}

func (r *rec) push(v int) { r.vals = append(r.vals, v) }

// build writes only between construction and return.
func build(n int) *rec {
	r := &rec{}
	for i := 0; i < n; i++ {
		r.push(i)
		r.n++
	}
	return r
}

// buildLoop returns from inside the loop — a lexically early return does
// not end the construction phase, since it terminates execution.
func buildLoop(src []int) *rec {
	r := &rec{}
	for _, v := range src {
		if v < 0 {
			return r
		}
		r.vals = append(r.vals, v)
	}
	return r
}

// summarize assembles a value-typed frozen result; copies do not alias, so
// writes are free until the address escapes.
func summarize(vals []int) summary {
	var s summary
	for _, v := range vals {
		s.total += v
	}
	return s
}

func adjust() summary {
	s := summarize(nil)
	s.total = 0
	return s
}

// lazy publishes a frozen value through sync.Once: the one sanctioned
// post-publication write pattern.
type lazy struct {
	once sync.Once
	r    *rec
}

func (l *lazy) get() *rec {
	l.once.Do(func() {
		l.r = &rec{}
		l.r.n = 1
	})
	return l.r
}

var global *rec

func patch() {
	global.n = 9 //bplint:allow frozen fixture: documented post-publication patch
}
