// Package fix is the known-bad fixture for the globalstate analyzer:
// package-level vars mutated at runtime with no guard, no write-once
// discipline and no allow.
package fix

var hits int // want "written after init"

func bump() {
	hits++
}

var mode = "fast" // want "written after init"

func setMode(m string) { mode = m }

var cache = map[string]int{} // want "written after init"

func put(k string, v int) { cache[k] = v }
