// Package fix is the known-good fixture for the globalstate analyzer: the
// three sanctioned shapes — sync primitives, self-guarded singletons,
// write-once tables — plus one documented allow.
package fix

import "sync"

// shared is self-guarded: a struct carrying its own mutex, whose field
// discipline lockguard polices.
type store struct {
	mu sync.Mutex
	m  map[string]int
}

var shared = &store{m: map[string]int{}}

func put(k string, v int) {
	shared.mu.Lock()
	shared.m[k] = v
	shared.mu.Unlock()
}

// names is write-once: populated at declaration and in init, read-only
// afterwards.
var names = map[int]string{0: "zero"}

func init() {
	names[1] = "one"
}

func name(i int) string { return names[i] }

// Sync primitives and channels are the sharing mechanisms themselves.
var (
	mu     sync.Mutex
	events = make(chan int, 8)
)

func lock()   { mu.Lock() }
func unlock() { mu.Unlock() }
func post()   { events <- 1 }

// debugLevel is a documented waiver.
var debugLevel int //bplint:allow globalstate fixture: test-only knob, single-goroutine

func setDebug(l int) { debugLevel = l }
