// Package fix is the drifted half of the seeded-drift regression pair:
// identical to the good half except for one edit — the scalar update call
// now trains on the inverted outcome and the fused sweep was not touched.
// Exactly one twinsync finding must surface, on the edited line.
package fix

type table struct {
	bits []uint8
}

func (t *table) predict(pc uint64) bool { return t.bits[pc%uint64(len(t.bits))] > 1 }

func (t *table) update(pc uint64, taken bool) {
	i := pc % uint64(len(t.bits))
	if taken && t.bits[i] < 3 {
		t.bits[i]++
	}
	if !taken && t.bits[i] > 0 {
		t.bits[i]--
	}
}

type scalarSim struct {
	p       *table
	mispred int64
}

// step is the scalar reference: predict, update, tally. The update call
// drifted — it trains on !taken — and stepAll below still trains on taken.
func (s *scalarSim) step(pc uint64, taken bool) {
	pred := s.p.predict(pc)
	s.p.update(pc, !taken) // want "no counterpart in its fused twins"
	if pred != taken {
		s.mispred++
	}
}

type fusedSim struct {
	p       *table
	mispred int64
}

// stepAll is the fused sweep over one batch column.
//
//bplint:twin fix.scalarSim.step
func (f *fusedSim) stepAll(pcs []uint64, takens []bool) {
	for i := range pcs {
		pred := f.p.predict(pcs[i])
		f.p.update(pcs[i], takens[i])
		if pred != takens[i] {
			f.mispred++
		}
	}
}
