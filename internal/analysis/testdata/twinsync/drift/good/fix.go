// Package fix is the in-sync half of the seeded-drift regression pair:
// the fused sweep mirrors the scalar predictor loop exactly. The bad half
// is this file with one scalar argument edited and the fused side left
// behind — the minimal unmirrored edit the twin certification exists to
// catch.
package fix

type table struct {
	bits []uint8
}

func (t *table) predict(pc uint64) bool { return t.bits[pc%uint64(len(t.bits))] > 1 }

func (t *table) update(pc uint64, taken bool) {
	i := pc % uint64(len(t.bits))
	if taken && t.bits[i] < 3 {
		t.bits[i]++
	}
	if !taken && t.bits[i] > 0 {
		t.bits[i]--
	}
}

type scalarSim struct {
	p       *table
	mispred int64
}

// step is the scalar reference: predict, update, tally.
func (s *scalarSim) step(pc uint64, taken bool) {
	pred := s.p.predict(pc)
	s.p.update(pc, taken)
	if pred != taken {
		s.mispred++
	}
}

type fusedSim struct {
	p       *table
	mispred int64
}

// stepAll is the fused sweep over one batch column.
//
//bplint:twin fix.scalarSim.step
func (f *fusedSim) stepAll(pcs []uint64, takens []bool) {
	for i := range pcs {
		pred := f.p.predict(pcs[i])
		f.p.update(pcs[i], takens[i])
		if pred != takens[i] {
			f.mispred++
		}
	}
}
