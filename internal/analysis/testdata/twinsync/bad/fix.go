// Package fix is the known-bad fixture for the twinsync analyzer: a fused
// sweep that silently lost one scalar tally, and a twinskip hanging on a
// function that is not a twin target at all.
package fix

type scalarSim struct {
	insts int64
	taken int64
}

// bump is the scalar reference path: one branch record at a time.
func (s *scalarSim) bump(pc uint64, taken bool) {
	s.insts++
	if taken {
		s.taken++ // want "no counterpart in its fused twins"
	}
	s.note(pc, taken)
}

func (s *scalarSim) note(pc uint64, taken bool) {
	_ = pc
	_ = taken
}

type fusedSim struct {
	insts int64
	taken int64
}

// stepAll is the fused sweep. It drifted: the taken tally never made it
// across, so scalarSim.bump and stepAll disagree on every taken branch.
//
//bplint:twin fix.scalarSim.bump
func (f *fusedSim) stepAll(pcs []uint64, takens []bool) {
	for i := range pcs {
		f.insts++
		f.note(pcs[i], takens[i])
	}
}

func (f *fusedSim) note(pc uint64, taken bool) {
	_ = pc
	_ = taken
}

// orphan is not a twin of anything; its skip excuses nothing.
func orphan() int {
	//bplint:twinskip dangling excuse // want "does not cover a kernel statement"
	return 1
}
