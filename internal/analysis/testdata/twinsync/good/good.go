// Package fix is the known-good fixture for the twinsync analyzer: a
// fused sweep that mirrors its scalar reference, a twinmap bridging a
// renamed field, a justified twinskip on a genuinely re-organized tally,
// and one documented allow.
package fix

type scalarSim struct {
	insts   int64
	taken   int64
	mispred int64
	extra   int64
}

// bump is the scalar reference path: one branch record at a time.
func (s *scalarSim) bump(pc uint64, taken bool) {
	s.insts++
	if taken {
		s.taken++
	}
	//bplint:twinskip the fused sweep reconstructs mispredicts from its lane columns after the pass
	s.mispred++
	s.note(pc, taken)
	s.extra++ //bplint:allow twinsync fixture: documented divergence kept to exercise the escape hatch
}

func (s *scalarSim) note(pc uint64, taken bool) {
	_ = pc
	_ = taken
}

type fusedSim struct {
	count int64
	taken int64
}

// stepAll is the fused sweep: same tallies, batch at a time. The insts
// counter was renamed count on this side; the twinmap records the
// equivalence the normalizer cannot derive.
//
//bplint:twin fix.scalarSim.bump
//bplint:twinmap insts=count
func (f *fusedSim) stepAll(pcs []uint64, takens []bool) {
	for i := range pcs {
		f.count++
		if takens[i] {
			f.taken++
		}
		f.note(pcs[i], takens[i])
	}
}

func (f *fusedSim) note(pc uint64, taken bool) {
	_ = pc
	_ = taken
}
