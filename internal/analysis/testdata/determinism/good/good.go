// Package fix is the known-good fixture for the determinism analyzer:
// durations are derived, not measured, and the one environment read is
// explicitly allowed as diagnostics-only.
package fix

import (
	"os"
	"time"
)

// Timeout derives a duration without reading a clock; importing time for
// its types is fine.
func Timeout(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// DebugDir locates diagnostic output and never influences results.
func DebugDir() string {
	//bplint:allow determinism diagnostics only, never in simulation results
	return os.Getenv("BRANCHSIM_DEBUG_DIR")
}
