// Package fix is the known-bad fixture for the determinism analyzer: it
// touches every forbidden nondeterminism source.
package fix

import (
	"math/rand" // want "import of math/rand"
	"os"
	"time"
)

// Stamp reads clocks, random streams and the environment.
func Stamp() int64 {
	start := time.Now() // want "call to time.Now"
	mix := rand.Int63()
	if os.Getenv("BRANCHSIM_SEED") != "" { // want "call to os.Getenv"
		mix++
	}
	mix += int64(len(os.Environ()))       // want "call to os.Environ"
	return mix + int64(time.Since(start)) // want "call to time.Since"
}
