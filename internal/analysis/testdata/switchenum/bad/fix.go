// Package fix is the known-bad fixture for the switchenum analyzer: a
// typed-enum switch missing a member with no default, a directive-group
// switch whose default returns instead of panicking, and an enum
// directive too small to dispatch over.
package fix

type kind uint8

const (
	kindALU kind = iota
	kindLoad
	kindStore
	numKinds
)

// Fetch classes, recognized by directive: the members are untyped bit
// codes, so the typed-enum fallback cannot see them.
//
//bplint:enum fetchClass
const (
	fetchL1  = 1
	fetchL2  = 2
	fetchMem = 3
)

//bplint:enum lonely
const ( // want "needs at least two non-sentinel members"
	onlyOne = 1
)

func classify(k kind) int {
	switch k { // want "does not handle kindStore and has no default"
	case kindALU:
		return 0
	case kindLoad:
		return 1
	}
	return 9
}

func latency(c int) int {
	switch c {
	case fetchL1:
		return 1
	case fetchL2:
		return 8
	default: // want "its default must panic"
		return 0
	}
}

func use() int { return classify(kindALU) + latency(fetchL1) + onlyOne + int(numKinds) }
