// Package fix is the known-good fixture for the switchenum analyzer: an
// exhaustive typed-enum switch, a directive-group switch over shifted
// member forms with a panicking default, and one documented allow.
package fix

type kind uint8

const (
	kindALU kind = iota
	kindLoad
	kindStore
	numKinds
)

const fetchShift = 4

// Fetch classes as packed bit codes: switches dispatch on the shifted
// forms, which still reference the members.
//
//bplint:enum fetchClass
const (
	fetchL1  = 1
	fetchL2  = 2
	fetchMem = 3
)

// classify references every kind member: no default needed.
func classify(k kind) int {
	switch k {
	case kindALU:
		return 0
	case kindLoad, kindStore:
		return 1
	}
	return 9
}

// latency handles two of three classes explicitly; the panicking default
// spells out that the rest is impossible here.
func latency(c int) int {
	switch c {
	case fetchL1 << fetchShift:
		return 1
	case fetchL2 << fetchShift:
		return 8
	default:
		panic("fix: fetch class out of range")
	}
}

// sample is deliberately partial and documented as such.
func sample(k kind) bool {
	switch k { //bplint:allow switchenum fixture: sampling probe, non-ALU kinds fall through by design
	case kindALU:
		return true
	}
	return false
}

func use() int {
	if sample(kindALU) {
		return classify(kindALU) + latency(fetchL1<<fetchShift) + fetchMem + int(numKinds)
	}
	return 0
}
