// Package fix is the known-bad fixture for the sharedcapture analyzer:
// go-launched closures sharing written captures with their parent with no
// lock on either side.
package fix

import "sync"

func tally(vals []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			total += v // want "not lock-dominated"
			wg.Done()
		}()
	}
	wg.Wait()
	return total // want "not lock-dominated"
}

func race(done chan struct{}) {
	best := 0
	go func() {
		if best < 10 { // want "not lock-dominated"
			done <- struct{}{}
		}
	}()
	best = 42 // want "not lock-dominated"
}
