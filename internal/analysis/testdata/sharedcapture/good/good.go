// Package fix is the known-good fixture for the sharedcapture analyzer:
// the sanctioned sharing vocabulary — channels, sync primitives, function
// values, read-only captures, lock-dominated accumulators — plus one
// documented allow.
package fix

import "sync"

// forEach is the worker-pool shape: every capture is a channel, a
// WaitGroup, or a function value.
func forEach(n int, fn func(int)) {
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// tally shares a written accumulator, but every access on both sides is
// lock-dominated.
func tally(vals []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += v
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	t := total
	mu.Unlock()
	return t
}

// readOnly captures are effectively immutable after the launch.
func readOnly(cfg string, out chan<- string) {
	go func() {
		out <- cfg
	}()
}

func counter() {
	n := 0
	go func() {
		n++ //bplint:allow sharedcapture fixture: demo of the escape hatch
	}()
}
