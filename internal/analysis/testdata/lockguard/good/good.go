// Package fix is the known-good fixture for the lockguard analyzer: every
// guarded access sits under a dominating Lock (plain, deferred-unlock, or
// inside a closure that takes the lock itself), the cross-struct form is
// published under the owner's lock, and a caller-holds-lock helper carries
// a documented allow directive.
package fix

import "sync"

type cache struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
}

type record struct {
	val int // guarded by cache.mu
}

func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k]
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[string]int{}
	}
	c.entries[k] = v
	c.mu.Unlock()
}

func (c *cache) publish(r *record, v int) {
	c.mu.Lock()
	r.val = v
	c.mu.Unlock()
}

func (c *cache) fill(k string, compute func() int) {
	done := func() {
		c.mu.Lock()
		c.entries[k] = compute()
		c.mu.Unlock()
	}
	done()
}

// sizeLocked is a caller-holds-lock helper; the allow names the contract.
func (c *cache) sizeLocked() int {
	//bplint:allow lockguard caller holds mu — every call site locks first
	return len(c.entries)
}

func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sizeLocked()
}
