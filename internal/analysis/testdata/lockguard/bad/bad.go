// Package fix is the known-bad fixture for the lockguard analyzer:
// guarded fields touched with no lock, after an unlock, under a lock taken
// only on one path, and through the cross-struct owner form.
package fix

import "sync"

type cache struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
}

type record struct {
	val int // guarded by cache.mu
}

func (c *cache) get(k string) int {
	return c.entries[k] // want "accessed without the mutex provably held"
}

func (c *cache) put(k string, v int) {
	c.mu.Lock()
	c.entries[k] = v
	c.mu.Unlock()
	c.entries[k] = v // want "accessed without the mutex provably held"
}

func (c *cache) branchy(k string, cond bool) int {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.entries[k] // want "accessed without the mutex provably held"
}

func (c *cache) cross(r *record) int {
	return r.val // want "accessed without the mutex provably held"
}

func (c *cache) closurePublish(k string, v int) {
	c.mu.Lock()
	done := func() {
		c.entries[k] = v // want "accessed without the mutex provably held"
	}
	done()
	c.mu.Unlock()
}

type orphan struct {
	// guarded by missing
	v int // want "bad guarded-by annotation"
}

func (o *orphan) read() int { return o.v }
