// Package fix is the known-good fixture for the fieldlanes analyzer: a
// lanecheck'd scalar struct fully covered by lane claims, a dash with a
// reason on both sides, a multi-target claim, and one documented allow.
package fix

// The dash below opts scalarSim into the mapping, so every field carries
// an annotation: the mirrored ones claim their own lane in reverse,
// making the cross-reference visible from both sides.
//
//bplint:lanecheck
type scalarSim struct {
	insts   int64 //bplint:lane fusedRun.insts
	taken   int64 //bplint:lane fusedRun.tallies
	mispred int64 //bplint:lane fusedRun.tallies
	//bplint:lane - per-cell diagnostic; fused callers fall back to the scalar path for it
	classes map[string]int64
	loose   int64 //bplint:allow fieldlanes fixture: migration in flight, lane lands next change
}

type fusedRun struct {
	insts []int64 //bplint:lane scalarSim.insts
	// One lane column can carry several scalar fields when the fused
	// representation folds them together.
	tallies []int64 //bplint:lane scalarSim.taken,scalarSim.mispred
	//bplint:lane - shared batch scratch; the scalar loop has no equivalent buffer
	scratch []uint64
}

func (f *fusedRun) use(s *scalarSim) {
	f.insts = append(f.insts, s.insts)
	f.tallies = append(f.tallies, s.taken+s.mispred)
	f.scratch = append(f.scratch, uint64(s.loose))
	_ = s.classes
}
