// Package fix is the known-bad fixture for the fieldlanes analyzer:
// scalar state with no declared lane, a participating lane struct with an
// unannotated field, broken lane targets, and a lanecheck on a non-struct.
package fix

//bplint:lanecheck
type scalarSim struct {
	insts int64
	taken int64
	ghost int64 // want "is scalar state with no declared SoA lane"
}

type fusedRun struct {
	insts  []int64 //bplint:lane scalarSim.insts
	takens []int64 //bplint:lane scalarSim.taken
	stray  []int64 // want "has no //bplint:lane annotation but its struct participates"
	badown []int64 //bplint:lane nowhere.field // want "no struct type nowhere"
	badfld []int64 //bplint:lane scalarSim.nosuch // want "struct scalarSim has no field nosuch"
	badref []int64 //bplint:lane malformed // want "is not Owner.field"
}

//bplint:lanecheck
type notAStruct int // want "applies to struct types"

func (f *fusedRun) use(s *scalarSim) {
	f.insts = append(f.insts, s.insts)
	f.takens = append(f.takens, s.taken)
	f.stray = append(f.stray, s.ghost)
	f.badown = append(f.badown, int64(notAStruct(0)))
	f.badfld = append(f.badfld, 0)
	f.badref = append(f.badref, 0)
}
