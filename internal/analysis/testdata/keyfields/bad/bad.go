// Package fix is the known-bad fixture for the keyfields analyzer: a key
// struct with a field its canonical method never names (the memo-collision
// shape), the mutate-and-return-receiver shape the analyzer deliberately
// rejects, and a directive naming a method that does not exist.
package fix

// key identifies a memoized cell; c was added without extending the key.
//
//bplint:keyfields
type key struct {
	a int
	b int
	c int // want "not referenced by"
}

func (k key) Canonical() key {
	return key{a: k.a, b: normalize(k.b)}
}

func normalize(b int) int {
	if b < 0 {
		return 0
	}
	return b
}

// copied uses the whole-struct-copy shape: semantically every field is in
// the key today, but the next field added would be silently included
// without review — the analyzer requires each field named explicitly.
//
//bplint:keyfields
type copied struct {
	a int // want "not referenced by"
	b int
}

func (c copied) Canonical() copied {
	c.b = 0
	return c
}

//bplint:keyfields CanonKey
type other struct { // want "has no key method CanonKey"
	x int
}
