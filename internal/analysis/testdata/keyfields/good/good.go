// Package fix is the known-good fixture for the keyfields analyzer: an
// explicit field-by-field key literal, coverage through a same-package
// helper, a named key method, and a deliberately excluded derived field
// carrying a documented allow directive.
package fix

//bplint:keyfields
type key struct {
	a int
	b int
}

func (k key) Canonical() key {
	return key{a: k.a, b: normalize(k.b)}
}

func normalize(b int) int {
	if b < 0 {
		return 0
	}
	return b
}

//bplint:keyfields Canon
type wide struct {
	x int
	y int
}

func (w wide) Canon() wide {
	return wide{x: w.x, y: w.yNorm()}
}

// yNorm covers y through the call chain; the analyzer follows it.
func (w wide) yNorm() int { return w.y }

//bplint:keyfields
type memo struct {
	a int
	// cached is recomputed from a on every use, so it is deliberately not
	// part of the key identity.
	//bplint:allow keyfields derived from a, never independently set
	cached int
}

func (m memo) Canonical() memo { return memo{a: m.a} }
