// Package fix is the known-bad fixture for the protomix analyzer: one
// cursor variable driven through both the instruction and the branch
// protocol in straight-line code, in both orders.
package fix

type inst struct{ pc uint64 }

type branch struct{ pc uint64 }

type cursor struct{ pos int }

func (c *cursor) Next(i *inst) bool             { c.pos++; return false }
func (c *cursor) NextInsts(dst []inst) int      { return 0 }
func (c *cursor) NextBranches(dst []branch) int { return 0 }
func (c *cursor) Reset()                        { c.pos = 0 }

func mix(c *cursor) {
	var i inst
	c.Next(&i)
	var b [4]branch
	c.NextBranches(b[:]) // want "mixes cursor protocols"
}

func mixBatch(c *cursor) {
	var d [4]inst
	c.NextInsts(d[:])
	var b [4]branch
	c.NextBranches(b[:]) // want "mixes cursor protocols"
}

func mixBack(c *cursor) {
	var b [4]branch
	c.NextBranches(b[:])
	var i inst
	c.Next(&i) // want "mixes cursor protocols"
}

func mixInLoop(c *cursor) {
	var i inst
	for c.Next(&i) {
		var b [4]branch
		c.NextBranches(b[:]) // want "mixes cursor protocols"
	}
}
