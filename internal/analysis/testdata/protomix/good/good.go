// Package fix is the known-good fixture for the protomix analyzer: Next
// and NextInsts share the instruction protocol's position and may mix,
// Reset legalizes a protocol switch, distinct cursors are independent,
// mutually exclusive branches are left to the runtime panic, and a
// deliberate mix (a panic-path test harness shape) carries a documented
// allow directive.
package fix

type inst struct{ pc uint64 }

type branch struct{ pc uint64 }

type cursor struct{ pos int }

func (c *cursor) Next(i *inst) bool             { c.pos++; return false }
func (c *cursor) NextInsts(dst []inst) int      { return 0 }
func (c *cursor) NextBranches(dst []branch) int { return 0 }
func (c *cursor) Reset()                        { c.pos = 0 }

func instOnly(c *cursor) {
	var i inst
	for c.Next(&i) {
	}
	var d [4]inst
	c.NextInsts(d[:]) // same protocol as Next: shared position
}

func resetBetween(c *cursor) {
	var i inst
	c.Next(&i)
	c.Reset()
	var b [4]branch
	c.NextBranches(b[:])
}

func twoCursors(a, b *cursor) {
	var i inst
	a.Next(&i)
	var r [4]branch
	b.NextBranches(r[:])
}

func eitherOr(c *cursor, branchy bool) {
	if branchy {
		var r [4]branch
		c.NextBranches(r[:])
	} else {
		var i inst
		c.Next(&i)
	}
}

func deliberate(c *cursor) {
	var i inst
	c.Next(&i)
	var b [4]branch
	//bplint:allow protomix exercising the runtime mode-mix panic on purpose
	c.NextBranches(b[:])
}
