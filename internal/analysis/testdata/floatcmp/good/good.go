// Package fix is the known-good fixture for the floatcmp analyzer:
// tolerance comparison, integer-count comparison, and one allowed exact
// sentinel check.
package fix

// Close compares within a tolerance.
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// SameCount compares the integer counts the rates derive from.
func SameCount(hits, total int64) bool {
	return hits == total
}

// ExactZero checks an untouched sentinel that no arithmetic ever produced.
func ExactZero(x float64) bool {
	return x == 0 //bplint:allow floatcmp sentinel value, never arithmetic-derived
}
