// Package fix is the known-bad fixture for the floatcmp analyzer: exact
// equality on floating-point values.
package fix

// SameRate compares accumulated rates exactly.
func SameRate(a, b float64) bool {
	return a == b // want "exact floating-point"
}

// Converged tests a derived float against a literal.
func Converged(x float64) bool {
	return x != 0.0 // want "exact floating-point"
}
