// Package fix is the known-good fixture for the oncepublish analyzer:
// publication inside Do, reads behind a dominating Do or lock, plus one
// documented allow.
package fix

import "sync"

type cell struct {
	once sync.Once
	res  *int
}

// get publishes inside Do and reads only after it.
func (c *cell) get(compute func() *int) *int {
	c.once.Do(func() {
		c.res = compute()
	})
	return c.res
}

// registry reads cells back under its own lock — the store read-back path.
type registry struct {
	mu    sync.Mutex
	cells map[string]*cell
}

func (r *registry) peek(k string) *int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cells[k]
	if c == nil {
		return nil
	}
	return c.res
}

// sampleStat is a monitoring-only racy peek, documented as such.
func (c *cell) sampleStat() bool {
	return c.res != nil //bplint:allow oncepublish fixture: monitoring-only racy peek
}
