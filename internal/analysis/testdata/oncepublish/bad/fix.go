// Package fix is the known-bad fixture for the oncepublish analyzer: the
// unsynchronized double-checked load and a write outside the Do body.
package fix

import "sync"

type cell struct {
	once sync.Once
	res  *int
}

func (c *cell) getRacy(compute func() *int) *int {
	if c.res != nil { // want "unsynchronized load"
		return c.res // want "unsynchronized load"
	}
	c.once.Do(func() {
		c.res = compute()
	})
	return c.res
}

func (c *cell) poke(v *int) {
	c.res = v // want "written outside c.once.Do"
}
