// Package fix is the known-good fixture for the pow2mask analyzer: masks
// are derived only where a power-of-two guard or pow2Entries sizing is in
// scope, and len-1 last-element indexing is not mistaken for a mask.
package fix

// Table is a validated direction table.
type Table struct {
	rows []uint8
	mask uint64
}

// pow2Entries mirrors the repo's budget-fitting helper.
func pow2Entries(budget int) int {
	n := 1
	for n*2 <= budget {
		n *= 2
	}
	return n
}

// NewTable sizes rows via pow2Entries, so the derived mask is safe.
func NewTable(budget int) *Table {
	t := &Table{rows: make([]uint8, pow2Entries(budget))}
	t.mask = uint64(len(t.rows) - 1)
	return t
}

// NewTableChecked validates the size explicitly before masking.
func NewTableChecked(n int) *Table {
	if n <= 0 || n&(n-1) != 0 {
		panic("fix: entries not a power of two")
	}
	t := &Table{rows: make([]uint8, n)}
	t.mask = uint64(len(t.rows) - 1)
	return t
}

// Index uses the precomputed mask; taking the last element is not a mask.
func (t *Table) Index(pc uint64) (int, uint8) {
	last := t.rows[len(t.rows)-1]
	return int(pc & t.mask), last
}
