// Package fix is the known-bad fixture for the pow2mask analyzer: index
// masks are derived from len(x)-1 with nothing proving the length is a
// power of two.
package fix

// Table is an unvalidated direction table.
type Table struct {
	rows []uint8
	mask uint64
}

// NewTable derives a mask from an arbitrary caller-supplied size.
func NewTable(n int) *Table {
	t := &Table{rows: make([]uint8, n)}
	t.mask = uint64(len(t.rows) - 1) // want "index mask"
	return t
}

// Index masks an address with len-1 inline.
func (t *Table) Index(pc uint64) int {
	return int(pc & uint64(len(t.rows)-1)) // want "index mask"
}
