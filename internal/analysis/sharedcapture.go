package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SharedCapture extends lockguard across goroutine boundaries: a closure
// launched with `go` shares every variable it captures with its parent,
// and the sharded drivers (the experiment grid's worker pool today, the
// sharded reproduce driver the roadmap plans) launch many of them. A
// captured variable that either side writes is a data race unless every
// access is serialized — captured channels, sync primitives and
// self-guarded structs are the sanctioned sharing vocabulary.
//
// The rule, per go-launched function literal: for each captured variable
// that is written (inside the goroutine, or by the parent at any point
// after the `go` statement), every access on both sides must be dominated
// by a mutex Lock (lockguard's per-scope dominance approximation; the
// goroutine's accesses need a Lock inside the goroutine). Variables whose
// type is a channel, a sync/sync-atomic primitive, a function value, or a
// struct carrying its own mutex are exempt: they are the mechanisms Go
// shares by design. Loop-range and worker-pool reads of never-written
// captures are fine.
var SharedCapture = &Analyzer{
	Name: "sharedcapture",
	Doc:  "go-launched closures must not capture shared mutable variables without lock-dominated access",
	Run:  runSharedCapture,
}

// capAccess is one appearance of a captured variable, either side of the
// goroutine boundary.
type capAccess struct {
	write bool
	pos   token.Pos
	fn    ast.Node
	chain []ast.Node
}

func runSharedCapture(pass *Pass) {
	locks := collectLockOps(pass)

	// Find every `go func(...){...}(...)` launch and its lexical parent.
	type launch struct {
		stmt *ast.GoStmt
		lit  *ast.FuncLit
	}
	var launches []launch
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
			launches = append(launches, launch{stmt: gs, lit: lit})
		}
	})
	if len(launches) == 0 {
		return
	}

	for _, l := range launches {
		checkLaunch(pass, l.stmt, l.lit, locks)
	}
}

func checkLaunch(pass *Pass, gs *ast.GoStmt, lit *ast.FuncLit, locks []lockOp) {
	// Captured variables: identifiers used inside the literal that resolve
	// to variables declared in an enclosing function (not the literal's
	// own parameters or locals, not fields, not package-level state —
	// globalstate owns the latter).
	captured := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured[v] = true
		}
		return true
	})
	if len(captured) == 0 {
		return
	}

	// Every access to each captured variable, split by side: inside the
	// launched literal, or in the parent after the launch.
	accesses := map[*types.Var][]capAccess{}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !captured[v] {
			return
		}
		inLit := id.Pos() > lit.Pos() && id.Pos() < lit.End()
		if !inLit && id.Pos() <= gs.End() {
			return // parent accesses before (or at) the launch are pre-publication
		}
		fn := enclosingFunc(stack)
		accesses[v] = append(accesses[v], capAccess{
			write: isWriteContext(stack, id),
			pos:   id.Pos(),
			fn:    fn,
			chain: containerChain(stack, fn),
		})
	})

	for v, accs := range accesses {
		if sharableType(v.Type()) {
			continue
		}
		written := false
		for _, a := range accs {
			if a.write {
				written = true
				break
			}
		}
		if !written {
			continue // read-only on both sides: effectively immutable after launch
		}
		for _, a := range accs {
			if lockDominates(locks, "", a.fn, a.pos, a.chain) {
				continue
			}
			pass.Reportf(a.pos,
				"%s is captured by a go statement (line %d) and written concurrently, but this access is not lock-dominated",
				v.Name(), pass.Fset.Position(gs.Pos()).Line)
		}
	}
}

// isWriteContext reports whether the ident at the top of the walk is (the
// root of) an assignment target or ++/-- operand.
func isWriteContext(stack []ast.Node, id *ast.Ident) bool {
	cur := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.SelectorExpr:
			if p.X != cur {
				return false
			}
			cur = p
		case *ast.IndexExpr, *ast.ParenExpr, *ast.StarExpr:
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		default:
			return false
		}
	}
	return false
}

// sharableType reports whether t is safe to share across goroutines by
// design: channels, function values, sync and sync/atomic primitives, and
// structs that carry their own mutex (self-guarded, lockguard's domain).
func sharableType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan, *types.Signature:
		return true
	case *types.Pointer:
		return sharableType(u.Elem())
	case *types.Struct:
		if named := namedOf(t); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil {
				if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
					return true
				}
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if named := namedOf(ft); named != nil {
				if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" &&
					strings.HasSuffix(named.Obj().Name(), "Mutex") {
					return true
				}
			}
		}
	}
	return false
}
