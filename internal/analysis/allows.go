package analysis

import (
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AllowDirective is one //bplint:allow occurrence: which analyzers it
// suppresses, where, and the justification text after the names. The
// cmd/bplint -allows audit mode lists them so waivers stay reviewable
// instead of accreting silently.
type AllowDirective struct {
	File      string
	Line      int
	Analyzers []string
	Reason    string
}

// CollectAllowDirectives parses (without type-checking) every non-test Go
// file in dirs and returns each allow directive, sorted by file and line.
// Directories that hold no Go package are skipped.
func CollectAllowDirectives(dirs []string) ([]AllowDirective, error) {
	fset := token.NewFileSet()
	var out []AllowDirective
	for _, dir := range dirs {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, group := range f.Comments {
				for _, c := range group.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					out = append(out, AllowDirective{
						File:      pos.Filename,
						Line:      pos.Line,
						Analyzers: strings.Split(m[1], ","),
						Reason:    strings.TrimSpace(m[2]),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}
