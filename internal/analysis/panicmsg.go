package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// PanicMsg enforces the repo's panic-message convention in simulation
// packages: every panic carries a message prefixed with the package name,
// "<pkg>: ...", so a crash is attributable without decoding a stack trace.
// The message may be a string literal, a literal-led "+" concatenation, or a
// fmt.Sprintf/Sprint/Errorf call whose leading format literal carries the
// prefix. panic(err) and other opaque values are rejected: the analyzer
// cannot prove their text, and neither can a reader at the panic site.
var PanicMsg = &Analyzer{
	Name: "panicmsg",
	Doc:  `require panic messages to carry the "<pkg>: " prefix convention`,
	Run:  runPanicMsg,
}

func runPanicMsg(pass *Pass) {
	if !pass.InSimulation() {
		return
	}
	prefix := pass.Pkg.Name() + ": "
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			if !prefixedMessage(pass, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic message must be a string starting with %q", prefix)
			}
			return true
		})
	}
}

// prefixedMessage reports whether expr provably evaluates to a string
// starting with prefix.
func prefixedMessage(pass *Pass, expr ast.Expr, prefix string) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return false
		}
		s, err := strconv.Unquote(e.Value)
		return err == nil && strings.HasPrefix(s, prefix)
	case *ast.BinaryExpr:
		// "pkg: something " + detail — the leftmost operand decides.
		return e.Op == token.ADD && prefixedMessage(pass, e.X, prefix)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return false
		}
		switch fn.FullName() {
		case "fmt.Sprintf", "fmt.Errorf", "fmt.Sprint":
			return len(e.Args) > 0 && prefixedMessage(pass, e.Args[0], prefix)
		}
		return false
	}
	return false
}
