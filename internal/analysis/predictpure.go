package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PredictPure proves the fast paths' central contract: Predict (and
// PredictBits) on internal/predictor types must not mutate predictor
// state. The record/replay layer, the branch/instruction batch protocols
// and the timing memo all assume a prediction is a pure read — the
// pipeline driver retires updates long after fetch-time predictions, and
// the memo replays cells in arbitrary order, so a Predict that trains
// state would make results depend on driver interleaving and silently
// break the bit-identical equivalence the suite enforces.
//
// The analysis is flow-aware within the package: a method is flagged for
// direct stores to state reachable from its receiver or parameters
// (field assignments, element stores, ++/--), for calls to known-mutating
// methods of other packages (Update, Push, Add, Set, ... — the repo's
// counter/history mutation vocabulary) on receiver-rooted values, and for
// calls to same-package helpers that transitively do either with
// receiver-rooted values flowing in. The one sanctioned exception — the
// Perceptron's dot-product memo, whose invalidation rule keeps
// out-of-order drivers bit-identical — carries a //bplint:allow
// predictpure directive stating that invariant.
var PredictPure = &Analyzer{
	Name: "predictpure",
	Doc:  "Predict/PredictBits on internal/predictor types must not mutate predictor state",
	Run:  runPredictPure,
}

// predictMethods are the prediction entry points that must stay pure.
// Update and the block protocol are the designated mutation points.
var predictMethods = map[string]bool{
	"Predict":     true,
	"PredictBits": true,
}

// crossMutators is the mutation vocabulary of the packages predictors
// build on (internal/counter, internal/history, sync/atomic, ...). A call
// to a method with one of these names on a receiver-rooted value is
// treated as a state mutation; the callee's body is in another package
// and out of reach, so the name is the contract.
var crossMutators = map[string]bool{
	"Update": true, "Push": true, "Add": true, "Set": true,
	"Insert": true, "Reset": true, "Train": true, "Record": true,
	"OnCycle": true, "Store": true, "Swap": true, "Clear": true,
	"Write": true, "Delete": true,
}

// pureOp is one potential purity violation inside a function: either a
// direct mutation (callee == nil, msg set) or a call to a same-package
// function that is a violation iff that callee turns out to be impure.
type pureOp struct {
	pos    token.Pos
	msg    string
	callee types.Object
}

func runPredictPure(pass *Pass) {
	rel := pass.RelPath()
	if rel != "internal/predictor" && !strings.HasPrefix(rel, "internal/predictor/") {
		return
	}
	decls := funcDecls(pass)

	// Collect, per function, the operations that mutate (or may mutate)
	// state reachable from that function's receiver and parameters.
	ops := map[types.Object][]pureOp{}
	for obj, fd := range decls {
		ops[obj] = collectPureOps(pass, fd, decls)
	}

	// Fixed point over the package call graph: a function is impure when
	// it mutates directly or calls an impure same-package function with
	// rooted values flowing in.
	impure := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fops := range ops {
			if impure[obj] {
				continue
			}
			for _, op := range fops {
				if op.callee == nil || impure[op.callee] {
					impure[obj] = true
					changed = true
					break
				}
			}
		}
	}

	for obj, fd := range decls {
		if fd.Recv == nil || !predictMethods[fd.Name.Name] {
			continue
		}
		for _, op := range ops[obj] {
			switch {
			case op.callee == nil:
				pass.Reportf(op.pos, "%s must not mutate predictor state: %s", fd.Name.Name, op.msg)
			case impure[op.callee]:
				pass.Reportf(op.pos, "%s must not mutate predictor state: call to %s, which mutates state reachable from its receiver/arguments", fd.Name.Name, op.callee.Name())
			}
		}
	}
}

// collectPureOps scans one function body for mutations of state reachable
// from the function's receiver or parameters ("rooted" values).
func collectPureOps(pass *Pass, fd *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) []pureOp {
	if fd.Body == nil {
		return nil
	}
	roots := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					roots[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)

	rooted := func(e ast.Expr) bool {
		id := rootIdent(ast.Unparen(e))
		if id == nil {
			return false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		return obj != nil && roots[obj]
	}
	anyRooted := func(args []ast.Expr) bool {
		for _, a := range args {
			if rooted(a) {
				return true
			}
		}
		return false
	}

	var out []pureOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					continue // rebinding a local/parameter variable is not a state mutation
				}
				if rooted(lhs) {
					out = append(out, pureOp{
						pos: lhs.Pos(),
						msg: fmt.Sprintf("assignment to %s mutates state reachable from the receiver", types.ExprString(lhs)),
					})
				}
			}
		case *ast.IncDecStmt:
			if _, bare := ast.Unparen(st.X).(*ast.Ident); !bare && rooted(st.X) {
				out = append(out, pureOp{
					pos: st.Pos(),
					msg: fmt.Sprintf("%s%s mutates state reachable from the receiver", types.ExprString(st.X), st.Tok),
				})
			}
		case *ast.CallExpr:
			switch fun := st.Fun.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.Info.Uses[fun.Sel].(*types.Func)
				if !ok {
					return true
				}
				if fn.Pkg() == pass.Pkg {
					if decls[fn] != nil && (rooted(fun.X) || anyRooted(st.Args)) {
						out = append(out, pureOp{pos: st.Pos(), callee: fn})
					}
				} else if crossMutators[fn.Name()] && rooted(fun.X) {
					out = append(out, pureOp{
						pos: st.Pos(),
						msg: fmt.Sprintf("call to %s mutates state reachable from the receiver", fn.FullName()),
					})
				}
			case *ast.Ident:
				if fn, ok := pass.Info.Uses[fun].(*types.Func); ok && fn.Pkg() == pass.Pkg &&
					decls[fn] != nil && anyRooted(st.Args) {
					out = append(out, pureOp{pos: st.Pos(), callee: fn})
				}
			}
		}
		return true
	})
	return out
}
