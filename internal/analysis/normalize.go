package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the normalized-AST core shared by the twin-certification
// analyzers (twinsync and its fixtures). The fused sweeps are not textual
// copies of their scalar references: fusion hoists struct fields into
// locals, renames per-lane aliases, folds Predict+Update into
// PredictUpdate, and threads cursor state through value parameters. A
// useful drift check therefore compares *kernels* — the side-effecting
// statements (assignments, calls, ++/--, returns) — after a normalization
// that erases exactly the transformations fusion is allowed to make and
// nothing else:
//
//   - parentheses, positions and comments never matter;
//   - selector chains and index/slice/deref decorations collapse to the
//     terminal name (s.cfg.ROBSize, k.robSize and robSize all render
//     "robsize"), so AoS→SoA re-homing of a field is invisible;
//   - type conversions are dropped (uint64(x) ≡ x — conversions cannot
//     change a value's meaning, only its width, and width drift is the
//     sizebytes analyzer's problem);
//   - identifiers are case-folded and singularized (one trailing 's'),
//     so lane plurals (preds, takens) meet their scalar singulars;
//   - a local initialized from a pure field chain renders as the chain's
//     terminal (lastBlock := cu.lastFetchBlock reads as lastfetchblock),
//     transitively through other such locals;
//   - a single-assignment local can optionally be substituted by its
//     initializer (idx := a^b; use(idx) ≡ use(a^b)), and a call to a
//     same-package single-return helper can optionally be inlined — both
//     are rendered as variants, and a kernel matches if any variant does;
//   - a //bplint:twinmap directive supplies residual name equivalences
//     the rules above cannot see (update=predictupdate).
//
// Everything else — operators, call targets, argument lists, literal
// values — renders faithfully, so a drifted constant, a dropped term or a
// retargeted call changes the kernel string and surfaces as a finding.

// kernelKind classifies an extracted kernel statement.
type kernelKind int

const (
	kernelAssign kernelKind = iota
	kernelCall
	kernelIncDec
	kernelReturn
)

// kernel is one side-effecting statement lifted out of a function body.
type kernel struct {
	kind kernelKind
	stmt ast.Stmt
	pos  token.Pos
	// full holds every rendered variant of the whole kernel.
	full []string
	// rhs holds rendered variants of the right-hand side alone
	// (assignments and single-value returns): the fused form of a scalar
	// call or return is frequently "captured into a column", so scalar
	// calls/returns also match a fused assignment by RHS.
	rhs []string
	// callPrefix holds "callee(firstArg" variants for call kernels: the
	// fused twin of a scalar call may thread extra state arguments
	// (advanceFetch(t) vs advanceTo(t, cursor...)), and the first
	// argument is the one that carries the computed value under test.
	// Prefix matching applies only when the fused call has strictly more
	// arguments than the scalar one (see keySet.matches): an equal-arity
	// call must match in full, or a drifted trailing argument would hide
	// behind its own prefix.
	callPrefix []string
	// arity is the call kernel's argument count, bounding prefix matches.
	arity int
	// callee is the rendered callee of a call kernel, for the argless
	// body-inline fallback ("" otherwise).
	callee string
	// calleeObj is the resolved callee object for same-package calls.
	calleeObj types.Object
	// argless reports a call kernel with an empty argument list.
	argless bool
}

// localInfo caches per-function facts about local variables that drive
// chain renaming and substitution.
type localInfo struct {
	// assigns counts writes (=, :=, ++/--) per local object.
	assigns map[types.Object]int
	// init maps a local to its := / var initializer when it has exactly
	// one (positionally matching) initializer expression.
	init map[types.Object]ast.Expr
	// addrTaken marks locals whose address escapes via &x.
	addrTaken map[types.Object]bool
}

func collectLocalInfo(info *types.Info, fn *ast.FuncDecl) *localInfo {
	li := &localInfo{
		assigns:   map[types.Object]int{},
		init:      map[types.Object]ast.Expr{},
		addrTaken: map[types.Object]bool{},
	}
	if fn.Body == nil {
		return li
	}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		li.assigns[obj]++
		if rhs != nil {
			if _, dup := li.init[obj]; !dup {
				li.init[obj] = rhs
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					var init ast.Expr
					if s.Tok == token.DEFINE {
						init = s.Rhs[i]
					}
					record(lhs, init)
				}
			} else {
				for _, lhs := range s.Lhs {
					record(lhs, nil)
				}
			}
		case *ast.IncDecStmt:
			record(s.X, nil)
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						record(name, vs.Values[i])
						li.assigns[info.Defs[name]]-- // decl counts once below
					}
					li.assigns[info.Defs[name]]++
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if id, ok := s.X.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						li.addrTaken[obj] = true
					}
				}
			}
		case *ast.RangeStmt:
			record(s.Key, nil)
			record(s.Value, nil)
		}
		return true
	})
	return li
}

// renderOpts selects which optional rewrites a render applies; every
// combination is generated so that a kernel matches if any variant does.
type renderOpts struct {
	subst  bool // substitute single-assignment locals by their initializer
	inline bool // inline same-package single-return helper calls
}

var renderVariants = []renderOpts{
	{false, false}, {true, false}, {false, true}, {true, true},
}

// renderer renders expressions of one function into normalized strings.
type renderer struct {
	info    *types.Info
	pkg     *types.Package
	locals  *localInfo
	decls   map[types.Object]*ast.FuncDecl
	twinmap map[string]string
	opts    renderOpts
	// recvObj is the enclosing method's receiver object; calls through
	// the bare receiver render without a qualifier (s.breakFetch() ≡
	// breakFetch()), since the fused twin is typically a standalone
	// helper or a method of a different carrier struct.
	recvObj types.Object

	// frames maps inlined-callee parameters to pre-rendered argument
	// strings; chains guards chain-rename recursion; substing guards
	// substitution recursion.
	frames   []map[types.Object]string
	chains   map[types.Object]bool
	substing map[types.Object]bool
	depth    int
}

func newRenderer(info *types.Info, pkg *types.Package, locals *localInfo, decls map[types.Object]*ast.FuncDecl, twinmap map[string]string, opts renderOpts) *renderer {
	return &renderer{
		info: info, pkg: pkg, locals: locals, decls: decls,
		twinmap: twinmap, opts: opts,
		chains: map[types.Object]bool{}, substing: map[types.Object]bool{},
	}
}

// normalizeName case-folds, singularizes and twin-maps one identifier.
func (r *renderer) normalizeName(name string) string {
	n := strings.ToLower(name)
	if len(n) > 1 && strings.HasSuffix(n, "s") {
		n = n[:len(n)-1]
	}
	if mapped, ok := r.twinmap[n]; ok {
		n = mapped
	}
	return n
}

// chainName returns the normalized terminal of obj's pure-chain
// initializer, or "" when obj is not chain-initialized. A chain is an
// identifier decorated by at least one selector/index/slice/&/* step with
// no embedded calls: the decorations are exactly what SoA re-homing adds,
// so the local is just a new name for the terminal field.
func (r *renderer) chainName(obj types.Object) string {
	if r.chains[obj] {
		return ""
	}
	init := r.locals.init[obj]
	if init == nil {
		return ""
	}
	r.chains[obj] = true
	defer delete(r.chains, obj)
	name, ops := r.chainTerminal(init)
	if name == "" || ops == 0 {
		return ""
	}
	return name
}

// chainTerminal resolves a pure chain to its normalized terminal name and
// the number of decoration steps; name "" means not a pure chain.
func (r *renderer) chainTerminal(e ast.Expr) (string, int) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := r.info.Uses[e]; obj != nil {
			if cn := r.chainName(obj); cn != "" {
				return cn, 1 // renamed locals count as decorated
			}
		}
		return r.normalizeName(e.Name), 0
	case *ast.ParenExpr:
		return r.chainTerminal(e.X)
	case *ast.SelectorExpr:
		if base, _ := r.chainTerminal(e.X); base == "" {
			return "", 0
		}
		return r.normalizeName(e.Sel.Name), 1
	case *ast.IndexExpr:
		if hasCall(e.Index) {
			return "", 0
		}
		name, ops := r.chainTerminal(e.X)
		if name == "" {
			return "", 0
		}
		return name, ops + 1
	case *ast.SliceExpr:
		if hasCall(e.Low) || hasCall(e.High) || hasCall(e.Max) {
			return "", 0
		}
		name, ops := r.chainTerminal(e.X)
		if name == "" {
			return "", 0
		}
		return name, ops + 1
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return "", 0
		}
		name, ops := r.chainTerminal(e.X)
		if name == "" {
			return "", 0
		}
		return name, ops + 1
	case *ast.StarExpr:
		name, ops := r.chainTerminal(e.X)
		if name == "" {
			return "", 0
		}
		return name, ops + 1
	}
	return "", 0
}

func hasCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

const maxRenderDepth = 32

// render produces the normalized string for e under the renderer's
// options.
func (r *renderer) render(e ast.Expr) string {
	if r.depth > maxRenderDepth {
		return "..."
	}
	r.depth++
	defer func() { r.depth-- }()
	switch e := e.(type) {
	case *ast.Ident:
		return r.renderIdent(e)
	case *ast.BasicLit:
		return strings.ToLower(e.Value)
	case *ast.ParenExpr:
		return r.render(e.X)
	case *ast.SelectorExpr:
		return r.normalizeName(e.Sel.Name)
	case *ast.IndexExpr:
		return r.render(e.X)
	case *ast.IndexListExpr:
		return r.render(e.X)
	case *ast.SliceExpr:
		return r.render(e.X)
	case *ast.StarExpr:
		return r.render(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return r.render(e.X)
		}
		return e.Op.String() + r.render(e.X)
	case *ast.BinaryExpr:
		return "(" + r.render(e.X) + e.Op.String() + r.render(e.Y) + ")"
	case *ast.CallExpr:
		return r.renderCall(e)
	case *ast.TypeAssertExpr:
		return r.render(e.X)
	case *ast.CompositeLit:
		return "lit"
	case *ast.FuncLit:
		return "func"
	case *ast.KeyValueExpr:
		return r.render(e.Key) + ":" + r.render(e.Value)
	}
	return "?"
}

func (r *renderer) renderIdent(e *ast.Ident) string {
	obj := r.info.Uses[e]
	if obj == nil {
		obj = r.info.Defs[e]
	}
	if obj != nil {
		// Inlined-callee parameters render as the caller's argument.
		for i := len(r.frames) - 1; i >= 0; i-- {
			if s, ok := r.frames[i][obj]; ok {
				return s
			}
		}
		if cn := r.chainName(obj); cn != "" {
			return cn
		}
		if r.opts.subst && r.substitutable(obj) {
			init := r.locals.init[obj]
			r.substing[obj] = true
			s := r.render(init)
			delete(r.substing, obj)
			return s
		}
	}
	return r.normalizeName(e.Name)
}

// substitutable reports whether obj is a single-assignment local whose
// initializer may replace its uses.
func (r *renderer) substitutable(obj types.Object) bool {
	if r.substing[obj] {
		return false
	}
	return r.locals.assigns[obj] == 1 && r.locals.init[obj] != nil && !r.locals.addrTaken[obj]
}

func (r *renderer) renderCall(e *ast.CallExpr) string {
	// Conversions are transparent: uint64(x) renders as x.
	if tv, ok := r.info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) == 1 {
			return r.render(e.Args[0])
		}
	}
	callee, recv, obj := r.calleeOf(e)
	if r.opts.inline && obj != nil {
		if body := r.singleReturn(obj); body != nil {
			if s, ok := r.inlineCall(obj, e, body); ok {
				return s
			}
		}
	}
	var b strings.Builder
	if recv != "" {
		b.WriteString(recv)
		b.WriteString(".")
	}
	b.WriteString(callee)
	b.WriteString("(")
	for i, arg := range e.Args {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(r.render(arg))
	}
	b.WriteString(")")
	return b.String()
}

// calleeOf splits a call into normalized callee name, rendered receiver
// ("" for plain calls) and the resolved callee object (nil for builtins,
// other packages, or dynamic calls).
func (r *renderer) calleeOf(e *ast.CallExpr) (callee, recv string, obj types.Object) {
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		o := r.info.Uses[fun]
		if o != nil && o.Pkg() == r.pkg {
			obj = o
		}
		return r.normalizeName(fun.Name), "", obj
	case *ast.SelectorExpr:
		o := r.info.Uses[fun.Sel]
		if o != nil && o.Pkg() == r.pkg {
			obj = o
		}
		// Package-qualified calls render without the package name;
		// method calls keep the rendered receiver, which disambiguates
		// same-named methods on different fields (branches.Add vs
		// overrides.Add).
		if id, ok := fun.X.(*ast.Ident); ok {
			if o := r.info.Uses[id]; o != nil {
				if _, isPkg := o.(*types.PkgName); isPkg {
					return r.normalizeName(fun.Sel.Name), "", obj
				}
				if r.recvObj != nil && o == r.recvObj {
					return r.normalizeName(fun.Sel.Name), "", obj
				}
			}
		}
		return r.normalizeName(fun.Sel.Name), r.render(fun.X), obj
	}
	return "call", "", nil
}

// singleReturn returns the sole returned expression of a same-package
// function whose body is exactly one non-empty return, else nil.
func (r *renderer) singleReturn(obj types.Object) ast.Expr {
	decl := r.decls[obj]
	if decl == nil || decl.Body == nil || len(decl.Body.List) != 1 {
		return nil
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

// inlineCall renders the single-return body of the callee with its
// parameters bound to the caller's rendered arguments.
func (r *renderer) inlineCall(obj types.Object, call *ast.CallExpr, body ast.Expr) (string, bool) {
	if len(r.frames) >= 4 {
		return "", false
	}
	decl := r.decls[obj]
	frame := map[types.Object]string{}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if i >= len(call.Args) {
				return "", false
			}
			if pobj := r.info.Defs[name]; pobj != nil {
				frame[pobj] = r.render(call.Args[i])
			}
			i++
		}
	}
	r.frames = append(r.frames, frame)
	defer func() { r.frames = r.frames[:len(r.frames)-1] }()
	// The callee body must be rendered with the callee's own local
	// context; a single-return helper has no locals, so only the frame
	// matters and the caller's localInfo is harmless.
	return r.render(body), true
}

// renderNoSubst renders e with substitution forced off — left-hand sides
// must keep their own (chain-renamed) names, never expand to their
// initializer.
func (r *renderer) renderNoSubst(e ast.Expr) string {
	saved := r.opts.subst
	r.opts.subst = false
	s := r.render(e)
	r.opts.subst = saved
	return s
}
