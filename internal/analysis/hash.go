package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModuleHasher computes a content hash per module-local package: the
// package's own non-test source bytes plus, transitively, those of every
// module-local package it imports, plus a caller-supplied salt. Findings
// are a pure function of those inputs (analyzers consult nothing else), so
// cmd/bplint keys its finding cache on the hash: equal hash, equal
// findings, no need to type-check or analyze at all.
type ModuleHasher struct {
	Module string // module path, e.g. "branchsim"
	Root   string // absolute module root directory
	Salt   string // folded into every hash; carries tool version and config

	memo  map[string]string
	state map[string]int // 0 new, 1 in progress (cycle guard), 2 done
}

// NewModuleHasher returns a hasher for the module rooted at root.
func NewModuleHasher(module, root, salt string) *ModuleHasher {
	return &ModuleHasher{
		Module: module,
		Root:   root,
		Salt:   salt,
		memo:   map[string]string{},
		state:  map[string]int{},
	}
}

// PackageHash returns the transitive content hash of the package in dir,
// which must live inside the module.
func (h *ModuleHasher) PackageHash(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(h.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, h.Module)
	}
	path := h.Module
	if rel != "." {
		path = h.Module + "/" + filepath.ToSlash(rel)
	}
	return h.hash(path, abs)
}

func (h *ModuleHasher) hash(path, dir string) (string, error) {
	if v, ok := h.memo[path]; ok {
		return v, nil
	}
	if h.state[path] == 1 {
		// Import cycle: keep the hash total and let the loader report it.
		return "cycle:" + path, nil
	}
	h.state[path] = 1
	defer func() { h.state[path] = 2 }()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return "", fmt.Errorf("analysis: hashing %s: %w", dir, err)
	}
	hs := sha256.New()
	fmt.Fprintf(hs, "salt\x00%s\x00path\x00%s\x00", h.Salt, path)
	files := append([]string(nil), bp.GoFiles...)
	sort.Strings(files)
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(hs, "file\x00%s\x00%d\x00", name, len(data))
		hs.Write(data)
	}
	imports := append([]string(nil), bp.Imports...)
	sort.Strings(imports)
	for _, imp := range imports {
		if imp != h.Module && !strings.HasPrefix(imp, h.Module+"/") {
			continue // standard library: pinned by the Go version in the salt
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(imp, h.Module), "/")
		sub, err := h.hash(imp, filepath.Join(h.Root, filepath.FromSlash(rel)))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(hs, "dep\x00%s\x00%s\x00", imp, sub)
	}
	sum := hex.EncodeToString(hs.Sum(nil))
	h.memo[path] = sum
	return sum, nil
}
