package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// HotAlloc keeps the batched replay loops allocation-free. Functions whose
// doc comment carries //bplint:hotpath — the branch-batch drivers in
// funcsim, the timing simulator's cursor loop and per-instruction step,
// the trace cursor batch fills — run once per instruction or per batch
// across multi-million-instruction sweeps; a single allocation in one of
// them turns the flat loops PRs 3–4 bought into GC churn. The equivalence
// suite pins allocs/op to zero at runtime (TestBatchedRunAllocs); this
// analyzer rejects the allocating constructs at lint time, naming the
// exact expression, so a refactor cannot reintroduce one silently.
//
// Flagged constructs: function literals (closure allocation), slice and
// map literals, &T{...}, make, new, append (may grow), go statements,
// calls into fmt, and boxing of non-pointer-shaped values into interface
// parameters or conversions. Plain struct literals assigned by value
// (batch[i] = BranchRec{...}) stay on the stack and are not flagged, and
// neither are calls to builtins like panic whose argument only
// materializes on the failure path. Deliberate cold-side allocations
// inside a hot function carry //bplint:allow hotalloc with a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //bplint:hotpath must avoid allocation-causing constructs",
	Run:  runHotAlloc,
}

var hotpathRe = regexp.MustCompile(`^//\s*bplint:hotpath\b`)

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if hotpathRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	// Composite literals directly under & allocate; those assigned by value
	// do not. Collect the &-wrapped ones first so the literal visit can
	// tell them apart.
	addrOf := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
			if cl, ok := ast.Unparen(ue.X).(*ast.CompositeLit); ok {
				addrOf[cl] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure literal allocates in a hot path (%s is //bplint:hotpath)", fd.Name.Name)
			return false // the closure body is not the hot loop
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement allocates a goroutine in a hot path (%s is //bplint:hotpath)", fd.Name.Name)
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocates in a hot path (%s is //bplint:hotpath)", fd.Name.Name)
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates in a hot path (%s is //bplint:hotpath)", fd.Name.Name)
			default:
				if addrOf[e] {
					pass.Reportf(e.Pos(), "&%s escapes to the heap in a hot path (%s is //bplint:hotpath)", types.ExprString(e.Type), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, e)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins: append may grow, make/new always allocate, the rest
	// (panic, len, copy, ...) either don't or only on the failure path.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in a hot path (%s is //bplint:hotpath)", fd.Name.Name)
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in a hot path (%s is //bplint:hotpath)", id.Name, fd.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x) allocates when T is an interface and x is not
	// already pointer-shaped.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if boxes(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "conversion of %s to interface %s allocates in a hot path (%s is //bplint:hotpath)",
					types.ExprString(call.Args[0]), types.ExprString(call.Fun), fd.Name.Name)
			}
		}
		return
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s formats through interfaces and allocates in a hot path (%s is //bplint:hotpath)", fn.Name(), fd.Name.Name)
			return
		}
	}

	// Boxing: a non-pointer-shaped argument passed to an interface-typed
	// parameter allocates the interface's data word.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			break
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "%s boxed into interface parameter allocates in a hot path (%s is //bplint:hotpath)",
				types.ExprString(arg), fd.Name.Name)
		}
	}
}

// paramType returns the type of the i-th argument's parameter, unrolling
// variadics; nil when i is out of range for a non-variadic signature.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() {
		if i >= n-1 {
			return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		}
		return sig.Params().At(i).Type()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether passing e as an interface value allocates:
// constants and nil are materialized statically, and pointer-shaped types
// (pointers, maps, channels, funcs, unsafe pointers) fit the interface
// data word directly. Everything else — structs, ints, slices, strings —
// is copied to the heap.
func boxes(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}
