package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces annotated lock discipline: a struct field whose
// declaration carries a "// guarded by <mu>" comment may only be read or
// written in code where that mutex is provably held. The memo maps the
// fast paths rest on — the trace store's recordings and sidecars, the
// timing memo's cells — are shared across every experiment goroutine; an
// unguarded touch is a data race that corrupts a memoized Result (one
// wrong IPC cell) without ever failing loudly.
//
// Annotation forms, on the field's line or in its doc comment:
//
//	entries map[Key]*entry // guarded by mu
//	rec *trace.Recording   // guarded by Store.mu
//
// The first names a sibling mutex field of the same struct: every access
// x.entries needs a dominating x.mu.Lock() (same base expression x). The
// second names a mutex field of another struct in the package: every
// access needs a dominating Lock on some value of that type — the shape
// of a published-under-the-owner's-lock side record.
//
// "Provably held" is a per-function dominance approximation: the Lock
// call must precede the access with every enclosing statement container
// of the Lock also enclosing the access (a Lock inside one if-branch does
// not cover code after the branch), and no non-deferred Unlock of the
// same mutex may sit between them. Function literals are separate scopes.
// Helpers that require the caller to hold the lock carry a
// //bplint:allow lockguard directive saying so.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  `fields annotated "guarded by mu" may only be touched with that mutex provably held`,
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// guardSpec is one parsed annotation.
type guardSpec struct {
	mu    string       // mutex field name
	owner *types.Named // nil for sibling form; otherwise the struct type owning mu
}

// mutexOp is one Lock/Unlock call site.
type mutexOp struct {
	unlock   bool
	deferred bool
	mu       string     // mutex field name
	baseStr  string     // ExprString of the value the mutex belongs to
	baseType types.Type // its static type
	pos      token.Pos
	fn       ast.Node   // enclosing function scope
	chain    []ast.Node // statement containers inside fn
}

// guardedAccess is one read or write of a guarded field.
type guardedAccess struct {
	spec    guardSpec
	field   *types.Var
	baseStr string
	pos     token.Pos
	fn      ast.Node
	chain   []ast.Node
}

func runLockGuard(pass *Pass) {
	specs := collectGuardSpecs(pass)
	if len(specs) == 0 {
		return
	}

	var locks []mutexOp
	var accesses []guardedAccess
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			if op, ok := mutexCall(pass, e, stack); ok {
				locks = append(locks, op)
			}
		case *ast.SelectorExpr:
			sel := pass.Info.Selections[e]
			if sel == nil || sel.Kind() != types.FieldVal {
				return
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return
			}
			spec, ok := specs[v]
			if !ok {
				return
			}
			fn := enclosingFunc(stack)
			accesses = append(accesses, guardedAccess{
				spec:    spec,
				field:   v,
				baseStr: types.ExprString(ast.Unparen(e.X)),
				pos:     e.Sel.Pos(),
				fn:      fn,
				chain:   containerChain(stack, fn),
			})
		}
	})

	for _, a := range accesses {
		if !guardHeld(a, locks) {
			where := a.spec.mu
			if a.spec.owner != nil {
				where = a.spec.owner.Obj().Name() + "." + a.spec.mu
			}
			pass.Reportf(a.pos,
				"%s is guarded by %s but accessed without the mutex provably held on every path to this point",
				a.field.Name(), where)
		}
	}
}

// collectGuardSpecs parses "guarded by" annotations off struct field
// declarations and resolves them, reporting malformed ones in place.
func collectGuardSpecs(pass *Pass) map[*types.Var]guardSpec {
	specs := map[*types.Var]guardSpec{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				ann := fieldAnnotation(f)
				if ann == "" {
					continue
				}
				for _, name := range f.Names {
					v, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					spec, err := resolveGuardSpec(pass, ts, ann)
					if err != "" {
						pass.Reportf(name.Pos(), "bad guarded-by annotation: %s", err)
						continue
					}
					specs[v] = spec
				}
			}
			return true
		})
	}
	return specs
}

// fieldAnnotation extracts the guarded-by target from a field's doc or
// line comment.
func fieldAnnotation(f *ast.Field) string {
	for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// resolveGuardSpec validates the annotation against the package's types:
// a bare name must be a sibling field of the annotated struct, a
// Type.name form must be a field of that package-scope struct type.
func resolveGuardSpec(pass *Pass, ts *ast.TypeSpec, ann string) (guardSpec, string) {
	if owner, mu, ok := strings.Cut(ann, "."); ok {
		tn, isType := pass.Pkg.Scope().Lookup(owner).(*types.TypeName)
		if !isType {
			return guardSpec{}, "no package-scope type " + owner
		}
		named, isNamed := tn.Type().(*types.Named)
		if !isNamed || !structHasField(named.Underlying(), mu) {
			return guardSpec{}, owner + " has no field " + mu
		}
		return guardSpec{mu: mu, owner: named}, ""
	}
	tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil || !structHasField(tn.Type().Underlying(), ann) {
		return guardSpec{}, ts.Name.Name + " has no sibling mutex field " + ann
	}
	return guardSpec{mu: ann}, ""
}

func structHasField(t types.Type, name string) bool {
	st, ok := t.(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// mutexCall recognizes X.<mu>.Lock/Unlock/RLock/RUnlock() and records the
// base expression the mutex hangs off.
func mutexCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) (mutexOp, bool) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return mutexOp{}, false
	}
	var unlock bool
	switch outer.Sel.Name {
	case "Lock", "RLock":
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return mutexOp{}, false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	base := ast.Unparen(inner.X)
	tv, ok := pass.Info.Types[base]
	if !ok || tv.Type == nil {
		return mutexOp{}, false
	}
	deferred := false
	if len(stack) > 0 {
		if _, isDefer := stack[len(stack)-1].(*ast.DeferStmt); isDefer {
			deferred = true
		}
	}
	fn := enclosingFunc(stack)
	return mutexOp{
		unlock:   unlock,
		deferred: deferred,
		mu:       inner.Sel.Name,
		baseStr:  types.ExprString(base),
		baseType: tv.Type,
		pos:      call.Pos(),
		fn:       fn,
		chain:    containerChain(stack, fn),
	}, true
}

// opMatches reports whether a Lock/Unlock op is on the mutex the access's
// annotation names: same base expression for the sibling form, any value
// of the owning type for the Type.mu form.
func opMatches(op mutexOp, a guardedAccess) bool {
	if op.mu != a.spec.mu {
		return false
	}
	if a.spec.owner == nil {
		return op.baseStr == a.baseStr
	}
	t := op.baseType
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == a.spec.owner.Obj()
}

// guardHeld reports whether some matching Lock dominates the access with
// no possibly-intervening non-deferred Unlock.
func guardHeld(a guardedAccess, locks []mutexOp) bool {
	for _, l := range locks {
		if l.unlock || l.fn != a.fn || l.pos >= a.pos || !opMatches(l, a) {
			continue
		}
		if !chainCovers(a.chain, l.chain) {
			continue // the Lock sits in a branch the access may not have taken
		}
		killed := false
		for _, u := range locks {
			if u.unlock && !u.deferred && u.fn == a.fn &&
				u.pos > l.pos && u.pos < a.pos && opMatches(u, a) {
				killed = true
				break
			}
		}
		if !killed {
			return true
		}
	}
	return false
}
