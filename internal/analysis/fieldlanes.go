package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// FieldLanes certifies the SoA decomposition of the fused fast paths at
// the type level: every mutable field of a scalar state struct must have
// a declared home in the per-lane structure-of-arrays families, and every
// lane field must point back at real scalar state. The directive
// vocabulary:
//
//	//bplint:lane Owner.field[,Owner.field...]   on a lane field — this
//	    lane slice/column carries the named scalar fields' state;
//	//bplint:lane - <reason>                     on either side — this
//	    field deliberately has no counterpart (say why);
//	//bplint:lanecheck                           on a scalar struct —
//	    every field must be claimed by some lane annotation in the
//	    package or carry its own "-" marker.
//
// A struct with at least one lane annotation opts its whole field list
// in: a later field added without an annotation is a finding, so new
// per-lane state cannot appear without declaring which scalar state it
// shadows — and new scalar state on a lanecheck struct cannot appear
// without a lane to live in. That turns "where does this field go in the
// fused run?" from archaeology into a machine-checked cross-reference.
var FieldLanes = &Analyzer{
	Name: "fieldlanes",
	Doc:  "scalar state-struct fields and SoA lane fields must cross-reference via //bplint:lane annotations",
	Run:  runFieldLanes,
}

var laneRe = regexp.MustCompile(`^//\s*bplint:lane\s+(\S+)\s*(.*?)\s*$`)
var lanecheckRe = regexp.MustCompile(`^//\s*bplint:lanecheck\s*$`)

// laneTarget is one Owner.field reference from a lane annotation.
type laneTarget struct {
	owner, field string
	pos          ast.Node
}

func runFieldLanes(pass *Pass) {
	// structFields[type name][field name] existence, for resolution.
	structs := map[string]map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fields := map[string]bool{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						fields[name.Name] = true
					}
				}
				structs[ts.Name.Name] = fields
			}
		}
	}

	// claimed[owner][field] — scalar fields named by some lane annotation.
	claimed := map[string]map[string]bool{}
	// dashed[owner][field] — fields carrying their own "-" marker.
	dashed := map[string]map[string]bool{}
	type pendingStruct struct {
		ts        *ast.TypeSpec
		st        *ast.StructType
		lanecheck bool
		annotated bool // at least one //bplint:lane on a field
	}
	var pending []pendingStruct

	mark := func(m map[string]map[string]bool, owner, field string) {
		if m[owner] == nil {
			m[owner] = map[string]bool{}
		}
		m[owner][field] = true
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					if hasLanecheck(gd, ts) {
						pass.Reportf(ts.Name.Pos(), "//bplint:lanecheck applies to struct types, %s is not one", ts.Name.Name)
					}
					continue
				}
				ps := pendingStruct{ts: ts, st: st, lanecheck: hasLanecheck(gd, ts)}
				for _, f := range st.Fields.List {
					arg, rest, pos := laneDirective(f)
					if pos == nil {
						continue
					}
					ps.annotated = true
					if arg == "-" {
						if rest == "" {
							pass.Reportf(pos.Pos(), "//bplint:lane - requires a reason: why does this field have no counterpart?")
						}
						for _, name := range f.Names {
							mark(dashed, ts.Name.Name, name.Name)
						}
						continue
					}
					for _, ref := range strings.Split(arg, ",") {
						owner, field, ok := strings.Cut(ref, ".")
						if !ok || owner == "" || field == "" {
							pass.Reportf(pos.Pos(), "//bplint:lane target %q is not Owner.field", ref)
							continue
						}
						fields, ok := structs[owner]
						if !ok {
							pass.Reportf(pos.Pos(), "//bplint:lane target %s.%s: no struct type %s in this package", owner, field, owner)
							continue
						}
						if !fields[field] {
							pass.Reportf(pos.Pos(), "//bplint:lane target %s.%s: struct %s has no field %s", owner, field, owner, field)
							continue
						}
						mark(claimed, owner, field)
					}
				}
				pending = append(pending, ps)
			}
		}
	}

	for _, ps := range pending {
		name := ps.ts.Name.Name
		if ps.annotated {
			// A participating lane struct must annotate every field.
			for _, f := range ps.st.Fields.List {
				if _, _, pos := laneDirective(f); pos != nil {
					continue
				}
				for _, fname := range f.Names {
					pass.Reportf(fname.Pos(), "%s.%s has no //bplint:lane annotation but its struct participates in the lane mapping — name the scalar fields it carries or mark it //bplint:lane - <reason>", name, fname.Name)
				}
			}
		}
		if ps.lanecheck {
			for _, f := range ps.st.Fields.List {
				for _, fname := range f.Names {
					if claimed[name][fname.Name] || dashed[name][fname.Name] {
						continue
					}
					pass.Reportf(fname.Pos(), "%s.%s is scalar state with no declared SoA lane — a fused run would silently drop it; add a //bplint:lane %s.%s annotation on its lane field or mark it //bplint:lane - <reason>", name, fname.Name, name, fname.Name)
				}
			}
		}
	}
}

func hasLanecheck(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, group := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if lanecheckRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// laneDirective returns the first //bplint:lane argument on a field's doc
// or trailing comment, the remainder text, and the carrying comment.
func laneDirective(f *ast.Field) (arg, rest string, at *ast.Comment) {
	for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := laneRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], m[2], c
			}
		}
	}
	return "", "", nil
}
