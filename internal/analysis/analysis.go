// Package analysis is a custom static-analysis engine, built only on the
// standard library's go/ast, go/parser and go/types, that machine-checks the
// invariants this reproduction depends on:
//
//   - determinism: simulation packages must not consult wall clocks,
//     math/rand or the environment — the repo owns its generators
//     (internal/rng) precisely so every run is bit-for-bit reproducible;
//   - panicmsg: panics carry "<pkg>: ..."-prefixed messages, the repo-wide
//     convention that makes a crash attributable without a stack dive;
//   - sizebytes: every Predictor implementation accounts all state-carrying
//     tables in SizeBytes, the x axis of every figure in the paper;
//   - pow2mask: len(x)-1 index masks are only derived from sizes proven to
//     be powers of two;
//   - floatcmp: no exact floating-point equality in the statistics and
//     experiment packages.
//
// A second, flow-aware generation proves the invariants the fast-path
// layers (record/replay, batch protocols, memory sidecar, timing memo)
// rest on:
//
//   - predictpure: Predict/PredictBits on internal/predictor types must
//     not mutate predictor state — predictions are pure reads, Update is
//     the mutation point;
//   - lockguard: struct fields annotated "guarded by mu" may only be
//     touched with that mutex provably held on every path;
//   - keyfields: structs marked //bplint:keyfields must have every field
//     referenced in their canonical-key method, so adding a field without
//     extending the memo key is a lint failure, not a silent collision;
//   - hotalloc: functions marked //bplint:hotpath are rejected for
//     allocation-causing constructs (closures, interface boxing, fmt,
//     append growth, map/slice literals);
//   - protomix: one cursor variable must not mix the instruction
//     (Next/NextInsts) and branch (NextBranches) protocols, statically
//     complementing trace.Cursor's runtime panics.
//
// A third generation certifies the concurrency discipline of the shared
// read-mostly structures the sharded drivers lean on, built on a common
// per-package dataflow core (dataflow.go) that tracks constructor origins,
// escapes and lock/Once dominance:
//
//   - frozen: types marked //bplint:frozen (recordings, memory sidecars,
//     memoized results) are never written after escaping their
//     constructor; sync.Once publication is the one sanctioned late write;
//   - sharedcapture: go-launched closures must not capture shared mutable
//     variables unless every access is lock-dominated;
//   - oncepublish: payload fields paired with a sync.Once are published
//     inside Do and read behind a dominating Do or lock — the
//     unsynchronized double-checked load is a finding;
//   - globalstate: package-level vars in the hot shared packages are
//     sync primitives, self-guarded, write-once, or explicitly allowed;
//   - maporder: nondeterministic map iteration order must not flow into
//     canonical keys, codec output, or stdout.
//
// A fourth generation certifies the twin-path architecture: every hot
// result flows through fused SoA fast paths (funcsim.RunMany,
// pipeline.RunMany, BatchStepper) that must mirror scalar references
// statement for statement, an invariant previously enforced only by
// sampled equivalence tests:
//
//   - twinsync: functions marked //bplint:twin pkg.Recv.Method must,
//     as a group, cover every kernel statement (assignments, calls,
//     ++/--, returns) of the named scalar twin under a normalized-AST
//     correspondence (normalize.go); //bplint:twinmap supplies name
//     equivalences and //bplint:twinskip justifies genuine
//     re-organizations;
//   - fieldlanes: mutable fields of scalar state structs marked
//     //bplint:lanecheck must map to declared SoA lane fields via
//     //bplint:lane Owner.field annotations, and every field of a
//     participating lane struct must name its scalar state or carry an
//     explicit //bplint:lane - <reason>;
//   - equivcover: every twin group and every BatchStepper
//     implementation must be exercised by a package equivalence test
//     whose closure reaches both sides and a comparison sink;
//   - switchenum: switches over declared outcome/meta-class const sets
//     in trace/funcsim/pipeline (//bplint:enum groups or typed enums)
//     must be exhaustive or panic in their default.
//
// Findings can be suppressed for a single line with an allow directive on
// the same line or the line directly above:
//
//	//bplint:allow determinism progress output only, never in results
//
// The directive names one analyzer (or a comma-separated list) and should
// carry a reason. cmd/bplint is the command-line driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a type-checked package via
// the Pass and reports findings through it.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is a one-line description shown by bplint -list.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		PanicMsg,
		SizeBytes,
		Pow2Mask,
		FloatCmp,
		PredictPure,
		LockGuard,
		KeyFields,
		HotAlloc,
		ProtoMix,
		Frozen,
		SharedCapture,
		OncePublish,
		GlobalState,
		MapOrder,
		TwinSync,
		FieldLanes,
		EquivCover,
		SwitchEnum,
	}
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset   *token.FileSet
	Module string // module path of the enclosing module, e.g. "branchsim"
	Path   string // import path of the package under analysis
	Dir    string // directory the package was loaded from ("" when synthetic)
	Pkg    *types.Package
	Info   *types.Info
	Files  []*ast.File

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath returns the package's path relative to the module root ("." for
// the root package itself).
func (p *Pass) RelPath() string {
	switch {
	case p.Path == p.Module:
		return "."
	case strings.HasPrefix(p.Path, p.Module+"/"):
		return strings.TrimPrefix(p.Path, p.Module+"/")
	}
	return p.Path
}

// InSimulation reports whether the package is part of the simulator proper
// (under internal/), where the determinism and convention analyzers apply.
func (p *Pass) InSimulation() bool {
	rel := p.RelPath()
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// Run applies the analyzers to pkg and returns the findings that are not
// suppressed by allow directives, sorted by position.
func Run(pkg *Package, module string, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Module:   module,
			Path:     pkg.Path,
			Dir:      pkg.Dir,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Files:    pkg.Files,
			analyzer: a,
			findings: &raw,
		}
		a.Run(pass)
	}
	allowed := collectAllows(pkg)
	out := raw[:0]
	for _, f := range raw {
		if !allowed.covers(f) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

var allowRe = regexp.MustCompile(`^//\s*bplint:allow\s+([A-Za-z0-9_,-]+)[ \t]*(.*)$`)

// allowSet records, per file and line, the analyzer names an allow directive
// suppresses.
type allowSet map[string]map[int]map[string]bool

// covers reports whether a directive on the finding's line, or on the line
// directly above it, names the finding's analyzer.
func (s allowSet) covers(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Analyzer] {
			return true
		}
	}
	return false
}

func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, name := range strings.Split(m[1], ",") {
					names[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return set
}

// inspectStack walks every node of every file, handing the visitor the stack
// of ancestors (outermost first, excluding n itself).
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}
