package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source file and
// wraps it in a Pass, so normalizer tests run on strings instead of
// fixture directories.
func typecheckSrc(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{Fset: fset, Module: "branchsim", Path: "fix", Pkg: pkg, Info: info, Files: []*ast.File{f}}
}

// declByName finds a function or method declaration by bare name.
func declByName(t *testing.T, decls map[types.Object]*ast.FuncDecl, name string) *ast.FuncDecl {
	t.Helper()
	for obj, fd := range decls {
		if obj.Name() == name {
			return fd
		}
	}
	t.Fatalf("no declaration named %s", name)
	return nil
}

// assertTwinMatch extracts kernels from the scalar and fused functions and
// checks every scalar kernel against the fused key set — the exact
// matching path twinsync runs — expecting full coverage (wantMatch) or at
// least one unmatched kernel (!wantMatch).
func assertTwinMatch(t *testing.T, src, scalar, fused string, twinmap map[string]string, wantMatch bool) {
	t.Helper()
	pass := typecheckSrc(t, src)
	decls := funcDecls(pass)
	ks := newKeySet()
	for _, k := range extractKernels(pass, declByName(t, decls, fused), twinmap, decls, nil) {
		ks.add(k)
	}
	unmatched := 0
	for _, k := range extractKernels(pass, declByName(t, decls, scalar), twinmap, decls, nil) {
		if !ks.matches(k) {
			unmatched++
			if wantMatch {
				t.Errorf("scalar kernel %q has no fused counterpart", k.full[0])
			}
		}
	}
	if !wantMatch && unmatched == 0 {
		t.Error("every scalar kernel matched; expected at least one divergence")
	}
}

// TestNormalizerInsensitivity pins the equivalences the twin matching is
// built on: comments, parentheses, line position, receiver naming,
// index/slice decoration, conversions and singular/plural naming must not
// produce spurious drift — while a changed constant, operator or argument
// must.
func TestNormalizerInsensitivity(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		twinmap   map[string]string
		wantMatch bool
	}{
		{
			name: "comments-parens-layout",
			src: `package fix
type S struct{ n, m int64 }
func (s *S) scalar(a, b int64) {
	s.n = a + b
	s.m++
}
type F struct{ n, m int64 }
func (f *F) fused(a, b int64) {
	// a comment the scalar side does not have
	f.n =
		((a + b)) // trailing note
	f.m++
}`,
			wantMatch: true,
		},
		{
			name: "index-and-plural-decoration",
			src: `package fix
type S struct{ taken int64 }
func (s *S) scalar(pc uint64, taken bool) {
	if taken {
		s.taken++
	}
	s.use(pc, taken)
}
func (s *S) use(pc uint64, taken bool) {}
type F struct{ takens []int64 }
func (f *F) fused(pcs []uint64, takens []bool) {
	for i := range pcs {
		if takens[i] {
			f.takens[i]++
		}
		f.use(pcs[i], takens[i])
	}
}
func (f *F) use(pc uint64, taken bool) {}`,
			wantMatch: true,
		},
		{
			name: "conversion-dropped",
			src: `package fix
type S struct{ n int64 }
func (s *S) scalar(v int) {
	s.n = int64(v)
}
type F struct{ n int64 }
func (f *F) fused(v int) {
	f.n = int64(int32(v))
}`,
			wantMatch: true,
		},
		{
			name: "twinmap-field-rename",
			src: `package fix
type S struct{ insts int64 }
func (s *S) scalar() {
	s.insts++
}
type F struct{ count int64 }
func (f *F) fused() {
	f.count++
}`,
			twinmap:   map[string]string{"inst": "count"},
			wantMatch: true,
		},
		{
			name: "state-threading-call-prefix",
			src: `package fix
type S struct{ at uint64 }
func (s *S) scalar(t uint64) {
	s.advance(t)
}
func (s *S) advance(t uint64) { s.at = t }
type F struct{ at, used uint64 }
func (f *F) fused(t, u uint64) {
	f.advance(t, u)
}
func (f *F) advance(t, u uint64) { f.at, f.used = t, u }`,
			wantMatch: true,
		},
		{
			name: "drifted-constant-detected",
			src: `package fix
type S struct{ n int64 }
func (s *S) scalar() {
	s.n += 2
}
type F struct{ n int64 }
func (f *F) fused() {
	f.n += 1
}`,
			wantMatch: false,
		},
		{
			name: "drifted-argument-detected",
			src: `package fix
type S struct{}
func (s *S) scalar(pc uint64, taken bool) {
	s.update(pc, !taken)
}
func (s *S) update(pc uint64, taken bool) {}
type F struct{}
func (f *F) fused(pcs []uint64, takens []bool) {
	for i := range pcs {
		f.update(pcs[i], takens[i])
	}
}
func (f *F) update(pc uint64, taken bool) {}`,
			wantMatch: false,
		},
		{
			name: "dropped-statement-detected",
			src: `package fix
type S struct{ n, m int64 }
func (s *S) scalar() {
	s.n++
	s.m++
}
type F struct{ n, m int64 }
func (f *F) fused() {
	f.n++
}`,
			wantMatch: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertTwinMatch(t, tc.src, "scalar", "fused", tc.twinmap, tc.wantMatch)
		})
	}
}
