package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// KeyFields makes memo-key exhaustiveness a build-time property. A struct
// marked //bplint:keyfields (optionally naming the key method; default
// Canonical) is a struct whose value is used as a map key identity — the
// timing memo keys cells by pipeline.Config.Canonical(), so a Config field
// that Canonical does not produce would make two genuinely different
// machine configurations collide on one memoized Result, silently
// corrupting an IPC cell. The analyzer requires every field of the marked
// struct to be referenced by name in the key method (directly or through
// same-package helpers it calls), which in practice forces the method to
// build its result as an explicit field-by-field literal: adding a field
// without extending the key is then a lint failure, not a latent memo
// collision.
//
// Whole-struct copies (return c) do cover every field semantically, but
// the analyzer deliberately rejects that shape: it is exactly the shape
// that hides a forgotten normalization when the next field arrives.
var KeyFields = &Analyzer{
	Name: "keyfields",
	Doc:  "structs marked //bplint:keyfields must have every field referenced in their canonical-key method",
	Run:  runKeyFields,
}

var keyfieldsRe = regexp.MustCompile(`^//\s*bplint:keyfields(?:\s+([A-Za-z_][A-Za-z0-9_]*))?\s*$`)

func runKeyFields(pass *Pass) {
	decls := funcDecls(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				method := keyfieldsDirective(gd, ts)
				if method == "" {
					continue
				}
				checkKeyFields(pass, ts, method, decls)
			}
		}
	}
}

// keyfieldsDirective returns the key-method name ("Canonical" when the
// directive carries none, "" when there is no directive), looking at both
// the TypeSpec's own doc and the enclosing GenDecl's.
func keyfieldsDirective(gd *ast.GenDecl, ts *ast.TypeSpec) string {
	for _, group := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := keyfieldsRe.FindStringSubmatch(c.Text); m != nil {
				if m[1] == "" {
					return "Canonical"
				}
				return m[1]
			}
		}
	}
	return ""
}

func checkKeyFields(pass *Pass, ts *ast.TypeSpec, method string, decls map[types.Object]*ast.FuncDecl) {
	tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Name.Pos(), "//bplint:keyfields applies to struct types, %s is not one", ts.Name.Name)
		return
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pass.Pkg, method)
	keyFn, ok := obj.(*types.Func)
	if !ok {
		pass.Reportf(ts.Name.Pos(), "//bplint:keyfields: %s has no key method %s", ts.Name.Name, method)
		return
	}
	root := decls[keyFn]
	if root == nil {
		pass.Reportf(ts.Name.Pos(), "//bplint:keyfields: %s.%s is not declared in this package, cannot verify key coverage", ts.Name.Name, method)
		return
	}
	referenced := keyFieldRefs(pass, root, decls)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !referenced[f] {
			pass.Reportf(f.Pos(),
				"%s.%s is not referenced by (%s).%s — two configs differing only here would collide on one memo key",
				ts.Name.Name, f.Name(), ts.Name.Name, method)
		}
	}
}

// keyFieldRefs is reachableFieldRefs extended with composite-literal keys:
// in a keyed struct literal the field names appear as bare idents whose
// object go/types records in Uses, not as selections.
func keyFieldRefs(pass *Pass, root *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) map[*types.Var]bool {
	refs := reachableFieldRefs(pass, root, decls)
	seen := map[*ast.FuncDecl]bool{root: true}
	queue := []*ast.FuncDecl{root}
	for len(queue) > 0 {
		decl := queue[0]
		queue = queue[1:]
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.KeyValueExpr:
				if id, ok := e.Key.(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() {
						refs[v] = true
					}
				}
			case *ast.Ident:
				if obj := pass.Info.Uses[e]; obj != nil {
					if next := decls[obj]; next != nil && !seen[next] {
						seen[next] = true
						queue = append(queue, next)
					}
				}
			}
			return true
		})
	}
	return refs
}
