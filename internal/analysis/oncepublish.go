package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OncePublish certifies the memo stores' publication protocol. The trace
// store's entries (entry.rec, sidecarEntry.side) and the timing memo's
// cells (timingEntry.res) follow one pattern: a struct pairing a sync.Once
// with the published payload, where the first goroutine computes inside
// once.Do and everyone else blocks on the Do and then reads. The pattern
// is sound; the classic way to break it is the unsynchronized
// double-checked load — `if e.res == nil { e.once.Do(...) }` — which reads
// the payload before any happens-before edge exists and can observe a
// torn or stale value.
//
// The rule, for every struct type that pairs a sync.Once field with
// payload fields: a payload field may be written only inside a function
// literal passed to that struct's own Once Do (on the same base value),
// and may be read only where a Do call on the same base dominates, where
// a mutex Lock dominates (publication under the owner's lock, the trace
// store's read-back path), or inside the Do body itself. Anything else is
// an unsynchronized load or store of a once-published value.
var OncePublish = &Analyzer{
	Name: "oncepublish",
	Doc:  "fields sharing a struct with a sync.Once must be published inside Do and read behind Do or a lock",
	Run:  runOncePublish,
}

// onceStructInfo describes one Once-paired struct type.
type onceStructInfo struct {
	named *types.Named
	once  string // the sync.Once field's name
}

func runOncePublish(pass *Pass) {
	payload := map[*types.Var]onceStructInfo{} // payload field → its struct
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		onceField := ""
		for i := 0; i < st.NumFields(); i++ {
			if isSyncOnce(st.Field(i).Type()) {
				onceField = st.Field(i).Name()
				break
			}
		}
		if onceField == "" {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == onceField || isSyncOnce(f.Type()) {
				continue
			}
			payload[f] = onceStructInfo{named: named, once: onceField}
		}
	}
	if len(payload) == 0 {
		return
	}

	locks := collectLockOps(pass)
	doCalls := collectDoCalls(pass)

	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		info, ok := payload[v]
		if !ok {
			return
		}
		base := types.ExprString(ast.Unparen(sel.X))
		fn := enclosingFunc(stack)
		chain := containerChain(stack, fn)

		if onceBase, inDo := insideOnceDo(pass, stack); inDo && onceBase == base+"."+info.once {
			return // the Do body is the publication critical section
		}
		if writtenSelector(stack, sel) {
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is once-published but written outside %s.%s.Do — only the Do body may publish it",
				info.named.Obj().Name(), v.Name(), base, info.once)
			return
		}
		// A read: needs a dominating Do on the same base, or a dominating
		// lock (the store-lock read-back and inventory paths).
		for _, d := range doCalls {
			if d.fn == fn && d.base == base+"."+info.once && d.pos < sel.Pos() && chainCovers(chain, d.chain) {
				return
			}
		}
		if lockDominates(locks, "", fn, sel.Pos(), chain) {
			return
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is read without a dominating %s.%s.Do or lock — an unsynchronized load of a once-published value",
			info.named.Obj().Name(), v.Name(), base, info.once)
	})
}

// writtenSelector reports whether the selector itself (not just its root
// ident) is an assignment target — e.g. `e.res = v` arrives here with the
// SelectorExpr as the LHS.
func writtenSelector(stack []ast.Node, sel *ast.SelectorExpr) bool {
	cur := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.IndexExpr:
			cur = p
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		default:
			return false
		}
	}
	return false
}

// doCall is one <base>.Do(...) call on a sync.Once value.
type doCall struct {
	base  string // "e.once"
	pos   token.Pos
	fn    ast.Node
	chain []ast.Node
}

func collectDoCalls(pass *Pass) []doCall {
	var calls []doCall
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			return
		}
		if !isSyncOnce(pass.Info.Types[ast.Unparen(sel.X)].Type) {
			return
		}
		fn := enclosingFunc(stack)
		calls = append(calls, doCall{
			base:  types.ExprString(ast.Unparen(sel.X)),
			pos:   call.Pos(),
			fn:    fn,
			chain: containerChain(stack, fn),
		})
	})
	return calls
}
