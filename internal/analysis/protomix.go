package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProtoMix statically enforces the cursor protocol exclusivity that
// trace.Cursor checks with runtime panics: one cursor value serves either
// the instruction protocol (Next/NextInsts, which share a position) or the
// branch protocol (NextBranches), never both — the two maintain
// independent positions, so interleaving them silently skips or repeats
// instructions. The runtime panic fires only on the executed path of the
// offending configuration; this check rejects the mix wherever it is
// written.
//
// Scope and approximation: per function, for each variable whose type
// offers both protocols (a NextBranches method plus Next or NextInsts), a
// branch-protocol call is reported when an instruction-protocol call on
// the same variable dominates it (same containment rule as lockguard) with
// no Reset in between, and vice versa. Calls in mutually exclusive
// branches are left to the runtime panic, as are mixes across function
// boundaries — the check complements the panic, it does not replace it.
var ProtoMix = &Analyzer{
	Name: "protomix",
	Doc:  "one cursor variable must not mix the Next/NextInsts and NextBranches protocols",
	Run:  runProtoMix,
}

// protoClass classifies a cursor method call.
type protoClass int

const (
	protoNone   protoClass = iota
	protoInst              // Next, NextInsts — shared position, freely interleavable
	protoBranch            // NextBranches
	protoReset             // Reset — rewinds both positions, legalizing a switch
)

func methodProtoClass(name string) protoClass {
	switch name {
	case "Next", "NextInsts":
		return protoInst
	case "NextBranches":
		return protoBranch
	case "Reset":
		return protoReset
	}
	return protoNone
}

// protoCall is one protocol-relevant method call on a cursor variable.
type protoCall struct {
	class  protoClass
	obj    types.Object // the cursor variable
	method string
	pos    token.Pos
	fn     ast.Node
	chain  []ast.Node
}

func runProtoMix(pass *Pass) {
	var calls []protoCall
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		class := methodProtoClass(sel.Sel.Name)
		if class == protoNone {
			return
		}
		id := rootIdent(ast.Unparen(sel.X))
		if id == nil {
			return
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		// Only variables that genuinely offer both protocols are cursors in
		// the trace sense; a type with just Next is any old iterator.
		if !hasMethodNamed(pass.Pkg, v.Type(), "NextBranches") {
			return
		}
		if !hasMethodNamed(pass.Pkg, v.Type(), "Next") && !hasMethodNamed(pass.Pkg, v.Type(), "NextInsts") {
			return
		}
		fn := enclosingFunc(stack)
		calls = append(calls, protoCall{
			class:  class,
			obj:    v,
			method: sel.Sel.Name,
			pos:    call.Pos(),
			fn:     fn,
			chain:  containerChain(stack, fn),
		})
	})

	for _, b := range calls {
		if b.class != protoInst && b.class != protoBranch {
			continue
		}
		for _, a := range calls {
			if a.obj != b.obj || a.fn != b.fn || a.pos >= b.pos {
				continue
			}
			if a.class == protoNone || a.class == protoReset || a.class == b.class {
				continue
			}
			// a must dominate b: every scope containing a also contains b.
			if !chainCovers(b.chain, a.chain) {
				continue
			}
			if resetBetween(calls, b.obj, b.fn, a.pos, b.pos) {
				continue
			}
			pass.Reportf(b.pos,
				"%s mixes cursor protocols: %s on %s follows %s with no Reset — the two protocols keep independent positions",
				funcName(b.fn), b.method, b.obj.Name(), a.method)
			break
		}
	}
}

// resetBetween reports a Reset call on obj in fn strictly between lo and hi.
func resetBetween(calls []protoCall, obj types.Object, fn ast.Node, lo, hi token.Pos) bool {
	for _, c := range calls {
		if c.class == protoReset && c.obj == obj && c.fn == fn && c.pos > lo && c.pos < hi {
			return true
		}
	}
	return false
}

func funcName(fn ast.Node) string {
	if fd, ok := fn.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "function literal"
}
