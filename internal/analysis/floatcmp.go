package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags exact floating-point equality (== and !=) in the
// statistics and experiment packages, where aggregated means and rates are
// compared: exact comparison on accumulated floats encodes an accident of
// rounding, not an invariant. Compare against a tolerance, or compare the
// integer counts the floats were derived from.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands in internal/stats and internal/experiments",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	rel := pass.RelPath()
	if !strings.HasPrefix(rel, "internal/stats") && !strings.HasPrefix(rel, "internal/experiments") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if isFloat(pass, b.X) || isFloat(pass, b.Y) {
				pass.Reportf(b.OpPos, "exact floating-point %s comparison: use a tolerance or compare the underlying counts", b.Op)
			}
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
