package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// TwinSync certifies that a fused fast path mirrors its scalar reference.
// A fused function carries //bplint:twin pkg.Recv.Method (or pkg.Func)
// naming the scalar twin it re-implements; every function carrying the
// same target forms one twin group, and the group's fused sides together
// must cover every kernel statement of the scalar body under the
// normalization rules of normalize.go. A scalar statement with no fused
// counterpart is exactly an unmirrored edit — the drift the sampled
// equivalence tests can only catch for the configs they happen to run —
// and is reported at the scalar line so both sides of the divergence are
// one jump away.
//
// Two companion directives keep the check honest rather than noisy:
// //bplint:twinmap a=b records a name equivalence the normalizer cannot
// derive (gshare's scalar Update versus the fused PredictUpdate), and
// //bplint:twinskip <reason>, placed on or directly above a scalar
// statement, excludes a statement whose fused counterpart is a genuine
// re-organization (the byte-ring commit scheme) — each skip must carry a
// justification and must land on a real kernel, so waivers stay
// reviewable and die with the code they excuse.
var TwinSync = &Analyzer{
	Name: "twinsync",
	Doc:  "fused fast paths marked //bplint:twin must cover every kernel statement of their scalar reference",
	Run:  runTwinSync,
}

var (
	twinRe     = regexp.MustCompile(`^//\s*bplint:twin\s+(\S+)\s*$`)
	twinmapRe  = regexp.MustCompile(`^//\s*bplint:twinmap\s+(.+?)\s*$`)
	twinskipRe = regexp.MustCompile(`^//\s*bplint:twinskip\s*(.*?)\s*$`)
)

// twinGroup collects every fused function that names one scalar target.
type twinGroup struct {
	target     string
	scalarObj  types.Object
	scalarDecl *ast.FuncDecl
	fused      []*ast.FuncDecl
	pos        token.Pos // first directive, for target-level findings
	twinmap    map[string]string
}

// twinSkip is one //bplint:twinskip occurrence.
type twinSkip struct {
	pos    token.Pos
	file   string
	line   int
	reason string
	used   bool
}

func runTwinSync(pass *Pass) {
	decls := funcDecls(pass)
	groups := collectTwinGroups(pass, decls, pass.Reportf)
	skips := collectTwinSkips(pass)
	targets := make([]string, 0, len(groups))
	for t := range groups {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, t := range targets {
		checkTwinGroup(pass, groups[t], decls, skips)
	}
	for _, sk := range skips {
		if !sk.used {
			pass.Reportf(sk.pos, "//bplint:twinskip does not cover a kernel statement of any twin target — delete it or move it onto the scalar statement it excuses")
		}
	}
}

// collectTwinGroups scans function doc comments for //bplint:twin and
// //bplint:twinmap directives, resolving each target to a same-package
// function or method. Directive problems go through report so that
// equivcover can reuse the scan without double-reporting them.
func collectTwinGroups(pass *Pass, decls map[types.Object]*ast.FuncDecl, report func(token.Pos, string, ...any)) map[string]*twinGroup {
	groups := map[string]*twinGroup{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var fdGroups []*twinGroup
			var fdMap map[string]string
			for _, c := range fd.Doc.List {
				if m := twinRe.FindStringSubmatch(c.Text); m != nil {
					g := resolveTwinTarget(pass, decls, m[1], c.Pos(), groups, report)
					if g == nil {
						continue
					}
					if g.scalarDecl == fd {
						report(c.Pos(), "//bplint:twin target %s is the annotated function itself", m[1])
						continue
					}
					g.fused = append(g.fused, fd)
					fdGroups = append(fdGroups, g)
					continue
				}
				if m := twinmapRe.FindStringSubmatch(c.Text); m != nil {
					if fdMap == nil {
						fdMap = map[string]string{}
					}
					parseTwinMap(m[1], c.Pos(), fdMap, report)
				}
			}
			if fdMap != nil && len(fdGroups) == 0 {
				report(fd.Pos(), "//bplint:twinmap on %s has no //bplint:twin directive to apply to", fd.Name.Name)
			}
			for _, g := range fdGroups {
				for k, v := range fdMap {
					g.twinmap[k] = v
				}
			}
		}
	}
	return groups
}

func resolveTwinTarget(pass *Pass, decls map[types.Object]*ast.FuncDecl, target string, pos token.Pos, groups map[string]*twinGroup, report func(token.Pos, string, ...any)) *twinGroup {
	if g, ok := groups[target]; ok {
		return g
	}
	parts := strings.Split(target, ".")
	if len(parts) < 2 || len(parts) > 3 || parts[0] != pass.Pkg.Name() {
		report(pos, "//bplint:twin target %q must name a same-package function as %s.Func or %s.Recv.Method", target, pass.Pkg.Name(), pass.Pkg.Name())
		return nil
	}
	var obj types.Object
	if len(parts) == 2 {
		obj = pass.Pkg.Scope().Lookup(parts[1])
	} else {
		tn, _ := pass.Pkg.Scope().Lookup(parts[1]).(*types.TypeName)
		if tn == nil {
			report(pos, "//bplint:twin target %q: no type %s in package %s", target, parts[1], pass.Pkg.Name())
			return nil
		}
		obj, _, _ = types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pass.Pkg, parts[2])
	}
	fn, _ := obj.(*types.Func)
	if fn == nil || decls[fn] == nil || decls[fn].Body == nil {
		report(pos, "//bplint:twin target %q does not resolve to a function declared in this package", target)
		return nil
	}
	g := &twinGroup{
		target:     target,
		scalarObj:  fn,
		scalarDecl: decls[fn],
		pos:        pos,
		twinmap:    map[string]string{},
	}
	groups[target] = g
	return g
}

func parseTwinMap(args string, pos token.Pos, into map[string]string, report func(token.Pos, string, ...any)) {
	for _, pair := range strings.Fields(args) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || v == "" {
			report(pos, "//bplint:twinmap entry %q is not name=name", pair)
			continue
		}
		into[baseNormalize(k)] = baseNormalize(v)
	}
}

// baseNormalize applies the identifier folding of renderer.normalizeName
// without the twinmap step, for directive arguments.
func baseNormalize(name string) string {
	n := strings.ToLower(name)
	if len(n) > 1 && strings.HasSuffix(n, "s") {
		n = n[:len(n)-1]
	}
	return n
}

func collectTwinSkips(pass *Pass) []*twinSkip {
	var out []*twinSkip
	for _, file := range pass.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := twinskipRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if m[1] == "" {
					pass.Reportf(c.Pos(), "//bplint:twinskip requires a justification: why does this scalar statement have no fused counterpart?")
				}
				out = append(out, &twinSkip{pos: c.Pos(), file: p.Filename, line: p.Line, reason: m[1]})
			}
		}
	}
	return out
}

// keySet indexes the fused side of a twin group. prefix maps each
// "callee(firstArg" key to the largest argument count seen among the fused
// calls producing it: a scalar call may match by prefix only against a
// fused call with strictly more arguments (state threading like
// advanceFetch(t) → advanceTo(t, cursor...)), never against an equal-arity
// call whose trailing arguments may have drifted.
type keySet struct {
	full   map[string]bool
	rhs    map[string]bool
	prefix map[string]int
}

func newKeySet() *keySet {
	return &keySet{full: map[string]bool{}, rhs: map[string]bool{}, prefix: map[string]int{}}
}

func (ks *keySet) add(k kernel) {
	for _, s := range k.full {
		ks.full[s] = true
	}
	for _, s := range k.rhs {
		ks.rhs[s] = true
	}
	for _, s := range k.callPrefix {
		if k.arity > ks.prefix[s] {
			ks.prefix[s] = k.arity
		}
	}
	// A fused call also serves as an RHS: the scalar side may bind the
	// same call's result where the fused side discards it, or vice versa.
	if k.kind == kernelCall {
		for _, s := range k.full {
			ks.rhs[s] = true
		}
	}
}

// matches reports whether scalar kernel k has a fused counterpart.
func (ks *keySet) matches(k kernel) bool {
	for _, s := range k.full {
		if ks.full[s] {
			return true
		}
	}
	switch k.kind {
	case kernelCall:
		for _, s := range k.full {
			if ks.rhs[s] {
				return true
			}
		}
		for _, s := range k.callPrefix {
			if ks.prefix[s] > k.arity {
				return true
			}
		}
	case kernelReturn:
		for _, s := range k.rhs {
			if ks.rhs[s] || ks.full[s] {
				return true
			}
		}
	}
	return false
}

func checkTwinGroup(pass *Pass, g *twinGroup, decls map[types.Object]*ast.FuncDecl, skips []*twinSkip) {
	ks := newKeySet()
	for _, fd := range g.fused {
		for _, k := range extractKernels(pass, fd, g.twinmap, decls, nil) {
			ks.add(k)
		}
	}
	for _, k := range extractKernels(pass, g.scalarDecl, g.twinmap, decls, skips) {
		if ks.matches(k) {
			continue
		}
		// Argless same-package helper calls (breakFetch) fall back to
		// body inlining: the call is covered if every kernel of the
		// callee's body has a fused counterpart.
		if k.kind == kernelCall && k.argless && k.calleeObj != nil {
			if callee := decls[k.calleeObj]; callee != nil && callee.Body != nil {
				inner := extractKernels(pass, callee, g.twinmap, decls, nil)
				covered := len(inner) > 0
				for _, ik := range inner {
					if !ks.matches(ik) {
						covered = false
						break
					}
				}
				if covered {
					continue
				}
			}
		}
		fused := make([]string, 0, len(g.fused))
		for _, fd := range g.fused {
			fused = append(fused, fd.Name.Name)
		}
		pass.Reportf(k.pos, "scalar statement of %s has no counterpart in its fused twins (%s) — normalized form %q; mirror the edit or //bplint:twinskip it with a reason",
			g.target, strings.Join(fused, ", "), k.full[0])
	}
}

// extractKernels walks fn's body and renders every kernel statement under
// all normalization variants. When skips is non-nil (the scalar side), a
// statement on or directly below a //bplint:twinskip line is excluded,
// subtree included, and the skip is marked used.
func extractKernels(pass *Pass, fn *ast.FuncDecl, twinmap map[string]string, decls map[types.Object]*ast.FuncDecl, skips []*twinSkip) []kernel {
	if fn.Body == nil {
		return nil
	}
	locals := collectLocalInfo(pass.Info, fn)
	var recvObj types.Object
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvObj = pass.Info.Defs[fn.Recv.List[0].Names[0]]
	}
	renderers := make([]*renderer, len(renderVariants))
	for i, opts := range renderVariants {
		r := newRenderer(pass.Info, pass.Pkg, locals, decls, twinmap, opts)
		r.recvObj = recvObj
		renderers[i] = r
	}
	skipped := func(s ast.Stmt) bool {
		if skips == nil {
			return false
		}
		p := pass.Fset.Position(s.Pos())
		hit := false
		for _, sk := range skips {
			if sk.file == p.Filename && (sk.line == p.Line || sk.line == p.Line-1) {
				sk.used = true
				hit = true
			}
		}
		return hit
	}
	var kernels []kernel
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		if s == nil || skipped(s) {
			return
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			for _, st := range s.List {
				walk(st)
			}
		case *ast.IfStmt:
			walk(s.Init)
			walk(s.Body)
			walk(s.Else)
		case *ast.ForStmt:
			// Loop headers are structural: the fused twin restructures
			// iteration (per-lane sweeps, batch loops) freely.
			walk(s.Body)
		case *ast.RangeStmt:
			walk(s.Body)
		case *ast.SwitchStmt:
			walk(s.Init)
			for _, cc := range s.Body.List {
				for _, st := range cc.(*ast.CaseClause).Body {
					walk(st)
				}
			}
		case *ast.TypeSwitchStmt:
			walk(s.Init)
			for _, cc := range s.Body.List {
				for _, st := range cc.(*ast.CaseClause).Body {
					walk(st)
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.AssignStmt:
			kernels = append(kernels, assignKernels(renderers, s)...)
		case *ast.IncDecStmt:
			k := kernel{kind: kernelIncDec, stmt: s, pos: s.Pos()}
			k.full = distinct(renderers, func(r *renderer) string {
				return r.renderNoSubst(s.X) + s.Tok.String()
			})
			kernels = append(kernels, k)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				kernels = append(kernels, callKernel(renderers, s, s.Pos(), call))
			}
		case *ast.ReturnStmt:
			if k, ok := returnKernel(renderers, s); ok {
				kernels = append(kernels, k)
			}
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				kernels = append(kernels, declKernels(renderers, s, gd)...)
			}
		}
	}
	walk(fn.Body)
	return kernels
}

// distinct renders via every variant renderer and deduplicates.
func distinct(renderers []*renderer, f func(*renderer) string) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range renderers {
		s := f(r)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func assignKernels(renderers []*renderer, s *ast.AssignStmt) []kernel {
	if len(s.Lhs) != len(s.Rhs) {
		// A tuple capture from one call is the call, kernel-wise: the
		// fused twin may bind different (or no) results.
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				return []kernel{callKernel(renderers, s, s.Pos(), call)}
			}
		}
		return nil
	}
	var out []kernel
	op := s.Tok.String()
	if s.Tok == token.DEFINE {
		op = "="
	}
	for i := range s.Lhs {
		lhs, rhs := s.Lhs[i], s.Rhs[i]
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		k := kernel{kind: kernelAssign, stmt: s, pos: lhs.Pos()}
		k.full = distinct(renderers, func(r *renderer) string {
			return r.renderNoSubst(lhs) + op + r.render(rhs)
		})
		if op == "=" {
			k.rhs = distinct(renderers, func(r *renderer) string {
				return r.render(rhs)
			})
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				ck := callKernel(renderers, s, lhs.Pos(), call)
				k.callPrefix, k.arity = ck.callPrefix, ck.arity
			}
		}
		out = append(out, k)
	}
	return out
}

func callKernel(renderers []*renderer, stmt ast.Stmt, pos token.Pos, call *ast.CallExpr) kernel {
	k := kernel{kind: kernelCall, stmt: stmt, pos: pos, argless: len(call.Args) == 0, arity: len(call.Args)}
	k.full = distinct(renderers, func(r *renderer) string {
		return r.render(call)
	})
	_, _, k.calleeObj = renderers[0].calleeOf(call)
	if len(call.Args) > 0 {
		k.callPrefix = distinct(renderers, func(r *renderer) string {
			callee, recv, _ := r.calleeOf(call)
			if recv != "" {
				callee = recv + "." + callee
			}
			return callee + "(" + r.render(call.Args[0])
		})
	}
	return k
}

// returnKernel renders a return with at least one non-trivial result;
// `return true` and friends are protocol glue, not mirrored computation.
func returnKernel(renderers []*renderer, s *ast.ReturnStmt) (kernel, bool) {
	if len(s.Results) == 0 {
		return kernel{}, false
	}
	trivial := true
	for _, res := range s.Results {
		switch e := ast.Unparen(res).(type) {
		case *ast.BasicLit:
		case *ast.Ident:
			if e.Name != "true" && e.Name != "false" && e.Name != "nil" {
				trivial = false
			}
		default:
			trivial = false
		}
	}
	if trivial {
		return kernel{}, false
	}
	k := kernel{kind: kernelReturn, stmt: s, pos: s.Pos()}
	k.full = distinct(renderers, func(r *renderer) string {
		parts := make([]string, len(s.Results))
		for i, res := range s.Results {
			parts[i] = r.render(res)
		}
		return "return " + strings.Join(parts, ",")
	})
	for _, res := range s.Results {
		res := res
		k.rhs = append(k.rhs, distinct(renderers, func(r *renderer) string {
			return r.render(res)
		})...)
	}
	return k, true
}

func declKernels(renderers []*renderer, stmt ast.Stmt, gd *ast.GenDecl) []kernel {
	var out []kernel
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) || name.Name == "_" {
				continue
			}
			val := vs.Values[i]
			k := kernel{kind: kernelAssign, stmt: stmt, pos: name.Pos()}
			k.full = distinct(renderers, func(r *renderer) string {
				return r.renderNoSubst(name) + "=" + r.render(val)
			})
			k.rhs = distinct(renderers, func(r *renderer) string {
				return r.render(val)
			})
			out = append(out, k)
		}
	}
	return out
}
