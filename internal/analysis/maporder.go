package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder closes the loophole the determinism analyzer's structural checks
// leave open: Go map iteration order is deliberately randomized, so any
// value that flows from a `for k, v := range m` body straight into
// something order-sensitive — a formatted report, an encoder, a canonical
// key built by string concatenation — differs run to run. In this repo the
// stakes are concrete: cmd/reproduce's byte-identical transcript and the
// BPTRACE1 codec's canonical bytes are the reproducibility contract, and
// one `fmt.Fprintf(w, ...)` inside a map range silently voids it.
//
// The rule: inside the body of a range over a map, calls to fmt printers
// (Print/Printf/Println/Sprint.../Fprint...), io writer methods
// (Write/WriteString/WriteByte/WriteRune/Encode), and `+=` string
// accumulation using the range variables are reported. Appending to a
// slice is deliberately not flagged — collect-and-sort is the sanctioned
// pattern, and the sort restores a canonical order before anything is
// emitted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not flow into canonical keys, codec output, or stdout",
	Run:  runMapOrder,
}

// mapOrderSinks are fmt package functions whose output order the program
// can observe.
var mapOrderSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// mapOrderMethods are method names that emit bytes in call order.
var mapOrderMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.X == nil {
			return
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRangeBody(pass, rng)
	})
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	// The range variables; a sink must involve one of them (or anything,
	// for emission sinks — the call order alone leaks the iteration order).
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
					if pn.Imported().Path() == "fmt" && mapOrderSinks[sel.Sel.Name] {
						pass.Reportf(st.Pos(),
							"fmt.%s inside a map range emits in nondeterministic iteration order; collect and sort first",
							sel.Sel.Name)
					}
					return true
				}
			}
			if mapOrderMethods[sel.Sel.Name] {
				if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); isFunc {
					pass.Reportf(st.Pos(),
						"%s call inside a map range writes in nondeterministic iteration order; collect and sort first",
						sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.ADD_ASSIGN || len(st.Lhs) != 1 {
				return true
			}
			lt, ok := pass.Info.Types[st.Lhs[0]]
			if !ok {
				return true
			}
			if basic, ok := lt.Type.Underlying().(*types.Basic); !ok || basic.Info()&types.IsString == 0 {
				return true
			}
			if usesAnyOf(pass, st.Rhs[0], rangeVars) {
				pass.Reportf(st.Pos(),
					"string accumulation from map range variables builds a nondeterministic value; collect and sort first")
			}
		}
		return true
	})
}

// usesAnyOf reports whether expr references any of the given objects.
func usesAnyOf(pass *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
