package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Pow2Mask flags index masks derived as len(x)-1 (or x.Len()-1) in
// simulation packages when nothing in the enclosing function proves the
// size is a power of two. Masking with size-1 silently scrambles indices
// for any other size; every table here is supposed to be sized through
// pow2Entries or validated with an explicit n&(n-1) check.
//
// A derivation counts as a mask when it is an operand of &/&^, is assigned
// to (or initializes) something whose name contains "mask", or is passed to
// a parameter so named. It is considered guarded when the enclosing
// function contains a power-of-two check (e & (e-1)) or a call to
// pow2Entries.
var Pow2Mask = &Analyzer{
	Name: "pow2mask",
	Doc:  "flag len(x)-1 index masks with no power-of-two guard in scope",
	Run:  runPow2Mask,
}

func runPow2Mask(pass *Pass) {
	if !pass.InSimulation() {
		return
	}
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.SUB || !isIntLit(b.Y, "1") {
			return
		}
		lenCall, desc := lenLike(pass, b.X)
		if lenCall == nil {
			return
		}
		if !maskContext(pass, stack, b, lenCall) {
			return
		}
		if enclosingFuncHasPow2Guard(stack) {
			return
		}
		pass.Reportf(b.Pos(),
			"index mask %s-1 without a power-of-two guard: validate with n&(n-1)==0, size via pow2Entries, or derive the mask next to the guarded constructor", desc)
	})
}

func isIntLit(e ast.Expr, val string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == val
}

// lenLike recognizes len(x) and x.Len() and returns the call plus a display
// string.
func lenLike(pass *Pass, e ast.Expr) (ast.Expr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "len" && len(call.Args) == 1 {
			if _, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
				return call, types.ExprString(call)
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Len" && len(call.Args) == 0 {
			return call, types.ExprString(call)
		}
	}
	return nil, ""
}

// maskContext climbs from the len(x)-1 expression through parentheses and
// conversions to decide whether the value is being used as a bit mask.
func maskContext(pass *Pass, stack []ast.Node, sub *ast.BinaryExpr, lenCall ast.Expr) bool {
	var child ast.Node = sub
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[parent.Fun]; ok && tv.IsType() {
				child = parent // conversion such as uint64(len(x)-1)
				continue
			}
			return argIsMaskParam(pass, parent, child)
		case *ast.BinaryExpr:
			if parent.Op == token.AND || parent.Op == token.AND_NOT {
				// e & (e-1) is the power-of-two *check* itself, not a use.
				other := parent.X
				if ast.Unparen(other) == ast.Unparen(child.(ast.Expr)) {
					other = parent.Y
				}
				return types.ExprString(ast.Unparen(other)) != types.ExprString(ast.Unparen(lenCall))
			}
			return false
		case *ast.AssignStmt:
			return assignsToMask(parent, child)
		case *ast.ValueSpec:
			for _, name := range parent.Names {
				if nameLooksLikeMask(name.Name) {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr:
			if key, ok := parent.Key.(*ast.Ident); ok {
				return nameLooksLikeMask(key.Name)
			}
			return false
		default:
			return false
		}
	}
	return false
}

func argIsMaskParam(pass *Pass, call *ast.CallExpr, child ast.Node) bool {
	idx := -1
	for i, arg := range call.Args {
		if arg == child {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Variadic() && idx >= sig.Params().Len()-1 {
		idx = sig.Params().Len() - 1
	}
	if idx >= sig.Params().Len() {
		return false
	}
	return nameLooksLikeMask(sig.Params().At(idx).Name())
}

func assignsToMask(assign *ast.AssignStmt, child ast.Node) bool {
	idx := -1
	for i, rhs := range assign.Rhs {
		if rhs == child {
			idx = i
			break
		}
	}
	if idx < 0 || len(assign.Lhs) != len(assign.Rhs) {
		// Mixed shapes (multi-value RHS) — check every target.
		for _, lhs := range assign.Lhs {
			if nameLooksLikeMask(lhsName(lhs)) {
				return true
			}
		}
		return false
	}
	return nameLooksLikeMask(lhsName(assign.Lhs[idx]))
}

func lhsName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func nameLooksLikeMask(name string) bool {
	return strings.Contains(strings.ToLower(name), "mask")
}

// enclosingFuncHasPow2Guard reports whether the innermost enclosing
// function contains a power-of-two check (e & (e-1), either order) or a
// call to pow2Entries.
func enclosingFuncHasPow2Guard(stack []ast.Node) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op == token.AND && (isPow2Check(e.X, e.Y) || isPow2Check(e.Y, e.X)) {
				guarded = true
			}
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "pow2Entries" {
					guarded = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "pow2Entries" {
					guarded = true
				}
			}
		}
		return true
	})
	return guarded
}

// isPow2Check reports whether (a, b) has the shape (e, e-1).
func isPow2Check(a, b ast.Expr) bool {
	sub, ok := ast.Unparen(b).(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB || !isIntLit(sub.Y, "1") {
		return false
	}
	return types.ExprString(ast.Unparen(a)) == types.ExprString(ast.Unparen(sub.X))
}
