package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Frozen proves the publish-then-never-write discipline the whole memo
// stack rests on. A type annotated //bplint:frozen — trace.Recording and
// its chunks, pipeline.MemSidecar, the memoized pipeline.Result — is
// shared by pointer across every experiment goroutine the moment its
// constructor returns it; the replay fast paths read it with no
// synchronization at all, which is sound only if nothing ever writes it
// again. One post-publication store is a data race that corrupts a
// replayed stream (or one memoized IPC cell) without failing loudly.
//
// The rule: state of a frozen type may be written only during
// construction. Concretely, a write (or a call to a same-package function
// that transitively writes) is sanctioned when it is reachable from a
// local variable that originates in a constructor expression (&T{}, T{},
// new(T), var x T) and happens before that variable first escapes the
// function — into a return value, another object, an unsanctioned call, a
// closure or a goroutine. Builder helpers that mutate frozen state through
// a pointer receiver or parameter are allowed but must stay unexported,
// and each call to one is checked at the call site like a direct write.
// Writes inside a sync.Once Do body are the one sanctioned
// post-publication pattern (write-once lazy publication). Everything else
// — mutating a frozen value reached through another object, a global, or
// after an escape — is a finding.
//
// Value-typed frozen locals (a pipeline.Result under construction) are
// freely writable until their address escapes: copies do not alias, so
// only &x can publish them.
var Frozen = &Analyzer{
	Name: "frozen",
	Doc:  "types marked //bplint:frozen must not be written after they escape their constructor",
	Run:  runFrozen,
}

var frozenRe = regexp.MustCompile(`^//\s*bplint:frozen\b`)

// frozenOp is one potential violation inside a function: a direct write to
// frozen state (callee nil) or a call that mutates frozen state iff the
// callee turns out to be a mutator.
type frozenOp struct {
	pos    token.Pos
	root   types.Object // root identifier's object (local/param/global), nil if none
	owner  *types.Named // the frozen type being written
	callee types.Object // same-package callee for deferred classification
	once   bool         // inside a sync.Once Do body: sanctioned publication
}

func runFrozen(pass *Pass) {
	frozen := collectFrozenTypes(pass)
	if len(frozen) == 0 {
		return
	}
	decls := funcDecls(pass)
	flows := funcFlows(pass)

	ops := map[types.Object][]frozenOp{}
	for obj, fd := range decls {
		ops[obj] = collectFrozenOps(pass, fd, frozen, decls)
	}

	// Fixed point: a function is a mutator when it writes frozen state
	// rooted at its own (pointer) receiver or parameters, directly or by
	// calling another mutator with such a root flowing in.
	mutator := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fops := range ops {
			if mutator[obj] {
				continue
			}
			ff := flows[obj]
			if ff == nil {
				continue
			}
			for _, op := range fops {
				if op.once {
					continue
				}
				if v, ok := op.root.(*types.Var); ok && ff.params[v] && pointerTyped(v) {
					if op.callee == nil || mutator[op.callee] {
						mutator[obj] = true
						changed = true
						break
					}
				}
			}
		}
	}

	// A mutator reachable from outside the package lets other packages
	// write frozen state the constructor already published.
	for obj := range mutator {
		if obj.Exported() {
			pass.Reportf(obj.Pos(),
				"exported %s mutates frozen state through its receiver or parameters; frozen builders must stay unexported",
				obj.Name())
		}
	}

	for obj, fops := range ops {
		ff := flows[obj]
		if ff == nil {
			continue
		}
		for _, op := range fops {
			if op.once {
				continue // write-once publication under sync.Once
			}
			if op.callee != nil && !mutator[op.callee] {
				continue // the callee never mutates frozen state
			}
			what := "frozen state"
			if op.owner != nil {
				what = "frozen " + op.owner.Obj().Name()
			}
			v, isVar := op.root.(*types.Var)
			if !isVar {
				pass.Reportf(op.pos, "%s is written outside any construction context", what)
				continue
			}
			switch {
			case ff.params[v] && pointerTyped(v):
				// Receiver/parameter-rooted: charged to this function's
				// callers via the mutator fixed point.
			case ff.params[v]:
				// A value receiver or parameter is a copy; writing it
				// cannot reach the published value.
			default:
				lf := ff.locals[v]
				if lf == nil {
					pass.Reportf(op.pos, "%s is written through %s, which this function does not construct", what, v.Name())
					continue
				}
				if pointerTyped(v) && lf.ctor == token.NoPos {
					pass.Reportf(op.pos,
						"%s is written through %s, which holds an already-published value, not a fresh construction",
						what, v.Name())
					continue
				}
				esc := lf.firstEscape(frozenSanction(pass, v))
				if esc != token.NoPos && esc <= op.pos {
					pass.Reportf(op.pos,
						"%s is written after %s escapes its constructor (escape at line %d)",
						what, v.Name(), pass.Fset.Position(esc).Line)
				}
			}
		}
	}
}

// frozenSanction returns the escape filter for a constructor-local: calls
// to builtins and to same-package functions (builder helpers and pure
// readers alike — a leak through one is still caught at the leaked write
// site) do not end the construction phase. A return escape is excused too:
// escape ordering is lexical, and a return statement that precedes a write
// in source (an early return inside the build loop) still terminates
// execution, so no same-function write can follow it at runtime. For
// value-typed locals only taking the address or a closure capture
// publishes the value — copies do not alias — so value-copy escapes
// (store, call) are excused as well.
func frozenSanction(pass *Pass, v *types.Var) func(varUse) bool {
	valueTyped := !pointerTyped(v)
	return func(u varUse) bool {
		if u.esc == escReturn {
			return true
		}
		if valueTyped && u.esc != escAddr && u.esc != escGo {
			return true
		}
		if u.esc != escCall {
			return false
		}
		if _, builtin := u.callee.(*types.Builtin); builtin {
			return true
		}
		if fn, ok := u.callee.(*types.Func); ok && fn.Pkg() == pass.Pkg {
			return true
		}
		return false
	}
}

// pointerTyped reports whether v's static type is pointer-shaped for
// aliasing purposes (a pointer; maps/slices/chans of frozen types do not
// arise here).
func pointerTyped(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Pointer)
	return ok
}

// collectFrozenTypes parses //bplint:frozen off type declarations.
func collectFrozenTypes(pass *Pass) map[*types.Named]bool {
	frozen := map[*types.Named]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !hasFrozenDirective(gd, ts) {
					continue
				}
				tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				if named, ok := tn.Type().(*types.Named); ok {
					frozen[named] = true
				}
			}
		}
	}
	return frozen
}

func hasFrozenDirective(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, group := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if frozenRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// collectFrozenOps scans one function for writes to frozen state and for
// calls that may mutate it.
func collectFrozenOps(pass *Pass, fd *ast.FuncDecl, frozen map[*types.Named]bool, decls map[types.Object]*ast.FuncDecl) []frozenOp {
	if fd.Body == nil {
		return nil
	}
	var out []frozenOp

	rootOf := func(e ast.Expr) types.Object {
		id := rootIdent(ast.Unparen(e))
		if id == nil {
			return nil
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		return obj
	}

	// frozenOwner returns the frozen type whose state the lvalue chain
	// touches: a selector step whose field belongs to a frozen struct, or
	// a chain rooted at a value of frozen type.
	frozenOwner := func(e ast.Expr) *types.Named {
		for {
			e = ast.Unparen(e)
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
					if named := namedOf(sel.Recv()); named != nil && frozen[named] {
						return named
					}
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				if tv, ok := pass.Info.Types[x]; ok {
					if named := namedOf(tv.Type); named != nil && frozen[named] {
						return named
					}
				}
				return nil
			default:
				return nil
			}
		}
	}

	var stack []ast.Node
	stack = append(stack, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		defer func() { stack = append(stack, n) }()
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					continue // rebinding a variable is not a state write
				}
				if owner := frozenOwner(lhs); owner != nil {
					_, once := insideOnceDo(pass, stack)
					out = append(out, frozenOp{pos: lhs.Pos(), root: rootOf(lhs), owner: owner, once: once})
				}
			}
		case *ast.IncDecStmt:
			if _, bare := ast.Unparen(st.X).(*ast.Ident); !bare {
				if owner := frozenOwner(st.X); owner != nil {
					_, once := insideOnceDo(pass, stack)
					out = append(out, frozenOp{pos: st.Pos(), root: rootOf(st.X), owner: owner, once: once})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				// Plain call: frozen-rooted arguments flowing into a
				// same-package function defer to the fixed point.
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
					if fn, ok := pass.Info.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg && decls[fn] != nil {
						for _, a := range st.Args {
							if owner := frozenOwner(a); owner != nil {
								_, once := insideOnceDo(pass, stack)
								out = append(out, frozenOp{pos: st.Pos(), root: rootOf(a), owner: owner, callee: fn, once: once})
								break
							}
						}
					}
				}
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			owner := frozenOwner(sel.X)
			if owner == nil {
				return true
			}
			_, once := insideOnceDo(pass, stack)
			if fn.Pkg() == pass.Pkg && decls[fn] != nil {
				out = append(out, frozenOp{pos: st.Pos(), root: rootOf(sel.X), owner: owner, callee: fn, once: once})
			} else if crossMutators[fn.Name()] {
				out = append(out, frozenOp{pos: st.Pos(), root: rootOf(sel.X), owner: owner, once: once})
			}
		}
		return true
	})
	return out
}
