package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// SwitchEnum makes outcome- and meta-class dispatch total in the
// simulator's hot packages (trace, funcsim, pipeline). The fused sweeps
// dispatch on instruction kinds and sidecar class bits; a switch that
// silently falls through for an unhandled member is exactly how a new
// instruction kind or class code drifts past the timing model. Every
// switch over a recognized enum must either reference every member in
// its cases (an explicit default is then optional) or carry a default
// that panics — "impossible" must be spelled out, never implied.
//
// Enums are recognized two ways:
//
//   - a const block marked //bplint:enum <name> forms a named group; a
//     switch is over the group when any case expression references a
//     member (shifted/masked forms included), and must then reference
//     all of them — this covers the untyped class-bit codes of the
//     memory sidecar;
//   - a switch whose tag has a defined type with at least two constants
//     of that type in the defining package is over that type's constant
//     set (trace.Kind), wherever those constants are declared.
//
// Members named num*/Num* are counting sentinels, not values, and `_` is
// ignored. Tagless switches and type switches are out of scope.
var SwitchEnum = &Analyzer{
	Name: "switchenum",
	Doc:  "switches over outcome/meta-class enums in trace/funcsim/pipeline must be exhaustive or panic in default",
	Run:  runSwitchEnum,
}

var enumRe = regexp.MustCompile(`^//\s*bplint:enum\s+([A-Za-z_][A-Za-z0-9_-]*)\s*$`)

// switchEnumPackages gates the analyzer to the packages whose dispatch
// the twin architecture depends on.
var switchEnumPackages = map[string]bool{"trace": true, "funcsim": true, "pipeline": true}

func runSwitchEnum(pass *Pass) {
	last := pass.Path[strings.LastIndex(pass.Path, "/")+1:]
	if !switchEnumPackages[last] {
		return
	}
	groups := collectEnumGroups(pass)
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return
		}
		checkSwitchEnum(pass, sw, groups)
	})
}

// enumGroup is one //bplint:enum const block.
type enumGroup struct {
	name    string
	members []types.Object
}

func collectEnumGroups(pass *Pass) []*enumGroup {
	var out []*enumGroup
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Doc == nil {
				continue
			}
			var name string
			for _, c := range gd.Doc.List {
				if m := enumRe.FindStringSubmatch(c.Text); m != nil {
					name = m[1]
				}
			}
			if name == "" {
				continue
			}
			g := &enumGroup{name: name}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if sentinelName(id.Name) {
						continue
					}
					if obj := pass.Info.Defs[id]; obj != nil {
						g.members = append(g.members, obj)
					}
				}
			}
			if len(g.members) < 2 {
				pass.Reportf(gd.Pos(), "//bplint:enum %s needs at least two non-sentinel members to be a dispatchable set", name)
				continue
			}
			out = append(out, g)
		}
	}
	return out
}

func sentinelName(name string) bool {
	return name == "_" || strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num")
}

func checkSwitchEnum(pass *Pass, sw *ast.SwitchStmt, groups []*enumGroup) {
	// Collect the objects referenced by case expressions and the default
	// clause, if any.
	referenced := map[types.Object]bool{}
	var deflt *ast.CaseClause
	for _, cc := range sw.Body.List {
		cc := cc.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						referenced[obj] = true
					}
				}
				return true
			})
		}
	}

	name, members := switchEnumSet(pass, sw, groups, referenced)
	if members == nil {
		return
	}
	var missing []string
	for _, m := range members {
		if !referenced[m] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt == nil {
		pass.Reportf(sw.Pos(), "switch over %s does not handle %s and has no default — add the cases or a panicking default so new members cannot fall through silently",
			name, strings.Join(missing, ", "))
		return
	}
	if !clausePanics(deflt) {
		pass.Reportf(deflt.Pos(), "switch over %s does not handle %s; its default must panic so the unhandled members cannot be silently misclassified",
			name, strings.Join(missing, ", "))
	}
}

// switchEnumSet decides which enum, if any, the switch dispatches over.
// Directive groups take precedence (their members may be untyped bit
// codes); otherwise a defined tag type with >= 2 constants in its
// package is used.
func switchEnumSet(pass *Pass, sw *ast.SwitchStmt, groups []*enumGroup, referenced map[types.Object]bool) (string, []types.Object) {
	for _, g := range groups {
		for _, m := range g.members {
			if referenced[m] {
				return "//bplint:enum " + g.name, g.members
			}
		}
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return "", nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return "", nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return "", nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return "", nil
	}
	scope := tn.Pkg().Scope()
	var members []types.Object
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok || sentinelName(name) {
			continue
		}
		if types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	if len(members) < 2 {
		return "", nil
	}
	return tn.Name(), members
}

// clausePanics reports whether the clause body contains a panic call
// anywhere (a guard pattern like `if x { ... }; panic(...)` counts).
func clausePanics(cc *ast.CaseClause) bool {
	found := false
	for _, st := range cc.Body {
		ast.Inspect(st, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
