package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// EquivCover closes the loop between the static twin certification and
// the dynamic equivalence suites: every //bplint:twin group and every
// BatchStepper implementation (a method named StepBatch) must be
// exercised by an equivalence test in the package — a *_test.go test
// whose reference closure reaches both the scalar side and a fused side
// and contains a comparison sink (reflect.DeepEqual or an (in)equality
// over computed values). twinsync proves the fused path mirrors the
// scalar structure; equivcover proves somebody also runs the two and
// compares the bits, so a twin can neither ship untested nor lose its
// test to a refactor without the lint noticing.
//
// The test scan is deliberately name-level: test files are parsed without
// type-checking, names referenced from a test (transitively through
// test-file helpers and package-level test variables such as table-driven
// constructor lists) are matched against package functions and methods by
// name, and reachability then follows the package's typed call graph.
// Interface dispatch (predictor.BatchStepper) thus resolves to every
// same-named method — an approximation that errs toward finding coverage,
// which is the right direction for a gate that demands a human-written
// test rather than proving its assertions sharp.
var EquivCover = &Analyzer{
	Name: "equivcover",
	Doc:  "every //bplint:twin group and BatchStepper implementation needs an equivalence test reaching both sides with a comparison sink",
	Run:  runEquivCover,
}

func runEquivCover(pass *Pass) {
	decls := funcDecls(pass)
	nop := func(token.Pos, string, ...any) {}
	groups := collectTwinGroups(pass, decls, nop)
	steppers := stepBatchImpls(pass, decls)
	if len(groups) == 0 && len(steppers) == 0 {
		return
	}
	tests := loadEquivTests(pass)

	// Typed reachability from each test's name closure, cached per test.
	type testReach struct {
		names map[string]bool
		reach map[*ast.FuncDecl]bool
	}
	var reaches []testReach
	for _, t := range tests {
		if !t.sink {
			continue
		}
		reaches = append(reaches, testReach{names: t.names, reach: reachDecls(pass, decls, t.names)})
	}

	targets := make([]string, 0, len(groups))
	for t := range groups {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, name := range targets {
		g := groups[name]
		covered := false
		for _, tr := range reaches {
			if !tr.reach[g.scalarDecl] {
				continue
			}
			for _, fd := range g.fused {
				if tr.reach[fd] {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			pass.Reportf(g.pos, "twin group %s has no equivalence test: no test with a comparison sink reaches both %s and a fused twin — drift here would ship silently", g.target, g.target)
		}
	}

	for _, st := range steppers {
		covered := false
		for _, tr := range reaches {
			if !tr.reach[st.decl] {
				continue
			}
			if tr.names[st.recv] || reachesConstructor(pass, tr.reach, st.recvType) {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(st.decl.Name.Pos(), "BatchStepper implementation %s.StepBatch has no equivalence test: no test with a comparison sink constructs a %s and reaches StepBatch — its batch path could diverge from Predict/Update unnoticed", st.recv, st.recv)
		}
	}
}

// stepperImpl is one StepBatch method in the package.
type stepperImpl struct {
	recv     string
	recvType types.Type
	decl     *ast.FuncDecl
}

func stepBatchImpls(pass *Pass, decls map[types.Object]*ast.FuncDecl) []stepperImpl {
	var out []stepperImpl
	for obj, fd := range decls {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Name() != "StepBatch" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		name := recvTypeName(rt)
		if name == "" {
			continue
		}
		out = append(out, stepperImpl{recv: name, recvType: rt, decl: fd})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].recv < out[j].recv })
	return out
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// reachesConstructor reports whether the reachable set contains a
// function returning the receiver type (by value or pointer).
func reachesConstructor(pass *Pass, reach map[*ast.FuncDecl]bool, recv types.Type) bool {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	for fd := range reach {
		obj := pass.Info.Defs[fd.Name]
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() != nil {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			rt := sig.Results().At(i).Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if types.Identical(rt, recv) {
				return true
			}
		}
	}
	return false
}

// equivTest is one Test function of the package's _test.go files with its
// transitive name closure.
type equivTest struct {
	name  string
	names map[string]bool
	sink  bool
}

// loadEquivTests parses the package directory's _test.go files without
// type-checking and computes, per Test function, the closure of
// referenced names through test-file helpers and package-level test
// variable initializers, plus whether a comparison sink occurs inside
// the closure.
func loadEquivTests(pass *Pass) []equivTest {
	if pass.Dir == "" {
		return nil
	}
	entries, err := os.ReadDir(pass.Dir)
	if err != nil {
		return nil
	}
	fset := token.NewFileSet()
	funcs := map[string]*ast.FuncDecl{}
	vars := map[string]ast.Expr{}
	var testNames []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pass.Dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					funcs[d.Name.Name] = d
					if strings.HasPrefix(d.Name.Name, "Test") {
						testNames = append(testNames, d.Name.Name)
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								vars[name.Name] = vs.Values[i]
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(testNames)
	var out []equivTest
	for _, tn := range testNames {
		t := equivTest{name: tn, names: map[string]bool{}}
		seen := map[ast.Node]bool{}
		var expand func(n ast.Node)
		expand = func(n ast.Node) {
			if n == nil || seen[n] {
				return
			}
			seen[n] = true
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.Ident:
					if t.names[x.Name] {
						return true
					}
					t.names[x.Name] = true
					if fd := funcs[x.Name]; fd != nil && fd.Body != nil {
						expand(fd.Body)
					}
					if v := vars[x.Name]; v != nil {
						expand(v)
					}
				case *ast.BinaryExpr:
					if x.Op == token.EQL || x.Op == token.NEQ {
						if comparesValues(x) {
							t.sink = true
						}
					}
				case *ast.CallExpr:
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "DeepEqual" {
						t.sink = true
					}
				}
				return true
			})
		}
		expand(funcs[tn].Body)
		out = append(out, t)
	}
	return out
}

// comparesValues filters ==/!= sinks down to comparisons of two computed
// operands: nil checks and literal comparisons (loop bounds, sentinel
// tests) are control flow, not equivalence assertions.
func comparesValues(b *ast.BinaryExpr) bool {
	value := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			return false
		case *ast.Ident:
			return e.Name != "nil" && e.Name != "true" && e.Name != "false"
		}
		return true
	}
	return value(b.X) && value(b.Y)
}

// reachDecls maps a name closure onto package declarations and expands it
// through the package's typed call graph.
func reachDecls(pass *Pass, decls map[types.Object]*ast.FuncDecl, names map[string]bool) map[*ast.FuncDecl]bool {
	reach := map[*ast.FuncDecl]bool{}
	var queue []*ast.FuncDecl
	for obj, fd := range decls {
		if names[obj.Name()] && !reach[fd] {
			reach[fd] = true
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if next := decls[obj]; next != nil && !reach[next] {
				reach[next] = true
				queue = append(queue, next)
			}
			return true
		})
	}
	return reach
}
