package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism forbids nondeterminism sources in simulation packages
// (internal/...): importing math/rand (whose stream changed across Go
// releases — the repo owns internal/rng instead), reading wall clocks with
// time.Now/time.Since, and consulting the environment with
// os.Getenv/os.LookupEnv/os.Environ. Simulation results must be a pure
// function of the configuration and the seed; the same holds for trace
// recordings (internal/trace, internal/tracestore), which are memoized by
// (profile, seed, budget) and replayed in place of live generation — any
// hidden input there would silently change every experiment built on them.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, time.Now/Since and os.Getenv in simulation packages",
	Run:  runDeterminism,
}

var bannedImports = map[string]string{
	"math/rand":    "use internal/rng: math/rand's stream is not stable across Go releases",
	"math/rand/v2": "use internal/rng: simulator streams must be pinned by this repo",
}

var bannedCalls = map[string]string{
	"time.Now":     "wall-clock reads make runs irreproducible",
	"time.Since":   "wall-clock reads make runs irreproducible",
	"os.Getenv":    "environment reads make results depend on the host",
	"os.LookupEnv": "environment reads make results depend on the host",
	"os.Environ":   "environment reads make results depend on the host",
}

func runDeterminism(pass *Pass) {
	if !pass.InSimulation() {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in simulation package: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if why, ok := bannedCalls[fn.FullName()]; ok {
				pass.Reportf(sel.Pos(), "call to %s in simulation package: %s", fn.FullName(), why)
			}
			return true
		})
	}
}
