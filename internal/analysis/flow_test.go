package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseExpr parses one expression for the rootIdent table.
func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return e
}

func TestRootIdent(t *testing.T) {
	cases := []struct {
		expr string
		want string // "" = nil: the chain is not rooted in an identifier
	}{
		{"x", "x"},
		{"x.f", "x"},
		{"x.f.g", "x"},
		{"x[i]", "x"},
		{"x.f[i].g", "x"},
		{"(x)", "x"},
		{"(*x).f", "x"},
		{"*x", "x"},
		{"f()", ""},
		{"f().g", ""},
		{"[]int{1}", ""},
		{"m[k].f", "m"},
		{"&x", ""}, // unary & is not part of an access chain
	}
	for _, tc := range cases {
		t.Run(tc.expr, func(t *testing.T) {
			id := rootIdent(parseExpr(t, tc.expr))
			switch {
			case tc.want == "" && id != nil:
				t.Fatalf("rootIdent(%s) = %s, want nil", tc.expr, id.Name)
			case tc.want != "" && id == nil:
				t.Fatalf("rootIdent(%s) = nil, want %s", tc.expr, tc.want)
			case tc.want != "" && id.Name != tc.want:
				t.Fatalf("rootIdent(%s) = %s, want %s", tc.expr, id.Name, tc.want)
			}
		})
	}
}

// flowProbe walks a single-function file and captures, at each marked call
// site probe(n), the enclosing function and container chain exactly as the
// analyzers see them during inspectStack.
func flowProbe(t *testing.T, src string) (fns map[int]ast.Node, chains map[int][]ast.Node) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "probe.go", src, 0)
	if err != nil {
		t.Fatalf("parsing probe source: %v", err)
	}
	fns, chains = map[int]ast.Node{}, map[int][]ast.Node{}
	inspectStack([]*ast.File{file}, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "probe" || len(call.Args) != 1 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return
		}
		k := 0
		for _, c := range lit.Value {
			k = k*10 + int(c-'0')
		}
		fn := enclosingFunc(stack)
		fns[k] = fn
		chains[k] = containerChain(stack, fn)
	})
	return fns, chains
}

const flowProbeSrc = `package p

func probe(int) {}

func f(cond bool, xs []int) {
	probe(0)
	if cond {
		probe(1)
		for range xs {
			probe(2)
		}
	} else {
		probe(3)
	}
	switch {
	case cond:
		probe(4)
	}
	g := func() {
		probe(5)
	}
	g()
	probe(6)
}
`

func TestContainerChain(t *testing.T) {
	fns, chains := flowProbe(t, flowProbeSrc)

	// Chain depth: function body = 1 container, each nested block adds one.
	wantLen := map[int]int{
		0: 1, // function body
		1: 2, // body + if block
		2: 3, // body + if block + for block
		3: 2, // body + else block
		4: 3, // body + the switch's block + case clause
		5: 1, // the closure's own body only — its chain restarts at the FuncLit
		6: 1,
	}
	for k, want := range wantLen {
		if got := len(chains[k]); got != want {
			t.Errorf("probe(%d): chain length = %d, want %d", k, got, want)
		}
	}

	// The closure is its own scope; everything else shares f.
	if fns[5] == fns[0] {
		t.Errorf("probe(5) inside the closure reports the same scope as probe(0)")
	}
	for _, k := range []int{1, 2, 3, 4, 6} {
		if fns[k] != fns[0] {
			t.Errorf("probe(%d) does not share f's scope", k)
		}
	}
}

func TestChainCovers(t *testing.T) {
	_, chains := flowProbe(t, flowProbeSrc)

	cases := []struct {
		name         string
		outer, inner int
		want         bool
	}{
		// A lock at the function top (probe 0) dominates everything in f.
		{"top-dominates-if", 1, 0, true},
		{"top-dominates-nested-for", 2, 0, true},
		{"top-dominates-else", 3, 0, true},
		{"top-dominates-case", 4, 0, true},
		// A lock inside the if block proves nothing for the else branch or
		// for code after the if.
		{"if-not-else", 3, 1, false},
		{"if-not-after", 6, 1, false},
		// Deeper chains cover shallower prefixes, not vice versa.
		{"for-covers-if", 2, 1, true},
		{"if-not-for", 1, 2, false},
		// Identical context covers itself.
		{"self", 2, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := chainCovers(chains[tc.outer], chains[tc.inner]); got != tc.want {
				t.Errorf("chainCovers(chain[%d], chain[%d]) = %v, want %v",
					tc.outer, tc.inner, got, tc.want)
			}
		})
	}
}
