package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoaderFindsModule(t *testing.T) {
	// Starting from a subdirectory must climb to the repo's go.mod.
	l, err := NewLoader("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "branchsim" {
		t.Fatalf("module = %q, want branchsim", l.Module)
	}
	if _, err := os.Stat(filepath.Join(l.Root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod: %v", l.Root, err)
	}
}

func TestPackageDirsSkipsTestdata(t *testing.T) {
	l := fixtureLoader(t)
	dirs, err := PackageDirs(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no package dirs found")
	}
	sep := string(filepath.Separator)
	for _, d := range dirs {
		if strings.Contains(d, sep+"testdata"+sep) || strings.HasSuffix(d, sep+"testdata") {
			t.Errorf("PackageDirs returned a testdata dir: %s", d)
		}
	}
	var found bool
	for _, d := range dirs {
		if strings.HasSuffix(d, filepath.Join("internal", "predictor")) {
			found = true
		}
	}
	if !found {
		t.Error("PackageDirs missed internal/predictor")
	}
}

// TestSelfHost runs the full suite over the repository itself: the
// simulator must be clean under its own invariants. This is the same gate
// scripts/check.sh enforces via cmd/bplint.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("self-host pass type-checks the whole module; skipped in -short")
	}
	l := fixtureLoader(t)
	dirs, err := PackageDirs(l.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, f := range Run(pkg, l.Module, All()) {
			t.Errorf("self-host finding: %s", f)
		}
	}
}
