package core

import (
	"fmt"

	"branchsim/internal/predictor"
	"branchsim/internal/stats"
)

// Overriding composes a quick single-cycle predictor with a slow, accurate
// one, the delay-hiding organization of the Alpha EV6/EV7/EV8 front ends
// (§2.6.1). The quick predictor steers fetch immediately; when the slow
// predictor's answer arrives Latency cycles later and disagrees, the
// speculatively fetched instructions are squashed and fetch restarts down
// the slow predictor's path, costing a bubble of Latency-1 cycles (the
// paper's optimistic accounting: no extra squash or refetch time, §4.1.2).
//
// Functionally the organization predicts whatever the slow predictor says —
// that is the direction fetch ultimately follows — so Predict returns the
// slow prediction while recording whether an override occurred. Timing
// drivers read the override out of the per-branch Outcome.
type Overriding struct {
	quick predictor.Predictor
	slow  predictor.Predictor
	// Latency is the slow predictor's access delay in cycles. A latency
	// of 1 makes the organization ideal: the slow predictor answers
	// immediately and the quick predictor is irrelevant.
	latency int

	overrides stats.Rate
	lastQuick bool
	lastSlow  bool
	name      string
}

// NewOverriding returns an overriding organization. latency is the slow
// predictor's access delay in cycles and must be at least 1.
func NewOverriding(quick, slow predictor.Predictor, latency int) *Overriding {
	if latency < 1 {
		panic(fmt.Sprintf("core: overriding latency %d must be >= 1", latency))
	}
	return &Overriding{
		quick:   quick,
		slow:    slow,
		latency: latency,
		name:    fmt.Sprintf("override(%s->%s,lat=%d)", quick.Name(), slow.Name(), latency),
	}
}

// Predict implements predictor.Predictor. It consults both predictors,
// records whether the slow one overrode the quick one, and returns the slow
// prediction (the direction fetch ends up following).
func (o *Overriding) Predict(pc uint64) bool {
	o.lastQuick = o.quick.Predict(pc)
	o.lastSlow = o.slow.Predict(pc)
	o.overrides.Add(o.lastQuick != o.lastSlow && o.latency > 1)
	return o.lastSlow
}

// LastOverrode reports whether the most recent Predict resulted in an
// override (quick and slow disagreed with a multi-cycle slow predictor), and
// the bubble cost in cycles if so. Timing drivers call it once per
// prediction.
func (o *Overriding) LastOverrode() (overrode bool, bubbleCycles int) {
	if o.lastQuick != o.lastSlow && o.latency > 1 {
		return true, o.latency - 1
	}
	return false, 0
}

// Update implements predictor.Predictor, training both component predictors.
func (o *Overriding) Update(pc uint64, taken bool) {
	o.quick.Update(pc, taken)
	o.slow.Update(pc, taken)
}

// SizeBytes implements predictor.Predictor. Only the slow predictor counts
// against the paper's hardware budgets; the 2K-entry quick predictor is
// accounted separately, as the paper's budget axis refers to the complex
// predictor. QuickSizeBytes exposes the rest.
func (o *Overriding) SizeBytes() int { return o.slow.SizeBytes() }

// QuickSizeBytes returns the quick predictor's state size.
func (o *Overriding) QuickSizeBytes() int { return o.quick.SizeBytes() }

// Name implements predictor.Predictor.
func (o *Overriding) Name() string { return o.name }

// Latency returns the slow predictor's access delay in cycles.
func (o *Overriding) Latency() int { return o.latency }

// OverrideRate returns the fraction of predictions on which the slow
// predictor overrode the quick one — the quantity §4.5 blames for the
// realistic-IPC collapse (7.38% average for the perceptron predictor; 18.1%
// on 300.twolf for the multi-component predictor).
func (o *Overriding) OverrideRate() float64 { return o.overrides.Value() }

// OverrideCount returns the raw override and prediction counts.
func (o *Overriding) OverrideCount() (overrides, predictions int64) {
	return o.overrides.Events, o.overrides.Total
}

// Quick returns the quick component.
func (o *Overriding) Quick() predictor.Predictor { return o.quick }

// Slow returns the slow component.
func (o *Overriding) Slow() predictor.Predictor { return o.slow }

// OnCycle forwards the fetch clock to cycle-aware components.
func (o *Overriding) OnCycle(cycle uint64) {
	if c, ok := o.quick.(predictor.CycleAware); ok {
		c.OnCycle(cycle)
	}
	if c, ok := o.slow.(predictor.CycleAware); ok {
		c.OnCycle(cycle)
	}
}
