package core

import (
	"branchsim/internal/history"
)

// FastPipe is the reusable core of the gshare.fast organization (§3),
// packaged so that other global-history predictors can be reorganized the
// same way — the direction the paper's conclusion points to ("we are
// currently studying ways to reorganize other predictors to take advantage
// of the same ideas", §5). It owns the speculative global history, the
// fetch clock, the per-cycle history snapshots, and the split-index
// computation: fresh low bits (PC XOR newest history, selected within the
// prefetched buffer in a single cycle) and row bits from slightly older
// history that never depend on the branch address.
//
// A predictor built on FastPipe has an effective prediction latency of one
// cycle regardless of its table size; its tables must be indexable by
// Index(pc) — i.e. by global history plus low PC bits only.
type FastPipe struct {
	ghr     *history.Global
	idxBits uint
	bufBits uint
	latency int

	cycle         uint64
	externalClock bool
	pushes        uint64
	snaps         []histSnap
}

// NewFastPipe returns the pipelined index machinery for a table of
// 2^idxBits entries read in latency cycles. bufBits of 0 selects the
// default split (see DefaultBufferBits and the sqrt scaling of New).
func NewFastPipe(idxBits uint, latency int, bufBits uint) *FastPipe {
	if idxBits == 0 || idxBits > 32 {
		panic("core: FastPipe index bits out of range")
	}
	if latency < 1 {
		panic("core: FastPipe latency must be >= 1")
	}
	histBits := idxBits
	if histBits > history.MaxGlobalBits {
		histBits = history.MaxGlobalBits
	}
	if bufBits == 0 {
		bufBits = (idxBits + 1) / 2
		if bufBits < DefaultBufferBits {
			bufBits = DefaultBufferBits
		}
	}
	if bufBits > idxBits {
		bufBits = idxBits
	}
	return &FastPipe{
		ghr:     history.NewGlobal(histBits),
		idxBits: idxBits,
		bufBits: bufBits,
		latency: latency,
		snaps:   []histSnap{{}},
	}
}

// OnCycle advances the fetch clock (see predictor.CycleAware).
func (f *FastPipe) OnCycle(cycle uint64) {
	f.externalClock = true
	if cycle > f.cycle {
		f.cycle = cycle
	}
}

// histAt returns history and cumulative pushes as of the end of cycle c.
func (f *FastPipe) histAt(c uint64) (hist, pushes uint64) {
	for i := len(f.snaps) - 1; i >= 0; i-- {
		if f.snaps[i].cycle <= c {
			return f.snaps[i].hist, f.snaps[i].pushes
		}
	}
	return f.snaps[0].hist, f.snaps[0].pushes
}

// Index computes the effective table index for a branch predicted this
// cycle, with the same semantics as gshare.fast's index (fresh low bits,
// near-aligned row bits, stale-row fallback under fetch bursts).
func (f *FastPipe) Index(pc uint64) int {
	lowMask := uint64(1)<<f.bufBits - 1
	cur := f.ghr.Value()
	low := ((pc >> 2) ^ cur) & lowMask
	if f.idxBits == f.bufBits {
		return int(low)
	}
	var rowCycle uint64
	if f.cycle > uint64(f.latency) {
		rowCycle = f.cycle - uint64(f.latency)
	}
	rowMask := uint64(1)<<(f.idxBits-f.bufBits) - 1
	oldHist, oldPushes := f.histAt(rowCycle)
	var row uint64
	if f.pushes-oldPushes <= uint64(f.bufBits) {
		row = (cur >> rowShift) & rowMask
	} else {
		row = oldHist & rowMask
	}
	return int(row<<f.bufBits | low)
}

// Push records a resolved (speculatively predicted) outcome into the
// history and advances the internal clock when no external clock drives it.
func (f *FastPipe) Push(taken bool) {
	f.ghr.Push(taken)
	f.pushes++
	h := f.ghr.Value()
	if n := len(f.snaps); n > 0 && f.snaps[n-1].cycle == f.cycle {
		f.snaps[n-1].hist = h
		f.snaps[n-1].pushes = f.pushes
	} else {
		f.snaps = append(f.snaps, histSnap{cycle: f.cycle, pushes: f.pushes, hist: h})
		if len(f.snaps) > f.latency+2 {
			cut := uint64(0)
			if f.cycle > uint64(f.latency) {
				cut = f.cycle - uint64(f.latency)
			}
			keepFrom := 0
			for i := len(f.snaps) - 1; i >= 0; i-- {
				if f.snaps[i].cycle <= cut {
					keepFrom = i
					break
				}
			}
			if keepFrom > 0 {
				f.snaps = append(f.snaps[:0], f.snaps[keepFrom:]...)
			}
		}
	}
	if !f.externalClock {
		f.cycle++
	}
}

// History returns the current speculative global history value.
func (f *FastPipe) History() uint64 { return f.ghr.Value() }

// HistorySizeBytes returns the history register's state size.
func (f *FastPipe) HistorySizeBytes() int { return f.ghr.SizeBytes() }

// BufferBits returns the late-selected index width.
func (f *FastPipe) BufferBits() uint { return f.bufBits }

// Latency returns the hidden table read latency.
func (f *FastPipe) Latency() int { return f.latency }

// BufferStateBytes returns the buffer plus per-stage checkpoint state the
// organization adds (§3.2 keeps one buffer copy per pipeline stage).
func (f *FastPipe) BufferStateBytes() int {
	bufferBytes := (1 << f.bufBits) * 2 / 8
	return bufferBytes * (1 + f.latency + 1)
}
