package core
