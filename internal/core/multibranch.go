package core

import "fmt"

// Multiple-branch prediction (§3.3.1). Wide front ends must predict several
// branches per fetch block in one cycle. gshare.fast extends naturally:
// consecutive branches' candidate counters already sit near one another in
// the prefetched PHT buffer, so enlarging the buffer lets one access serve b
// predictions. All predictions within a block necessarily use the
// speculative history as of the start of the block — they cannot see each
// other's outcomes — which is the same stale-history compromise the EV8
// predictor makes across fetch blocks, reported to cost little accuracy.

// PredictBlock predicts up to len(pcs) branches fetched in the same cycle.
// The PHT row is shared (prefetched with the block-start history), and each
// prediction is chained into the speculative history used to select the
// next one within the block — the same New History Bit forwarding the
// predictor pipeline performs across stages, applied within a block. The
// residual accuracy cost of block prediction is therefore only the stale
// row address plus any wrong within-block predictions polluting the chain.
// Call UpdateBlock with the outcomes before the next block.
func (g *GShareFast) PredictBlock(pcs []uint64) []bool {
	preds := make([]bool, len(pcs))
	snap := g.ghr.Snapshot()
	for i, pc := range pcs {
		preds[i] = g.pht.Taken(g.index(pc))
		g.ghr.Push(preds[i])
	}
	g.ghr.Restore(snap)
	g.lastBlockPreds = append(g.lastBlockPreds[:0], preds...)
	return preds
}

// UpdateBlock resolves a block issued by PredictBlock: counters train at the
// indices the predictions used (recomputed by replaying the predicted
// within-block history), then the block's true outcomes enter the history
// register and the fetch clock advances one cycle.
func (g *GShareFast) UpdateBlock(pcs []uint64, takens []bool) {
	if len(pcs) != len(takens) {
		panic("core: UpdateBlock length mismatch")
	}
	preds := g.lastBlockPreds
	if len(preds) != len(pcs) {
		// UpdateBlock without a matching PredictBlock (tests, warm
		// drivers): train along the true-outcome path.
		preds = takens
	}
	snap := g.ghr.Snapshot()
	for i, pc := range pcs {
		idx := g.index(pc)
		g.ghr.Push(preds[i])
		if g.updateLag == 0 {
			g.pht.Update(idx, takens[i])
		} else {
			g.pending = append(g.pending, pendingUpdate{index: idx, taken: takens[i]})
		}
	}
	g.ghr.Restore(snap)
	g.lastBlockPreds = g.lastBlockPreds[:0]
	for g.updateLag > 0 && len(g.pending) > g.updateLag {
		u := g.pending[0]
		g.pending = g.pending[1:]
		g.pht.Update(u.index, u.taken)
	}
	for _, t := range takens {
		g.ghr.Push(t)
		g.pushes++
	}
	g.recordHistory()
	if !g.externalClock {
		g.cycle++
	}
}

// BlockBufferEntries returns the PHT buffer size required to predict up to
// blockWidth branches per cycle with this predictor's latency: b·2^L entries
// (§3.3.1's example: 8 branches per cycle at latency 3 needs 64 entries).
func (g *GShareFast) BlockBufferEntries(blockWidth int) int {
	if blockWidth < 1 {
		panic(fmt.Sprintf("core: block width %d must be >= 1", blockWidth))
	}
	need := blockWidth << uint(g.latency)
	if min := 1 << g.bufBits; need < min {
		return min
	}
	return need
}

// BlockSizeBytes returns the predictor's state size when configured for
// blockWidth predictions per cycle: the base predictor plus the enlarged
// buffer and its per-stage checkpoint copies, plus the widened Branch
// Present and New History latches (blockWidth bits per pipeline stage each).
func (g *GShareFast) BlockSizeBytes(blockWidth int) int {
	bufferBytes := g.BlockBufferEntries(blockWidth) * 2 / 8
	checkpoints := g.latency + 1
	latchBits := 2 * blockWidth * (g.latency + 1)
	return g.pht.SizeBytes() + g.ghr.SizeBytes() +
		bufferBytes*(1+checkpoints) + (latchBits+7)/8
}
