// Package core implements the paper's primary contribution: gshare.fast, a
// large gshare predictor pipelined so that every prediction completes in a
// single cycle regardless of PHT size (§3), plus the overriding organization
// (§2.6.1) that complex predictors need to approximate the same property —
// and whose disagreement penalty is the paper's central villain.
package core

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// rowShift is the history offset of the prefetched row window (see index):
// row bits come from positions [rowShift, rowShift+rowBits) of the current
// speculative history.
const rowShift = 2

// DefaultBufferBits is the default width of the late-selected portion of the
// PHT index: the lower bits of the branch address are XORed with the newest
// global history bits to pick an entry out of the prefetched PHT buffer in
// the final predictor pipeline stage (paper §3.1: "the lower nine bits of
// its address are exclusive-ored with the low bits of the global history
// register ... forms an index into the PHT buffer").
const DefaultBufferBits = 9

// GShareFast is the pipelined gshare predictor of §3. The PHT index is split
// in two:
//
//   - The upper index bits come from the speculative global history as it
//     stood when the multi-cycle PHT access began, Latency cycles before the
//     prediction is needed. They select a contiguous line of candidate
//     counters (the PHT buffer) without ever touching the branch address, so
//     the access can start long before the branch is fetched.
//   - The lower BufferBits bits are computed in the single final stage:
//     low branch-PC bits XORed with the newest speculative history bits,
//     including the New History bits generated while the access was in
//     flight (tracked in hardware by the Branch Present / New History latches
//     of Figure 4, and here by per-cycle history snapshots).
//
// Because the final stage is one mux plus one XOR, the predictor delivers an
// up-to-date prediction every cycle with no overriding and no interaction
// with the rest of the pipeline beyond prediction and recovery (§3.3.4).
type GShareFast struct {
	pht     *counter.Array2
	ghr     *history.Global
	idxBits uint
	bufBits uint
	latency int

	// Fetch-cycle model. snaps records the history value and cumulative
	// push count at the end of each cycle in which history changed. The
	// row address for a prediction at cycle c is content-aligned current
	// history (the New History Bit / Branch Present latches keep the
	// prefetched row aligned with bits arriving during the access) as
	// long as no more than bufBits branches were predicted during the
	// access; in heavier bursts the aligned row was not prefetchable and
	// the model falls back to the history as of cycle c-latency.
	cycle         uint64
	externalClock bool
	pushes        uint64
	// snaps models the per-stage history latches; their SRAM cost is the
	// per-stage buffer checkpoints charged analytically in SizeBytes.
	snaps []histSnap //bplint:allow sizebytes simulation bookkeeping, hardware cost charged as buffer checkpoints

	// Delayed non-speculative PHT update (§3.2): counters train up to
	// UpdateLag branches after prediction, modelling the multi-cycle
	// write path into a large PHT.
	updateLag int
	pending   []pendingUpdate //bplint:allow sizebytes models the in-flight write queue of the PHT port, not a prediction table

	// lastBlockPreds carries PredictBlock's chained predictions to
	// UpdateBlock so training replays the same within-block history.
	lastBlockPreds []bool //bplint:allow sizebytes driver-protocol scratch, not predictor state

	name string
}

type histSnap struct {
	cycle  uint64
	pushes uint64 // cumulative history pushes through this cycle
	hist   uint64
}

type pendingUpdate struct {
	index int
	taken bool
}

// Config sizes a gshare.fast predictor.
type Config struct {
	// Entries is the PHT size in 2-bit counters (a power of two).
	Entries int
	// Latency is the PHT read latency in cycles; the predictor pipeline
	// has Latency+1 stages (Figure 4 shows Latency=3, four stages). Must
	// be at least 1.
	Latency int
	// UpdateLag delays each PHT counter update by this many branches
	// (0 = immediate). §3.2 reports that a lag of 64 branches costs about
	// 0.04 percentage points of accuracy at a 256 KB budget.
	UpdateLag int
	// BufferBits overrides the PHT-buffer index width (0 selects
	// DefaultBufferBits). The buffer holds 2^BufferBits counters;
	// narrower buffers prefetch less but leave fewer index bits to the
	// fresh history, wider ones the reverse — the ablation benchmarks
	// sweep this.
	BufferBits uint
}

// New returns a gshare.fast predictor. History length is the maximum the
// table supports, log2(Entries), as in §4.1.4.
func New(cfg Config) *GShareFast {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic(fmt.Sprintf("core: gshare.fast entries %d not a power of two", cfg.Entries))
	}
	if cfg.Latency < 1 {
		panic(fmt.Sprintf("core: gshare.fast latency %d must be >= 1", cfg.Latency))
	}
	if cfg.UpdateLag < 0 {
		panic(fmt.Sprintf("core: gshare.fast update lag %d must be >= 0", cfg.UpdateLag))
	}
	idxBits := uint(0)
	for n := cfg.Entries; n > 1; n >>= 1 {
		idxBits++
	}
	histBits := idxBits
	if histBits > history.MaxGlobalBits {
		histBits = history.MaxGlobalBits
	}
	bufBits := cfg.BufferBits
	if bufBits == 0 {
		// The prefetched line grows with the array: an SRAM's natural
		// row width scales with the square root of its capacity, so
		// larger PHTs hand the final stage more late-selected (fresh)
		// index bits. The paper's 9-bit buffer index corresponds to
		// the ~256K-entry design point of Figure 4.
		bufBits = (idxBits + 1) / 2
		if bufBits < DefaultBufferBits {
			bufBits = DefaultBufferBits
		}
	}
	if bufBits > idxBits {
		bufBits = idxBits
	}
	g := &GShareFast{
		pht:       counter.NewArray2(cfg.Entries, counter.WeaklyNotTaken),
		ghr:       history.NewGlobal(histBits),
		idxBits:   idxBits,
		bufBits:   bufBits,
		latency:   cfg.Latency,
		updateLag: cfg.UpdateLag,
		snaps:     []histSnap{{}},
	}
	g.name = fmt.Sprintf("gshare.fast-%s", budgetName(g.SizeBytes()))
	return g
}

// NewFromBudget returns the largest gshare.fast fitting budgetBytes, with
// the given PHT read latency.
func NewFromBudget(budgetBytes int, latency int) *GShareFast {
	entries := 4
	for entries*2*2/8 <= budgetBytes {
		entries *= 2
	}
	return New(Config{Entries: entries, Latency: latency})
}

// OnCycle implements predictor.CycleAware: it advances the predictor's fetch
// clock. Drivers call it with a non-decreasing cycle number; predictions
// issued before any OnCycle call see a conservative one-branch-per-cycle
// clock advanced by Update.
func (g *GShareFast) OnCycle(cycle uint64) {
	g.externalClock = true
	if cycle > g.cycle {
		g.cycle = cycle
	}
}

// histAt returns the speculative global history and cumulative push count
// as of the end of cycle c, i.e. what the hardware had latched when an
// access launched in cycle c+1.
func (g *GShareFast) histAt(c uint64) (hist, pushes uint64) {
	// Scan newest-to-oldest; the snapshot list is short (pruned below).
	for i := len(g.snaps) - 1; i >= 0; i-- {
		if g.snaps[i].cycle <= c {
			return g.snaps[i].hist, g.snaps[i].pushes
		}
	}
	return g.snaps[0].hist, g.snaps[0].pushes
}

// recordHistory notes that the history register changed during the current
// cycle and prunes snapshots too old to ever be a row address again.
func (g *GShareFast) recordHistory() {
	h := g.ghr.Value()
	if n := len(g.snaps); n > 0 && g.snaps[n-1].cycle == g.cycle {
		g.snaps[n-1].hist = h
		g.snaps[n-1].pushes = g.pushes
		return
	}
	g.snaps = append(g.snaps, histSnap{cycle: g.cycle, pushes: g.pushes, hist: h})
	// Keep the newest snapshot at or before cycle-latency plus everything
	// after it; older entries can never be selected.
	if len(g.snaps) > g.latency+2 {
		cut := uint64(0)
		if g.cycle > uint64(g.latency) {
			cut = g.cycle - uint64(g.latency)
		}
		keepFrom := 0
		for i := len(g.snaps) - 1; i >= 0; i-- {
			if g.snaps[i].cycle <= cut {
				keepFrom = i
				break
			}
		}
		if keepFrom > 0 {
			g.snaps = append(g.snaps[:0], g.snaps[keepFrom:]...)
		}
	}
}

// index computes the effective PHT index for a branch predicted in the
// current cycle. The low bufBits bits are fresh: newest speculative history
// XOR low branch-address bits, computed in the final single-cycle stage.
// The row bits come from history above position bufBits; the prefetched row
// stays aligned with the bits that arrived during the multi-cycle access
// (the New History Bit forwarding of Figure 4) as long as at most bufBits
// branches were predicted while the access was in flight. In heavier
// bursts the aligned row could not have been prefetched, and the entry
// actually resident is the one addressed with the history as of the cycle
// the access began — a stale row, the residual accuracy cost of the
// pipelined organization.
func (g *GShareFast) index(pc uint64) int {
	lowMask := uint64(1)<<g.bufBits - 1
	cur := g.ghr.Value()
	low := ((pc >> 2) ^ cur) & lowMask
	if g.idxBits == g.bufBits {
		return int(low)
	}
	var rowCycle uint64
	if g.cycle > uint64(g.latency) {
		rowCycle = g.cycle - uint64(g.latency)
	}
	rowMask := uint64(1)<<(g.idxBits-g.bufBits) - 1
	oldHist, oldPushes := g.histAt(rowCycle)
	var row uint64
	if k := g.pushes - oldPushes; k <= uint64(g.bufBits) {
		// The row the access fetched is addressed by history bits a
		// couple of positions up from the newest — the typical number
		// of branches in flight during the PHT read — and the New
		// History Bit forwarding keeps that alignment exact whenever
		// no more new bits arrived than the buffer can late-select.
		// Recent history carries the most correlation, so the row
		// window deliberately overlaps the fresh low window.
		row = (cur >> rowShift) & rowMask
	} else {
		// Burst: more branches resolved during the access than the
		// buffer covers; the resident row is the one addressed when
		// the access began.
		row = oldHist & rowMask
	}
	return int(row<<g.bufBits | low)
}

// Predict implements predictor.Predictor.
func (g *GShareFast) Predict(pc uint64) bool {
	return g.pht.Taken(g.index(pc))
}

// Update implements predictor.Predictor. The counter update is enqueued
// behind UpdateLag younger branches (the slow non-speculative PHT write path
// of §3.2); the speculative history updates immediately, as the New History
// latches do in hardware.
func (g *GShareFast) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	if g.updateLag == 0 {
		g.pht.Update(idx, taken)
	} else {
		g.pending = append(g.pending, pendingUpdate{index: idx, taken: taken})
		if len(g.pending) > g.updateLag {
			u := g.pending[0]
			g.pending = g.pending[1:]
			g.pht.Update(u.index, u.taken)
		}
	}
	g.ghr.Push(taken)
	g.pushes++
	g.recordHistory()
	// Without an external clock, model one branch per cycle so the row
	// address is still latency cycles stale.
	if !g.externalClock {
		g.cycle++
	}
}

// Flush applies all pending delayed updates, used by drivers at the end of a
// run so short traces are not biased by a permanently-lagging tail.
func (g *GShareFast) Flush() {
	for _, u := range g.pending {
		g.pht.Update(u.index, u.taken)
	}
	g.pending = g.pending[:0]
}

// SizeBytes implements predictor.Predictor: the PHT, the history register,
// and the PHT buffer with its per-stage checkpoint copies (§3.2 keeps one
// buffer copy per pipeline stage for misprediction recovery).
func (g *GShareFast) SizeBytes() int {
	bufferBytes := (1 << g.bufBits) * 2 / 8
	checkpoints := g.latency + 1
	return g.pht.SizeBytes() + g.ghr.SizeBytes() + bufferBytes*(1+checkpoints)
}

// Name implements predictor.Predictor.
func (g *GShareFast) Name() string { return g.name }

// Entries returns the PHT size in counters.
func (g *GShareFast) Entries() int { return g.pht.Len() }

// Latency returns the PHT read latency being hidden by the pipeline. The
// *effective* prediction latency is always one cycle; this value only sizes
// the pipeline and its buffers.
func (g *GShareFast) Latency() int { return g.latency }

// HistoryBits returns the global history length.
func (g *GShareFast) HistoryBits() uint { return g.ghr.Len() }

func budgetName(bytes int) string {
	if bytes >= 1024 {
		return fmt.Sprintf("%dKB", (bytes+512)/1024)
	}
	return fmt.Sprintf("%dB", bytes)
}

// LargestTable implements predictor.DelayFootprint: the PHT itself. Its
// multi-cycle access latency sets the predictor pipeline depth, not the
// prediction latency, which is always a single cycle.
func (g *GShareFast) LargestTable() (int, int) { return g.pht.SizeBytes(), g.pht.Len() }

// NoCheckpoint wraps a gshare.fast whose PHT buffer is NOT checkpointed per
// pipeline stage: after a misprediction the buffer contents are invalid for
// the cycles it takes to refill from the PHT, so every misprediction costs
// an extra Latency()-cycle fetch bubble. The paper's design eliminates this
// with per-stage buffer copies (§3.2); this wrapper exists to measure what
// that mechanism is worth (the `recovery` ablation).
type NoCheckpoint struct {
	*GShareFast
}

// WithoutCheckpointing wraps g so timing simulations charge the buffer
// refill after each misprediction.
func WithoutCheckpointing(g *GShareFast) NoCheckpoint { return NoCheckpoint{g} }

// RecoveryPenalty implements predictor.RecoveryCost: the buffer refill
// takes a full PHT read.
func (n NoCheckpoint) RecoveryPenalty() int { return n.Latency() }

// Name implements predictor.Predictor.
func (n NoCheckpoint) Name() string { return n.GShareFast.Name() + "-nockpt" }
