package core

import (
	"fmt"

	"branchsim/internal/counter"
)

// BiModeFast applies the gshare.fast pipelining (§3) to the bi-mode
// predictor — the kind of reorganization the paper's conclusion proposes
// studying (§5). Both direction PHTs are indexed identically by
// history-plus-low-PC-bits, so a single FastPipe prefetches the matching
// rows of both banks during the multi-cycle read; the PC-indexed choice
// table is kept small enough (at most the single-cycle limit) to read in
// the final stage alongside the buffer select. The result keeps bi-mode's
// destructive-aliasing reduction while delivering every prediction in one
// cycle.
type BiModeFast struct {
	pipe   *FastPipe
	taken  *counter.Array2
	notTkn *counter.Array2
	choice *counter.Array2
	chMask uint64
	name   string
}

// BiModeFastConfig sizes a BiModeFast.
type BiModeFastConfig struct {
	// DirEntries is each direction PHT's size in 2-bit counters (a
	// power of two).
	DirEntries int
	// ChoiceEntries is the PC-indexed choice PHT's size; it must stay
	// within the single-cycle limit (1K entries by the paper's delay
	// anchor; 2K with the paper's optimistic allowance).
	ChoiceEntries int
	// Latency is the direction PHTs' read latency in cycles.
	Latency int
}

// NewBiModeFast returns a pipelined bi-mode predictor.
func NewBiModeFast(cfg BiModeFastConfig) *BiModeFast {
	if cfg.DirEntries <= 0 || cfg.DirEntries&(cfg.DirEntries-1) != 0 {
		panic(fmt.Sprintf("core: bimode.fast direction entries %d not a power of two", cfg.DirEntries))
	}
	if cfg.ChoiceEntries <= 0 || cfg.ChoiceEntries&(cfg.ChoiceEntries-1) != 0 {
		panic(fmt.Sprintf("core: bimode.fast choice entries %d not a power of two", cfg.ChoiceEntries))
	}
	if cfg.ChoiceEntries > 2048 {
		panic("core: bimode.fast choice table exceeds the single-cycle limit")
	}
	idxBits := uint(0)
	for n := cfg.DirEntries; n > 1; n >>= 1 {
		idxBits++
	}
	b := &BiModeFast{
		pipe:   NewFastPipe(idxBits, cfg.Latency, 0),
		taken:  counter.NewArray2(cfg.DirEntries, counter.WeaklyTaken),
		notTkn: counter.NewArray2(cfg.DirEntries, counter.WeaklyNotTaken),
		choice: counter.NewArray2(cfg.ChoiceEntries, counter.WeaklyNotTaken),
		chMask: uint64(cfg.ChoiceEntries - 1),
	}
	b.name = fmt.Sprintf("bimode.fast-%s", budgetName(b.SizeBytes()))
	return b
}

// NewBiModeFastFromBudget sizes the direction tables to budgetBytes with a
// fixed 2K-entry choice table and delay-model-free latency supplied by the
// caller (use delaymodel.Default.PHTReadCycles for the paper's clock).
func NewBiModeFastFromBudget(budgetBytes int, latency int) *BiModeFast {
	dir := 4
	for dir*2*2*2/8 <= budgetBytes { // two banks of 2-bit counters
		dir *= 2
	}
	return NewBiModeFast(BiModeFastConfig{
		DirEntries:    dir,
		ChoiceEntries: 2048,
		Latency:       latency,
	})
}

// OnCycle implements predictor.CycleAware.
func (b *BiModeFast) OnCycle(cycle uint64) { b.pipe.OnCycle(cycle) }

func (b *BiModeFast) parts(pc uint64) (choiceIdx, dirIdx int, useTaken bool) {
	choiceIdx = int((pc >> 2) & b.chMask)
	dirIdx = b.pipe.Index(pc)
	useTaken = b.choice.Taken(choiceIdx)
	return choiceIdx, dirIdx, useTaken
}

// Predict implements predictor.Predictor.
func (b *BiModeFast) Predict(pc uint64) bool {
	_, dirIdx, useTaken := b.parts(pc)
	if useTaken {
		return b.taken.Taken(dirIdx)
	}
	return b.notTkn.Taken(dirIdx)
}

// Update implements predictor.Predictor with the bi-mode partial-update
// rule (see predictor.BiMode).
func (b *BiModeFast) Update(pc uint64, taken bool) {
	choiceIdx, dirIdx, useTaken := b.parts(pc)
	var bankCorrect bool
	if useTaken {
		bankCorrect = b.taken.Taken(dirIdx) == taken
		b.taken.Update(dirIdx, taken)
	} else {
		bankCorrect = b.notTkn.Taken(dirIdx) == taken
		b.notTkn.Update(dirIdx, taken)
	}
	if !(useTaken != taken && bankCorrect) {
		b.choice.Update(choiceIdx, taken)
	}
	b.pipe.Push(taken)
}

// SizeBytes implements predictor.Predictor.
func (b *BiModeFast) SizeBytes() int {
	return b.taken.SizeBytes() + b.notTkn.SizeBytes() + b.choice.SizeBytes() +
		b.pipe.HistorySizeBytes() + 2*b.pipe.BufferStateBytes()
}

// Name implements predictor.Predictor.
func (b *BiModeFast) Name() string { return b.name }

// Latency returns the hidden direction-PHT read latency (effective
// prediction latency is one cycle).
func (b *BiModeFast) Latency() int { return b.pipe.Latency() }

// LargestTable implements predictor.DelayFootprint.
func (b *BiModeFast) LargestTable() (int, int) {
	return b.taken.SizeBytes(), b.taken.Len()
}
