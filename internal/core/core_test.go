package core

import (
	"testing"

	"branchsim/internal/counter"
	"branchsim/internal/predictor"
	"branchsim/internal/rng"
)

func train(p predictor.Predictor, next func(i int) (uint64, bool), n int) float64 {
	misses, measured := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			measured++
			if pred != taken {
				misses++
			}
		}
	}
	return float64(misses) / float64(measured)
}

func TestGShareFastLearnsBasics(t *testing.T) {
	g := New(Config{Entries: 1 << 14, Latency: 3})
	if rate := train(g, func(i int) (uint64, bool) { return 0x1000, i%5 != 4 }, 10000); rate > 0.05 {
		t.Fatalf("period-5 loop: %.3f", rate)
	}
}

func TestGShareFastTracksGShare(t *testing.T) {
	// On a correlated stream, gshare.fast must land near plain gshare:
	// the pipelined organization costs accuracy only through its stale
	// row address.
	stream := func() func(i int) (uint64, bool) {
		r := rng.NewXoshiro256(7)
		hist := uint64(0)
		return func(i int) (uint64, bool) {
			pc := uint64(0x1000 + (i%128)*4)
			taken := hist>>2&1 == 1
			if r.Bool(0.05) {
				taken = !taken
			}
			hist = hist<<1 | b2u(taken)
			return pc, taken
		}
	}
	fast := train(New(Config{Entries: 1 << 14, Latency: 4}), stream(), 60000)
	plain := train(predictor.NewGShare(1<<14, 0), stream(), 60000)
	if fast > plain+0.03 {
		t.Fatalf("gshare.fast %.3f much worse than gshare %.3f", fast, plain)
	}
}

func TestGShareFastLatencyInsensitiveWhenClean(t *testing.T) {
	// With one branch per cycle (internal clock), accuracy should barely
	// depend on the PHT read latency: the pipeline hides it.
	stream := func() func(i int) (uint64, bool) {
		r := rng.NewXoshiro256(9)
		hist := uint64(0)
		return func(i int) (uint64, bool) {
			pc := uint64(0x1000 + (i%64)*4)
			taken := hist>>1&1 == 1
			if r.Bool(0.04) {
				taken = !taken
			}
			hist = hist<<1 | b2u(taken)
			return pc, taken
		}
	}
	l1 := train(New(Config{Entries: 1 << 16, Latency: 1}), stream(), 60000)
	l9 := train(New(Config{Entries: 1 << 16, Latency: 9}), stream(), 60000)
	if l9 > l1+0.03 {
		t.Fatalf("latency 9 cost too much: %.3f vs %.3f", l9, l1)
	}
}

func TestGShareFastDelayedUpdateSmallCost(t *testing.T) {
	stream := func() func(i int) (uint64, bool) {
		r := rng.NewXoshiro256(3)
		hist := uint64(0)
		return func(i int) (uint64, bool) {
			pc := uint64(0x1000 + (i%256)*4)
			taken := hist>>3&1 == 1
			if r.Bool(0.03) {
				taken = !taken
			}
			hist = hist<<1 | b2u(taken)
			return pc, taken
		}
	}
	immediate := train(New(Config{Entries: 1 << 16, Latency: 3}), stream(), 80000)
	lagged := train(New(Config{Entries: 1 << 16, Latency: 3, UpdateLag: 64}), stream(), 80000)
	if lagged > immediate+0.02 {
		t.Fatalf("64-branch update lag cost too much: %.3f vs %.3f (paper: ~0.04pp)", lagged, immediate)
	}
}

func TestGShareFastFlush(t *testing.T) {
	g := New(Config{Entries: 1 << 10, Latency: 2, UpdateLag: 100})
	for i := 0; i < 50; i++ {
		g.Predict(0x1000)
		g.Update(0x1000, true)
	}
	// All 50 updates are still pending (lag 100): a fresh entry check —
	// prediction still cold.
	g.Flush()
	if !g.Predict(0x1000) {
		t.Fatal("after Flush the counters should predict taken")
	}
}

func TestGShareFastDeterministicWithClock(t *testing.T) {
	mk := func() *GShareFast { return New(Config{Entries: 1 << 12, Latency: 3}) }
	a, b := mk(), mk()
	r := rng.NewXoshiro256(5)
	for i := 0; i < 20000; i++ {
		cycle := uint64(i / 3)
		a.OnCycle(cycle)
		b.OnCycle(cycle)
		pc := uint64(0x1000 + r.Intn(64)*4)
		taken := r.Bool(0.7)
		if a.Predict(pc) != b.Predict(pc) {
			t.Fatalf("divergence at %d", i)
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}

func TestGShareFastBlockMatchesScalarForWidth1(t *testing.T) {
	scalar := New(Config{Entries: 1 << 12, Latency: 3})
	block := New(Config{Entries: 1 << 12, Latency: 3})
	r := rng.NewXoshiro256(6)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x1000 + r.Intn(64)*4)
		taken := r.Bool(0.6)
		sp := scalar.Predict(pc)
		scalar.Update(pc, taken)
		bp := block.PredictBlock([]uint64{pc})
		block.UpdateBlock([]uint64{pc}, []bool{taken})
		if sp != bp[0] {
			t.Fatalf("scalar/block divergence at %d", i)
		}
	}
}

func TestGShareFastBlockSizing(t *testing.T) {
	g := New(Config{Entries: 1 << 16, Latency: 3})
	// §3.3.1: 8 branches per cycle at latency 3 needs at least 64
	// buffer entries; our minimum line is 2^bufBits.
	if got := g.BlockBufferEntries(8); got != 512 {
		t.Fatalf("BlockBufferEntries(8) = %d (want the 512-entry line minimum)", got)
	}
	g2 := New(Config{Entries: 1 << 16, Latency: 8})
	if got := g2.BlockBufferEntries(8); got != 8<<8 {
		t.Fatalf("BlockBufferEntries(8)@L8 = %d, want %d", got, 8<<8)
	}
	if g.BlockSizeBytes(8) <= g.SizeBytes() {
		t.Fatal("block configuration must cost extra state")
	}
}

func TestGShareFastConfigValidation(t *testing.T) {
	bad := []Config{
		{Entries: 100, Latency: 3},
		{Entries: 1024, Latency: 0},
		{Entries: 1024, Latency: 3, UpdateLag: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGShareFastSizeAccounting(t *testing.T) {
	g := New(Config{Entries: 1 << 18, Latency: 4})
	phtBytes := (1 << 18) * 2 / 8
	if g.SizeBytes() <= phtBytes {
		t.Fatal("size must include buffer and checkpoint state")
	}
	if g.SizeBytes() > phtBytes+phtBytes/8 {
		t.Fatalf("overhead too large: %d vs PHT %d", g.SizeBytes(), phtBytes)
	}
}

func TestOverridingPredictsSlow(t *testing.T) {
	// Quick always-taken, slow always-not-taken: the organization's
	// prediction is the slow one, and every prediction is an override.
	o := NewOverriding(predictor.Taken{}, predictor.NotTaken{}, 4)
	for i := 0; i < 100; i++ {
		if o.Predict(0x1000) {
			t.Fatal("overriding must return the slow prediction")
		}
		overrode, bubble := o.LastOverrode()
		if !overrode || bubble != 3 {
			t.Fatalf("override %v bubble %d, want true/3", overrode, bubble)
		}
		o.Update(0x1000, false)
	}
	if o.OverrideRate() != 1 {
		t.Fatalf("override rate %v", o.OverrideRate())
	}
}

func TestOverridingLatency1NeverOverrides(t *testing.T) {
	o := NewOverriding(predictor.Taken{}, predictor.NotTaken{}, 1)
	o.Predict(0x1000)
	if overrode, _ := o.LastOverrode(); overrode {
		t.Fatal("latency-1 organization cannot override")
	}
	if o.OverrideRate() != 0 {
		t.Fatalf("override rate %v", o.OverrideRate())
	}
}

func TestOverridingTrainsBoth(t *testing.T) {
	quick := predictor.NewBimodal(64)
	slow := predictor.NewGShare(1024, 0)
	o := NewOverriding(quick, slow, 3)
	for i := 0; i < 200; i++ {
		o.Predict(0x1000)
		o.Update(0x1000, true)
	}
	if !quick.Predict(0x1000) || !slow.Predict(0x1000) {
		t.Fatal("both components must train")
	}
	// Once both agree, overrides stop.
	o.Predict(0x1000)
	if overrode, _ := o.LastOverrode(); overrode {
		t.Fatal("agreeing predictors should not override")
	}
}

func TestOverridingAgreementNoBubble(t *testing.T) {
	o := NewOverriding(predictor.Taken{}, predictor.Taken{}, 9)
	o.Predict(0x1000)
	if overrode, bubble := o.LastOverrode(); overrode || bubble != 0 {
		t.Fatalf("agreement gave override %v/%d", overrode, bubble)
	}
}

func TestOverridingSizeIsSlow(t *testing.T) {
	quick := predictor.NewGShare(2048, 0)
	slow := predictor.NewGShare(1<<18, 0)
	o := NewOverriding(quick, slow, 5)
	if o.SizeBytes() != slow.SizeBytes() {
		t.Fatal("budget accounting must cover the slow predictor only")
	}
	if o.QuickSizeBytes() != quick.SizeBytes() {
		t.Fatal("quick size accessor wrong")
	}
	if o.Latency() != 5 {
		t.Fatal("latency accessor wrong")
	}
}

func TestOverridingCountsMatch(t *testing.T) {
	r := rng.NewXoshiro256(11)
	quick := predictor.NewBimodal(512)
	slow := predictor.NewGShare(1<<14, 0)
	o := NewOverriding(quick, slow, 4)
	manual := 0
	for i := 0; i < 5000; i++ {
		pc := uint64(0x1000 + r.Intn(128)*4)
		q := quick.Predict(pc)
		s := slow.Predict(pc)
		o.Predict(pc)
		if q != s {
			manual++
		}
		o.Update(pc, r.Bool(0.5))
	}
	got, total := o.OverrideCount()
	if got != int64(manual) || total != 5000 {
		t.Fatalf("override count %d/%d, manual %d", got, total, manual)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestBiModeFastLearns(t *testing.T) {
	b := NewBiModeFast(BiModeFastConfig{DirEntries: 1 << 14, ChoiceEntries: 1024, Latency: 4})
	if rate := train(b, func(i int) (uint64, bool) { return 0x1000, i%5 != 4 }, 10000); rate > 0.05 {
		t.Fatalf("period-5 loop: %.3f", rate)
	}
}

func TestBiModeFastTracksBiMode(t *testing.T) {
	// The pipelined reorganization should land near the original bi-mode
	// on a mixed-bias stream.
	stream := func() func(i int) (uint64, bool) {
		r := rng.NewXoshiro256(8)
		hist := uint64(0)
		return func(i int) (uint64, bool) {
			pc := uint64(0x1000 + (i%200)*4)
			var taken bool
			switch (i % 200) % 3 {
			case 0:
				taken = r.Bool(0.95)
			case 1:
				taken = r.Bool(0.05)
			default:
				taken = hist>>2&1 == 1
			}
			hist = hist<<1 | b2u(taken)
			return pc, taken
		}
	}
	fast := train(NewBiModeFast(BiModeFastConfig{DirEntries: 1 << 14, ChoiceEntries: 1024, Latency: 4}), stream(), 60000)
	orig := train(predictor.NewBiMode(1024, 1<<14), stream(), 60000)
	if fast > orig+0.03 {
		t.Fatalf("bimode.fast %.3f much worse than bimode %.3f", fast, orig)
	}
}

func TestBiModeFastChoiceLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized choice table accepted")
		}
	}()
	NewBiModeFast(BiModeFastConfig{DirEntries: 1024, ChoiceEntries: 8192, Latency: 3})
}

func TestFastPipeIndexStability(t *testing.T) {
	// With a steady one-branch-per-cycle stream, the same (pc, history)
	// pair must map to the same index — determinism of the pipelined
	// index is what makes the scheme learnable.
	f := NewFastPipe(16, 4, 0)
	// Drive a repeating history pattern of period 8.
	pattern := []bool{true, true, false, true, false, false, true, false}
	idxSeen := map[uint64]int{}
	for rep := 0; rep < 200; rep++ {
		for pi, b := range pattern {
			key := uint64(pi)
			idx := f.Index(0x4000)
			if rep > 4 { // after warm-up the mapping must be stable
				if prev, ok := idxSeen[key]; ok && prev != idx {
					t.Fatalf("index for phase %d flapped: %d vs %d", pi, prev, idx)
				}
				idxSeen[key] = idx
			}
			f.Push(b)
		}
	}
}

func TestFastPipeValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewFastPipe(0, 3, 0) },
		func() { NewFastPipe(40, 3, 0) },
		func() { NewFastPipe(14, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid FastPipe accepted")
				}
			}()
			f()
		}()
	}
}

func TestFastPipeMatchesGShareFastIndexing(t *testing.T) {
	// FastPipe is the extracted gshare.fast machinery; a GShareFast and a
	// FastPipe-backed equivalent must predict identically under the same
	// clock and outcome stream.
	g := New(Config{Entries: 1 << 14, Latency: 4})
	f := NewFastPipe(14, 4, 0)
	pht := counter.NewArray2(1<<14, counter.WeaklyNotTaken)
	r := rng.NewXoshiro256(13)
	for i := 0; i < 30000; i++ {
		cycle := uint64(i) / 2
		g.OnCycle(cycle)
		f.OnCycle(cycle)
		pc := uint64(0x1000 + r.Intn(96)*4)
		taken := r.Bool(0.65)
		gp := g.Predict(pc)
		fp := pht.Taken(f.Index(pc))
		if gp != fp {
			t.Fatalf("prediction divergence at %d", i)
		}
		g.Update(pc, taken)
		pht.Update(f.Index(pc), taken)
		f.Push(taken)
	}
}
