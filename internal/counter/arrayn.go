package counter

import "fmt"

// ArrayN is a packed array of n-bit unsigned saturating counters for widths
// 1..8, used where predictors call for non-2-bit counters (the Alpha 21264
// local PHT uses 3-bit counters; meta tables sometimes use 1-bit hints).
type ArrayN struct {
	v    []uint8
	bits uint
	max  uint8
	n    int
}

// NewArrayN returns an array of n counters of the given bit width, all
// initialized to init.
func NewArrayN(n int, bits uint, init uint8) *ArrayN {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("counter: invalid ArrayN width %d", bits))
	}
	if n <= 0 {
		panic(fmt.Sprintf("counter: invalid array size %d", n))
	}
	max := uint8(1)<<bits - 1
	if init > max {
		panic(fmt.Sprintf("counter: init %d exceeds max %d", init, max))
	}
	a := &ArrayN{v: make([]uint8, n), bits: bits, max: max, n: n}
	if init != 0 {
		for i := range a.v {
			a.v[i] = init
		}
	}
	return a
}

// Len returns the number of counters.
func (a *ArrayN) Len() int { return a.n }

// Bits returns the per-counter width.
func (a *ArrayN) Bits() uint { return a.bits }

// SizeBytes returns the hardware state size (bits per counter, packed).
func (a *ArrayN) SizeBytes() int { return (a.n*int(a.bits) + 7) / 8 }

// Get returns counter i.
func (a *ArrayN) Get(i int) uint8 { return a.v[i] }

// Set stores v into counter i, clamping to the width.
func (a *ArrayN) Set(i int, v uint8) {
	if v > a.max {
		v = a.max
	}
	a.v[i] = v
}

// Taken reports the direction predicted by counter i (upper half of range).
func (a *ArrayN) Taken(i int) bool { return a.v[i] > a.max/2 }

// Update increments counter i on taken, decrements otherwise, saturating.
func (a *ArrayN) Update(i int, taken bool) {
	if taken {
		if a.v[i] < a.max {
			a.v[i]++
		}
	} else {
		if a.v[i] > 0 {
			a.v[i]--
		}
	}
}
