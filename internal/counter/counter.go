// Package counter provides saturating counters and densely packed counter
// arrays, the basic storage substrate of table-based branch predictors.
//
// Pattern history tables (PHTs) are arrays of 2-bit saturating counters; some
// predictors (meta-predictors, choosers) use the same structure, and the
// perceptron predictor uses signed 8-bit weights. All of them live here so
// the predictors themselves stay purely organizational.
package counter

import "fmt"

// Saturating is an n-bit unsigned saturating counter. The zero value is a
// 2-bit counter at zero ("strongly not taken") once Bits is set via New.
type Saturating struct {
	value uint32
	max   uint32
}

// NewSaturating returns an n-bit saturating counter initialized to init.
// It panics if bits is not in [1, 31] or init exceeds the maximum value.
func NewSaturating(bits uint, init uint32) Saturating {
	if bits < 1 || bits > 31 {
		panic(fmt.Sprintf("counter: invalid width %d", bits))
	}
	max := uint32(1)<<bits - 1
	if init > max {
		panic(fmt.Sprintf("counter: init %d exceeds max %d", init, max))
	}
	return Saturating{value: init, max: max}
}

// Inc increments the counter, saturating at its maximum.
func (c *Saturating) Inc() {
	if c.value < c.max {
		c.value++
	}
}

// Dec decrements the counter, saturating at zero.
func (c *Saturating) Dec() {
	if c.value > 0 {
		c.value--
	}
}

// Update increments on taken, decrements otherwise.
func (c *Saturating) Update(taken bool) {
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Value returns the current counter value.
func (c *Saturating) Value() uint32 { return c.value }

// Max returns the saturation value.
func (c *Saturating) Max() uint32 { return c.max }

// Taken reports the predicted direction: true when the counter is in its
// upper half.
func (c *Saturating) Taken() bool { return c.value > c.max/2 }

// Strong reports whether the counter is saturated at either extreme.
func (c *Saturating) Strong() bool { return c.value == 0 || c.value == c.max }

// Array2 is a packed array of 2-bit saturating counters, 32 counters per
// 64-bit word. This is the storage layout of every PHT in the repository; it
// keeps a 512 KB predictor at 512 KB of Go memory rather than 2 MB.
type Array2 struct {
	words []uint64
	n     int
}

// WeaklyTaken and friends name the four states of a 2-bit counter.
const (
	StronglyNotTaken = 0
	WeaklyNotTaken   = 1
	WeaklyTaken      = 2
	StronglyTaken    = 3
)

// NewArray2 returns an array of n 2-bit counters, all initialized to init
// (one of the four state constants). n must be positive.
func NewArray2(n int, init uint32) *Array2 {
	if n <= 0 {
		panic(fmt.Sprintf("counter: invalid array size %d", n))
	}
	if init > 3 {
		panic(fmt.Sprintf("counter: invalid 2-bit init %d", init))
	}
	a := &Array2{words: make([]uint64, (n+31)/32), n: n}
	if init != 0 {
		var w uint64
		for i := 0; i < 32; i++ {
			w |= uint64(init) << (2 * i)
		}
		for i := range a.words {
			a.words[i] = w
		}
	}
	return a
}

// Len returns the number of counters.
func (a *Array2) Len() int { return a.n }

// SizeBytes returns the hardware state size: 2 bits per counter.
func (a *Array2) SizeBytes() int { return (a.n*2 + 7) / 8 }

// Get returns the value of counter i (0..3).
func (a *Array2) Get(i int) uint32 {
	return uint32(a.words[i>>5]>>(2*(uint(i)&31))) & 3
}

// Set stores v (0..3) into counter i.
func (a *Array2) Set(i int, v uint32) {
	shift := 2 * (uint(i) & 31)
	w := &a.words[i>>5]
	*w = *w&^(3<<shift) | uint64(v&3)<<shift
}

// Taken reports the direction predicted by counter i.
func (a *Array2) Taken(i int) bool { return a.Get(i) >= 2 }

// Update increments counter i on taken, decrements otherwise, saturating.
func (a *Array2) Update(i int, taken bool) {
	v := a.Get(i)
	if taken {
		if v < 3 {
			a.Set(i, v+1)
		}
	} else {
		if v > 0 {
			a.Set(i, v-1)
		}
	}
}

// PredictUpdate reads counter i's predicted direction and applies the
// outcome in one pass over the packed word: Taken(i) followed by
// Update(i, taken), returning what Taken reported before the update. It is
// the batch steppers' primitive (predictor.BatchStepper): fusing the read
// and the saturating write halves the word traffic of the Predict/Update
// protocol on the table whose access dominates a cheap predictor's cost.
//
//bplint:hotpath fused-sweep table access; equivalence pinned by TestPredictUpdate
func (a *Array2) PredictUpdate(i int, taken bool) bool {
	shift := 2 * (uint(i) & 31)
	w := &a.words[i>>5]
	v := uint32(*w>>shift) & 3
	pred := v >= 2
	if taken {
		if v < 3 {
			v++
		}
	} else if v > 0 {
		v--
	}
	*w = *w&^(3<<shift) | uint64(v)<<shift
	return pred
}

// UpdateStrengthen implements the 2Bc-gskew partial-update rule for a single
// bank: if the counter already predicts the outcome, strengthen it; this is
// Update restricted to the agreeing direction.
func (a *Array2) UpdateStrengthen(i int, taken bool) {
	if a.Taken(i) == taken {
		a.Update(i, taken)
	}
}

// CloneRange copies counters [lo, lo+n) into dst, which must have length n.
// Used by the gshare.fast PHT-buffer prefetch, which reads a contiguous line
// of counters.
func (a *Array2) CloneRange(lo, n int, dst []uint32) {
	if len(dst) != n {
		panic("counter: CloneRange dst length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = a.Get(lo + i)
	}
}

// SignedArray is an array of signed saturating integers with a configurable
// bit width, used for perceptron weights.
type SignedArray struct {
	v    []int16
	bits uint
	max  int16
	min  int16
}

// NewSignedArray returns an array of n signed bits-wide saturating values
// initialized to zero. bits must be in [2, 16].
func NewSignedArray(n int, bits uint) *SignedArray {
	if bits < 2 || bits > 16 {
		panic(fmt.Sprintf("counter: invalid signed width %d", bits))
	}
	if n <= 0 {
		panic(fmt.Sprintf("counter: invalid array size %d", n))
	}
	max := int16(1)<<(bits-1) - 1
	return &SignedArray{v: make([]int16, n), bits: bits, max: max, min: -max - 1}
}

// Len returns the number of values.
func (s *SignedArray) Len() int { return len(s.v) }

// SizeBytes returns the hardware state size: bits per value, rounded up over
// the whole array.
func (s *SignedArray) SizeBytes() int { return (len(s.v)*int(s.bits) + 7) / 8 }

// Get returns value i.
func (s *SignedArray) Get(i int) int { return int(s.v[i]) }

// Add adds delta to value i, saturating at the width's limits.
func (s *SignedArray) Add(i int, delta int) {
	v := int(s.v[i]) + delta
	if v > int(s.max) {
		v = int(s.max)
	}
	if v < int(s.min) {
		v = int(s.min)
	}
	s.v[i] = int16(v)
}

// Max returns the maximum representable value.
func (s *SignedArray) Max() int { return int(s.max) }

// Min returns the minimum representable value.
func (s *SignedArray) Min() int { return int(s.min) }
