package counter

import (
	"testing"
	"testing/quick"
)

func TestSaturatingBounds(t *testing.T) {
	c := NewSaturating(2, 0)
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Fatalf("Dec below zero: %d", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Fatalf("Inc above max: %d", c.Value())
	}
	if c.Max() != 3 {
		t.Fatalf("Max = %d", c.Max())
	}
}

func TestSaturatingTakenThreshold(t *testing.T) {
	// 2-bit counter: 0,1 predict not-taken; 2,3 predict taken.
	for v, want := range map[uint32]bool{0: false, 1: false, 2: true, 3: true} {
		c := NewSaturating(2, v)
		if c.Taken() != want {
			t.Errorf("value %d Taken = %v, want %v", v, c.Taken(), want)
		}
	}
}

func TestSaturatingStrong(t *testing.T) {
	for v, want := range map[uint32]bool{0: true, 1: false, 2: false, 3: true} {
		c := NewSaturating(2, v)
		if c.Strong() != want {
			t.Errorf("value %d Strong = %v, want %v", v, c.Strong(), want)
		}
	}
}

func TestSaturatingUpdate(t *testing.T) {
	c := NewSaturating(3, 4)
	c.Update(true)
	if c.Value() != 5 {
		t.Fatalf("Update(true): %d", c.Value())
	}
	c.Update(false)
	c.Update(false)
	if c.Value() != 3 {
		t.Fatalf("Update(false) twice: %d", c.Value())
	}
}

func TestSaturatingInvalidConfig(t *testing.T) {
	for _, tc := range []struct{ bits, init uint32 }{{0, 0}, {32, 0}, {2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSaturating(%d,%d) did not panic", tc.bits, tc.init)
				}
			}()
			NewSaturating(uint(tc.bits), tc.init)
		}()
	}
}

// referenceArray2 is a plain-slice model of Array2 for property testing.
type referenceArray2 []uint32

func TestArray2MatchesReference(t *testing.T) {
	const n = 257 // deliberately not a multiple of 32
	a := NewArray2(n, WeaklyNotTaken)
	ref := make(referenceArray2, n)
	for i := range ref {
		ref[i] = WeaklyNotTaken
	}
	f := func(idxRaw uint16, taken bool) bool {
		i := int(idxRaw) % n
		a.Update(i, taken)
		if taken {
			if ref[i] < 3 {
				ref[i]++
			}
		} else if ref[i] > 0 {
			ref[i]--
		}
		return a.Get(i) == ref[i] && a.Taken(i) == (ref[i] >= 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// The untouched neighbours must be unchanged.
	for i := 0; i < n; i++ {
		if a.Get(i) != ref[i] {
			t.Fatalf("entry %d drifted: %d vs %d", i, a.Get(i), ref[i])
		}
	}
}

func TestArray2SetGetRoundTrip(t *testing.T) {
	a := NewArray2(100, 0)
	f := func(idxRaw uint8, v uint8) bool {
		i := int(idxRaw) % 100
		a.Set(i, uint32(v%4))
		return a.Get(i) == uint32(v%4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArray2SizeBytes(t *testing.T) {
	if got := NewArray2(4096, 0).SizeBytes(); got != 1024 {
		t.Fatalf("4096 2-bit counters = %d bytes, want 1024", got)
	}
	if got := NewArray2(3, 0).SizeBytes(); got != 1 {
		t.Fatalf("3 counters = %d bytes, want 1", got)
	}
}

func TestArray2InitValue(t *testing.T) {
	a := NewArray2(67, WeaklyTaken)
	for i := 0; i < 67; i++ {
		if a.Get(i) != WeaklyTaken {
			t.Fatalf("entry %d initialized to %d", i, a.Get(i))
		}
	}
}

func TestArray2UpdateStrengthen(t *testing.T) {
	a := NewArray2(4, WeaklyTaken) // predicts taken
	a.UpdateStrengthen(0, true)    // agrees: strengthen
	if a.Get(0) != StronglyTaken {
		t.Fatalf("strengthen agreeing: %d", a.Get(0))
	}
	a.UpdateStrengthen(1, false) // disagrees: untouched
	if a.Get(1) != WeaklyTaken {
		t.Fatalf("strengthen disagreeing moved counter: %d", a.Get(1))
	}
}

func TestArray2CloneRange(t *testing.T) {
	a := NewArray2(64, 0)
	for i := 0; i < 64; i++ {
		a.Set(i, uint32(i%4))
	}
	dst := make([]uint32, 8)
	a.CloneRange(16, 8, dst)
	for i, v := range dst {
		if v != uint32((16+i)%4) {
			t.Fatalf("clone[%d] = %d", i, v)
		}
	}
}

func TestArrayNBounds(t *testing.T) {
	a := NewArrayN(10, 3, 3)
	for i := 0; i < 20; i++ {
		a.Update(0, true)
	}
	if a.Get(0) != 7 {
		t.Fatalf("3-bit counter max: %d", a.Get(0))
	}
	for i := 0; i < 20; i++ {
		a.Update(0, false)
	}
	if a.Get(0) != 0 {
		t.Fatalf("3-bit counter min: %d", a.Get(0))
	}
}

func TestArrayNTakenThreshold(t *testing.T) {
	a := NewArrayN(8, 3, 0)
	a.Set(0, 3)
	a.Set(1, 4)
	if a.Taken(0) {
		t.Fatal("3-bit value 3 should predict not taken")
	}
	if !a.Taken(1) {
		t.Fatal("3-bit value 4 should predict taken")
	}
}

func TestArrayNSizeBytes(t *testing.T) {
	if got := NewArrayN(1024, 3, 0).SizeBytes(); got != 384 {
		t.Fatalf("1024 3-bit counters = %d bytes, want 384", got)
	}
}

func TestSignedArraySaturation(t *testing.T) {
	s := NewSignedArray(4, 8)
	if s.Max() != 127 || s.Min() != -128 {
		t.Fatalf("8-bit range [%d,%d]", s.Min(), s.Max())
	}
	s.Add(0, 1000)
	if s.Get(0) != 127 {
		t.Fatalf("saturate high: %d", s.Get(0))
	}
	s.Add(0, -1000)
	if s.Get(0) != -128 {
		t.Fatalf("saturate low: %d", s.Get(0))
	}
}

func TestSignedArrayAddCommutes(t *testing.T) {
	s := NewSignedArray(1, 8)
	f := func(deltas []int8) bool {
		s.Add(0, -s.Get(0)) // reset
		sum := 0
		for _, d := range deltas {
			s.Add(0, int(d))
			sum += int(d)
			if sum > 127 {
				sum = 127
			}
			if sum < -128 {
				sum = -128
			}
			// Saturation is path-dependent; only check bounds here.
			if s.Get(0) > 127 || s.Get(0) < -128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedArraySizeBytes(t *testing.T) {
	if got := NewSignedArray(100, 8).SizeBytes(); got != 100 {
		t.Fatalf("100 8-bit weights = %d bytes", got)
	}
}

// TestPredictUpdate pins the fused read-modify-write against the scalar
// Taken-then-Update pair across every counter state, outcome, and packing
// position (first, middle, and last counter of a word).
func TestPredictUpdate(t *testing.T) {
	for _, i := range []int{0, 17, 31, 32, 63} {
		for init := uint32(0); init <= 3; init++ {
			for _, taken := range []bool{false, true} {
				fused := NewArray2(64, 0)
				scalar := NewArray2(64, 0)
				// Surround counter i with saturated neighbours to catch
				// cross-counter word corruption.
				for j := 0; j < 64; j++ {
					fused.Set(j, 3)
					scalar.Set(j, 3)
				}
				fused.Set(i, init)
				scalar.Set(i, init)
				wantPred := scalar.Taken(i)
				scalar.Update(i, taken)
				if gotPred := fused.PredictUpdate(i, taken); gotPred != wantPred {
					t.Fatalf("i=%d init=%d taken=%v: pred %v, want %v", i, init, taken, gotPred, wantPred)
				}
				for j := 0; j < 64; j++ {
					if fused.Get(j) != scalar.Get(j) {
						t.Fatalf("i=%d init=%d taken=%v: counter %d is %d, want %d",
							i, init, taken, j, fused.Get(j), scalar.Get(j))
					}
				}
			}
		}
	}
}
