// Package workload synthesizes the 12 SPECint2000-like benchmark programs
// the experiments run. The paper evaluates on SPECint2000 under
// SimpleScalar/Alpha; real SPEC traces are not available here, so each
// benchmark is modelled as a synthetic program whose *branch-behaviour mix*,
// code footprint, memory locality and instruction-level parallelism are
// calibrated to reproduce the relative behaviour the paper's conclusions
// rest on (see DESIGN.md §2):
//
//   - aliasing pressure (static branch count vs. table size) drives the
//     budget curves of Figures 1 and 5;
//   - short- and long-range global correlation separates history-rich
//     predictors (perceptron, multi-component) from PHT-indexed ones;
//   - XOR-type correlation is learnable by tables but not by perceptrons;
//   - per-branch loops and local patterns reward local-history components;
//   - irreducibly random branches set each benchmark's accuracy floor
//     (twolf's simulated-annealing accepts, vpr's random moves);
//   - working sets and dependency density set the IPC ceiling per benchmark
//     (mcf's pointer chasing vs. eon's regular arithmetic).
package workload

// BranchClass is a generative model for one static branch's outcomes.
type BranchClass uint8

// Branch behaviour classes.
const (
	// ClassLoop branches are backward loop branches: taken period-1
	// times, then not taken once.
	ClassLoop BranchClass = iota
	// ClassBiased branches are independent coin flips with a strong,
	// per-branch bias.
	ClassBiased
	// ClassShortCorr branches copy (or invert) the outcome of a branch a
	// short distance back in the global stream — classic two-level
	// correlation within gshare's reach.
	ClassShortCorr
	// ClassLongCorr branches correlate 20-56 branches back: beyond the
	// history of PHT-indexed predictors at small budgets, within reach of
	// the perceptron and the multi-component hybrid's long components.
	ClassLongCorr
	// ClassLocalPattern branches repeat a fixed per-branch pattern,
	// rewarding local-history predictors.
	ClassLocalPattern
	// ClassXorCorr branches XOR two global history bits — learnable by
	// pattern tables, *not* linearly separable for perceptrons.
	ClassXorCorr
	// ClassRandom branches are fair coin flips: the irreducible noise
	// floor.
	ClassRandom
	numClasses
)

// NumClasses is the number of branch behaviour classes.
const NumClasses = int(numClasses)

// String returns the class mnemonic.
func (c BranchClass) String() string {
	switch c {
	case ClassLoop:
		return "loop"
	case ClassBiased:
		return "biased"
	case ClassShortCorr:
		return "short-corr"
	case ClassLongCorr:
		return "long-corr"
	case ClassLocalPattern:
		return "local-pattern"
	case ClassXorCorr:
		return "xor-corr"
	case ClassRandom:
		return "random"
	default:
		return "?"
	}
}

// ClassMix is a weight per BranchClass; weights need not sum to one (they
// are normalized at sampling time).
type ClassMix [NumClasses]float64

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark's SPEC-style name, e.g. "164.gzip".
	Name string
	// Seed fixes the program's construction and data randomness.
	Seed uint64

	// Blocks is the number of static basic blocks; one conditional
	// branch or jump terminates each, so this sets the static branch
	// count and, with BlockLen, the code footprint.
	Blocks int
	// BlockLenMin and BlockLenMax bound the non-branch instructions per
	// block (uniform).
	BlockLenMin, BlockLenMax int
	// CondFrac is the fraction of blocks ending in a conditional branch
	// rather than an unconditional jump.
	CondFrac float64

	// Mix weights the branch behaviour classes.
	Mix ClassMix
	// Noise is the probability a correlated/patterned branch's outcome is
	// flipped — each benchmark's model error.
	Noise float64
	// BiasLo and BiasHi bound per-branch taken probabilities for
	// ClassBiased (one side; the generator mirrors half of them below
	// 50%).
	BiasLo, BiasHi float64
	// LoopMin and LoopMax bound loop periods.
	LoopMin, LoopMax int
	// LocalMin and LocalMax bound local pattern lengths.
	LocalMin, LocalMax int
	// ShortOffMin and ShortOffMax bound ClassShortCorr correlation
	// distances (in branches).
	ShortOffMin, ShortOffMax int
	// LongOffMin and LongOffMax bound ClassLongCorr correlation
	// distances.
	LongOffMin, LongOffMax int

	// LoadFrac and StoreFrac are per-body-slot probabilities of memory
	// operations; MulFrac and FPUFrac of long-latency arithmetic.
	LoadFrac, StoreFrac, MulFrac, FPUFrac float64
	// DepNear is the probability a source register names a recently
	// produced value (short dependency chains lower ILP).
	DepNear float64
	// WorkingSet is the data working set in bytes; RandomFrac of memory
	// references scatter across it uniformly, StreamFrac walk it with
	// fixed strides, and the rest hit a small hot stack region.
	WorkingSet uint64
	// StreamFrac and RandomFrac partition memory references (remainder
	// goes to the stack region).
	StreamFrac, RandomFrac float64
}

// DefaultInstructions is the per-benchmark dynamic instruction count used by
// the reproduce harness when none is specified. The paper runs >1B
// instructions per benchmark after a 500M warm-up; the synthetic programs
// reach steady state orders of magnitude sooner because they have no
// initialization phase, so the default keeps full-suite sweeps tractable.
const DefaultInstructions = 2_000_000

// Profiles returns the twelve benchmark profiles in SPEC numeric order.
// The mixes and intensities are the calibration described in the package
// comment; EXPERIMENTS.md records the resulting per-benchmark rates.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "164.gzip", Seed: 0x164,
			Blocks: 1400, BlockLenMin: 3, BlockLenMax: 9, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .08, ClassBiased: 0.51, ClassShortCorr: 0.235, ClassLongCorr: 0.015, ClassLocalPattern: 0.07, ClassXorCorr: .05, ClassRandom: 0.04},
			Noise: 0.020, BiasLo: 0.93, BiasHi: 0.995,
			LoopMin: 3, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 36,
			LoadFrac: 0.26, StoreFrac: 0.12, MulFrac: 0.02, FPUFrac: 0.00,
			DepNear: 0.55, WorkingSet: 768 << 10, StreamFrac: 0.60, RandomFrac: 0.15,
		},
		{
			Name: "175.vpr", Seed: 0x175,
			Blocks: 2600, BlockLenMin: 3, BlockLenMax: 8, CondFrac: 0.78,
			Mix:   ClassMix{ClassLoop: .06, ClassBiased: 0.49, ClassShortCorr: 0.225, ClassLongCorr: 0.025, ClassLocalPattern: 0.07, ClassXorCorr: .05, ClassRandom: 0.08},
			Noise: 0.025, BiasLo: 0.90, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 22, LongOffMax: 40,
			LoadFrac: 0.27, StoreFrac: 0.10, MulFrac: 0.03, FPUFrac: 0.05,
			DepNear: 0.60, WorkingSet: 1536 << 10, StreamFrac: 0.35, RandomFrac: 0.25,
		},
		{
			Name: "176.gcc", Seed: 0x176,
			Blocks: 9000, BlockLenMin: 3, BlockLenMax: 8, CondFrac: 0.82,
			Mix:   ClassMix{ClassLoop: .08, ClassBiased: 0.52, ClassShortCorr: 0.275, ClassLongCorr: 0.025, ClassLocalPattern: 0.02, ClassXorCorr: .05, ClassRandom: 0.03},
			Noise: 0.020, BiasLo: 0.93, BiasHi: 0.995,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 44,
			LoadFrac: 0.28, StoreFrac: 0.14, MulFrac: 0.01, FPUFrac: 0.00,
			DepNear: 0.58, WorkingSet: 2 << 20, StreamFrac: 0.40, RandomFrac: 0.20,
		},
		{
			Name: "181.mcf", Seed: 0x181,
			Blocks: 1600, BlockLenMin: 3, BlockLenMax: 7, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .08, ClassBiased: 0.61, ClassShortCorr: 0.135, ClassLongCorr: 0.015, ClassLocalPattern: 0.02, ClassXorCorr: .05, ClassRandom: 0.09},
			Noise: 0.025, BiasLo: 0.90, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 32,
			LoadFrac: 0.30, StoreFrac: 0.10, MulFrac: 0.01, FPUFrac: 0.00,
			DepNear: 0.60, WorkingSet: 8 << 20, StreamFrac: 0.15, RandomFrac: 0.40,
		},
		{
			Name: "186.crafty", Seed: 0x186,
			Blocks: 5200, BlockLenMin: 4, BlockLenMax: 10, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .06, ClassBiased: 0.42, ClassShortCorr: 0.225, ClassLongCorr: 0.025, ClassLocalPattern: 0.02, ClassXorCorr: .20, ClassRandom: 0.05},
			Noise: 0.020, BiasLo: 0.92, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 40,
			LoadFrac: 0.24, StoreFrac: 0.08, MulFrac: 0.04, FPUFrac: 0.00,
			DepNear: 0.48, WorkingSet: 1 << 20, StreamFrac: 0.45, RandomFrac: 0.20,
		},
		{
			Name: "197.parser", Seed: 0x197,
			Blocks: 4000, BlockLenMin: 3, BlockLenMax: 8, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .06, ClassBiased: 0.42, ClassShortCorr: 0.36, ClassLongCorr: 0.04, ClassLocalPattern: 0.02, ClassXorCorr: .05, ClassRandom: 0.05},
			Noise: 0.020, BiasLo: 0.92, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 22, LongOffMax: 44,
			LoadFrac: 0.27, StoreFrac: 0.11, MulFrac: 0.01, FPUFrac: 0.00,
			DepNear: 0.62, WorkingSet: 1536 << 10, StreamFrac: 0.35, RandomFrac: 0.25,
		},
		{
			Name: "252.eon", Seed: 0x252,
			Blocks: 3000, BlockLenMin: 5, BlockLenMax: 14, CondFrac: 0.70,
			Mix:   ClassMix{ClassLoop: .10, ClassBiased: 0.645, ClassShortCorr: 0.185, ClassLongCorr: 0.015, ClassLocalPattern: 0.02, ClassXorCorr: .02, ClassRandom: 0.015},
			Noise: 0.015, BiasLo: 0.96, BiasHi: 0.999,
			LoopMin: 3, LoopMax: 8, LocalMin: 3, LocalMax: 6,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 30,
			LoadFrac: 0.22, StoreFrac: 0.10, MulFrac: 0.03, FPUFrac: 0.18,
			DepNear: 0.40, WorkingSet: 512 << 10, StreamFrac: 0.60, RandomFrac: 0.10,
		},
		{
			Name: "253.perlbmk", Seed: 0x253,
			Blocks: 6500, BlockLenMin: 3, BlockLenMax: 8, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .06, ClassBiased: 0.455, ClassShortCorr: 0.36, ClassLongCorr: 0.04, ClassLocalPattern: 0.02, ClassXorCorr: .03, ClassRandom: 0.035},
			Noise: 0.018, BiasLo: 0.94, BiasHi: 0.995,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 24, LongOffMax: 48,
			LoadFrac: 0.28, StoreFrac: 0.14, MulFrac: 0.01, FPUFrac: 0.00,
			DepNear: 0.55, WorkingSet: 1 << 20, StreamFrac: 0.40, RandomFrac: 0.20,
		},
		{
			Name: "254.gap", Seed: 0x254,
			Blocks: 3200, BlockLenMin: 4, BlockLenMax: 10, CondFrac: 0.75,
			Mix:   ClassMix{ClassLoop: .12, ClassBiased: 0.62, ClassShortCorr: 0.185, ClassLongCorr: 0.015, ClassLocalPattern: 0.02, ClassXorCorr: .02, ClassRandom: 0.02},
			Noise: 0.015, BiasLo: 0.95, BiasHi: 0.998,
			LoopMin: 3, LoopMax: 8, LocalMin: 3, LocalMax: 6,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 32,
			LoadFrac: 0.25, StoreFrac: 0.11, MulFrac: 0.04, FPUFrac: 0.00,
			DepNear: 0.45, WorkingSet: 1 << 20, StreamFrac: 0.55, RandomFrac: 0.12,
		},
		{
			Name: "255.vortex", Seed: 0x255,
			Blocks: 5000, BlockLenMin: 4, BlockLenMax: 9, CondFrac: 0.78,
			Mix:   ClassMix{ClassLoop: .08, ClassBiased: 0.7, ClassShortCorr: 0.17, ClassLongCorr: 0.01, ClassLocalPattern: 0.02, ClassXorCorr: .01, ClassRandom: 0.01},
			Noise: 0.012, BiasLo: 0.97, BiasHi: 0.999,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 6,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 28,
			LoadFrac: 0.27, StoreFrac: 0.16, MulFrac: 0.01, FPUFrac: 0.00,
			DepNear: 0.50, WorkingSet: 1536 << 10, StreamFrac: 0.50, RandomFrac: 0.18,
		},
		{
			Name: "256.bzip2", Seed: 0x256,
			Blocks: 1200, BlockLenMin: 3, BlockLenMax: 9, CondFrac: 0.82,
			Mix:   ClassMix{ClassLoop: .08, ClassBiased: 0.5, ClassShortCorr: 0.235, ClassLongCorr: 0.015, ClassLocalPattern: 0.07, ClassXorCorr: .05, ClassRandom: 0.05},
			Noise: 0.020, BiasLo: 0.92, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 34,
			LoadFrac: 0.27, StoreFrac: 0.12, MulFrac: 0.02, FPUFrac: 0.00,
			DepNear: 0.55, WorkingSet: 2 << 20, StreamFrac: 0.65, RandomFrac: 0.12,
		},
		{
			Name: "300.twolf", Seed: 0x300,
			Blocks: 3000, BlockLenMin: 3, BlockLenMax: 8, CondFrac: 0.80,
			Mix:   ClassMix{ClassLoop: .05, ClassBiased: 0.45, ClassShortCorr: 0.18, ClassLongCorr: 0.02, ClassLocalPattern: 0.05, ClassXorCorr: .12, ClassRandom: 0.13},
			Noise: 0.028, BiasLo: 0.88, BiasHi: 0.990,
			LoopMin: 2, LoopMax: 8, LocalMin: 3, LocalMax: 7,
			ShortOffMin: 2, ShortOffMax: 11, LongOffMin: 20, LongOffMax: 36,
			LoadFrac: 0.26, StoreFrac: 0.10, MulFrac: 0.03, FPUFrac: 0.04,
			DepNear: 0.62, WorkingSet: 1 << 20, StreamFrac: 0.30, RandomFrac: 0.30,
		},
	}
}

// ByName returns the profile with the given name (with or without the SPEC
// number prefix) and whether it exists.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name || p.ShortName() == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ShortName returns the name without the SPEC number prefix ("gzip").
func (p Profile) ShortName() string {
	for i := 0; i < len(p.Name); i++ {
		if p.Name[i] == '.' {
			return p.Name[i+1:]
		}
	}
	return p.Name
}
