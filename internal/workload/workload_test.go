package workload

import (
	"testing"

	"branchsim/internal/trace"
)

func TestTwelveProfilesInSPECOrder(t *testing.T) {
	profs := Profiles()
	if len(profs) != 12 {
		t.Fatalf("got %d profiles, want 12", len(profs))
	}
	want := []string{"164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty",
		"197.parser", "252.eon", "253.perlbmk", "254.gap", "255.vortex",
		"256.bzip2", "300.twolf"}
	for i, p := range profs {
		if p.Name != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gzip"); !ok {
		t.Fatal("short name lookup failed")
	}
	if _, ok := ByName("300.twolf"); !ok {
		t.Fatal("full name lookup failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("bogus name matched")
	}
}

func TestDeterministicStreams(t *testing.T) {
	for _, prof := range Profiles()[:3] {
		a, b := New(prof), New(prof)
		var ia, ib trace.Inst
		for i := 0; i < 50000; i++ {
			if !a.Next(&ia) || !b.Next(&ib) {
				t.Fatal("stream ended")
			}
			if ia != ib {
				t.Fatalf("%s: streams diverge at %d: %+v vs %+v", prof.Name, i, ia, ib)
			}
		}
	}
}

func TestBranchRatioRealistic(t *testing.T) {
	for _, prof := range Profiles() {
		p := New(prof)
		insts, branches := trace.CountBranches(p, 300000)
		ratio := float64(branches) / float64(insts)
		// SPECint-like: conditional branches are 8-20% of instructions.
		if ratio < 0.06 || ratio > 0.25 {
			t.Errorf("%s: branch ratio %.3f out of range", prof.Name, ratio)
		}
	}
}

func TestTakenRateRealistic(t *testing.T) {
	for _, prof := range Profiles() {
		p := New(prof)
		var inst trace.Inst
		var taken, branches int64
		for i := 0; i < 300000; i++ {
			p.Next(&inst)
			if inst.Kind == trace.CondBranch {
				branches++
				if inst.Taken {
					taken++
				}
			}
		}
		rate := float64(taken) / float64(branches)
		if rate < 0.30 || rate > 0.80 {
			t.Errorf("%s: taken rate %.3f out of range", prof.Name, rate)
		}
	}
}

func TestCoverageNoAbsorption(t *testing.T) {
	// The phase scheduler must keep the walk visiting a large share of
	// static branches — the failure mode is absorption into a tiny
	// attractor.
	for _, prof := range Profiles() {
		p := New(prof)
		seen := map[uint64]bool{}
		var inst trace.Inst
		for i := 0; i < 2_000_000; i++ {
			p.Next(&inst)
			if inst.Kind == trace.CondBranch {
				seen[inst.PC] = true
			}
		}
		static := p.StaticBranches()
		if frac := float64(len(seen)) / float64(static); frac < 0.35 {
			t.Errorf("%s: only %.0f%% of %d static branches executed",
				prof.Name, 100*frac, static)
		}
	}
}

func TestClassSharesTrackMix(t *testing.T) {
	prof, _ := ByName("gzip")
	p := New(prof)
	var inst trace.Inst
	counts := map[string]int{}
	for i := 0; i < 1_000_000; i++ {
		p.Next(&inst)
		if inst.Kind == trace.CondBranch {
			if name, ok := p.BranchClassName(inst.PC); ok {
				counts[name]++
			}
		}
	}
	// Every class in the mix must appear dynamically.
	for c := 0; c < NumClasses; c++ {
		name := BranchClass(c).String()
		if prof.Mix[c] > 0 && counts[name] == 0 {
			t.Errorf("class %s has weight but never executes", name)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if rand := float64(counts[ClassRandom.String()]) / float64(total); rand > 3*prof.Mix[ClassRandom]+0.05 {
		t.Errorf("random class share %.3f wildly above weight %.3f", rand, prof.Mix[ClassRandom])
	}
}

func TestPCsWordAlignedAndInCode(t *testing.T) {
	prof, _ := ByName("gcc")
	p := New(prof)
	foot := p.CodeFootprint()
	var inst trace.Inst
	for i := 0; i < 200000; i++ {
		p.Next(&inst)
		if inst.PC%4 != 0 {
			t.Fatalf("unaligned PC %#x", inst.PC)
		}
		if inst.PC < 0x10000 || inst.PC >= 0x10000+foot {
			t.Fatalf("PC %#x outside code footprint", inst.PC)
		}
	}
}

func TestMemoryAddressesInRegions(t *testing.T) {
	prof, _ := ByName("mcf")
	p := New(prof)
	var inst trace.Inst
	for i := 0; i < 200000; i++ {
		p.Next(&inst)
		if inst.Kind != trace.Load && inst.Kind != trace.Store {
			continue
		}
		a := inst.Addr
		inHeap := a >= heapBase && a < heapBase+prof.WorkingSet
		inStack := a >= stackBase && a < stackBase+stackSize
		if !inHeap && !inStack {
			t.Fatalf("address %#x outside heap/stack", a)
		}
	}
}

func TestTargetsAreBlockStarts(t *testing.T) {
	prof, _ := ByName("vpr")
	p := New(prof)
	var inst trace.Inst
	starts := map[uint64]bool{}
	// Collect block starts by observing control flow for a while.
	for i := 0; i < 500000; i++ {
		p.Next(&inst)
		if (inst.Kind == trace.CondBranch && inst.Taken) || inst.Kind == trace.Jump {
			starts[inst.Target] = true
		}
	}
	if len(starts) < 50 {
		t.Fatalf("too few distinct targets: %d", len(starts))
	}
	for target := range starts {
		if target%4 != 0 {
			t.Fatalf("misaligned target %#x", target)
		}
	}
}

func TestRegisterOperandsValid(t *testing.T) {
	prof, _ := ByName("eon")
	p := New(prof)
	var inst trace.Inst
	for i := 0; i < 100000; i++ {
		p.Next(&inst)
		for _, r := range []int8{inst.Src1, inst.Src2, inst.Dst} {
			if r != trace.NoReg && (r < 0 || r >= trace.NumRegs) {
				t.Fatalf("register %d out of range", r)
			}
		}
		switch inst.Kind {
		case trace.Load:
			if inst.Dst == trace.NoReg {
				t.Fatal("load without destination")
			}
		case trace.Store, trace.CondBranch:
			if inst.Dst != trace.NoReg {
				t.Fatalf("%v with destination", inst.Kind)
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	prof, _ := ByName("gap")
	p := New(prof)
	var inst trace.Inst
	for i := 0; i < 1000; i++ {
		p.Next(&inst)
	}
	insts, branches, taken := p.Stats()
	if insts != 1000 {
		t.Fatalf("insts = %d", insts)
	}
	if branches == 0 || taken == 0 || taken > branches {
		t.Fatalf("branches %d taken %d", branches, taken)
	}
}

func TestCodeFootprintMatchesBlocks(t *testing.T) {
	for _, prof := range Profiles() {
		p := New(prof)
		// Footprint must scale with block count: at least 4 bytes per
		// block plus bodies.
		if p.CodeFootprint() < uint64(prof.Blocks)*4*uint64(prof.BlockLenMin+1) {
			t.Errorf("%s: footprint %d too small", prof.Name, p.CodeFootprint())
		}
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 1-block profile")
		}
	}()
	New(Profile{Blocks: 1})
}
