package workload

import (
	"branchsim/internal/rng"
	"branchsim/internal/trace"
)

// memMode classifies how a memory slot generates addresses.
type memMode uint8

const (
	memStack memMode = iota
	memStream
	memRandom
)

// slotTemplate is one non-branch instruction slot in a static basic block.
type slotTemplate struct {
	kind     trace.Kind
	mem      memMode
	stride   uint64
	streamID int32 // index into per-program stream counters, -1 if none
	base     uint64
}

// branchDesc is the generative model of one static conditional branch.
type branchDesc struct {
	class       BranchClass
	bias        float64
	invert      bool
	period      int
	pattern     uint64
	off1, off2  uint
	takenTarget int32
}

// block is one static basic block.
type block struct {
	startPC    uint64
	brPC       uint64
	slots      []slotTemplate
	cond       bool
	br         branchDesc
	jumpTarget int32
}

// Base addresses of the synthetic address space.
const (
	codeBase  = 0x0001_0000
	heapBase  = 0x2000_0000
	stackBase = 0x7F00_0000
	stackSize = 4096

	// hotRegion is the size of the hot subset that captures half of all
	// pointer-chasing references (see address).
	hotRegion = 32 << 10
)

// Program is a synthetic benchmark program implementing trace.Generator.
// The stream is infinite (steady-state by construction); drivers bound it
// with an instruction budget. Two Programs built from the same Profile
// produce identical streams.
type Program struct {
	prof   Profile
	blocks []block
	rng    *rng.Xoshiro256

	cur  int32
	slot int

	ghist     uint64 // global outcome history, bit 0 = most recent
	loopCount []int32
	patPos    []int32
	rareRun   []bool // ClassBiased Markov state: currently in a rare run
	streams   []uint64

	destRing [8]int8
	destLen  int
	destHead int
	regNext  int

	insts    int64
	branches int64
	taken    int64

	// Phase scheduler: the walk carries an instruction budget; when it
	// runs out, the next unconditional jump (or, failing that for twice
	// the budget, the next taken non-loop branch) is redirected to the
	// start of the next code region, like a main loop dispatching the
	// next phase of work.
	phaseBudget  int64
	regionStarts []int32
	regionIdx    int

	classByPC map[uint64]BranchClass // lazy diagnostic index
}

// phaseLen is the per-phase instruction budget of the phase scheduler.
const phaseLen = 16384

// regionBlocks is the target region granularity of the phase scheduler.
const regionBlocks = 64

// New builds the synthetic program for a profile. Construction is
// deterministic in prof.Seed.
func New(prof Profile) *Program {
	if prof.Blocks < 2 {
		panic("workload: profile needs at least two blocks")
	}
	p := &Program{
		prof:        prof,
		rng:         rng.NewXoshiro256(prof.Seed*0x9e3779b97f4a7c15 + 0x1234_5678),
		blocks:      make([]block, prof.Blocks),
		loopCount:   make([]int32, prof.Blocks),
		patPos:      make([]int32, prof.Blocks),
		rareRun:     make([]bool, prof.Blocks),
		phaseBudget: phaseLen,
	}
	for start := 0; start < prof.Blocks; start += regionBlocks {
		p.regionStarts = append(p.regionStarts, int32(start))
	}
	// First pass: block shapes, instruction templates and branch
	// behaviour. Targets are assigned in a second pass so jumps can be
	// steered toward conditional blocks (see pickCondTarget).
	pc := uint64(codeBase)
	for i := range p.blocks {
		b := &p.blocks[i]
		b.startPC = pc
		n := prof.BlockLenMin
		if prof.BlockLenMax > prof.BlockLenMin {
			n += p.rng.Intn(prof.BlockLenMax - prof.BlockLenMin + 1)
		}
		b.slots = make([]slotTemplate, n)
		for s := range b.slots {
			b.slots[s] = p.makeSlot()
		}
		b.brPC = pc + uint64(n)*4
		pc = b.brPC + 4
		if p.rng.Bool(prof.CondFrac) {
			b.cond = true
			b.br = p.makeBranch(int32(i))
		}
	}
	for i := range p.blocks {
		b := &p.blocks[i]
		if b.cond {
			if b.br.class != ClassLoop {
				b.br.takenTarget = p.pickTarget(int32(i))
			}
		} else {
			// Unconditional jumps always land on a conditional
			// block; otherwise a cycle of jump-only blocks would
			// absorb the walk forever, which no terminating
			// program does.
			b.jumpTarget = p.pickCondTarget(int32(i))
		}
	}
	return p
}

// escapable reports whether a block ends in a conditional branch whose
// outcome has entropy (bias, correlation noise or randomness). A cycle of
// blocks that contains an escapable branch cannot absorb the walk forever.
func (p *Program) escapable(i int32) bool {
	b := &p.blocks[i]
	if !b.cond {
		return false
	}
	switch b.br.class {
	case ClassLoop, ClassLocalPattern:
		// Loops terminate but re-enter deterministically; local
		// patterns can be all-taken. Neither guarantees escape.
		return false
	default:
		return true
	}
}

// pickCondTarget chooses a jump target among escapable conditional blocks.
// Every static cycle in the CFG must contain a backward edge, and every
// backward edge is either a terminating loop back-edge, a stochastic
// conditional, or a jump — so forcing jumps onto escapable blocks makes
// absorbing cycles impossible.
func (p *Program) pickCondTarget(self int32) int32 {
	for tries := 0; tries < 64; tries++ {
		t := p.pickTarget(self)
		if p.escapable(t) {
			return t
		}
	}
	// Degenerate profile (few stochastic branches): fall back to a
	// linear scan so construction still terminates.
	n := int32(len(p.blocks))
	for d := int32(1); d < n; d++ {
		if t := (self + d) % n; p.escapable(t) {
			return t
		}
	}
	return (self + 1) % n
}

// makeSlot samples one body instruction template.
func (p *Program) makeSlot() slotTemplate {
	prof := &p.prof
	r := p.rng.Float64()
	t := slotTemplate{kind: trace.ALU, streamID: -1}
	switch {
	case r < prof.LoadFrac:
		t.kind = trace.Load
	case r < prof.LoadFrac+prof.StoreFrac:
		t.kind = trace.Store
	case r < prof.LoadFrac+prof.StoreFrac+prof.MulFrac:
		t.kind = trace.Mul
	case r < prof.LoadFrac+prof.StoreFrac+prof.MulFrac+prof.FPUFrac:
		t.kind = trace.FPU
	}
	if t.kind == trace.Load || t.kind == trace.Store {
		m := p.rng.Float64()
		switch {
		case m < prof.RandomFrac:
			t.mem = memRandom
		case m < prof.RandomFrac+prof.StreamFrac:
			t.mem = memStream
			strides := [...]uint64{4, 4, 8, 8, 16}
			t.stride = strides[p.rng.Intn(len(strides))]
			t.streamID = int32(len(p.streams))
			t.base = p.rng.Uint64n(prof.WorkingSet) &^ 7
			p.streams = append(p.streams, 0)
		default:
			t.mem = memStack
		}
	}
	return t
}

// makeBranch samples one static conditional branch's behaviour and target.
func (p *Program) makeBranch(self int32) branchDesc {
	prof := &p.prof
	d := branchDesc{class: p.sampleClass()}
	switch d.class {
	case ClassLoop:
		d.period = prof.LoopMin + p.rng.Intn(prof.LoopMax-prof.LoopMin+1)
		d.takenTarget = self // back edge re-executes the loop body
	case ClassBiased:
		// Skew toward the strong end: real biased branches are nearly
		// always-taken guards and error checks, so sample 1-bias
		// quadratically small.
		u := p.rng.Float64()
		d.bias = prof.BiasHi - (prof.BiasHi-prof.BiasLo)*u*u
		if p.rng.Bool(0.5) {
			d.bias = 1 - d.bias
		}
	case ClassShortCorr:
		d.off1 = uint(prof.ShortOffMin + p.rng.Intn(prof.ShortOffMax-prof.ShortOffMin+1))
		d.invert = p.rng.Bool(0.5)
	case ClassLongCorr:
		d.off1 = uint(prof.LongOffMin + p.rng.Intn(prof.LongOffMax-prof.LongOffMin+1))
		d.invert = p.rng.Bool(0.5)
	case ClassLocalPattern:
		d.period = prof.LocalMin + p.rng.Intn(prof.LocalMax-prof.LocalMin+1)
		d.pattern = p.rng.Next() & (1<<uint(d.period) - 1)
	case ClassXorCorr:
		d.off1 = uint(prof.ShortOffMin + p.rng.Intn(prof.ShortOffMax-prof.ShortOffMin+1))
		d.off2 = d.off1 + 1 + uint(p.rng.Intn(8))
		d.invert = p.rng.Bool(0.5)
	case ClassRandom:
		d.bias = 0.5
	}
	return d
}

// sampleClass draws a branch class from the profile mix.
func (p *Program) sampleClass() BranchClass {
	var total float64
	for _, w := range p.prof.Mix {
		total += w
	}
	if total <= 0 {
		return ClassBiased
	}
	r := p.rng.Float64() * total
	for c, w := range p.prof.Mix {
		if r < w {
			return BranchClass(c)
		}
		r -= w
	}
	return ClassRandom
}

// pickTarget chooses a control-flow target block near the branch, the way
// compiled control flow stays within a function. Global movement between
// code regions happens through the phase scheduler (see Next), which models
// a program's outer loop sweeping its phases — without it, the fixed random
// CFG's stationary distribution collapses onto a small attractor and most
// static branches never execute.
func (p *Program) pickTarget(self int32) int32 {
	n := int32(len(p.blocks))
	d := int32(p.rng.Intn(49)) - 24
	t := self + d
	// Wrap into range.
	return (t%n + n) % n
}

// Name implements trace.Generator.
func (p *Program) Name() string { return p.prof.Name }

// Profile returns the generating profile.
func (p *Program) Profile() Profile { return p.prof }

// StaticBranches returns the number of static conditional branches.
func (p *Program) StaticBranches() int {
	n := 0
	for i := range p.blocks {
		if p.blocks[i].cond {
			n++
		}
	}
	return n
}

// CodeFootprint returns the static code size in bytes.
func (p *Program) CodeFootprint() uint64 {
	last := &p.blocks[len(p.blocks)-1]
	return last.brPC + 4 - codeBase
}

// Stats returns the dynamic instruction, conditional branch and taken
// counts emitted so far.
func (p *Program) Stats() (insts, branches, taken int64) {
	return p.insts, p.branches, p.taken
}

// pickSrc samples a source register: usually a recently produced value
// (short dependency distance), otherwise any architectural register.
func (p *Program) pickSrc() int8 {
	if p.destLen > 0 && p.rng.Bool(p.prof.DepNear) {
		back := 1 + p.rng.Intn(min(4, p.destLen))
		idx := (p.destHead - back + len(p.destRing)) % len(p.destRing)
		return p.destRing[idx]
	}
	return int8(p.rng.Intn(trace.NumRegs))
}

// nextDst allocates a destination register round-robin over the
// non-reserved registers and records it for dependency sampling.
func (p *Program) nextDst() int8 {
	d := int8(4 + p.regNext%28)
	p.regNext++
	p.destRing[p.destHead] = d
	p.destHead = (p.destHead + 1) % len(p.destRing)
	if p.destLen < len(p.destRing) {
		p.destLen++
	}
	return d
}

// address produces the effective address for a memory slot.
func (p *Program) address(t *slotTemplate) uint64 {
	switch t.mem {
	case memStream:
		c := p.streams[t.streamID]
		p.streams[t.streamID] = c + 1
		return heapBase + (t.base+c*t.stride)%p.prof.WorkingSet
	case memRandom:
		// Pointer-chasing references have an 80/20 shape in real
		// programs: half the "random" references land in a small hot
		// region (the frequently touched nodes), the rest scatter
		// over the full working set.
		if p.rng.Bool(0.5) {
			return heapBase + (p.rng.Uint64n(hotRegion) &^ 7)
		}
		return heapBase + (p.rng.Uint64n(p.prof.WorkingSet) &^ 7)
	default:
		return stackBase + (p.rng.Uint64n(stackSize) &^ 7)
	}
}

// outcome evaluates a conditional branch's generative model and advances its
// state.
func (p *Program) outcome(blockIdx int32, d *branchDesc) bool {
	var taken bool
	noisy := false
	switch d.class {
	case ClassLoop:
		c := p.loopCount[blockIdx] + 1
		if int(c) >= d.period {
			taken = false
			c = 0
		} else {
			taken = true
		}
		p.loopCount[blockIdx] = c
	case ClassBiased:
		// Two-state Markov model: the branch emits its majority
		// direction until it enters a short "rare run" of the minority
		// direction, as data-dependent branches do in real programs
		// (mispredictable events cluster). The stationary minority
		// fraction equals 1-bias, matching a plain biased coin, but
		// the clustering keeps global-history contexts recurrent
		// instead of fragmenting every window with isolated flips.
		q := 1 - d.bias
		majority := true
		if d.bias < 0.5 {
			majority = false
			q = d.bias
		}
		const stayRare = 0.5
		if p.rareRun[blockIdx] {
			if p.rng.Bool(stayRare) {
				taken = !majority
			} else {
				p.rareRun[blockIdx] = false
				taken = majority
			}
		} else {
			enterRare := stayRare * q / (1 - q)
			if p.rng.Bool(enterRare) {
				p.rareRun[blockIdx] = true
				taken = !majority
			} else {
				taken = majority
			}
		}
	case ClassRandom:
		taken = p.rng.Bool(d.bias)
	case ClassShortCorr, ClassLongCorr:
		taken = p.ghist>>(d.off1-1)&1 == 1
		noisy = true
	case ClassLocalPattern:
		pos := p.patPos[blockIdx]
		taken = d.pattern>>uint(pos)&1 == 1
		p.patPos[blockIdx] = (pos + 1) % int32(d.period)
		noisy = true
	case ClassXorCorr:
		taken = (p.ghist>>(d.off1-1)&1)^(p.ghist>>(d.off2-1)&1) == 1
		noisy = true
	}
	if d.invert {
		taken = !taken
	}
	if noisy && p.rng.Bool(p.prof.Noise) {
		taken = !taken
	}
	return taken
}

// Next implements trace.Generator. The stream never ends.
func (p *Program) Next(inst *trace.Inst) bool {
	b := &p.blocks[p.cur]
	if p.slot < len(b.slots) {
		t := &b.slots[p.slot]
		inst.PC = b.startPC + uint64(p.slot)*4
		inst.Kind = t.kind
		inst.Taken = false
		inst.Target = 0
		inst.Addr = 0
		switch t.kind {
		case trace.Load:
			inst.Addr = p.address(t)
			inst.Src1 = p.pickSrc()
			inst.Src2 = trace.NoReg
			inst.Dst = p.nextDst()
		case trace.Store:
			inst.Addr = p.address(t)
			inst.Src1 = p.pickSrc()
			inst.Src2 = p.pickSrc()
			inst.Dst = trace.NoReg
		default:
			inst.Src1 = p.pickSrc()
			inst.Src2 = p.pickSrc()
			inst.Dst = p.nextDst()
		}
		p.slot++
		p.insts++
		p.phaseBudget--
		return true
	}

	// Block terminator.
	inst.PC = b.brPC
	inst.Addr = 0
	inst.Dst = trace.NoReg
	if b.cond {
		taken := p.outcome(p.cur, &b.br)
		inst.Kind = trace.CondBranch
		inst.Src1 = p.pickSrc()
		inst.Src2 = p.pickSrc()
		inst.Taken = taken
		target := b.br.takenTarget
		if taken && b.br.class != ClassLoop && p.phaseBudget <= -phaseLen {
			target = p.nextPhase()
		}
		inst.Target = p.blocks[target].startPC
		p.ghist = p.ghist<<1 | b2u(taken)
		p.branches++
		if taken {
			p.taken++
			p.cur = target
		} else {
			p.cur = (p.cur + 1) % int32(len(p.blocks))
		}
	} else {
		target := b.jumpTarget
		if p.phaseBudget <= 0 {
			target = p.nextPhase()
		}
		inst.Kind = trace.Jump
		inst.Src1 = trace.NoReg
		inst.Src2 = trace.NoReg
		inst.Taken = true
		inst.Target = p.blocks[target].startPC
		p.cur = target
	}
	p.slot = 0
	p.insts++
	p.phaseBudget--
	return true
}

// NextBranches implements trace.BranchSource by filtering the live stream:
// the generator still synthesizes every instruction (its RNG state depends
// on all of them), but only the conditional branches cross the interface,
// in batches, with their stream positions. This is the straightforward
// adapter that lets a live Program and a recording's replay cursor serve
// the accuracy simulator's fast path interchangeably.
func (p *Program) NextBranches(dst []trace.BranchRec) int {
	var inst trace.Inst
	n := 0
	for n < len(dst) && p.Next(&inst) {
		if inst.Kind == trace.CondBranch {
			dst[n] = trace.BranchRec{InstIndex: p.insts - 1, PC: inst.PC, Taken: inst.Taken}
			n++
		}
	}
	return n
}

// InstsScanned implements trace.BranchSource: the instructions generated so
// far (the stream is infinite, so NextBranches never reports exhaustion).
func (p *Program) InstsScanned() int64 { return p.insts }

// nextPhase advances the phase scheduler and returns the next region's
// start block.
func (p *Program) nextPhase() int32 {
	p.regionIdx = (p.regionIdx + 1) % len(p.regionStarts)
	p.phaseBudget = phaseLen
	return p.regionStarts[p.regionIdx]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BranchClassName implements funcsim's optional classifier diagnostic: it
// reports the behaviour class of the static branch at pc.
func (p *Program) BranchClassName(pc uint64) (string, bool) {
	if p.classByPC == nil {
		p.classByPC = make(map[uint64]BranchClass, len(p.blocks))
		for i := range p.blocks {
			b := &p.blocks[i]
			if b.cond {
				p.classByPC[b.brPC] = b.br.class
			}
		}
	}
	c, ok := p.classByPC[pc]
	if !ok {
		return "", false
	}
	return c.String(), true
}
