package workload

import "branchsim/internal/trace"

// Record materializes a profile's deterministic stream: it instantiates the
// synthetic program and records its first maxInsts instructions. The
// recording is a pure function of (prof, maxInsts); replaying it is
// bit-identical to streaming a fresh New(prof), which the equivalence tests
// in internal/tracestore enforce.
func Record(prof Profile, maxInsts int64) *trace.Recording {
	return trace.Record(New(prof), maxInsts)
}

// branchClassifier mirrors funcsim.BranchClassifier without importing it.
type branchClassifier interface {
	BranchClassName(pc uint64) (string, bool)
}

// classifiedSource pairs a replayed stream with the profile's static branch
// index so per-class diagnostics keep working against replayed PCs.
type classifiedSource struct {
	trace.Source
	prog *Program
}

func (c *classifiedSource) BranchClassName(pc uint64) (string, bool) {
	return c.prog.BranchClassName(pc)
}

// Classify wraps src with prof's static-branch class index (used by
// funcsim's PerClass diagnostics). A live *Program classifies itself and is
// returned unchanged; a replay cursor gains the index from a freshly
// constructed program, whose static branches are identical because
// construction is deterministic in prof.Seed.
func Classify(src trace.Source, prof Profile) trace.Source {
	if _, ok := src.(branchClassifier); ok {
		return src
	}
	return &classifiedSource{Source: src, prog: New(prof)}
}
