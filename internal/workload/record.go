package workload

import "branchsim/internal/trace"

// Record materializes a profile's deterministic stream: it instantiates the
// synthetic program and records its first maxInsts instructions. The
// recording is a pure function of (prof, maxInsts); replaying it is
// bit-identical to streaming a fresh New(prof), which the equivalence tests
// in internal/tracestore enforce.
func Record(prof Profile, maxInsts int64) *trace.Recording {
	return trace.Record(New(prof), maxInsts)
}

// branchClassifier mirrors funcsim.BranchClassifier without importing it.
type branchClassifier interface {
	BranchClassName(pc uint64) (string, bool)
}

// classifiedSource pairs a replayed stream with the profile's static branch
// index so per-class diagnostics keep working against replayed PCs.
type classifiedSource struct {
	trace.Source
	prog *Program
}

func (c *classifiedSource) BranchClassName(pc uint64) (string, bool) {
	return c.prog.BranchClassName(pc)
}

// classifiedBranchSource additionally forwards the batch fast-path protocol
// so classification does not hide a replay cursor's branch index from the
// accuracy simulator.
type classifiedBranchSource struct {
	classifiedSource
	bs trace.BranchSource
}

func (c *classifiedBranchSource) NextBranches(dst []trace.BranchRec) int {
	return c.bs.NextBranches(dst)
}

func (c *classifiedBranchSource) InstsScanned() int64 { return c.bs.InstsScanned() }

// Classify wraps src with prof's static-branch class index (used by
// funcsim's PerClass diagnostics). A live *Program classifies itself and is
// returned unchanged; a replay cursor gains the index from a freshly
// constructed program, whose static branches are identical because
// construction is deterministic in prof.Seed. A src implementing
// trace.BranchSource keeps that protocol through the wrapper.
func Classify(src trace.Source, prof Profile) trace.Source {
	if _, ok := src.(branchClassifier); ok {
		return src
	}
	cs := classifiedSource{Source: src, prog: New(prof)}
	if bs, ok := src.(trace.BranchSource); ok {
		return &classifiedBranchSource{classifiedSource: cs, bs: bs}
	}
	return &cs
}
