package workload

import (
	"math"
	"testing"

	"branchsim/internal/trace"
)

// classStats runs a benchmark and collects per-class taken statistics —
// unit checks on the generative branch models themselves.
func classStats(t *testing.T, bench string, insts int) map[string]*struct{ taken, total int } {
	t.Helper()
	prof, ok := ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	p := New(prof)
	out := map[string]*struct{ taken, total int }{}
	var inst trace.Inst
	for i := 0; i < insts; i++ {
		p.Next(&inst)
		if inst.Kind != trace.CondBranch {
			continue
		}
		name, _ := p.BranchClassName(inst.PC)
		s := out[name]
		if s == nil {
			s = &struct{ taken, total int }{}
			out[name] = s
		}
		s.total++
		if inst.Taken {
			s.taken++
		}
	}
	return out
}

func TestRandomClassIsFair(t *testing.T) {
	stats := classStats(t, "twolf", 2_000_000)
	s := stats[ClassRandom.String()]
	if s == nil || s.total < 5000 {
		t.Fatal("random class underrepresented")
	}
	rate := float64(s.taken) / float64(s.total)
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("random class taken rate %.3f, want ~0.5", rate)
	}
}

func TestLoopClassMostlyTaken(t *testing.T) {
	stats := classStats(t, "gap", 2_000_000)
	s := stats[ClassLoop.String()]
	if s == nil || s.total < 1000 {
		t.Fatal("loop class underrepresented")
	}
	rate := float64(s.taken) / float64(s.total)
	// A loop of period p is taken (p-1)/p of executions; with periods in
	// [3,8] the aggregate sits well above 60%.
	if rate < 0.6 {
		t.Fatalf("loop class taken rate %.3f too low", rate)
	}
}

func TestBiasedClassMarkovRuns(t *testing.T) {
	// Rare outcomes of biased branches must cluster: the probability
	// that a rare outcome is followed by another rare outcome of the
	// same branch must be near the configured stay probability (0.5),
	// far above the per-visit rare rate.
	prof, _ := ByName("eon")
	p := New(prof)
	var inst trace.Inst
	lastOutcome := map[uint64]bool{}
	majority := map[uint64]int{} // taken count minus not-taken count proxy
	// First pass to learn each branch's majority direction.
	type rec struct {
		pc    uint64
		taken bool
	}
	var events []rec
	for i := 0; i < 3_000_000; i++ {
		p.Next(&inst)
		if inst.Kind != trace.CondBranch {
			continue
		}
		if name, _ := p.BranchClassName(inst.PC); name != ClassBiased.String() {
			continue
		}
		events = append(events, rec{inst.PC, inst.Taken})
		if inst.Taken {
			majority[inst.PC]++
		} else {
			majority[inst.PC]--
		}
	}
	var rareAfterRare, rareTransitions int
	seen := map[uint64]bool{}
	for _, e := range events {
		maj := majority[e.pc] > 0
		rare := e.taken != maj
		if seen[e.pc] {
			if lastOutcome[e.pc] != maj { // previous was rare
				rareTransitions++
				if rare {
					rareAfterRare++
				}
			}
		}
		seen[e.pc] = true
		lastOutcome[e.pc] = e.taken
	}
	if rareTransitions < 500 {
		t.Skip("too few rare events to measure clustering")
	}
	stay := float64(rareAfterRare) / float64(rareTransitions)
	if stay < 0.3 {
		t.Fatalf("rare outcomes do not cluster: P(rare|rare)=%.3f", stay)
	}
}

func TestShortCorrClassFollowsHistory(t *testing.T) {
	// For each short-corr branch, some history offset in its configured
	// range must (anti-)correlate with its outcome at roughly 1-noise.
	prof, _ := ByName("parser")
	p := New(prof)
	var inst trace.Inst
	var ghist uint64
	type perPC struct {
		agree [17]int
		total int
	}
	byPC := map[uint64]*perPC{}
	for i := 0; i < 2_000_000; i++ {
		p.Next(&inst)
		if inst.Kind == trace.CondBranch {
			if name, _ := p.BranchClassName(inst.PC); name == ClassShortCorr.String() {
				s := byPC[inst.PC]
				if s == nil {
					s = &perPC{}
					byPC[inst.PC] = s
				}
				for off := uint(1); off <= 16; off++ {
					if (ghist>>(off-1)&1 == 1) == inst.Taken {
						s.agree[off]++
					}
				}
				s.total++
			}
			if inst.Taken {
				ghist = ghist<<1 | 1
			} else {
				ghist = ghist << 1
			}
		}
	}
	checked, good := 0, 0
	for _, s := range byPC {
		if s.total < 200 {
			continue
		}
		checked++
		best := 0.0
		for off := uint(1); off <= 16; off++ {
			frac := float64(s.agree[off]) / float64(s.total)
			if anti := 1 - frac; anti > frac {
				frac = anti
			}
			if frac > best {
				best = frac
			}
		}
		if best >= 0.90 {
			good++
		}
	}
	if checked < 10 {
		t.Skip("too few well-sampled short-corr branches")
	}
	if float64(good) < 0.8*float64(checked) {
		t.Fatalf("only %d/%d short-corr branches show their correlation", good, checked)
	}
}

func TestPhaseSchedulerSweepsRegions(t *testing.T) {
	prof, _ := ByName("gcc")
	p := New(prof)
	var inst trace.Inst
	// Track which quarters of the code are visited over time windows.
	foot := p.CodeFootprint()
	quarter := func(pc uint64) int { return int((pc - 0x10000) * 4 / foot) }
	windowQuarters := map[int]map[int]bool{}
	const window = 200_000
	for i := 0; i < 1_600_000; i++ {
		p.Next(&inst)
		w := i / window
		if windowQuarters[w] == nil {
			windowQuarters[w] = map[int]bool{}
		}
		windowQuarters[w][quarter(inst.PC)] = true
	}
	// Across all windows, every quarter must be visited.
	all := map[int]bool{}
	for _, qs := range windowQuarters {
		for q := range qs {
			all[q] = true
		}
	}
	for q := 0; q < 4; q++ {
		if !all[q] {
			t.Fatalf("code quarter %d never visited — phase scheduler broken", q)
		}
	}
}
