package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},  // size not pow2
		{SizeBytes: 1024, LineBytes: 60, Ways: 2},  // line not pow2
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},  // no ways
		{SizeBytes: 64, LineBytes: 64, Ways: 2},    // too small
		{SizeBytes: -1024, LineBytes: 64, Ways: 2}, // negative
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated unexpectedly: %+v", i, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103F) {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if c.Access(0x1040) {
		t.Fatal("next line hit while cold")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 8 sets of 64B lines, direct mapped: addresses 512 bytes apart
	// conflict.
	c := New(Config{SizeBytes: 512, LineBytes: 64, Ways: 1})
	c.Access(0x0000)
	c.Access(0x0200) // evicts 0x0000
	if c.Access(0x0000) {
		t.Fatal("conflicting line survived in direct-mapped cache")
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set, 2 ways.
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0x0000) // A
	c.Access(0x1000) // B
	c.Access(0x0000) // touch A: B is now LRU
	c.Access(0x2000) // C evicts B
	if !c.Access(0x0000) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(0x1000) {
		t.Fatal("LRU line survived")
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Probe(0x4000) {
		t.Fatal("probe hit empty cache")
	}
	if c.Access(0x4000) {
		t.Fatal("probe must not have allocated")
	}
	if !c.Probe(0x4000) {
		t.Fatal("probe missed resident line")
	}
}

func TestStats(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 1})
	c.Access(0)
	c.Access(0)
	c.Access(64)
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
	if mr := c.MissRate(); mr < 0.66 || mr > 0.67 {
		t.Fatalf("miss rate %v", mr)
	}
}

func TestEvictionCount(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Access(0x0000)
	c.Access(0x0080) // same set (2 sets: bit 6 selects), 0x80 -> set 0? line 2 -> set 0
	c.Access(0x0100)
	_, _, ev := c.Stats()
	if ev == 0 {
		t.Fatal("no evictions counted after conflicting fills")
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set equal to the cache size must eventually hit ~100%
	// in a fully associative arrangement; with 4 ways and round-robin
	// touching it still must hit on the second pass.
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 64})
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			hit := c.Access(addr)
			if pass == 1 && !hit {
				t.Fatalf("resident working set missed at %#x", addr)
			}
		}
	}
}

func TestPropertyRepeatedAccessHits(t *testing.T) {
	c := New(Config{SizeBytes: 8192, LineBytes: 64, Ways: 4})
	f := func(addr uint64) bool {
		addr &= 0xFFFFFF
		c.Access(addr)
		return c.Access(addr) // immediate re-access must hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLineBytes(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 128, Ways: 2})
	if c.LineBytes() != 128 {
		t.Fatalf("LineBytes = %d", c.LineBytes())
	}
}
