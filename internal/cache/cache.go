// Package cache implements the set-associative cache models the timing
// simulator uses for the L1 instruction cache, L1 data cache and unified L2
// of Table 1. The simulator is trace-driven, so the caches track presence
// and recency only — no data — and report hits and misses; latencies are the
// pipeline's business.
package cache

import (
	"fmt"
	"strings"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity (power of two).
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Ways is the associativity (1 = direct mapped).
	Ways int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d not positive", c.Ways)
	case c.SizeBytes < c.LineBytes*c.Ways:
		return fmt.Errorf("cache: size %d too small for %d ways of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       Config
	tags      []uint64 // sets × ways; 0 means invalid (tag values are offset by 1)
	lru       []uint32 // per-line recency stamp
	stamp     uint32
	setShift  uint
	setMask   uint64
	hits      int64
	misses    int64
	evictions int64
}

// New returns an empty cache with the given configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		// Validate's errors are already "cache: "-prefixed; strip before
		// re-prefixing so the panic message carries it exactly once.
		panic("cache: invalid configuration: " + strings.TrimPrefix(err.Error(), "cache: "))
	}
	sets := cfg.Sets()
	var shift uint
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		tags:     make([]uint64, sets*cfg.Ways),
		lru:      make([]uint32, sets*cfg.Ways),
		setShift: shift,
		setMask:  uint64(sets - 1),
	}
}

// Access looks up addr, allocating its line on a miss, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line + 1 // offset by 1 so 0 stays "invalid"
	base := set * c.cfg.Ways
	c.stamp++
	victim, victimStamp := base, c.lru[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.lru[i] = c.stamp
			c.hits++
			return true
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = i, c.lru[i]
		}
	}
	c.misses++
	if c.tags[victim] != 0 {
		c.evictions++
	}
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return false
}

// Probe looks up addr without allocating and reports whether it would hit.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line + 1
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// MissRate returns misses over accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
