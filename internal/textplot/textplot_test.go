package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:     "demo",
		RowHeader: "budget",
		Rows:      []string{"16K", "32K"},
		Cols:      []string{"a", "b"},
		Values:    [][]float64{{1.5, 2.5}, {3.5, 4.5}},
	}
	out := tab.Render()
	for _, want := range []string{"demo", "budget", "16K", "32K", "1.500", "4.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestTableNaNRendersDash(t *testing.T) {
	tab := &Table{
		Rows:   []string{"r"},
		Cols:   []string{"c"},
		Values: [][]float64{{math.NaN()}},
	}
	if !strings.Contains(tab.Render(), "-") {
		t.Fatal("NaN did not render as dash")
	}
}

func TestTableCustomFormat(t *testing.T) {
	tab := &Table{
		Rows:   []string{"r"},
		Cols:   []string{"c"},
		Values: [][]float64{{7}},
		Format: "%3.0f",
	}
	if !strings.Contains(tab.Render(), "  7") {
		t.Fatalf("custom format ignored:\n%s", tab.Render())
	}
}

func TestTableHeaderAlignment(t *testing.T) {
	tab := &Table{
		RowHeader: "x",
		Rows:      []string{"verylongrowlabel"},
		Cols:      []string{"col"},
		Values:    [][]float64{{1}},
	}
	lines := strings.Split(strings.TrimRight(tab.Render(), "\n"), "\n")
	// Column positions must line up: the value column starts at the same
	// offset in both lines.
	if len(lines[0]) < len("verylongrowlabel") {
		t.Fatal("header row not padded to row label width")
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "ipc",
		X:      []string{"16K", "32K", "64K"},
		XLabel: "budget",
		YLabel: "IPC",
		Series: []Series{
			{Name: "fast", Values: []float64{1.0, 1.1, 1.2}},
			{Name: "slow", Values: []float64{1.2, 1.1, 1.0}},
		},
	}
	out := c.Render()
	for _, want := range []string{"ipc", "fast", "slow", "16K", "64K", "*", "o", "budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartExtremesPlacement(t *testing.T) {
	c := &Chart{
		X:      []string{"a", "b"},
		Series: []Series{{Name: "s", Values: []float64{0, 10}}},
		Height: 10,
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	// The high value (10) must appear near the top, the low near the
	// bottom.
	top := -1
	bottom := -1
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if top == -1 {
				top = i
			}
			bottom = i
		}
	}
	if top == -1 || bottom-top < 5 {
		t.Fatalf("marks not spread vertically (rows %d..%d):\n%s", top, bottom, out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := &Chart{X: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{math.NaN()}}}}
	if c.Render() == "" {
		t.Fatal("empty chart rendered nothing")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{X: []string{"a", "b"}, Series: []Series{{Name: "s", Values: []float64{2, 2}}}}
	if !strings.Contains(c.Render(), "*") {
		t.Fatal("constant series dropped marks")
	}
}
