// Package textplot renders the experiment results as plain-text tables and
// line charts, standing in for the paper's figures in terminal output and
// in EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders a labelled grid of values.
type Table struct {
	// Title is printed above the table.
	Title string
	// RowHeader labels the row-key column.
	RowHeader string
	// Rows and Cols label the grid.
	Rows, Cols []string
	// Values is indexed [row][col]; NaN renders as "-".
	Values [][]float64
	// Format is the fmt verb for values, default "%8.3f".
	Format string
}

// Render returns the table as text.
func (t *Table) Render() string {
	format := t.Format
	if format == "" {
		format = "%8.3f"
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	rowW := len(t.RowHeader)
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for j, c := range t.Cols {
		w := len(fmt.Sprintf(format, 0.0))
		if len(c) > w {
			w = len(c)
		}
		colW[j] = w
	}
	fmt.Fprintf(&b, "%-*s", rowW, t.RowHeader)
	for j, c := range t.Cols {
		fmt.Fprintf(&b, "  %*s", colW[j], c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowW, r)
		for j := range t.Cols {
			var cell string
			if i < len(t.Values) && j < len(t.Values[i]) && !math.IsNaN(t.Values[i][j]) {
				cell = fmt.Sprintf(format, t.Values[i][j])
			} else {
				cell = "-"
			}
			fmt.Fprintf(&b, "  %*s", colW[j], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders one or more named series against shared x labels as an
// ASCII line chart, one mark per series.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
	// Height is the plot rows, default 16.
	Height int
}

// Series is one named line.
type Series struct {
	Name   string
	Values []float64
}

var marks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render returns the chart as text.
func (c *Chart) Render() string {
	height := c.Height
	if height <= 0 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	colStride := 6
	width := colStride*len(c.X) + 2
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for xi, v := range s.Values {
			if math.IsNaN(v) || xi >= len(c.X) {
				continue
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			col := xi*colStride + 2
			if row >= 0 && row < height && col < width {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, line := range grid {
		y := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s\n", y, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  ", "")
	for _, x := range c.X {
		fmt.Fprintf(&b, "%-*s", colStride, x)
	}
	b.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%10c = %s\n", marks[si%len(marks)], s.Name)
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s(x: %s, y: %s)\n", "", c.XLabel, c.YLabel)
	}
	return b.String()
}
