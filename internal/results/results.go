// Package results serializes experiment outcomes to JSON and compares two
// result files — the regression-tracking layer for the reproduction
// harness. A saved baseline lets calibration or refactoring work detect
// when a table or figure moved beyond tolerance.
package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"branchsim/internal/experiments"
)

// File is a set of serialized experiment outcomes plus run metadata.
type File struct {
	// Label identifies the run ("baseline-2026-07", "after-fix-123").
	Label string `json:"label,omitempty"`
	// Insts and Warmup are the per-benchmark instruction budgets used.
	Insts  int64 `json:"insts"`
	Warmup int64 `json:"warmup"`
	// Experiments holds the outcomes in run order.
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one serialized outcome.
type Experiment struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Tables []Table  `json:"tables"`
	Notes  []string `json:"notes,omitempty"`
}

// Table is one serialized result grid.
type Table struct {
	Title     string      `json:"title"`
	RowHeader string      `json:"rowHeader,omitempty"`
	Rows      []string    `json:"rows"`
	Cols      []string    `json:"cols"`
	Values    [][]float64 `json:"values"`
}

// FromOutcome converts an experiment outcome for serialization.
func FromOutcome(o *experiments.Outcome) Experiment {
	e := Experiment{ID: o.ID, Title: o.Title, Notes: o.Notes}
	for _, t := range o.Tables {
		e.Tables = append(e.Tables, Table{
			Title:     t.Title,
			RowHeader: t.RowHeader,
			Rows:      t.Rows,
			Cols:      t.Cols,
			Values:    t.Values,
		})
	}
	return e
}

// Save writes the file as indented JSON.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a result file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("results: parse %s: %w", path, err)
	}
	return &f, nil
}

// Diff is one cell-level difference between two runs.
type Diff struct {
	Experiment string
	Table      string
	Row, Col   string
	Old, New   float64
	// Rel is the relative change |new-old| / max(|old|, floor).
	Rel float64
}

// String renders a diff line.
func (d Diff) String() string {
	return fmt.Sprintf("%s / %s [%s, %s]: %.4f -> %.4f (%+.1f%%)",
		d.Experiment, d.Table, d.Row, d.Col, d.Old, d.New, 100*(d.New-d.Old)/math.Max(math.Abs(d.Old), 1e-9))
}

// Compare reports every cell whose relative change exceeds tol, plus
// structural differences (missing experiments/tables or shape changes) as
// diffs with NaN values. The relative change uses a small absolute floor so
// near-zero cells do not explode.
func Compare(old, new *File, tol float64) []Diff {
	const floor = 0.05
	var diffs []Diff
	oldByID := map[string]Experiment{}
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	for _, ne := range new.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			diffs = append(diffs, Diff{Experiment: ne.ID, Table: "(new experiment)", Old: math.NaN(), New: math.NaN()})
			continue
		}
		oldTables := map[string]Table{}
		for _, t := range oe.Tables {
			oldTables[t.Title] = t
		}
		for _, nt := range ne.Tables {
			ot, ok := oldTables[nt.Title]
			if !ok {
				diffs = append(diffs, Diff{Experiment: ne.ID, Table: nt.Title + " (new table)", Old: math.NaN(), New: math.NaN()})
				continue
			}
			if len(ot.Rows) != len(nt.Rows) || len(ot.Cols) != len(nt.Cols) {
				diffs = append(diffs, Diff{Experiment: ne.ID, Table: nt.Title + " (shape changed)", Old: math.NaN(), New: math.NaN()})
				continue
			}
			for i := range nt.Rows {
				for j := range nt.Cols {
					ov, nv := ot.Values[i][j], nt.Values[i][j]
					if math.IsNaN(ov) && math.IsNaN(nv) {
						continue
					}
					rel := math.Abs(nv-ov) / math.Max(math.Abs(ov), floor)
					if rel > tol {
						diffs = append(diffs, Diff{
							Experiment: ne.ID, Table: nt.Title,
							Row: nt.Rows[i], Col: nt.Cols[j],
							Old: ov, New: nv, Rel: rel,
						})
					}
				}
			}
		}
	}
	return diffs
}
