package results

import (
	"math"
	"path/filepath"
	"testing"

	"branchsim/internal/experiments"
	"branchsim/internal/textplot"
)

func sample(v float64) *File {
	return &File{
		Label: "test",
		Insts: 1000,
		Experiments: []Experiment{{
			ID:    "figure5",
			Title: "demo",
			Tables: []Table{{
				Title: "t1",
				Rows:  []string{"16K", "32K"},
				Cols:  []string{"a", "b"},
				Values: [][]float64{
					{1.0, 2.0},
					{3.0, v},
				},
			}},
		}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	f := sample(4.0)
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || got.Insts != 1000 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.Experiments[0].Tables[0].Values[1][1] != 4.0 {
		t.Fatal("values lost")
	}
}

func TestCompareIdentical(t *testing.T) {
	if diffs := Compare(sample(4), sample(4), 0.01); len(diffs) != 0 {
		t.Fatalf("identical files diff: %v", diffs)
	}
}

func TestCompareDetectsChange(t *testing.T) {
	diffs := Compare(sample(4), sample(5), 0.10)
	if len(diffs) != 1 {
		t.Fatalf("want 1 diff, got %v", diffs)
	}
	d := diffs[0]
	if d.Row != "32K" || d.Col != "b" || d.Old != 4 || d.New != 5 {
		t.Fatalf("wrong diff: %+v", d)
	}
	if d.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestCompareTolerance(t *testing.T) {
	// 4 -> 4.2 is a 5% change: inside a 10% tolerance, outside 2%.
	if diffs := Compare(sample(4), sample(4.2), 0.10); len(diffs) != 0 {
		t.Fatalf("within tolerance flagged: %v", diffs)
	}
	if diffs := Compare(sample(4), sample(4.2), 0.02); len(diffs) != 1 {
		t.Fatal("outside tolerance missed")
	}
}

func TestCompareStructural(t *testing.T) {
	old := sample(4)
	new := sample(4)
	new.Experiments[0].ID = "figure7"
	diffs := Compare(old, new, 0.01)
	if len(diffs) != 1 || !math.IsNaN(diffs[0].Old) {
		t.Fatalf("structural diff not reported: %v", diffs)
	}
}

func TestCompareShapeChange(t *testing.T) {
	old := sample(4)
	new := sample(4)
	new.Experiments[0].Tables[0].Rows = []string{"16K"}
	new.Experiments[0].Tables[0].Values = new.Experiments[0].Tables[0].Values[:1]
	diffs := Compare(old, new, 0.01)
	if len(diffs) != 1 {
		t.Fatalf("shape change not reported: %v", diffs)
	}
}

func TestFromOutcome(t *testing.T) {
	out := &experiments.Outcome{
		ID:    "x",
		Title: "y",
		Tables: []*textplot.Table{{
			Title:  "t",
			Rows:   []string{"r"},
			Cols:   []string{"c"},
			Values: [][]float64{{7}},
		}},
		Notes: []string{"n"},
	}
	e := FromOutcome(out)
	if e.ID != "x" || len(e.Tables) != 1 || e.Tables[0].Values[0][0] != 7 {
		t.Fatalf("conversion lost data: %+v", e)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
