// Package prof wires the standard runtime/pprof profilers into the
// command-line binaries. Both cmd/reproduce and cmd/bpsim expose
// -cpuprofile and -memprofile flags backed by Start, so a slow experiment
// grid can be profiled directly ("go tool pprof" on the output) without a
// benchmark harness around it.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for an allocation
// profile to be written to memPath; either path may be empty to skip that
// profile. The returned stop function finalizes both files and must be
// called before the process exits (defer it right after flag parsing).
// Errors at stop time are reported to stderr rather than returned, so a
// failed profile write never masks the run's own exit status.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			// An up-to-date heap profile needs the live set settled.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
