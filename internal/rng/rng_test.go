package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("streams diverge at %d: %x vs %x", i, x, y)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Pinned first outputs for seed 1234567: the workload streams depend
	// on these never changing across refactors or Go versions.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, // computed once and pinned: the streams must
		0x2c73f08458540fa5, // never change across refactors or Go versions
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d = %#x, want %#x (seed stream changed!)", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := NewXoshiro256(8)
	same := 0
	a2 := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 equal outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(1)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro256(99)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestUint64nInRange(t *testing.T) {
	x := NewXoshiro256(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := x.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	x := NewXoshiro256(5)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[x.Uint64n(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 5*math.Sqrt(n/buckets) {
			t.Fatalf("bucket %d count %d deviates too far from %d", b, c, n/buckets)
		}
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	x := NewXoshiro256(11)
	for i := 0; i < 10000; i++ {
		if v := x.Uint64n(1 << 20); v >= 1<<20 {
			t.Fatalf("power-of-two path out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	x := NewXoshiro256(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			x.Intn(n)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	x := NewXoshiro256(21)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
	if x.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !x.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestGeometricBounds(t *testing.T) {
	x := NewXoshiro256(33)
	for i := 0; i < 10000; i++ {
		g := x.Geometric(0.25, 16)
		if g < 1 || g > 16 {
			t.Fatalf("Geometric out of [1,16]: %d", g)
		}
	}
	if g := x.Geometric(0, 10); g != 1 {
		t.Fatalf("Geometric(0) = %d, want 1", g)
	}
}

func TestGeometricMean(t *testing.T) {
	x := NewXoshiro256(17)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(x.Geometric(0.5, 1000))
	}
	// Mean of a geometric with p=0.5 is 2.
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Geometric(0.5) mean %v, want ~2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(4)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		dst := make([]int, n)
		x.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSeedNotAbsorbing(t *testing.T) {
	x := NewXoshiro256(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if x.Next() == 0 {
			zero++
		}
	}
	if zero > 2 {
		t.Fatalf("seed 0 generator nearly stuck at zero (%d/100)", zero)
	}
}
