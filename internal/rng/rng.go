// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the synthetic workload models.
//
// The simulator must be bit-for-bit reproducible across runs and across
// machines: every benchmark stream is generated from a fixed seed, and the
// experiment harness relies on that determinism to compare predictors on
// identical streams. math/rand would work, but its generator changed across
// Go releases in the past; owning the generator pins the streams forever.
package rng

// SplitMix64 is the seed-expansion generator from Steele, Lea and Flood
// ("Fast splittable pseudorandom number generators", OOPSLA 2014). It is used
// both directly for simple streams and to seed Xoshiro256.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64 random bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna), a fast
// all-purpose generator with 256 bits of state and period 2^256-1.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed with
// SplitMix64, as the xoshiro authors recommend.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be absorbing; SplitMix64 cannot produce four
	// zero outputs in a row, but guard anyway so a hostile seed cannot wedge
	// the generator.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next 64 random bits.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if n
// is zero. Uses Lemire's multiply-shift rejection method.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Next() & (n - 1)
	}
	// Rejection sampling to avoid modulo bias.
	threshold := (-n) % n
	for {
		v := x.Next()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Bool returns true with probability p. p outside [0,1] saturates.
func (x *Xoshiro256) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {1, 2, ...}), clamped to at most max. It is used for
// run lengths in the workload models. p outside (0, 1] is treated as 1.
func (x *Xoshiro256) Geometric(p float64, max int) int {
	if p <= 0 || p >= 1 {
		return 1
	}
	n := 1
	for n < max && !x.Bool(p) {
		n++
	}
	return n
}

// Perm fills dst with a random permutation of [0, len(dst)).
func (x *Xoshiro256) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
