package delaymodel

import "testing"

func TestPaperAreaClaim(t *testing.T) {
	// §3.3.2: a 100 KB branch predictor consumes less than 2% of the
	// chip at the 90 nm SRAM density anchor.
	if frac := ChipFraction(100 << 10); frac >= 0.02 {
		t.Fatalf("100KB predictor = %.3f of chip, paper claims < 2%%", frac)
	}
	if frac := ChipFraction(100 << 10); frac <= 0 {
		t.Fatal("degenerate area fraction")
	}
}

func TestAreaScalesLinearly(t *testing.T) {
	a := AreaMM2(64 << 10)
	b := AreaMM2(128 << 10)
	if b < 1.9*a || b > 2.1*a {
		t.Fatalf("area not linear: %v -> %v", a, b)
	}
}

func TestAreaAnchor(t *testing.T) {
	// 52 Mbit of raw cell (no overhead) is 109 mm² by construction.
	raw := AreaMM2(52<<20/8) / ArrayOverhead
	if raw < 108 || raw > 110 {
		t.Fatalf("anchor broken: %v mm²", raw)
	}
}
