package delaymodel

import (
	"branchsim/internal/core"
	"branchsim/internal/predictor"
)

// QuickPredictorMaxEntries is the largest quick predictor the paper grants a
// single cycle: 2K entries, one doubling beyond the 1K-entry limit of the
// delay model, an explicitly optimistic assumption (§4.1.2).
const QuickPredictorMaxEntries = 2048

// ForPredictor returns the access latency in cycles of a concrete predictor
// under the paper's per-organization delay recipes. Predictors the model
// does not recognize fall back to a single-table estimate of their total
// size, which over-penalizes multi-bank designs — register new kinds here
// instead of relying on it.
func (m Model) ForPredictor(p predictor.Predictor) int {
	switch v := p.(type) {
	case *core.GShareFast:
		// Pipelined: the effective prediction latency is one cycle by
		// construction (§3.1). PHTReadCycles reports the hidden depth.
		return 1
	case *core.BiModeFast:
		// Also pipelined (§5 reorganization).
		return 1
	case *predictor.YAGS:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindBanked, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case *predictor.Perceptron:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindPerceptron, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case *predictor.MultiComponent:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindMultiTable, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case *predictor.GSkew2Bc:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindBanked, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case *predictor.EV6:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindMultiTable, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case *predictor.BiMode:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindBanked, LargestBytes: bytes, LargestEntrys: entries, Name: v.Name()})
	case predictor.DelayFootprint:
		bytes, entries := v.LargestTable()
		return m.Cycles(Spec{Kind: KindSingleTable, LargestBytes: bytes, LargestEntrys: entries, Name: p.Name()})
	default:
		return m.Cycles(Spec{Kind: KindSingleTable, LargestBytes: p.SizeBytes(), LargestEntrys: p.SizeBytes() * 4, Name: p.Name()})
	}
}

// PHTReadCycles returns the raw read latency of a PHT with the given number
// of 2-bit counters — the latency gshare.fast must pipeline over (its
// Config.Latency) and the latency a naive unpipelined gshare would expose.
func (m Model) PHTReadCycles(entries int) int {
	return m.TableCycles(entries*2/8, entries)
}
