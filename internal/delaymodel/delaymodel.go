// Package delaymodel estimates branch-predictor access latency in cycles,
// standing in for the modified CACTI 3.0 runs the paper uses (§4.1.5,
// Table 2). It is an analytic SRAM timing model expressed in fan-out-of-four
// inverter (FO4) delays, the technology-independent unit the paper's clock
// is specified in (8 FO4 per cycle: 6 of useful work + 2 of latch overhead,
// after Hrishikesh et al.).
//
// The model is calibrated against the paper's anchors rather than absolute
// silicon numbers:
//
//   - A 1K-entry PHT (256 B) is the largest table readable in a single
//     8-FO4 cycle (§2.5, citing Jiménez, Keckler and Lin, MICRO-33).
//   - Large predictor tables in the hundreds of kilobytes reach roughly
//     9-11 cycles (Table 2's 512 KB-832 KB rows).
//   - Branch-predictor tables decode deeper than same-size caches because
//     they have far more, far smaller entries (§2.3.1) — hence the
//     log2(entries) decoder term alongside the sqrt(bytes) wire term.
package delaymodel

import (
	"fmt"
	"math"
)

// ClockFO4 is the paper's aggressive clock period in FO4 delays (§4.1.2),
// corresponding to 3.5 GHz in 100 nm technology.
const ClockFO4 = 8.0

// Model holds the calibration constants of the analytic SRAM model. The zero
// value is unusable; use Default.
type Model struct {
	// BaseFO4 covers sense amps, output drive and latch setup.
	BaseFO4 float64
	// DecodeFO4PerBit is the decoder depth cost per doubling of entries.
	DecodeFO4PerBit float64
	// WireFO4PerSqrtByte is the word/bit-line flight cost, growing with
	// the physical side length of the array.
	WireFO4PerSqrtByte float64
	// ClockFO4 is the cycle time in FO4s.
	ClockFO4 float64
}

// Default is the calibrated model used throughout the repository. With these
// constants a 256 B, 1K-entry PHT costs 7.3 FO4 (just under one cycle), a
// 128 KB table costs about 5 cycles, and a 512 KB table about 9 — matching
// the paper's anchors.
var Default = Model{
	BaseFO4:            2.0,
	DecodeFO4PerBit:    0.40,
	WireFO4PerSqrtByte: 0.084,
	ClockFO4:           ClockFO4,
}

// AccessFO4 returns the access time, in FO4 delays, of an SRAM table holding
// the given number of independently addressed entries in the given number of
// bytes.
func (m Model) AccessFO4(bytes, entries int) float64 {
	if bytes <= 0 || entries <= 0 {
		return m.BaseFO4
	}
	return m.BaseFO4 +
		m.DecodeFO4PerBit*math.Log2(float64(entries)) +
		m.WireFO4PerSqrtByte*math.Sqrt(float64(bytes))
}

// CyclesFor converts an FO4 delay into whole clock cycles (minimum 1).
func (m Model) CyclesFor(fo4 float64) int {
	c := int(math.Ceil(fo4 / m.ClockFO4))
	if c < 1 {
		c = 1
	}
	return c
}

// TableCycles returns the access latency in cycles of a single SRAM table.
func (m Model) TableCycles(bytes, entries int) int {
	return m.CyclesFor(m.AccessFO4(bytes, entries))
}

// PredictorKind distinguishes the structural delay recipes of §4.1.5.
type PredictorKind int

// Recipes for each predictor organization the paper simulates.
const (
	// KindSingleTable: one PHT read plus negligible output logic
	// (bimodal, gshare, gselect, and the row-read stage of gshare.fast).
	KindSingleTable PredictorKind = iota
	// KindBanked: parallel equal banks plus one fan-in-four mux FO4 for
	// the majority/choice network (2Bc-gskew; also bi-mode). The paper
	// optimistically charges complex predictors a single FO4 of
	// computation (§4.1.5).
	KindBanked
	// KindMultiTable: parallel unequal tables plus one FO4 of selection
	// (multi-component hybrid, EV6 tournament).
	KindMultiTable
	// KindPerceptron: table read plus a full extra cycle for the dot
	// product adder tree — the paper's optimistic estimate for logic the
	// authors themselves place at two or more cycles (§4.1.5).
	KindPerceptron
)

// Spec describes a predictor to the delay model: the bytes and entry count
// of its largest table component, its kind, and the total budget (used only
// for reporting).
type Spec struct {
	Kind          PredictorKind
	LargestBytes  int
	LargestEntrys int
	Name          string
}

const computeMuxFO4 = 1.0

// Cycles returns the predictor's access latency in cycles under the paper's
// optimistic assumptions.
func (m Model) Cycles(s Spec) int {
	fo4 := m.AccessFO4(s.LargestBytes, s.LargestEntrys)
	switch s.Kind {
	case KindSingleTable:
		return m.CyclesFor(fo4)
	case KindBanked, KindMultiTable:
		return m.CyclesFor(fo4 + computeMuxFO4)
	case KindPerceptron:
		return m.CyclesFor(fo4) + 1
	default:
		panic(fmt.Sprintf("delaymodel: unknown predictor kind %d", s.Kind))
	}
}

// SingleCycleEntries returns the largest power-of-two PHT entry count
// readable in a single cycle — the paper's headline constraint that future
// single-cycle pattern history tables top out at 1K entries (§2.5).
func (m Model) SingleCycleEntries() int {
	entries := 1
	for {
		next := entries * 2
		bytes := next * 2 / 8
		if m.TableCycles(bytes, next) > 1 {
			return entries
		}
		entries = next
	}
}
