package delaymodel

import (
	"testing"
	"testing/quick"

	"branchsim/internal/core"
	"branchsim/internal/predictor"
)

func TestPaperAnchorSingleCycle1K(t *testing.T) {
	// §2.5: the largest PHT readable in a single 8-FO4 cycle is 1K
	// entries.
	if got := Default.SingleCycleEntries(); got != 1024 {
		t.Fatalf("single-cycle PHT = %d entries, want 1024", got)
	}
}

func TestPaperAnchorLargeTables(t *testing.T) {
	// Table 2's large design points land near 9-11 cycles.
	c := Default.TableCycles(512<<10, 2<<20)
	if c < 8 || c > 12 {
		t.Fatalf("512KB PHT = %d cycles, want ~9-11", c)
	}
}

func TestMonotoneInSize(t *testing.T) {
	prev := 0
	for bytes := 256; bytes <= 1<<20; bytes *= 2 {
		c := Default.TableCycles(bytes, bytes*4)
		if c < prev {
			t.Fatalf("latency decreased at %d bytes: %d < %d", bytes, c, prev)
		}
		prev = c
	}
}

func TestDecoderCostEntriesMatter(t *testing.T) {
	// §2.3.1: at equal size, a table with more (smaller) entries decodes
	// deeper and must not be faster.
	coarse := Default.AccessFO4(4096, 128) // cache-like: 32B lines
	fine := Default.AccessFO4(4096, 16384) // PHT: 2-bit entries
	if fine <= coarse {
		t.Fatalf("PHT decode (%f) should exceed cache decode (%f)", fine, coarse)
	}
}

func TestPerceptronExtraCycle(t *testing.T) {
	spec := Spec{Kind: KindSingleTable, LargestBytes: 16 << 10, LargestEntrys: 64 << 10}
	base := Default.Cycles(spec)
	spec.Kind = KindPerceptron
	if got := Default.Cycles(spec); got != base+1 {
		t.Fatalf("perceptron compute cycle missing: %d vs base %d", got, base)
	}
}

func TestCyclesMinimumOne(t *testing.T) {
	if got := Default.TableCycles(8, 32); got != 1 {
		t.Fatalf("tiny table = %d cycles", got)
	}
}

func TestCyclesForProperty(t *testing.T) {
	f := func(raw uint16) bool {
		fo4 := float64(raw) / 16
		c := Default.CyclesFor(fo4)
		return c >= 1 && float64(c)*Default.ClockFO4 >= fo4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForPredictorRecipes(t *testing.T) {
	// gshare.fast reports a single effective cycle regardless of size.
	g := core.New(core.Config{Entries: 1 << 21, Latency: 9})
	if got := Default.ForPredictor(g); got != 1 {
		t.Fatalf("gshare.fast effective latency = %d, want 1", got)
	}
	// The perceptron is the slowest organization at matched budget.
	perc := predictor.NewPerceptronFromBudget(256 << 10)
	gsk := predictor.NewGSkew2BcFromBudget(256 << 10)
	if Default.ForPredictor(perc) <= Default.ForPredictor(gsk) {
		t.Fatalf("perceptron (%d) should be slower than 2bc-gskew (%d)",
			Default.ForPredictor(perc), Default.ForPredictor(gsk))
	}
}

func TestForPredictorGrowsWithBudget(t *testing.T) {
	for _, mk := range []func(int) predictor.Predictor{
		func(b int) predictor.Predictor { return predictor.NewPerceptronFromBudget(b) },
		func(b int) predictor.Predictor { return predictor.NewMultiComponentFromBudget(b) },
		func(b int) predictor.Predictor { return predictor.NewGSkew2BcFromBudget(b) },
	} {
		small := Default.ForPredictor(mk(16 << 10))
		large := Default.ForPredictor(mk(512 << 10))
		if large <= small {
			t.Errorf("%s: latency did not grow with budget (%d -> %d)",
				mk(16<<10).Name(), small, large)
		}
		if small < 2 {
			t.Errorf("%s: complex predictor at 16KB should already be multi-cycle, got %d",
				mk(16<<10).Name(), small)
		}
	}
}

func TestPHTReadCycles(t *testing.T) {
	if got := Default.PHTReadCycles(1024); got != 1 {
		t.Fatalf("1K-entry PHT read = %d cycles", got)
	}
	if got := Default.PHTReadCycles(2 << 20); got < 8 {
		t.Fatalf("2M-entry PHT read = %d cycles, want >= 8", got)
	}
}

func TestQuickPredictorAssumption(t *testing.T) {
	// The paper's quick predictor (2K entries) is one doubling beyond
	// the single-cycle limit — the model must say 2 cycles, documenting
	// that the paper's single-cycle quick predictor is optimistic.
	if got := Default.PHTReadCycles(QuickPredictorMaxEntries); got != 2 {
		t.Fatalf("2K-entry PHT = %d cycles (the optimistic assumption is exactly one doubling)", got)
	}
}
