package delaymodel

// Area estimation, standing in for the paper's §3.3.2 feasibility argument:
// Intel's 90 nm announcement put 52 Mbit of SRAM cell array in 109 mm²
// (§3.3.2 cites the press release), and the paper argues a ~100 KB branch
// predictor would consume under 2% of a contemporary chip.

// SRAMCellMM2PerMbit is the 90 nm SRAM density anchor: 109 mm² for 52 Mbit
// of raw cell array.
const SRAMCellMM2PerMbit = 109.0 / 52.0

// ArrayOverhead multiplies raw cell area to account for decoders, sense
// amplifiers and wiring; prediction tables are denser than caches (no tag
// arrays in the PHTs), so a modest 1.5x is used.
const ArrayOverhead = 1.5

// ChipAreaMM2 is the reference die size class for the fraction estimate:
// high-performance processors of the paper's horizon were 150-250 mm²
// (the EV8 class this paper's predictors target).
const ChipAreaMM2 = 180.0

// AreaMM2 estimates the silicon area of a predictor table of the given
// byte size at the 90 nm anchor.
func AreaMM2(bytes int) float64 {
	mbit := float64(bytes) * 8 / (1 << 20)
	return mbit * SRAMCellMM2PerMbit * ArrayOverhead
}

// ChipFraction returns a predictor's estimated share of the reference die.
func ChipFraction(bytes int) float64 {
	return AreaMM2(bytes) / ChipAreaMM2
}
