// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming rate counters and the arithmetic and harmonic means
// the paper reports (arithmetic for misprediction rates, harmonic for IPC).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Rate counts events against a base population (e.g. mispredictions against
// predicted branches).
type Rate struct {
	Events int64
	Total  int64
}

// Add records one observation; hit marks it as an event.
func (r *Rate) Add(hit bool) {
	r.Total++
	if hit {
		r.Events++
	}
}

// AddN records n observations of which events were hits.
func (r *Rate) AddN(events, n int64) {
	r.Events += events
	r.Total += n
}

// Value returns events/total, or 0 for an empty rate.
func (r *Rate) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Events) / float64(r.Total)
}

// Percent returns the rate as a percentage.
func (r *Rate) Percent() float64 { return 100 * r.Value() }

// String renders the rate as "events/total (pp.pp%)".
func (r *Rate) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Events, r.Total, r.Percent())
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. The paper reports IPC as a
// harmonic mean over benchmarks, which weights each benchmark by equal work.
// It returns 0 for an empty slice and panics on non-positive values, which
// have no harmonic mean.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: harmonic mean of non-positive value %g", x))
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// GeometricMean returns the geometric mean of xs, used by some ablation
// reports. It returns 0 for an empty slice and panics on non-positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (average of the two central elements for
// even lengths). It does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Histogram is a fixed-bucket counting histogram for integer observations,
// used for pipeline-occupancy and run-length diagnostics.
type Histogram struct {
	Buckets []int64
	Over    int64 // observations beyond the last bucket
	Count   int64
	Sum     int64
}

// NewHistogram returns a histogram with n buckets covering values 0..n-1.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{Buckets: make([]int64, n)}
}

// Add records one observation of value v (negative values count as 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += int64(v)
	if v >= len(h.Buckets) {
		h.Over++
		return
	}
	h.Buckets[v]++
}

// Mean returns the mean observation value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns the smallest bucket value v such that at least p (0..1)
// of the observations are <= v. Observations beyond the last bucket report
// len(Buckets).
func (h *Histogram) Percentile(p float64) int {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.Count)))
	var cum int64
	for v, c := range h.Buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.Buckets)
}
