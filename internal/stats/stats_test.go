package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRate(t *testing.T) {
	var r Rate
	if r.Value() != 0 {
		t.Fatal("empty rate should be 0")
	}
	r.Add(true)
	r.Add(false)
	r.Add(false)
	r.Add(true)
	if r.Value() != 0.5 || r.Percent() != 50 {
		t.Fatalf("rate = %v", r.Value())
	}
	r.AddN(2, 4)
	if r.Events != 4 || r.Total != 8 {
		t.Fatalf("AddN: %d/%d", r.Events, r.Total)
	}
	if r.String() != "4/8 (50.00%)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(nil) != 0 {
		t.Fatal("empty harmonic mean")
	}
	got := HarmonicMean([]float64{1, 2, 4})
	want := 3.0 / (1 + 0.5 + 0.25)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("harmonic = %v, want %v", got, want)
	}
}

func TestHarmonicMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero value")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestMeanInequalities(t *testing.T) {
	// For positive values: harmonic <= geometric <= arithmetic.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		h, g, a := HarmonicMean(xs), GeometricMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= a+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeansOfConstant(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	for name, got := range map[string]float64{
		"arithmetic": Mean(xs),
		"harmonic":   HarmonicMean(xs),
		"geometric":  GeometricMean(xs),
	} {
		if math.Abs(got-3) > 1e-12 {
			t.Errorf("%s mean of constant 3 = %v", name, got)
		}
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("median mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for v := 0; v < 10; v++ {
		h.Add(v)
	}
	h.Add(50) // overflow bucket
	h.Add(-3) // clamps to 0
	if h.Count != 12 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Over != 1 {
		t.Fatalf("over = %d", h.Over)
	}
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if p := h.Percentile(0.5); p < 4 || p > 6 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 10 {
		t.Fatalf("p100 with overflow = %d, want len(buckets)", p)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	h.Add(10)
	h.Add(20)
	if h.Mean() != 15 {
		t.Fatalf("mean = %v", h.Mean())
	}
}
