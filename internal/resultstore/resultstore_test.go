package resultstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
)

func testKey(bench string) Key {
	return Key{
		Family:  "timing",
		Kind:    "gshare",
		Org:     "ideal",
		Budget:  8192,
		Bench:   bench,
		Seed:    1,
		Insts:   400_000,
		Warmup:  100_000,
		Machine: "{FetchWidth:3 ...}", // stand-in; real callers pass Config.Canonical
		Trace:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
	}
}

func testRecord(key Key) Record {
	return Record{
		Key: key,
		Timing: &pipeline.Result{
			Workload:     key.Bench,
			Predictor:    "gshare",
			Insts:        300_000,
			Cycles:       123_457,
			Branches:     40_001,
			Mispredicts:  2_173,
			OverrideRate: 0.012345678901234567,
			BTBMissRate:  0.0625,
			L1IMissRate:  0.001953125,
			L1DMissRate:  0.0371,
			L2MissRate:   0.25,
		},
	}
}

// TestCanonicalGolden pins the canonical key string: the content address of
// every stored cell. Changing it silently would orphan every existing store
// entry, so it must be a deliberate, visible act.
func TestCanonicalGolden(t *testing.T) {
	k := Key{
		Family: "accuracy", Kind: "bimode", Org: "lag64", Budget: 2048,
		Bench: "164.gzip", Seed: 7, Insts: 150_000, Warmup: 30_000,
		SimOptions: "blocks.fw8.bb4", Machine: "", Trace: "aa55",
	}
	const want = "family=accuracy|kind=bimode|org=lag64|budget=2048|bench=164.gzip|seed=7|insts=150000|warmup=30000|sim=blocks.fw8.bb4|machine=|trace=aa55"
	if got := k.Canonical(); got != want {
		t.Fatalf("canonical key drifted:\n got %q\nwant %q", got, want)
	}
}

// TestColdThenWarm proves the fundamental contract: a cold cell computes and
// writes; a second store over the same directory — a fresh process, as far as
// the store can tell — serves the identical record without computing.
func TestColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	key := testKey("164.gzip")
	want := testRecord(key)

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	got := s1.Do(key, func() Record { computes.Add(1); return want })
	if computes.Load() != 1 {
		t.Fatalf("cold cell computed %d times, want 1", computes.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cold Do returned %+v, want %+v", got, want)
	}
	if st := s1.Stats(); st.Misses != 1 || st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 1 miss, 1 write", st)
	}

	// Same store: in-memory flight serves, no second disk read or compute.
	s1.Do(key, func() Record { computes.Add(1); return want })
	if computes.Load() != 1 {
		t.Fatal("warm in-process Do recomputed")
	}

	// Fresh store over the same dir: must load, bit-identical.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2 := s2.Do(key, func() Record {
		t.Error("warm cross-process Do recomputed")
		return Record{}
	})
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("warm Do returned %+v, want %+v", got2, want)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 || st.Invalidations != 0 {
		t.Fatalf("warm stats = %+v, want 1 hit", st)
	}
}

// TestFloatRoundTrip proves the JSON layer is bit-exact for the float64
// fields results carry: Go marshals shortest-round-trip representations, so
// a loaded record equals the stored one to the last bit.
func TestFloatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey("175.vpr")
	want := testRecord(key)
	want.Timing.L2MissRate = 0.1 + 0.2 // 0.30000000000000004: the classic non-representable sum
	want.Timing.OverrideRate = 1.0 / 3.0

	s1, _ := Open(dir)
	s1.Do(key, func() Record { return want })
	s2, _ := Open(dir)
	got := s2.Do(key, func() Record { t.Fatal("recompute"); return Record{} })
	if got.Timing.L2MissRate != want.Timing.L2MissRate || got.Timing.OverrideRate != want.Timing.OverrideRate {
		t.Fatalf("float drift through store: %v/%v vs %v/%v",
			got.Timing.L2MissRate, got.Timing.OverrideRate,
			want.Timing.L2MissRate, want.Timing.OverrideRate)
	}
}

// TestAccuracyFamily round-trips the funcsim payload, including a nil
// ClassRates map (the experiment-path shape).
func TestAccuracyFamily(t *testing.T) {
	dir := t.TempDir()
	key := testKey("181.mcf")
	key.Family = "accuracy"
	key.Machine = ""
	want := Record{Key: key, Accuracy: &funcsim.Result{
		Predictor: "bimode", Workload: "181.mcf", Insts: 150_000,
		Branches: 20_000, Mispredicts: 1_111, TakenRate: 0.625, PredSizeByte: 2048,
	}}
	s1, _ := Open(dir)
	s1.Do(key, func() Record { return want })
	s2, _ := Open(dir)
	got := s2.Do(key, func() Record { t.Fatal("recompute"); return Record{} })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accuracy record drifted: %+v vs %+v", got, want)
	}
}

// cellFile locates the single .cell file the store wrote for key.
func cellFile(t *testing.T, s *Store, key Key) string {
	t.Helper()
	path := s.path(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected cell file at %s: %v", path, err)
	}
	return path
}

// corruptAndRecover writes a store entry, applies corrupt to the cell file,
// and asserts a fresh store treats it as an invalidation: recompute, serve
// the fresh record, and rewrite a now-valid entry.
func corruptAndRecover(t *testing.T, corrupt func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	key := testKey("164.gzip")
	want := testRecord(key)
	s1, _ := Open(dir)
	s1.Do(key, func() Record { return want })
	corrupt(t, cellFile(t, s1, key))

	s2, _ := Open(dir)
	var computes atomic.Int64
	got := s2.Do(key, func() Record { computes.Add(1); return want })
	if computes.Load() != 1 {
		t.Fatalf("invalid cell computed %d times, want 1", computes.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered record = %+v, want %+v", got, want)
	}
	if st := s2.Stats(); st.Invalidations != 1 || st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("recovery stats = %+v, want 1 invalidation + 1 write", st)
	}

	// The rewrite must have restored a fully valid entry.
	s3, _ := Open(dir)
	s3.Do(key, func() Record { t.Error("rewritten cell still invalid"); return Record{} })
	if st := s3.Stats(); st.Hits != 1 {
		t.Fatalf("post-rewrite stats = %+v, want 1 hit", st)
	}
}

func TestTruncatedCell(t *testing.T) {
	corruptAndRecover(t, func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptedBodyCell(t *testing.T) {
	corruptAndRecover(t, func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-2] ^= 0x01 // flip one bit in the JSON body
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestWrongVersionCell(t *testing.T) {
	corruptAndRecover(t, func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		text := strings.Replace(string(raw), cellMagic, "BPCELL0", 1)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEmptyCell(t *testing.T) {
	corruptAndRecover(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestKeyMismatchCell plants a validly framed record under the wrong content
// address (a hash collision could only arise from a bug or tampering); the
// stored-key check must reject it rather than serve another cell's result.
func TestKeyMismatchCell(t *testing.T) {
	dir := t.TempDir()
	other := testKey("181.mcf")
	victim := testKey("164.gzip")
	s1, _ := Open(dir)
	s1.Do(other, func() Record { return testRecord(other) })
	src := cellFile(t, s1, other)
	dst := s1.path(victim)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := Open(dir)
	want := testRecord(victim)
	got := s2.Do(victim, func() Record { return want })
	if got.Timing.Workload != "164.gzip" {
		t.Fatalf("served another cell's record: %+v", got)
	}
	if st := s2.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation", st)
	}
}

// TestMismatchedFamilyPayload rejects records whose payload shape disagrees
// with having exactly one result.
func TestMismatchedFamilyPayload(t *testing.T) {
	corruptAndRecover(t, func(t *testing.T, path string) {
		// Re-frame a record with both payloads nil but a valid digest: the
		// decode layer must still reject it.
		key := testKey("164.gzip")
		rec := Record{Key: key}
		s := &Store{dir: filepath.Dir(filepath.Dir(path)), flights: map[string]*flight{}}
		s.write(key, rec)
	})
}

// TestConcurrentColdCoalesce hammers one cold cell from many goroutines; the
// singleflight must run compute exactly once and hand every caller the same
// record. Run under -race by check.sh.
func TestConcurrentColdCoalesce(t *testing.T) {
	dir := t.TempDir()
	key := testKey("164.gzip")
	want := testRecord(key)
	s, _ := Open(dir)
	var computes atomic.Int64
	var wg sync.WaitGroup
	const callers = 16
	got := make([]Record, callers)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = s.Do(key, func() Record {
				computes.Add(1)
				return want
			})
		}(i)
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("cold cell computed %d times under contention, want 1", computes.Load())
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("caller %d got %+v, want %+v", i, got[i], want)
		}
	}
	if st := s.Stats(); st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss + 1 write", st)
	}
}

// TestUnwritableStoreDegrades proves write failures are contained: results
// still flow, errors are counted, nothing panics.
func TestUnwritableStoreDegrades(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	key := testKey("164.gzip")
	want := testRecord(key)
	got := s.Do(key, func() Record { return want })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unwritable store corrupted result: %+v", got)
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 {
		t.Fatalf("stats = %+v, want 1 write error", st)
	}
}

// TestShardedLayout pins the two-level fan-out so a store directory never
// collapses into one flat dir of thousands of files.
func TestShardedLayout(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := testKey("164.gzip")
	s.Do(key, func() Record { return testRecord(key) })
	rel, err := filepath.Rel(dir, cellFile(t, s, key))
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(rel, string(filepath.Separator))
	if len(parts) != 2 || len(parts[0]) != 2 || !strings.HasSuffix(parts[1], ".cell") {
		t.Fatalf("unexpected cell layout %q, want <2-hex>/<hash>.cell", rel)
	}
}
