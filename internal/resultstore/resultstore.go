// Package resultstore is the persistent tier of the experiment grid's
// memo stack: a disk-backed, content-addressed store of simulated cell
// results. The in-memory memos (internal/experiments' TimingMemo and
// AccuracyMemo) dedupe cells within one process; this store makes them
// survive it, so `cmd/reproduce` becomes incremental — a rerun, or a run
// after a config tweak, recomputes only the cells whose identity actually
// changed.
//
// Identity is the whole design. A cell's Key names everything its result
// is a function of: the predictor construction (kind, organization,
// budget), the measurement window, the simulated machine, and — crucially
// — the recorded instruction stream itself, by content digest
// (trace.Recording.Digest over the BPTRACE1 bytes). Change a workload
// generator, a machine parameter, or the delay model's effect on an
// organization string, and the affected cells miss by construction; stale
// entries are never wrong, only dead weight. Nothing is ever looked up by
// mtime or filename convention.
//
// Robustness rule: the store must never error out and never serve bad
// data. A truncated, corrupted or wrong-version cell file is treated as a
// miss (counted as an invalidation), recomputed, and rewritten; an
// unwritable directory degrades the store to a pass-through. The
// equivalence suites in internal/experiments prove store-served cells are
// bit-identical to fresh simulation.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
)

// Key canonically identifies one experiment grid cell across processes.
// Two cells with equal keys construct byte-identical simulations, so their
// stored records are interchangeable — the on-disk analogue of the timing
// memo's in-process contract. Every field must flow into Canonical; the
// keyfields analyzer turns a field added without a key extension into a
// lint failure instead of a silent cross-process collision.
//
//bplint:keyfields Canonical
type Key struct {
	// Family is the cell's result family: "accuracy" (functional runs,
	// funcsim.Result) or "timing" (cycle-level runs, pipeline.Result).
	Family string
	// Kind and Org name the predictor construction: the factory kind and
	// the organization identity ("ideal", "override", "lag64", ... — ""
	// for accuracy cells of the plain factory predictor).
	Kind string
	Org  string
	// Budget is the hardware budget in bytes.
	Budget int
	// Bench and Seed identify the workload profile.
	Bench string
	Seed  uint64
	// Insts and Warmup are the measurement window.
	Insts  int64
	Warmup int64
	// SimOptions canonicalizes simulator options beyond the window ("" for
	// the standard run; e.g. "blocks.fw8.bb4" for block-prediction runs).
	SimOptions string
	// Machine is the canonical rendering of the timing machine config
	// (pipeline.Config.Canonical); "" for accuracy cells.
	Machine string
	// Trace is the recorded stream's content digest
	// (trace.Recording.Digest): the hex SHA-256 of its BPTRACE1 bytes.
	Trace string
}

// Canonical returns the key's canonical string form — the content address
// everything else derives from. Built field by field so the keyfields
// analyzer can prove exhaustiveness.
func (k Key) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "family=%s|kind=%s|org=%s|budget=%d|bench=%s|seed=%d|insts=%d|warmup=%d|sim=%s|machine=%s|trace=%s",
		k.Family, k.Kind, k.Org, k.Budget, k.Bench, k.Seed, k.Insts, k.Warmup, k.SimOptions, k.Machine, k.Trace)
	return b.String()
}

// hash returns the content address of the key: hex SHA-256 of Canonical.
func (k Key) hash() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Record is one stored cell: its full key (self-describing — load
// verifies the stored key against the requested one) and exactly one
// result payload matching Family. JSON round-trips both payloads exactly:
// Go encodes float64 at shortest-round-trip precision, so a loaded result
// is bit-identical to the computed one.
type Record struct {
	Key      Key
	Timing   *pipeline.Result `json:",omitempty"`
	Accuracy *funcsim.Result  `json:",omitempty"`
}

// Stats counts the store's traffic. Hits are cells served from disk;
// Misses are cells computed because no file existed; Invalidations are
// cells recomputed because a file existed but failed validation
// (truncated, corrupted, wrong version, key mismatch) — those are
// rewritten. WriteErrors counts failed writes (the result is still
// returned; the store just stays cold there).
type Stats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Writes        int64
	WriteErrors   int64
}

// flight serializes the in-process computation of one cold cell: the
// first caller loads-or-computes inside the once, concurrent duplicates
// block on it and share the record — so a cold cell simulates once no
// matter how many goroutines ask for it at the same time.
type flight struct {
	once sync.Once
	// rec is written inside once.Do and read only after Do returns; the
	// sync.Once serializes it, not Store.mu, so it deliberately has no
	// lockguard annotation.
	rec Record
}

// Store is a concurrency-safe, disk-backed cell store. The zero tier of
// every lookup is the flights map, which doubles as an in-memory cache of
// everything this process has seen.
type Store struct {
	dir     string
	mu      sync.Mutex
	flights map[string]*flight // guarded by mu
	stats   Stats              // guarded by mu
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: opening %s: %w", dir, err)
	}
	return &Store{dir: dir, flights: make(map[string]*flight)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Do returns the stored record for key, calling compute to simulate it on
// first use (per process and per store directory). Concurrent callers with
// the same key coalesce onto one load-or-compute; compute's record is
// written back under the key's content address. compute must return a
// record whose Key equals key — the store trades on that.
func (s *Store) Do(key Key, compute func() Record) Record {
	ck := key.Canonical()
	s.mu.Lock()
	f := s.flights[ck]
	if f == nil {
		f = &flight{}
		s.flights[ck] = f
	}
	s.mu.Unlock()
	f.once.Do(func() {
		if rec, ok := s.load(key, ck); ok {
			f.rec = rec
			return
		}
		f.rec = compute()
		s.write(key, f.rec)
	})
	return f.rec
}

// Get probes the store for key without computing anything on a miss — the
// read half of the fused sweep's two-phase flow (probe every cell in a
// group, simulate the residual cold cells together, Put them back). It
// counts traffic exactly as Do's load does: a Hit when the cell is served,
// a Miss when no file exists, an Invalidation when a file exists but fails
// validation. Unlike Do it does not consult or populate the in-process
// flight cache: fused callers dedupe in-process through the accuracy memo
// before probing, so every Get is a genuine disk question.
func (s *Store) Get(key Key) (Record, bool) {
	return s.load(key, key.Canonical())
}

// Put writes rec back under key — the write half of the fused two-phase
// flow, counting Writes and WriteErrors exactly as Do's write-back does.
// rec.Key must equal key, like Do's compute contract.
func (s *Store) Put(key Key, rec Record) {
	s.write(key, rec)
}

// cellMagic is the file format's self-describing version tag. Bump it and
// every existing entry becomes a counted invalidation on next read — the
// format itself is part of the cell identity.
const cellMagic = "BPCELL1"

// load reads and validates key's cell file. It returns ok=false — never an
// error — on any defect, counting a miss (absent file) or an invalidation
// (present but invalid) as it goes.
func (s *Store) load(key Key, canonical string) (Record, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return Record{}, false
	}
	rec, ok := decodeCell(raw, canonical)
	if !ok {
		s.count(func(st *Stats) { st.Invalidations++ })
		return Record{}, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	return rec, true
}

// decodeCell validates one cell file against the requested canonical key:
// header shape, version, body length (truncation), body digest
// (corruption), JSON shape, and stored-key identity.
func decodeCell(raw []byte, canonical string) (Record, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return Record{}, false
	}
	var magic, digest string
	var bodyLen int
	if n, err := fmt.Sscanf(string(raw[:nl]), "%s %s %d", &magic, &digest, &bodyLen); n != 3 || err != nil {
		return Record{}, false
	}
	if magic != cellMagic {
		return Record{}, false
	}
	body := raw[nl+1:]
	if len(body) != bodyLen {
		return Record{}, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != digest {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	if rec.Key.Canonical() != canonical {
		return Record{}, false
	}
	if (rec.Timing == nil) == (rec.Accuracy == nil) {
		return Record{}, false
	}
	return rec, true
}

// write stores rec under key's content address: header with a body digest,
// then the JSON body, written to a temp file and renamed so readers (this
// process or another) never see a half-written cell. Failures are counted
// and swallowed — an unwritable store is a cold store, not a broken run.
func (s *Store) write(key Key, rec Record) {
	body, err := json.Marshal(rec)
	if err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return
	}
	sum := sha256.Sum256(body)
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cell-*")
	if err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return
	}
	_, werr := fmt.Fprintf(tmp, "%s %s %d\n", cellMagic, hex.EncodeToString(sum[:]), len(body))
	if werr == nil {
		_, werr = tmp.Write(body)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.count(func(st *Stats) { st.WriteErrors++ })
		return
	}
	s.count(func(st *Stats) { st.Writes++ })
}

// path returns key's cell file path: two-level sharding by content hash so
// no directory grows unboundedly.
func (s *Store) path(key Key) string {
	h := key.hash()
	return filepath.Join(s.dir, h[:2], h[2:]+".cell")
}

// count applies one counter update under the store lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
