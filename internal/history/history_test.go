package history

import (
	"testing"
	"testing/quick"
)

func TestGlobalPushOrder(t *testing.T) {
	g := NewGlobal(8)
	// Push T, N, T: bit0 (newest) = T, bit1 = N, bit2 = T.
	g.Push(true)
	g.Push(false)
	g.Push(true)
	if !g.Bit(0) || g.Bit(1) || !g.Bit(2) {
		t.Fatalf("history bits wrong: %03b", g.Value())
	}
	if g.Value() != 0b101 {
		t.Fatalf("value = %b", g.Value())
	}
}

func TestGlobalMasking(t *testing.T) {
	g := NewGlobal(4)
	for i := 0; i < 100; i++ {
		g.Push(true)
	}
	if g.Value() != 0xF {
		t.Fatalf("4-bit history overflowed: %x", g.Value())
	}
	if g.Bit(4) {
		t.Fatal("out-of-range bit reported set")
	}
}

func TestGlobal64BitMask(t *testing.T) {
	g := NewGlobal(64)
	for i := 0; i < 100; i++ {
		g.Push(true)
	}
	if g.Value() != ^uint64(0) {
		t.Fatalf("64-bit history: %x", g.Value())
	}
}

func TestGlobalSnapshotRestore(t *testing.T) {
	g := NewGlobal(16)
	f := func(pattern uint16, pollution uint8) bool {
		for i := 0; i < 16; i++ {
			g.Push(pattern>>i&1 == 1)
		}
		snap := g.Snapshot()
		for i := 0; i < int(pollution%32); i++ {
			g.Push(i%3 == 0)
		}
		g.Restore(snap)
		return g.Value() == snap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalInvalidLength(t *testing.T) {
	for _, n := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGlobal(%d) did not panic", n)
				}
			}()
			NewGlobal(n)
		}()
	}
}

func TestGlobalSizeBytes(t *testing.T) {
	if got := NewGlobal(12).SizeBytes(); got != 2 {
		t.Fatalf("12-bit history = %d bytes", got)
	}
}

func TestLocalPerBranchIsolation(t *testing.T) {
	l := NewLocal(16, 10)
	// Two branches mapping to different slots must not interfere.
	l.Push(0x1000, true)
	l.Push(0x1004, false)
	if l.Get(0x1000) != 1 {
		t.Fatalf("branch A history: %b", l.Get(0x1000))
	}
	if l.Get(0x1004) != 0 {
		t.Fatalf("branch B history: %b", l.Get(0x1004))
	}
}

func TestLocalAliasing(t *testing.T) {
	l := NewLocal(4, 8)
	// PCs 16 entries apart alias in a 4-entry table (word-indexed).
	a, b := uint64(0x1000), uint64(0x1000+4*4)
	l.Push(a, true)
	if l.Get(b) != l.Get(a) {
		t.Fatal("aliased branches should share a history register")
	}
}

func TestLocalMasking(t *testing.T) {
	l := NewLocal(8, 6)
	for i := 0; i < 100; i++ {
		l.Push(0x40, true)
	}
	if l.Get(0x40) != 0x3F {
		t.Fatalf("6-bit local history overflow: %x", l.Get(0x40))
	}
}

func TestLocalSetRepairs(t *testing.T) {
	l := NewLocal(8, 8)
	l.Push(0x40, true)
	l.Push(0x40, true)
	snap := l.Get(0x40)
	l.Push(0x40, false)
	l.Set(0x40, snap)
	if l.Get(0x40) != snap {
		t.Fatal("Set did not restore")
	}
}

func TestLocalInvalidConfig(t *testing.T) {
	for _, tc := range []struct {
		entries int
		bits    uint
	}{{0, 8}, {3, 8}, {8, 0}, {8, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLocal(%d,%d) did not panic", tc.entries, tc.bits)
				}
			}()
			NewLocal(tc.entries, tc.bits)
		}()
	}
}

func TestLocalSizeBytes(t *testing.T) {
	if got := NewLocal(1024, 10).SizeBytes(); got != 1280 {
		t.Fatalf("1K x 10-bit local histories = %d bytes, want 1280", got)
	}
}
