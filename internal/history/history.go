// Package history provides branch-history registers: the global history
// shift register shared by gshare-style predictors, and per-branch local
// history tables used by two-level and hybrid predictors.
//
// All histories in this repository are updated speculatively at prediction
// time and repaired exactly on a misprediction, matching the paper's
// optimistic assumption for complex predictors (§4.1.2) and the checkpointed
// recovery mechanism of gshare.fast (§3.2). In the trace-driven simulators
// only correct-path outcomes reach the predictor, which makes speculative
// update with exact repair equivalent to in-order update with the true
// outcome; Snapshot/Restore exist so that wrong-path-capable drivers and the
// gshare.fast pipeline model can checkpoint precisely.
package history

import "fmt"

// MaxGlobalBits is the longest supported global history. 64 bits covers every
// configuration in the paper (gshare.fast at 512 KB uses 21 bits; the
// perceptron predictor's longest published history is below 64).
const MaxGlobalBits = 64

// Global is a global branch-history shift register of up to 64 bits. The most
// recent outcome occupies bit 0.
type Global struct {
	bits uint64
	len  uint
	mask uint64
}

// NewGlobal returns a global history register holding n outcome bits.
func NewGlobal(n uint) *Global {
	if n == 0 || n > MaxGlobalBits {
		panic(fmt.Sprintf("history: invalid global history length %d", n))
	}
	var mask uint64
	if n == 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<n - 1
	}
	return &Global{len: n, mask: mask}
}

// Len returns the history length in bits.
func (g *Global) Len() uint { return g.len }

// Value returns the history bits; bit 0 is the most recent outcome.
func (g *Global) Value() uint64 { return g.bits }

// Push shifts in the outcome of the most recently predicted branch.
func (g *Global) Push(taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
	g.bits &= g.mask
}

// Bit returns history bit i (0 = most recent). Out-of-range bits are zero.
func (g *Global) Bit(i uint) bool {
	if i >= g.len {
		return false
	}
	return g.bits>>i&1 == 1
}

// Snapshot returns the current register contents for later Restore.
func (g *Global) Snapshot() uint64 { return g.bits }

// Restore overwrites the register with a snapshot, repairing speculative
// pollution after a misprediction.
func (g *Global) Restore(snap uint64) { g.bits = snap & g.mask }

// SizeBytes returns the hardware state size of the register.
func (g *Global) SizeBytes() int { return (int(g.len) + 7) / 8 }

// Local is a table of per-branch local history registers, indexed by a hash
// of the branch PC (low-order word-address bits, as in the Alpha 21264).
type Local struct {
	table   []uint64
	bits    uint
	mask    uint64
	idxMask uint64
}

// NewLocal returns a table of entries local histories of n bits each.
// entries must be a power of two.
func NewLocal(entries int, n uint) *Local {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("history: local table entries %d not a power of two", entries))
	}
	if n == 0 || n > MaxGlobalBits {
		panic(fmt.Sprintf("history: invalid local history length %d", n))
	}
	var mask uint64
	if n == 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<n - 1
	}
	return &Local{
		table:   make([]uint64, entries),
		bits:    n,
		mask:    mask,
		idxMask: uint64(entries - 1),
	}
}

// Entries returns the number of local history registers.
func (l *Local) Entries() int { return len(l.table) }

// Bits returns the per-entry history length.
func (l *Local) Bits() uint { return l.bits }

// index maps a branch PC to a table slot. Branch PCs are word-aligned in the
// synthetic ISA, so the low two bits are dropped first.
func (l *Local) index(pc uint64) uint64 { return (pc >> 2) & l.idxMask }

// Get returns the local history for the branch at pc.
func (l *Local) Get(pc uint64) uint64 { return l.table[l.index(pc)] }

// Push shifts outcome taken into the local history for pc.
func (l *Local) Push(pc uint64, taken bool) {
	i := l.index(pc)
	h := l.table[i] << 1
	if taken {
		h |= 1
	}
	l.table[i] = h & l.mask
}

// Set overwrites the local history for pc, used for exact repair.
func (l *Local) Set(pc uint64, h uint64) { l.table[l.index(pc)] = h & l.mask }

// SizeBytes returns the hardware state size of the whole table.
func (l *Local) SizeBytes() int { return (len(l.table)*int(l.bits) + 7) / 8 }
