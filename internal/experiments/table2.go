package experiments

import (
	"fmt"

	"branchsim/internal/delaymodel"
	"branchsim/internal/textplot"
)

// Table2 reproduces the paper's Table 2: access latencies, in cycles at the
// 8-FO4 clock, of the multi-component hybrid, 2Bc-gskew and perceptron
// predictors across hardware budgets — plus, for context, the raw PHT read
// latency gshare.fast pipelines over (its effective prediction latency is
// always one cycle).
func Table2(Options) *Outcome {
	budgets := PaperBudgets()
	kinds := []string{"multicomponent", "2bcgskew", "perceptron"}
	rows := make([]string, len(budgets))
	values := make([][]float64, len(budgets))
	for i, b := range budgets {
		rows[i] = budgetLabel(b)
		values[i] = make([]float64, len(kinds)+2)
		for j, kind := range kinds {
			p := mustPredictor(kind, b)
			values[i][j] = float64(delaymodel.Default.ForPredictor(p))
		}
		g := NewGShareFast(b)
		values[i][len(kinds)] = float64(g.Latency())
		values[i][len(kinds)+1] = 1 // gshare.fast effective latency
	}
	t := &textplot.Table{
		Title:     "Table 2: predictor access latencies (cycles at 8 FO4)",
		RowHeader: "budget",
		Rows:      rows,
		Cols:      append(append([]string{}, kinds...), "gshare.fast(PHT read)", "gshare.fast(effective)"),
		Values:    values,
		Format:    "%6.0f",
	}
	single := delaymodel.Default.SingleCycleEntries()
	return &Outcome{
		ID:     "table2",
		Title:  "Predictor access latencies from the delay model",
		Tables: []*textplot.Table{t},
		Notes: []string{
			fmt.Sprintf("largest single-cycle PHT: %d entries (paper anchor: 1K entries at 8 FO4)", single),
			"latencies grow from 2-4 cycles at 16KB toward ~9-11 cycles at 512KB, the paper's range",
		},
	}
}
