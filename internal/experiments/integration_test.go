package experiments

import (
	"math"
	"testing"

	"branchsim/internal/funcsim"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/workload"
)

// Integration tests crossing workload ↔ predictor ↔ simulators at reduced
// scale. These assert the *relationships* the paper's results rest on; the
// full-scale numbers live in EXPERIMENTS.md.

// meanRate runs one predictor kind over all benchmarks.
func meanRate(t *testing.T, kind string, budget int, insts int64) float64 {
	return meanRateWarm(t, kind, budget, insts, insts/4)
}

func meanRateWarm(t *testing.T, kind string, budget int, insts, warmup int64) float64 {
	t.Helper()
	var rates []float64
	for _, prof := range workload.Profiles() {
		p, err := NewPredictor(kind, budget)
		if err != nil {
			t.Fatal(err)
		}
		res := funcsim.Run(p, workload.New(prof), funcsim.Options{
			MaxInsts:    insts,
			WarmupInsts: warmup,
		})
		rates = append(rates, res.MispredictPercent())
	}
	return stats.Mean(rates)
}

func TestPerceptronMostAccurate(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-suite sweep")
	}
	const insts = 1_000_000
	perc := meanRate(t, "perceptron", 64<<10, insts)
	fast := meanRate(t, "gshare.fast", 64<<10, insts)
	if perc >= fast {
		t.Fatalf("perceptron (%.2f%%) should beat gshare.fast (%.2f%%) in accuracy", perc, fast)
	}
}

func TestAccuracyImprovesWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-suite sweep")
	}
	// Aliasing pressure needs a tiny table to show up at test scale; the
	// full sweep in EXPERIMENTS.md covers the 16KB-512KB range.
	const insts = 2_000_000
	small := meanRateWarm(t, "gshare.fast", 2<<10, insts, insts/2)
	large := meanRateWarm(t, "gshare.fast", 128<<10, insts, insts/2)
	if large >= small {
		t.Fatalf("gshare.fast did not improve with budget: %.2f%% -> %.2f%%", small, large)
	}
}

func TestDynamicPredictorsBeatStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-suite sweep")
	}
	const insts = 500_000
	static := meanRate(t, "taken", 0, insts)
	dynamic := meanRate(t, "gshare", 16<<10, insts)
	if dynamic >= static/2 {
		t.Fatalf("gshare (%.2f%%) should be far better than always-taken (%.2f%%)", dynamic, static)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	opts := Options{Insts: 120_000, Warmup: 30_000, Parallel: 2}
	a := Figure6(opts)
	b := Figure6(opts)
	ta, tb := a.Tables[0], b.Tables[0]
	for i := range ta.Values {
		for j := range ta.Values[i] {
			if ta.Values[i][j] != tb.Values[i][j] {
				t.Fatalf("nondeterministic cell (%d,%d): %v vs %v",
					i, j, ta.Values[i][j], tb.Values[i][j])
			}
		}
	}
}

func TestOverrideRatesConsistentWithAccuracies(t *testing.T) {
	// The override rate of quick+slow must be at least |quickMR - slowMR|
	// and at most quickMR + slowMR (disagreement bounds).
	prof, _ := workload.ByName("parser")
	const insts = 400_000
	o, err := NewOverriding("perceptron", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	res := funcsim.Run(o, workload.New(prof), funcsim.Options{MaxInsts: insts})
	quick := funcsim.Run(predictor.NewGShare(QuickEntries, 0), workload.New(prof),
		funcsim.Options{MaxInsts: insts})
	slow, _ := NewPredictor("perceptron", 64<<10)
	slowRes := funcsim.Run(slow, workload.New(prof), funcsim.Options{MaxInsts: insts})

	rate := o.OverrideRate()
	lo := math.Abs(quick.MispredictRate() - slowRes.MispredictRate())
	hi := quick.MispredictRate() + slowRes.MispredictRate()
	if rate < lo-1e-9 || rate > hi+1e-9 {
		t.Fatalf("override rate %.4f outside disagreement bounds [%.4f, %.4f]", rate, lo, hi)
	}
	// The overriding organization's accuracy equals the slow predictor's
	// (same predictor, same stream).
	if res.Mispredicts != slowRes.Mispredicts {
		t.Fatalf("overriding mispredicts %d != slow alone %d", res.Mispredicts, slowRes.Mispredicts)
	}
}

func TestGShareFastBudgetLatencyCoupling(t *testing.T) {
	// Bigger gshare.fast tables must come with deeper (slower-to-read)
	// PHT pipelines from the delay model.
	small := NewGShareFast(16 << 10)
	large := NewGShareFast(512 << 10)
	if large.Latency() <= small.Latency() {
		t.Fatalf("PHT read latency should grow: %d -> %d", small.Latency(), large.Latency())
	}
	if large.Entries() <= small.Entries() {
		t.Fatal("entries should grow with budget")
	}
}
