package experiments

import (
	"sync"

	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/workload"
)

// timingKey canonically identifies one timing-simulation cell. Two cells
// with equal keys construct byte-identical simulations — same machine, same
// predictor organization, same recorded stream and measurement window — so
// their Results are interchangeable. The org component disambiguates
// organizations that share a kind and budget: "ideal" (bare predictor,
// single-cycle idealization — also gshare.fast, whose organization is
// mode-invariant), "override" (behind the 2K-entry quick gshare), and the
// ablation variants ("override.q256", "lag64", "nockpt", ...).
type timingKey struct {
	kind   string
	org    string
	budget int
	bench  string
	seed   uint64
	insts  int64
	warmup int64
	cfg    pipeline.Config
}

// storeKey widens the in-memory key into the persistent store's
// cross-process form: the in-process Config value becomes its canonical
// string rendering and the stream gains its content digest.
func (k timingKey) storeKey(traceDigest string) resultstore.Key {
	return resultstore.Key{
		Family:  "timing",
		Kind:    k.kind,
		Org:     k.org,
		Budget:  k.budget,
		Bench:   k.bench,
		Seed:    k.seed,
		Insts:   k.insts,
		Warmup:  k.warmup,
		Machine: machineString(k.cfg),
		Trace:   traceDigest,
	}
}

// timingEntry serializes one cell's computation: the first caller simulates
// inside the once, duplicates (concurrent or later, across figures) wait
// and share the Result.
type timingEntry struct {
	once sync.Once
	// res is written inside once.Do and read only after Do returns; the
	// sync.Once serializes it, not TimingMemo.mu, so it deliberately has no
	// lockguard annotation.
	res pipeline.Result
}

// TimingMemo memoizes pipeline Results by canonical cell key, so cells
// duplicated across experiment grids — Figure 7's ideal perceptron and
// multi-component columns repeat Figure 2's; gshare.fast's ideal and
// realistic cells are one organization; the ablations revisit figure cells
// at their shared budgets — are simulated once per process.
type TimingMemo struct {
	mu      sync.Mutex
	entries map[timingKey]*timingEntry // guarded by mu
	hits    int64                      // guarded by mu
}

// NewTimingMemo returns an empty memo.
func NewTimingMemo() *TimingMemo {
	return &TimingMemo{entries: make(map[timingKey]*timingEntry)}
}

// timingMemo is the process-wide memo, sibling to traceStore.
var timingMemo = NewTimingMemo()

// TimingMemoStats reports the process-wide timing memo's footprint: distinct
// cells simulated and duplicate lookups served from memory.
func TimingMemoStats() (cells int, hits int64) {
	return timingMemo.stats()
}

// stats snapshots the memo's footprint: distinct entries and memory hits.
func (m *TimingMemo) stats() (cells int, hits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries), m.hits
}

// resolve publishes the entry's Result: the first caller's compute runs
// inside the once, duplicates (concurrent or later) wait and share it. It
// is the entry's only publication path — result() and the fused
// scheduler's lanes both go through it.
func (e *timingEntry) resolve(compute func() pipeline.Result) pipeline.Result {
	e.once.Do(func() { e.res = compute() })
	return e.res
}

// result returns the memoized Result for key, calling compute to simulate
// it on first use.
func (m *TimingMemo) result(key timingKey, compute func() pipeline.Result) pipeline.Result {
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		e = &timingEntry{}
		m.entries[key] = e
	} else {
		m.hits++
	}
	m.mu.Unlock()
	return e.resolve(compute)
}

// Cell returns the timing Result for the canonical (kind, budget, mode)
// organization on prof's recorded stream under the Table 1 machine,
// memoized in m. It is the figure grids' cell primitive.
func (m *TimingMemo) Cell(kind string, budget int, mode TimingMode, prof workload.Profile, opts Options) pipeline.Result {
	// timingOrg mirrors buildTimed: ideal cells collapse to the bare
	// predictor, so a kind's ideal and realistic cells share one entry when
	// the organization is mode-invariant (gshare.fast; bimode.fast is not —
	// it has no special case there).
	return m.cellCustom(pipeline.DefaultConfig(), kind, timingOrg(kind, mode), budget, func() predictor.Predictor {
		return buildTimed(kind, budget, mode)
	}, prof, opts)
}

// Cell is (*TimingMemo).Cell on the process-wide memo — the form the
// experiment grids use, so duplicate cells dedupe across figures.
func Cell(kind string, budget int, mode TimingMode, prof workload.Profile, opts Options) pipeline.Result {
	return timingMemo.Cell(kind, budget, mode, prof, opts)
}

// cellCustom is Cell for explicitly-constructed organizations (the
// ablations' lagged, resized-quick, uncheckpointed and depth variants).
// Callers must ensure that equal (cfg.Canonical, kind, org, budget) always
// denotes an identical construction — the memo trades on that.
func (m *TimingMemo) cellCustom(cfg pipeline.Config, kind, org string, budget int, build func() predictor.Predictor, prof workload.Profile, opts Options) pipeline.Result {
	opts = opts.normalize()
	key := timingKey{
		kind:   kind,
		org:    org,
		budget: budget,
		bench:  prof.Name,
		seed:   prof.Seed,
		insts:  opts.Insts,
		warmup: opts.Warmup,
		cfg:    cfg.Canonical(),
	}
	return m.result(key, func() pipeline.Result {
		return storedComputeTiming(key, prof, opts, func() pipeline.Result {
			return timingRunCfg(cfg, build, prof, opts)
		})
	})
}

// storedComputeTiming resolves one cold cell's computation through the
// persistent store when one is configured — the timing counterpart of
// storedCompute, shared by cellCustom's memo-miss path, the fused
// scheduler's preowned fallback, and the FuseOff lowering.
func storedComputeTiming(key timingKey, prof workload.Profile, opts Options, compute func() pipeline.Result) pipeline.Result {
	if opts.Store == nil {
		return compute()
	}
	skey := key.storeKey(traceDigest(prof, opts))
	rec := opts.Store.Do(skey, func() resultstore.Record {
		res := compute()
		return resultstore.Record{Key: skey, Timing: &res}
	})
	if rec.Timing == nil {
		// A record can only lack its payload if some compute handed the
		// store one; never serve a zero Result for it.
		return compute()
	}
	return *rec.Timing
}

// specTimingKey returns s's canonical memo key under opts (already
// normalized).
func specTimingKey(s timingSpec, opts Options) timingKey {
	return timingKey{
		kind:   s.kind,
		org:    s.org,
		budget: s.budget,
		bench:  s.prof.Name,
		seed:   s.prof.Seed,
		insts:  opts.Insts,
		warmup: opts.Warmup,
		cfg:    s.cfg.Canonical(),
	}
}

// specCell resolves one timing spec per-cell through the full
// memo → store → simulate tier — the FuseOff lowering.
func (m *TimingMemo) specCell(s timingSpec, opts Options) pipeline.Result {
	return m.cellCustom(s.cfg, s.kind, s.org, s.budget, s.build, s.prof, opts)
}

// acquireLanes is the fused timing scheduler's memo tier, the timing
// counterpart of (*AccuracyMemo).acquireLanes: one lock acquisition
// classifies a group's specs into owned lanes (entries this call creates
// — the fusion candidates, with in-group duplicates attached as extra
// sinks) and preowned lanes (entries predating the group, resolved solo).
// Every lookup that finds an existing entry counts a memory hit, exactly
// as in result().
func (m *TimingMemo) acquireLanes(specs []timingSpec, opts Options) (owned, preowned []*fusedLane[timingSpec, pipeline.Result]) {
	byKey := make(map[timingKey]*fusedLane[timingSpec, pipeline.Result], len(specs))
	m.mu.Lock()
	for _, s := range specs {
		key := specTimingKey(s, opts)
		if l := byKey[key]; l != nil {
			m.hits++
			l.sinks = append(l.sinks, s.sink)
			continue
		}
		e := m.entries[key]
		l := &fusedLane[timingSpec, pipeline.Result]{spec: s, sinks: []func(pipeline.Result){s.sink}}
		if e != nil {
			m.hits++
			l.resolve = e.resolve
			preowned = append(preowned, l)
			continue
		}
		e = &timingEntry{}
		m.entries[key] = e
		l.resolve = e.resolve
		byKey[key] = l
		owned = append(owned, l)
	}
	m.mu.Unlock()
	return owned, preowned
}
