package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/workload"
)

// timingFusionTestOpts uses an instruction budget unique to this file (the
// fusion_test.go convention) so its cells never collide with other tests'
// entries in the process-wide trace store or memos.
var timingFusionTestOpts = Options{Insts: 125_000, Warmup: 31_000}

// timingFusionGrid declares a configs × kinds × benchmarks timing grid into
// plan and returns the slice the sinks fill, indexed in declaration order.
// The config axis varies pipeline depth on the shared default cache
// geometry — the DepthSweep shape — so under fusion each benchmark is one
// group.
func timingFusionGrid(plan *cellPlan, depths []int, kinds []string, nBench int) []pipeline.Result {
	const budget = 16 << 10
	profiles := workload.Profiles()[:nBench]
	out := make([]pipeline.Result, len(depths)*len(kinds)*len(profiles))
	i := 0
	for _, depth := range depths {
		cfg := pipeline.DefaultConfig()
		cfg.PipelineDepth = depth
		cfg.FrontEndDepth = depth / 2
		for _, kind := range kinds {
			org := fmt.Sprintf("d%d", depth)
			for _, prof := range profiles {
				slot := &out[i]
				i++
				plan.addTiming(cfg, kind, org, budget, func() predictor.Predictor {
					return mustPredictor(kind, budget)
				}, prof, func(res pipeline.Result) { *slot = res })
			}
		}
	}
	return out
}

// TestFusedTimingPlan is the fused timing scheduler's correctness contract
// at the plan level: the same grid executed fused and per-cell (FuseOff)
// must fill every sink with bit-identical Results, and the fused execution
// must run exactly one pass per (benchmark, geometry) group.
func TestFusedTimingPlan(t *testing.T) {
	depths := []int{14, 26}
	kinds := []string{"gshare", "gshare.fast"}
	const nBench = 3
	var fusedPlan, soloPlan cellPlan
	fused := timingFusionGrid(&fusedPlan, depths, kinds, nBench)
	solo := timingFusionGrid(&soloPlan, depths, kinds, nBench)

	tfc := &FusionCounters{}
	fusedPlan.executeWith(timingFusionTestOpts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, tfc)
	off := timingFusionTestOpts
	off.Fuse = FuseOff
	soloPlan.executeWith(off, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})

	for i := range fused {
		if !reflect.DeepEqual(fused[i], solo[i]) {
			t.Errorf("cell %d diverges between fused and per-cell execution:\n got %+v\nwant %+v",
				i, fused[i], solo[i])
		}
	}
	groups, lanes, fusedCells, soloCells := tfc.stats()
	wantLanes := int64(len(depths) * len(kinds) * nBench)
	if groups != nBench || lanes != wantLanes || fusedCells != wantLanes || soloCells != 0 {
		t.Errorf("timing fused counters = %d groups, %d lanes, %d fused, %d solo; want %d, %d, %d, 0",
			groups, lanes, fusedCells, soloCells, nBench, wantLanes, wantLanes)
	}
}

// TestFusedTimingGeometryGrouping pins the grouping contract at the plan
// level: timing cells that differ only in cache geometry land in separate
// fused groups (pipeline.RunMany would panic on a mixed group), while
// cells sharing a geometry fuse.
func TestFusedTimingGeometryGrouping(t *testing.T) {
	const budget = 16 << 10
	prof := workload.Profiles()[0]
	small := pipeline.DefaultConfig()
	small.L2.SizeBytes = 512 << 10
	var plan cellPlan
	var a, b pipeline.Result
	plan.addTiming(pipeline.DefaultConfig(), "gshare", "", budget, func() predictor.Predictor {
		return mustPredictor("gshare", budget)
	}, prof, func(res pipeline.Result) { a = res })
	plan.addTiming(small, "gshare", "", budget, func() predictor.Predictor {
		return mustPredictor("gshare", budget)
	}, prof, func(res pipeline.Result) { b = res })

	tfc := &FusionCounters{}
	plan.executeWith(timingFusionTestOpts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, tfc)
	if groups, lanes, fusedCells, _ := tfc.stats(); groups != 2 || lanes != 2 || fusedCells != 2 {
		t.Fatalf("geometry-split grid ran %d groups (%d lanes, %d fused cells); want 2 single-lane groups",
			groups, lanes, fusedCells)
	}
	if a.Insts == 0 || b.Insts == 0 {
		t.Fatal("a geometry group's sink was never filled")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("shrinking L2 did not change the timing result; geometry grouping is untestable")
	}
}

// TestFusedTimingMemoAccounting pins the timing memo's accounting under
// fused publishing, mirroring TestFusedMemoAccounting: a cell declared
// twice in one plan simulates once and the duplicate counts as a memory
// hit, and a later plan revisiting the cells resolves them solo — zero
// fused passes — with one hit per lookup, exactly as per-cell execution
// would count.
func TestFusedTimingMemoAccounting(t *testing.T) {
	tmemo := NewTimingMemo()
	tfc := &FusionCounters{}
	var plan cellPlan
	first := timingFusionGrid(&plan, []int{18}, []string{"bimode"}, 2)
	dup := timingFusionGrid(&plan, []int{18}, []string{"bimode"}, 2)
	plan.executeWith(timingFusionTestOpts, NewAccuracyMemo(), tmemo, &FusionCounters{}, tfc)

	if cells, hits := tmemo.stats(); cells != 2 || hits != 2 {
		t.Fatalf("after duplicated plan: %d cells, %d hits; want 2 distinct cells, 2 duplicate hits", cells, hits)
	}
	if !reflect.DeepEqual(first, dup) {
		t.Fatalf("duplicate sinks received different results:\n%+v\n%+v", first, dup)
	}
	if groups, lanes, fused, solo := tfc.stats(); groups != 2 || lanes != 2 || fused != 4 || solo != 0 {
		t.Fatalf("counters after duplicated plan = %d/%d/%d/%d, want 2 groups, 2 lanes, 4 fused, 0 solo",
			groups, lanes, fused, solo)
	}

	// A second plan over the same memo finds every entry pre-existing.
	var again cellPlan
	revisit := timingFusionGrid(&again, []int{18}, []string{"bimode"}, 2)
	again.executeWith(timingFusionTestOpts, NewAccuracyMemo(), tmemo, &FusionCounters{}, tfc)
	if cells, hits := tmemo.stats(); cells != 2 || hits != 4 {
		t.Fatalf("after revisit: %d cells, %d hits; want still 2 cells, 4 hits", cells, hits)
	}
	if groups, _, _, solo := tfc.stats(); groups != 2 || solo != 2 {
		t.Fatalf("revisit ran %d groups total (%d solo cells), want no new passes (2 groups, 2 solo)", groups, solo)
	}
	if !reflect.DeepEqual(revisit, first) {
		t.Fatalf("revisited cells diverge from the fused originals:\n%+v\n%+v", revisit, first)
	}
}

// TestFusedTimingStoreFlow proves the fused timing scheduler's Get/Put
// store flow has exact parity with the per-cell Do path: a cold fused run
// misses and writes once per distinct cell, a warm rerun (fresh memo,
// second store over the same directory — a stand-in for a second process)
// serves every cell from disk and runs zero fused passes, and a -nofuse
// rerun reads the fused run's cells bit-identically.
func TestFusedTimingStoreFlow(t *testing.T) {
	depths := []int{22}
	kinds := []string{"gshare", "2bcgskew"}
	const nBench, nCells = 2, 4
	dir := t.TempDir()

	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := timingFusionTestOpts
	opts.Store = st1
	var coldPlan cellPlan
	cold := timingFusionGrid(&coldPlan, depths, kinds, nBench)
	coldPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})
	if s := st1.Stats(); s.Misses != nCells || s.Writes != nCells || s.Hits != 0 {
		t.Fatalf("cold store traffic = %+v, want %d misses, %d writes", s, nCells, nCells)
	}

	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st2
	var warmPlan cellPlan
	warm := timingFusionGrid(&warmPlan, depths, kinds, nBench)
	tfcWarm := &FusionCounters{}
	warmPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, tfcWarm)
	if s := st2.Stats(); s.Hits != nCells || s.Misses != 0 || s.Invalidations != 0 {
		t.Fatalf("warm store traffic = %+v, want %d hits", s, nCells)
	}
	if groups, lanes, fused, solo := tfcWarm.stats(); groups != 0 || lanes != 0 || fused != 0 || solo != nCells {
		t.Fatalf("warm rerun ran %d fused passes (%d lanes, %d fused cells, %d solo); want none, all %d solo",
			groups, lanes, fused, solo, nCells)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("store-served cells diverge from the fused originals:\n%+v\n%+v", warm, cold)
	}

	st3, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st3
	opts.Fuse = FuseOff
	var soloPlan cellPlan
	solo := timingFusionGrid(&soloPlan, depths, kinds, nBench)
	soloPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})
	if s := st3.Stats(); s.Hits != nCells {
		t.Fatalf("-nofuse rerun store traffic = %+v, want %d hits", s, nCells)
	}
	if !reflect.DeepEqual(solo, cold) {
		t.Fatalf("-nofuse cells diverge from the fused store's records:\n%+v\n%+v", solo, cold)
	}
}
