package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/workload"
)

// storeTestOpts uses an instruction budget unique to this file so its
// cells never collide with other tests' entries in the process-wide trace
// store or memos (the convention timingmemo_test.go established).
var storeTestOpts = Options{Insts: 130_000, Warmup: 30_000}

// TestTimingStoreEquivalence is the acceptance criterion's equivalence
// suite for the timing family: a cell computed through a cold store, the
// same cell served warm by a second memo (a stand-in for a second
// process), and a cell computed with no store at all must be bit-identical
// pipeline Results.
func TestTimingStoreEquivalence(t *testing.T) {
	prof := workload.Profiles()[0]
	const budget = 32 << 10

	fresh := NewTimingMemo().Cell("perceptron", budget, Realistic, prof, storeTestOpts)

	dir := t.TempDir()
	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := storeTestOpts
	opts.Store = st1
	cold := NewTimingMemo().Cell("perceptron", budget, Realistic, prof, opts)

	// A second store over the same directory stands in for a second
	// process: its flights are empty, so the warm cell must come off disk.
	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st2
	warm := NewTimingMemo().Cell("perceptron", budget, Realistic, prof, opts)

	if !reflect.DeepEqual(cold, fresh) {
		t.Fatalf("cold store compute != storeless compute:\n%+v\n%+v", cold, fresh)
	}
	if !reflect.DeepEqual(warm, fresh) {
		t.Fatalf("store-served cell != fresh simulation:\n%+v\n%+v", warm, fresh)
	}
	if s := st1.Stats(); s.Misses != 1 || s.Writes != 1 || s.Hits != 0 {
		t.Fatalf("cold store traffic = %+v, want 1 miss, 1 write", s)
	}
	if s := st2.Stats(); s.Hits != 1 || s.Misses != 0 || s.Invalidations != 0 {
		t.Fatalf("warm store traffic = %+v, want 1 hit", s)
	}
}

// TestTimingStoreWarmDoesNotSimulate proves a warm cell never constructs a
// predictor: the simulation is skipped entirely, not re-run and compared.
func TestTimingStoreWarmDoesNotSimulate(t *testing.T) {
	prof := workload.Profiles()[1]
	const budget = 32 << 10
	dir := t.TempDir()
	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := storeTestOpts
	opts.Store = st1
	var builds atomic.Int64
	build := func() predictor.Predictor {
		builds.Add(1)
		return mustPredictor("gshare.fast", budget)
	}
	cold := NewTimingMemo().cellCustom(pipeline.DefaultConfig(), "gshare.fast", "ideal", budget, build, prof, opts)
	if builds.Load() != 1 {
		t.Fatalf("cold cell built %d predictors, want 1", builds.Load())
	}
	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st2
	warm := NewTimingMemo().cellCustom(pipeline.DefaultConfig(), "gshare.fast", "ideal", budget, build, prof, opts)
	if builds.Load() != 1 {
		t.Fatalf("warm cell re-simulated (%d builds)", builds.Load())
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm != cold:\n%+v\n%+v", warm, cold)
	}
}

// TestAccuracyStoreEquivalence is the accuracy-family twin: store-served
// functional results are bit-identical to fresh simulation, and a warm
// cell never simulates.
func TestAccuracyStoreEquivalence(t *testing.T) {
	prof := workload.Profiles()[0]
	const budget = 32 << 10
	var computes atomic.Int64
	compute := func() funcsim.Result {
		computes.Add(1)
		return funcsim.Run(mustPredictor("bimode", budget), source(prof, storeTestOpts), funcsim.Options{
			MaxInsts:    storeTestOpts.Insts,
			WarmupInsts: storeTestOpts.Warmup,
		})
	}

	fresh := NewAccuracyMemo().cell("bimode", "", "", budget, prof, storeTestOpts, compute)

	dir := t.TempDir()
	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := storeTestOpts
	opts.Store = st1
	cold := NewAccuracyMemo().cell("bimode", "", "", budget, prof, opts, compute)
	if computes.Load() != 2 {
		t.Fatalf("cold cell computed %d times total, want 2 (storeless + cold)", computes.Load())
	}
	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st2
	warm := NewAccuracyMemo().cell("bimode", "", "", budget, prof, opts, compute)
	if computes.Load() != 2 {
		t.Fatalf("warm cell re-simulated (%d computes)", computes.Load())
	}
	if !reflect.DeepEqual(cold, fresh) || !reflect.DeepEqual(warm, fresh) {
		t.Fatalf("store round-trip drifted:\nfresh %+v\ncold  %+v\nwarm  %+v", fresh, cold, warm)
	}
	if s := st1.Stats(); s.Misses != 1 || s.Writes != 1 {
		t.Fatalf("cold store traffic = %+v, want 1 miss, 1 write", s)
	}
	if s := st2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("warm store traffic = %+v, want 1 hit", s)
	}
}

// TestStoreKeySeparatesFamilies proves an accuracy cell and a timing cell
// with the same (kind, budget, bench, window) never collide in the store:
// the family and machine components keep their content addresses apart.
func TestStoreKeySeparatesFamilies(t *testing.T) {
	prof := workload.Profiles()[0]
	const budget = 32 << 10
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := storeTestOpts
	opts.Store = st
	NewTimingMemo().Cell("gshare.fast", budget, Ideal, prof, opts)
	NewAccuracyMemo().cell("gshare.fast", "ideal", "", budget, prof, opts, func() funcsim.Result {
		return funcsim.Run(mustPredictor("gshare.fast", budget), source(prof, opts), funcsim.Options{
			MaxInsts:    opts.Insts,
			WarmupInsts: opts.Warmup,
		})
	})
	if s := st.Stats(); s.Misses != 2 || s.Writes != 2 || s.Hits != 0 {
		t.Fatalf("families collided in the store: %+v", s)
	}
}
