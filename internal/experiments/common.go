package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"branchsim/internal/core"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/textplot"
	"branchsim/internal/trace"
	"branchsim/internal/tracestore"
	"branchsim/internal/workload"
)

// traceStore memoizes each benchmark's recorded stream across every
// experiment grid in the process: the first (kind × budget × benchmark)
// cell to touch a benchmark records its live stream, all later cells —
// including cells of other experiments run with the same instruction
// budget — replay it. Replay is bit-identical to live generation
// (internal/tracestore's equivalence tests), so results are unchanged; only
// the per-cell generation cost disappears.
var traceStore = tracestore.New()

// source returns a replay cursor over prof's memoized recording at
// opts.Insts instructions.
func source(prof workload.Profile, opts Options) trace.Source {
	key := tracestore.Key{Name: prof.Name, Seed: prof.Seed, Insts: opts.Insts}
	return traceStore.Source(key, func() trace.Source { return workload.New(prof) })
}

// sidecar returns the memoized memory-latency sidecar for prof's recording
// under cfg's cache geometry (see pipeline.BuildMemSidecar).
func sidecar(prof workload.Profile, opts Options, cfg pipeline.Config) *pipeline.MemSidecar {
	key := tracestore.Key{Name: prof.Name, Seed: prof.Seed, Insts: opts.Insts}
	return traceStore.MemSidecar(key, pipeline.MemGeometryOf(cfg),
		func() trace.Source { return workload.New(prof) })
}

// traceDigest returns the content digest of prof's recorded stream at
// opts.Insts instructions — the identity that binds persistent store
// entries to the exact bytes they were measured on.
func traceDigest(prof workload.Profile, opts Options) string {
	key := tracestore.Key{Name: prof.Name, Seed: prof.Seed, Insts: opts.Insts}
	return traceStore.Digest(key, func() trace.Source { return workload.New(prof) })
}

// machineString renders cfg's canonical form for the persistent store's
// Machine key component. %+v over Config.Canonical is deterministic and
// self-extending: a new Config field changes the rendering, which
// invalidates every dependent cell by construction.
func machineString(cfg pipeline.Config) string {
	return fmt.Sprintf("%+v", cfg.Canonical())
}

// TraceStoreStats reports the process-wide trace store's footprint:
// memoized recordings and their total bytes.
func TraceStoreStats() (recordings int, bytes int64) {
	return traceStore.Len(), traceStore.SizeBytes()
}

// SidecarStats reports the process-wide store's memory-latency sidecars:
// precomputed (recording, geometry) columns and their total bytes.
func SidecarStats() (sidecars int, bytes int64) {
	return traceStore.SidecarLen(), traceStore.SidecarSizeBytes()
}

// FuseMode selects how a plan's accuracy and timing cells execute. It is
// an execution strategy, not an identity: both modes publish bit-identical
// Results under the same canonical keys (TestFusedEquivalence,
// TestFusedTimingPlan), so the knob exists only for A/B timing and for
// falling back if a platform ever misbehaves.
type FuseMode int

const (
	// FuseAuto — the zero value, so fusion is the default — groups a
	// plan's cold accuracy cells by benchmark and its cold timing cells by
	// (benchmark, cache geometry), and runs each group through one fused
	// trace pass (funcsim.RunMany / pipeline.RunMany): one cursor walk
	// feeds every lane of the group.
	FuseAuto FuseMode = iota
	// FuseOff lowers every accuracy and timing cell to its own per-cell
	// run, the pre-fusion schedule (cmd/reproduce -nofuse).
	FuseOff
)

// Options configures an experiment run.
type Options struct {
	// Insts is the dynamic instruction budget per benchmark; Warmup
	// instructions are excluded from statistics. Zero selects the
	// defaults (8M / 2M), the scaled-down equivalent of the paper's
	// >1B-instruction runs with a 500M skip (the synthetic programs have
	// no initialization phase and reach steady state much sooner).
	Insts  int64
	Warmup int64
	// Parallel bounds concurrent simulations; zero means GOMAXPROCS.
	Parallel int
	// Store, when non-nil, is the persistent result store the memo tiers
	// resolve through before simulating: distinct cells hit disk first, and
	// fresh computes are written back, making reruns incremental across
	// processes. Nil keeps everything in-memory.
	Store *resultstore.Store
	// Fuse selects the accuracy and timing cells' execution strategy; the
	// zero value (FuseAuto) runs them grid-fused, one trace pass per
	// group.
	Fuse FuseMode
}

func (o Options) normalize() Options {
	if o.Insts <= 0 {
		o.Insts = 8_000_000
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Insts / 4
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Outcome is a rendered experiment: tables, charts and notes, plus the raw
// grids for programmatic checks (tests, EXPERIMENTS.md generation).
type Outcome struct {
	ID     string
	Title  string
	Tables []*textplot.Table
	Charts []*textplot.Chart
	Notes  []string
}

// Render returns the outcome as text.
func (o *Outcome) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", o.ID, o.Title)
	for _, t := range o.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, c := range o.Charts {
		b.WriteString(c.Render())
		b.WriteByte('\n')
	}
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Table returns the outcome's table with the given title prefix, or nil.
func (o *Outcome) Table(prefix string) *textplot.Table {
	for _, t := range o.Tables {
		if strings.HasPrefix(t.Title, prefix) {
			return t
		}
	}
	return nil
}

// mustPredictor builds a predictor for a kind hardwired into an experiment
// table. An unknown kind or bad budget there is a programmer error, so it
// panics; NewPredictor's errors are already "experiments: "-prefixed, and
// the prefix is stripped before re-prefixing so it appears exactly once.
func mustPredictor(kind string, budgetBytes int) predictor.Predictor {
	p, err := NewPredictor(kind, budgetBytes)
	if err != nil {
		panic("experiments: " + strings.TrimPrefix(err.Error(), "experiments: "))
	}
	return p
}

// mustOverriding is mustPredictor for overriding organizations.
func mustOverriding(kind string, budgetBytes int) *core.Overriding {
	o, err := NewOverriding(kind, budgetBytes)
	if err != nil {
		panic("experiments: " + strings.TrimPrefix(err.Error(), "experiments: "))
	}
	return o
}

// timingRunCfg runs a fresh predictor organization built by build on
// prof's recorded stream under an explicit machine config, with the
// memoized memory-latency sidecar attached (the Sim falls back to live
// caches whenever the sidecar does not cover the run exactly).
func timingRunCfg(cfg pipeline.Config, build func() predictor.Predictor, prof workload.Profile, opts Options) pipeline.Result {
	sim := pipeline.New(cfg, build())
	sim.SetMemSidecar(sidecar(prof, opts, cfg))
	return sim.Run(source(prof, opts), opts.Insts, opts.Warmup)
}

// budgetLabel renders a budget the way the paper's x axes do.
func budgetLabel(bytes int) string {
	return fmt.Sprintf("%dK", bytes>>10)
}

// benchNames returns the short benchmark names in SPEC order.
func benchNames() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.ShortName())
	}
	return names
}
