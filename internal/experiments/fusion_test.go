package experiments

import (
	"reflect"
	"testing"

	"branchsim/internal/funcsim"
	"branchsim/internal/predictor"
	"branchsim/internal/resultstore"
	"branchsim/internal/workload"
)

// fusionTestOpts uses an instruction budget unique to this file (the
// timingmemo_test.go convention) so its cells never collide with other
// tests' entries in the process-wide trace store or memos.
var fusionTestOpts = Options{Insts: 140_000, Warmup: 35_000}

// fusionGrid declares a kinds × budgets × benchmarks accuracy grid into
// plan and returns the slice the sinks fill, indexed in declaration order.
func fusionGrid(plan *cellPlan, kinds []string, budgets []int, nBench int) []funcsim.Result {
	profiles := workload.Profiles()[:nBench]
	out := make([]funcsim.Result, len(kinds)*len(budgets)*len(profiles))
	i := 0
	for _, kind := range kinds {
		for _, budget := range budgets {
			for _, prof := range profiles {
				slot := &out[i]
				i++
				plan.addAccuracy(kind, "", budget, func() predictor.Predictor {
					return mustPredictor(kind, budget)
				}, prof, func(res funcsim.Result) { *slot = res })
			}
		}
	}
	return out
}

// TestFusedEquivalence is the fused scheduler's correctness contract at
// the plan level: the same grid executed fused and per-cell (FuseOff) must
// fill every sink with bit-identical Results. The kind mix covers all
// three lane shapes — batch-stepping (gshare), heavy scalar (perceptron),
// and cycle-aware (gshare.fast).
func TestFusedEquivalence(t *testing.T) {
	kinds := []string{"gshare", "perceptron", "gshare.fast"}
	budgets := []int{4 << 10, 32 << 10}
	const nBench = 3
	var fusedPlan, soloPlan cellPlan
	fused := fusionGrid(&fusedPlan, kinds, budgets, nBench)
	solo := fusionGrid(&soloPlan, kinds, budgets, nBench)

	fc := &FusionCounters{}
	fusedPlan.executeWith(fusionTestOpts, NewAccuracyMemo(), NewTimingMemo(), fc, &FusionCounters{})
	off := fusionTestOpts
	off.Fuse = FuseOff
	soloPlan.executeWith(off, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})

	for i := range fused {
		if !reflect.DeepEqual(fused[i], solo[i]) {
			t.Errorf("cell %d diverges between fused and per-cell execution:\n got %+v\nwant %+v",
				i, fused[i], solo[i])
		}
	}
	groups, lanes, fusedCells, soloCells := fc.stats()
	wantLanes := int64(len(kinds) * len(budgets) * nBench)
	if groups != nBench || lanes != wantLanes || fusedCells != wantLanes || soloCells != 0 {
		t.Errorf("fused counters = %d groups, %d lanes, %d fused, %d solo; want %d, %d, %d, 0",
			groups, lanes, fusedCells, soloCells, nBench, wantLanes, wantLanes)
	}
}

// TestFusedMemoAccounting pins the memo's accounting under fused
// publishing: a cell declared twice in one plan (the Figure 5 / Figure 6
// overlap) simulates once and the duplicate counts as a memory hit, and a
// later plan revisiting the cells resolves them solo — zero fused passes —
// with one hit per lookup, exactly as per-cell execution would count.
func TestFusedMemoAccounting(t *testing.T) {
	memo := NewAccuracyMemo()
	fc := &FusionCounters{}
	var plan cellPlan
	first := fusionGrid(&plan, []string{"bimode"}, []int{8 << 10}, 2)
	dup := fusionGrid(&plan, []string{"bimode"}, []int{8 << 10}, 2)
	plan.executeWith(fusionTestOpts, memo, NewTimingMemo(), fc, &FusionCounters{})

	if cells, hits := memo.stats(); cells != 2 || hits != 2 {
		t.Fatalf("after duplicated plan: %d cells, %d hits; want 2 distinct cells, 2 duplicate hits", cells, hits)
	}
	if !reflect.DeepEqual(first, dup) {
		t.Fatalf("duplicate sinks received different results:\n%+v\n%+v", first, dup)
	}
	if groups, lanes, fused, solo := fc.stats(); groups != 2 || lanes != 2 || fused != 4 || solo != 0 {
		t.Fatalf("counters after duplicated plan = %d/%d/%d/%d, want 2 groups, 2 lanes, 4 fused, 0 solo",
			groups, lanes, fused, solo)
	}

	// A second plan over the same memo finds every entry pre-existing.
	var again cellPlan
	revisit := fusionGrid(&again, []string{"bimode"}, []int{8 << 10}, 2)
	again.executeWith(fusionTestOpts, memo, NewTimingMemo(), fc, &FusionCounters{})
	if cells, hits := memo.stats(); cells != 2 || hits != 4 {
		t.Fatalf("after revisit: %d cells, %d hits; want still 2 cells, 4 hits", cells, hits)
	}
	if groups, _, _, solo := fc.stats(); groups != 2 || solo != 2 {
		t.Fatalf("revisit ran %d groups total (%d solo cells), want no new passes (2 groups, 2 solo)", groups, solo)
	}
	if !reflect.DeepEqual(revisit, first) {
		t.Fatalf("revisited cells diverge from the fused originals:\n%+v\n%+v", revisit, first)
	}
}

// TestFusedStoreFlow proves the fused scheduler's Get/Put store flow has
// exact parity with the per-cell Do path: a cold fused run misses and
// writes once per distinct cell, a warm rerun (fresh memo, second store
// over the same directory — a stand-in for a second process) serves every
// cell from disk and runs zero fused passes, and a -nofuse rerun reads the
// fused run's cells bit-identically.
func TestFusedStoreFlow(t *testing.T) {
	kinds := []string{"gshare", "2bcgskew"}
	budgets := []int{16 << 10}
	const nBench, nCells = 2, 4
	dir := t.TempDir()

	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := fusionTestOpts
	opts.Store = st1
	var coldPlan cellPlan
	cold := fusionGrid(&coldPlan, kinds, budgets, nBench)
	coldPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})
	if s := st1.Stats(); s.Misses != nCells || s.Writes != nCells || s.Hits != 0 {
		t.Fatalf("cold store traffic = %+v, want %d misses, %d writes", s, nCells, nCells)
	}

	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st2
	var warmPlan cellPlan
	warm := fusionGrid(&warmPlan, kinds, budgets, nBench)
	fcWarm := &FusionCounters{}
	warmPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), fcWarm, &FusionCounters{})
	if s := st2.Stats(); s.Hits != nCells || s.Misses != 0 || s.Invalidations != 0 {
		t.Fatalf("warm store traffic = %+v, want %d hits", s, nCells)
	}
	if groups, lanes, fused, solo := fcWarm.stats(); groups != 0 || lanes != 0 || fused != 0 || solo != nCells {
		t.Fatalf("warm rerun ran %d fused passes (%d lanes, %d fused cells, %d solo); want none, all %d solo",
			groups, lanes, fused, solo, nCells)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("store-served cells diverge from the fused originals:\n%+v\n%+v", warm, cold)
	}

	st3, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st3
	opts.Fuse = FuseOff
	var soloPlan cellPlan
	solo := fusionGrid(&soloPlan, kinds, budgets, nBench)
	soloPlan.executeWith(opts, NewAccuracyMemo(), NewTimingMemo(), &FusionCounters{}, &FusionCounters{})
	if s := st3.Stats(); s.Hits != nCells {
		t.Fatalf("-nofuse rerun store traffic = %+v, want %d hits", s, nCells)
	}
	if !reflect.DeepEqual(solo, cold) {
		t.Fatalf("-nofuse cells diverge from the fused store's records:\n%+v\n%+v", solo, cold)
	}
}
