package experiments

import (
	"sync"
	"testing"
)

// TestRunCellsSharedCaptureStress is the -race runtime twin of the
// sharedcapture analyzer (internal/analysis): the scheduler's worker
// goroutines capture shared mutable state from the parent, and the
// discipline the analyzer proves statically — every access to a written
// capture is lock-dominated or element-disjoint — is exercised here
// dynamically under the race detector. The seen slice is the grids'
// fan-in shape (each cell owns one element); sum is the lock-guarded
// shape.
func TestRunCellsSharedCaptureStress(t *testing.T) {
	const n = 2048
	var mu sync.Mutex
	sum := 0
	seen := make([]bool, n)
	var plan cellPlan
	for i := 0; i < n; i++ {
		plan.add(planKey("test", "stress", "", i, "bench"), func() {
			mu.Lock()
			sum += i
			mu.Unlock()
			seen[i] = true
		})
	}
	plan.execute(Options{Parallel: 16})
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}
