package experiments

import (
	"sync"
	"testing"
)

// TestForEachSharedCaptureStress is the -race runtime twin of the
// sharedcapture analyzer (internal/analysis): the worker pool's goroutines
// capture shared mutable state from the parent, and the discipline the
// analyzer proves statically — every access to a written capture is
// lock-dominated — is exercised here dynamically under the race detector.
func TestForEachSharedCaptureStress(t *testing.T) {
	const n = 2048
	var mu sync.Mutex
	sum := 0
	seen := make([]bool, n)
	forEach(n, 16, func(i int) {
		mu.Lock()
		sum += i
		seen[i] = true
		mu.Unlock()
	})
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}
