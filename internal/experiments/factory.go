// Package experiments defines the paper's experiments — one per table and
// figure — on top of the predictors, workloads, delay model and simulators,
// and provides the shared predictor factory the command-line tools use.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"branchsim/internal/core"
	"branchsim/internal/delaymodel"
	"branchsim/internal/predictor"
)

// QuickEntries is the quick predictor size used by every overriding
// configuration: a 2K-entry gshare, the paper's optimistic assumption
// (§4.1.2; the delay model itself allows only 1K entries in one cycle).
const QuickEntries = 2048

// PredictorKinds lists the predictor names NewPredictor accepts.
func PredictorKinds() []string {
	kinds := make([]string, 0, len(factories))
	for k := range factories {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

var factories = map[string]func(budgetBytes int) predictor.Predictor{
	"bimodal":        func(b int) predictor.Predictor { return predictor.NewBimodalFromBudget(b) },
	"gshare":         func(b int) predictor.Predictor { return predictor.NewGShareFromBudget(b) },
	"gselect":        func(b int) predictor.Predictor { return predictor.NewGSelectFromBudget(b) },
	"bimode":         func(b int) predictor.Predictor { return predictor.NewBiModeFromBudget(b) },
	"local":          func(b int) predictor.Predictor { return predictor.NewLocalFromBudget(b) },
	"ev6":            func(b int) predictor.Predictor { return predictor.NewEV6FromBudget(b) },
	"2bcgskew":       func(b int) predictor.Predictor { return predictor.NewGSkew2BcFromBudget(b) },
	"multicomponent": func(b int) predictor.Predictor { return predictor.NewMultiComponentFromBudget(b) },
	"perceptron":     func(b int) predictor.Predictor { return predictor.NewPerceptronFromBudget(b) },
	"gshare.fast":    func(b int) predictor.Predictor { return NewGShareFast(b) },
	"bimode.fast":    func(b int) predictor.Predictor { return NewBiModeFast(b) },
	"yags":           func(b int) predictor.Predictor { return predictor.NewYAGSFromBudget(b) },
	"agree":          func(b int) predictor.Predictor { return predictor.NewAgreeFromBudget(b) },
	"taken":          func(int) predictor.Predictor { return predictor.Taken{} },
	"nottaken":       func(int) predictor.Predictor { return predictor.NotTaken{} },
}

// NewPredictor builds a predictor of the named kind sized to budgetBytes.
func NewPredictor(kind string, budgetBytes int) (predictor.Predictor, error) {
	f, ok := factories[strings.ToLower(kind)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown predictor %q (have %s)",
			kind, strings.Join(PredictorKinds(), ", "))
	}
	return f(budgetBytes), nil
}

// NewGShareFast builds a gshare.fast sized to budgetBytes with its PHT read
// latency taken from the delay model — the pipeline is exactly as deep as
// the table is slow.
func NewGShareFast(budgetBytes int) *core.GShareFast {
	entries := 4
	for entries*2*2/8 <= budgetBytes {
		entries *= 2
	}
	lat := delaymodel.Default.PHTReadCycles(entries)
	return core.New(core.Config{Entries: entries, Latency: lat})
}

// NewBiModeFast builds a pipelined bi-mode (the §5 reorganization) sized to
// budgetBytes with its direction-PHT read latency from the delay model.
func NewBiModeFast(budgetBytes int) *core.BiModeFast {
	dir := 4
	for dir*2*2*2/8 <= budgetBytes {
		dir *= 2
	}
	lat := delaymodel.Default.PHTReadCycles(dir)
	return core.NewBiModeFast(core.BiModeFastConfig{
		DirEntries:    dir,
		ChoiceEntries: 2048,
		Latency:       lat,
	})
}

// NewOverriding wraps the named slow predictor in the overriding
// organization behind a 2K-entry single-cycle quick gshare, with the slow
// latency from the delay model (Figure 2 and the right half of Figure 7).
func NewOverriding(kind string, budgetBytes int) (*core.Overriding, error) {
	slow, err := NewPredictor(kind, budgetBytes)
	if err != nil {
		return nil, err
	}
	lat := delaymodel.Default.ForPredictor(slow)
	quick := predictor.NewGShare(QuickEntries, 0)
	return core.NewOverriding(quick, slow, lat), nil
}

// PaperBudgets returns the hardware-budget sweep of Figures 5 and 7:
// 16 KB to 512 KB in powers of two.
func PaperBudgets() []int {
	return []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
}

// Figure1Budgets returns the wider sweep of Figure 1: 2 KB to 512 KB.
func Figure1Budgets() []int {
	return []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
		128 << 10, 256 << 10, 512 << 10}
}
