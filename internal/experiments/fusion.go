package experiments

import (
	"sync"

	"branchsim/internal/funcsim"
	"branchsim/internal/resultstore"
	"branchsim/internal/trace"
)

// This file is the fused accuracy scheduler: the execution strategy behind
// plan.execute's FuseAuto lowering. A plan's accuracy specs arrive grouped
// by benchmark; each group resolves through the same tiers a per-cell run
// would — in-process memo, then the persistent store — and whatever
// survives both becomes lanes of a single funcsim.RunMany trace pass.
// Fusion changes only when simulations happen, never what they compute or
// how they are keyed: every lane's Result is published into the memo and
// the store under its unchanged per-cell canonical key, so a warm rerun,
// a -nofuse rerun, and a fused run are interchangeable byte for byte
// (TestFusedEquivalence, TestFusedStoreFlow).

// FusionCounters tallies the fused scheduler's work for -timings: how
// many per-benchmark groups actually simulated (groups whose memo and
// store tiers left at least one cold lane), how many lanes those passes
// carried, and how each declared accuracy cell was ultimately served —
// from a fused lane, or solo (memo or store tier, or per-cell fallback).
type FusionCounters struct {
	mu     sync.Mutex
	groups int64 // guarded by mu
	lanes  int64 // guarded by mu
	fused  int64 // guarded by mu
	solo   int64 // guarded by mu
}

func (c *FusionCounters) add(groups, lanes, fused, solo int64) {
	c.mu.Lock()
	c.groups += groups
	c.lanes += lanes
	c.fused += fused
	c.solo += solo
	c.mu.Unlock()
}

// fusionCounters is the process-wide tally, sibling to accuracyMemo.
var fusionCounters = &FusionCounters{}

// FusionStats reports the process-wide fused-scheduler counters: fused
// trace passes run, predictor lanes they simulated, and accuracy cells
// served fused vs solo.
func FusionStats() (groups, lanes, fusedCells, soloCells int64) {
	return fusionCounters.stats()
}

// stats snapshots the counters.
func (c *FusionCounters) stats() (groups, lanes, fused, solo int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups, c.lanes, c.fused, c.solo
}

// fusedLane is one distinct cold-candidate cell of a fused group: its
// spec, its canonical key, the memo entry this group owns (created in the
// memo tier, published exactly once), and every sink waiting on it — the
// owning spec's plus any in-group duplicates'.
type fusedLane struct {
	spec  accuracySpec
	key   accuracyKey
	entry *accuracyEntry
	sinks []func(funcsim.Result)
}

// publish resolves the lane's entry exactly once via compute, fans the
// published Result out to every sink, and returns it. When the entry was
// already resolved (a racing per-cell lookup got there first), the sinks
// see the previously published value, not compute's — the once is the
// arbiter, same as result().
func (l *fusedLane) publish(compute func() funcsim.Result) funcsim.Result {
	l.entry.once.Do(func() { l.entry.res = compute() })
	res := l.entry.res
	for _, sink := range l.sinks {
		sink(res)
	}
	return res
}

// runFusedGroup resolves one benchmark's accuracy specs: memo tier, store
// tier, then one fused trace pass over whatever is still cold.
func runFusedGroup(m *AccuracyMemo, fc *FusionCounters, specs []accuracySpec, opts Options) {
	opts = opts.normalize()

	// Memo tier. Specs whose entry this group creates become owned lanes;
	// in-group duplicates of an owned key attach their sink to its lane.
	// Either way a lookup that finds an existing entry is a memory hit,
	// exactly as in result() — fusion must not change the memo's
	// accounting. Entries that predate the group (another experiment's
	// cells, e.g. Figure 6 revisiting Figure 5's 64 KB column) are not
	// ours to simulate: they resolve solo below.
	var lanes, preowned []*fusedLane
	owned := make(map[accuracyKey]*fusedLane)
	m.mu.Lock()
	for _, s := range specs {
		key := specKey(s, opts)
		if l := owned[key]; l != nil {
			m.hits++
			l.sinks = append(l.sinks, s.sink)
			continue
		}
		e := m.entries[key]
		l := &fusedLane{spec: s, key: key, entry: e, sinks: []func(funcsim.Result){s.sink}}
		if e != nil {
			m.hits++
			preowned = append(preowned, l)
			continue
		}
		l.entry = &accuracyEntry{}
		m.entries[key] = l.entry
		owned[key] = l
		lanes = append(lanes, l)
	}
	m.mu.Unlock()

	// A pre-existing entry is usually already computed and its once a
	// no-op; the solo compute is the defensive path for an entry someone
	// created but never resolved.
	for _, l := range preowned {
		l.publish(func() funcsim.Result {
			return storedCompute(l.key, l.spec.prof, opts, func() funcsim.Result {
				return runSpec(l.spec, opts)
			})
		})
		fc.add(0, 0, 0, int64(len(l.sinks)))
	}

	// Store tier: probe each owned lane's cell on disk. The Get/Put pair
	// counts store traffic exactly as the per-cell Do path does, so
	// -timings reads identically with and without fusion.
	cold := lanes
	var digest string
	if opts.Store != nil && len(lanes) > 0 {
		digest = traceDigest(specs[0].prof, opts)
		cold = cold[:0]
		for _, l := range lanes {
			if rec, ok := opts.Store.Get(l.key.storeKey(digest)); ok && rec.Accuracy != nil {
				l.publish(func() funcsim.Result { return *rec.Accuracy })
				fc.add(0, 0, 0, int64(len(l.sinks)))
				continue
			}
			cold = append(cold, l)
		}
	}
	if len(cold) == 0 {
		return
	}

	// Fused pass: one trace cursor feeds every residual cold lane.
	src := source(specs[0].prof, opts)
	bs, ok := src.(trace.BranchSource)
	if !ok {
		// A source without the branch-batch protocol cannot fuse; resolve
		// the lanes per-cell — identical results, just one pass each.
		for _, l := range cold {
			l.publish(func() funcsim.Result {
				return storedCompute(l.key, l.spec.prof, opts, func() funcsim.Result {
					return runSpec(l.spec, opts)
				})
			})
			fc.add(0, 0, 0, int64(len(l.sinks)))
		}
		return
	}
	fl := make([]funcsim.Lane, len(cold))
	for i, l := range cold {
		fl[i] = funcsim.Lane{P: l.spec.build()}
	}
	results := funcsim.RunMany(fl, bs, funcsim.Options{
		MaxInsts:    opts.Insts,
		WarmupInsts: opts.Warmup,
	})
	var fusedCells int64
	for i, l := range cold {
		res := l.publish(func() funcsim.Result { return results[i] })
		if opts.Store != nil {
			skey := l.key.storeKey(digest)
			opts.Store.Put(skey, resultstore.Record{Key: skey, Accuracy: &res})
		}
		fusedCells += int64(len(l.sinks))
	}
	fc.add(1, int64(len(cold)), fusedCells, 0)
}
