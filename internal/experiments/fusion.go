package experiments

import (
	"sync"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/resultstore"
	"branchsim/internal/trace"
)

// This file is the fused scheduler: the execution strategy behind
// plan.execute's FuseAuto lowering, for both cell families. A plan's
// accuracy specs arrive grouped by benchmark and its timing specs by
// (benchmark, cache geometry); each group resolves through the same tiers a
// per-cell run would — in-process memo, then the persistent store — and
// whatever survives both becomes lanes of a single fused trace pass
// (funcsim.RunMany for accuracy, pipeline.RunMany for timing). Fusion
// changes only when simulations happen, never what they compute or how
// they are keyed: every lane's Result is published into the memo and the
// store under its unchanged per-cell canonical key, so a warm rerun, a
// -nofuse rerun, and a fused run are interchangeable byte for byte
// (TestFusedEquivalence, TestFusedStoreFlow, TestFusedTimingPlan).
//
// The two schedulers share all lane/group/publish machinery below; they
// differ only in their spec type and their group-run function, supplied
// through fusedGroupParams. The memo entries themselves (accuracyEntry,
// timingEntry) stay concrete so the oncepublish and lockguard analyzers
// keep certifying their publication protocol.

// FusionCounters tallies one fused scheduler's work for -timings: how many
// groups actually simulated (groups whose memo and store tiers left at
// least one cold lane), how many lanes those passes carried, and how each
// declared cell was ultimately served — from a fused lane, or solo (memo
// or store tier, or per-cell fallback). The accuracy and timing schedulers
// each keep their own instance.
type FusionCounters struct {
	mu     sync.Mutex
	groups int64 // guarded by mu
	lanes  int64 // guarded by mu
	fused  int64 // guarded by mu
	solo   int64 // guarded by mu
}

func (c *FusionCounters) add(groups, lanes, fused, solo int64) {
	c.mu.Lock()
	c.groups += groups
	c.lanes += lanes
	c.fused += fused
	c.solo += solo
	c.mu.Unlock()
}

// fusionCounters is the process-wide accuracy tally, sibling to
// accuracyMemo; timingFusionCounters is the timing tally, sibling to
// timingMemo.
var (
	fusionCounters       = &FusionCounters{}
	timingFusionCounters = &FusionCounters{}
)

// FusionStats reports the process-wide fused accuracy-scheduler counters:
// fused trace passes run, predictor lanes they simulated, and accuracy
// cells served fused vs solo.
func FusionStats() (groups, lanes, fusedCells, soloCells int64) {
	return fusionCounters.stats()
}

// TimingFusionStats is FusionStats for the fused timing scheduler: fused
// timing passes run, pipeline lanes they simulated, and timing cells
// served fused vs solo.
func TimingFusionStats() (groups, lanes, fusedCells, soloCells int64) {
	return timingFusionCounters.stats()
}

// stats snapshots the counters.
func (c *FusionCounters) stats() (groups, lanes, fused, solo int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groups, c.lanes, c.fused, c.solo
}

// fusedLane is one distinct cold-candidate cell of a fused group: its
// spec, the resolve guard of the memo entry this group owns (created in
// the memo tier, published exactly once), and every sink waiting on it —
// the owning spec's plus any in-group duplicates'.
type fusedLane[S, R any] struct {
	spec    S
	resolve func(compute func() R) R
	sinks   []func(R)
}

// publish resolves the lane's entry exactly once via compute, fans the
// published Result out to every sink, and returns it. When the entry was
// already resolved (a racing per-cell lookup got there first), the sinks
// see the previously published value, not compute's — the entry's once is
// the arbiter, same as the memos' result paths.
func (l *fusedLane[S, R]) publish(compute func() R) R {
	res := l.resolve(compute)
	for _, sink := range l.sinks {
		sink(res)
	}
	return res
}

// fusedGroupParams supplies the spec-type-specific pieces of one fused
// group's resolution; everything else — tier order, publication, counter
// accounting — is shared by runFusedGroupOf.
type fusedGroupParams[S, R any] struct {
	// acquire is the memo tier: classify the group's specs under one lock
	// acquisition into owned lanes (entries this group created, the fusion
	// candidates) and preowned lanes (entries that predate the group —
	// another experiment's cells — which are not ours to simulate).
	acquire func(specs []S) (owned, preowned []*fusedLane[S, R])
	// solo is the full per-cell compute for one spec, resolving through
	// the persistent store when one is configured.
	solo func(S) R
	// probe is the store tier's read for one spec; false when the cell is
	// cold or no store is configured.
	probe func(S) (R, bool)
	// put writes one fused-computed cell back to the store; a no-op
	// without a store.
	put func(S, R)
	// runCold is the fused pass over the residual cold specs, returning
	// results index-aligned with them; false when the source cannot fuse,
	// sending the lanes to the per-cell fallback.
	runCold func(specs []S) ([]R, bool)
}

// runFusedGroupOf resolves one group: memo tier, store tier, then one
// fused pass over whatever is still cold. The Get/Put pair counts store
// traffic exactly as the per-cell Do path does, so -timings reads
// identically with and without fusion.
func runFusedGroupOf[S, R any](p fusedGroupParams[S, R], fc *FusionCounters, specs []S) {
	owned, preowned := p.acquire(specs)

	// A pre-existing entry is usually already computed and its once a
	// no-op; the solo compute is the defensive path for an entry someone
	// created but never resolved.
	for _, l := range preowned {
		l.publish(func() R { return p.solo(l.spec) })
		fc.add(0, 0, 0, int64(len(l.sinks)))
	}

	// Store tier: probe each owned lane's cell on disk.
	cold := owned[:0]
	for _, l := range owned {
		if res, ok := p.probe(l.spec); ok {
			l.publish(func() R { return res })
			fc.add(0, 0, 0, int64(len(l.sinks)))
			continue
		}
		cold = append(cold, l)
	}
	if len(cold) == 0 {
		return
	}

	// Fused pass: one trace pass feeds every residual cold lane.
	coldSpecs := make([]S, len(cold))
	for i, l := range cold {
		coldSpecs[i] = l.spec
	}
	results, ok := p.runCold(coldSpecs)
	if !ok {
		// A source without the fused protocol cannot fuse; resolve the
		// lanes per-cell — identical results, just one pass each.
		for _, l := range cold {
			l.publish(func() R { return p.solo(l.spec) })
			fc.add(0, 0, 0, int64(len(l.sinks)))
		}
		return
	}
	var fusedCells int64
	for i, l := range cold {
		res := l.publish(func() R { return results[i] })
		p.put(l.spec, res)
		fusedCells += int64(len(l.sinks))
	}
	fc.add(1, int64(len(cold)), fusedCells, 0)
}

// runFusedGroup resolves one benchmark's accuracy specs through the shared
// scheduler, fused via funcsim.RunMany.
func runFusedGroup(m *AccuracyMemo, fc *FusionCounters, specs []accuracySpec, opts Options) {
	opts = opts.normalize()
	var digest string // bound on first store probe, reused by put
	runFusedGroupOf(fusedGroupParams[accuracySpec, funcsim.Result]{
		acquire: func(ss []accuracySpec) (owned, preowned []*fusedLane[accuracySpec, funcsim.Result]) {
			return m.acquireLanes(ss, opts)
		},
		solo: func(s accuracySpec) funcsim.Result {
			return storedCompute(specKey(s, opts), s.prof, opts, func() funcsim.Result {
				return runSpec(s, opts)
			})
		},
		probe: func(s accuracySpec) (funcsim.Result, bool) {
			if opts.Store == nil {
				return funcsim.Result{}, false
			}
			if digest == "" {
				digest = traceDigest(s.prof, opts)
			}
			rec, ok := opts.Store.Get(specKey(s, opts).storeKey(digest))
			if !ok || rec.Accuracy == nil {
				return funcsim.Result{}, false
			}
			return *rec.Accuracy, true
		},
		put: func(s accuracySpec, res funcsim.Result) {
			if opts.Store == nil {
				return
			}
			skey := specKey(s, opts).storeKey(digest)
			opts.Store.Put(skey, resultstore.Record{Key: skey, Accuracy: &res})
		},
		runCold: func(ss []accuracySpec) ([]funcsim.Result, bool) {
			src := source(ss[0].prof, opts)
			bs, ok := src.(trace.BranchSource)
			if !ok {
				return nil, false
			}
			fl := make([]funcsim.Lane, len(ss))
			for i, s := range ss {
				fl[i] = funcsim.Lane{P: s.build()}
			}
			return funcsim.RunMany(fl, bs, funcsim.Options{
				MaxInsts:    opts.Insts,
				WarmupInsts: opts.Warmup,
			}), true
		},
	}, fc, specs)
}

// runFusedTimingGroup resolves one (benchmark, cache geometry) group's
// timing specs through the shared scheduler, fused via pipeline.RunMany:
// one trace cursor and one memory sidecar feed every pipeline
// configuration of the group.
func runFusedTimingGroup(m *TimingMemo, fc *FusionCounters, specs []timingSpec, opts Options) {
	opts = opts.normalize()
	var digest string // bound on first store probe, reused by put
	runFusedGroupOf(fusedGroupParams[timingSpec, pipeline.Result]{
		acquire: func(ss []timingSpec) (owned, preowned []*fusedLane[timingSpec, pipeline.Result]) {
			return m.acquireLanes(ss, opts)
		},
		solo: func(s timingSpec) pipeline.Result {
			return storedComputeTiming(specTimingKey(s, opts), s.prof, opts, func() pipeline.Result {
				return timingRunCfg(s.cfg, s.build, s.prof, opts)
			})
		},
		probe: func(s timingSpec) (pipeline.Result, bool) {
			if opts.Store == nil {
				return pipeline.Result{}, false
			}
			if digest == "" {
				digest = traceDigest(s.prof, opts)
			}
			rec, ok := opts.Store.Get(specTimingKey(s, opts).storeKey(digest))
			if !ok || rec.Timing == nil {
				return pipeline.Result{}, false
			}
			return *rec.Timing, true
		},
		put: func(s timingSpec, res pipeline.Result) {
			if opts.Store == nil {
				return
			}
			skey := specTimingKey(s, opts).storeKey(digest)
			opts.Store.Put(skey, resultstore.Record{Key: skey, Timing: &res})
		},
		runCold: func(ss []timingSpec) ([]pipeline.Result, bool) {
			// pipeline.RunMany accepts any source — it simulates per-lane
			// live caches when the sidecar does not cover the run — so the
			// timing scheduler never needs the per-cell fallback.
			lanes := make([]pipeline.Lane, len(ss))
			for i, s := range ss {
				lanes[i] = pipeline.Lane{Cfg: s.cfg, Pred: s.build()}
			}
			return pipeline.RunMany(lanes, source(ss[0].prof, opts),
				sidecar(ss[0].prof, opts, ss[0].cfg), opts.Insts, opts.Warmup), true
		},
	}, fc, specs)
}
