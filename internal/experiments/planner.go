package experiments

import (
	"fmt"
	"runtime/debug"
	"sync"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/workload"
)

// This file is the experiment layer's scheduler: experiments no longer
// compute their grids inline, they enumerate a plan of cells — each one a
// canonical key plus a closure — and hand the plan to a worker pool that
// shards distinct cells across goroutines. The closures fan results back
// into preallocated grid slices (each cell owns exactly one element, so
// the fan-in needs no locking) and resolve through the tiered store:
// in-memory memo (timingmemo.go, accuracymemo.go), then the persistent
// resultstore when Options.Store is set, then simulation.

// A PlannedCell is one schedulable unit of an experiment grid: the canonical key
// naming what it computes — the identity a panic is reported under — and
// the closure that computes it.
type PlannedCell struct {
	Key string
	Run func()
}

// An accuracySpec is one standard accuracy cell declared for fused
// scheduling: the canonical (kind, org, budget, benchmark) identity, the
// predictor construction, and the sink its Result fans back into. Unlike
// a PlannedCell its computation is not a closed closure — the scheduler
// decides, per benchmark and after the memo and store tiers resolve,
// which specs still need simulation, and runs those together through one
// funcsim.RunMany trace pass (fusion.go).
type accuracySpec struct {
	kind   string
	org    string
	budget int
	build  func() predictor.Predictor
	prof   workload.Profile
	sink   func(funcsim.Result)
}

// A timingSpec is one timing cell declared for fused scheduling, the
// timing sibling of accuracySpec: the canonical (kind, org, budget,
// machine, benchmark) identity, the predictor construction, and the sink
// its Result fans back into. The scheduler decides, per (benchmark,
// cache geometry) group and after the memo and store tiers resolve, which
// specs still need simulation, and runs those together through one
// pipeline.RunMany trace pass (fusion.go).
type timingSpec struct {
	kind   string
	org    string
	budget int
	cfg    pipeline.Config
	build  func() predictor.Predictor
	prof   workload.Profile
	sink   func(pipeline.Result)
}

// cellPlan accumulates an experiment's cells before execution.
type cellPlan struct {
	cells []PlannedCell
	acc   []accuracySpec
	tim   []timingSpec
}

func (p *cellPlan) add(key string, run func()) {
	p.cells = append(p.cells, PlannedCell{Key: key, Run: run})
}

// addAccuracy declares one standard accuracy cell (sim = "": plain
// funcsim.Run semantics), published under exactly the same canonical key
// whether it later executes fused or per-cell. Accuracy cells with extra
// simulator shape (RunBlocks) or diagnostics (PerClass) stay on add;
// RunMany does not carry their state.
func (p *cellPlan) addAccuracy(kind, org string, budget int, build func() predictor.Predictor, prof workload.Profile, sink func(funcsim.Result)) {
	p.acc = append(p.acc, accuracySpec{kind: kind, org: org, budget: budget, build: build, prof: prof, sink: sink})
}

// addTiming declares one timing cell on machine cfg, published under
// exactly the same canonical key whether it later executes fused or
// per-cell. As with cellCustom, callers must ensure that equal
// (cfg.Canonical, kind, org, budget) always denotes an identical
// construction.
func (p *cellPlan) addTiming(cfg pipeline.Config, kind, org string, budget int, build func() predictor.Predictor, prof workload.Profile, sink func(pipeline.Result)) {
	p.tim = append(p.tim, timingSpec{kind: kind, org: org, budget: budget, cfg: cfg, build: build, prof: prof, sink: sink})
}

// execute runs the plan: plain cells as scheduled, accuracy and timing
// specs lowered to fused groups (FuseAuto) or to per-cell runs (FuseOff).
// Both lowerings resolve through the same memo and store tiers under the
// same keys, so the mode is invisible to results and caches.
func (p *cellPlan) execute(opts Options) {
	p.executeWith(opts, accuracyMemo, timingMemo, fusionCounters, timingFusionCounters)
}

// executeWith is execute with the process-wide memos and fusion counters
// made explicit so tests can run plans against fresh ones.
func (p *cellPlan) executeWith(opts Options, memo *AccuracyMemo, tmemo *TimingMemo, fc, tfc *FusionCounters) {
	opts = opts.normalize()
	cells := p.cells
	if opts.Fuse == FuseOff {
		for _, s := range p.acc {
			cells = append(cells, PlannedCell{
				Key: planKey("accuracy", s.kind, s.org, s.budget, s.prof.Name),
				Run: func() { s.sink(memo.specCell(s, opts)) },
			})
		}
		for _, s := range p.tim {
			cells = append(cells, PlannedCell{
				Key: planKey("timing", s.kind, s.org, s.budget, s.prof.Name),
				Run: func() { s.sink(tmemo.specCell(s, opts)) },
			})
		}
	} else {
		for _, g := range groupSpecs(p.acc, func(s accuracySpec) string { return s.prof.Name }) {
			cells = append(cells, PlannedCell{
				Key: fmt.Sprintf("accuracy.fused|bench=%s|lanes=%d", g[0].prof.Name, len(g)),
				Run: func() { runFusedGroup(memo, fc, g, opts) },
			})
		}
		for _, g := range groupSpecs(p.tim, timingGroupKey) {
			cells = append(cells, PlannedCell{
				Key: fmt.Sprintf("timing.fused|bench=%s|lanes=%d", g[0].prof.Name, len(g)),
				Run: func() { runFusedTimingGroup(tmemo, tfc, g, opts) },
			})
		}
	}
	RunCells(opts.Parallel, cells)
}

// timingGroup keys the fused timing unit: one trace pass per recorded
// stream and cache geometry. Lanes in a group share the cursor and the
// memory sidecar, so they must agree on both; the measurement window is
// uniform across a plan (Options), so it needs no key component.
type timingGroup struct {
	bench string
	seed  uint64
	geom  pipeline.MemGeometry
}

func timingGroupKey(s timingSpec) timingGroup {
	return timingGroup{bench: s.prof.Name, seed: s.prof.Seed, geom: pipeline.MemGeometryOf(s.cfg)}
}

// groupSpecs buckets specs by key in first-appearance order — the fused
// unit is "one trace pass per group".
func groupSpecs[S any, G comparable](specs []S, key func(S) G) [][]S {
	idx := make(map[G]int)
	var groups [][]S
	for _, s := range specs {
		i, ok := idx[key(s)]
		if !ok {
			i = len(groups)
			idx[key(s)] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], s)
	}
	return groups
}

// planKey names a cell for the scheduler: the canonical identity minus the
// measurement window (uniform across a plan) and the trace digest (unknown
// until the stream is recorded). extra carries cell context beyond the
// standard axes — an ablation's machine variant, a block-simulation shape.
func planKey(family, kind, org string, budget int, bench string, extra ...string) string {
	key := fmt.Sprintf("%s|kind=%s|org=%s|budget=%d|bench=%s", family, kind, org, budget, bench)
	for _, e := range extra {
		key += "|" + e
	}
	return key
}

// cellPanic records the first panic raised by any cell in a plan so the
// scheduler can re-raise it with the offending cell's canonical key — a
// worker-pool panic with no cell context is undebuggable in a 696-cell
// grid.
type cellPanic struct {
	mu    sync.Mutex
	set   bool   // guarded by mu
	key   string // guarded by mu
	val   any    // guarded by mu
	stack string // guarded by mu
}

func (p *cellPanic) record(key string, val any, stack []byte) {
	p.mu.Lock()
	if !p.set {
		p.set, p.key, p.val, p.stack = true, key, val, string(stack)
	}
	p.mu.Unlock()
}

func (p *cellPanic) triggered() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.set
}

// rethrow re-raises the recorded panic, now carrying the cell key and the
// original goroutine's stack.
func (p *cellPanic) rethrow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.set {
		panic(fmt.Sprintf("experiments: cell %s panicked: %v\n%s", p.key, p.val, p.stack))
	}
}

// runCell executes one cell, converting a panic into a recorded
// (key, value, stack) triple instead of letting it unwind a bare worker.
func runCell(p *cellPanic, c PlannedCell) {
	defer func() {
		if r := recover(); r != nil {
			p.record(c.Key, r, debug.Stack())
		}
	}()
	c.Run()
}

// RunCells executes a plan's cells on a worker pool of at most parallel
// goroutines. Cells must write to disjoint destinations (each owns its
// grid element); cells that share a canonical result key coalesce in the
// memo/store tiers rather than here. If any cell panics, the remaining
// cells are skipped and the panic is re-raised from RunCells with the
// offending cell's key prepended.
func RunCells(parallel int, cells []PlannedCell) {
	if parallel > len(cells) {
		parallel = len(cells)
	}
	var pan cellPanic
	if parallel <= 1 {
		for _, c := range cells {
			runCell(&pan, c)
			if pan.triggered() {
				break
			}
		}
		pan.rethrow()
		return
	}
	var wg sync.WaitGroup
	next := make(chan PlannedCell)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if pan.triggered() {
					continue
				}
				runCell(&pan, c)
			}
		}()
	}
	for _, c := range cells {
		next <- c
	}
	close(next)
	wg.Wait()
	pan.rethrow()
}
