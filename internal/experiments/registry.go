package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner executes one experiment.
type Runner func(Options) *Outcome

// Registry maps experiment ids to their runners, in the order DESIGN.md's
// experiment index lists them.
var Registry = []struct {
	ID     string
	Runner Runner
}{
	{"figure1", Figure1},
	{"table2", Table2},
	{"figure2", Figure2},
	{"figure5", Figure5},
	{"figure6", Figure6},
	{"figure7", Figure7},
	{"figure8", Figure8},
	{"delayedupdate", DelayedUpdate},
	{"overriderate", OverrideRate},
	{"multibranch", MultiBranch},
	{"buffersweep", BufferSweep},
	{"quicksweep", QuickSizeSweep},
	{"depthsweep", DepthSweep},
	{"fastfamily", FastFamily},
	{"recovery", Recovery},
}

// IDs returns the registered experiment ids in run order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// ByID returns the runner for an experiment id.
func ByID(id string) (Runner, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Runner, nil
		}
	}
	sorted := append([]string{}, IDs()...)
	sort.Strings(sorted)
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		id, strings.Join(sorted, ", "))
}
