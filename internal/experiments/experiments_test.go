package experiments

import (
	"strings"
	"testing"
)

// tiny makes experiments fast enough for unit tests: results are noisy but
// structure and plumbing are fully exercised.
var tiny = Options{Insts: 150_000, Warmup: 30_000}

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md's experiment index: every paper table/figure plus the
	// ablations must be registered.
	want := []string{"figure1", "table2", "figure2", "figure5", "figure6",
		"figure7", "figure8", "delayedupdate", "overriderate", "multibranch",
		"buffersweep", "quicksweep", "depthsweep", "fastfamily", "recovery"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nonsense"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := ByID("figure5"); err != nil {
		t.Fatal(err)
	}
}

func TestNewPredictorKinds(t *testing.T) {
	for _, kind := range PredictorKinds() {
		p, err := NewPredictor(kind, 32<<10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p == nil {
			t.Fatalf("%s: nil predictor", kind)
		}
	}
	if _, err := NewPredictor("bogus", 1024); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestNewOverridingLatencies(t *testing.T) {
	o, err := NewOverriding("perceptron", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if o.Latency() < 2 {
		t.Fatalf("perceptron at 256KB should be multi-cycle, got %d", o.Latency())
	}
	small, _ := NewOverriding("2bcgskew", 16<<10)
	large, _ := NewOverriding("2bcgskew", 512<<10)
	if large.Latency() <= small.Latency() {
		t.Fatalf("latency did not grow: %d -> %d", small.Latency(), large.Latency())
	}
}

func TestTable2Structure(t *testing.T) {
	out := Table2(Options{})
	if out.ID != "table2" || len(out.Tables) != 1 {
		t.Fatalf("bad outcome: %+v", out)
	}
	tab := out.Tables[0]
	if len(tab.Rows) != len(PaperBudgets()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// gshare.fast effective latency column must be all ones.
	last := len(tab.Cols) - 1
	for i := range tab.Rows {
		if tab.Values[i][last] != 1 {
			t.Fatalf("gshare.fast effective latency at %s = %v", tab.Rows[i], tab.Values[i][last])
		}
	}
	// Complex-predictor latencies grow with budget.
	for j := 0; j < 3; j++ {
		if tab.Values[len(tab.Rows)-1][j] <= tab.Values[0][j] {
			t.Errorf("column %s latency did not grow", tab.Cols[j])
		}
	}
}

func TestFigure6SmallRun(t *testing.T) {
	out := Figure6(tiny)
	tab := out.Tables[0]
	if len(tab.Rows) != 13 { // 12 benchmarks + MEAN
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Cols) != 4 {
		t.Fatalf("cols = %d", len(tab.Cols))
	}
	for i, row := range tab.Values {
		for j, v := range row {
			if v < 0 || v > 60 {
				t.Errorf("cell (%d,%d) = %v out of range", i, j, v)
			}
		}
	}
	if !strings.Contains(out.Render(), "figure6") {
		t.Fatal("render missing id")
	}
}

func TestMultiBranchSmallRun(t *testing.T) {
	out := MultiBranch(tiny)
	tab := out.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Buffer entries must grow with block width once past the line
	// minimum (column 1).
	if tab.Values[3][1] < tab.Values[0][1] {
		t.Fatalf("buffer entries shrank: %v -> %v", tab.Values[0][1], tab.Values[3][1])
	}
	// Accuracy at b=8 must not be better than b=1 beyond noise.
	if tab.Values[3][0] < tab.Values[0][0]-0.5 {
		t.Fatalf("wider blocks improved accuracy: %v vs %v", tab.Values[3][0], tab.Values[0][0])
	}
}

func TestDelayedUpdateSmallRun(t *testing.T) {
	out := DelayedUpdate(tiny)
	tab := out.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// lag=64 misprediction within 1.5 points of lag=0 even on this tiny
	// noisy run (the paper's effect is ~0.04 points).
	if tab.Values[2][0] > tab.Values[0][0]+1.5 {
		t.Fatalf("delayed update cost too much: %v vs %v", tab.Values[2][0], tab.Values[0][0])
	}
}

func TestBudgetHelpers(t *testing.T) {
	if len(PaperBudgets()) != 6 || PaperBudgets()[0] != 16<<10 || PaperBudgets()[5] != 512<<10 {
		t.Fatalf("paper budgets: %v", PaperBudgets())
	}
	if len(Figure1Budgets()) != 9 || Figure1Budgets()[0] != 2<<10 {
		t.Fatalf("figure 1 budgets: %v", Figure1Budgets())
	}
}

func TestOutcomeRenderAndTableLookup(t *testing.T) {
	out := Table2(Options{})
	if out.Table("Table 2") == nil {
		t.Fatal("table lookup by prefix failed")
	}
	if out.Table("zzz") != nil {
		t.Fatal("bogus prefix matched")
	}
	r := out.Render()
	if !strings.Contains(r, "### table2") || !strings.Contains(r, "note:") {
		t.Fatalf("render incomplete:\n%s", r)
	}
}

func TestRunCellsCoversAll(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		hit := make([]bool, 37)
		var plan cellPlan
		for i := range hit {
			plan.add(planKey("test", "none", "", 0, "bench"), func() { hit[i] = true })
		}
		plan.execute(Options{Parallel: par})
		for i, h := range hit {
			if !h {
				t.Fatalf("parallel=%d: index %d not visited", par, i)
			}
		}
	}
}

// TestRunCellsPanicKey pins the scheduler's panic contract: a panic inside
// any cell — serial or sharded — is re-raised from RunCells carrying the
// offending cell's canonical key, not a bare worker stack.
func TestRunCellsPanicKey(t *testing.T) {
	key := planKey("timing", "gshare", "ideal", 8192, "164.gzip")
	for _, par := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%d: panic not re-raised", par)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, key) || !strings.Contains(msg, "boom") {
					t.Fatalf("parallel=%d: panic lost cell context: %v", par, r)
				}
			}()
			var plan cellPlan
			for i := 0; i < 16; i++ {
				plan.add(planKey("test", "ok", "", i, "bench"), func() {})
			}
			plan.add(key, func() { panic("boom") })
			plan.execute(Options{Parallel: par})
		}()
	}
}
