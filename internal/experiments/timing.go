package experiments

import (
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/textplot"
	"branchsim/internal/workload"
)

// TimingMode selects the predictor organization for IPC experiments.
type TimingMode int

const (
	// Ideal gives every predictor a single-cycle response regardless of
	// size — the paper's "No Delay" curves.
	Ideal TimingMode = iota
	// Realistic puts complex predictors behind a 2K-entry quick gshare
	// in an overriding organization with delay-model latencies;
	// gshare.fast runs pipelined and pays nothing.
	Realistic
)

// buildTimed assembles the predictor organization for a kind under a mode.
func buildTimed(kind string, budget int, mode TimingMode) predictor.Predictor {
	if mode == Ideal || kind == "gshare.fast" {
		return mustPredictor(kind, budget)
	}
	return mustOverriding(kind, budget)
}

// timingOrg names buildTimed's organization for the memo and plan keys:
// "ideal" for the bare single-cycle predictor (gshare.fast's organization
// is mode-invariant, so its realistic cells collapse to the same entry),
// "override" behind the 2K-entry quick gshare.
func timingOrg(kind string, mode TimingMode) string {
	if mode == Ideal || kind == "gshare.fast" {
		return "ideal"
	}
	return "override"
}

// addCell declares the canonical (kind, budget, mode) timing cell on the
// Table 1 machine — Cell's plan-schedulable form, resolving through the
// same memo entry whether it later executes fused or per-cell.
func (p *cellPlan) addCell(kind string, budget int, mode TimingMode, prof workload.Profile, sink func(pipeline.Result)) {
	p.addTiming(pipeline.DefaultConfig(), kind, timingOrg(kind, mode), budget, func() predictor.Predictor {
		return buildTimed(kind, budget, mode)
	}, prof, sink)
}

// ipcSweep measures harmonic-mean IPC for each (kind, budget) pair. The
// plan's cells are the distinct (kind, budget, benchmark) simulations; the
// harmonic mean is reduced after the plan completes.
func ipcSweep(kinds []string, budgets []int, mode TimingMode, opts Options) *textplot.Table {
	opts = opts.normalize()
	profiles := workload.Profiles()
	grid := make([][][]float64, len(budgets)) // [budget][kind][benchmark]
	var plan cellPlan
	for bi, budget := range budgets {
		grid[bi] = make([][]float64, len(kinds))
		for ki, kind := range kinds {
			grid[bi][ki] = make([]float64, len(profiles))
			for pi, prof := range profiles {
				plan.addCell(kind, budget, mode, prof, func(res pipeline.Result) {
					grid[bi][ki][pi] = res.IPC()
				})
			}
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(budgets))
	for bi := range budgets {
		values[bi] = make([]float64, len(kinds))
		for ki := range kinds {
			values[bi][ki] = stats.HarmonicMean(grid[bi][ki])
		}
	}
	rows := make([]string, len(budgets))
	for i, b := range budgets {
		rows[i] = budgetLabel(b)
	}
	return &textplot.Table{
		RowHeader: "budget",
		Rows:      rows,
		Cols:      kinds,
		Values:    values,
	}
}

// Figure2 reproduces Figure 2: ideal ("no delay") versus realistic
// (overriding) IPC for the perceptron and multi-component predictors across
// budgets — the motivating result that large complex predictors lose
// performance despite gaining accuracy.
func Figure2(opts Options) *Outcome {
	kinds := []string{"perceptron", "multicomponent"}
	ideal := ipcSweep(kinds, PaperBudgets(), Ideal, opts)
	ideal.Title = "Figure 2 (ideal): harmonic mean IPC, no predictor delay"
	real := ipcSweep(kinds, PaperBudgets(), Realistic, opts)
	real.Title = "Figure 2 (realistic): harmonic mean IPC, overriding organization"
	return &Outcome{
		ID:     "figure2",
		Title:  "Ideal vs realistic IPC for complex predictors",
		Tables: []*textplot.Table{ideal, real},
		Charts: []*textplot.Chart{
			sweepChart(ideal, "budget", "IPC"),
			sweepChart(real, "budget", "IPC"),
		},
		Notes: []string{
			"expected shape: ideal IPC rises (or holds) with budget; realistic IPC peaks at a moderate budget and falls as access delay grows",
		},
	}
}

// Figure7 reproduces Figure 7: harmonic-mean IPC for the three complex
// predictors and gshare.fast, with single-cycle prediction (left) and with
// overriding (right).
func Figure7(opts Options) *Outcome {
	kinds := []string{"multicomponent", "2bcgskew", "perceptron", "gshare.fast"}
	ideal := ipcSweep(kinds, PaperBudgets(), Ideal, opts)
	ideal.Title = "Figure 7 (left): harmonic mean IPC, 1-cycle prediction"
	real := ipcSweep(kinds, PaperBudgets(), Realistic, opts)
	real.Title = "Figure 7 (right): harmonic mean IPC, overriding prediction"
	return &Outcome{
		ID:     "figure7",
		Title:  "IPC of complex predictors vs gshare.fast, ideal and realistic",
		Tables: []*textplot.Table{ideal, real},
		Charts: []*textplot.Chart{
			sweepChart(ideal, "budget", "IPC"),
			sweepChart(real, "budget", "IPC"),
		},
		Notes: []string{
			"expected shape: with delay accounted, the complex predictors' advantage vanishes; gshare.fast matches or beats them at large budgets",
		},
	}
}

// Figure8 reproduces Figure 8: per-benchmark IPC at the 53-64 KB design
// point under realistic (overriding) timing, with harmonic means.
func Figure8(opts Options) *Outcome {
	opts = opts.normalize()
	kinds := []string{"multicomponent", "2bcgskew", "perceptron", "gshare.fast"}
	const budget = 64 << 10
	profiles := workload.Profiles()
	values := make([][]float64, len(profiles)+1)
	for i := range values {
		values[i] = make([]float64, len(kinds))
	}
	var plan cellPlan
	for pi, prof := range profiles {
		for ki, kind := range kinds {
			plan.addCell(kind, budget, Realistic, prof, func(res pipeline.Result) {
				values[pi][ki] = res.IPC()
			})
		}
	}
	plan.execute(opts)
	for ki := range kinds {
		col := make([]float64, len(profiles))
		for pi := range profiles {
			col[pi] = values[pi][ki]
		}
		values[len(profiles)][ki] = stats.HarmonicMean(col)
	}
	t := &textplot.Table{
		Title:     "Figure 8: per-benchmark IPC at the 53-64KB design point (overriding timing)",
		RowHeader: "benchmark",
		Rows:      append(benchNames(), "HMEAN"),
		Cols:      kinds,
		Values:    values,
	}
	return &Outcome{
		ID:     "figure8",
		Title:  "Per-benchmark IPC at ~64KB, realistic timing",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected shape: IPCs are about the same across predictors; some benchmarks favor the complex predictors, others gshare.fast",
		},
	}
}
