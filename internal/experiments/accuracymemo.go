package experiments

import (
	"sync"

	"branchsim/internal/funcsim"
	"branchsim/internal/resultstore"
	"branchsim/internal/workload"
)

// accuracyKey canonically identifies one functional-simulation cell, the
// accuracy counterpart of timingKey. Two cells with equal keys construct
// identical predictors and drive them with identical options over the same
// recorded stream, so their Results are interchangeable. org disambiguates
// non-factory constructions ("" is the stock factory predictor for kind;
// the ablations use "lag64", "buf9", ...); sim disambiguates simulator
// shapes beyond the window ("" is the standard funcsim.Run,
// "blocks.fw8.bb4" the block-prediction path).
type accuracyKey struct {
	kind   string
	org    string
	budget int
	bench  string
	seed   uint64
	insts  int64
	warmup int64
	sim    string
}

// storeKey widens the in-memory key into the persistent store's
// cross-process form, binding it to the recorded stream's content digest.
func (k accuracyKey) storeKey(traceDigest string) resultstore.Key {
	return resultstore.Key{
		Family: "accuracy",
		Kind:   k.kind,
		Org:    k.org,
		Budget: k.budget,
		Bench:  k.bench,
		Seed:   k.seed,
		Insts:  k.insts,
		Warmup: k.warmup,
		// Machine stays "": accuracy cells simulate no timing machine.
		SimOptions: k.sim,
		Trace:      traceDigest,
	}
}

// accuracyEntry serializes one cell's computation, exactly like
// timingEntry.
type accuracyEntry struct {
	once sync.Once
	// res is written inside once.Do and read only after Do returns; the
	// sync.Once serializes it, not AccuracyMemo.mu, so it deliberately has
	// no lockguard annotation.
	res funcsim.Result
}

// AccuracyMemo memoizes functional-simulation Results by canonical cell
// key, the accuracy sibling of TimingMemo: cells duplicated across grids —
// Figure 6's 64 KB points repeat Figure 5's sweep; the fast-family study
// revisits the sweeps at 256 KB — are simulated once per process, and when
// Options.Store is set each distinct cell resolves through the persistent
// store before simulating.
type AccuracyMemo struct {
	mu      sync.Mutex
	entries map[accuracyKey]*accuracyEntry // guarded by mu
	hits    int64                          // guarded by mu
}

// NewAccuracyMemo returns an empty memo.
func NewAccuracyMemo() *AccuracyMemo {
	return &AccuracyMemo{entries: make(map[accuracyKey]*accuracyEntry)}
}

// accuracyMemo is the process-wide memo, sibling to timingMemo.
var accuracyMemo = NewAccuracyMemo()

// AccuracyMemoStats reports the process-wide accuracy memo's footprint:
// distinct cells simulated and duplicate lookups served from memory.
func AccuracyMemoStats() (cells int, hits int64) {
	return accuracyMemo.stats()
}

// stats snapshots the memo's footprint: distinct entries and memory hits.
func (m *AccuracyMemo) stats() (cells int, hits int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries), m.hits
}

// resolve publishes the entry's Result: the first caller's compute runs
// inside the once, duplicates (concurrent or later) wait and share it. It
// is the entry's only publication path — result() and the fused
// scheduler's lanes both go through it.
func (e *accuracyEntry) resolve(compute func() funcsim.Result) funcsim.Result {
	e.once.Do(func() { e.res = compute() })
	return e.res
}

// result returns the memoized Result for key, calling compute on first
// use.
func (m *AccuracyMemo) result(key accuracyKey, compute func() funcsim.Result) funcsim.Result {
	m.mu.Lock()
	e := m.entries[key]
	if e == nil {
		e = &accuracyEntry{}
		m.entries[key] = e
	} else {
		m.hits++
	}
	m.mu.Unlock()
	return e.resolve(compute)
}

// cell returns the accuracy Result for the canonical (kind, org, budget,
// sim) cell on prof's recorded stream, memoized in m and — when opts.Store
// is set — in the persistent store. Callers must ensure equal keys always
// denote identical constructions; both memo tiers trade on that.
func (m *AccuracyMemo) cell(kind, org, sim string, budget int, prof workload.Profile, opts Options, compute func() funcsim.Result) funcsim.Result {
	opts = opts.normalize()
	key := accuracyKey{
		kind:   kind,
		org:    org,
		budget: budget,
		bench:  prof.Name,
		seed:   prof.Seed,
		insts:  opts.Insts,
		warmup: opts.Warmup,
		sim:    sim,
	}
	return m.result(key, func() funcsim.Result {
		return storedCompute(key, prof, opts, compute)
	})
}

// storedCompute resolves one cold cell's computation through the
// persistent store when one is configured — the solo compute every
// execution mode shares: cell()'s memo-miss path, the fused scheduler's
// fallback for entries another experiment already owns, and the FuseOff
// lowering all bottom out here.
func storedCompute(key accuracyKey, prof workload.Profile, opts Options, compute func() funcsim.Result) funcsim.Result {
	if opts.Store == nil {
		return compute()
	}
	skey := key.storeKey(traceDigest(prof, opts))
	rec := opts.Store.Do(skey, func() resultstore.Record {
		res := compute()
		return resultstore.Record{Key: skey, Accuracy: &res}
	})
	if rec.Accuracy == nil {
		// A record can only lack its payload if some compute handed the
		// store one; never serve a zero Result for it.
		return compute()
	}
	return *rec.Accuracy
}

// specKey returns s's canonical memo key under opts (already normalized).
func specKey(s accuracySpec, opts Options) accuracyKey {
	return accuracyKey{
		kind:   s.kind,
		org:    s.org,
		budget: s.budget,
		bench:  s.prof.Name,
		seed:   s.prof.Seed,
		insts:  opts.Insts,
		warmup: opts.Warmup,
	}
}

// runSpec simulates spec s alone — the per-cell reference path whose
// results the fused pass must reproduce bit for bit.
func runSpec(s accuracySpec, opts Options) funcsim.Result {
	return funcsim.Run(s.build(), source(s.prof, opts), funcsim.Options{
		MaxInsts:    opts.Insts,
		WarmupInsts: opts.Warmup,
	})
}

// specCell resolves one accuracy spec per-cell through the full
// memo → store → simulate tier — the FuseOff lowering.
func (m *AccuracyMemo) specCell(s accuracySpec, opts Options) funcsim.Result {
	return m.cell(s.kind, s.org, "", s.budget, s.prof, opts, func() funcsim.Result {
		return runSpec(s, opts)
	})
}

// acquireLanes is the fused scheduler's memo tier, one lock acquisition
// for a whole group. Specs whose entry this call creates become owned
// lanes — the fusion candidates; in-group duplicates of an owned key
// attach their sink to its lane. Either way a lookup that finds an
// existing entry is a memory hit, exactly as in result() — fusion must
// not change the memo's accounting. Entries that predate the group
// (another experiment's cells, e.g. Figure 6 revisiting Figure 5's 64 KB
// column) are not ours to simulate: they come back preowned and resolve
// solo.
func (m *AccuracyMemo) acquireLanes(specs []accuracySpec, opts Options) (owned, preowned []*fusedLane[accuracySpec, funcsim.Result]) {
	byKey := make(map[accuracyKey]*fusedLane[accuracySpec, funcsim.Result], len(specs))
	m.mu.Lock()
	for _, s := range specs {
		key := specKey(s, opts)
		if l := byKey[key]; l != nil {
			m.hits++
			l.sinks = append(l.sinks, s.sink)
			continue
		}
		e := m.entries[key]
		l := &fusedLane[accuracySpec, funcsim.Result]{spec: s, sinks: []func(funcsim.Result){s.sink}}
		if e != nil {
			m.hits++
			l.resolve = e.resolve
			preowned = append(preowned, l)
			continue
		}
		e = &accuracyEntry{}
		m.entries[key] = e
		l.resolve = e.resolve
		byKey[key] = l
		owned = append(owned, l)
	}
	m.mu.Unlock()
	return owned, preowned
}
