package experiments

import (
	"branchsim/internal/funcsim"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/textplot"
	"branchsim/internal/workload"
)

// mispredictSweep measures arithmetic-mean misprediction rates for each
// (kind, budget) pair over the full benchmark suite. The cells are the
// distinct (kind, budget, benchmark) simulations, declared as accuracy
// specs so the scheduler can fuse each benchmark's cold column into one
// trace pass; the mean is reduced after the plan completes.
func mispredictSweep(kinds []string, budgets []int, opts Options) *textplot.Table {
	opts = opts.normalize()
	profiles := workload.Profiles()
	grid := make([][][]float64, len(budgets)) // [budget][kind][benchmark]
	var plan cellPlan
	for bi, budget := range budgets {
		grid[bi] = make([][]float64, len(kinds))
		for ki, kind := range kinds {
			grid[bi][ki] = make([]float64, len(profiles))
			for pi, prof := range profiles {
				plan.addAccuracy(kind, "", budget, func() predictor.Predictor {
					return mustPredictor(kind, budget)
				}, prof, func(res funcsim.Result) {
					grid[bi][ki][pi] = res.MispredictPercent()
				})
			}
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(budgets))
	for bi := range budgets {
		values[bi] = make([]float64, len(kinds))
		for ki := range kinds {
			values[bi][ki] = stats.Mean(grid[bi][ki])
		}
	}

	rows := make([]string, len(budgets))
	for i, b := range budgets {
		rows[i] = budgetLabel(b)
	}
	return &textplot.Table{
		RowHeader: "budget",
		Rows:      rows,
		Cols:      kinds,
		Values:    values,
	}
}

// Figure1 reproduces the paper's Figure 1: arithmetic-mean misprediction
// rates on SPECint 2000 for gshare, bi-mode, the multi-component hybrid and
// the perceptron predictor, across hardware budgets from 2 KB to 512 KB.
func Figure1(opts Options) *Outcome {
	kinds := []string{"gshare", "bimode", "multicomponent", "perceptron"}
	t := mispredictSweep(kinds, Figure1Budgets(), opts)
	t.Title = "Figure 1: arithmetic mean misprediction rate (%) vs hardware budget"
	chart := sweepChart(t, "budget (bytes)", "% mispredicted")
	return &Outcome{
		ID:     "figure1",
		Title:  "Misprediction rates of classic and complex predictors across budgets",
		Tables: []*textplot.Table{t},
		Charts: []*textplot.Chart{chart},
		Notes: []string{
			"expected shape: all curves fall as budget grows; perceptron and multi-component sit below gshare/bi-mode",
		},
	}
}

// Figure5 reproduces Figure 5: mean misprediction rates for the three
// complex predictors and gshare.fast, 16 KB to 512 KB.
func Figure5(opts Options) *Outcome {
	kinds := []string{"multicomponent", "2bcgskew", "perceptron", "gshare.fast"}
	t := mispredictSweep(kinds, PaperBudgets(), opts)
	t.Title = "Figure 5: arithmetic mean misprediction rate (%) vs hardware budget"
	chart := sweepChart(t, "budget (bytes)", "% mispredicted")
	return &Outcome{
		ID:     "figure5",
		Title:  "Accuracy of complex predictors vs gshare.fast",
		Tables: []*textplot.Table{t},
		Charts: []*textplot.Chart{chart},
		Notes: []string{
			"expected shape: slight accuracy advantage for the complex predictors over gshare.fast at every budget",
		},
	}
}

// Figure6 reproduces Figure 6: per-benchmark misprediction rates at the
// ~53-64 KB design point (the paper compares 53 KB complex predictors with
// a 64 KB gshare.fast).
func Figure6(opts Options) *Outcome {
	opts = opts.normalize()
	kinds := []string{"multicomponent", "2bcgskew", "perceptron", "gshare.fast"}
	const budget = 64 << 10
	profiles := workload.Profiles()
	values := make([][]float64, len(profiles)+1)
	for i := range values {
		values[i] = make([]float64, len(kinds))
	}
	var plan cellPlan
	for pi, prof := range profiles {
		for ki, kind := range kinds {
			plan.addAccuracy(kind, "", budget, func() predictor.Predictor {
				return mustPredictor(kind, budget)
			}, prof, func(res funcsim.Result) {
				values[pi][ki] = res.MispredictPercent()
			})
		}
	}
	plan.execute(opts)
	for ki := range kinds {
		col := make([]float64, len(profiles))
		for pi := range profiles {
			col[pi] = values[pi][ki]
		}
		values[len(profiles)][ki] = stats.Mean(col)
	}
	rows := append(benchNames(), "MEAN")
	t := &textplot.Table{
		Title:     "Figure 6: per-benchmark misprediction rate (%) at the 53-64KB design point",
		RowHeader: "benchmark",
		Rows:      rows,
		Cols:      kinds,
		Values:    values,
	}
	return &Outcome{
		ID:     "figure6",
		Title:  "Per-benchmark misprediction rates at ~64KB",
		Tables: []*textplot.Table{t},
	}
}

// sweepChart turns a budgets-by-kinds table into a line chart.
func sweepChart(t *textplot.Table, xlabel, ylabel string) *textplot.Chart {
	chart := &textplot.Chart{
		Title:  t.Title + " (chart)",
		X:      t.Rows,
		XLabel: xlabel,
		YLabel: ylabel,
	}
	for j, kind := range t.Cols {
		s := textplot.Series{Name: kind}
		for i := range t.Rows {
			s.Values = append(s.Values, t.Values[i][j])
		}
		chart.Series = append(chart.Series, s)
	}
	return chart
}
