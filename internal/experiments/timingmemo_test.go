package experiments

import (
	"reflect"
	"testing"

	"branchsim/internal/pipeline"
	"branchsim/internal/workload"
)

// memoTestOpts uses an instruction budget no other test shares, so the
// process-wide memo and trace store entries exercised here are this test's
// own.
var memoTestOpts = Options{Insts: 110_000, Warmup: 30_000, Parallel: 1}

// TestTimingMemoEquivalence pins the memo layer's contract: a memoized Cell
// equals an independent unmemoized simulation (fresh predictor, fresh
// replay, live caches), and duplicate lookups are served from memory.
func TestTimingMemoEquivalence(t *testing.T) {
	prof, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("unknown benchmark gzip")
	}
	const budget = 64 << 10
	for _, tc := range []struct {
		name string
		kind string
		mode TimingMode
	}{
		{"ideal-perceptron", "perceptron", Ideal},
		{"realistic-perceptron", "perceptron", Realistic},
		{"gshare.fast", "gshare.fast", Realistic},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Cell(tc.kind, budget, tc.mode, prof, memoTestOpts)
			// The reference recomputes the cell from scratch with no
			// memo, no sidecar and a private replay of the same stream.
			rec := workload.Record(prof, memoTestOpts.Insts)
			sim := pipeline.New(pipeline.DefaultConfig(), buildTimed(tc.kind, budget, tc.mode))
			want := sim.Run(rec.Replay(), memoTestOpts.Insts, memoTestOpts.Warmup)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("memoized cell diverges from recompute:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestTimingMemoDeduplicates verifies identical cells are simulated once:
// repeat lookups and gshare.fast's mode-invariant cells hit the memo.
func TestTimingMemoDeduplicates(t *testing.T) {
	prof, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	const budget = 32 << 10
	opts := Options{Insts: 120_000, Warmup: 30_000, Parallel: 1}

	_, hits0 := TimingMemoStats()
	first := Cell("gshare.fast", budget, Ideal, prof, opts)
	_, hits1 := TimingMemoStats()
	again := Cell("gshare.fast", budget, Ideal, prof, opts)
	// gshare.fast is pipelined: its realistic organization is the ideal
	// one, so the canonical key collapses the two modes to one cell.
	other := Cell("gshare.fast", budget, Realistic, prof, opts)
	_, hits2 := TimingMemoStats()

	if !reflect.DeepEqual(first, again) || !reflect.DeepEqual(first, other) {
		t.Errorf("duplicate cells differ: %+v / %+v / %+v", first, again, other)
	}
	if hits1 != hits0 {
		t.Errorf("first lookup counted %d hits, want 0", hits1-hits0)
	}
	if hits2-hits1 != 2 {
		t.Errorf("duplicate lookups counted %d hits, want 2", hits2-hits1)
	}
}
