package experiments

import (
	"fmt"

	"branchsim/internal/core"
	"branchsim/internal/delaymodel"
	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/textplot"
	"branchsim/internal/workload"
)

// DelayedUpdate quantifies §3.2's claim: updating the PHT up to 64 branches
// late (the slow non-speculative write path) costs almost nothing — the
// paper reports 4.03% → 4.07% mean misprediction at a 256 KB budget and
// under 1% IPC.
func DelayedUpdate(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	lags := []int{0, 16, 64, 256}
	profiles := workload.Profiles()

	makePred := func(lag int) *core.GShareFast {
		entries := 4
		for entries*2*2/8 <= budget {
			entries *= 2
		}
		return core.New(core.Config{
			Entries:   entries,
			Latency:   delaymodel.Default.PHTReadCycles(entries),
			UpdateLag: lag,
		})
	}

	mr := make([][]float64, len(lags))  // [lag][benchmark] mispredict %
	ipc := make([][]float64, len(lags)) // [lag][benchmark] IPC
	var plan cellPlan
	for i, lag := range lags {
		mr[i] = make([]float64, len(profiles))
		ipc[i] = make([]float64, len(profiles))
		// lag=0 constructs the stock gshare.fast, so its cells are the
		// canonical factory ones (the timing cell is the "ideal" one shared
		// with Figures 2/7 at this budget); lagged variants get their own
		// memo organizations.
		accOrg, timOrg := "", "ideal"
		if lag > 0 {
			accOrg = fmt.Sprintf("lag%d", lag)
			timOrg = accOrg
		}
		for pi, prof := range profiles {
			plan.addAccuracy("gshare.fast", accOrg, budget,
				func() predictor.Predictor { return makePred(lag) }, prof,
				func(res funcsim.Result) { mr[i][pi] = res.MispredictPercent() })
			plan.addTiming(pipeline.DefaultConfig(), "gshare.fast", timOrg, budget,
				func() predictor.Predictor { return makePred(lag) }, prof,
				func(res pipeline.Result) { ipc[i][pi] = res.IPC() })
		}
	}
	plan.execute(opts)

	rows := make([]string, len(lags))
	values := make([][]float64, len(lags))
	for i, lag := range lags {
		rows[i] = fmt.Sprintf("lag=%d", lag)
		values[i] = []float64{stats.Mean(mr[i]), stats.HarmonicMean(ipc[i])}
	}
	t := &textplot.Table{
		Title:     "Delayed PHT update at 256KB (gshare.fast)",
		RowHeader: "update lag",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "harmonic IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "delayedupdate",
		Title:  "§3.2: slow non-speculative PHT update costs almost nothing",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: misprediction rises by only a few hundredths of a point at lag 64; IPC moves <1%",
		},
	}
}

// OverrideRate reproduces §4.5's accounting: how often the slow predictor
// overrides the quick one, per benchmark — the paper reports a 7.38%
// average for the perceptron predictor and 18.1% on 300.twolf for the
// multi-component predictor at the 53-64 KB point.
func OverrideRate(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 64 << 10
	kinds := []string{"multicomponent", "2bcgskew", "perceptron"}
	profiles := workload.Profiles()
	values := make([][]float64, len(profiles)+1)
	for i := range values {
		values[i] = make([]float64, len(kinds))
	}
	var plan cellPlan
	for pi, prof := range profiles {
		for ki, kind := range kinds {
			plan.addCell(kind, budget, Realistic, prof, func(res pipeline.Result) {
				values[pi][ki] = 100 * res.OverrideRate
			})
		}
	}
	plan.execute(opts)
	for ki := range kinds {
		col := make([]float64, len(profiles))
		for pi := range profiles {
			col[pi] = values[pi][ki]
		}
		values[len(profiles)][ki] = stats.Mean(col)
	}
	t := &textplot.Table{
		Title:     "Override rates (%) at the 53-64KB design point",
		RowHeader: "benchmark",
		Rows:      append(benchNames(), "MEAN"),
		Cols:      kinds,
		Values:    values,
	}
	return &Outcome{
		ID:     "overriderate",
		Title:  "§4.5: quick/slow disagreement rates behind the realistic-IPC gap",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: averages in the high single digits; the hardest benchmarks (twolf, vpr) near 15-20%",
		},
	}
}

// MultiBranch evaluates the §3.3.1 extension: predicting up to b branches
// per cycle from one enlarged PHT buffer, with within-block histories
// necessarily stale. It reports the accuracy cost and the buffer sizing
// b·2^L the paper derives.
func MultiBranch(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 64 << 10
	widths := []int{1, 2, 4, 8}
	profiles := workload.Profiles()
	grid := make([][]float64, len(widths)) // [width][benchmark] mispredict %
	var plan cellPlan
	for i, w := range widths {
		grid[i] = make([]float64, len(profiles))
		// The block simulation's shape beyond the window is part of the
		// cell identity (funcsim.RunBlocks vs Run, fetch width, block
		// branches), carried in the key's sim component.
		sim := fmt.Sprintf("blocks.fw8.bb%d", w)
		for pi, prof := range profiles {
			plan.add(planKey("accuracy", "gshare.fast", "", budget, prof.Name, sim), func() {
				res := accuracyMemo.cell("gshare.fast", "", sim, budget, prof, opts, func() funcsim.Result {
					g := NewGShareFast(budget)
					return funcsim.RunBlocks(g, g.Name(), source(prof, opts), funcsim.Options{
						MaxInsts:      opts.Insts,
						WarmupInsts:   opts.Warmup,
						FetchWidth:    8,
						BlockBranches: w,
					})
				})
				grid[i][pi] = res.MispredictPercent()
			})
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(widths))
	for i, w := range widths {
		// Buffer sizing is arithmetic on the construction, not a
		// simulation; derive it directly rather than planning cells for it.
		g := NewGShareFast(budget)
		values[i] = []float64{stats.Mean(grid[i]), float64(g.BlockBufferEntries(w)), float64(g.BlockSizeBytes(w))}
	}
	rows := make([]string, len(widths))
	for i, w := range widths {
		rows[i] = fmt.Sprintf("b=%d", w)
	}
	t := &textplot.Table{
		Title:     "Multiple-branch prediction at 64KB (gshare.fast)",
		RowHeader: "block width",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "buffer entries", "state bytes"},
		Values:    values,
		Format:    "%10.3f",
	}
	return &Outcome{
		ID:     "multibranch",
		Title:  "§3.3.1: multiple branches per cycle with stale within-block history",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: accuracy degrades only mildly as block width grows; buffer grows as b·2^L",
		},
	}
}

// BufferSweep is an ablation beyond the paper: how the split between
// prefetched (stale) row bits and late-selected (fresh) buffer bits affects
// gshare.fast accuracy at a 256 KB budget.
func BufferSweep(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	bufBits := []uint{3, 6, 9, 12, 15}
	profiles := workload.Profiles()
	grid := make([][]float64, len(bufBits)) // [bufferBits][benchmark]
	var plan cellPlan
	for i, bits := range bufBits {
		grid[i] = make([]float64, len(profiles))
		org := fmt.Sprintf("buf%d", bits)
		for pi, prof := range profiles {
			plan.addAccuracy("gshare.fast", org, budget, func() predictor.Predictor {
				entries := 4
				for entries*2*2/8 <= budget {
					entries *= 2
				}
				return core.New(core.Config{
					Entries:    entries,
					Latency:    delaymodel.Default.PHTReadCycles(entries),
					BufferBits: bits,
				})
			}, prof, func(res funcsim.Result) {
				grid[i][pi] = res.MispredictPercent()
			})
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(bufBits))
	for i := range bufBits {
		values[i] = []float64{stats.Mean(grid[i])}
	}
	rows := make([]string, len(bufBits))
	for i, b := range bufBits {
		rows[i] = fmt.Sprintf("%d bits", b)
	}
	t := &textplot.Table{
		Title:     "PHT buffer width ablation at 256KB (gshare.fast)",
		RowHeader: "buffer index",
		Rows:      rows,
		Cols:      []string{"mean mispredict %"},
		Values:    values,
	}
	return &Outcome{
		ID:     "buffersweep",
		Title:  "Ablation: stale-row vs fresh-buffer index split",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"narrow buffers leave more index bits stale; very wide buffers spend the index on few PC bits — accuracy peaks in between",
		},
	}
}

// QuickSizeSweep is an ablation beyond the paper: the overriding
// organization's sensitivity to the quick predictor's size (the paper fixes
// it at an optimistic 2K entries).
func QuickSizeSweep(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	sizes := []int{256, 1024, 2048, 8192}
	profiles := workload.Profiles()
	ipcs := make([][]float64, len(sizes))      // [size][benchmark]
	overrides := make([][]float64, len(sizes)) // [size][benchmark]
	var plan cellPlan
	for i, size := range sizes {
		ipcs[i] = make([]float64, len(profiles))
		overrides[i] = make([]float64, len(profiles))
		// The QuickEntries row constructs exactly the standard overriding
		// organization, so it shares the canonical "override" cells with
		// the figures at this budget.
		org := "override"
		if size != QuickEntries {
			org = fmt.Sprintf("override.q%d", size)
		}
		for pi, prof := range profiles {
			plan.addTiming(pipeline.DefaultConfig(), "perceptron", org, budget,
				func() predictor.Predictor {
					slow := mustPredictor("perceptron", budget)
					lat := delaymodel.Default.ForPredictor(slow)
					return core.NewOverriding(predictor.NewGShare(size, 0), slow, lat)
				}, prof, func(res pipeline.Result) {
					ipcs[i][pi] = res.IPC()
					overrides[i][pi] = 100 * res.OverrideRate
				})
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(sizes))
	for i := range sizes {
		values[i] = []float64{stats.HarmonicMean(ipcs[i]), stats.Mean(overrides[i])}
	}
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d entries", s)
	}
	t := &textplot.Table{
		Title:     "Quick predictor size ablation (perceptron @256KB behind overriding)",
		RowHeader: "quick gshare",
		Rows:      rows,
		Cols:      []string{"harmonic IPC", "override rate %"},
		Values:    values,
	}
	return &Outcome{
		ID:     "quicksweep",
		Title:  "Ablation: quick predictor size vs override rate and IPC",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"a better quick predictor lowers the override rate and recovers some IPC, but cannot reach the pipelined predictor's zero-penalty point",
		},
	}
}

// DepthSweep is an ablation beyond the paper: how pipeline depth scales the
// penalty gap between gshare.fast and an overriding perceptron at 256 KB —
// the paper's motivation that deeper pipelines make predictor delay worse.
func DepthSweep(opts Options) *Outcome {
	opts = opts.normalize()
	depths := []int{10, 20, 30, 40}
	const budget = 256 << 10
	profiles := workload.Profiles()
	fast := make([][]float64, len(depths)) // [depth][benchmark]
	over := make([][]float64, len(depths)) // [depth][benchmark]
	var plan cellPlan
	for i, depth := range depths {
		fast[i] = make([]float64, len(profiles))
		over[i] = make([]float64, len(profiles))
		cfg := pipeline.DefaultConfig()
		cfg.PipelineDepth = depth
		cfg.FrontEndDepth = depth / 2
		// The depth-20 row's canonical config equals the Table 1 machine's,
		// so both of its columns are figure cells at this budget; other
		// depths get distinct config keys. All depths share the default
		// cache geometry, so under fusion the whole sweep is one group per
		// benchmark.
		for pi, prof := range profiles {
			plan.addTiming(cfg, "gshare.fast", "ideal", budget,
				func() predictor.Predictor { return NewGShareFast(budget) }, prof,
				func(res pipeline.Result) { fast[i][pi] = res.IPC() })
			plan.addTiming(cfg, "perceptron", "override", budget,
				func() predictor.Predictor { return mustOverriding("perceptron", budget) }, prof,
				func(res pipeline.Result) { over[i][pi] = res.IPC() })
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(depths))
	for i := range depths {
		values[i] = []float64{stats.HarmonicMean(fast[i]), stats.HarmonicMean(over[i])}
	}
	rows := make([]string, len(depths))
	for i, d := range depths {
		rows[i] = fmt.Sprintf("depth=%d", d)
	}
	t := &textplot.Table{
		Title:     "Pipeline depth ablation at 256KB",
		RowHeader: "pipeline",
		Rows:      rows,
		Cols:      []string{"gshare.fast IPC", "perceptron(override) IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "depthsweep",
		Title:  "Ablation: pipeline depth vs predictor organization",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"with access latency held constant, depth amplifies the misprediction penalty, which favors the more accurate predictor;",
			"the paper's depth argument acts through the clock: deeper pipelines mean faster clocks, which grow the predictor's latency in cycles — that axis is swept by the budget dimension of figures 2 and 7",
		},
	}
}

// FastFamily is the §5 study the paper's conclusion proposes: apply the
// gshare.fast pipelining to another predictor (bi-mode) and compare the
// resulting single-cycle family against the overriding complex predictors
// at a large budget, in both accuracy and IPC.
func FastFamily(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	rows := []string{"gshare.fast", "bimode.fast", "perceptron(override)", "multicomponent(override)", "2bcgskew(override)"}
	profiles := workload.Profiles()
	// Each row's timing cell is canonical: the pipelined predictors are
	// exactly their factory ("ideal") organizations and the rest are the
	// standard overriding ones, so all five columns share memo entries
	// with the figures at this budget.
	cellKinds := []string{"gshare.fast", "bimode.fast", "perceptron", "multicomponent", "2bcgskew"}
	cellModes := []TimingMode{Ideal, Ideal, Realistic, Realistic, Realistic}
	rates := make([][]float64, len(rows)) // [organization][benchmark]
	ipcs := make([][]float64, len(rows))  // [organization][benchmark]
	var plan cellPlan
	for i := range rows {
		rates[i] = make([]float64, len(profiles))
		ipcs[i] = make([]float64, len(profiles))
		kind, mode := cellKinds[i], cellModes[i]
		for pi, prof := range profiles {
			plan.addAccuracy(kind, "", budget,
				func() predictor.Predictor { return mustPredictor(kind, budget) }, prof,
				func(res funcsim.Result) { rates[i][pi] = res.MispredictPercent() })
			plan.addCell(kind, budget, mode, prof, func(res pipeline.Result) {
				ipcs[i][pi] = res.IPC()
			})
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(rows))
	for i := range rows {
		values[i] = []float64{stats.Mean(rates[i]), stats.HarmonicMean(ipcs[i])}
	}
	t := &textplot.Table{
		Title:     "Pipelined predictor family vs overriding complex predictors at 256KB",
		RowHeader: "organization",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "harmonic IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "fastfamily",
		Title:  "§5: reorganizing other predictors with the gshare.fast pipeline",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"the pipelined family pays no organization penalty: its IPC tracks its accuracy, while the overriding predictors give back their accuracy advantage as bubbles",
		},
	}
}

// Recovery measures what the §3.2 checkpointed-PHT-buffer mechanism is
// worth: gshare.fast with per-stage buffer checkpoints (recovery is free)
// versus without (every misprediction additionally stalls fetch for a full
// PHT read while the buffer refills).
func Recovery(opts Options) *Outcome {
	opts = opts.normalize()
	budgets := []int{64 << 10, 256 << 10, 512 << 10}
	profiles := workload.Profiles()
	with := make([][]float64, len(budgets))    // [budget][benchmark]
	without := make([][]float64, len(budgets)) // [budget][benchmark]
	var plan cellPlan
	for i, budget := range budgets {
		with[i] = make([]float64, len(profiles))
		without[i] = make([]float64, len(profiles))
		// The checkpointed column is the stock gshare.fast — the same
		// "ideal" cells the figures sweep — while the uncheckpointed
		// wrapper is its own memo organization.
		for pi, prof := range profiles {
			plan.addCell("gshare.fast", budget, Ideal, prof, func(res pipeline.Result) {
				with[i][pi] = res.IPC()
			})
			plan.addTiming(pipeline.DefaultConfig(), "gshare.fast", "nockpt", budget,
				func() predictor.Predictor {
					return core.WithoutCheckpointing(NewGShareFast(budget))
				}, prof,
				func(res pipeline.Result) { without[i][pi] = res.IPC() })
		}
	}
	plan.execute(opts)
	values := make([][]float64, len(budgets))
	for i := range budgets {
		values[i] = []float64{stats.HarmonicMean(with[i]), stats.HarmonicMean(without[i])}
	}
	rows := make([]string, len(budgets))
	for i, b := range budgets {
		rows[i] = budgetLabel(b)
	}
	t := &textplot.Table{
		Title:     "Misprediction recovery: checkpointed vs uncheckpointed PHT buffer",
		RowHeader: "budget",
		Rows:      rows,
		Cols:      []string{"checkpointed IPC", "uncheckpointed IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "recovery",
		Title:  "§3.2: what per-stage PHT buffer checkpointing is worth",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"the gap grows with budget: the uncheckpointed buffer refill costs a full (growing) PHT read per misprediction",
		},
	}
}
