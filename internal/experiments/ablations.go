package experiments

import (
	"fmt"
	"math"

	"branchsim/internal/core"
	"branchsim/internal/delaymodel"
	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/textplot"
	"branchsim/internal/workload"
)

// DelayedUpdate quantifies §3.2's claim: updating the PHT up to 64 branches
// late (the slow non-speculative write path) costs almost nothing — the
// paper reports 4.03% → 4.07% mean misprediction at a 256 KB budget and
// under 1% IPC.
func DelayedUpdate(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	lags := []int{0, 16, 64, 256}
	profiles := workload.Profiles()

	makePred := func(lag int) *core.GShareFast {
		entries := 4
		for entries*2*2/8 <= budget {
			entries *= 2
		}
		return core.New(core.Config{
			Entries:   entries,
			Latency:   delaymodel.Default.PHTReadCycles(entries),
			UpdateLag: lag,
		})
	}

	mr := make([][]float64, len(lags))
	ipc := make([][]float64, len(lags))
	for i := range lags {
		mr[i] = make([]float64, 1)
		ipc[i] = make([]float64, 1)
	}
	forEach(len(lags), opts.Parallel, func(i int) {
		// lag=0 constructs the stock gshare.fast, so its timing cell is
		// the canonical "ideal" one (shared with Figures 2/7 at this
		// budget); lagged variants get their own memo organization.
		org := "ideal"
		if lags[i] > 0 {
			org = fmt.Sprintf("lag%d", lags[i])
		}
		var rates, ipcs []float64
		for _, prof := range profiles {
			rates = append(rates, accuracyRun(func() predictor.Predictor { return makePred(lags[i]) }, prof, opts))
			res := cellCustom(pipeline.DefaultConfig(), "gshare.fast", org, budget,
				func() predictor.Predictor { return makePred(lags[i]) }, prof, opts)
			ipcs = append(ipcs, res.IPC())
		}
		mr[i][0] = stats.Mean(rates)
		ipc[i][0] = stats.HarmonicMean(ipcs)
	})

	rows := make([]string, len(lags))
	values := make([][]float64, len(lags))
	for i, lag := range lags {
		rows[i] = fmt.Sprintf("lag=%d", lag)
		values[i] = []float64{mr[i][0], ipc[i][0]}
	}
	t := &textplot.Table{
		Title:     "Delayed PHT update at 256KB (gshare.fast)",
		RowHeader: "update lag",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "harmonic IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "delayedupdate",
		Title:  "§3.2: slow non-speculative PHT update costs almost nothing",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: misprediction rises by only a few hundredths of a point at lag 64; IPC moves <1%",
		},
	}
}

// OverrideRate reproduces §4.5's accounting: how often the slow predictor
// overrides the quick one, per benchmark — the paper reports a 7.38%
// average for the perceptron predictor and 18.1% on 300.twolf for the
// multi-component predictor at the 53-64 KB point.
func OverrideRate(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 64 << 10
	kinds := []string{"multicomponent", "2bcgskew", "perceptron"}
	profiles := workload.Profiles()
	values := make([][]float64, len(profiles)+1)
	for i := range values {
		values[i] = make([]float64, len(kinds))
	}
	type job struct{ pi, ki int }
	var jobs []job
	for pi := range profiles {
		for ki := range kinds {
			jobs = append(jobs, job{pi, ki})
		}
	}
	forEach(len(jobs), opts.Parallel, func(n int) {
		j := jobs[n]
		res := Cell(kinds[j.ki], budget, Realistic, profiles[j.pi], opts)
		values[j.pi][j.ki] = 100 * res.OverrideRate
	})
	for ki := range kinds {
		col := make([]float64, len(profiles))
		for pi := range profiles {
			col[pi] = values[pi][ki]
		}
		values[len(profiles)][ki] = stats.Mean(col)
	}
	t := &textplot.Table{
		Title:     "Override rates (%) at the 53-64KB design point",
		RowHeader: "benchmark",
		Rows:      append(benchNames(), "MEAN"),
		Cols:      kinds,
		Values:    values,
	}
	return &Outcome{
		ID:     "overriderate",
		Title:  "§4.5: quick/slow disagreement rates behind the realistic-IPC gap",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: averages in the high single digits; the hardest benchmarks (twolf, vpr) near 15-20%",
		},
	}
}

// MultiBranch evaluates the §3.3.1 extension: predicting up to b branches
// per cycle from one enlarged PHT buffer, with within-block histories
// necessarily stale. It reports the accuracy cost and the buffer sizing
// b·2^L the paper derives.
func MultiBranch(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 64 << 10
	widths := []int{1, 2, 4, 8}
	profiles := workload.Profiles()
	values := make([][]float64, len(widths))
	for i := range values {
		values[i] = make([]float64, 3)
		for j := range values[i] {
			values[i][j] = math.NaN()
		}
	}
	forEach(len(widths), opts.Parallel, func(i int) {
		w := widths[i]
		var rates []float64
		var bufEntries, sizeBytes int
		for _, prof := range profiles {
			g := NewGShareFast(budget)
			bufEntries = g.BlockBufferEntries(w)
			sizeBytes = g.BlockSizeBytes(w)
			res := funcsim.RunBlocks(g, g.Name(), source(prof, opts), funcsim.Options{
				MaxInsts:      opts.Insts,
				WarmupInsts:   opts.Warmup,
				FetchWidth:    8,
				BlockBranches: w,
			})
			rates = append(rates, res.MispredictPercent())
		}
		values[i] = []float64{stats.Mean(rates), float64(bufEntries), float64(sizeBytes)}
	})
	rows := make([]string, len(widths))
	for i, w := range widths {
		rows[i] = fmt.Sprintf("b=%d", w)
	}
	t := &textplot.Table{
		Title:     "Multiple-branch prediction at 64KB (gshare.fast)",
		RowHeader: "block width",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "buffer entries", "state bytes"},
		Values:    values,
		Format:    "%10.3f",
	}
	return &Outcome{
		ID:     "multibranch",
		Title:  "§3.3.1: multiple branches per cycle with stale within-block history",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"expected: accuracy degrades only mildly as block width grows; buffer grows as b·2^L",
		},
	}
}

// BufferSweep is an ablation beyond the paper: how the split between
// prefetched (stale) row bits and late-selected (fresh) buffer bits affects
// gshare.fast accuracy at a 256 KB budget.
func BufferSweep(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	bufBits := []uint{3, 6, 9, 12, 15}
	profiles := workload.Profiles()
	values := make([][]float64, len(bufBits))
	forEach(len(bufBits), opts.Parallel, func(i int) {
		entries := 4
		for entries*2*2/8 <= budget {
			entries *= 2
		}
		var rates []float64
		for _, prof := range profiles {
			rates = append(rates, accuracyRun(func() predictor.Predictor {
				return core.New(core.Config{
					Entries:    entries,
					Latency:    delaymodel.Default.PHTReadCycles(entries),
					BufferBits: bufBits[i],
				})
			}, prof, opts))
		}
		values[i] = []float64{stats.Mean(rates)}
	})
	rows := make([]string, len(bufBits))
	for i, b := range bufBits {
		rows[i] = fmt.Sprintf("%d bits", b)
	}
	t := &textplot.Table{
		Title:     "PHT buffer width ablation at 256KB (gshare.fast)",
		RowHeader: "buffer index",
		Rows:      rows,
		Cols:      []string{"mean mispredict %"},
		Values:    values,
	}
	return &Outcome{
		ID:     "buffersweep",
		Title:  "Ablation: stale-row vs fresh-buffer index split",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"narrow buffers leave more index bits stale; very wide buffers spend the index on few PC bits — accuracy peaks in between",
		},
	}
}

// QuickSizeSweep is an ablation beyond the paper: the overriding
// organization's sensitivity to the quick predictor's size (the paper fixes
// it at an optimistic 2K entries).
func QuickSizeSweep(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	sizes := []int{256, 1024, 2048, 8192}
	profiles := workload.Profiles()
	values := make([][]float64, len(sizes))
	forEach(len(sizes), opts.Parallel, func(i int) {
		// The QuickEntries row constructs exactly the standard
		// overriding organization, so it shares the canonical
		// "override" cells with the figures at this budget.
		org := "override"
		if sizes[i] != QuickEntries {
			org = fmt.Sprintf("override.q%d", sizes[i])
		}
		var ipcs, overrides []float64
		for _, prof := range profiles {
			res := cellCustom(pipeline.DefaultConfig(), "perceptron", org, budget,
				func() predictor.Predictor {
					slow := mustPredictor("perceptron", budget)
					lat := delaymodel.Default.ForPredictor(slow)
					return core.NewOverriding(predictor.NewGShare(sizes[i], 0), slow, lat)
				}, prof, opts)
			ipcs = append(ipcs, res.IPC())
			overrides = append(overrides, 100*res.OverrideRate)
		}
		values[i] = []float64{stats.HarmonicMean(ipcs), stats.Mean(overrides)}
	})
	rows := make([]string, len(sizes))
	for i, s := range sizes {
		rows[i] = fmt.Sprintf("%d entries", s)
	}
	t := &textplot.Table{
		Title:     "Quick predictor size ablation (perceptron @256KB behind overriding)",
		RowHeader: "quick gshare",
		Rows:      rows,
		Cols:      []string{"harmonic IPC", "override rate %"},
		Values:    values,
	}
	return &Outcome{
		ID:     "quicksweep",
		Title:  "Ablation: quick predictor size vs override rate and IPC",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"a better quick predictor lowers the override rate and recovers some IPC, but cannot reach the pipelined predictor's zero-penalty point",
		},
	}
}

// DepthSweep is an ablation beyond the paper: how pipeline depth scales the
// penalty gap between gshare.fast and an overriding perceptron at 256 KB —
// the paper's motivation that deeper pipelines make predictor delay worse.
func DepthSweep(opts Options) *Outcome {
	opts = opts.normalize()
	depths := []int{10, 20, 30, 40}
	const budget = 256 << 10
	profiles := workload.Profiles()
	values := make([][]float64, len(depths))
	forEach(len(depths), opts.Parallel, func(i int) {
		cfg := pipeline.DefaultConfig()
		cfg.PipelineDepth = depths[i]
		cfg.FrontEndDepth = depths[i] / 2
		// The depth-20 row's canonical config equals the Table 1
		// machine's, so both of its columns are figure cells at this
		// budget; other depths get distinct config keys.
		var fast, over []float64
		for _, prof := range profiles {
			fast = append(fast, cellCustom(cfg, "gshare.fast", "ideal", budget,
				func() predictor.Predictor { return NewGShareFast(budget) }, prof, opts).IPC())
			over = append(over, cellCustom(cfg, "perceptron", "override", budget,
				func() predictor.Predictor { return mustOverriding("perceptron", budget) }, prof, opts).IPC())
		}
		values[i] = []float64{stats.HarmonicMean(fast), stats.HarmonicMean(over)}
	})
	rows := make([]string, len(depths))
	for i, d := range depths {
		rows[i] = fmt.Sprintf("depth=%d", d)
	}
	t := &textplot.Table{
		Title:     "Pipeline depth ablation at 256KB",
		RowHeader: "pipeline",
		Rows:      rows,
		Cols:      []string{"gshare.fast IPC", "perceptron(override) IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "depthsweep",
		Title:  "Ablation: pipeline depth vs predictor organization",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"with access latency held constant, depth amplifies the misprediction penalty, which favors the more accurate predictor;",
			"the paper's depth argument acts through the clock: deeper pipelines mean faster clocks, which grow the predictor's latency in cycles — that axis is swept by the budget dimension of figures 2 and 7",
		},
	}
}

// FastFamily is the §5 study the paper's conclusion proposes: apply the
// gshare.fast pipelining to another predictor (bi-mode) and compare the
// resulting single-cycle family against the overriding complex predictors
// at a large budget, in both accuracy and IPC.
func FastFamily(opts Options) *Outcome {
	opts = opts.normalize()
	const budget = 256 << 10
	rows := []string{"gshare.fast", "bimode.fast", "perceptron(override)", "multicomponent(override)", "2bcgskew(override)"}
	profiles := workload.Profiles()
	values := make([][]float64, len(rows))
	// Each row's timing cell is canonical: the pipelined predictors are
	// exactly their factory ("ideal") organizations and the rest are the
	// standard overriding ones, so all five columns share memo entries
	// with the figures at this budget.
	cellKinds := []string{"gshare.fast", "bimode.fast", "perceptron", "multicomponent", "2bcgskew"}
	cellModes := []TimingMode{Ideal, Ideal, Realistic, Realistic, Realistic}
	accBuilders := []func() predictor.Predictor{
		func() predictor.Predictor { return NewGShareFast(budget) },
		func() predictor.Predictor { return NewBiModeFast(budget) },
		func() predictor.Predictor { p, _ := NewPredictor("perceptron", budget); return p },
		func() predictor.Predictor { p, _ := NewPredictor("multicomponent", budget); return p },
		func() predictor.Predictor { p, _ := NewPredictor("2bcgskew", budget); return p },
	}
	forEach(len(rows), opts.Parallel, func(i int) {
		var rates, ipcs []float64
		for _, prof := range profiles {
			rates = append(rates, accuracyRun(accBuilders[i], prof, opts))
			ipcs = append(ipcs, Cell(cellKinds[i], budget, cellModes[i], prof, opts).IPC())
		}
		values[i] = []float64{stats.Mean(rates), stats.HarmonicMean(ipcs)}
	})
	t := &textplot.Table{
		Title:     "Pipelined predictor family vs overriding complex predictors at 256KB",
		RowHeader: "organization",
		Rows:      rows,
		Cols:      []string{"mean mispredict %", "harmonic IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "fastfamily",
		Title:  "§5: reorganizing other predictors with the gshare.fast pipeline",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"the pipelined family pays no organization penalty: its IPC tracks its accuracy, while the overriding predictors give back their accuracy advantage as bubbles",
		},
	}
}

// Recovery measures what the §3.2 checkpointed-PHT-buffer mechanism is
// worth: gshare.fast with per-stage buffer checkpoints (recovery is free)
// versus without (every misprediction additionally stalls fetch for a full
// PHT read while the buffer refills).
func Recovery(opts Options) *Outcome {
	opts = opts.normalize()
	budgets := []int{64 << 10, 256 << 10, 512 << 10}
	profiles := workload.Profiles()
	values := make([][]float64, len(budgets))
	forEach(len(budgets), opts.Parallel, func(i int) {
		// The checkpointed column is the stock gshare.fast — the same
		// "ideal" cells the figures sweep — while the uncheckpointed
		// wrapper is its own memo organization.
		var with, without []float64
		for _, prof := range profiles {
			with = append(with, Cell("gshare.fast", budgets[i], Ideal, prof, opts).IPC())
			without = append(without, cellCustom(pipeline.DefaultConfig(), "gshare.fast", "nockpt", budgets[i],
				func() predictor.Predictor {
					return core.WithoutCheckpointing(NewGShareFast(budgets[i]))
				}, prof, opts).IPC())
		}
		values[i] = []float64{stats.HarmonicMean(with), stats.HarmonicMean(without)}
	})
	rows := make([]string, len(budgets))
	for i, b := range budgets {
		rows[i] = budgetLabel(b)
	}
	t := &textplot.Table{
		Title:     "Misprediction recovery: checkpointed vs uncheckpointed PHT buffer",
		RowHeader: "budget",
		Rows:      rows,
		Cols:      []string{"checkpointed IPC", "uncheckpointed IPC"},
		Values:    values,
	}
	return &Outcome{
		ID:     "recovery",
		Title:  "§3.2: what per-stage PHT buffer checkpointing is worth",
		Tables: []*textplot.Table{t},
		Notes: []string{
			"the gap grows with budget: the uncheckpointed buffer refill costs a full (growing) PHT read per misprediction",
		},
	}
}
