package experiments

import (
	"reflect"
	"sync"
	"testing"

	"branchsim/internal/pipeline"
	"branchsim/internal/workload"
)

// stressOpts uses an instruction budget no other test shares (the same
// convention as memoTestOpts), so the memo cells and process-wide sidecar
// store entries hammered here belong to this test alone.
var stressOpts = Options{Insts: 117_000, Warmup: 30_000, Parallel: 1}

// TestTimingMemoConcurrentStress is the runtime twin of the lockguard
// analyzer: it hammers TimingMemo.Cell and the process-wide sidecar store
// from parallel goroutines under -race and cross-checks every result
// against a fresh serial recompute (fresh predictor, private replay, live
// caches, no memo). A data race on the guarded maps shows up here as a
// race report or a diverging Result; the memo accounting at the end pins
// that every duplicate lookup really was served from memory.
func TestTimingMemoConcurrentStress(t *testing.T) {
	const budget = 64 << 10
	var profs []workload.Profile
	for _, name := range []string{"gzip", "twolf"} {
		prof, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		profs = append(profs, prof)
	}

	type cellSpec struct {
		kind string
		mode TimingMode
		prof workload.Profile
	}
	var specs []cellSpec
	for _, prof := range profs {
		specs = append(specs,
			cellSpec{"perceptron", Ideal, prof},
			cellSpec{"perceptron", Realistic, prof},
			cellSpec{"gshare.fast", Realistic, prof},
		)
	}

	// Serial references, recomputed from scratch with no memo and no
	// sidecar: the concurrent lookups below must match these exactly.
	refs := make([]pipeline.Result, len(specs))
	for i, sp := range specs {
		rec := workload.Record(sp.prof, stressOpts.Insts)
		sim := pipeline.New(pipeline.DefaultConfig(), buildTimed(sp.kind, budget, sp.mode))
		refs[i] = sim.Run(rec.Replay(), stressOpts.Insts, stressOpts.Warmup)
	}

	// Sidecar references: the memoized sidecar must be pointer-stable
	// across goroutines and column-identical to a freshly built one.
	cfg := pipeline.DefaultConfig()
	wantSides := make([]*pipeline.MemSidecar, len(profs))
	for i, prof := range profs {
		wantSides[i] = sidecar(prof, stressOpts, cfg)
		fresh := pipeline.BuildMemSidecar(workload.Record(prof, stressOpts.Insts), pipeline.MemGeometryOf(cfg))
		if !reflect.DeepEqual(wantSides[i], fresh) {
			t.Fatalf("memoized sidecar for %s diverges from a fresh build", prof.Name)
		}
	}

	m := NewTimingMemo()
	const goroutines = 8
	const iters = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				// Each goroutine walks the cells at a different phase so
				// first-computes and memo hits interleave across the grid.
				for j := range specs {
					i := (j + g) % len(specs)
					sp := specs[i]
					got := m.Cell(sp.kind, budget, sp.mode, sp.prof, stressOpts)
					if !reflect.DeepEqual(got, refs[i]) {
						t.Errorf("goroutine %d: %s/%v/%s diverges from serial recompute:\n got %+v\nwant %+v",
							g, sp.kind, sp.mode, sp.prof.Name, got, refs[i])
					}
				}
				for i, prof := range profs {
					if side := sidecar(prof, stressOpts, cfg); side != wantSides[i] {
						t.Errorf("goroutine %d: sidecar store returned a distinct sidecar for %s", g, prof.Name)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every spec is a distinct key (kind and bench differ; gshare.fast's
	// mode collapse does not merge across kinds), so the memo must hold
	// exactly len(specs) cells and have served every other lookup from
	// memory.
	m.mu.Lock()
	cells, hits := len(m.entries), m.hits
	m.mu.Unlock()
	if cells != len(specs) {
		t.Errorf("memo holds %d cells, want %d", cells, len(specs))
	}
	if want := int64(goroutines*iters*len(specs) - len(specs)); hits != want {
		t.Errorf("memo served %d hits, want %d", hits, want)
	}
}
