package pipeline

// Result summarizes a timing run. The timing memo publishes one Result per
// cell under a sync.Once and every later experiment reads that same value,
// so it is frozen: built locally, then never written again.
//
//bplint:frozen
type Result struct {
	// Workload and predictor identify the run.
	Workload  string
	Predictor string
	// Insts and Cycles are the measured (post-warm-up) counts.
	Insts  int64
	Cycles uint64
	// Branches and Mispredicts cover the measured window.
	Branches    int64
	Mispredicts int64
	// Overrides and OverrideRate report the overriding organization's
	// quick/slow disagreements over the whole run (0 for single
	// predictors and gshare.fast).
	Overrides    int64
	OverrideRate float64
	// BTBMissRate is misses per taken-control-flow lookup.
	BTBMissRate float64
	// L1IMissRate, L1DMissRate and L2MissRate are cache miss ratios over
	// the whole run.
	L1IMissRate float64
	L1DMissRate float64
	L2MissRate  float64
	// FetchStallCycles approximately attributes cycles the fetch point
	// was pushed forward by redirects, bubbles and cache misses.
	FetchStallCycles uint64
}

// IPC returns measured instructions per cycle, the paper's metric.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// MispredictPercent returns the measured misprediction rate as a
// percentage.
func (r Result) MispredictPercent() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * float64(r.Mispredicts) / float64(r.Branches)
}

// result assembles the Result from the simulation state.
func (s *Sim) result(warmupInsts int64) Result {
	r := Result{
		Predictor:        s.pred.Name(),
		Insts:            s.insts - warmupInsts,
		Cycles:           s.cycles,
		Branches:         s.measBranches.Total,
		Mispredicts:      s.measBranches.Events,
		BTBMissRate:      s.btbMisses.Value(),
		L1IMissRate:      s.icache.MissRate(),
		L1DMissRate:      s.dcache.MissRate(),
		L2MissRate:       s.l2.MissRate(),
		FetchStallCycles: s.fetchStall,
	}
	if s.sideActive {
		// The sidecar path tallied accesses and misses instead of
		// simulating the caches; same ratios, same zero-total rule.
		r.L1IMissRate = missRate(s.sideL1IMiss, s.sideL1IAcc)
		r.L1DMissRate = missRate(s.sideL1DMiss, s.sideL1DAcc)
		r.L2MissRate = missRate(s.sideL2Miss, s.sideL2Acc)
	}
	if s.over != nil {
		r.Overrides = s.overrides.Events
		r.OverrideRate = s.overrides.Value()
	}
	return r
}

// missRate mirrors cache.Cache.MissRate's formula for the sidecar tallies.
func missRate(misses, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(misses) / float64(total)
}
