package pipeline

import (
	"reflect"
	"testing"

	"branchsim/internal/cache"
	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// opaqueReplay hides every protocol but Source, forcing Run down the
// instruction-at-a-time slow path with live caches — the reference the
// fast-path layers must match bit for bit.
type opaqueReplay struct{ src trace.Source }

func (o opaqueReplay) Next(inst *trace.Inst) bool { return o.src.Next(inst) }
func (o opaqueReplay) Name() string               { return o.src.Name() }

// instSourceOnly exposes the batch protocol without being a *trace.Cursor,
// exercising the interface-typed batched loop (runInstSource).
type instSourceOnly struct{ cur *trace.Cursor }

func (o instSourceOnly) Next(inst *trace.Inst) bool     { return o.cur.Next(inst) }
func (o instSourceOnly) NextInsts(dst []trace.Inst) int { return o.cur.NextInsts(dst) }
func (o instSourceOnly) Name() string                   { return o.cur.Name() }

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return prof
}

// timingOrgs are the predictor organizations the equivalence suite sweeps:
// an ideal single-cycle predictor, the overriding quick+slow organization
// (whose override bubbles interact with fetch state), and the cycle-aware
// pipelined gshare.fast (which consumes the fetch clock).
func timingOrgs() []struct {
	name string
	mk   func() predictor.Predictor
} {
	return []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"ideal-gshare-16KB", func() predictor.Predictor {
			return predictor.NewGShareFromBudget(16 << 10)
		}},
		{"override-perceptron-64KB", func() predictor.Predictor {
			return core.NewOverriding(predictor.NewGShare(2048, 0),
				predictor.NewPerceptronFromBudget(64<<10), 4)
		}},
		{"gshare.fast-64KB", func() predictor.Predictor {
			return core.New(core.Config{Entries: 1 << 15, Latency: 3})
		}},
	}
}

// TestTimingFastPathEquivalence is the tentpole's correctness contract: the
// batched replay loop, the interface-typed batched loop, and the
// memory-latency sidecar must each reproduce the instruction-at-a-time
// live-cache run bit for bit — across benchmarks (including a stream
// shorter than the budget), predictor organizations, and warmup settings.
func TestTimingFastPathEquivalence(t *testing.T) {
	cases := []struct {
		bench    string
		recorded int64 // stream length materialized for the replay sources
	}{
		// Recording longer than the budget: the run stops at the budget.
		{"gzip", 200_000},
		{"mcf", 200_000},
		// Recording shorter than the budget: the run stops at stream end.
		{"twolf", 80_000},
	}
	const maxInsts = 150_000
	cfg := DefaultConfig()
	side := map[string]*MemSidecar{}
	for _, tc := range cases {
		rec := workload.Record(mustProfile(t, tc.bench), tc.recorded)
		side[tc.bench] = BuildMemSidecar(rec, MemGeometryOf(cfg))
		for _, org := range timingOrgs() {
			for _, warmup := range []int64{0, 40_000} {
				t.Run(tc.bench+"/"+org.name, func(t *testing.T) {
					want := New(cfg, org.mk()).Run(opaqueReplay{rec.Replay()}, maxInsts, warmup)

					batched := New(cfg, org.mk()).Run(rec.Replay(), maxInsts, warmup)
					if !reflect.DeepEqual(batched, want) {
						t.Errorf("warmup %d: batched cursor diverges:\n got %+v\nwant %+v", warmup, batched, want)
					}

					iface := New(cfg, org.mk()).Run(instSourceOnly{rec.Replay()}, maxInsts, warmup)
					if !reflect.DeepEqual(iface, want) {
						t.Errorf("warmup %d: batched InstSource diverges:\n got %+v\nwant %+v", warmup, iface, want)
					}

					sim := New(cfg, org.mk())
					sim.SetMemSidecar(side[tc.bench])
					withSide := sim.Run(rec.Replay(), maxInsts, warmup)
					if !reflect.DeepEqual(withSide, want) {
						t.Errorf("warmup %d: sidecar run diverges:\n got %+v\nwant %+v", warmup, withSide, want)
					}
				})
			}
		}
	}
}

// TestSidecarFallback pins the safety rails: a sidecar precomputed under a
// different cache geometry, or presented with a mid-stream cursor, must be
// ignored in favor of the live hierarchy.
func TestSidecarFallback(t *testing.T) {
	rec := workload.Record(mustProfile(t, "gzip"), 120_000)
	mk := func() predictor.Predictor { return predictor.NewGShareFromBudget(16 << 10) }
	cfg := DefaultConfig()
	want := New(cfg, mk()).Run(opaqueReplay{rec.Replay()}, 120_000, 30_000)

	t.Run("geometry-mismatch", func(t *testing.T) {
		other := MemGeometryOf(cfg)
		other.L1I = cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 1}
		sim := New(cfg, mk())
		sim.SetMemSidecar(BuildMemSidecar(rec, other))
		got := sim.Run(rec.Replay(), 120_000, 30_000)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mismatched-geometry sidecar was not ignored:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("mid-stream-cursor", func(t *testing.T) {
		cur := rec.Replay()
		var inst trace.Inst
		cur.Next(&inst) // cursor no longer at position 0
		sim := New(cfg, mk())
		sim.SetMemSidecar(BuildMemSidecar(rec, MemGeometryOf(cfg)))
		got := sim.Run(cur, 120_000, 30_000)
		ref := New(cfg, mk()).Run(opaqueReplay{offsetReplay(rec)}, 120_000, 30_000)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("mid-stream cursor with sidecar diverges from live run:\n got %+v\nwant %+v", got, ref)
		}
	})

	t.Run("other-recording", func(t *testing.T) {
		other := workload.Record(mustProfile(t, "mcf"), 120_000)
		sim := New(cfg, mk())
		sim.SetMemSidecar(BuildMemSidecar(other, MemGeometryOf(cfg)))
		got := sim.Run(rec.Replay(), 120_000, 30_000)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("foreign-recording sidecar was not ignored:\n got %+v\nwant %+v", got, want)
		}
	})
}

// offsetReplay returns a cursor advanced by one instruction, matching the
// mid-stream case above.
func offsetReplay(rec *trace.Recording) *trace.Cursor {
	cur := rec.Replay()
	var inst trace.Inst
	cur.Next(&inst)
	return cur
}

// TestBatchedTimingRunAllocs pins the steady-state allocation count of the
// batched+sidecar timing loop at zero: the batch lives on the driver's
// stack (Run devirtualizes the replay cursor), the run state is a stack
// struct, and the sidecar replaces the only allocating cache work. Skipped
// under -race, which instruments allocation.
func TestBatchedTimingRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rec := workload.Record(mustProfile(t, "gzip"), 100_000)
	cur := rec.Replay()
	cfg := DefaultConfig()
	side := BuildMemSidecar(rec, MemGeometryOf(cfg))
	sim := New(cfg, predictor.NewGShareFromBudget(16<<10))
	sim.SetMemSidecar(side)
	sim.Run(cur, 100_000, 20_000) // warm any lazy state
	allocs := testing.AllocsPerRun(10, func() {
		cur.Reset()
		sim.Run(cur, 100_000, 20_000)
	})
	if allocs != 0 {
		t.Fatalf("batched timing Run allocates %.1f objects per run, want 0", allocs)
	}
}
