package pipeline

import "testing"

// refRing is the obviously-correct reference for slotRing: an unbounded
// per-cycle occupancy map.
type refRing struct {
	count map[uint64]uint16
	limit uint16
}

func (r *refRing) take(t uint64) uint64 {
	for r.count[t] >= r.limit {
		t++
	}
	r.count[t]++
	return t
}

func (r *refRing) peekFree(t uint64) uint64 {
	for r.count[t] >= r.limit {
		t++
	}
	return t
}

// TestSlotRingWraparound is a property test of slotRing against the map
// reference, driving the query point far past ringSize so every index wraps
// several times.
//
// The ring is exact under the simulator's window invariant: all queries
// live within a sliding window narrower than ringSize. The scoreboard
// guarantees this structurally — issue and commit cycles trail the fetch
// point by bounded latencies (ROB occupancy, execution latencies, redirect
// bubbles), all far smaller than ringSize — so when a query at cycle t
// lands on a slot whose stored cycle differs, that slot's last use is at
// least ringSize cycles stale and can never be queried again; treating it
// as free and overwriting it is exactly what the unbounded map would do.
func TestSlotRingWraparound(t *testing.T) {
	for _, limit := range []int{1, 2, 8} {
		ring := newSlotRing(limit)
		ref := refRing{count: map[uint64]uint16{}, limit: uint16(limit)}

		// A deterministic LCG drives a front that advances past 4×ringSize
		// with jittered queries trailing it, mixing take and peekFree —
		// the shape of the simulator's issue-port searches.
		rnd := uint64(0x9e3779b97f4a7c15)
		next := func(n uint64) uint64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			return (rnd >> 33) % n
		}
		var front uint64
		steps := 0
		for front < 4*ringSize {
			front += next(64)
			// Queries sit in a window behind the front far narrower
			// than ringSize, per the invariant above.
			q := front + next(256)
			if front > 1024 {
				q = front - 1024 + next(1280)
			}
			if next(3) == 0 {
				got, want := ring.peekFree(q), ref.peekFree(q)
				if got != want {
					t.Fatalf("limit %d, step %d: peekFree(%d) = %d, want %d", limit, steps, q, got, want)
				}
			} else {
				got, want := ring.take(q), ref.take(q)
				if got != want {
					t.Fatalf("limit %d, step %d: take(%d) = %d, want %d", limit, steps, q, got, want)
				}
			}
			steps++
		}
		if front < 4*ringSize {
			t.Fatalf("limit %d: front only reached %d, wrap-around not exercised", limit, front)
		}
	}
}
