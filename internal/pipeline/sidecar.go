package pipeline

import (
	"branchsim/internal/cache"
	"branchsim/internal/trace"
)

// MemGeometry is the part of a Config the memory-latency sidecar depends
// on: the three cache geometries. Latencies are deliberately excluded — the
// sidecar records hierarchy *outcomes* (which level served each access),
// and the Sim charges its own config's latencies for them — so one sidecar
// serves every latency variant of a geometry. It is comparable and is the
// memoization key component in internal/tracestore.
type MemGeometry struct {
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
}

// MemGeometryOf extracts the sidecar-relevant geometry from a machine
// config.
func MemGeometryOf(cfg Config) MemGeometry {
	return MemGeometry{L1I: cfg.L1I, L1D: cfg.L1D, L2: cfg.L2}
}

// Per-instruction access classes, two 2-bit fields packed in one byte.
// The fetch field describes the instruction's I-cache block access; the mem
// field describes a load's or store's D-cache access.
const (
	sideFetchShift = 0
	sideFetchMask  = 0x03 << sideFetchShift
	sideMemShift   = 2
	sideMemMask    = 0x03 << sideMemShift
)

// Fetch classes. sideFetchNone marks an instruction in the same
// I-cache block as its predecessor: the live model accesses the
// cache for it only after a redirect cleared the fetch state, and
// that access is a guaranteed hit (see BuildMemSidecar).
//
//bplint:enum sideFetchClass
const (
	sideFetchNone = 0
	sideFetchL1   = 1 // new block, L1I hit
	sideFetchL2   = 2 // new block, L1I miss, L2 hit
	sideFetchMem  = 3 // new block, both miss
)

// Mem classes. Stores use only sideMemL1/sideMemMem: a store miss
// allocates the L1D line without an L2 access (store-queue retire).
//
//bplint:enum sideMemClass
const (
	sideMemNone = 0
	sideMemL1   = 1 // L1D hit
	sideMemL2   = 2 // load: L1D miss, L2 hit
	sideMemMem  = 3 // load: both miss; store: L1D miss
)

// MemSidecar is a precomputed memory-hierarchy outcome column for one
// (recording, cache geometry) pair: one class byte per recorded
// instruction. It exists because in a trace-driven no-wrong-path model the
// entire L1I/L1D/L2 access sequence is a pure function of the recorded
// stream in program order — independent of the branch predictor under test
// — so the hierarchy can be simulated once per recording and geometry
// instead of once per experiment-grid cell:
//
//   - The live model accesses the L1I at instruction i exactly when
//     i's block differs from the last-fetched block, and the last-fetched
//     block is either instruction i-1's block or cleared (0) by a
//     redirect/fetch break. If i's block differs from i-1's, the access
//     happens unconditionally. If it equals i-1's, the access happens only
//     after a clear — a re-touch of the block accessed for i-1 with no
//     intervening I-cache accesses, so the line is still resident and MRU:
//     a guaranteed hit that moves no cache state except the hit tally
//     (which the Sim counts live). The I-cache therefore evolves along the
//     predictor-independent new-block subsequence.
//   - The D-cache is accessed for every load and store in program order,
//     unconditionally.
//   - The L2 access sequence is the L1I new-block misses interleaved with
//     the L1D load misses, in program order (store misses allocate in L1D
//     without an L2 access).
//
// The equivalence suite (fastpath_test.go) checks the resulting Result is
// bit-identical to live simulation across predictor organizations.
//
// Like the Recording it annotates, a built sidecar is shared read-only
// across goroutines; the frozen analyzer proves no post-publication write.
//
//bplint:frozen
type MemSidecar struct {
	rec   *trace.Recording
	geom  MemGeometry
	class []uint8
}

// Geometry returns the cache geometry the sidecar was computed under.
func (m *MemSidecar) Geometry() MemGeometry { return m.geom }

// SizeBytes returns the in-memory footprint of the class column.
func (m *MemSidecar) SizeBytes() int64 { return int64(len(m.class)) }

// covers reports whether the sidecar's precomputed outcomes apply to a run
// of cfg over cur: same recording, replay starting at the beginning, and
// identical cache geometry. Anything else falls back to live simulation.
func (m *MemSidecar) covers(cfg Config, cur *trace.Cursor) bool {
	return m.rec == cur.Recording() && cur.Pos() == 0 && m.geom == MemGeometryOf(cfg)
}

// BuildMemSidecar simulates the memory hierarchy once over the whole
// recording and returns the per-instruction outcome column. The cost is
// one cache-only pass per (recording, geometry); every timing cell that
// replays the recording under that geometry then skips the three-cache
// simulation entirely.
func BuildMemSidecar(rec *trace.Recording, geom MemGeometry) *MemSidecar {
	m := &MemSidecar{
		rec:   rec,
		geom:  geom,
		class: make([]uint8, 0, rec.Len()),
	}
	icache := cache.New(geom.L1I)
	dcache := cache.New(geom.L1D)
	l2 := cache.New(geom.L2)
	blockMask := ^uint64(int64(geom.L1I.LineBytes) - 1)
	var lastBlock uint64

	batch := make([]trace.Inst, trace.InstBatchLen)
	cur := rec.Replay()
	for {
		n := cur.NextInsts(batch)
		if n == 0 {
			return m
		}
		for i := 0; i < n; i++ {
			inst := &batch[i]
			var cls uint8
			block := inst.PC&blockMask + 1
			if block != lastBlock {
				lastBlock = block
				switch {
				case icache.Access(inst.PC):
					cls = sideFetchL1 << sideFetchShift
				case l2.Access(inst.PC):
					cls = sideFetchL2 << sideFetchShift
				default:
					cls = sideFetchMem << sideFetchShift
				}
			}
			switch inst.Kind {
			case trace.Load:
				switch {
				case dcache.Access(inst.Addr):
					cls |= sideMemL1 << sideMemShift
				case l2.Access(inst.Addr):
					cls |= sideMemL2 << sideMemShift
				default:
					cls |= sideMemMem << sideMemShift
				}
			case trace.Store:
				if dcache.Access(inst.Addr) {
					cls |= sideMemL1 << sideMemShift
				} else {
					cls |= sideMemMem << sideMemShift
				}
			case trace.ALU, trace.Mul, trace.FPU, trace.CondBranch, trace.Jump:
				// No memory access: the mem field stays sideMemNone.
			default:
				panic("pipeline: unhandled instruction kind")
			}
			m.class = append(m.class, cls)
		}
	}
}
