//go:build !race

package pipeline

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip themselves when it does.
const raceEnabled = false
