package pipeline

import (
	"testing"

	"branchsim/internal/core"
	"branchsim/internal/delaymodel"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// perfect predicts every branch correctly by peeking at the trace — the
// driver calls Predict before Update, and we exploit that the simulator
// calls them back to back with the same instruction.
type oracle struct{ next bool }

func (o *oracle) Predict(uint64) bool { return o.next }
func (o *oracle) Update(uint64, bool) {}
func (o *oracle) SizeBytes() int      { return 0 }
func (o *oracle) Name() string        { return "oracle" }
func (o *oracle) arm(taken bool)      { o.next = taken }

// oracleGen wraps a generator and arms the oracle before each branch.
type oracleGen struct {
	inner trace.Generator
	o     *oracle
}

func (g *oracleGen) Next(inst *trace.Inst) bool {
	if !g.inner.Next(inst) {
		return false
	}
	if inst.Kind == trace.CondBranch {
		g.o.arm(inst.Taken)
	}
	return true
}

func (g *oracleGen) Name() string { return g.inner.Name() }

func run(p predictor.Predictor, bench string, insts int64) Result {
	prof, _ := workload.ByName(bench)
	sim := New(DefaultConfig(), p)
	return sim.Run(workload.New(prof), insts, insts/4)
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	res := run(predictor.NewGShareFromBudget(64<<10), "eon", 400000)
	if ipc := res.IPC(); ipc <= 0.1 || ipc > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("IPC %v out of physical bounds", ipc)
	}
}

func TestOraclePredictorBeatsBadPredictor(t *testing.T) {
	o := &oracle{}
	prof, _ := workload.ByName("twolf")
	simO := New(DefaultConfig(), o)
	resO := simO.Run(&oracleGen{inner: workload.New(prof), o: o}, 400000, 100000)

	resBad := run(predictor.NotTaken{}, "twolf", 400000)
	if resO.IPC() <= resBad.IPC() {
		t.Fatalf("oracle IPC %.3f <= not-taken IPC %.3f", resO.IPC(), resBad.IPC())
	}
	if resO.Mispredicts != 0 {
		t.Fatalf("oracle mispredicted %d times", resO.Mispredicts)
	}
	// Branch handling must matter: the gap should be substantial.
	if resO.IPC() < 1.2*resBad.IPC() {
		t.Fatalf("misprediction penalty too weak: %.3f vs %.3f", resO.IPC(), resBad.IPC())
	}
}

func TestMispredictionRateMatchesFuncsimBallpark(t *testing.T) {
	// The timing simulator's measured misprediction rate for a simple
	// predictor should be in the same region as a functional run (exact
	// match is not expected: cycle feeds differ for cycle-aware preds,
	// and measurement windows differ slightly).
	res := run(predictor.NewGShareFromBudget(64<<10), "gzip", 1000000)
	if res.MispredictPercent() < 1 || res.MispredictPercent() > 20 {
		t.Fatalf("gshare on gzip: %.2f%%", res.MispredictPercent())
	}
}

func TestOverrideBubblesReduceIPC(t *testing.T) {
	prof, _ := workload.ByName("parser")
	mkSlow := func() predictor.Predictor { return predictor.NewPerceptronFromBudget(256 << 10) }

	ideal := New(DefaultConfig(), mkSlow())
	idealRes := ideal.Run(workload.New(prof), 600000, 150000)

	slow := mkSlow()
	lat := delaymodel.Default.ForPredictor(slow)
	over := core.NewOverriding(predictor.NewGShare(2048, 0), slow, lat)
	overSim := New(DefaultConfig(), over)
	overRes := overSim.Run(workload.New(prof), 600000, 150000)

	if overRes.OverrideRate <= 0 {
		t.Fatal("no overrides recorded")
	}
	if overRes.IPC() >= idealRes.IPC() {
		t.Fatalf("override bubbles did not cost IPC: %.3f vs ideal %.3f",
			overRes.IPC(), idealRes.IPC())
	}
}

func TestGShareFastPaysNoOrganizationPenalty(t *testing.T) {
	// gshare.fast with a 9-cycle PHT must beat the same-accuracy-class
	// overriding gshare with a 9-cycle latency.
	prof, _ := workload.ByName("vpr")
	fast := core.New(core.Config{Entries: 1 << 20, Latency: 9})
	fastRes := New(DefaultConfig(), fast).Run(workload.New(prof), 600000, 150000)

	slow := predictor.NewGShare(1<<20, 0)
	over := core.NewOverriding(predictor.NewGShare(2048, 0), slow, 9)
	overRes := New(DefaultConfig(), over).Run(workload.New(prof), 600000, 150000)

	if fastRes.IPC() <= overRes.IPC() {
		t.Fatalf("pipelined gshare.fast (%.3f) should beat overriding gshare (%.3f) at equal size",
			fastRes.IPC(), overRes.IPC())
	}
}

func TestCacheStatsPopulated(t *testing.T) {
	res := run(predictor.NewGShareFromBudget(16<<10), "mcf", 400000)
	if res.L1DMissRate <= 0 {
		t.Fatal("mcf must miss in the D-cache")
	}
	if res.L1DMissRate > 0.9 {
		t.Fatalf("implausible L1D miss rate %v", res.L1DMissRate)
	}
	if res.L2MissRate <= 0 {
		t.Fatal("mcf must miss in the L2")
	}
}

func TestMemoryBoundBenchmarkSlower(t *testing.T) {
	fast := run(predictor.NewGShareFromBudget(64<<10), "eon", 400000)
	slow := run(predictor.NewGShareFromBudget(64<<10), "mcf", 400000)
	if slow.IPC() >= fast.IPC() {
		t.Fatalf("mcf (%.3f) should be slower than eon (%.3f)", slow.IPC(), fast.IPC())
	}
}

func TestDeeperPipelineCostsIPC(t *testing.T) {
	prof, _ := workload.ByName("twolf")
	shallow := DefaultConfig()
	shallow.PipelineDepth = 10
	deep := DefaultConfig()
	deep.PipelineDepth = 40
	resShallow := New(shallow, predictor.NewGShareFromBudget(16<<10)).Run(workload.New(prof), 400000, 100000)
	resDeep := New(deep, predictor.NewGShareFromBudget(16<<10)).Run(workload.New(prof), 400000, 100000)
	if resDeep.IPC() >= resShallow.IPC() {
		t.Fatalf("deeper pipeline did not cost IPC: %.3f vs %.3f",
			resDeep.IPC(), resShallow.IPC())
	}
}

func TestBTBMissesCounted(t *testing.T) {
	res := run(predictor.NewGShareFromBudget(16<<10), "gcc", 400000)
	if res.BTBMissRate <= 0 {
		t.Fatal("gcc's large code must produce BTB misses")
	}
}

func TestSlotRing(t *testing.T) {
	r := newSlotRing(2)
	if got := r.take(10); got != 10 {
		t.Fatalf("first take at %d", got)
	}
	if got := r.take(10); got != 10 {
		t.Fatalf("second take at %d", got)
	}
	if got := r.take(10); got != 11 {
		t.Fatalf("overflow take at %d, want 11", got)
	}
	if got := r.peekFree(10); got != 11 {
		t.Fatalf("peek at %d, want 11", got)
	}
	// peek must not reserve.
	if got := r.peekFree(11); got != 11 {
		t.Fatalf("peek reserved: %d", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := DefaultConfig()
	bad.IssueWidth = 0
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero issue width")
		}
	}()
	New(bad, predictor.Taken{})
}

func TestDeterministicIPC(t *testing.T) {
	a := run(predictor.NewGShareFromBudget(32<<10), "gap", 300000)
	b := run(predictor.NewGShareFromBudget(32<<10), "gap", 300000)
	if a.Cycles != b.Cycles || a.Mispredicts != b.Mispredicts {
		t.Fatalf("nondeterministic timing: %d/%d vs %d/%d cycles/mispredicts",
			a.Cycles, a.Mispredicts, b.Cycles, b.Mispredicts)
	}
}

func TestTable1Parameters(t *testing.T) {
	// DESIGN.md's experiment index: Table 1 is reproduced by the default
	// machine configuration.
	cfg := DefaultConfig()
	if cfg.IssueWidth != 8 {
		t.Errorf("issue width %d, want 8", cfg.IssueWidth)
	}
	if cfg.PipelineDepth != 20 {
		t.Errorf("pipeline depth %d, want 20", cfg.PipelineDepth)
	}
	if cfg.L1I.SizeBytes != 64<<10 || cfg.L1I.LineBytes != 64 || cfg.L1I.Ways != 1 {
		t.Errorf("L1I %+v, want 64KB/64B/direct-mapped", cfg.L1I)
	}
	if cfg.L1D.SizeBytes != 64<<10 || cfg.L1D.LineBytes != 64 || cfg.L1D.Ways != 1 {
		t.Errorf("L1D %+v, want 64KB/64B/direct-mapped", cfg.L1D)
	}
	if cfg.L2.SizeBytes != 2<<20 || cfg.L2.LineBytes != 128 || cfg.L2.Ways != 4 {
		t.Errorf("L2 %+v, want 2MB/128B/4-way", cfg.L2)
	}
	if cfg.BTBEntries != 512 || cfg.BTBWays != 2 {
		t.Errorf("BTB %d/%d, want 512 entries 2-way", cfg.BTBEntries, cfg.BTBWays)
	}
	if err := cfg.L1I.Validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.L2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestUncheckpointedRecoveryCostsIPC(t *testing.T) {
	prof, _ := workload.ByName("twolf")
	mk := func() *core.GShareFast {
		return core.New(core.Config{Entries: 1 << 20, Latency: 8})
	}
	with := New(DefaultConfig(), mk()).Run(workload.New(prof), 400000, 100000)
	without := New(DefaultConfig(), core.WithoutCheckpointing(mk())).Run(workload.New(prof), 400000, 100000)
	if without.IPC() >= with.IPC() {
		t.Fatalf("uncheckpointed recovery did not cost IPC: %.3f vs %.3f",
			without.IPC(), with.IPC())
	}
}
