// Package pipeline is the cycle-level timing model of the paper's simulated
// machine: an 8-wide, 20-deep out-of-order core in the SimpleScalar mould
// (Table 1), driven by the synthetic instruction traces. It charges fetch
// for instruction-cache misses, BTB misses, branch predictor organization
// penalties (override bubbles for complex predictors; nothing for
// gshare.fast) and misprediction redirects, and it models issue bandwidth,
// functional-unit contention, register dependencies, ROB occupancy, and the
// data-cache hierarchy. The output is instructions per cycle, the paper's
// performance metric (Figures 2, 7 and 8).
package pipeline

import (
	"branchsim/internal/cache"
)

// Config parameterizes the simulated core. DefaultConfig reproduces Table 1.
//
// Config's canonical form is the timing memo's key component, so every
// field must flow into Canonical — the keyfields analyzer enforces that a
// field added here is also added to the key, keeping two genuinely
// different machines from colliding on one memoized Result.
//
//bplint:keyfields Canonical
type Config struct {
	// FetchWidth is the instructions fetched per cycle (fetch stops at a
	// taken branch and at I-cache block boundaries).
	FetchWidth int
	// IssueWidth is the maximum instructions issued per cycle (Table 1:
	// issue width 8).
	IssueWidth int
	// CommitWidth is the maximum instructions retired per cycle.
	CommitWidth int
	// ROBSize bounds the instructions in flight.
	ROBSize int
	// PipelineDepth is the total pipeline depth (Table 1: 20).
	PipelineDepth int
	// FrontEndDepth is the fetch-to-dispatch distance in cycles; a
	// misprediction redirect refills this much pipe before new
	// instructions reach the window. Zero derives PipelineDepth/2.
	FrontEndDepth int

	// Functional-unit issue ports per cycle.
	IntPorts int // single-cycle integer ops and branches
	MemPorts int // loads and stores
	MulPorts int // integer multiply
	FPPorts  int // floating point

	// Execution latencies in cycles (pipelined units).
	MulLatency int
	FPLatency  int

	// Memory hierarchy (Table 1).
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	// L1DLatency is the load-use latency on an L1 hit; L2Latency and
	// MemLatency apply on L1 and L2 misses respectively.
	L1DLatency int
	L2Latency  int
	MemLatency int

	// BTB geometry (Table 1: 512-entry, 2-way) and the decode-redirect
	// bubble paid when a taken branch misses in it.
	BTBEntries     int
	BTBWays        int
	BTBMissPenalty int
}

// DefaultConfig returns the paper's Table 1 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    8,
		IssueWidth:    8,
		CommitWidth:   8,
		ROBSize:       128,
		PipelineDepth: 20,

		IntPorts: 6,
		MemPorts: 4,
		MulPorts: 2,
		FPPorts:  2,

		MulLatency: 7,
		FPLatency:  4,

		L1I: cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 1},
		L1D: cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 1},
		L2:  cache.Config{SizeBytes: 2 << 20, LineBytes: 128, Ways: 4},

		L1DLatency: 3,
		L2Latency:  12,
		MemLatency: 200,

		BTBEntries:     512,
		BTBWays:        2,
		BTBMissPenalty: 2,
	}
}

// frontEndDepth resolves the derived default.
func (c Config) frontEndDepth() int {
	if c.FrontEndDepth > 0 {
		return c.FrontEndDepth
	}
	return c.PipelineDepth / 2
}

// Canonical returns the config with derived defaults resolved, so two
// configs describing the same machine compare equal. Config is comparable;
// the canonical form is the timing-result memo's config key component.
//
// The result is built as an explicit field-by-field literal rather than a
// mutated copy of the receiver: the keyfields analyzer requires every
// Config field to be named here, turning a field added without a key
// extension into a lint failure instead of a silent memo collision.
func (c Config) Canonical() Config {
	return Config{
		FetchWidth:    c.FetchWidth,
		IssueWidth:    c.IssueWidth,
		CommitWidth:   c.CommitWidth,
		ROBSize:       c.ROBSize,
		PipelineDepth: c.PipelineDepth,
		FrontEndDepth: c.frontEndDepth(),

		IntPorts: c.IntPorts,
		MemPorts: c.MemPorts,
		MulPorts: c.MulPorts,
		FPPorts:  c.FPPorts,

		MulLatency: c.MulLatency,
		FPLatency:  c.FPLatency,

		L1I: c.L1I,
		L1D: c.L1D,
		L2:  c.L2,

		L1DLatency: c.L1DLatency,
		L2Latency:  c.L2Latency,
		MemLatency: c.MemLatency,

		BTBEntries:     c.BTBEntries,
		BTBWays:        c.BTBWays,
		BTBMissPenalty: c.BTBMissPenalty,
	}
}
