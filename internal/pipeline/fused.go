package pipeline

import (
	"math/bits"

	"branchsim/internal/btb"
	"branchsim/internal/cache"
	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
)

// This file is the fused timing engine: one trace pass feeds every pipeline
// configuration of a grid column at once. Sim.Run stays the per-cell
// reference implementation — simple, instruction-at-a-time, the thing the
// equivalence suite trusts — while RunMany is the throughput engine the
// fused experiment scheduler drives. The two produce bit-identical Results
// (TestFusedTimingEquivalence); RunMany is faster per lane because
//
//   - the 256-entry instruction batch is decoded once and its lane-invariant
//     columns (fetch-block addresses, port classes, MemSidecar outcome
//     classes and the latency classes derived from them) are computed once,
//     then every lane consumes the shared batch;
//   - lanes are interleaved per instruction: each lane's scoreboard update
//     is a serial dependency chain (ring probe → reserve → commit), and
//     stepping all lanes through one instruction before advancing lets those
//     independent chains overlap in the host pipeline instead of running
//     back to back;
//   - the slot rings keep one count byte per cycle, eight cycles to a word
//     (byteRing), so one reservation probe inspects eight cycles with two
//     loads and a branch-free full-slot mask, and the ROB cursor wraps with
//     a compare instead of an integer division.
//
// All lanes advance in lockstep over the shared batch, so the engine needs
// no cross-lane synchronization: lanes never read each other's state, and
// the only shared mutable values are the batch columns, written before the
// lane sweep begins.

// Lane is one pipeline configuration of a fused timing pass: a machine
// config and the predictor organization driving its fetch stage. Every lane
// of a RunMany call must share one cache geometry (MemGeometryOf), the
// grouping the fused experiment scheduler guarantees — it is what lets one
// trace pass and one memory sidecar serve the whole column.
type Lane struct {
	Cfg  Config
	Pred predictor.Predictor
}

// RunMany replays up to maxInsts instructions from src through every lane
// at once and returns the per-lane results, index-aligned with lanes. Each
// lane's Result is bit-identical to
//
//	New(l.Cfg, l.Pred).SetMemSidecar(side); Run(src, maxInsts, warmupInsts)
//
// over its own replay of the same stream; the equivalence suite pins this.
// As with Run, the sidecar is trusted only for a *trace.Cursor it covers;
// any other source (or an uncovered cursor) simulates per-lane live caches.
func RunMany(lanes []Lane, src trace.Source, side *MemSidecar, maxInsts, warmupInsts int64) []Result {
	if len(lanes) == 0 {
		return nil
	}
	geom := MemGeometryOf(lanes[0].Cfg)
	for _, l := range lanes[1:] {
		if MemGeometryOf(l.Cfg) != geom {
			panic("pipeline: RunMany lanes must share one cache geometry")
		}
	}
	f := newFusedRun(lanes, side, maxInsts, warmupInsts)
	if cur, ok := src.(*trace.Cursor); ok {
		// Same devirtualization as Run: the sidecar is only trusted for
		// a cursor, whose stream identity and position are checkable.
		// Geometry is lane-invariant (checked above), so covers for
		// lanes[0] decides for the whole column.
		f.sideActive = side != nil && side.covers(lanes[0].Cfg, cur)
		f.driveCursor(cur)
	} else if is, ok := src.(trace.InstSource); ok {
		f.driveInstSource(is)
	} else {
		f.driveSource(src)
	}
	return f.finish(src.Name())
}

// byteRing is the fused engine's slot ring: one reservation count per
// cycle, packed eight cycles to a word, so a probe inspects eight cycles
// with one load. Where slotRing forgets a cycle when a younger one aliases
// its slot, byteRing forgets by zeroing count bytes one lap ahead of the
// scan frontier (laneRings.extend) — the same "a cycle older than ringSize
// reads as empty" contract, amortized to a fraction of a store per cycle.
type byteRing struct {
	// w's byte c&7 of word (c&(ringSize-1))>>3 counts cycle c. The
	// fixed-size array lets the masked index elide bounds checks in the
	// scan loop.
	w *[ringSize / 8]uint64
	// limitRep is the slot limit replicated into every byte lane; a cycle
	// is full exactly when its count byte equals the limit, since
	// reservations only land on proven-free cycles.
	limitRep uint64
}

const (
	byteOneRep  = 0x0101010101010101
	byteHighRep = 0x8080808080808080
)

func newByteRing(limit int) byteRing {
	if limit <= 0 || limit > 127 {
		panic("pipeline: byte ring limit out of range")
	}
	return byteRing{w: new([ringSize / 8]uint64), limitRep: uint64(limit) * byteOneRep}
}

// clearChunk is how far past the requested cycle extend zeroes in one call;
// the hot path then skips the slow path for the next ~chunk cycles.
const clearChunk = 512

// extend zeroes the count bytes for cycles [clearedTo, t+clearChunk) in all
// five rings, reclaiming slots exactly one lap (ringSize cycles) old. It
// preserves the invariant that every cycle in [clearedTo-ringSize,
// clearedTo) reads its own count and anything older reads as forgotten —
// the aliasing contract slotRing's tag compare enforces per probe.
func (rg *laneRings) extend(t uint64) {
	to := (t + clearChunk) &^ 7
	issue, p0, p1, p2, p3 := rg.issue.w, rg.ports[0].w, rg.ports[1].w, rg.ports[2].w, rg.ports[3].w
	for c := rg.clearedTo; c < to; c += 8 {
		i := (c & (ringSize - 1)) >> 3
		issue[i] = 0
		p0[i] = 0
		p1[i] = 0
		p2[i] = 0
		p3[i] = 0
	}
	rg.clearedTo = to
}

// takeInBoth books the first cycle at or after t with a free slot in both
// the issue ring and port ring p, and returns it: slotRing.take's
// scan-then-reserve collapsed into one word-at-a-time pass. A count byte
// equals its ring's limit iff the matching byte of count^limitRep is zero;
// forcing each byte's high bit before the (now borrow-free) decrement
// leaves the high bit set exactly for nonzero bytes, so the AND of the two
// rings' masks has a high bit per free-in-both cycle and TrailingZeros
// lands on the first one. The body is the loop-free first-word probe —
// the common case, kept inlineable in the lane sweeps — and takeScan
// continues word by word when the first word is booked solid.
func (rg *laneRings) takeInBoth(p uint8, t uint64) uint64 {
	if t+8 <= rg.clearedTo {
		i := (t & (ringSize - 1)) >> 3
		zx := rg.issue.w[i] ^ rg.issue.limitRep
		zy := rg.ports[p].w[i] ^ rg.ports[p].limitRep
		free := ((zx | byteHighRep) - byteOneRep) & ((zy | byteHighRep) - byteOneRep) & byteHighRep
		free &= ^uint64(0) << ((t & 7) * 8) // cycles before t are not candidates
		if free != 0 {
			j := uint64(bits.TrailingZeros64(free)) >> 3
			sh := j * 8
			// Counts stay strictly below the ≤127 limit on free cycles, so
			// the byte increments cannot carry into a neighbor.
			rg.issue.w[i] += 1 << sh
			rg.ports[p].w[i] += 1 << sh
			return t&^7 + j
		}
		t = t&^7 + 8
	}
	return rg.takeScan(p, t)
}

// takeScan is takeInBoth's slow path: extend the zeroed horizon when the
// probe has outrun it, then scan whole words until a free-in-both cycle
// appears. Entered either at an uncleared cycle or at a word boundary past
// a fully booked word.
func (rg *laneRings) takeScan(p uint8, t uint64) uint64 {
	iw := rg.issue.w
	pw := rg.ports[p].w
	il := rg.issue.limitRep
	pl := rg.ports[p].limitRep
	for {
		if t+8 > rg.clearedTo {
			rg.extend(t)
		}
		i := (t & (ringSize - 1)) >> 3
		zx := iw[i] ^ il
		zy := pw[i] ^ pl
		free := ((zx | byteHighRep) - byteOneRep) & ((zy | byteHighRep) - byteOneRep) & byteHighRep
		free &= ^uint64(0) << ((t & 7) * 8) // cycles before t are not candidates
		if free != 0 {
			j := uint64(bits.TrailingZeros64(free)) >> 3
			sh := j * 8
			iw[i] += 1 << sh
			pw[i] += 1 << sh
			return t&^7 + j
		}
		t = t&^7 + 8
	}
}

// Port classes: the shared pcls column maps each instruction to its lane's
// issue port ring, and the lcls column to its execution-latency table slot.
const (
	portInt = iota
	portMem
	portMul
	portFP
	numPorts
)

const (
	latOne     = iota // single-cycle: ALU, branches, jumps, stores
	latMul            // MulLatency
	latFP             // FPLatency
	latLoadL1         // load, L1D hit
	latLoadL2         // load, L2 hit
	latLoadMem        // load, memory
	numLats
)

// laneConst is a lane's config, predigested: the per-instruction constants
// the step loop needs, extracted once so the hot loop reads a flat SoA
// entry instead of Config fields. fLat maps sidecar fetch classes to this
// lane's fetch stall; latTab maps lcls latency classes to execution
// latencies.
type laneConst struct {
	feDepth     uint64 //bplint:lane runState.feDepth
	btbPenalty  uint64 //bplint:lane Sim.cfg
	recovery    uint64 //bplint:lane Sim.recovery
	commitWidth uint64 //bplint:lane Sim.cfg
	fetchWidth  int    //bplint:lane Sim.cfg
	robSize     int    //bplint:lane Sim.cfg
	//bplint:lane Sim.cfg
	fLat   [4]uint64       // by fetch class: none, L1, L2, mem
	latTab [numLats]uint64 //bplint:lane Sim.cfg
	l2Lat  uint64          //bplint:lane Sim.cfg
	memLat uint64          //bplint:lane Sim.cfg
}

// laneOrg is a lane's predictor organization: the predictor and its
// pre-resolved capability interfaces, mirroring Sim's over/cycleAware
// fields.
type laneOrg struct {
	pred       predictor.Predictor  //bplint:lane Sim.pred
	over       *core.Overriding     //bplint:lane Sim.over
	cycleAware predictor.CycleAware //bplint:lane Sim.cycleAware
}

// laneRings is a lane's issue-bandwidth and port scoreboard plus its ROB
// commit window. The port rings are indexed by the shared pcls column.
// There is no commit ring: commit probes are monotone non-decreasing
// (commitAt is clamped to lastCommit and take only moves forward), so a
// probed cycle is never revisited after a later one and slotRing's
// forget-on-alias ring degenerates to the (lastCommit, commitUsed) scalar
// pair in laneCursor — bit-identical by construction.
type laneRings struct {
	issue      byteRing           //bplint:lane Sim.issueRing
	ports      [numPorts]byteRing //bplint:lane Sim.intRing,Sim.memRing,Sim.mulRing,Sim.fpRing
	commitRing []uint64           //bplint:lane Sim.commitRing
	// clearedTo is the rings' zeroed horizon: count bytes are valid for
	// cycles in [clearedTo-ringSize, clearedTo) and zero from the scan
	// frontier up to clearedTo; extend advances it in clearChunk strides.
	//
	//bplint:lane - byteRing zeroed-horizon bookkeeping; slotRing forgets stale cycles per probe instead
	clearedTo uint64
}

// laneCaches is a lane's live memory hierarchy, exercised only when no
// sidecar covers the run.
type laneCaches struct {
	icache *cache.Cache //bplint:lane Sim.icache
	dcache *cache.Cache //bplint:lane Sim.dcache
	l2     *cache.Cache //bplint:lane Sim.l2
}

// laneCursor is a lane's mutable scalar state between instructions. One
// entry spans a single cache line, so the per-instruction lane sweep
// touches one hot line per lane.
type laneCursor struct {
	fetchCycle     uint64 //bplint:lane Sim.fetchCycle
	lastFetchBlock uint64 //bplint:lane Sim.lastFetchBlock
	lastCommit     uint64 //bplint:lane Sim.lastCommit
	//bplint:lane Sim.commitRing2
	commitUsed  uint64 // commits taken at cycle lastCommit; replaces the monotone commit slot ring
	fetchStall  uint64 //bplint:lane Sim.fetchStall
	warmupCycle uint64 //bplint:lane runState.warmupCycle,Sim.cycles
	fetchUsed   int    //bplint:lane Sim.fetchUsed
	robIdx      int    //bplint:lane Sim.robIdx
}

// laneTallies is a lane's statistics: branch and BTB rates, and the
// I-side sidecar class histogram (fetch accesses depend on the lane's own
// redirect pattern, so the column cannot be shared the way the D-side one
// is — see fusedRun.lT).
type laneTallies struct {
	branches     stats.Rate //bplint:lane Sim.branches
	measBranches stats.Rate //bplint:lane Sim.measBranches
	overrides    stats.Rate //bplint:lane Sim.overrides
	btbMisses    stats.Rate //bplint:lane Sim.btbMisses
	fT           [4]uint64  //bplint:lane Sim.sideL1IAcc,Sim.sideL1IMiss
}

// fusedRun is the engine state: per-lane state in index-aligned SoA slices
// (one slice per state family, all indexed by lane), the shared stream
// cursor, and the shared per-batch columns.
type fusedRun struct {
	consts  []laneConst   //bplint:lane - SoA family; its per-field mapping is declared on laneConst
	orgs    []laneOrg     //bplint:lane - SoA family; its per-field mapping is declared on laneOrg
	rings   []laneRings   //bplint:lane - SoA family; its per-field mapping is declared on laneRings
	btbs    []*btb.BTB    //bplint:lane Sim.btb
	caches  []laneCaches  //bplint:lane - SoA family; its per-field mapping is declared on laneCaches
	cursors []laneCursor  //bplint:lane - SoA family; its per-field mapping is declared on laneCursor
	tallies []laneTallies //bplint:lane - SoA family; its per-field mapping is declared on laneTallies
	//bplint:lane Sim.regReady
	regs [][trace.NumRegs]uint64 // per-lane register-ready cycles

	//bplint:lane Sim.insts
	insts       int64       // instructions fed to every lane so far
	maxInsts    int64       //bplint:lane runState.maxInsts
	warmupInsts int64       //bplint:lane Sim.warmupInsts,runState.warmupInsts
	blockMask   uint64      //bplint:lane runState.blockMask
	side        *MemSidecar //bplint:lane Sim.side
	sideActive  bool        //bplint:lane Sim.sideActive

	// lT and sT are the D-side sidecar class histograms. Loads and stores
	// access the D-cache unconditionally in program order, so — unlike the
	// I-side — every lane's tally is identical and one shared count
	// serves the whole column.
	lT [4]uint64 //bplint:lane Sim.sideL1DAcc,Sim.sideL1DMiss,Sim.sideL2Acc,Sim.sideL2Miss
	sT [4]uint64 //bplint:lane Sim.sideL1DAcc,Sim.sideL1DMiss

	// Shared per-batch columns, computed once per batch by prep. The class
	// columns fcls/mcls are the sidecar bytes unpacked by batch offset,
	// replacing the scalar run's per-instruction sideIdx cursor.
	batch  [trace.InstBatchLen]trace.Inst //bplint:lane - shared batch buffer; the scalar loop steps one *trace.Inst at a time
	blocks [trace.InstBatchLen]uint64     //bplint:lane - precomputed column of Sim.step's per-instruction block local
	pcls   [trace.InstBatchLen]uint8      //bplint:lane - precomputed column of Sim.step's issue-port dispatch
	lcls   [trace.InstBatchLen]uint8      //bplint:lane - precomputed column of Sim.step's execution-latency selection
	fcls   [trace.InstBatchLen]uint8      //bplint:lane Sim.sideIdx
	mcls   [trace.InstBatchLen]uint8      //bplint:lane Sim.sideIdx
}

// newFusedRun builds the per-lane SoA state for one fused pass.
func newFusedRun(lanes []Lane, side *MemSidecar, maxInsts, warmupInsts int64) *fusedRun {
	n := len(lanes)
	f := &fusedRun{
		consts:      make([]laneConst, n),
		orgs:        make([]laneOrg, n),
		rings:       make([]laneRings, n),
		btbs:        make([]*btb.BTB, n),
		caches:      make([]laneCaches, n),
		cursors:     make([]laneCursor, n),
		tallies:     make([]laneTallies, n),
		regs:        make([][trace.NumRegs]uint64, n),
		maxInsts:    maxInsts,
		warmupInsts: warmupInsts,
		side:        side,
		blockMask:   ^uint64(int64(lanes[0].Cfg.L1I.LineBytes) - 1),
	}
	for i, l := range lanes {
		cfg := l.Cfg
		if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
			panic("pipeline: invalid widths in fused lane config")
		}
		if cfg.ROBSize <= 0 {
			panic("pipeline: ROB size must be positive")
		}
		k := &f.consts[i]
		k.feDepth = uint64(cfg.frontEndDepth())
		k.btbPenalty = uint64(cfg.BTBMissPenalty)
		k.commitWidth = uint64(cfg.CommitWidth)
		k.fetchWidth = cfg.FetchWidth
		k.robSize = cfg.ROBSize
		k.l2Lat = uint64(cfg.L2Latency)
		k.memLat = uint64(cfg.MemLatency)
		k.fLat = [4]uint64{0, 0, k.l2Lat, k.memLat}
		k.latTab = [numLats]uint64{
			latOne:     1,
			latMul:     uint64(cfg.MulLatency),
			latFP:      uint64(cfg.FPLatency),
			latLoadL1:  uint64(cfg.L1DLatency),
			latLoadL2:  k.l2Lat,
			latLoadMem: k.memLat,
		}

		o := &f.orgs[i]
		o.pred = l.Pred
		o.over, _ = l.Pred.(*core.Overriding)
		o.cycleAware, _ = l.Pred.(predictor.CycleAware)
		if rc, ok := l.Pred.(predictor.RecoveryCost); ok {
			k.recovery = uint64(rc.RecoveryPenalty())
		}

		f.rings[i] = laneRings{
			issue: newByteRing(cfg.IssueWidth),
			ports: [numPorts]byteRing{
				portInt: newByteRing(cfg.IntPorts),
				portMem: newByteRing(cfg.MemPorts),
				portMul: newByteRing(cfg.MulPorts),
				portFP:  newByteRing(cfg.FPPorts),
			},
			commitRing: make([]uint64, cfg.ROBSize),
			// The freshly zeroed arrays already cover the first lap.
			clearedTo: ringSize,
		}
		f.btbs[i] = btb.New(cfg.BTBEntries, cfg.BTBWays)
		f.caches[i] = laneCaches{
			icache: cache.New(cfg.L1I),
			dcache: cache.New(cfg.L1D),
			l2:     cache.New(cfg.L2),
		}
	}
	return f
}

// driveCursor is the fused drive loop specialized to the concrete replay
// cursor, mirroring runCursor: devirtualized batch fill, then the lane
// sweep over the shared batch.
//
//bplint:twin pipeline.Sim.runCursor
//bplint:hotpath fused timing drive loop; TestFusedTimingAllocs pins allocs/op to zero
func (f *fusedRun) driveCursor(cur *trace.Cursor) {
	for f.insts < f.maxInsts {
		lim := len(f.batch)
		if want := f.maxInsts - f.insts; int64(lim) > want {
			lim = int(want)
		}
		n := cur.NextInsts(f.batch[:lim])
		if n == 0 {
			return
		}
		f.runBatch(n)
	}
}

// driveInstSource is the fused drive loop over any batch-capable source.
//
//bplint:twin pipeline.Sim.runInstSource
func (f *fusedRun) driveInstSource(is trace.InstSource) {
	for f.insts < f.maxInsts {
		lim := len(f.batch)
		if want := f.maxInsts - f.insts; int64(lim) > want {
			lim = int(want)
		}
		n := is.NextInsts(f.batch[:lim])
		if n == 0 {
			return
		}
		f.runBatch(n)
	}
}

// driveSource is the fused drive loop over a plain Source: the batch is
// assembled one Next call at a time, then consumed exactly as a decoded
// one. Batch boundaries do not influence the scoreboard, so results are
// identical to the per-instruction reference loop.
func (f *fusedRun) driveSource(src trace.Source) {
	for f.insts < f.maxInsts {
		lim := len(f.batch)
		if want := f.maxInsts - f.insts; int64(lim) > want {
			lim = int(want)
		}
		n := 0
		for n < lim && src.Next(&f.batch[n]) {
			n++
		}
		if n == 0 {
			return
		}
		f.runBatch(n)
	}
}

// runBatch precomputes the shared columns, resolves the warm-up boundary to
// a batch split so the step loop takes a constant measured flag, and sweeps
// the lanes.
//
//bplint:twin pipeline.Sim.step
//bplint:hotpath runs once per 256-instruction batch in fused sweeps
func (f *fusedRun) runBatch(n int) {
	f.prep(n)
	if d := f.warmupInsts - f.insts; d >= 0 && d < int64(n) {
		// The boundary falls inside this batch: step up to it, snapshot
		// each lane's commit cycle (Sim.step does this at the boundary
		// instruction, before stepping it), then step the measured rest.
		k := int(d)
		f.stepAll(0, k, false)
		for li := range f.cursors {
			f.cursors[li].warmupCycle = f.cursors[li].lastCommit
		}
		f.stepAll(k, n, true)
	} else if d >= int64(n) {
		f.stepAll(0, n, false)
	} else {
		f.stepAll(0, n, true)
	}
	f.insts += int64(n)
}

// prep computes the lane-invariant columns of the current batch: each
// instruction's fetch-block address (the lanes share one I-cache geometry),
// its port and latency classes, and — when a sidecar covers the run — its
// unpacked fetch and mem outcome classes plus the shared D-side tallies.
//
//bplint:twin pipeline.Sim.step
//bplint:hotpath runs once per 256-instruction batch in fused sweeps
func (f *fusedRun) prep(n int) {
	for i := 0; i < n; i++ {
		f.blocks[i] = f.batch[i].PC&f.blockMask + 1
	}
	if f.sideActive {
		cls := f.side.class[f.insts : f.insts+int64(n)]
		for i := 0; i < n; i++ {
			c := cls[i]
			f.fcls[i] = c & sideFetchMask >> sideFetchShift
			f.mcls[i] = c & sideMemMask >> sideMemShift
		}
	}
	for i := 0; i < n; i++ {
		var pc, lc uint8
		switch f.batch[i].Kind {
		case trace.Load:
			pc = portMem
			if f.sideActive {
				// Mirror loadLatency's switch: L1 and L2 explicit,
				// memory charged for the rest.
				switch f.mcls[i] {
				case sideMemL1:
					lc = latLoadL1
				case sideMemL2:
					lc = latLoadL2
				case sideMemMem:
					lc = latLoadMem
				default: // sideMemNone: loads always carry a mem class
					panic("pipeline: load with no sidecar mem class")
				}
				f.lT[f.mcls[i]]++
			} else {
				lc = latLoadL1 // placeholder; live path probes its own caches
			}
		case trace.Store:
			pc, lc = portMem, latOne
			if f.sideActive {
				f.sT[f.mcls[i]]++
			}
		case trace.Mul:
			pc, lc = portMul, latMul
		case trace.FPU:
			pc, lc = portFP, latFP
		case trace.ALU, trace.CondBranch, trace.Jump:
			pc, lc = portInt, latOne
		default:
			panic("pipeline: unhandled instruction kind")
		}
		f.pcls[i] = pc
		f.lcls[i] = lc
	}
}

// advanceTo is Sim.advanceFetch on stepAll's hoisted locals: move the
// fetch point to at least cycle t, accounting the skipped cycles as stall.
//
//bplint:twin pipeline.Sim.advanceFetch
//bplint:twinmap stall=fetchstall lastblock=lastfetchblock
func advanceTo(t, fetchCycle uint64, fetchUsed int, lastBlock, stall uint64) (uint64, int, uint64, uint64) {
	if t > fetchCycle {
		stall += t - fetchCycle
		fetchCycle = t
		fetchUsed = 0
		lastBlock = 0
	}
	return fetchCycle, fetchUsed, lastBlock, stall
}

// stepAll advances every lane over batch instructions [lo, hi), dispatching
// each instruction to the lane sweep specialized for its control-flow kind:
// the plain sweep (no prediction, no redirect, no resolution) serves the
// large majority of instructions with every branch-unit test hoisted out of
// the per-lane loop, and the branch and jump sweeps carry the prediction
// and BTB stages only where they can fire. Each sweep's per-lane body is
// Sim.step statement for statement — same stage order, same stall
// arithmetic, same tally points — and TestFusedTimingEquivalence holds the
// implementations together. measured is the constant truth of Sim.step's
// per-branch warm-up comparison over this sub-batch; runBatch splits
// batches so it never varies inside one call.
//
//bplint:twin pipeline.Sim.step
//bplint:twinmap fetchat=fetchcycle lastblock=lastfetchblock btbmisspenalty=btbpenalty regready=reg lattab=execlat advancefetch=advanceto
//bplint:hotpath fused per-lane batch step; runs once per instruction per lane
func (f *fusedRun) stepAll(lo, hi int, measured bool) {
	for i := lo; i < hi; i++ {
		switch f.batch[i].Kind {
		case trace.CondBranch:
			f.sweepBranch(i, measured)
		case trace.Jump:
			f.sweepJump(i)
		case trace.ALU, trace.Mul, trace.FPU, trace.Load, trace.Store:
			f.sweepPlain(i)
		default:
			panic("pipeline: unhandled instruction kind")
		}
	}
}

// sweepPlain steps every lane through one non-control-flow instruction:
// fetch, issue, commit. Branches and jumps never reach it, so the
// prediction, redirect, and resolution stages are absent rather than
// tested per lane.
//
//bplint:twin pipeline.Sim.step
//bplint:hotpath fused lane sweep for plain instructions
func (f *fusedRun) sweepPlain(i int) {
	consts := f.consts
	nLanes := len(consts)
	cursors := f.cursors[:nLanes]
	rings := f.rings[:nLanes]
	tallies := f.tallies[:nLanes]
	regs := f.regs[:nLanes]
	caches := f.caches[:nLanes]
	sideActive := f.sideActive
	inst := &f.batch[i]
	pc := inst.PC
	block := f.blocks[i]
	pcl := f.pcls[i]
	lcl := f.lcls[i]
	fcl := f.fcls[i]
	s1, s2, dst := inst.Src1, inst.Src2, inst.Dst
	kind := inst.Kind

	for li := 0; li < nLanes; li++ {
		k := &consts[li]
		cu := &cursors[li]
		rg := &rings[li]
		rr := &regs[li]

		fetchCycle := cu.fetchCycle
		fetchUsed := cu.fetchUsed
		lastBlock := cu.lastFetchBlock
		fetchStall := cu.fetchStall

		// --- Fetch ---
		if fetchUsed >= k.fetchWidth {
			fetchCycle++
			fetchUsed = 0
			lastBlock = 0
		}
		if block != lastBlock {
			if lastBlock != 0 {
				fetchCycle++
				fetchUsed = 0
			}
			var lat uint64
			if sideActive {
				tallies[li].fT[fcl]++
				lat = k.fLat[fcl]
			} else {
				ch := &caches[li]
				if !ch.icache.Access(pc) {
					if ch.l2.Access(pc) {
						lat = k.l2Lat
					} else {
						lat = k.memLat
					}
				}
			}
			if lat > 0 {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(fetchCycle+lat, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			lastBlock = block
		}
		fetchAt := fetchCycle
		fetchUsed++

		// Keep fetch from running unboundedly ahead of commit.
		robIdx := cu.robIdx
		oldestCommit := rg.commitRing[robIdx]
		dispatchAt := fetchAt + k.feDepth
		if dispatchAt <= oldestCommit {
			if oldestCommit+1 > k.feDepth {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(oldestCommit+1-k.feDepth, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			fetchAt = fetchCycle
			dispatchAt = fetchAt + k.feDepth
		}

		// --- Issue ---
		ready := dispatchAt
		if s1 >= 0 {
			if t := rr[s1]; t > ready {
				ready = t
			}
		}
		if s2 >= 0 {
			if t := rr[s2]; t > ready {
				ready = t
			}
		}
		execLat := k.latTab[lcl]
		if kind == trace.Load && !sideActive {
			ch := &caches[li]
			if ch.dcache.Access(inst.Addr) {
				execLat = k.latTab[latLoadL1]
			} else if ch.l2.Access(inst.Addr) {
				execLat = k.l2Lat
			} else {
				execLat = k.memLat
			}
		} else if kind == trace.Store && !sideActive {
			caches[li].dcache.Access(inst.Addr)
		}
		issueAt := rg.takeInBoth(pcl, ready)
		completeAt := issueAt + execLat

		if dst >= 0 {
			rr[dst] = completeAt
		}

		// --- Commit ---
		lastCommit := cu.lastCommit
		commitUsed := cu.commitUsed
		commitAt := completeAt + 1
		if commitAt > lastCommit {
			lastCommit = commitAt
			commitUsed = 1
		} else if commitUsed < k.commitWidth {
			commitUsed++ // in-order commit at the current cycle
		} else {
			lastCommit++ // commit bandwidth exhausted: next cycle
			commitUsed = 1
		}
		rg.commitRing[robIdx] = lastCommit
		robIdx++
		if robIdx == k.robSize {
			robIdx = 0
		}

		cu.fetchCycle = fetchCycle
		cu.fetchUsed = fetchUsed
		cu.lastFetchBlock = lastBlock
		cu.lastCommit = lastCommit
		cu.commitUsed = commitUsed
		cu.fetchStall = fetchStall
		cu.robIdx = robIdx
	}
}

// sweepJump steps every lane through one unconditional jump: fetch, the
// always-taken BTB redirect, issue, commit. No prediction and no
// resolution — jumps never mispredict direction.
//
//bplint:twin pipeline.Sim.step
//bplint:hotpath fused lane sweep for jumps
func (f *fusedRun) sweepJump(i int) {
	consts := f.consts
	nLanes := len(consts)
	cursors := f.cursors[:nLanes]
	rings := f.rings[:nLanes]
	tallies := f.tallies[:nLanes]
	btbs := f.btbs[:nLanes]
	regs := f.regs[:nLanes]
	caches := f.caches[:nLanes]
	sideActive := f.sideActive
	inst := &f.batch[i]
	pc := inst.PC
	block := f.blocks[i]
	pcl := f.pcls[i]
	lcl := f.lcls[i]
	fcl := f.fcls[i]
	s1, s2, dst := inst.Src1, inst.Src2, inst.Dst

	for li := 0; li < nLanes; li++ {
		k := &consts[li]
		cu := &cursors[li]
		rg := &rings[li]
		rr := &regs[li]

		fetchCycle := cu.fetchCycle
		fetchUsed := cu.fetchUsed
		lastBlock := cu.lastFetchBlock
		fetchStall := cu.fetchStall

		// --- Fetch ---
		if fetchUsed >= k.fetchWidth {
			fetchCycle++
			fetchUsed = 0
			lastBlock = 0
		}
		if block != lastBlock {
			if lastBlock != 0 {
				fetchCycle++
				fetchUsed = 0
			}
			var lat uint64
			if sideActive {
				tallies[li].fT[fcl]++
				lat = k.fLat[fcl]
			} else {
				ch := &caches[li]
				if !ch.icache.Access(pc) {
					if ch.l2.Access(pc) {
						lat = k.l2Lat
					} else {
						lat = k.memLat
					}
				}
			}
			if lat > 0 {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(fetchCycle+lat, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			lastBlock = block
		}
		fetchAt := fetchCycle
		fetchUsed++

		// Keep fetch from running unboundedly ahead of commit.
		robIdx := cu.robIdx
		oldestCommit := rg.commitRing[robIdx]
		dispatchAt := fetchAt + k.feDepth
		if dispatchAt <= oldestCommit {
			if oldestCommit+1 > k.feDepth {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(oldestCommit+1-k.feDepth, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			fetchAt = fetchCycle
			dispatchAt = fetchAt + k.feDepth
		}

		// Taken control flow: BTB target or decode redirect.
		b := btbs[li]
		_, hit := b.Lookup(pc)
		if !hit {
			tallies[li].btbMisses.Add(true)
			fetchCycle, fetchUsed, lastBlock, fetchStall =
				advanceTo(fetchAt+1+k.btbPenalty, fetchCycle, fetchUsed, lastBlock, fetchStall)
		} else {
			tallies[li].btbMisses.Add(false)
			fetchCycle++ // taken-branch fetch break
			fetchUsed = 0
			lastBlock = 0
		}
		b.Insert(pc, inst.Target)

		// --- Issue ---
		ready := dispatchAt
		if s1 >= 0 {
			if t := rr[s1]; t > ready {
				ready = t
			}
		}
		if s2 >= 0 {
			if t := rr[s2]; t > ready {
				ready = t
			}
		}
		execLat := k.latTab[lcl]
		issueAt := rg.takeInBoth(pcl, ready)
		completeAt := issueAt + execLat

		if dst >= 0 {
			rr[dst] = completeAt
		}

		// --- Commit ---
		lastCommit := cu.lastCommit
		commitUsed := cu.commitUsed
		commitAt := completeAt + 1
		if commitAt > lastCommit {
			lastCommit = commitAt
			commitUsed = 1
		} else if commitUsed < k.commitWidth {
			commitUsed++ // in-order commit at the current cycle
		} else {
			lastCommit++ // commit bandwidth exhausted: next cycle
			commitUsed = 1
		}
		rg.commitRing[robIdx] = lastCommit
		robIdx++
		if robIdx == k.robSize {
			robIdx = 0
		}

		cu.fetchCycle = fetchCycle
		cu.fetchUsed = fetchUsed
		cu.lastFetchBlock = lastBlock
		cu.lastCommit = lastCommit
		cu.commitUsed = commitUsed
		cu.fetchStall = fetchStall
		cu.robIdx = robIdx
	}
}

// sweepBranch steps every lane through one conditional branch: fetch,
// prediction (with override bubbles), the predicted-taken BTB redirect,
// issue, resolution, commit.
//
//bplint:twin pipeline.Sim.step
//bplint:hotpath fused lane sweep for conditional branches
func (f *fusedRun) sweepBranch(i int, measured bool) {
	consts := f.consts
	nLanes := len(consts)
	cursors := f.cursors[:nLanes]
	rings := f.rings[:nLanes]
	tallies := f.tallies[:nLanes]
	orgs := f.orgs[:nLanes]
	btbs := f.btbs[:nLanes]
	regs := f.regs[:nLanes]
	caches := f.caches[:nLanes]
	sideActive := f.sideActive
	inst := &f.batch[i]
	pc := inst.PC
	block := f.blocks[i]
	pcl := f.pcls[i]
	lcl := f.lcls[i]
	fcl := f.fcls[i]
	s1, s2, dst := inst.Src1, inst.Src2, inst.Dst
	taken := inst.Taken

	for li := 0; li < nLanes; li++ {
		k := &consts[li]
		cu := &cursors[li]
		rg := &rings[li]
		rr := &regs[li]

		fetchCycle := cu.fetchCycle
		fetchUsed := cu.fetchUsed
		lastBlock := cu.lastFetchBlock
		fetchStall := cu.fetchStall

		// --- Fetch ---
		if fetchUsed >= k.fetchWidth {
			fetchCycle++
			fetchUsed = 0
			lastBlock = 0
		}
		if block != lastBlock {
			if lastBlock != 0 {
				fetchCycle++
				fetchUsed = 0
			}
			var lat uint64
			if sideActive {
				tallies[li].fT[fcl]++
				lat = k.fLat[fcl]
			} else {
				ch := &caches[li]
				if !ch.icache.Access(pc) {
					if ch.l2.Access(pc) {
						lat = k.l2Lat
					} else {
						lat = k.memLat
					}
				}
			}
			if lat > 0 {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(fetchCycle+lat, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			lastBlock = block
		}
		fetchAt := fetchCycle
		fetchUsed++

		// Keep fetch from running unboundedly ahead of commit.
		robIdx := cu.robIdx
		oldestCommit := rg.commitRing[robIdx]
		dispatchAt := fetchAt + k.feDepth
		if dispatchAt <= oldestCommit {
			if oldestCommit+1 > k.feDepth {
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(oldestCommit+1-k.feDepth, fetchCycle, fetchUsed, lastBlock, fetchStall)
			}
			fetchAt = fetchCycle
			dispatchAt = fetchAt + k.feDepth
		}

		// --- Branch prediction at fetch ---
		org := &orgs[li]
		if org.cycleAware != nil {
			org.cycleAware.OnCycle(fetchAt)
		}
		predictedTaken := org.pred.Predict(pc)
		org.pred.Update(pc, taken)
		if org.over != nil {
			if overrode, bubble := org.over.LastOverrode(); overrode {
				tallies[li].overrides.Add(true)
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(fetchAt+1+uint64(bubble), fetchCycle, fetchUsed, lastBlock, fetchStall)
			} else {
				tallies[li].overrides.Add(false)
			}
		}

		// Taken control flow: BTB target or decode redirect.
		if predictedTaken && taken {
			b := btbs[li]
			_, hit := b.Lookup(pc)
			if !hit {
				tallies[li].btbMisses.Add(true)
				fetchCycle, fetchUsed, lastBlock, fetchStall =
					advanceTo(fetchAt+1+k.btbPenalty, fetchCycle, fetchUsed, lastBlock, fetchStall)
			} else {
				tallies[li].btbMisses.Add(false)
				fetchCycle++ // taken-branch fetch break
				fetchUsed = 0
				lastBlock = 0
			}
			b.Insert(pc, inst.Target)
		}

		// --- Issue ---
		ready := dispatchAt
		if s1 >= 0 {
			if t := rr[s1]; t > ready {
				ready = t
			}
		}
		if s2 >= 0 {
			if t := rr[s2]; t > ready {
				ready = t
			}
		}
		execLat := k.latTab[lcl]
		issueAt := rg.takeInBoth(pcl, ready)
		completeAt := issueAt + execLat

		if dst >= 0 {
			rr[dst] = completeAt
		}

		// --- Branch resolution ---
		miss := predictedTaken != taken
		tl := &tallies[li]
		tl.branches.Add(miss)
		if measured {
			tl.measBranches.Add(miss)
		}
		if miss {
			fetchCycle, fetchUsed, lastBlock, fetchStall =
				advanceTo(completeAt+1+k.recovery, fetchCycle, fetchUsed, lastBlock, fetchStall)
		}

		// --- Commit ---
		lastCommit := cu.lastCommit
		commitUsed := cu.commitUsed
		commitAt := completeAt + 1
		if commitAt > lastCommit {
			lastCommit = commitAt
			commitUsed = 1
		} else if commitUsed < k.commitWidth {
			commitUsed++ // in-order commit at the current cycle
		} else {
			lastCommit++ // commit bandwidth exhausted: next cycle
			commitUsed = 1
		}
		rg.commitRing[robIdx] = lastCommit
		robIdx++
		if robIdx == k.robSize {
			robIdx = 0
		}

		cu.fetchCycle = fetchCycle
		cu.fetchUsed = fetchUsed
		cu.lastFetchBlock = lastBlock
		cu.lastCommit = lastCommit
		cu.commitUsed = commitUsed
		cu.fetchStall = fetchStall
		cu.robIdx = robIdx
	}
}

// finish assembles the per-lane Results, index-aligned with the lanes,
// mirroring Sim.result: sidecar runs fold the outcome-class histograms
// into the same access/miss tallies the per-cell path counts inline.
func (f *fusedRun) finish(workload string) []Result {
	out := make([]Result, len(f.rings))
	for li := range out {
		org := &f.orgs[li]
		cu := &f.cursors[li]
		tl := &f.tallies[li]
		r := Result{
			Workload:         workload,
			Predictor:        org.pred.Name(),
			Insts:            f.insts - f.warmupInsts,
			Cycles:           cu.lastCommit - cu.warmupCycle,
			Branches:         tl.measBranches.Total,
			Mispredicts:      tl.measBranches.Events,
			BTBMissRate:      tl.btbMisses.Value(),
			FetchStallCycles: cu.fetchStall,
		}
		if f.sideActive {
			// Fold the class histograms into per-level tallies exactly as
			// fetchLatency/loadLatency/storeAccess count them inline.
			fAcc := tl.fT[0] + tl.fT[1] + tl.fT[2] + tl.fT[3]
			fL2, fMem := tl.fT[2], tl.fT[3]
			lAcc := f.lT[0] + f.lT[1] + f.lT[2] + f.lT[3]
			lL2, lMem := f.lT[2], f.lT[3]
			sAcc := f.sT[0] + f.sT[1] + f.sT[2] + f.sT[3]
			r.L1IMissRate = missRate(fL2+fMem, fAcc)
			r.L1DMissRate = missRate(lL2+lMem+f.sT[3], lAcc+sAcc)
			r.L2MissRate = missRate(fMem+lMem, fL2+fMem+lL2+lMem)
		} else {
			ch := &f.caches[li]
			r.L1IMissRate = ch.icache.MissRate()
			r.L1DMissRate = ch.dcache.MissRate()
			r.L2MissRate = ch.l2.MissRate()
		}
		if org.over != nil {
			r.Overrides = tl.overrides.Events
			r.OverrideRate = tl.overrides.Value()
		}
		out[li] = r
	}
	return out
}
