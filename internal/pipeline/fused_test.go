package pipeline

import (
	"reflect"
	"testing"

	"branchsim/internal/cache"
	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/workload"
)

// fusedOrgs are the predictor organizations the fused equivalence suite
// sweeps — the timingOrgs set plus the lagged-update and uncheckpointed
// gshare.fast variants, whose recovery penalties and update pipelines
// exercise the engine's cycleAware/RecoveryCost plumbing.
func fusedOrgs() []struct {
	name string
	mk   func() predictor.Predictor
} {
	return []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"ideal-gshare-16KB", func() predictor.Predictor {
			return predictor.NewGShareFromBudget(16 << 10)
		}},
		{"override-perceptron-64KB", func() predictor.Predictor {
			return core.NewOverriding(predictor.NewGShare(2048, 0),
				predictor.NewPerceptronFromBudget(64<<10), 4)
		}},
		{"gshare.fast-64KB", func() predictor.Predictor {
			return core.New(core.Config{Entries: 1 << 15, Latency: 3})
		}},
		{"gshare.fast-lag64", func() predictor.Predictor {
			return core.New(core.Config{Entries: 1 << 15, Latency: 3, UpdateLag: 64})
		}},
		{"gshare.fast-nockpt", func() predictor.Predictor {
			return core.WithoutCheckpointing(core.New(core.Config{Entries: 1 << 15, Latency: 3}))
		}},
	}
}

// fusedCfgVariants are per-lane machine variations sharing the default
// cache geometry — the depth-sweep and latency shapes the ablation grids
// put in one fused group.
func fusedCfgVariants() []Config {
	deep := DefaultConfig()
	deep.PipelineDepth = 40
	deep.FrontEndDepth = 0 // derive: exercises frontEndDepth resolution per lane
	slowMem := DefaultConfig()
	slowMem.MemLatency = 300
	return []Config{DefaultConfig(), deep, slowMem}
}

// TestFusedTimingEquivalence is the fused engine's correctness contract:
// RunMany over a heterogeneous column — every predictor organization plus
// depth/latency config variants, all on one cache geometry — must
// reproduce each lane's per-cell Run bit for bit, across benchmarks
// (including a stream shorter than the budget), warmups, and both the
// sidecar and live-cache paths.
func TestFusedTimingEquivalence(t *testing.T) {
	cases := []struct {
		bench    string
		recorded int64
	}{
		{"gzip", 200_000},
		{"mcf", 200_000},
		{"twolf", 80_000}, // shorter than the budget: run stops at stream end
	}
	const maxInsts = 150_000
	for _, tc := range cases {
		rec := workload.Record(mustProfile(t, tc.bench), tc.recorded)
		side := BuildMemSidecar(rec, MemGeometryOf(DefaultConfig()))
		for _, warmup := range []int64{0, 40_000} {
			var lanes []Lane
			for _, org := range fusedOrgs() {
				lanes = append(lanes, Lane{Cfg: DefaultConfig(), Pred: org.mk()})
			}
			for _, cfg := range fusedCfgVariants()[1:] {
				lanes = append(lanes, Lane{Cfg: cfg, Pred: predictor.NewGShareFromBudget(16 << 10)})
			}
			fused := RunMany(lanes, rec.Replay(), side, maxInsts, warmup)
			if len(fused) != len(lanes) {
				t.Fatalf("RunMany returned %d results for %d lanes", len(fused), len(lanes))
			}

			// Rebuild each lane's predictor fresh for the per-cell
			// reference: predictors are stateful and the fused pass
			// trained the originals.
			var ref []Lane
			for _, org := range fusedOrgs() {
				ref = append(ref, Lane{Cfg: DefaultConfig(), Pred: org.mk()})
			}
			for _, cfg := range fusedCfgVariants()[1:] {
				ref = append(ref, Lane{Cfg: cfg, Pred: predictor.NewGShareFromBudget(16 << 10)})
			}
			for i, l := range ref {
				sim := New(l.Cfg, l.Pred)
				sim.SetMemSidecar(side)
				want := sim.Run(rec.Replay(), maxInsts, warmup)
				if !reflect.DeepEqual(fused[i], want) {
					t.Errorf("%s warmup %d lane %d (%s): fused diverges from per-cell:\n got %+v\nwant %+v",
						tc.bench, warmup, i, want.Predictor, fused[i], want)
				}
			}
		}
	}
}

// TestFusedTimingLiveCaches pins the no-sidecar path: without a covering
// sidecar the engine simulates each lane's own hierarchy, matching the
// per-cell live-cache run.
func TestFusedTimingLiveCaches(t *testing.T) {
	rec := workload.Record(mustProfile(t, "gzip"), 120_000)
	cfg := DefaultConfig()
	mk := func() predictor.Predictor { return predictor.NewGShareFromBudget(16 << 10) }

	t.Run("nil-sidecar", func(t *testing.T) {
		fused := RunMany([]Lane{{Cfg: cfg, Pred: mk()}}, rec.Replay(), nil, 120_000, 30_000)
		want := New(cfg, mk()).Run(rec.Replay(), 120_000, 30_000)
		if !reflect.DeepEqual(fused[0], want) {
			t.Errorf("live-cache fused run diverges:\n got %+v\nwant %+v", fused[0], want)
		}
	})

	t.Run("geometry-mismatch", func(t *testing.T) {
		other := MemGeometryOf(cfg)
		other.L1I = cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 1}
		fused := RunMany([]Lane{{Cfg: cfg, Pred: mk()}}, rec.Replay(),
			BuildMemSidecar(rec, other), 120_000, 30_000)
		want := New(cfg, mk()).Run(rec.Replay(), 120_000, 30_000)
		if !reflect.DeepEqual(fused[0], want) {
			t.Errorf("mismatched-geometry sidecar was not ignored:\n got %+v\nwant %+v", fused[0], want)
		}
	})

	t.Run("opaque-source", func(t *testing.T) {
		fused := RunMany([]Lane{{Cfg: cfg, Pred: mk()}}, opaqueReplay{rec.Replay()},
			BuildMemSidecar(rec, MemGeometryOf(cfg)), 120_000, 30_000)
		want := New(cfg, mk()).Run(opaqueReplay{rec.Replay()}, 120_000, 30_000)
		if !reflect.DeepEqual(fused[0], want) {
			t.Errorf("opaque-source fused run diverges:\n got %+v\nwant %+v", fused[0], want)
		}
	})

	t.Run("inst-source", func(t *testing.T) {
		fused := RunMany([]Lane{{Cfg: cfg, Pred: mk()}}, instSourceOnly{rec.Replay()},
			nil, 120_000, 30_000)
		want := New(cfg, mk()).Run(instSourceOnly{rec.Replay()}, 120_000, 30_000)
		if !reflect.DeepEqual(fused[0], want) {
			t.Errorf("InstSource fused run diverges:\n got %+v\nwant %+v", fused[0], want)
		}
	})
}

// TestFusedTimingGeometryGuard pins the grouping contract: lanes with
// different cache geometries cannot share one trace pass.
func TestFusedTimingGeometryGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunMany accepted lanes with mismatched cache geometries")
		}
	}()
	rec := workload.Record(mustProfile(t, "gzip"), 1_000)
	small := DefaultConfig()
	small.L1I = cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Ways: 1}
	RunMany([]Lane{
		{Cfg: DefaultConfig(), Pred: predictor.NewGShareFromBudget(4 << 10)},
		{Cfg: small, Pred: predictor.NewGShareFromBudget(4 << 10)},
	}, rec.Replay(), nil, 1_000, 0)
}

// TestFusedTimingAllocs pins the steady-state allocation count of the
// fused drive loop at zero: the batch and its shared columns live in the
// engine (allocated once at construction), per-lane state is reused, and
// the sidecar replaces the only allocating cache work. Skipped under
// -race, which instruments allocation.
func TestFusedTimingAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rec := workload.Record(mustProfile(t, "gzip"), 100_000)
	cur := rec.Replay()
	cfg := DefaultConfig()
	side := BuildMemSidecar(rec, MemGeometryOf(cfg))
	lanes := []Lane{
		{Cfg: cfg, Pred: predictor.NewGShareFromBudget(16 << 10)},
		{Cfg: cfg, Pred: predictor.NewPerceptronFromBudget(64 << 10)},
		{Cfg: cfg, Pred: core.New(core.Config{Entries: 1 << 15, Latency: 3})},
	}
	f := newFusedRun(lanes, side, 100_000, 20_000)
	f.sideActive = side.covers(cfg, cur)
	if !f.sideActive {
		t.Fatal("sidecar does not cover the run")
	}
	f.driveCursor(cur) // warm any lazy state
	allocs := testing.AllocsPerRun(10, func() {
		cur.Reset()
		f.insts = 0
		f.driveCursor(cur)
	})
	if allocs != 0 {
		t.Fatalf("fused timing drive loop allocates %.1f objects per run, want 0", allocs)
	}
}
