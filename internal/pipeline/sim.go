package pipeline

import (
	"fmt"

	"branchsim/internal/btb"
	"branchsim/internal/cache"
	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
)

// Sim is one timing simulation run: a core configuration, a branch
// predictor organization, and the accumulated state of a trace replay.
//
// The model is an event-ordered scoreboard: instructions flow in program
// order through fetch → dispatch → issue → complete → commit, with each
// stage time computed from its structural and data constraints. This is the
// classic trace-driven out-of-order timing model: wrong-path instructions
// are not simulated; their cost appears as the redirect bubble between a
// mispredicted branch's resolution and the arrival of correct-path
// instructions, the same accounting the paper's modified SimpleScalar uses.
type Sim struct {
	cfg  Config
	pred predictor.Predictor

	over       *core.Overriding     // non-nil when pred is an overriding organization
	cycleAware predictor.CycleAware // non-nil when pred wants the fetch clock
	recovery   int                  // extra post-misprediction bubble (predictor.RecoveryCost)

	icache *cache.Cache
	dcache *cache.Cache
	l2     *cache.Cache
	btb    *btb.BTB

	// Scoreboard state.
	regReady   [trace.NumRegs]uint64
	commitRing []uint64 // commit cycle of the i-th most recent instructions (ROB window)
	robIdx     int

	issueRing   slotRing // total issues per cycle
	intRing     slotRing
	memRing     slotRing
	mulRing     slotRing
	fpRing      slotRing
	commitRing2 slotRing

	// Fetch state.
	fetchCycle     uint64 // cycle currently being fetched into
	fetchUsed      int    // instructions fetched in fetchCycle
	lastFetchBlock uint64 // current I-cache block address + 1 (0 = none)
	lastCommit     uint64

	// Statistics.
	insts        int64
	cycles       uint64
	branches     stats.Rate // mispredictions / branches
	overrides    stats.Rate
	btbMisses    stats.Rate
	fetchStall   uint64 // cycles fetch waited on redirects/bubbles (approximate attribution)
	warmupInsts  int64
	measBranches stats.Rate
}

// slotRing counts per-cycle resource usage over a sliding window.
type slotRing struct {
	cycle []uint64
	count []uint16
	limit uint16
}

const ringSize = 1 << 15

func newSlotRing(limit int) slotRing {
	return slotRing{
		cycle: make([]uint64, ringSize),
		count: make([]uint16, ringSize),
		limit: uint16(limit),
	}
}

// take reserves one slot at or after cycle t and returns the cycle used.
func (r *slotRing) take(t uint64) uint64 {
	for {
		i := t & (ringSize - 1)
		if r.cycle[i] != t {
			r.cycle[i] = t
			r.count[i] = 1
			return t
		}
		if r.count[i] < r.limit {
			r.count[i]++
			return t
		}
		t++
	}
}

// peekFree reports the first cycle at or after t with a free slot, without
// reserving it.
func (r *slotRing) peekFree(t uint64) uint64 {
	for {
		i := t & (ringSize - 1)
		if r.cycle[i] != t || r.count[i] < r.limit {
			return t
		}
		t++
	}
}

// New returns a timing simulation of cfg using pred as the branch direction
// predictor organization. Pass a *core.Overriding to model the overriding
// delay-hiding scheme; a *core.GShareFast is driven with real fetch cycles;
// any other predictor is treated as answering in a single cycle (the paper's
// "no delay" idealization).
func New(cfg Config, pred predictor.Predictor) *Sim {
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
		panic(fmt.Sprintf("pipeline: invalid widths in config %+v", cfg))
	}
	if cfg.ROBSize <= 0 {
		panic("pipeline: ROB size must be positive")
	}
	s := &Sim{
		cfg:         cfg,
		pred:        pred,
		icache:      cache.New(cfg.L1I),
		dcache:      cache.New(cfg.L1D),
		l2:          cache.New(cfg.L2),
		btb:         btb.New(cfg.BTBEntries, cfg.BTBWays),
		commitRing:  make([]uint64, cfg.ROBSize),
		issueRing:   newSlotRing(cfg.IssueWidth),
		intRing:     newSlotRing(cfg.IntPorts),
		memRing:     newSlotRing(cfg.MemPorts),
		mulRing:     newSlotRing(cfg.MulPorts),
		fpRing:      newSlotRing(cfg.FPPorts),
		commitRing2: newSlotRing(cfg.CommitWidth),
	}
	s.over, _ = pred.(*core.Overriding)
	s.cycleAware, _ = pred.(predictor.CycleAware)
	if rc, ok := pred.(predictor.RecoveryCost); ok {
		s.recovery = rc.RecoveryPenalty()
	}
	return s
}

// Predictor returns the predictor organization under test.
func (s *Sim) Predictor() predictor.Predictor { return s.pred }

// icacheLatency returns the fetch stall for the block containing pc,
// allocating through the hierarchy.
func (s *Sim) icacheLatency(pc uint64) uint64 {
	if s.icache.Access(pc) {
		return 0
	}
	if s.l2.Access(pc) {
		return uint64(s.cfg.L2Latency)
	}
	return uint64(s.cfg.MemLatency)
}

// dcacheLatency returns the load-use latency for addr.
func (s *Sim) dcacheLatency(addr uint64) uint64 {
	if s.dcache.Access(addr) {
		return uint64(s.cfg.L1DLatency)
	}
	if s.l2.Access(addr) {
		return uint64(s.cfg.L2Latency)
	}
	return uint64(s.cfg.MemLatency)
}

// advanceFetch moves the fetch point to at least cycle t, accounting the
// skipped cycles as fetch stall.
func (s *Sim) advanceFetch(t uint64) {
	if t > s.fetchCycle {
		s.fetchStall += t - s.fetchCycle
		s.fetchCycle = t
		s.fetchUsed = 0
		s.lastFetchBlock = 0
	}
}

// nextFetchCycle ends the current fetch cycle.
func (s *Sim) breakFetch() {
	s.fetchCycle++
	s.fetchUsed = 0
	s.lastFetchBlock = 0
}

// Run replays up to maxInsts instructions from src (a live generator or a
// recorded trace cursor), with the first
// warmupInsts excluded from the reported statistics (caches, predictors and
// scoreboard state still train). It returns the result summary.
func (s *Sim) Run(src trace.Source, maxInsts, warmupInsts int64) Result {
	s.warmupInsts = warmupInsts
	var (
		inst        trace.Inst
		warmupCycle uint64
	)
	feDepth := uint64(s.cfg.frontEndDepth())
	blockMask := ^uint64(int64(s.cfg.L1I.LineBytes) - 1)

	for s.insts < maxInsts && src.Next(&inst) {
		if s.insts == warmupInsts {
			warmupCycle = s.lastCommit
		}
		s.insts++

		// --- Fetch ---
		if s.fetchUsed >= s.cfg.FetchWidth {
			s.breakFetch()
		}
		block := inst.PC&blockMask + 1
		if block != s.lastFetchBlock {
			if s.lastFetchBlock != 0 {
				// Crossing into a new block mid-cycle: fetch
				// continues next cycle.
				s.breakFetch()
				block = inst.PC&blockMask + 1
			}
			if lat := s.icacheLatency(inst.PC); lat > 0 {
				s.advanceFetch(s.fetchCycle + lat)
			}
			s.lastFetchBlock = block
		}
		fetchAt := s.fetchCycle
		s.fetchUsed++

		// Keep fetch from running unboundedly ahead of commit: the
		// ROB bounds instructions in flight.
		oldestCommit := s.commitRing[s.robIdx]
		dispatchAt := fetchAt + feDepth
		if dispatchAt <= oldestCommit {
			// Structural stall: fetch (and the whole front end)
			// backs up until the ROB drains.
			if oldestCommit+1 > feDepth {
				s.advanceFetch(oldestCommit + 1 - feDepth)
			}
			fetchAt = s.fetchCycle
			dispatchAt = fetchAt + feDepth
		}

		// --- Branch prediction at fetch ---
		var predictedTaken bool
		isBranch := inst.Kind == trace.CondBranch
		if isBranch {
			if s.cycleAware != nil {
				s.cycleAware.OnCycle(fetchAt)
			}
			predictedTaken = s.pred.Predict(inst.PC)
			s.pred.Update(inst.PC, inst.Taken)
			if s.over != nil {
				if overrode, bubble := s.over.LastOverrode(); overrode {
					// The slow predictor rejected the quick
					// prediction: instructions fetched behind
					// this branch are squashed and fetch
					// restarts after the bubble.
					s.overrides.Add(true)
					s.advanceFetch(fetchAt + 1 + uint64(bubble))
				} else {
					s.overrides.Add(false)
				}
			}
		}

		// Taken control flow: BTB provides the target for predicted-
		// taken branches; jumps resolve in decode at the latest.
		if (isBranch && predictedTaken && inst.Taken) || inst.Kind == trace.Jump {
			_, hit := s.btb.Lookup(inst.PC)
			if !hit {
				s.btbMisses.Add(true)
				s.advanceFetch(fetchAt + 1 + uint64(s.cfg.BTBMissPenalty))
			} else {
				s.btbMisses.Add(false)
				s.breakFetch() // taken-branch fetch break
			}
			s.btb.Insert(inst.PC, inst.Target)
		}

		// --- Issue ---
		ready := dispatchAt
		if inst.Src1 >= 0 {
			if t := s.regReady[inst.Src1]; t > ready {
				ready = t
			}
		}
		if inst.Src2 >= 0 {
			if t := s.regReady[inst.Src2]; t > ready {
				ready = t
			}
		}
		var port *slotRing
		var execLat uint64
		switch inst.Kind {
		case trace.Load:
			port, execLat = &s.memRing, s.dcacheLatency(inst.Addr)
		case trace.Store:
			port, execLat = &s.memRing, 1
			// Stores retire from the store queue; the D-cache
			// line is still allocated for subsequent loads.
			s.dcache.Access(inst.Addr)
		case trace.Mul:
			port, execLat = &s.mulRing, uint64(s.cfg.MulLatency)
		case trace.FPU:
			port, execLat = &s.fpRing, uint64(s.cfg.FPLatency)
		default: // ALU, CondBranch, Jump
			port, execLat = &s.intRing, 1
		}
		issueAt := ready
		for {
			t := s.issueRing.peekFree(issueAt)
			t = port.peekFree(t)
			if t == issueAt {
				break
			}
			issueAt = t
		}
		s.issueRing.take(issueAt)
		port.take(issueAt)
		completeAt := issueAt + execLat

		if inst.Dst >= 0 {
			s.regReady[inst.Dst] = completeAt
		}

		// --- Branch resolution ---
		if isBranch {
			miss := predictedTaken != inst.Taken
			s.branches.Add(miss)
			if s.insts > warmupInsts {
				s.measBranches.Add(miss)
			}
			if miss {
				// Redirect: correct-path fetch resumes once the
				// branch resolves and the front end refills —
				// plus any organization-specific recovery cost
				// (e.g. an uncheckpointed PHT buffer refill).
				s.advanceFetch(completeAt + 1 + uint64(s.recovery))
			}
		}

		// --- Commit ---
		commitAt := completeAt + 1
		if commitAt < s.lastCommit {
			commitAt = s.lastCommit // in-order commit
		}
		commitAt = s.commitRing2.take(commitAt)
		if commitAt > s.lastCommit {
			s.lastCommit = commitAt
		}
		s.commitRing[s.robIdx] = commitAt
		s.robIdx = (s.robIdx + 1) % s.cfg.ROBSize
	}

	s.cycles = s.lastCommit - warmupCycle
	r := s.result(warmupInsts)
	r.Workload = src.Name()
	return r
}
