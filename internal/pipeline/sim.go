package pipeline

import (
	"fmt"

	"branchsim/internal/btb"
	"branchsim/internal/cache"
	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
)

// Sim is one timing simulation run: a core configuration, a branch
// predictor organization, and the accumulated state of a trace replay.
//
// The model is an event-ordered scoreboard: instructions flow in program
// order through fetch → dispatch → issue → complete → commit, with each
// stage time computed from its structural and data constraints. This is the
// classic trace-driven out-of-order timing model: wrong-path instructions
// are not simulated; their cost appears as the redirect bubble between a
// mispredicted branch's resolution and the arrival of correct-path
// instructions, the same accounting the paper's modified SimpleScalar uses.
//
//bplint:lanecheck
type Sim struct {
	cfg  Config
	pred predictor.Predictor

	over       *core.Overriding     // non-nil when pred is an overriding organization
	cycleAware predictor.CycleAware // non-nil when pred wants the fetch clock
	recovery   int                  // extra post-misprediction bubble (predictor.RecoveryCost)

	icache *cache.Cache
	dcache *cache.Cache
	l2     *cache.Cache
	btb    *btb.BTB

	// Memory-latency sidecar (SetMemSidecar). When active, the
	// precomputed per-instruction access classes replace the live
	// L1I/L1D/L2 simulation; the counters below reproduce the live
	// caches' access/miss tallies so Result's miss rates are identical.
	side                    *MemSidecar
	sideActive              bool
	sideIdx                 int64
	sideL1IAcc, sideL1IMiss uint64
	sideL1DAcc, sideL1DMiss uint64
	sideL2Acc, sideL2Miss   uint64

	// Scoreboard state.
	regReady   [trace.NumRegs]uint64
	commitRing []uint64 // commit cycle of the i-th most recent instructions (ROB window)
	robIdx     int

	issueRing   slotRing // total issues per cycle
	intRing     slotRing
	memRing     slotRing
	mulRing     slotRing
	fpRing      slotRing
	commitRing2 slotRing

	// Fetch state.
	fetchCycle     uint64 // cycle currently being fetched into
	fetchUsed      int    // instructions fetched in fetchCycle
	lastFetchBlock uint64 // current I-cache block address + 1 (0 = none)
	lastCommit     uint64

	// Statistics.
	insts        int64
	cycles       uint64
	branches     stats.Rate // mispredictions / branches
	overrides    stats.Rate
	btbMisses    stats.Rate
	fetchStall   uint64 // cycles fetch waited on redirects/bubbles (approximate attribution)
	warmupInsts  int64
	measBranches stats.Rate
}

// slotRing counts per-cycle resource usage over a sliding window.
type slotRing struct {
	cycle []uint64
	count []uint16
	limit uint16
}

const ringSize = 1 << 15

func newSlotRing(limit int) slotRing {
	return slotRing{
		cycle: make([]uint64, ringSize),
		count: make([]uint16, ringSize),
		limit: uint16(limit),
	}
}

// take reserves one slot at or after cycle t and returns the cycle used.
func (r *slotRing) take(t uint64) uint64 {
	for {
		i := t & (ringSize - 1)
		if r.cycle[i] != t {
			r.cycle[i] = t
			r.count[i] = 1
			return t
		}
		if r.count[i] < r.limit {
			r.count[i]++
			return t
		}
		t++
	}
}

// peekFree reports the first cycle at or after t with a free slot, without
// reserving it.
func (r *slotRing) peekFree(t uint64) uint64 {
	for {
		i := t & (ringSize - 1)
		if r.cycle[i] != t || r.count[i] < r.limit {
			return t
		}
		t++
	}
}

// New returns a timing simulation of cfg using pred as the branch direction
// predictor organization. Pass a *core.Overriding to model the overriding
// delay-hiding scheme; a *core.GShareFast is driven with real fetch cycles;
// any other predictor is treated as answering in a single cycle (the paper's
// "no delay" idealization).
func New(cfg Config, pred predictor.Predictor) *Sim {
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.CommitWidth <= 0 {
		panic(fmt.Sprintf("pipeline: invalid widths in config %+v", cfg))
	}
	if cfg.ROBSize <= 0 {
		panic("pipeline: ROB size must be positive")
	}
	s := &Sim{
		cfg:         cfg,
		pred:        pred,
		icache:      cache.New(cfg.L1I),
		dcache:      cache.New(cfg.L1D),
		l2:          cache.New(cfg.L2),
		btb:         btb.New(cfg.BTBEntries, cfg.BTBWays),
		commitRing:  make([]uint64, cfg.ROBSize),
		issueRing:   newSlotRing(cfg.IssueWidth),
		intRing:     newSlotRing(cfg.IntPorts),
		memRing:     newSlotRing(cfg.MemPorts),
		mulRing:     newSlotRing(cfg.MulPorts),
		fpRing:      newSlotRing(cfg.FPPorts),
		commitRing2: newSlotRing(cfg.CommitWidth),
	}
	s.over, _ = pred.(*core.Overriding)
	s.cycleAware, _ = pred.(predictor.CycleAware)
	if rc, ok := pred.(predictor.RecoveryCost); ok {
		s.recovery = rc.RecoveryPenalty()
	}
	return s
}

// Predictor returns the predictor organization under test.
func (s *Sim) Predictor() predictor.Predictor { return s.pred }

// SetMemSidecar attaches a precomputed memory-latency sidecar. It is used
// on a subsequent Run only when it covers that run exactly — same recording
// replayed from the start under the same cache geometry (see
// MemSidecar.covers); otherwise the live hierarchy is simulated as before.
func (s *Sim) SetMemSidecar(side *MemSidecar) { s.side = side }

// icacheLatency returns the fetch stall for the block containing pc,
// allocating through the hierarchy.
func (s *Sim) icacheLatency(pc uint64) uint64 {
	if s.icache.Access(pc) {
		return 0
	}
	if s.l2.Access(pc) {
		return uint64(s.cfg.L2Latency)
	}
	return uint64(s.cfg.MemLatency)
}

// dcacheLatency returns the load-use latency for addr.
func (s *Sim) dcacheLatency(addr uint64) uint64 {
	if s.dcache.Access(addr) {
		return uint64(s.cfg.L1DLatency)
	}
	if s.l2.Access(addr) {
		return uint64(s.cfg.L2Latency)
	}
	return uint64(s.cfg.MemLatency)
}

// fetchLatency is icacheLatency with the sidecar consulted first. It is
// called only when the current instruction starts a fetch-block access:
// either a genuinely new block (the sidecar recorded its outcome) or a
// redirect-induced re-touch of the previous block (class sideFetchNone — a
// guaranteed hit on the still-resident MRU line, see BuildMemSidecar).
func (s *Sim) fetchLatency(pc uint64) uint64 {
	if !s.sideActive {
		return s.icacheLatency(pc)
	}
	s.sideL1IAcc++
	switch s.side.class[s.sideIdx] & sideFetchMask {
	case sideFetchNone, sideFetchL1 << sideFetchShift:
		return 0
	case sideFetchL2 << sideFetchShift:
		s.sideL1IMiss++
		s.sideL2Acc++
		return uint64(s.cfg.L2Latency)
	case sideFetchMem << sideFetchShift:
		s.sideL1IMiss++
		s.sideL2Acc++
		s.sideL2Miss++
		return uint64(s.cfg.MemLatency)
	default:
		panic("pipeline: sidecar fetch class out of range")
	}
}

// loadLatency is dcacheLatency with the sidecar consulted first.
func (s *Sim) loadLatency(addr uint64) uint64 {
	if !s.sideActive {
		return s.dcacheLatency(addr)
	}
	s.sideL1DAcc++
	switch s.side.class[s.sideIdx] & sideMemMask {
	case sideMemL1 << sideMemShift:
		return uint64(s.cfg.L1DLatency)
	case sideMemL2 << sideMemShift:
		s.sideL1DMiss++
		s.sideL2Acc++
		return uint64(s.cfg.L2Latency)
	case sideMemMem << sideMemShift:
		s.sideL1DMiss++
		s.sideL2Acc++
		s.sideL2Miss++
		return uint64(s.cfg.MemLatency)
	default: // sideMemNone: loadLatency is only called for loads, which always carry a mem class
		panic("pipeline: load with no sidecar mem class")
	}
}

// storeAccess allocates a store's line in the D-cache (live path) or tallies
// the precomputed outcome (sidecar path). Stores never access the L2 in this
// model — they retire from the store queue — so a store miss only allocates.
func (s *Sim) storeAccess(addr uint64) {
	if !s.sideActive {
		s.dcache.Access(addr)
		return
	}
	s.sideL1DAcc++
	if s.side.class[s.sideIdx]&sideMemMask == sideMemMem<<sideMemShift {
		s.sideL1DMiss++
	}
}

// advanceFetch moves the fetch point to at least cycle t, accounting the
// skipped cycles as fetch stall.
func (s *Sim) advanceFetch(t uint64) {
	if t > s.fetchCycle {
		s.fetchStall += t - s.fetchCycle
		s.fetchCycle = t
		s.fetchUsed = 0
		s.lastFetchBlock = 0
	}
}

// nextFetchCycle ends the current fetch cycle.
func (s *Sim) breakFetch() {
	s.fetchCycle++
	s.fetchUsed = 0
	s.lastFetchBlock = 0
}

// runState is the per-Run loop context shared by the three drive loops:
// the budget and warm-up boundaries, the derived fetch constants, and the
// commit cycle observed at the warm-up boundary.
//
//bplint:lanecheck
type runState struct {
	maxInsts    int64
	warmupInsts int64
	feDepth     uint64
	blockMask   uint64
	warmupCycle uint64
}

// Run replays up to maxInsts instructions from src (a live generator or a
// recorded trace cursor), with the first
// warmupInsts excluded from the reported statistics (caches, predictors and
// scoreboard state still train). It returns the result summary.
//
// Sources implementing trace.InstSource — replay cursors reconstructing
// whole batches from the recording's struct-of-arrays chunks — are driven
// through a batched inner loop instead of one virtual Next call per
// instruction; with a matching memory-latency sidecar (SetMemSidecar) the
// precomputed per-instruction cache outcomes replace the live L1I/L1D/L2
// simulation as well. Every fast-path layer is bit-identical to the plain
// loop (TestTimingFastPathEquivalence).
func (s *Sim) Run(src trace.Source, maxInsts, warmupInsts int64) Result {
	s.warmupInsts = warmupInsts
	rs := runState{
		maxInsts:    maxInsts,
		warmupInsts: warmupInsts,
		feDepth:     uint64(s.cfg.frontEndDepth()),
		blockMask:   ^uint64(int64(s.cfg.L1I.LineBytes) - 1),
	}
	s.sideActive = false
	s.sideIdx = 0
	if cur, ok := src.(*trace.Cursor); ok {
		// Devirtualizing the dominant concrete type keeps the batch on
		// the driver's stack (the interface call in runInstSource makes
		// it escape), which the zero-allocation guarantee rests on. The
		// sidecar is only trusted for a cursor, whose stream identity
		// and position are checkable.
		s.sideActive = s.side != nil && s.side.covers(s.cfg, cur)
		s.runCursor(cur, &rs)
	} else if is, ok := src.(trace.InstSource); ok {
		s.runInstSource(is, &rs)
	} else {
		var inst trace.Inst
		for s.insts < rs.maxInsts && src.Next(&inst) {
			s.step(&inst, &rs)
		}
	}
	s.cycles = s.lastCommit - rs.warmupCycle
	r := s.result(warmupInsts)
	r.Workload = src.Name()
	return r
}

// runCursor is the batched loop specialized to the concrete replay cursor
// so the batch array does not escape to the heap (see Run).
//
//bplint:hotpath timing fast path; TestBatchedTimingRunAllocs pins allocs/op to zero
func (s *Sim) runCursor(cur *trace.Cursor, rs *runState) {
	var batch [trace.InstBatchLen]trace.Inst
	for s.insts < rs.maxInsts {
		lim := len(batch)
		if want := rs.maxInsts - s.insts; int64(lim) > want {
			lim = int(want)
		}
		n := cur.NextInsts(batch[:lim])
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			//bplint:twinskip fused hands the whole batch to runBatch's lane sweep instead of stepping singly
			s.step(&batch[i], rs)
		}
	}
}

// runInstSource is the batched loop over any InstSource.
func (s *Sim) runInstSource(is trace.InstSource, rs *runState) {
	//bplint:twinskip fused fills its own batch column array; no per-call buffer
	batch := make([]trace.Inst, trace.InstBatchLen)
	for s.insts < rs.maxInsts {
		lim := len(batch)
		if want := rs.maxInsts - s.insts; int64(lim) > want {
			lim = int(want)
		}
		n := is.NextInsts(batch[:lim])
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			//bplint:twinskip fused hands the whole batch to runBatch's lane sweep instead of stepping singly
			s.step(&batch[i], rs)
		}
	}
}

// step advances the scoreboard by one instruction — the loop body shared by
// the instruction-at-a-time and batched drive loops, so the fast paths are
// equivalent by construction and only the stream delivery (and, with a
// sidecar, the memory-latency source) differs.
//
//bplint:hotpath runs once per instruction across multi-million-instruction sweeps
func (s *Sim) step(inst *trace.Inst, rs *runState) {
	if s.insts == rs.warmupInsts {
		rs.warmupCycle = s.lastCommit
	}
	//bplint:twinskip fused counts whole batches once in runBatch, not per instruction
	s.insts++

	// --- Fetch ---
	if s.fetchUsed >= s.cfg.FetchWidth {
		s.breakFetch()
	}
	block := inst.PC&rs.blockMask + 1
	if block != s.lastFetchBlock {
		if s.lastFetchBlock != 0 {
			// Crossing into a new block mid-cycle: fetch continues
			// next cycle. block depends only on inst.PC, so it
			// needs no recomputation after the fetch break.
			s.breakFetch()
		}
		//bplint:twinskip fused splits this probe by sidecar flag: class table lookup or live per-lane caches
		if lat := s.fetchLatency(inst.PC); lat > 0 {
			s.advanceFetch(s.fetchCycle + lat)
		}
		s.lastFetchBlock = block
	}
	fetchAt := s.fetchCycle
	s.fetchUsed++

	// Keep fetch from running unboundedly ahead of commit: the
	// ROB bounds instructions in flight.
	oldestCommit := s.commitRing[s.robIdx]
	dispatchAt := fetchAt + rs.feDepth
	if dispatchAt <= oldestCommit {
		// Structural stall: fetch (and the whole front end)
		// backs up until the ROB drains.
		if oldestCommit+1 > rs.feDepth {
			s.advanceFetch(oldestCommit + 1 - rs.feDepth)
		}
		fetchAt = s.fetchCycle
		dispatchAt = fetchAt + rs.feDepth
	}

	// --- Branch prediction at fetch ---
	var predictedTaken bool
	//bplint:twinskip fused hoists the kind test into stepAll's per-instruction sweep dispatch
	isBranch := inst.Kind == trace.CondBranch
	if isBranch {
		if s.cycleAware != nil {
			s.cycleAware.OnCycle(fetchAt)
		}
		predictedTaken = s.pred.Predict(inst.PC)
		s.pred.Update(inst.PC, inst.Taken)
		if s.over != nil {
			if overrode, bubble := s.over.LastOverrode(); overrode {
				// The slow predictor rejected the quick
				// prediction: instructions fetched behind
				// this branch are squashed and fetch
				// restarts after the bubble.
				s.overrides.Add(true)
				s.advanceFetch(fetchAt + 1 + uint64(bubble))
			} else {
				s.overrides.Add(false)
			}
		}
	}

	// Taken control flow: BTB provides the target for predicted-
	// taken branches; jumps resolve in decode at the latest.
	if (isBranch && predictedTaken && inst.Taken) || inst.Kind == trace.Jump {
		_, hit := s.btb.Lookup(inst.PC)
		if !hit {
			s.btbMisses.Add(true)
			s.advanceFetch(fetchAt + 1 + uint64(s.cfg.BTBMissPenalty))
		} else {
			s.btbMisses.Add(false)
			s.breakFetch() // taken-branch fetch break
		}
		s.btb.Insert(inst.PC, inst.Target)
	}

	// --- Issue ---
	ready := dispatchAt
	if inst.Src1 >= 0 {
		if t := s.regReady[inst.Src1]; t > ready {
			ready = t
		}
	}
	if inst.Src2 >= 0 {
		if t := s.regReady[inst.Src2]; t > ready {
			ready = t
		}
	}
	var port *slotRing
	var execLat uint64
	switch inst.Kind {
	case trace.Load:
		//bplint:twinskip fused precomputes port and latency classes into prep's shared pcls/lcls columns
		port, execLat = &s.memRing, s.loadLatency(inst.Addr)
	case trace.Store:
		//bplint:twinskip fused precomputes port and latency classes into prep's shared pcls/lcls columns
		port, execLat = &s.memRing, 1
		// Stores retire from the store queue; the D-cache
		// line is still allocated for subsequent loads.
		//bplint:twinskip fused splits this by sidecar flag: prep tallies the class or the sweep probes live caches
		s.storeAccess(inst.Addr)
	case trace.Mul:
		//bplint:twinskip fused precomputes port and latency classes into prep's shared pcls/lcls columns
		port, execLat = &s.mulRing, uint64(s.cfg.MulLatency)
	case trace.FPU:
		//bplint:twinskip fused precomputes port and latency classes into prep's shared pcls/lcls columns
		port, execLat = &s.fpRing, uint64(s.cfg.FPLatency)
	case trace.ALU, trace.CondBranch, trace.Jump:
		//bplint:twinskip fused precomputes port and latency classes into prep's shared pcls/lcls columns
		port, execLat = &s.intRing, 1
	default:
		panic("pipeline: unhandled instruction kind")
	}
	//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
	issueAt := ready
	for {
		//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
		t := s.issueRing.peekFree(issueAt)
		//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
		t = port.peekFree(t)
		if t == issueAt {
			break
		}
		//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
		issueAt = t
	}
	//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
	s.issueRing.take(issueAt)
	//bplint:twinskip fused collapses the probe-then-reserve protocol into one byteRing takeInBoth call
	port.take(issueAt)
	completeAt := issueAt + execLat

	if inst.Dst >= 0 {
		s.regReady[inst.Dst] = completeAt
	}

	// --- Branch resolution ---
	if isBranch {
		miss := predictedTaken != inst.Taken
		s.branches.Add(miss)
		if s.insts > rs.warmupInsts {
			s.measBranches.Add(miss)
		}
		if miss {
			// Redirect: correct-path fetch resumes once the
			// branch resolves and the front end refills —
			// plus any organization-specific recovery cost
			// (e.g. an uncheckpointed PHT buffer refill).
			s.advanceFetch(completeAt + 1 + uint64(s.recovery))
		}
	}

	// --- Commit ---
	commitAt := completeAt + 1
	if commitAt < s.lastCommit {
		//bplint:twinskip fused degenerates the monotone commit ring to the (lastCommit, commitUsed) scalar pair
		commitAt = s.lastCommit // in-order commit
	}
	//bplint:twinskip fused degenerates the monotone commit ring to the (lastCommit, commitUsed) scalar pair
	commitAt = s.commitRing2.take(commitAt)
	if commitAt > s.lastCommit {
		s.lastCommit = commitAt
	}
	//bplint:twinskip fused stores the clamped lastCommit, identical to commitAt after the ring take
	s.commitRing[s.robIdx] = commitAt
	//bplint:twinskip fused wraps the ROB cursor with a compare instead of an integer division
	s.robIdx = (s.robIdx + 1) % s.cfg.ROBSize

	//bplint:twinskip fused indexes sidecar classes by batch offset in prep, no per-instruction cursor
	s.sideIdx++
}
