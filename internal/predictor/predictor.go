// Package predictor implements the conditional branch direction predictors
// the paper evaluates against gshare.fast: the classic baselines (bimodal,
// gshare, gselect, bi-mode, two-level local), the industrial designs of §2.1
// (the Alpha 21264/EV6 hybrid), and the complex academic predictors of §4.1
// (2Bc-gskew, Evers' multi-component hybrid, and the global+local perceptron
// predictor).
//
// Every predictor satisfies the Predictor interface. The functional protocol
// is strict alternation in program order: Predict(pc) followed immediately by
// Update(pc, taken) for the same branch. Histories are advanced inside
// Update, which — because the trace-driven drivers deliver only correct-path
// branches — is exactly equivalent to the paper's assumption of speculative
// history update with precise repair after a misprediction (§4.1.2).
package predictor

import "fmt"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome of the branch
	// at pc. It must be called exactly once after each Predict, in program
	// order.
	Update(pc uint64, taken bool)
	// SizeBytes returns the hardware budget consumed: every prediction
	// table, history register and weight array, in bytes.
	SizeBytes() int
	// Name identifies the predictor and its configuration, e.g.
	// "gshare-64KB".
	Name() string
}

// CycleAware is implemented by predictors whose behaviour depends on fetch
// timing, such as the pipelined gshare.fast, whose PHT row address uses the
// global history as of several cycles before the prediction. Drivers call
// OnCycle with a monotonically non-decreasing fetch-cycle number before
// issuing predictions for that cycle; drivers that never call it get
// conservative single-branch-per-cycle timing.
type CycleAware interface {
	OnCycle(cycle uint64)
}

// BatchStepper is the fused sweep driver's per-lane protocol
// (funcsim.RunMany): step the predictor through a batch of resolved
// branches in stream order with one call instead of one Predict/Update
// pair per branch. StepBatch must be observationally identical to
//
//	pred := p.Predict(pcs[i])
//	p.Update(pcs[i], takens[i])
//
// applied for i = 0..len(pcs)-1, returning the number of branches at
// i >= measuredFrom whose pred differed from takens[i]. "Identical" means
// bit-identical: the same table and history state afterwards and the same
// per-branch predictions, which the equivalence suites in this package and
// in funcsim enforce against the scalar protocol. Only predictors whose
// per-branch work is cheap enough for dispatch and duplicate index
// computation to dominate implement it — complex predictors gain nothing,
// and cycle-aware predictors cannot (their per-branch OnCycle interleaving
// needs the scalar loop).
type BatchStepper interface {
	StepBatch(pcs []uint64, takens []bool, measuredFrom int) (mispredicts int64)
}

// pow2Entries returns the largest power-of-two entry count such that
// entries*bitsPerEntry fits in budgetBytes, and at least minEntries.
func pow2Entries(budgetBytes int, bitsPerEntry int, minEntries int) int {
	if budgetBytes <= 0 || bitsPerEntry <= 0 {
		return minEntries
	}
	maxBits := int64(budgetBytes) * 8
	entries := 1
	for int64(entries)*2*int64(bitsPerEntry) <= maxBits {
		entries *= 2
	}
	if entries < minEntries {
		entries = minEntries
	}
	return entries
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// budgetName renders a byte count the way the paper labels hardware budgets:
// "2KB", "512KB", "53KB".
func budgetName(bytes int) string {
	if bytes >= 1024 && bytes%1024 == 0 {
		return fmt.Sprintf("%dKB", bytes/1024)
	}
	if bytes >= 1024 {
		return fmt.Sprintf("%.1fKB", float64(bytes)/1024)
	}
	return fmt.Sprintf("%dB", bytes)
}

// pcIndex maps a word-aligned branch PC into a table of mask+1 entries.
func pcIndex(pc uint64, mask uint64) uint64 { return (pc >> 2) & mask }

// hashPC mixes PC bits for tables that would otherwise see only low-order
// bits; a cheap xor-fold keeps it implementable in one gate level per bit.
func hashPC(pc uint64) uint64 {
	pc >>= 2
	return pc ^ pc>>13 ^ pc>>29
}

// DelayFootprint is implemented by predictors that can report the geometry
// of their largest table component, which dominates access delay (§4.1.5:
// "we estimate the latency of the largest table component").
type DelayFootprint interface {
	// LargestTable returns the byte size and entry count of the largest
	// single SRAM array read on the prediction critical path.
	LargestTable() (bytes, entries int)
}

// RecoveryCost is implemented by predictor organizations that charge the
// front end extra cycles after a branch misprediction, beyond the normal
// redirect/refill. The paper's gshare.fast avoids this cost by
// checkpointing its PHT buffer per pipeline stage (§3.2); the cost appears
// when that mechanism is omitted.
type RecoveryCost interface {
	// RecoveryPenalty returns the extra fetch bubble, in cycles, charged
	// when a misprediction redirects fetch.
	RecoveryPenalty() int
}
