package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// MultiComponent implements the multi-component hybrid predictor in the
// style of Evers' multi-hybrid (PhD thesis, Michigan 1999; ISCA 1996): a set
// of two-level components whose history lengths increase geometrically, so
// each branch can be served by the component whose history length matches
// its correlation distance, plus a bimodal component for biased branches.
// Selection uses per-component 2-bit confidence counters kept in a PC-indexed
// selector table; the confident component with the longest history wins.
//
// This is the most accurate — and the most delay-hostile — predictor in the
// paper's evaluation: a prediction needs N table reads plus a selection
// network, which is exactly the complexity §2.2 warns about.
type MultiComponent struct {
	bimodal    *counter.Array2
	bimMask    uint64
	components []*mcComponent
	// Optional local two-level component (Evers' multi-hybrid mixes
	// global- and local-history components).
	localPHT  *counter.Array2
	localHist *history.Local
	selector  []*counter.ArrayN // one confidence array per prediction source
	selMask   uint64
	ghr       *history.Global
	name      string
}

// mcComponent is one gshare-style two-level component with XOR-folded
// history of a fixed length.
type mcComponent struct {
	pht      *counter.Array2
	histBits uint
	mask     uint64
	idxBits  uint
}

func (c *mcComponent) index(pc uint64, hist uint64) int {
	h := hist
	if c.histBits < 64 {
		h &= 1<<c.histBits - 1
	}
	v := pc >> 2
	folded := v & c.mask
	v >>= c.idxBits
	folded ^= v & c.mask
	for h != 0 {
		folded ^= h & c.mask
		h >>= c.idxBits
	}
	return int(folded)
}

// MCConfig sizes a multi-component hybrid.
type MCConfig struct {
	BimodalEntries   int    // bimodal component entries (power of two)
	ComponentEntries int    // per-component PHT entries (power of two)
	HistoryLengths   []uint // one two-level component per entry, ascending
	SelectorEntries  int    // selector table entries (power of two)
	// LocalHistories and LocalBits, when nonzero, add a two-level local
	// component: LocalHistories registers of LocalBits bits indexing a
	// 2^LocalBits-entry PHT.
	LocalHistories int
	LocalBits      uint
}

// NewMultiComponent returns a multi-component hybrid with the given
// configuration.
func NewMultiComponent(cfg MCConfig) *MultiComponent {
	if len(cfg.HistoryLengths) == 0 {
		panic("predictor: multi-component needs at least one history length")
	}
	if cfg.ComponentEntries <= 0 || cfg.ComponentEntries&(cfg.ComponentEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: component entries %d not a power of two", cfg.ComponentEntries))
	}
	if cfg.BimodalEntries <= 0 || cfg.BimodalEntries&(cfg.BimodalEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: bimodal entries %d not a power of two", cfg.BimodalEntries))
	}
	if cfg.SelectorEntries <= 0 || cfg.SelectorEntries&(cfg.SelectorEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: selector entries %d not a power of two", cfg.SelectorEntries))
	}
	maxHist := cfg.HistoryLengths[len(cfg.HistoryLengths)-1]
	if maxHist > history.MaxGlobalBits {
		panic(fmt.Sprintf("predictor: history length %d exceeds %d", maxHist, history.MaxGlobalBits))
	}
	m := &MultiComponent{
		bimodal: counter.NewArray2(cfg.BimodalEntries, counter.WeaklyNotTaken),
		bimMask: uint64(cfg.BimodalEntries - 1),
		selMask: uint64(cfg.SelectorEntries - 1),
		ghr:     history.NewGlobal(maxHist),
	}
	idxBits := log2(cfg.ComponentEntries)
	for _, h := range cfg.HistoryLengths {
		m.components = append(m.components, &mcComponent{
			pht:      counter.NewArray2(cfg.ComponentEntries, counter.WeaklyNotTaken),
			histBits: h,
			mask:     uint64(cfg.ComponentEntries - 1),
			idxBits:  idxBits,
		})
	}
	if cfg.LocalHistories > 0 && cfg.LocalBits > 0 {
		m.localPHT = counter.NewArray2(1<<cfg.LocalBits, counter.WeaklyNotTaken)
		m.localHist = history.NewLocal(cfg.LocalHistories, cfg.LocalBits)
	}
	// One confidence array per prediction source (global components,
	// then the local component if present, bimodal last). The bimodal
	// component starts fully confident and the history components one
	// notch below, so a history component must demonstrate an advantage
	// before it takes over a branch.
	for i := 0; i < m.sources()-1; i++ {
		m.selector = append(m.selector, counter.NewArrayN(cfg.SelectorEntries, 2, 2))
	}
	m.selector = append(m.selector, counter.NewArrayN(cfg.SelectorEntries, 2, 3))
	m.name = fmt.Sprintf("multicomponent-%s", budgetName(m.SizeBytes()))
	return m
}

// NewMultiComponentFromBudget configures a five-component hybrid (bimodal +
// four two-level components with geometric history lengths) around
// budgetBytes, following the shape of the thesis configurations. Like the
// paper's multi-component design points (18 KB, 53 KB, ... — never powers of
// two), the realized size lands near but not exactly on the request; the
// direction tables get a quarter of the budget each and the bimodal and
// selector tables ride on top.
func NewMultiComponentFromBudget(budgetBytes int) *MultiComponent {
	compEntries := pow2Entries(budgetBytes/4, 2, 64)
	bimEntries := pow2Entries(budgetBytes/16, 2, 16)
	selEntries := pow2Entries(budgetBytes/16, 10, 16)
	idxBits := log2(compEntries)
	// History lengths: a short, fast-warming component up to a long one
	// well beyond the index width (folded) for long-range correlation.
	long := 5 * idxBits / 2
	if long > history.MaxGlobalBits {
		long = history.MaxGlobalBits
	}
	lengths := []uint{idxBits / 2, idxBits, 3 * idxBits / 2, long}
	if lengths[0] == 0 {
		lengths[0] = 1
	}
	return NewMultiComponent(MCConfig{
		BimodalEntries:   bimEntries,
		ComponentEntries: compEntries,
		HistoryLengths:   lengths,
		SelectorEntries:  selEntries,
		LocalHistories:   1024,
		LocalBits:        10,
	})
}

// sources returns the number of prediction sources: the global components,
// the optional local component, and the bimodal table.
func (m *MultiComponent) sources() int {
	n := len(m.components) + 1
	if m.localPHT != nil {
		n++
	}
	return n
}

// predictions returns each source's prediction (global components in order,
// then the local component if present, bimodal last) and the chosen source.
func (m *MultiComponent) predictions(pc uint64) (preds []bool, chosen int) {
	hist := m.ghr.Value()
	preds = make([]bool, m.sources())
	for i, c := range m.components {
		preds[i] = c.pht.Taken(c.index(pc, hist))
	}
	if m.localPHT != nil {
		preds[len(m.components)] = m.localPHT.Taken(int(m.localHist.Get(pc)))
	}
	bim := m.sources() - 1
	preds[bim] = m.bimodal.Taken(int(pcIndex(pc, m.bimMask)))

	sel := int(pcIndex(pc, m.selMask))
	best, bestConf := bim, int(m.selector[bim].Get(sel))
	// Scan short-history components first: confidence ties go to the
	// component with the least context, which warms up fastest and
	// aliases least. A longer-history component takes over only when its
	// confidence strictly exceeds everything simpler — the stable
	// variant of Evers' priority selection for 2-bit confidences.
	for i := 0; i < bim; i++ {
		if conf := int(m.selector[i].Get(sel)); conf > bestConf {
			best, bestConf = i, conf
		}
	}
	return preds, best
}

// Predict implements Predictor.
func (m *MultiComponent) Predict(pc uint64) bool {
	preds, chosen := m.predictions(pc)
	return preds[chosen]
}

// Update implements Predictor. All direction components train on every
// branch (total update). Confidence counters train only relative to the
// chosen component — if every counter simply tracked its own component's
// correctness, they would all saturate together on the mostly-correct stream
// and selection would collapse to the tie-break:
//
//   - chosen correct: wrong components are decremented;
//   - chosen wrong: correct components are incremented and the chosen
//     component is decremented.
func (m *MultiComponent) Update(pc uint64, taken bool) {
	preds, chosen := m.predictions(pc)
	chosenCorrect := preds[chosen] == taken
	sel := int(pcIndex(pc, m.selMask))
	for i, pred := range preds {
		correct := pred == taken
		switch {
		case i == chosen && !chosenCorrect:
			m.selector[i].Update(sel, false)
		case i != chosen && chosenCorrect && !correct:
			m.selector[i].Update(sel, false)
		case i != chosen && !chosenCorrect && correct:
			m.selector[i].Update(sel, true)
		}
	}
	hist := m.ghr.Value()
	for _, c := range m.components {
		c.pht.Update(c.index(pc, hist), taken)
	}
	if m.localPHT != nil {
		m.localPHT.Update(int(m.localHist.Get(pc)), taken)
		m.localHist.Push(pc, taken)
	}
	m.bimodal.Update(int(pcIndex(pc, m.bimMask)), taken)
	m.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (m *MultiComponent) SizeBytes() int {
	size := m.bimodal.SizeBytes() + m.ghr.SizeBytes()
	if m.localPHT != nil {
		size += m.localPHT.SizeBytes() + m.localHist.SizeBytes()
	}
	for _, c := range m.components {
		size += c.pht.SizeBytes()
	}
	for _, s := range m.selector {
		size += s.SizeBytes()
	}
	return size
}

// Name implements Predictor.
func (m *MultiComponent) Name() string { return m.name }

// NumComponents returns the number of prediction sources including the
// bimodal one, exposed for the delay model (each is a separate table read).
func (m *MultiComponent) NumComponents() int { return m.sources() }

// LargestTable implements DelayFootprint: the two-level component PHTs are
// the largest arrays.
func (m *MultiComponent) LargestTable() (int, int) {
	c := m.components[0]
	return c.pht.SizeBytes(), c.pht.Len()
}
