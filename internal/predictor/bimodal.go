package predictor

import (
	"fmt"

	"branchsim/internal/counter"
)

// Bimodal is the classic Smith predictor: a table of 2-bit saturating
// counters indexed by branch PC. It captures per-branch bias and nothing
// else, and is the bias component of several hybrid predictors in this
// repository (2Bc-gskew, the multi-component hybrid).
type Bimodal struct {
	pht  *counter.Array2
	mask uint64
	name string
}

// NewBimodal returns a bimodal predictor with the given number of 2-bit
// counters (a power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("predictor: bimodal entries %d not a power of two", entries))
	}
	b := &Bimodal{
		pht:  counter.NewArray2(entries, counter.WeaklyNotTaken),
		mask: uint64(entries - 1),
	}
	b.name = fmt.Sprintf("bimodal-%s", budgetName(b.SizeBytes()))
	return b
}

// NewBimodalFromBudget returns the largest bimodal predictor fitting
// budgetBytes.
func NewBimodalFromBudget(budgetBytes int) *Bimodal {
	return NewBimodal(pow2Entries(budgetBytes, 2, 4))
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool {
	return b.pht.Taken(int(pcIndex(pc, b.mask)))
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	b.pht.Update(int(pcIndex(pc, b.mask)), taken)
}

// StepBatch implements BatchStepper: one fused read-modify-write of the
// PC-indexed counter per branch.
//
//bplint:twin predictor.Bimodal.Update
//bplint:twinmap update=predictupdate
//bplint:hotpath fused-sweep bimodal lane; bit-identity pinned by TestStepBatchEquivalence
func (b *Bimodal) StepBatch(pcs []uint64, takens []bool, measuredFrom int) int64 {
	var miss int64
	pht, mask := b.pht, b.mask
	for i, pc := range pcs {
		taken := takens[i]
		pred := pht.PredictUpdate(int(pcIndex(pc, mask)), taken)
		if pred != taken && i >= measuredFrom {
			miss++
		}
	}
	return miss
}

// SizeBytes implements Predictor.
func (b *Bimodal) SizeBytes() int { return b.pht.SizeBytes() }

// Name implements Predictor.
func (b *Bimodal) Name() string { return b.name }

// Entries returns the PHT size, exposed for configuration reporting.
func (b *Bimodal) Entries() int { return b.pht.Len() }

// LargestTable implements DelayFootprint.
func (b *Bimodal) LargestTable() (int, int) { return b.pht.SizeBytes(), b.pht.Len() }
