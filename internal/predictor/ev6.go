package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// EV6 models the Alpha 21264 tournament predictor described in §2.1 of the
// paper: a global component (4K-entry PHT indexed by 12 bits of global
// history), a local component (1K 10-bit local histories indexing a 1K-entry
// PHT of 3-bit counters), and a 4K-entry chooser PHT indexed by global
// history that picks between them. The 21264 hides this predictor's latency
// by overriding a line predictor, paying a bubble on disagreement — the
// industrial motivation for the paper.
type EV6 struct {
	global  *counter.Array2
	local   *counter.ArrayN
	lhist   *history.Local
	chooser *counter.Array2
	ghr     *history.Global
	gMask   uint64
	cMask   uint64
	name    string
}

// EV6Config sizes an EV6-style tournament predictor. The zero value is
// replaced by the 21264 shipping configuration.
type EV6Config struct {
	GlobalEntries  int  // global PHT entries (power of two)
	LocalEntries   int  // local history registers (power of two)
	LocalBits      uint // local history length = log2(local PHT entries)
	ChooserEntries int  // chooser PHT entries (power of two)
}

// Alpha21264 is the shipping EV6 configuration from Kessler (IEEE Micro 1999).
var Alpha21264 = EV6Config{
	GlobalEntries:  4096,
	LocalEntries:   1024,
	LocalBits:      10,
	ChooserEntries: 4096,
}

// NewEV6 returns a tournament predictor with the given configuration.
func NewEV6(cfg EV6Config) *EV6 {
	if cfg == (EV6Config{}) {
		cfg = Alpha21264
	}
	e := &EV6{
		global:  counter.NewArray2(cfg.GlobalEntries, counter.WeaklyNotTaken),
		local:   counter.NewArrayN(1<<cfg.LocalBits, 3, 3),
		lhist:   history.NewLocal(cfg.LocalEntries, cfg.LocalBits),
		chooser: counter.NewArray2(cfg.ChooserEntries, counter.WeaklyTaken),
		ghr:     history.NewGlobal(log2(cfg.GlobalEntries)),
		gMask:   uint64(cfg.GlobalEntries - 1),
		cMask:   uint64(cfg.ChooserEntries - 1),
	}
	e.name = fmt.Sprintf("ev6-%s", budgetName(e.SizeBytes()))
	return e
}

// NewEV6FromBudget scales the 21264 configuration up uniformly until it
// fills budgetBytes.
func NewEV6FromBudget(budgetBytes int) *EV6 {
	cfg := Alpha21264
	for {
		next := EV6Config{
			GlobalEntries:  cfg.GlobalEntries * 2,
			LocalEntries:   cfg.LocalEntries * 2,
			LocalBits:      cfg.LocalBits + 1,
			ChooserEntries: cfg.ChooserEntries * 2,
		}
		if next.LocalBits > 16 || sizeOfEV6(next) > budgetBytes {
			break
		}
		cfg = next
	}
	// Shrink below the 21264 baseline for tiny budgets.
	for sizeOfEV6(cfg) > budgetBytes && cfg.GlobalEntries > 64 && cfg.LocalBits > 4 {
		cfg = EV6Config{
			GlobalEntries:  cfg.GlobalEntries / 2,
			LocalEntries:   cfg.LocalEntries / 2,
			LocalBits:      cfg.LocalBits - 1,
			ChooserEntries: cfg.ChooserEntries / 2,
		}
	}
	return NewEV6(cfg)
}

func sizeOfEV6(cfg EV6Config) int {
	globalBytes := cfg.GlobalEntries * 2 / 8
	localPHTBytes := (1 << cfg.LocalBits) * 3 / 8
	lhistBytes := cfg.LocalEntries * int(cfg.LocalBits) / 8
	chooserBytes := cfg.ChooserEntries * 2 / 8
	return globalBytes + localPHTBytes + lhistBytes + chooserBytes
}

func (e *EV6) gIndex() int { return int(e.ghr.Value() & e.gMask) }
func (e *EV6) cIndex() int { return int(e.ghr.Value() & e.cMask) }

// Predict implements Predictor.
func (e *EV6) Predict(pc uint64) bool {
	if e.chooser.Taken(e.cIndex()) {
		return e.global.Taken(e.gIndex())
	}
	return e.local.Taken(int(e.lhist.Get(pc)))
}

// Update implements Predictor. Both components always train; the chooser
// trains toward whichever component was correct when exactly one was.
func (e *EV6) Update(pc uint64, taken bool) {
	gIdx, cIdx := e.gIndex(), e.cIndex()
	lIdx := int(e.lhist.Get(pc))
	gCorrect := e.global.Taken(gIdx) == taken
	lCorrect := e.local.Taken(lIdx) == taken
	e.global.Update(gIdx, taken)
	e.local.Update(lIdx, taken)
	if gCorrect != lCorrect {
		e.chooser.Update(cIdx, gCorrect)
	}
	e.lhist.Push(pc, taken)
	e.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (e *EV6) SizeBytes() int {
	return e.global.SizeBytes() + e.local.SizeBytes() + e.lhist.SizeBytes() +
		e.chooser.SizeBytes() + e.ghr.SizeBytes()
}

// Name implements Predictor.
func (e *EV6) Name() string { return e.name }

// LargestTable implements DelayFootprint: the global PHT and chooser are the
// largest arrays in every EV6 configuration generated here.
func (e *EV6) LargestTable() (int, int) { return e.global.SizeBytes(), e.global.Len() }
