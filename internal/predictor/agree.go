package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// Agree implements the agree predictor of Sprangle, Chappell, Alsup and
// Patt (ISCA 1997): each static branch carries a bias bit fixed at its
// first execution, and the history-indexed PHT predicts *agreement* with
// that bias instead of direction. Two branches aliasing in the PHT usually
// both agree with their own biases, so interference becomes constructive —
// the same aliasing battle bi-mode and YAGS fight with different weapons.
type Agree struct {
	agree   *counter.Array2
	bias    *counter.ArrayN // 1-bit bias per entry
	seen    *counter.ArrayN // 1-bit first-encounter flag
	ghr     *history.Global
	phtMask uint64
	bMask   uint64
	name    string
}

// NewAgree returns an agree predictor with the given agreement-PHT and
// bias-table entry counts (powers of two).
func NewAgree(phtEntries, biasEntries int) *Agree {
	if phtEntries <= 0 || phtEntries&(phtEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: agree PHT entries %d not a power of two", phtEntries))
	}
	if biasEntries <= 0 || biasEntries&(biasEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: agree bias entries %d not a power of two", biasEntries))
	}
	a := &Agree{
		// Initialize toward "agree": the whole point of the scheme.
		agree:   counter.NewArray2(phtEntries, counter.WeaklyTaken),
		bias:    counter.NewArrayN(biasEntries, 1, 0),
		seen:    counter.NewArrayN(biasEntries, 1, 0),
		ghr:     history.NewGlobal(log2(phtEntries)),
		phtMask: uint64(phtEntries - 1),
		bMask:   uint64(biasEntries - 1),
	}
	a.name = fmt.Sprintf("agree-%s", budgetName(a.SizeBytes()))
	return a
}

// NewAgreeFromBudget gives most of budgetBytes to the agreement PHT with a
// 4K-entry bias table (the original stores bias bits alongside BTB
// entries).
func NewAgreeFromBudget(budgetBytes int) *Agree {
	pht := pow2Entries(budgetBytes-1024, 2, 16)
	return NewAgree(pht, 4096)
}

func (a *Agree) phtIndex(pc uint64) int {
	return int((a.ghr.Value() ^ (pc >> 2)) & a.phtMask)
}

func (a *Agree) biasIndex(pc uint64) int { return int((pc >> 2) & a.bMask) }

// Predict implements Predictor.
func (a *Agree) Predict(pc uint64) bool {
	bi := a.biasIndex(pc)
	if a.seen.Get(bi) == 0 {
		// First encounter: static taken (backward-taken heuristic is
		// unavailable without targets).
		return true
	}
	bias := a.bias.Get(bi) == 1
	agrees := a.agree.Taken(a.phtIndex(pc))
	return agrees == bias
}

// Update implements Predictor. The bias bit latches the first outcome; the
// agreement counter trains toward whether the outcome agreed with the bias.
func (a *Agree) Update(pc uint64, taken bool) {
	bi := a.biasIndex(pc)
	if a.seen.Get(bi) == 0 {
		a.seen.Set(bi, 1)
		if taken {
			a.bias.Set(bi, 1)
		}
	}
	bias := a.bias.Get(bi) == 1
	a.agree.Update(a.phtIndex(pc), taken == bias)
	a.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (a *Agree) SizeBytes() int {
	return a.agree.SizeBytes() + a.bias.SizeBytes() + a.seen.SizeBytes() +
		a.ghr.SizeBytes()
}

// Name implements Predictor.
func (a *Agree) Name() string { return a.name }

// LargestTable implements DelayFootprint.
func (a *Agree) LargestTable() (int, int) { return a.agree.SizeBytes(), a.agree.Len() }
