package predictor

import (
	"testing"

	"branchsim/internal/rng"
)

// all returns one instance of every predictor at a 16KB-ish budget.
func all() []Predictor {
	return []Predictor{
		Taken{},
		NotTaken{},
		NewBimodalFromBudget(16 << 10),
		NewGShareFromBudget(16 << 10),
		NewGSelectFromBudget(16 << 10),
		NewBiModeFromBudget(16 << 10),
		NewLocalFromBudget(16 << 10),
		NewEV6FromBudget(16 << 10),
		NewGSkew2BcFromBudget(16 << 10),
		NewMultiComponentFromBudget(16 << 10),
		NewPerceptronFromBudget(16 << 10),
		NewYAGSFromBudget(16 << 10),
		NewAgreeFromBudget(16 << 10),
	}
}

// train runs a synthetic branch stream through p and returns the
// misprediction rate over the last half.
func train(p Predictor, next func(i int) (pc uint64, taken bool), n int) float64 {
	misses, measured := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := next(i)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/2 {
			measured++
			if pred != taken {
				misses++
			}
		}
	}
	return float64(misses) / float64(measured)
}

func TestAllLearnAlwaysTaken(t *testing.T) {
	for _, p := range all() {
		if _, ok := p.(NotTaken); ok {
			continue
		}
		rate := train(p, func(int) (uint64, bool) { return 0x1000, true }, 1000)
		if rate > 0.01 {
			t.Errorf("%s: %.3f misprediction on always-taken branch", p.Name(), rate)
		}
	}
}

func TestAllLearnAlternating(t *testing.T) {
	// T,N,T,N is trivially captured by one bit of any history; the
	// bimodal and static predictors are exempt (they cannot).
	for _, p := range all() {
		switch p.(type) {
		case Taken, NotTaken, *Bimodal:
			continue
		}
		rate := train(p, func(i int) (uint64, bool) { return 0x1000, i%2 == 0 }, 4000)
		if rate > 0.05 {
			t.Errorf("%s: %.3f misprediction on alternating branch", p.Name(), rate)
		}
	}
}

func TestAllLearnShortLoop(t *testing.T) {
	// A loop taken 4 of 5 iterations; period 5 fits in every dynamic
	// predictor's history.
	for _, p := range all() {
		switch p.(type) {
		case Taken, NotTaken, *Bimodal:
			continue
		}
		rate := train(p, func(i int) (uint64, bool) { return 0x2000, i%5 != 4 }, 10000)
		if rate > 0.05 {
			t.Errorf("%s: %.3f misprediction on period-5 loop", p.Name(), rate)
		}
	}
}

func TestGShareLearnsCorrelation(t *testing.T) {
	// Branch B copies the previous outcome of branch A; a global-history
	// predictor must learn it, a bimodal cannot.
	r := rng.NewXoshiro256(1)
	var lastA bool
	stream := func(i int) (uint64, bool) {
		if i%2 == 0 {
			lastA = r.Bool(0.5)
			return 0x1000, lastA
		}
		return 0x2000, lastA
	}
	g := NewGShare(4096, 0)
	misses, measured := 0, 0
	for i := 0; i < 20000; i++ {
		pc, taken := stream(i)
		pred := g.Predict(pc)
		g.Update(pc, taken)
		if i >= 10000 && pc == 0x2000 {
			measured++
			if pred != taken {
				misses++
			}
		}
	}
	if rate := float64(misses) / float64(measured); rate > 0.02 {
		t.Fatalf("gshare failed to learn copy correlation: %.3f", rate)
	}
}

func TestPerceptronLearnsLongCorrelation(t *testing.T) {
	// Outcome copies the branch outcome 20 branches back — beyond a
	// 12-bit gshare history, within a 34-bit perceptron history.
	r := rng.NewXoshiro256(2)
	var hist []bool
	stream := func(i int) (uint64, bool) {
		pc := uint64(0x1000 + (i%25)*4)
		var taken bool
		if i%25 == 24 {
			pc = 0x8000
			taken = hist[len(hist)-20]
		} else {
			taken = r.Bool(0.5)
		}
		hist = append(hist, taken)
		return pc, taken
	}
	p := NewPerceptron(PerceptronConfig{Entries: 128, GlobalBits: 34})
	g := NewGShare(4096, 12)
	var pMiss, gMiss, measured int
	for i := 0; i < 120000; i++ {
		pc, taken := stream(i)
		pp := p.Predict(pc)
		gp := g.Predict(pc)
		p.Update(pc, taken)
		g.Update(pc, taken)
		if i >= 60000 && pc == 0x8000 {
			measured++
			if pp != taken {
				pMiss++
			}
			if gp != taken {
				gMiss++
			}
		}
	}
	pRate := float64(pMiss) / float64(measured)
	gRate := float64(gMiss) / float64(measured)
	if pRate > 0.15 {
		t.Fatalf("perceptron failed long correlation: %.3f", pRate)
	}
	if gRate < 2*pRate {
		t.Fatalf("short-history gshare unexpectedly matched perceptron: %.3f vs %.3f", gRate, pRate)
	}
}

func TestPerceptronCannotLearnXor(t *testing.T) {
	// Outcome = xor of the last two outcomes of two random branches:
	// not linearly separable, so the perceptron must do poorly while a
	// pattern table learns it.
	r := rng.NewXoshiro256(3)
	var a, b bool
	stream := func(i int) (uint64, bool) {
		switch i % 3 {
		case 0:
			a = r.Bool(0.5)
			return 0x1000, a
		case 1:
			b = r.Bool(0.5)
			return 0x2000, b
		default:
			return 0x3000, a != b
		}
	}
	p := NewPerceptron(PerceptronConfig{Entries: 128, GlobalBits: 16})
	g := NewGShare(4096, 0)
	var pMiss, gMiss, measured int
	for i := 0; i < 60000; i++ {
		pc, taken := stream(i)
		pp := p.Predict(pc)
		gp := g.Predict(pc)
		p.Update(pc, taken)
		g.Update(pc, taken)
		if i >= 30000 && pc == 0x3000 {
			measured++
			if pp != taken {
				pMiss++
			}
			if gp != taken {
				gMiss++
			}
		}
	}
	pRate := float64(pMiss) / float64(measured)
	gRate := float64(gMiss) / float64(measured)
	if gRate > 0.05 {
		t.Fatalf("gshare failed XOR: %.3f", gRate)
	}
	if pRate < 0.25 {
		t.Fatalf("perceptron learned XOR (%.3f) — it should not be able to", pRate)
	}
}

func TestLocalLearnsPerBranchPattern(t *testing.T) {
	// Two interleaved branches with different periodic patterns; local
	// history separates them even though global history interleaves.
	r := rng.NewXoshiro256(4)
	var i1, i2 int
	// Note the PCs: they must not alias in the 1024-entry local history
	// table ((pc>>2) mod 1024 must differ).
	stream := func(i int) (uint64, bool) {
		if r.Bool(0.5) {
			i1++
			return 0x1004, i1%3 != 0
		}
		i2++
		return 0x2008, i2%4 != 0
	}
	l := NewLocal(1024, 10, 2)
	rate := train(l, stream, 40000)
	if rate > 0.03 {
		t.Fatalf("local predictor failed per-branch patterns: %.3f", rate)
	}
}

func TestSizeBytesWithinBudget(t *testing.T) {
	for _, budget := range []int{2 << 10, 16 << 10, 64 << 10, 512 << 10} {
		for name, build := range map[string]func(int) Predictor{
			"bimodal":    func(b int) Predictor { return NewBimodalFromBudget(b) },
			"gshare":     func(b int) Predictor { return NewGShareFromBudget(b) },
			"gselect":    func(b int) Predictor { return NewGSelectFromBudget(b) },
			"bimode":     func(b int) Predictor { return NewBiModeFromBudget(b) },
			"local":      func(b int) Predictor { return NewLocalFromBudget(b) },
			"2bcgskew":   func(b int) Predictor { return NewGSkew2BcFromBudget(b) },
			"perceptron": func(b int) Predictor { return NewPerceptronFromBudget(b) },
			"yags":       func(b int) Predictor { return NewYAGSFromBudget(b) },
			"agree":      func(b int) Predictor { return NewAgreeFromBudget(b) },
		} {
			p := build(budget)
			size := p.SizeBytes()
			// Power-of-two tables: realized size within (budget/2,
			// ~1.1*budget].
			if size > budget+budget/8 || size <= budget/4 {
				t.Errorf("%s at %d: realized %d bytes", name, budget, size)
			}
		}
		// The multi-component hybrid intentionally overshoots (the
		// paper's MC budgets are odd sizes); just bound it.
		mc := NewMultiComponentFromBudget(budget)
		if s := mc.SizeBytes(); s < budget/2 || s > 2*budget {
			t.Errorf("multicomponent at %d: realized %d bytes", budget, s)
		}
	}
}

func TestBudgetMonotoneAccuracy(t *testing.T) {
	// On an alias-heavy stream, a bigger gshare must not be
	// (significantly) worse.
	stream := func() func(i int) (uint64, bool) {
		r := rng.NewXoshiro256(9)
		hist := uint64(0)
		return func(i int) (uint64, bool) {
			pc := uint64(0x1000 + (i%512)*4)
			taken := hist>>3&1 == 1
			if r.Bool(0.1) {
				taken = !taken
			}
			hist = hist<<1 | b2u(taken)
			return pc, taken
		}
	}
	small := train(NewGShare(1<<10, 0), stream(), 100000)
	large := train(NewGShare(1<<16, 0), stream(), 100000)
	if large > small+0.01 {
		t.Fatalf("bigger gshare worse: %.3f vs %.3f", large, small)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestDeterminism(t *testing.T) {
	for _, mk := range []func() Predictor{
		func() Predictor { return NewGShareFromBudget(8 << 10) },
		func() Predictor { return NewGSkew2BcFromBudget(8 << 10) },
		func() Predictor { return NewMultiComponentFromBudget(8 << 10) },
		func() Predictor { return NewPerceptronFromBudget(8 << 10) },
		func() Predictor { return NewEV6FromBudget(8 << 10) },
	} {
		a, b := mk(), mk()
		r := rng.NewXoshiro256(5)
		for i := 0; i < 5000; i++ {
			pc := uint64(0x1000 + r.Intn(256)*4)
			taken := r.Bool(0.6)
			if a.Predict(pc) != b.Predict(pc) {
				t.Fatalf("%s: divergent predictions at %d", a.Name(), i)
			}
			a.Update(pc, taken)
			b.Update(pc, taken)
		}
	}
}

func TestNamesAndSizes(t *testing.T) {
	for _, p := range all() {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
		if p.SizeBytes() < 0 {
			t.Errorf("%s: negative size", p.Name())
		}
	}
}

func TestDelayFootprints(t *testing.T) {
	for _, p := range all() {
		df, ok := p.(DelayFootprint)
		if !ok {
			continue
		}
		bytes, entries := df.LargestTable()
		if bytes <= 0 || entries <= 0 {
			t.Errorf("%s: degenerate footprint %d/%d", p.Name(), bytes, entries)
		}
		if bytes > p.SizeBytes() {
			t.Errorf("%s: largest table %d exceeds total %d", p.Name(), bytes, p.SizeBytes())
		}
	}
}

func TestInvalidConstructions(t *testing.T) {
	cases := []func(){
		func() { NewBimodal(100) },
		func() { NewGShare(100, 0) },
		func() { NewGSelect(0, 5) },
		func() { NewBiMode(100, 128) },
		func() { NewGSkew2Bc(100) },
		func() { NewMultiComponent(MCConfig{ComponentEntries: 128}) },
		func() { NewPerceptron(PerceptronConfig{Entries: 0, GlobalBits: 10}) },
		func() { NewPerceptron(PerceptronConfig{Entries: 10, GlobalBits: 0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEV6ChooserMigration(t *testing.T) {
	// A branch with a local pattern that global history cannot see
	// (interleaved with random branches) must migrate to the local
	// component.
	e := NewEV6(Alpha21264)
	r := rng.NewXoshiro256(6)
	cnt := 0
	rate := train(e, func(i int) (uint64, bool) {
		if i%2 == 0 {
			return uint64(0x4000 + r.Intn(64)*4), r.Bool(0.5)
		}
		cnt++
		return 0x1000, cnt%2 == 0
	}, 40000)
	// Half the stream is pure noise (50% floor on those); the patterned
	// branch should be nearly perfect, so overall ≈ 25%.
	if rate > 0.30 {
		t.Fatalf("EV6 failed to exploit local component: %.3f", rate)
	}
}

func TestYAGSExceptionCaching(t *testing.T) {
	// A strongly taken-biased branch with one history context in which it
	// is always not taken: the choice PHT learns the bias, the NT-cache
	// learns the exception.
	y := NewYAGS(1024, 1024)
	r := rng.NewXoshiro256(12)
	var last bool
	rate := train(y, func(i int) (uint64, bool) {
		if i%2 == 0 {
			last = r.Bool(0.5)
			return 0x2000, last
		}
		// Taken unless the previous branch was taken.
		return 0x1000, !last
	}, 40000)
	// The 0x2000 branch is pure noise (50%); 0x1000 must be ~perfect.
	if rate > 0.28 {
		t.Fatalf("YAGS failed exception pattern: %.3f", rate)
	}
}

func TestAgreeBiasLatching(t *testing.T) {
	a := NewAgree(1024, 1024)
	// First outcome not-taken latches bias; thereafter all not-taken.
	rate := train(a, func(i int) (uint64, bool) { return 0x1004, false }, 2000)
	if rate > 0.01 {
		t.Fatalf("agree failed steady branch: %.3f", rate)
	}
}

func TestAgreeConstructiveAliasing(t *testing.T) {
	// Two opposite-biased branches sharing PHT entries: a plain gshare
	// with a tiny table suffers destructive aliasing; agree does not,
	// because both branches "agree" with their own biases.
	mkStream := func() func(i int) (uint64, bool) {
		return func(i int) (uint64, bool) {
			if i%2 == 0 {
				return 0x1004, true
			}
			return 0x1008, false
		}
	}
	ag := train(NewAgree(16, 1024), mkStream(), 10000)
	if ag > 0.02 {
		t.Fatalf("agree suffered aliasing: %.3f", ag)
	}
}
