package predictor

import (
	"math/rand"
	"testing"
)

// stepBatchKinds are the BatchStepper implementations under test, each built
// twice so the fused and scalar protocols drive identical fresh state.
var stepBatchKinds = []struct {
	name string
	mk   func() Predictor
}{
	{"gshare", func() Predictor { return NewGShareFromBudget(8 << 10) }},
	{"gshare-short-history", func() Predictor { return NewGShare(1<<12, 5) }},
	{"bimodal", func() Predictor { return NewBimodalFromBudget(8 << 10) }},
	{"bimode", func() Predictor { return NewBiModeFromBudget(8 << 10) }},
}

// branchStream synthesizes a deterministic branch stream with enough
// structure (loops, correlated and biased branches) that every counter state
// and both bi-mode banks are exercised.
func branchStream(n int) (pcs []uint64, takens []bool) {
	rng := rand.New(rand.NewSource(42))
	pcs = make([]uint64, n)
	takens = make([]bool, n)
	hist := false
	for i := range pcs {
		pc := uint64(0x1000 + 4*(rng.Intn(300)))
		var taken bool
		switch pc % 3 {
		case 0:
			taken = i%7 != 0 // loop-like: mostly taken
		case 1:
			taken = hist // correlated with the previous outcome
		default:
			taken = rng.Intn(4) == 0 // biased not-taken with noise
		}
		pcs[i], takens[i], hist = pc, taken, taken
	}
	return pcs, takens
}

// TestStepBatchEquivalence pins every BatchStepper against the scalar
// Predict/Update protocol: the same stream, chopped into uneven batches
// with a mid-batch warm-up boundary, must produce the same mispredict
// counts and leave the predictor in the same state — checked by continuing
// both instances scalar-only afterwards and demanding identical
// predictions.
func TestStepBatchEquivalence(t *testing.T) {
	for _, k := range stepBatchKinds {
		t.Run(k.name, func(t *testing.T) {
			fused, scalar := k.mk(), k.mk()
			stepper, ok := fused.(BatchStepper)
			if !ok {
				t.Fatalf("%s does not implement BatchStepper", fused.Name())
			}
			pcs, takens := branchStream(20_000)
			batchSizes := []int{1, 3, 256, 17, 100, 255, 64}
			var fusedMiss, scalarMiss int64
			for off, bi := 0, 0; off < len(pcs); bi++ {
				n := batchSizes[bi%len(batchSizes)]
				if off+n > len(pcs) {
					n = len(pcs) - off
				}
				// Alternate the measured boundary through every regime:
				// fully measured, fully warm-up, split mid-batch.
				from := []int{0, n, n / 2}[bi%3]
				fusedMiss += stepper.StepBatch(pcs[off:off+n], takens[off:off+n], from)
				for i := 0; i < n; i++ {
					pred := scalar.Predict(pcs[off+i])
					scalar.Update(pcs[off+i], takens[off+i])
					if i >= from && pred != takens[off+i] {
						scalarMiss++
					}
				}
				off += n
			}
			if fusedMiss != scalarMiss {
				t.Fatalf("mispredicts diverge: StepBatch %d, scalar %d", fusedMiss, scalarMiss)
			}
			if fusedMiss == 0 {
				t.Fatal("degenerate stream: no mispredicts measured")
			}
			// State equivalence: both instances must now predict identically.
			more, moreTaken := branchStream(5_000)
			for i := range more {
				fp, sp := fused.Predict(more[i]), scalar.Predict(more[i])
				if fp != sp {
					t.Fatalf("post-batch state diverges at branch %d: fused %v, scalar %v", i, fp, sp)
				}
				fused.Update(more[i], moreTaken[i])
				scalar.Update(more[i], moreTaken[i])
			}
		})
	}
}
