package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// Local is a two-level predictor with per-branch (local) history in the style
// of Yeh and Patt's PAg: a first-level table of per-branch history registers
// indexed by PC selects a second-level PHT entry indexed by that history.
// Local predictors capture short repeating per-branch patterns (loop trip
// counts, alternating branches) that global predictors see only through the
// noise of interleaved branches.
type Local struct {
	hist *history.Local
	pht  *counter.ArrayN
	name string
}

// NewLocal returns a local two-level predictor with histEntries local
// history registers of histBits bits, and a 2^histBits-entry PHT of
// counterBits-bit counters. The Alpha 21264 local predictor is
// NewLocal(1024, 10, 3).
func NewLocal(histEntries int, histBits uint, counterBits uint) *Local {
	if histBits == 0 || histBits > 20 {
		panic(fmt.Sprintf("predictor: local history bits %d out of range", histBits))
	}
	l := &Local{
		hist: history.NewLocal(histEntries, histBits),
		pht:  counter.NewArrayN(1<<histBits, counterBits, uint8(1)<<(counterBits-1)-1),
	}
	l.name = fmt.Sprintf("local-%s", budgetName(l.SizeBytes()))
	return l
}

// NewLocalFromBudget splits budgetBytes roughly evenly between the history
// table and the PHT, with 10-bit histories scaled up as budget allows.
func NewLocalFromBudget(budgetBytes int) *Local {
	histBits := uint(10)
	for histBits < 16 && (1<<(histBits+1))*2/8 <= budgetBytes/2 {
		histBits++
	}
	phtBytes := (1 << histBits) * 2 / 8
	rem := budgetBytes - phtBytes
	if rem < 16 {
		rem = 16
	}
	histEntries := pow2Entries(rem, int(histBits), 16)
	return NewLocal(histEntries, histBits, 2)
}

// Predict implements Predictor.
func (l *Local) Predict(pc uint64) bool {
	return l.pht.Taken(int(l.hist.Get(pc)))
}

// Update implements Predictor.
func (l *Local) Update(pc uint64, taken bool) {
	l.pht.Update(int(l.hist.Get(pc)), taken)
	l.hist.Push(pc, taken)
}

// SizeBytes implements Predictor.
func (l *Local) SizeBytes() int { return l.hist.SizeBytes() + l.pht.SizeBytes() }

// Name implements Predictor.
func (l *Local) Name() string { return l.name }

// LargestTable implements DelayFootprint. The local predictor reads two
// tables in series; the PHT is the larger of the two in every configuration
// generated here.
func (l *Local) LargestTable() (int, int) {
	if l.hist.SizeBytes() > l.pht.SizeBytes() {
		return l.hist.SizeBytes(), l.hist.Entries()
	}
	return l.pht.SizeBytes(), l.pht.Len()
}
