package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// YAGS implements the "yet another global scheme" predictor of Eden and
// Mudge (MICRO-31, 1998), another point in the aliasing-reduction design
// space the paper's Figure 1 predictors come from: a PC-indexed choice PHT
// captures per-branch bias, and two small tagged caches store only the
// *exceptions* — the history contexts in which a branch deviates from its
// bias — so the expensive history-indexed storage is spent where it pays.
type YAGS struct {
	choice  *counter.Array2
	tCache  *yagsCache // exceptions for not-taken-biased branches
	ntCache *yagsCache // exceptions for taken-biased branches
	ghr     *history.Global
	chMask  uint64
	name    string
}

// yagsCache is a direction cache: 2-bit counters with partial tags.
type yagsCache struct {
	ctr     *counter.Array2
	tags    []uint8
	mask    uint64
	tagBits uint
}

func newYagsCache(entries int, init uint32) *yagsCache {
	return &yagsCache{
		ctr:     counter.NewArray2(entries, init),
		tags:    make([]uint8, entries),
		mask:    uint64(entries - 1),
		tagBits: 8,
	}
}

func (c *yagsCache) index(pc, hist uint64) int { return int((hist ^ (pc >> 2)) & c.mask) }

func (c *yagsCache) tag(pc uint64) uint8 { return uint8(pc>>2) ^ uint8(pc>>10) }

// lookup returns the cached direction for (pc, hist) and whether the tag
// matched.
func (c *yagsCache) lookup(pc, hist uint64) (taken, hit bool) {
	i := c.index(pc, hist)
	if c.tags[i] != c.tag(pc) {
		return false, false
	}
	return c.ctr.Taken(i), true
}

// train updates a hit entry, and insert allocates (overwriting) an entry.
func (c *yagsCache) train(pc, hist uint64, taken bool) {
	c.ctr.Update(c.index(pc, hist), taken)
}

func (c *yagsCache) insert(pc, hist uint64, taken bool) {
	i := c.index(pc, hist)
	c.tags[i] = c.tag(pc)
	if taken {
		c.ctr.Set(i, counter.WeaklyTaken)
	} else {
		c.ctr.Set(i, counter.WeaklyNotTaken)
	}
}

func (c *yagsCache) sizeBytes() int {
	return c.ctr.SizeBytes() + len(c.tags)*int(c.tagBits)/8
}

// NewYAGS returns a YAGS predictor with the given choice PHT and per-cache
// entry counts (powers of two).
func NewYAGS(choiceEntries, cacheEntries int) *YAGS {
	if choiceEntries <= 0 || choiceEntries&(choiceEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: yags choice entries %d not a power of two", choiceEntries))
	}
	if cacheEntries <= 0 || cacheEntries&(cacheEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: yags cache entries %d not a power of two", cacheEntries))
	}
	y := &YAGS{
		choice:  counter.NewArray2(choiceEntries, counter.WeaklyTaken),
		tCache:  newYagsCache(cacheEntries, counter.WeaklyTaken),
		ntCache: newYagsCache(cacheEntries, counter.WeaklyNotTaken),
		ghr:     history.NewGlobal(log2(cacheEntries)),
		chMask:  uint64(choiceEntries - 1),
	}
	y.name = fmt.Sprintf("yags-%s", budgetName(y.SizeBytes()))
	return y
}

// NewYAGSFromBudget splits budgetBytes between the choice PHT (about a
// third) and the two tagged caches.
func NewYAGSFromBudget(budgetBytes int) *YAGS {
	// A cache entry costs 2+8 bits; two caches.
	cache := pow2Entries(budgetBytes/3, 10, 16)
	choice := pow2Entries(budgetBytes/3, 2, 16)
	return NewYAGS(choice, cache)
}

// components evaluates the choice direction and the exception lookup.
func (y *YAGS) components(pc uint64) (choiceIdx int, bias bool, excTaken, excHit bool) {
	choiceIdx = int(pcIndex(pc, y.chMask))
	bias = y.choice.Taken(choiceIdx)
	hist := y.ghr.Value()
	if bias {
		excTaken, excHit = y.ntCache.lookup(pc, hist)
	} else {
		excTaken, excHit = y.tCache.lookup(pc, hist)
	}
	return choiceIdx, bias, excTaken, excHit
}

// Predict implements Predictor.
func (y *YAGS) Predict(pc uint64) bool {
	_, bias, excTaken, excHit := y.components(pc)
	if excHit {
		return excTaken
	}
	return bias
}

// Update implements Predictor, following the published policy: the cache
// opposite the bias trains on a hit and allocates when the bias
// mispredicts; the choice PHT trains as a bimodal except when an exception
// hit correctly overrode it.
func (y *YAGS) Update(pc uint64, taken bool) {
	choiceIdx, bias, excTaken, excHit := y.components(pc)
	hist := y.ghr.Value()
	cache := y.ntCache
	if !bias {
		cache = y.tCache
	}
	if excHit {
		cache.train(pc, hist, taken)
	} else if taken != bias {
		cache.insert(pc, hist, taken)
	}
	overrodeCorrectly := excHit && excTaken == taken && excTaken != bias
	if !overrodeCorrectly {
		y.choice.Update(choiceIdx, taken)
	}
	y.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (y *YAGS) SizeBytes() int {
	return y.choice.SizeBytes() + y.tCache.sizeBytes() + y.ntCache.sizeBytes() +
		y.ghr.SizeBytes()
}

// Name implements Predictor.
func (y *YAGS) Name() string { return y.name }

// LargestTable implements DelayFootprint: the tagged caches dominate.
func (y *YAGS) LargestTable() (int, int) {
	return y.tCache.sizeBytes(), y.tCache.ctr.Len()
}
