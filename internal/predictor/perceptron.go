package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// Perceptron implements the perceptron predictor of Jiménez and Lin (HPCA
// 2001 / ACM TOCS 2002) in the global-plus-local configuration the paper
// simulates (§4.1.1). Each table entry is a perceptron: a bias weight plus
// one signed weight per history bit. The prediction is the sign of the dot
// product of the weights with the history (outcomes as ±1); training bumps
// each weight toward agreement whenever the prediction was wrong or the
// output magnitude was below the threshold θ = ⌊1.93·h + 14⌋.
//
// Its strength is history length: h can far exceed log2(table entries), so
// it captures correlations dozens of branches back that PHT-indexed schemes
// cannot reach. Its weakness — central to the paper — is latency: the dot
// product is an adder tree as deep as a multiplier (§2.2), which we model as
// one extra cycle on top of the table access under the paper's optimistic
// assumption (§4.1.5).
type Perceptron struct {
	weights *counter.SignedArray // n × (1+hg+hl), row-major
	lhist   *history.Local
	ghr     *history.Global
	n       int
	hg      uint
	hl      uint
	theta   int
	name    string

	// Predict memoizes its dot product for the Update that follows: with
	// the strict Predict-then-Update alternation of the functional
	// simulator the recomputation in Update is pure waste (it reads
	// exactly the state Predict read), and it is the dominant cost of the
	// predictor. The memo is only reused when the PC matches and no
	// Update ran in between — weights and histories mutate only in
	// Update, which always invalidates — so out-of-order drivers (the
	// pipeline model retires updates long after fetch-time predictions)
	// recompute exactly as before. Hardware reads the adder tree once
	// and latches y; this is that latch.
	memoPC    uint64
	memoY     int
	memoBase  int
	memoValid bool
}

// PerceptronConfig sizes a perceptron predictor.
type PerceptronConfig struct {
	Entries     int  // number of perceptrons
	GlobalBits  uint // global history length
	LocalBits   uint // local history length (0 disables the local part)
	LocalTables int  // local history registers (power of two), if LocalBits > 0
	WeightBits  uint // signed weight width, 8 in the published design
}

// NewPerceptron returns a perceptron predictor with the given configuration.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Entries <= 0 {
		panic("predictor: perceptron needs at least one entry")
	}
	if cfg.WeightBits == 0 {
		cfg.WeightBits = 8
	}
	if cfg.GlobalBits == 0 || cfg.GlobalBits > history.MaxGlobalBits {
		panic(fmt.Sprintf("predictor: perceptron global history %d out of range", cfg.GlobalBits))
	}
	h := cfg.GlobalBits + cfg.LocalBits
	p := &Perceptron{
		weights: counter.NewSignedArray(cfg.Entries*int(1+h), cfg.WeightBits),
		ghr:     history.NewGlobal(cfg.GlobalBits),
		n:       cfg.Entries,
		hg:      cfg.GlobalBits,
		hl:      cfg.LocalBits,
		theta:   int(1.93*float64(h)) + 14,
	}
	if cfg.LocalBits > 0 {
		if cfg.LocalTables == 0 {
			cfg.LocalTables = 1024
		}
		p.lhist = history.NewLocal(cfg.LocalTables, cfg.LocalBits)
	}
	p.name = fmt.Sprintf("perceptron-%s", budgetName(p.SizeBytes()))
	return p
}

// NewPerceptronFromBudget configures history lengths the way the published
// budget sweeps do — global history grows with budget up to the high 50s,
// with a 10-bit local component — and then fits as many perceptrons as the
// remaining budget allows.
func NewPerceptronFromBudget(budgetBytes int) *Perceptron {
	kb := budgetBytes / 1024
	var hg uint
	switch {
	case kb < 2:
		hg = 12
	case kb < 4:
		hg = 18
	case kb < 8:
		hg = 24
	case kb < 16:
		hg = 28
	case kb < 32:
		hg = 34
	case kb < 64:
		hg = 36
	case kb < 128:
		hg = 40
	case kb < 256:
		hg = 44
	case kb < 512:
		hg = 48
	default:
		hg = 52
	}
	var hl uint = 10
	if kb < 4 {
		hl = 0
	}
	localTables := 1024
	lhistBytes := localTables * int(hl) / 8
	perEntry := int(1 + hg + hl) // bytes, 8-bit weights
	entries := (budgetBytes - lhistBytes) / perEntry
	if entries < 8 {
		entries = 8
	}
	return NewPerceptron(PerceptronConfig{
		Entries:     entries,
		GlobalBits:  hg,
		LocalBits:   hl,
		LocalTables: localTables,
		WeightBits:  8,
	})
}

func (p *Perceptron) row(pc uint64) int {
	return int(hashPC(pc) % uint64(p.n))
}

// output computes the perceptron dot product for the branch at pc.
func (p *Perceptron) output(pc uint64) (y int, base int) {
	base = p.row(pc) * int(1+p.hg+p.hl)
	y = p.weights.Get(base)
	g := p.ghr.Value()
	for i := uint(0); i < p.hg; i++ {
		w := p.weights.Get(base + 1 + int(i))
		if g>>i&1 == 1 {
			y += w
		} else {
			y -= w
		}
	}
	if p.hl > 0 {
		l := p.lhist.Get(pc)
		off := base + 1 + int(p.hg)
		for i := uint(0); i < p.hl; i++ {
			w := p.weights.Get(off + int(i))
			if l>>i&1 == 1 {
				y += w
			} else {
				y -= w
			}
		}
	}
	return y, base
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	y, base := p.output(pc)
	// The dot-product memo is observationally pure: Update consults it only
	// when the PC matches and always invalidates it, and Predict overwrites
	// it unconditionally, so no prediction or training outcome ever depends
	// on whether (or in what order) earlier Predicts ran — out-of-order
	// pipeline drivers stay bit-identical to in-order ones.
	//bplint:allow predictpure memo never changes an outcome; Update invalidates it on every call
	p.memoPC, p.memoY, p.memoBase, p.memoValid = pc, y, base, true
	return y >= 0
}

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	var y, base int
	if p.memoValid && p.memoPC == pc {
		y, base = p.memoY, p.memoBase
	} else {
		y, base = p.output(pc)
	}
	p.memoValid = false
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		t := -1
		if taken {
			t = 1
		}
		p.weights.Add(base, t)
		g := p.ghr.Value()
		for i := uint(0); i < p.hg; i++ {
			x := -1
			if g>>i&1 == 1 {
				x = 1
			}
			p.weights.Add(base+1+int(i), t*x)
		}
		if p.hl > 0 {
			l := p.lhist.Get(pc)
			off := base + 1 + int(p.hg)
			for i := uint(0); i < p.hl; i++ {
				x := -1
				if l>>i&1 == 1 {
					x = 1
				}
				p.weights.Add(off+int(i), t*x)
			}
		}
	}
	if p.hl > 0 {
		p.lhist.Push(pc, taken)
	}
	p.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (p *Perceptron) SizeBytes() int {
	size := p.weights.SizeBytes() + p.ghr.SizeBytes()
	if p.lhist != nil {
		size += p.lhist.SizeBytes()
	}
	return size
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return p.name }

// Entries returns the number of perceptrons.
func (p *Perceptron) Entries() int { return p.n }

// HistoryBits returns the global and local history lengths.
func (p *Perceptron) HistoryBits() (global, local uint) { return p.hg, p.hl }

// Theta returns the training threshold.
func (p *Perceptron) Theta() int { return p.theta }

// LargestTable implements DelayFootprint: the weight table. Its entries are
// perceptron rows, which are few but wide.
func (p *Perceptron) LargestTable() (int, int) { return p.weights.SizeBytes(), p.n }
