package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// GSkew2Bc implements 2Bc-gskew, the predictor family of the Compaq Alpha
// EV8 front end (Seznec, Felix, Krishnan, Sazeides, ISCA 2002). Four equal
// banks of 2-bit counters:
//
//	BIM  — bimodal bank indexed by PC (branch bias)
//	G0   — gskew bank indexed by skewing hash H0(PC, history)
//	G1   — gskew bank indexed by skewing hash H1(PC, history)
//	META — chooser bank indexed by PC xor history
//
// The enhanced-gskew prediction is the majority of BIM, G0 and G1; META picks
// between that majority and BIM alone. The partial-update policy keeps banks
// that did not contribute to a correct prediction untouched, which is what
// lets the skewed banks de-alias each other.
type GSkew2Bc struct {
	bim     *counter.Array2
	g0      *counter.Array2
	g1      *counter.Array2
	meta    *counter.Array2
	ghr     *history.Global
	mask    uint64
	idxBits uint
	name    string
}

// NewGSkew2Bc returns a 2Bc-gskew predictor with four banks of bankEntries
// 2-bit counters each (bankEntries a power of two). History length follows
// the EV8 practice of exceeding the bank index width; here 2x index bits,
// capped at 64, folded into the skewing hashes.
func NewGSkew2Bc(bankEntries int) *GSkew2Bc {
	if bankEntries <= 0 || bankEntries&(bankEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: 2Bc-gskew bank entries %d not a power of two", bankEntries))
	}
	idxBits := log2(bankEntries)
	// History matches the bank index width: configuration sweeps (see
	// the package tests) show longer folded histories cost more in
	// context fragmentation than they gain in correlation reach for
	// banks of this size.
	histBits := idxBits
	if histBits > history.MaxGlobalBits {
		histBits = history.MaxGlobalBits
	}
	g := &GSkew2Bc{
		bim: counter.NewArray2(bankEntries, counter.WeaklyNotTaken),
		// The gskew banks start weakly taken: a cold majority then
		// leans toward the typical branch direction instead of
		// outvoting a trained bimodal bank with two cold entries.
		g0:      counter.NewArray2(bankEntries, counter.WeaklyTaken),
		g1:      counter.NewArray2(bankEntries, counter.WeaklyTaken),
		meta:    counter.NewArray2(bankEntries, counter.WeaklyTaken),
		ghr:     history.NewGlobal(histBits),
		mask:    uint64(bankEntries - 1),
		idxBits: idxBits,
	}
	g.name = fmt.Sprintf("2bcgskew-%s", budgetName(g.SizeBytes()))
	return g
}

// NewGSkew2BcFromBudget returns the largest 2Bc-gskew fitting budgetBytes
// (four banks of 2-bit counters).
func NewGSkew2BcFromBudget(budgetBytes int) *GSkew2Bc {
	return NewGSkew2Bc(pow2Entries(budgetBytes/4, 2, 4))
}

// fold reduces a value wider than the bank index to the index width by
// XOR-folding, the standard trick for using long histories with small banks.
func (g *GSkew2Bc) fold(v uint64) uint64 {
	folded := uint64(0)
	for v != 0 {
		folded ^= v & g.mask
		v >>= g.idxBits
	}
	return folded
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// indices computes the four bank indices for a branch. The two gskew hashes
// must be decorrelated from each other and from the bimodal PC index so that
// two branches aliasing in one bank rarely alias in another; rotation by
// coprime amounts before folding achieves that with XOR-level hardware.
func (g *GSkew2Bc) indices(pc uint64) (bim, i0, i1, meta int) {
	p := pc >> 2
	h := g.ghr.Value()
	bim = int(p & g.mask)
	i0 = int(g.fold(p ^ h ^ rotl64(h, 7)))
	i1 = int(g.fold(p ^ rotl64(p, 5) ^ rotl64(h, 13)))
	// META is indexed by address alone: "does this branch need history"
	// is a per-branch property, and a history-fragmented META never
	// learns to fall back to the bimodal bank for cold contexts.
	meta = int(hashPC(pc) & g.mask)
	return bim, i0, i1, meta
}

// components returns the per-bank direction bits and the two candidate
// predictions.
func (g *GSkew2Bc) components(pc uint64) (bimT, g0T, g1T, useSkew, skewPred bool, ib, i0, i1, im int) {
	ib, i0, i1, im = g.indices(pc)
	bimT = g.bim.Taken(ib)
	g0T = g.g0.Taken(i0)
	g1T = g.g1.Taken(i1)
	useSkew = g.meta.Taken(im)
	skewPred = majority(bimT, g0T, g1T)
	return bimT, g0T, g1T, useSkew, skewPred, ib, i0, i1, im
}

func majority(a, b, c bool) bool {
	n := 0
	if a {
		n++
	}
	if b {
		n++
	}
	if c {
		n++
	}
	return n >= 2
}

// Predict implements Predictor.
func (g *GSkew2Bc) Predict(pc uint64) bool {
	bimT, _, _, useSkew, skewPred, _, _, _, _ := g.components(pc)
	if useSkew {
		return skewPred
	}
	return bimT
}

// Update implements Predictor, applying the published partial-update policy:
//
//   - On a correct prediction, strengthen only the banks that agreed with the
//     outcome and provided it (BIM alone when META chose BIM; the agreeing
//     majority banks when META chose e-gskew).
//   - On a misprediction, train all direction banks toward the outcome.
//   - META trains toward the e-gskew side whenever BIM and e-gskew disagree.
func (g *GSkew2Bc) Update(pc uint64, taken bool) {
	bimT, g0T, g1T, useSkew, skewPred, ib, i0, i1, im := g.components(pc)
	pred := bimT
	if useSkew {
		pred = skewPred
	}
	if pred == taken {
		if useSkew {
			if bimT == taken {
				g.bim.Update(ib, taken)
			}
			if g0T == taken {
				g.g0.Update(i0, taken)
			}
			if g1T == taken {
				g.g1.Update(i1, taken)
			}
		} else {
			g.bim.Update(ib, taken)
		}
	} else {
		g.bim.Update(ib, taken)
		g.g0.Update(i0, taken)
		g.g1.Update(i1, taken)
	}
	if bimT != skewPred {
		g.meta.Update(im, skewPred == taken)
	}
	g.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (g *GSkew2Bc) SizeBytes() int {
	return g.bim.SizeBytes() + g.g0.SizeBytes() + g.g1.SizeBytes() +
		g.meta.SizeBytes() + g.ghr.SizeBytes()
}

// Name implements Predictor.
func (g *GSkew2Bc) Name() string { return g.name }

// BankEntries returns the per-bank counter count.
func (g *GSkew2Bc) BankEntries() int { return g.bim.Len() }

// LargestTable implements DelayFootprint: the four banks are equal-sized.
func (g *GSkew2Bc) LargestTable() (int, int) { return g.bim.SizeBytes(), g.bim.Len() }

// NewGSkew2BcHist returns a 2Bc-gskew with an explicit history length,
// used by configuration sweeps.
func NewGSkew2BcHist(bankEntries int, histBits uint) *GSkew2Bc {
	g := NewGSkew2Bc(bankEntries)
	if histBits > history.MaxGlobalBits {
		histBits = history.MaxGlobalBits
	}
	g.ghr = history.NewGlobal(histBits)
	return g
}
