package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// GShare is McFarling's gshare predictor: a PHT of 2-bit counters indexed by
// the XOR of the global branch history and the branch PC. With history length
// equal to log2(entries) it uses the maximum history the table can hold,
// which is the configuration the paper gives gshare.fast (§4.1.4).
type GShare struct {
	pht     *counter.Array2
	ghr     *history.Global
	idxMask uint64
	name    string
}

// NewGShare returns a gshare predictor with the given PHT entry count (a
// power of two) and history length. A historyBits of 0 selects the maximum,
// log2(entries).
func NewGShare(entries int, historyBits uint) *GShare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("predictor: gshare entries %d not a power of two", entries))
	}
	idxBits := log2(entries)
	if historyBits == 0 {
		historyBits = idxBits
	}
	if historyBits > history.MaxGlobalBits {
		historyBits = history.MaxGlobalBits
	}
	g := &GShare{
		pht:     counter.NewArray2(entries, counter.WeaklyNotTaken),
		ghr:     history.NewGlobal(historyBits),
		idxMask: uint64(entries - 1),
	}
	g.name = fmt.Sprintf("gshare-%s", budgetName(g.SizeBytes()))
	return g
}

// NewGShareFromBudget returns the largest maximum-history gshare fitting
// budgetBytes.
func NewGShareFromBudget(budgetBytes int) *GShare {
	return NewGShare(pow2Entries(budgetBytes, 2, 4), 0)
}

func (g *GShare) index(pc uint64) int {
	return int((g.ghr.Value() ^ (pc >> 2)) & g.idxMask)
}

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool {
	return g.pht.Taken(g.index(pc))
}

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	g.pht.Update(g.index(pc), taken)
	g.ghr.Push(taken)
}

// StepBatch implements BatchStepper: the Predict/Update pair per branch,
// with the index computed once and the PHT word read and written once
// (counter.Array2.PredictUpdate).
//
//bplint:twin predictor.GShare.index
//bplint:twin predictor.GShare.Update
//bplint:twinmap update=predictupdate
//bplint:hotpath fused-sweep gshare lane; bit-identity pinned by TestStepBatchEquivalence
func (g *GShare) StepBatch(pcs []uint64, takens []bool, measuredFrom int) int64 {
	var miss int64
	pht, ghr, mask := g.pht, g.ghr, g.idxMask
	for i, pc := range pcs {
		taken := takens[i]
		idx := int((ghr.Value() ^ (pc >> 2)) & mask)
		pred := pht.PredictUpdate(idx, taken)
		ghr.Push(taken)
		if pred != taken && i >= measuredFrom {
			miss++
		}
	}
	return miss
}

// SizeBytes implements Predictor.
func (g *GShare) SizeBytes() int { return g.pht.SizeBytes() + g.ghr.SizeBytes() }

// Name implements Predictor.
func (g *GShare) Name() string { return g.name }

// Entries returns the PHT size.
func (g *GShare) Entries() int { return g.pht.Len() }

// HistoryBits returns the global history length in use.
func (g *GShare) HistoryBits() uint { return g.ghr.Len() }

// GSelect is the gselect predictor: the PHT index concatenates low PC bits
// with global history bits instead of XORing them. It is included as the
// classic point of comparison for index-construction studies.
type GSelect struct {
	pht      *counter.Array2
	ghr      *history.Global
	pcBits   uint
	histBits uint
	name     string
}

// NewGSelect returns a gselect predictor with 2^(pcBits+histBits) counters.
func NewGSelect(pcBits, histBits uint) *GSelect {
	if pcBits == 0 || histBits == 0 || pcBits+histBits > 30 {
		panic(fmt.Sprintf("predictor: invalid gselect split pc=%d hist=%d", pcBits, histBits))
	}
	entries := 1 << (pcBits + histBits)
	g := &GSelect{
		pht:      counter.NewArray2(entries, counter.WeaklyNotTaken),
		ghr:      history.NewGlobal(histBits),
		pcBits:   pcBits,
		histBits: histBits,
	}
	g.name = fmt.Sprintf("gselect-%s", budgetName(g.SizeBytes()))
	return g
}

// NewGSelectFromBudget returns a gselect splitting the index evenly between
// PC and history bits within budgetBytes.
func NewGSelectFromBudget(budgetBytes int) *GSelect {
	entries := pow2Entries(budgetBytes, 2, 16)
	idxBits := log2(entries)
	h := idxBits / 2
	return NewGSelect(idxBits-h, h)
}

func (g *GSelect) index(pc uint64) int {
	pcPart := (pc >> 2) & (1<<g.pcBits - 1)
	histPart := g.ghr.Value() & (1<<g.histBits - 1)
	return int(pcPart<<g.histBits | histPart)
}

// Predict implements Predictor.
func (g *GSelect) Predict(pc uint64) bool { return g.pht.Taken(g.index(pc)) }

// Update implements Predictor.
func (g *GSelect) Update(pc uint64, taken bool) {
	g.pht.Update(g.index(pc), taken)
	g.ghr.Push(taken)
}

// SizeBytes implements Predictor.
func (g *GSelect) SizeBytes() int { return g.pht.SizeBytes() + g.ghr.SizeBytes() }

// Name implements Predictor.
func (g *GSelect) Name() string { return g.name }

// LargestTable implements DelayFootprint.
func (g *GShare) LargestTable() (int, int) { return g.pht.SizeBytes(), g.pht.Len() }

// LargestTable implements DelayFootprint.
func (g *GSelect) LargestTable() (int, int) { return g.pht.SizeBytes(), g.pht.Len() }
