package predictor

import "testing"

func TestPow2Entries(t *testing.T) {
	tests := []struct {
		name                                        string
		budgetBytes, bitsPerEntry, minEntries, want int
	}{
		{"exact 2KB of 2-bit counters", 2048, 2, 4, 8192},
		{"one byte of 2-bit counters", 1, 2, 1, 4},
		{"non-power-of-two budget rounds down", 3000, 2, 4, 8192},
		{"53KB lands between powers", 53 * 1024, 2, 4, 131072},
		{"wide entries shrink the table", 2048, 16, 4, 1024},
		{"zero budget clamps to min", 0, 2, 64, 64},
		{"negative budget clamps to min", -100, 2, 16, 16},
		{"zero bits clamps to min", 1024, 0, 32, 32},
		{"budget below min still clamps up", 1, 2, 1024, 1024},
		{"min of zero allows tiny tables", 1, 8, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := pow2Entries(tt.budgetBytes, tt.bitsPerEntry, tt.minEntries)
			if got != tt.want {
				t.Fatalf("pow2Entries(%d, %d, %d) = %d, want %d",
					tt.budgetBytes, tt.bitsPerEntry, tt.minEntries, got, tt.want)
			}
			if got&(got-1) != 0 {
				t.Fatalf("pow2Entries returned non-power-of-two %d", got)
			}
			if tt.budgetBytes > 0 && tt.bitsPerEntry > 0 && got > tt.minEntries {
				// Maximality: the result fits, doubling it would not.
				if int64(got)*int64(tt.bitsPerEntry) > int64(tt.budgetBytes)*8 {
					t.Fatalf("result %d entries exceeds budget", got)
				}
				if int64(got)*2*int64(tt.bitsPerEntry) <= int64(tt.budgetBytes)*8 {
					t.Fatalf("result %d entries is not maximal", got)
				}
			}
		})
	}
}

func TestLog2(t *testing.T) {
	tests := []struct {
		n    int
		want uint
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 10, 10}, {1<<10 + 1, 10}, {1 << 20, 20},
	}
	for _, tt := range tests {
		if got := log2(tt.n); got != tt.want {
			t.Errorf("log2(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBudgetName(t *testing.T) {
	tests := []struct {
		bytes int
		want  string
	}{
		{2048, "2KB"},
		{512 * 1024, "512KB"},
		{53 * 1024, "53KB"},
		{1536, "1.5KB"},
		{1100, "1.1KB"},
		{1024, "1KB"},
		{512, "512B"},
		{1, "1B"},
		{0, "0B"},
	}
	for _, tt := range tests {
		if got := budgetName(tt.bytes); got != tt.want {
			t.Errorf("budgetName(%d) = %q, want %q", tt.bytes, got, tt.want)
		}
	}
}

func TestPCIndex(t *testing.T) {
	tests := []struct {
		name     string
		pc, mask uint64
		want     uint64
	}{
		{"word alignment dropped", 0x1000, 0xff, 0x1000 >> 2 & 0xff},
		{"adjacent instructions share low bits", 0x1001, 0xff, 0x1000 >> 2 & 0xff},
		{"next word maps to next entry", 0x1004, 0xff, (0x1000>>2 + 1) & 0xff},
		{"mask wraps high pcs", 0xffff_ffff_ffff_fffc, 0x3, (0xffff_ffff_ffff_fffc >> 2) & 0x3},
		{"zero mask collapses to entry 0", 0x1234, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := pcIndex(tt.pc, tt.mask); got != tt.want {
				t.Fatalf("pcIndex(%#x, %#x) = %#x, want %#x", tt.pc, tt.mask, got, tt.want)
			}
		})
	}
}

func TestHashPC(t *testing.T) {
	// The hash must be a pure function and must spread PCs that differ only
	// above the low table-index bits (the whole reason it exists).
	if hashPC(0x40_0000) != hashPC(0x40_0000) {
		t.Fatal("hashPC is not deterministic")
	}
	const mask = 0x3ff // 1K-entry table
	a := hashPC(0x0040_0000) & mask
	b := hashPC(0x0080_0000) & mask
	c := hashPC(0x0100_0000) & mask
	if a == b && b == c {
		t.Errorf("hashPC folds nothing: %#x %#x %#x collide under mask %#x", a, b, c, mask)
	}
	// Word-offset bits must not leak in: pc and pc+1..3 hash identically.
	for off := uint64(1); off < 4; off++ {
		if hashPC(0x1000) != hashPC(0x1000+off) {
			t.Errorf("hashPC(%#x) != hashPC(%#x): sub-word bits leak", uint64(0x1000), 0x1000+off)
		}
	}
}
