package predictor

import (
	"fmt"

	"branchsim/internal/counter"
	"branchsim/internal/history"
)

// BiMode is the bi-mode predictor of Lee, Chen and Mudge (MICRO-30): a
// PC-indexed choice PHT steers each branch to one of two gshare-indexed
// direction PHTs, one biased taken and one biased not-taken, reducing
// destructive aliasing between branches of opposite bias. It is one of the
// predictors extended to large budgets in the paper's Figure 1.
type BiMode struct {
	choice  *counter.Array2
	taken   *counter.Array2
	notTkn  *counter.Array2
	ghr     *history.Global
	chMask  uint64
	dirMask uint64
	name    string
}

// NewBiMode returns a bi-mode predictor. dirEntries counters are allocated
// to each of the two direction PHTs and choiceEntries to the choice PHT;
// both must be powers of two.
func NewBiMode(choiceEntries, dirEntries int) *BiMode {
	if choiceEntries <= 0 || choiceEntries&(choiceEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: bi-mode choice entries %d not a power of two", choiceEntries))
	}
	if dirEntries <= 0 || dirEntries&(dirEntries-1) != 0 {
		panic(fmt.Sprintf("predictor: bi-mode direction entries %d not a power of two", dirEntries))
	}
	b := &BiMode{
		choice: counter.NewArray2(choiceEntries, counter.WeaklyNotTaken),
		// Bias the direction PHTs toward their mode so cold entries
		// already disambiguate.
		taken:   counter.NewArray2(dirEntries, counter.WeaklyTaken),
		notTkn:  counter.NewArray2(dirEntries, counter.WeaklyNotTaken),
		ghr:     history.NewGlobal(log2(dirEntries)),
		chMask:  uint64(choiceEntries - 1),
		dirMask: uint64(dirEntries - 1),
	}
	b.name = fmt.Sprintf("bimode-%s", budgetName(b.SizeBytes()))
	return b
}

// NewBiModeFromBudget splits budgetBytes as the original paper does: a
// quarter to the choice PHT and three-eighths to each direction PHT
// (approximated with powers of two).
func NewBiModeFromBudget(budgetBytes int) *BiMode {
	dir := pow2Entries(budgetBytes/3, 2, 4)
	choice := pow2Entries(budgetBytes-2*(dir/4), 2, 4)
	// Keep choice no larger than the direction tables; tiny budgets
	// otherwise starve the direction PHTs.
	if choice > dir {
		choice = dir
	}
	return NewBiMode(choice, dir)
}

func (b *BiMode) dirIndex(pc uint64) int {
	return int((b.ghr.Value() ^ (pc >> 2)) & b.dirMask)
}

func (b *BiMode) parts(pc uint64) (choiceIdx, dirIdx int, useTaken bool) {
	choiceIdx = int(pcIndex(pc, b.chMask))
	dirIdx = b.dirIndex(pc)
	useTaken = b.choice.Taken(choiceIdx)
	return choiceIdx, dirIdx, useTaken
}

// Predict implements Predictor.
func (b *BiMode) Predict(pc uint64) bool {
	_, dirIdx, useTaken := b.parts(pc)
	if useTaken {
		return b.taken.Taken(dirIdx)
	}
	return b.notTkn.Taken(dirIdx)
}

// Update implements Predictor. The bi-mode update rule: the selected
// direction PHT always trains; the choice PHT trains toward the outcome
// except when it disagreed with the outcome but the selected bank still
// predicted correctly (the bank has the branch covered, so the choice is
// left alone to protect other branches sharing the entry).
func (b *BiMode) Update(pc uint64, taken bool) {
	choiceIdx, dirIdx, useTaken := b.parts(pc)
	var bankCorrect bool
	if useTaken {
		//bplint:twinskip fused folds this read into PredictUpdate: the pre-update direction doubles as pred and bankCorrect
		bankCorrect = b.taken.Taken(dirIdx) == taken
		b.taken.Update(dirIdx, taken)
	} else {
		//bplint:twinskip fused folds this read into PredictUpdate: the pre-update direction doubles as pred and bankCorrect
		bankCorrect = b.notTkn.Taken(dirIdx) == taken
		b.notTkn.Update(dirIdx, taken)
	}
	if !(useTaken != taken && bankCorrect) {
		b.choice.Update(choiceIdx, taken)
	}
	b.ghr.Push(taken)
}

// StepBatch implements BatchStepper. Predict followed by Update reads the
// choice PHT and the selected direction bank twice each (parts runs in
// both); the fused step reads each once, which is legal because neither
// table changes between the scalar pair's two reads: the selected bank's
// pre-update direction doubles as the prediction and as Update's
// bankCorrect, and the choice counter's direction is unchanged until its
// own conditional update.
//
//bplint:twin predictor.BiMode.Update
//bplint:twinmap update=predictupdate
//bplint:hotpath fused-sweep bi-mode lane; bit-identity pinned by TestStepBatchEquivalence
func (b *BiMode) StepBatch(pcs []uint64, takens []bool, measuredFrom int) int64 {
	var miss int64
	for i, pc := range pcs {
		taken := takens[i]
		choiceIdx, dirIdx, useTaken := b.parts(pc)
		var pred bool
		if useTaken {
			pred = b.taken.PredictUpdate(dirIdx, taken)
		} else {
			pred = b.notTkn.PredictUpdate(dirIdx, taken)
		}
		if !(useTaken != taken && pred == taken) {
			b.choice.Update(choiceIdx, taken)
		}
		b.ghr.Push(taken)
		if pred != taken && i >= measuredFrom {
			miss++
		}
	}
	return miss
}

// SizeBytes implements Predictor.
func (b *BiMode) SizeBytes() int {
	return b.choice.SizeBytes() + b.taken.SizeBytes() + b.notTkn.SizeBytes() + b.ghr.SizeBytes()
}

// Name implements Predictor.
func (b *BiMode) Name() string { return b.name }

// LargestTable implements DelayFootprint: the direction PHTs dominate.
func (b *BiMode) LargestTable() (int, int) { return b.taken.SizeBytes(), b.taken.Len() }
