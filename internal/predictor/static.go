package predictor

// Static predictors serve as floors in the evaluation and as the trivial
// quick predictor in degenerate overriding configurations.

// Taken always predicts taken.
type Taken struct{}

// Predict implements Predictor.
func (Taken) Predict(uint64) bool { return true }

// Update implements Predictor; static predictors hold no state.
func (Taken) Update(uint64, bool) {}

// SizeBytes implements Predictor.
func (Taken) SizeBytes() int { return 0 }

// Name implements Predictor.
func (Taken) Name() string { return "always-taken" }

// NotTaken always predicts not taken.
type NotTaken struct{}

// Predict implements Predictor.
func (NotTaken) Predict(uint64) bool { return false }

// Update implements Predictor.
func (NotTaken) Update(uint64, bool) {}

// SizeBytes implements Predictor.
func (NotTaken) SizeBytes() int { return 0 }

// Name implements Predictor.
func (NotTaken) Name() string { return "always-not-taken" }
