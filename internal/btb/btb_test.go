package btb

import "testing"

func TestInsertLookup(t *testing.T) {
	b := New(512, 2)
	if _, hit := b.Lookup(0x1000); hit {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	target, hit := b.Lookup(0x1000)
	if !hit || target != 0x2000 {
		t.Fatalf("lookup = %#x, %v", target, hit)
	}
}

func TestUpdateExistingEntry(t *testing.T) {
	b := New(64, 2)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	target, hit := b.Lookup(0x1000)
	if !hit || target != 0x3000 {
		t.Fatalf("updated target = %#x, %v", target, hit)
	}
}

func TestSetConflictLRU(t *testing.T) {
	// 4 entries, 2 ways = 2 sets. PCs with equal (pc>>2)&1 share a set.
	b := New(4, 2)
	pcA, pcB, pcC := uint64(0x100), uint64(0x108), uint64(0x110) // all set 0
	b.Insert(pcA, 1)
	b.Insert(pcB, 2)
	b.Lookup(pcA)    // touch A
	b.Insert(pcC, 3) // evicts B (LRU)
	if _, hit := b.Lookup(pcA); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, hit := b.Lookup(pcB); hit {
		t.Fatal("LRU entry survived")
	}
	if _, hit := b.Lookup(pcC); !hit {
		t.Fatal("new entry missing")
	}
}

func TestStats(t *testing.T) {
	b := New(64, 2)
	b.Lookup(0x1000)
	b.Insert(0x1000, 0x2000)
	b.Lookup(0x1000)
	hits, misses := b.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestDistinctSets(t *testing.T) {
	b := New(512, 2)
	// Fill many distinct branches; all must be resident (enough
	// capacity, different sets).
	for i := uint64(0); i < 256; i++ {
		b.Insert(0x1000+i*4, i)
	}
	for i := uint64(0); i < 256; i++ {
		target, hit := b.Lookup(0x1000 + i*4)
		if !hit || target != i {
			t.Fatalf("branch %d lost: %#x %v", i, target, hit)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	for _, tc := range []struct{ entries, ways int }{{0, 1}, {100, 2}, {64, 3}, {64, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.entries, tc.ways)
				}
			}()
			New(tc.entries, tc.ways)
		}()
	}
}

func TestSizeEntries(t *testing.T) {
	if got := New(512, 2).SizeEntries(); got != 512 {
		t.Fatalf("SizeEntries = %d", got)
	}
}
