// Package btb implements the branch target buffer of Table 1 (512 entries,
// 2-way set associative). The BTB predicts the target address of branches
// predicted taken; the paper's direction predictors are only useful together
// with one (§3.3.3), and a taken-predicted branch that misses in the BTB
// costs the front end a redirect bubble once the target is computed in
// decode.
package btb

import "fmt"

// Entry is one BTB entry.
type entry struct {
	tag    uint64 // PC+1 so zero means invalid
	target uint64
	lru    uint32
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	entries []entry
	ways    int
	setMask uint64
	stamp   uint32
	hits    int64
	misses  int64
}

// New returns a BTB with the given total entries and associativity.
func New(entries, ways int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("btb: entries %d not a power of two", entries))
	}
	if ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("btb: ways %d does not divide entries %d", ways, entries))
	}
	sets := entries / ways
	return &BTB{
		entries: make([]entry, entries),
		ways:    ways,
		setMask: uint64(sets - 1),
	}
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & b.setMask) }

// Lookup returns the predicted target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	base := b.set(pc) * b.ways
	b.stamp++
	for w := 0; w < b.ways; w++ {
		e := &b.entries[base+w]
		if e.tag == pc+1 {
			e.lru = b.stamp
			b.hits++
			return e.target, true
		}
	}
	b.misses++
	return 0, false
}

// Insert records the target of a taken branch at pc, evicting the
// least-recently-used way on conflict.
func (b *BTB) Insert(pc, target uint64) {
	base := b.set(pc) * b.ways
	b.stamp++
	victim, victimStamp := base, b.entries[base].lru
	for w := 0; w < b.ways; w++ {
		e := &b.entries[base+w]
		if e.tag == pc+1 {
			e.target = target
			e.lru = b.stamp
			return
		}
		if e.lru < victimStamp {
			victim, victimStamp = base+w, e.lru
		}
	}
	b.entries[victim] = entry{tag: pc + 1, target: target, lru: b.stamp}
}

// Stats returns cumulative lookup hit and miss counts.
func (b *BTB) Stats() (hits, misses int64) { return b.hits, b.misses }

// SizeEntries returns the total entry count.
func (b *BTB) SizeEntries() int { return len(b.entries) }
