package tracestore

import (
	"sync"
	"sync/atomic"
	"testing"

	"branchsim/internal/funcsim"
	"branchsim/internal/pipeline"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// equivalenceBenchmarks are the streams the replay-equivalence guarantee is
// proven on: a low-noise benchmark, the pointer-chasing one, and the
// noisiest one.
var equivalenceBenchmarks = []string{"gzip", "mcf", "twolf"}

const (
	eqInsts  = 300_000
	eqWarmup = 75_000
)

func profileFor(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return prof
}

// funcsimEqual compares every scalar field of two accuracy results
// (Result carries a map, so == does not apply).
func funcsimEqual(a, b funcsim.Result) bool {
	return a.Predictor == b.Predictor && a.Workload == b.Workload &&
		a.Insts == b.Insts && a.Branches == b.Branches &&
		a.Mispredicts == b.Mispredicts && a.TakenRate == b.TakenRate &&
		a.PredSizeByte == b.PredSizeByte
}

// TestReplayEquivalenceFuncsim asserts the tentpole guarantee for the
// accuracy simulator: a predictor driven by a replayed recording produces a
// Result bit-identical to one driven by live generation.
func TestReplayEquivalenceFuncsim(t *testing.T) {
	for _, name := range equivalenceBenchmarks {
		t.Run(name, func(t *testing.T) {
			prof := profileFor(t, name)
			opts := funcsim.Options{MaxInsts: eqInsts, WarmupInsts: eqWarmup}
			live := funcsim.Run(predictor.NewGShareFromBudget(16<<10), workload.New(prof), opts)
			rec := workload.Record(prof, eqInsts)
			replay := funcsim.Run(predictor.NewGShareFromBudget(16<<10), rec.Replay(), opts)
			if !funcsimEqual(live, replay) {
				t.Errorf("funcsim results differ:\nlive:   %+v\nreplay: %+v", live, replay)
			}
			if replay.Mispredicts == 0 || replay.Branches == 0 {
				t.Error("degenerate run: no branches or no mispredicts measured")
			}
		})
	}
}

// TestReplayEquivalencePipeline asserts the same for the cycle-level timing
// simulator: identical IPC, misprediction, override, cache and BTB
// statistics from live and replayed streams.
func TestReplayEquivalencePipeline(t *testing.T) {
	for _, name := range equivalenceBenchmarks {
		t.Run(name, func(t *testing.T) {
			prof := profileFor(t, name)
			mk := func() *pipeline.Sim {
				return pipeline.New(pipeline.DefaultConfig(), predictor.NewGShareFromBudget(16<<10))
			}
			live := mk().Run(workload.New(prof), eqInsts, eqWarmup)
			rec := workload.Record(prof, eqInsts)
			replay := mk().Run(rec.Replay(), eqInsts, eqWarmup)
			if live != replay {
				t.Errorf("pipeline results differ:\nlive:   %+v\nreplay: %+v", live, replay)
			}
			if replay.IPC() <= 0 {
				t.Error("degenerate run: nonpositive IPC")
			}
		})
	}
}

// TestReplayEquivalenceBlocks covers the block-at-a-time protocol used by
// the multiple-branch experiment.
func TestReplayEquivalenceBlocks(t *testing.T) {
	prof := profileFor(t, "gzip")
	opts := funcsim.Options{MaxInsts: eqInsts, WarmupInsts: eqWarmup, FetchWidth: 8, BlockBranches: 4}
	mk := func() *predictor.GShare { return predictor.NewGShareFromBudget(16 << 10) }
	live := funcsim.RunBlocks(blockAdapter{mk()}, "blk", workload.New(prof), opts)
	rec := workload.Record(prof, eqInsts)
	replay := funcsim.RunBlocks(blockAdapter{mk()}, "blk", rec.Replay(), opts)
	if !funcsimEqual(live, replay) {
		t.Errorf("block results differ:\nlive:   %+v\nreplay: %+v", live, replay)
	}
}

// blockAdapter drives a scalar predictor through the block protocol.
type blockAdapter struct{ p predictor.Predictor }

func (a blockAdapter) PredictBlock(pcs []uint64) []bool {
	out := make([]bool, len(pcs))
	for i, pc := range pcs {
		out[i] = a.p.Predict(pc)
	}
	return out
}

func (a blockAdapter) UpdateBlock(pcs []uint64, takens []bool) {
	for i, pc := range pcs {
		a.p.Update(pc, takens[i])
	}
}

// TestStoreMemoizes asserts the record function runs exactly once per key,
// even under concurrent first use, and that distinct keys record separately.
func TestStoreMemoizes(t *testing.T) {
	prof := profileFor(t, "gzip")
	store := New()
	var records atomic.Int32
	gen := func() trace.Source {
		records.Add(1)
		return workload.New(prof)
	}
	key := Key{Name: prof.Name, Seed: prof.Seed, Insts: 10_000}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := store.Source(key, gen)
			if n, _ := trace.CountBranches(src, 10_000); n != 10_000 {
				t.Errorf("cursor yielded %d insts, want 10000", n)
			}
		}()
	}
	wg.Wait()
	if got := records.Load(); got != 1 {
		t.Fatalf("record ran %d times, want 1", got)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d recordings, want 1", store.Len())
	}
	if store.SizeBytes() <= 0 {
		t.Fatal("store reports zero size for a populated recording")
	}

	// A different instruction budget is a different stream: do not reuse.
	store.Source(Key{Name: prof.Name, Seed: prof.Seed, Insts: 20_000}, gen)
	if got := records.Load(); got != 2 {
		t.Fatalf("record ran %d times after second key, want 2", got)
	}
}

// TestConcurrentReplay exercises many goroutines replaying one shared
// recording simultaneously (run under -race by scripts/check.sh): cursors
// must be independent and every replica must reproduce identical results.
func TestConcurrentReplay(t *testing.T) {
	prof := profileFor(t, "twolf")
	store := New()
	key := Key{Name: prof.Name, Seed: prof.Seed, Insts: 100_000}
	gen := func() trace.Source { return workload.New(prof) }

	const workers = 8
	results := make([]funcsim.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := store.Source(key, gen)
			results[w] = funcsim.Run(predictor.NewGShareFromBudget(8<<10), src,
				funcsim.Options{MaxInsts: 100_000, WarmupInsts: 25_000})
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !funcsimEqual(results[w], results[0]) {
			t.Fatalf("worker %d result differs: %+v vs %+v", w, results[w], results[0])
		}
	}
}

// TestClassifiedReplay asserts per-class diagnostics survive replay: the
// class rates measured from a classified replay cursor match those from the
// live program.
func TestClassifiedReplay(t *testing.T) {
	prof := profileFor(t, "gzip")
	opts := funcsim.Options{MaxInsts: 100_000, PerClass: true}
	live := funcsim.Run(predictor.NewGShareFromBudget(8<<10), workload.New(prof), opts)
	rec := workload.Record(prof, 100_000)
	replay := funcsim.Run(predictor.NewGShareFromBudget(8<<10), workload.Classify(rec.Replay(), prof), opts)
	if len(live.ClassRates) == 0 {
		t.Fatal("live run produced no class rates")
	}
	if len(replay.ClassRates) != len(live.ClassRates) {
		t.Fatalf("replay saw %d classes, live %d", len(replay.ClassRates), len(live.ClassRates))
	}
	for name, lr := range live.ClassRates {
		rr := replay.ClassRates[name]
		if rr == nil || *rr != *lr {
			t.Errorf("class %s: replay %+v, live %+v", name, rr, lr)
		}
	}
}

// TestStoreDigest pins the digest path the persistent result store keys
// on: Digest memoizes the recording (no second record pass), matches the
// recording's own digest, and equals an independently recorded twin's —
// the cross-process stability the store's cell keys assume.
func TestStoreDigest(t *testing.T) {
	prof := profileFor(t, "mcf")
	store := New()
	var records atomic.Int32
	gen := func() trace.Source {
		records.Add(1)
		return workload.New(prof)
	}
	key := Key{Name: prof.Name, Seed: prof.Seed, Insts: 30_000}

	d := store.Digest(key, gen)
	if d == "" {
		t.Fatal("empty digest")
	}
	if got := store.Digest(key, gen); got != d {
		t.Fatalf("digest changed across calls: %s -> %s", d, got)
	}
	if got := records.Load(); got != 1 {
		t.Fatalf("record ran %d times, want 1 (digest must reuse the memoized recording)", got)
	}
	twin := trace.Record(workload.New(prof), 30_000)
	if twin.Digest() != d {
		t.Fatalf("independently recorded twin digests differently: %s vs %s", twin.Digest(), d)
	}
}
