// Package tracestore memoizes recorded instruction streams across an
// experiment grid. The paper's methodology is trace-driven: each benchmark's
// stream is fixed, so the (predictor kind × budget × benchmark) grid in
// internal/experiments re-simulates byte-identical instructions in every
// cell. The store makes the grid pay generation cost once per key — the
// first job for a benchmark records the live stream, every later job (and
// every concurrent one, which blocks until the recording exists) replays it.
package tracestore

import (
	"sync"

	"branchsim/internal/trace"
)

// Key identifies one recorded stream: a workload identity plus the
// instruction budget it was recorded to. Runs with different budgets use
// different keys; a longer run never silently replays a shorter recording.
type Key struct {
	// Name is the workload name (e.g. "164.gzip").
	Name string
	// Seed is the workload's construction seed.
	Seed uint64
	// Insts is the recorded instruction count.
	Insts int64
}

// Store is a concurrency-safe memoizing cache of Recordings and their
// derived memory-latency sidecars (sidecar.go).
type Store struct {
	mu       sync.Mutex
	entries  map[Key]*entry               // guarded by mu
	sidecars map[sidecarKey]*sidecarEntry // guarded by mu
}

// entry serializes the recording of one key: the first goroutine to arrive
// records inside the once; the rest block on it and then replay.
type entry struct {
	once sync.Once
	rec  *trace.Recording // guarded by Store.mu
}

// New returns an empty store.
func New() *Store {
	return &Store{entries: make(map[Key]*entry)}
}

// Recording returns the memoized recording for key, calling record to
// produce it on first use. Concurrent callers with the same key share one
// recording; record runs at most once per key.
func (s *Store) Recording(key Key, record func() *trace.Recording) *trace.Recording {
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &entry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	var rec *trace.Recording
	e.once.Do(func() {
		rec = record()
		// Publish under the store lock so Len/SizeBytes can read
		// concurrently with an in-flight recording.
		s.mu.Lock()
		e.rec = rec
		s.mu.Unlock()
	})
	if rec == nil {
		s.mu.Lock()
		rec = e.rec
		s.mu.Unlock()
	}
	return rec
}

// Source returns a fresh replay cursor over the memoized recording for key,
// recording up to key.Insts instructions from gen's stream on first use.
// Each call returns an independent cursor, so callers can run concurrently.
func (s *Store) Source(key Key, gen func() trace.Source) trace.Source {
	rec := s.Recording(key, func() *trace.Recording {
		return trace.Record(gen(), key.Insts)
	})
	return rec.Replay()
}

// Digest returns the content digest (trace.Recording.Digest: hex SHA-256
// of the BPTRACE1 stream) of the memoized recording for key, recording it
// via gen on first use. The persistent result store includes this in its
// cell keys, so cross-process cache entries are bound to the exact stream
// bytes they were measured on — a workload-generator change invalidates
// every dependent cell by construction.
func (s *Store) Digest(key Key, gen func() trace.Source) string {
	rec := s.Recording(key, func() *trace.Recording {
		return trace.Record(gen(), key.Insts)
	})
	return rec.Digest()
}

// Len returns the number of memoized recordings.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e.rec != nil {
			n++
		}
	}
	return n
}

// SizeBytes returns the total in-memory footprint of the memoized
// recordings.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.entries {
		if e.rec != nil {
			n += e.rec.SizeBytes()
		}
	}
	return n
}
