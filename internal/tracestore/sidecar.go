package tracestore

import (
	"sync"

	"branchsim/internal/pipeline"
	"branchsim/internal/trace"
)

// sidecarKey identifies one memory-latency sidecar: a recorded stream plus
// the cache geometry its outcomes were simulated under.
type sidecarKey struct {
	key  Key
	geom pipeline.MemGeometry
}

// sidecarEntry serializes the build of one sidecar, like entry does for
// recordings.
type sidecarEntry struct {
	once sync.Once
	side *pipeline.MemSidecar // guarded by Store.mu
}

// MemSidecar returns the memoized memory-latency sidecar for key's
// recording under geom, building it (and the recording itself, via gen, if
// needed) on first use. Every timing cell replaying (key, geom) then shares
// one hierarchy pass instead of simulating three caches per cell.
func (s *Store) MemSidecar(key Key, geom pipeline.MemGeometry, gen func() trace.Source) *pipeline.MemSidecar {
	sk := sidecarKey{key: key, geom: geom}
	s.mu.Lock()
	if s.sidecars == nil {
		s.sidecars = make(map[sidecarKey]*sidecarEntry)
	}
	e := s.sidecars[sk]
	if e == nil {
		e = &sidecarEntry{}
		s.sidecars[sk] = e
	}
	s.mu.Unlock()
	var side *pipeline.MemSidecar
	e.once.Do(func() {
		rec := s.Recording(key, func() *trace.Recording {
			return trace.Record(gen(), key.Insts)
		})
		side = pipeline.BuildMemSidecar(rec, geom)
		s.mu.Lock()
		e.side = side
		s.mu.Unlock()
	})
	if side == nil {
		s.mu.Lock()
		side = e.side
		s.mu.Unlock()
	}
	return side
}

// SidecarLen returns the number of memoized sidecars.
func (s *Store) SidecarLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.sidecars {
		if e.side != nil {
			n++
		}
	}
	return n
}

// SidecarSizeBytes returns the total footprint of the memoized sidecar
// columns.
func (s *Store) SidecarSizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, e := range s.sidecars {
		if e.side != nil {
			n += e.side.SizeBytes()
		}
	}
	return n
}
