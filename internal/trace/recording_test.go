package trace

import "testing"

// lcgSource deterministically synthesizes a varied stream, including
// zero/nonzero Addr and Target combinations, without any workload
// machinery. It crosses chunk boundaries when n > chunkLen.
type lcgSource struct {
	state uint64
	n     int64
	pc    uint64
}

func (s *lcgSource) next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state >> 11
}

func (s *lcgSource) Next(inst *Inst) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	r := s.next()
	inst.Kind = Kind(r % uint64(NumKinds))
	s.pc += 4
	inst.PC = s.pc
	inst.Src1 = int8(s.next() % NumRegs)
	inst.Src2 = NoReg
	inst.Dst = int8(s.next() % NumRegs)
	inst.Addr = 0
	inst.Target = 0
	inst.Taken = false
	switch inst.Kind {
	case Load, Store:
		inst.Addr = 0x2000_0000 + (s.next() & 0xfffff &^ 7)
	case CondBranch:
		inst.Taken = s.next()&1 == 1
		inst.Target = 0x0001_0000 + (s.next() & 0xffff &^ 3)
	case Jump:
		inst.Target = 0x0001_0000 + (s.next() & 0xffff &^ 3)
	}
	return true
}

func (s *lcgSource) Name() string { return "lcg" }

// drain collects up to max instructions from src.
func drain(src Source, max int64) []Inst {
	var out []Inst
	var inst Inst
	for int64(len(out)) < max && src.Next(&inst) {
		out = append(out, inst)
	}
	return out
}

func TestRecordReplayIdentical(t *testing.T) {
	// Cross two chunk boundaries to exercise chunk handoff in the cursor.
	const n = 2*chunkLen + 123
	want := drain(&lcgSource{state: 1, n: n}, n)
	rec := Record(&lcgSource{state: 1, n: n}, n)
	if rec.Len() != n {
		t.Fatalf("recorded %d insts, want %d", rec.Len(), n)
	}
	if rec.Name() != "lcg" {
		t.Fatalf("recording name %q, want lcg", rec.Name())
	}
	got := drain(rec.Replay(), n+1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d insts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d differs: replay %+v, live %+v", i, got[i], want[i])
		}
	}
}

func TestRecordBoundsStream(t *testing.T) {
	rec := Record(&lcgSource{state: 7, n: 1 << 20}, 1000)
	if rec.Len() != 1000 {
		t.Fatalf("recorded %d insts, want 1000", rec.Len())
	}
	if got := drain(rec.Replay(), 1<<20); len(got) != 1000 {
		t.Fatalf("replayed %d insts, want 1000", len(got))
	}
}

func TestReplayCursorsIndependent(t *testing.T) {
	rec := Record(&lcgSource{state: 3, n: 500}, 500)
	a, b := rec.Replay(), rec.Replay()
	var ia, ib Inst
	// Advance a, then check b still starts at the beginning.
	for i := 0; i < 100; i++ {
		a.Next(&ia)
	}
	b.Next(&ib)
	first := drain(rec.Replay(), 1)[0]
	if ib != first {
		t.Fatalf("second cursor did not start at stream head: %+v vs %+v", ib, first)
	}
}

func TestRecordingSizeBytes(t *testing.T) {
	rec := Record(&lcgSource{state: 5, n: 10_000}, 10_000)
	size := rec.SizeBytes()
	// 12 bytes of dense columns per instruction, plus sparse addr/target.
	if size < 12*10_000 || size > 28*10_000 {
		t.Fatalf("SizeBytes %d outside plausible range for 10k insts", size)
	}
	if (&Recording{}).SizeBytes() != 0 {
		t.Fatal("empty recording should have zero size")
	}
}

func TestRecordEmptySource(t *testing.T) {
	rec := Record(&lcgSource{state: 1, n: 0}, 100)
	if rec.Len() != 0 {
		t.Fatalf("empty source recorded %d insts", rec.Len())
	}
	var inst Inst
	if rec.Replay().Next(&inst) {
		t.Fatal("replay of empty recording produced an instruction")
	}
}
