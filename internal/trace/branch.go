package trace

// Branch-indexed batch replay: the fast path for the accuracy simulator.
//
// Accuracy experiments only look at conditional branches — roughly one
// instruction in five to eight in the synthetic SPECint streams — yet the
// Source protocol reconstructs a full Inst for every ALU, load and store in
// between. A Recording already stores the stream as struct-of-arrays, so it
// can precompute, at record time, the positions of the branches inside each
// chunk; replaying then jumps branch-to-branch and fills whole batches of
// BranchRec with zero per-instruction work. The functional simulator
// (internal/funcsim) detects BranchSource and switches to a batched inner
// loop that reconstructs instruction counts, warm-up boundaries and the
// fetch-cycle clock from InstIndex alone — bit-identical to draining the
// full stream, which the equivalence tests in internal/funcsim enforce.

// BranchRec is one conditional branch of a stream, positioned by the index
// of the instruction within the stream (0-based). InstIndex is all the
// accuracy simulator needs to reconstruct everything the skipped
// instructions contributed: the instruction count, the warm-up boundary and
// the approximate fetch cycle for CycleAware predictors.
type BranchRec struct {
	// InstIndex is the 0-based position of the branch in the instruction
	// stream.
	InstIndex int64
	// PC is the branch's word-aligned address.
	PC uint64
	// Taken is the resolved direction.
	Taken bool
}

// BranchSource is the batch fast-path protocol: a stream that can serve its
// conditional branches directly, in stream order, without materializing the
// instructions in between. Recording replay cursors implement it from the
// precomputed branch index; live generators filter their own stream.
// Consumers use either the Source protocol or the BranchSource protocol on
// one stream, never both.
type BranchSource interface {
	// NextBranches fills dst with the next conditional branches of the
	// stream in order and returns how many records were written; 0 means
	// end of stream (and is only returned with an empty dst on a stream
	// that has records left).
	NextBranches(dst []BranchRec) int
	// InstsScanned reports how many leading instructions of the stream
	// the source has scanned past so far. Once NextBranches has returned
	// 0 it equals the total stream length — the number the instruction
	// protocol would have counted draining the stream one Inst at a time.
	InstsScanned() int64
}

// branchBatch is the batch size drivers are expected to use; exported to
// funcsim via BatchLen so the two layers agree.
const branchBatch = 256

// BatchLen is the recommended NextBranches batch length: large enough to
// amortize the call, small enough to stay resident in L1.
const BatchLen = branchBatch

// Branches returns the number of recorded conditional branches, from the
// branch index (no stream scan).
func (r *Recording) Branches() int64 {
	var n int64
	for i := range r.chunks {
		n += int64(len(r.chunks[i].br))
	}
	return n
}

// BranchStats returns the recorded conditional-branch and taken counts via
// the branch index, touching only the indexed meta bytes.
func (r *Recording) BranchStats() (branches, taken int64) {
	for i := range r.chunks {
		c := &r.chunks[i]
		branches += int64(len(c.br))
		for _, pos := range c.br {
			if c.meta[pos]&metaTaken != 0 {
				taken++
			}
		}
	}
	return branches, taken
}

// ReplayBranches returns a cursor over the recording's branch index,
// positioned at the first branch. Cursors are independent; each is
// single-goroutine, but any number may replay one recording concurrently.
func (r *Recording) ReplayBranches() *BranchCursor {
	return &BranchCursor{rec: r}
}

// BranchCursor streams a Recording's conditional branches via the
// precomputed per-chunk branch index, implementing BranchSource.
type BranchCursor struct {
	rec     *Recording
	ci      int   // current chunk
	bi      int   // next entry in the chunk's branch index
	scanned int64 // instructions scanned past (see InstsScanned)
}

// NextBranches implements BranchSource: it jumps branch-to-branch through
// the index, never touching the instructions in between.
//
//bplint:hotpath batch fill for the accuracy fast path
func (c *BranchCursor) NextBranches(dst []BranchRec) int {
	n := 0
	for n < len(dst) {
		if c.ci >= len(c.rec.chunks) {
			c.scanned = c.rec.insts
			break
		}
		ch := &c.rec.chunks[c.ci]
		base := int64(c.ci) * chunkLen
		br := ch.br
		for n < len(dst) && c.bi < len(br) {
			pos := br[c.bi]
			dst[n] = BranchRec{
				InstIndex: base + int64(pos),
				PC:        ch.pc[pos],
				Taken:     ch.meta[pos]&metaTaken != 0,
			}
			c.scanned = base + int64(pos) + 1
			n++
			c.bi++
		}
		if c.bi == len(br) {
			c.ci++
			c.bi = 0
		}
	}
	return n
}

// InstsScanned implements BranchSource.
func (c *BranchCursor) InstsScanned() int64 { return c.scanned }

// Name identifies the recorded workload.
func (c *BranchCursor) Name() string { return c.rec.name }

// Reset rewinds the cursor to the first branch.
func (c *BranchCursor) Reset() { c.ci, c.bi, c.scanned = 0, 0, 0 }
