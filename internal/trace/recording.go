package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// A Recording is a materialized instruction stream: the record half of the
// record/replay trace layer. The experiment grid records each benchmark's
// stream once and replays it for every (predictor, budget) cell, the way
// trace-driven simulators amortize workload capture across a design sweep.
//
// Storage is struct-of-arrays, split into fixed-size chunks so recording
// allocates incrementally (no doubling spikes, bounded slack) and so the
// file codec (codec.go) can frame the stream. Two columns are sparse: Addr
// is stored only for instructions that carry one (loads/stores) and Target
// only for control transfers, cutting memory roughly in half versus []Inst.
// Replay reconstructs every Inst field bit-for-bit, which the equivalence
// tests in internal/tracestore enforce against live generation.
//
// A Recording is shared by pointer across every experiment goroutine once
// its constructor returns, and cursors replay it with no synchronization;
// the frozen analyzer proves nothing writes it after publication.
//
//bplint:frozen
type Recording struct {
	name   string
	chunks []chunk
	insts  int64

	// dig caches the recording's content identity, computed lazily (the
	// sanctioned write-once late publication) because most in-process
	// replays never need it — only the persistent result store keys on it.
	dig digestCell
}

// digestCell pairs the lazily-computed digest with its sync.Once in a
// struct of its own, so the oncepublish analyzer sees exactly one payload
// field behind the Once — the Recording's other fields are frozen at
// construction, not Once-published.
type digestCell struct {
	once sync.Once
	v    string // published inside once.Do only
}

// chunkLen is the instruction capacity of one chunk. At 64Ki instructions
// a chunk costs at most ~1.5 MB fully populated, so recording grows in
// bounded steps and partial tail chunks waste little.
const chunkLen = 1 << 16

// Per-instruction metadata bits packed alongside the 3-bit Kind.
const (
	metaKindMask  = 0x07
	metaTaken     = 0x08 // CondBranch resolved taken
	metaHasAddr   = 0x10 // instruction carries a nonzero Addr
	metaHasTarget = 0x20 // instruction carries a nonzero Target
)

// chunk is one struct-of-arrays segment of the stream. addr and target are
// positional side arrays: one entry per instruction whose meta byte sets
// the corresponding bit, in stream order. br is the chunk's branch index:
// the within-chunk positions of the conditional branches, built as the
// chunk is appended to — by Record and by the codec's read path alike, so
// a decoded recording carries an identical index — and consumed by the
// batch replay fast path (branch.go).
//
//bplint:frozen
type chunk struct {
	meta   []uint8
	src1   []int8
	src2   []int8
	dst    []int8
	pc     []uint64
	addr   []uint64
	target []uint64
	br     []int32
}

func (c *chunk) append(inst *Inst) {
	m := uint8(inst.Kind) & metaKindMask
	if inst.Kind == CondBranch {
		c.br = append(c.br, int32(len(c.meta)))
	}
	if inst.Taken {
		m |= metaTaken
	}
	if inst.Addr != 0 {
		m |= metaHasAddr
		c.addr = append(c.addr, inst.Addr)
	}
	if inst.Target != 0 {
		m |= metaHasTarget
		c.target = append(c.target, inst.Target)
	}
	c.meta = append(c.meta, m)
	c.src1 = append(c.src1, inst.Src1)
	c.src2 = append(c.src2, inst.Src2)
	c.dst = append(c.dst, inst.Dst)
	c.pc = append(c.pc, inst.PC)
}

// Record drains up to maxInsts instructions from src into a new Recording.
// The recording is immutable afterwards, so any number of Replay cursors
// may read it concurrently.
func Record(src Source, maxInsts int64) *Recording {
	rec := &Recording{name: src.Name()}
	var inst Inst
	for rec.insts < maxInsts && src.Next(&inst) {
		rec.append(&inst)
	}
	return rec
}

func (r *Recording) append(inst *Inst) {
	if len(r.chunks) == 0 || len(r.chunks[len(r.chunks)-1].meta) == chunkLen {
		r.chunks = append(r.chunks, chunk{
			meta: make([]uint8, 0, chunkLen),
			src1: make([]int8, 0, chunkLen),
			src2: make([]int8, 0, chunkLen),
			dst:  make([]int8, 0, chunkLen),
			pc:   make([]uint64, 0, chunkLen),
		})
	}
	r.chunks[len(r.chunks)-1].append(inst)
	r.insts++
}

// Name returns the recorded workload's name.
func (r *Recording) Name() string { return r.name }

// Len returns the number of recorded instructions.
func (r *Recording) Len() int64 { return r.insts }

// SizeBytes returns the in-memory footprint of the recorded columns.
func (r *Recording) SizeBytes() int64 {
	var n int64
	for i := range r.chunks {
		c := &r.chunks[i]
		n += int64(len(c.meta)) + int64(len(c.src1)) + int64(len(c.src2)) +
			int64(len(c.dst)) + 8*int64(len(c.pc)) +
			8*int64(len(c.addr)) + 8*int64(len(c.target)) +
			4*int64(len(c.br))
	}
	return n
}

// Digest returns the recording's stable content identity: the hex SHA-256
// of its BPTRACE1 byte stream (codec.go). Because the codec is a pure
// function of the instruction stream, the digest survives process
// boundaries and storage-layout changes alike — a recording decoded from a
// trace file, or rebuilt from the same workload seed, digests identically
// (TestDigestStableAcrossCodec). The persistent result store keys cells on
// it so a memoized Result is never served against a stream it was not
// measured on. Computed once per recording and cached; safe for concurrent
// callers.
func (r *Recording) Digest() string {
	r.dig.once.Do(func() {
		h := sha256.New()
		// sha256's Write never fails, so WriteTo cannot return an error
		// here.
		r.WriteTo(h)
		r.dig.v = hex.EncodeToString(h.Sum(nil))
	})
	return r.dig.v
}

// Replay returns a new cursor positioned at the start of the recording.
// Cursors are independent; each is single-goroutine, but any number may
// replay one recording concurrently.
func (r *Recording) Replay() *Cursor { return &Cursor{rec: r, br: BranchCursor{rec: r}} }

// Cursor streams a Recording back: as a Source, reconstructing every Inst
// exactly, or as a BranchSource, batch-serving only the conditional
// branches through the recording's branch index. A consumer commits to one
// protocol per cursor — the two maintain independent positions, so mixing
// them would silently skip or repeat instructions; Cursor panics instead.
type Cursor struct {
	rec    *Recording
	ci     int // current chunk
	idx    int // next instruction within chunk
	addrI  int // next sparse addr within chunk
	targI  int // next sparse target within chunk
	served int64
	br     BranchCursor // branch-protocol position, used instead of the above
}

// Next implements Source, reconstructing the recorded instruction exactly.
//
//bplint:hotpath per-instruction replay fallback
func (c *Cursor) Next(inst *Inst) bool {
	if c.br.scanned != 0 || c.br.bi != 0 || c.br.ci != 0 {
		panic("trace: replay cursor used with both Next and NextBranches")
	}
	for {
		if c.ci >= len(c.rec.chunks) {
			return false
		}
		ch := &c.rec.chunks[c.ci]
		if c.idx < len(ch.meta) {
			m := ch.meta[c.idx]
			inst.Kind = Kind(m & metaKindMask)
			inst.Taken = m&metaTaken != 0
			inst.PC = ch.pc[c.idx]
			inst.Src1 = ch.src1[c.idx]
			inst.Src2 = ch.src2[c.idx]
			inst.Dst = ch.dst[c.idx]
			if m&metaHasAddr != 0 {
				inst.Addr = ch.addr[c.addrI]
				c.addrI++
			} else {
				inst.Addr = 0
			}
			if m&metaHasTarget != 0 {
				inst.Target = ch.target[c.targI]
				c.targI++
			} else {
				inst.Target = 0
			}
			c.idx++
			c.served++
			return true
		}
		c.ci++
		c.idx, c.addrI, c.targI = 0, 0, 0
	}
}

// Name implements Source.
func (c *Cursor) Name() string { return c.rec.name }

// NextInsts implements InstSource: it reconstructs the next len(dst)
// instructions straight from the recording's struct-of-arrays chunks, one
// chunk segment at a time, so consumers pay one call (and one set of bounds
// checks on the hoisted columns) per batch instead of per instruction. It
// shares the instruction protocol's position with Next — the two may be
// interleaved — but, like Next, it must not be mixed with the branch
// protocol on one cursor.
//
//bplint:hotpath batch fill for the timing fast path
func (c *Cursor) NextInsts(dst []Inst) int {
	if c.br.scanned != 0 || c.br.bi != 0 || c.br.ci != 0 {
		panic("trace: replay cursor used with both NextInsts and NextBranches")
	}
	n := 0
	for n < len(dst) {
		if c.ci >= len(c.rec.chunks) {
			break
		}
		ch := &c.rec.chunks[c.ci]
		if c.idx >= len(ch.meta) {
			c.ci++
			c.idx, c.addrI, c.targI = 0, 0, 0
			continue
		}
		k := len(ch.meta) - c.idx
		if k > len(dst)-n {
			k = len(dst) - n
		}
		meta := ch.meta[c.idx : c.idx+k]
		pc := ch.pc[c.idx : c.idx+k]
		src1 := ch.src1[c.idx : c.idx+k]
		src2 := ch.src2[c.idx : c.idx+k]
		dstReg := ch.dst[c.idx : c.idx+k]
		for j := 0; j < k; j++ {
			m := meta[j]
			out := &dst[n+j]
			out.Kind = Kind(m & metaKindMask)
			out.Taken = m&metaTaken != 0
			out.PC = pc[j]
			out.Src1 = src1[j]
			out.Src2 = src2[j]
			out.Dst = dstReg[j]
			if m&metaHasAddr != 0 {
				out.Addr = ch.addr[c.addrI]
				c.addrI++
			} else {
				out.Addr = 0
			}
			if m&metaHasTarget != 0 {
				out.Target = ch.target[c.targI]
				c.targI++
			} else {
				out.Target = 0
			}
		}
		c.idx += k
		n += k
	}
	c.served += int64(n)
	return n
}

// Recording returns the recording this cursor replays — consumers that
// precompute per-recording side data (the timing simulator's memory-latency
// sidecar) use it to verify the stream identity before trusting the data.
func (c *Cursor) Recording() *Recording { return c.rec }

// Pos returns the number of instructions served so far under the
// instruction protocol (Next/NextInsts).
func (c *Cursor) Pos() int64 { return c.served }

// NextBranches implements BranchSource via the recording's branch index
// (see BranchCursor). It must not be mixed with Next on one cursor.
//
//bplint:hotpath forwards to the indexed branch fill
func (c *Cursor) NextBranches(dst []BranchRec) int {
	if c.served != 0 {
		panic("trace: replay cursor used with both Next and NextBranches")
	}
	return c.br.NextBranches(dst)
}

// InstsScanned implements BranchSource.
func (c *Cursor) InstsScanned() int64 { return c.br.InstsScanned() }

// Reset rewinds the cursor to the start of the recording under both
// protocols, allowing a fresh replay without a new allocation.
func (c *Cursor) Reset() {
	c.ci, c.idx, c.addrI, c.targI, c.served = 0, 0, 0, 0, 0
	c.br.Reset()
}
