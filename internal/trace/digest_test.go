package trace

import (
	"bytes"
	"regexp"
	"sync"
	"testing"
)

// digestTestStream builds a small deterministic stream exercising every
// sparse column (addrs, targets, branches).
func digestTestStream(n int, pcBase uint64) *Recording {
	rec := &Recording{name: "digest-test"}
	for i := 0; i < n; i++ {
		inst := Inst{Kind: ALU, PC: pcBase + uint64(4*i)}
		switch i % 5 {
		case 1:
			inst.Kind = Load
			inst.Addr = 0x1000 + uint64(8*i)
		case 2:
			inst.Kind = CondBranch
			inst.Taken = i%2 == 0
			inst.Target = pcBase + uint64(4*i) + 64
		case 3:
			inst.Kind = Store
			inst.Addr = 0x2000 + uint64(16*i)
		}
		rec.append(&inst)
	}
	return rec
}

func TestDigestDeterministic(t *testing.T) {
	a := digestTestStream(500, 0x4000)
	b := digestTestStream(500, 0x4000)
	if a.Digest() != b.Digest() {
		t.Fatalf("identical streams digest differently: %s vs %s", a.Digest(), b.Digest())
	}
	if a.Digest() != a.Digest() {
		t.Fatal("digest not stable across calls")
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a.Digest()) {
		t.Fatalf("digest is not hex sha-256: %q", a.Digest())
	}
}

func TestDigestDistinguishesStreams(t *testing.T) {
	base := digestTestStream(500, 0x4000)
	shifted := digestTestStream(500, 0x4004)
	longer := digestTestStream(501, 0x4000)
	if base.Digest() == shifted.Digest() {
		t.Fatal("different PCs, same digest")
	}
	if base.Digest() == longer.Digest() {
		t.Fatal("different lengths, same digest")
	}
}

// TestDigestStableAcrossCodec pins the property the persistent result store
// depends on: a recording round-tripped through the BPTRACE1 codec — the
// cross-process interchange path — digests identically to the original, so
// store keys survive process boundaries.
func TestDigestStableAcrossCodec(t *testing.T) {
	rec := digestTestStream(2000, 0x8000)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := decoded.Digest(), rec.Digest(); got != want {
		t.Fatalf("codec round-trip changed digest: %s -> %s", want, got)
	}
}

// TestDigestConcurrent hammers the lazy once-published digest from many
// goroutines; run under -race this is the runtime twin of the frozen
// analyzer's sanction for sync.Once late writes.
func TestDigestConcurrent(t *testing.T) {
	rec := digestTestStream(1000, 0x4000)
	want := digestTestStream(1000, 0x4000).Digest()
	var wg sync.WaitGroup
	got := make([]string, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = rec.Digest()
		}(i)
	}
	wg.Wait()
	for i, d := range got {
		if d != want {
			t.Fatalf("goroutine %d saw digest %s, want %s", i, d, want)
		}
	}
}
