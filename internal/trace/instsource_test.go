package trace

import "testing"

// drainInsts collects the whole stream of an InstSource using the given
// batch size.
func drainInsts(is InstSource, batchLen int) []Inst {
	var out []Inst
	batch := make([]Inst, batchLen)
	for {
		n := is.NextInsts(batch)
		if n == 0 {
			return out
		}
		out = append(out, batch[:n]...)
	}
}

func TestNextInstsMatchesStream(t *testing.T) {
	// Cross two chunk boundaries so the segment arithmetic and the sparse
	// addr/target column positions are exercised across chunk handoff.
	const n = 2*chunkLen + 321
	want := drain(&lcgSource{state: 11, n: n}, n)
	rec := Record(&lcgSource{state: 11, n: n}, n)
	// Batch sizes around and away from the chunk granularity: a ragged
	// size, a single-instruction size, and the recommended one.
	for _, batchLen := range []int{1, 7, InstBatchLen} {
		cur := rec.Replay()
		got := drainInsts(cur, batchLen)
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d insts, want %d", batchLen, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: inst %d = %+v, want %+v", batchLen, i, got[i], want[i])
			}
		}
		if cur.Pos() != n {
			t.Fatalf("batch %d: Pos = %d after exhaustion, want %d", batchLen, cur.Pos(), n)
		}
	}
}

func TestNextInstsInterleavesWithNext(t *testing.T) {
	// NextInsts shares the instruction protocol's position with Next, so
	// alternating the two walks the stream exactly once.
	const n = chunkLen + 500
	want := drain(&lcgSource{state: 5, n: n}, n)
	cur := Record(&lcgSource{state: 5, n: n}, n).Replay()
	var got []Inst
	var batch [33]Inst
	for {
		var inst Inst
		if !cur.Next(&inst) {
			break
		}
		got = append(got, inst)
		k := cur.NextInsts(batch[:])
		got = append(got, batch[:k]...)
		if k == 0 {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("interleaved drain served %d insts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNextInstsProtocolMixPanics(t *testing.T) {
	rec := Record(&lcgSource{state: 17, n: 2000}, 2000)

	mustPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on protocol mix")
				}
			}()
			f()
		})
	}
	mustPanic("instbatch-then-branches", func() {
		cur := rec.Replay()
		var insts [8]Inst
		cur.NextInsts(insts[:])
		var batch [8]BranchRec
		cur.NextBranches(batch[:])
	})
	mustPanic("branches-then-instbatch", func() {
		cur := rec.Replay()
		var batch [8]BranchRec
		cur.NextBranches(batch[:])
		var insts [8]Inst
		cur.NextInsts(insts[:])
	})
}

func TestNextInstsReset(t *testing.T) {
	const n = chunkLen + 50
	rec := Record(&lcgSource{state: 13, n: n}, n)
	cur := rec.Replay()
	first := append([]Inst(nil), drainInsts(cur, 31)...)
	cur.Reset()
	if cur.Pos() != 0 {
		t.Fatalf("Pos = %d after Reset", cur.Pos())
	}
	second := drainInsts(cur, 31)
	if len(first) != len(second) {
		t.Fatalf("replay after Reset served %d insts, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("inst %d differs after Reset", i)
		}
	}
}

func TestNextInstsEmptyDst(t *testing.T) {
	const n = 1000
	rec := Record(&lcgSource{state: 3, n: n}, n)
	cur := rec.Replay()
	if k := cur.NextInsts(nil); k != 0 {
		t.Fatalf("NextInsts(nil) = %d", k)
	}
	// An empty dst must not disturb the position: the full stream still
	// replays.
	if got := drainInsts(cur, InstBatchLen); int64(len(got)) != rec.Len() {
		t.Fatalf("after empty dst: %d insts, want %d", len(got), rec.Len())
	}
}

func TestCursorRecordingAccessor(t *testing.T) {
	rec := Record(&lcgSource{state: 1, n: 100}, 100)
	if got := rec.Replay().Recording(); got != rec {
		t.Fatalf("Recording() = %p, want %p", got, rec)
	}
}
