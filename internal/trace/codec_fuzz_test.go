package trace

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip drives arbitrary bytes through the BPTRACE1 decoder.
// Any input the decoder accepts must re-encode to a canonical byte string
// that is a fixed point (decode→encode→decode→encode is byte-identical)
// and must replay to the same instruction stream — the reproducibility
// contract the experiment grids and cmd/tracegen rely on. Inputs the
// decoder rejects must fail with an error, never a panic.
func FuzzCodecRoundTrip(f *testing.F) {
	encode := func(name string, insts []Inst) []byte {
		rec := &Recording{name: name}
		for i := range insts {
			rec.append(&insts[i])
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(encode("empty", nil))
	f.Add(encode("mixed", []Inst{
		{PC: 0x1000, Kind: ALU, Src1: 1, Src2: 2, Dst: 3},
		{PC: 0x1004, Kind: Load, Src1: 3, Dst: 4, Addr: 0xdead0000},
		{PC: 0x1008, Kind: CondBranch, Src1: 4, Taken: true, Target: 0x1000},
		{PC: 0x1000, Kind: Store, Src1: 4, Src2: 1, Addr: 0xdeacfff8},
	}))
	// Backwards PC and address deltas exercise the zigzag path.
	f.Add(encode("backwards", []Inst{
		{PC: 0xffff_ffff_ffff_fff0, Kind: ALU},
		{PC: 0x10, Kind: Load, Addr: 0xffff_ffff_0000_0000},
		{PC: 0x8, Kind: Load, Addr: 0x8},
	}))
	f.Add([]byte("BPTRACE1\x00\x00"))
	f.Add([]byte("NOTATRACE"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadRecording(bytes.NewReader(data))
		if err != nil {
			return // rejected input: an error, not a crash, is the contract
		}
		var first bytes.Buffer
		if _, err := rec.WriteTo(&first); err != nil {
			t.Fatalf("re-encoding a decoded recording: %v", err)
		}
		rec2, err := ReadRecording(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		var second bytes.Buffer
		if _, err := rec2.WriteTo(&second); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode is not a fixed point:\nfirst:  %x\nsecond: %x", first.Bytes(), second.Bytes())
		}
		if rec.Name() != rec2.Name() || rec.Len() != rec2.Len() {
			t.Fatalf("header mismatch: (%q, %d) vs (%q, %d)", rec.Name(), rec.Len(), rec2.Name(), rec2.Len())
		}
		var a, b Inst
		ca, cb := rec.Replay(), rec2.Replay()
		for i := int64(0); ; i++ {
			okA, okB := ca.Next(&a), cb.Next(&b)
			if okA != okB {
				t.Fatalf("stream lengths diverge at %d", i)
			}
			if !okA {
				break
			}
			if a != b {
				t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
			}
		}
	})
}
