package trace

import (
	"bytes"
	"sync"
	"testing"
)

// drainBranches collects the whole branch stream of a BranchSource using the
// given batch size.
func drainBranches(bs BranchSource, batchLen int) []BranchRec {
	var out []BranchRec
	batch := make([]BranchRec, batchLen)
	for {
		n := bs.NextBranches(batch)
		if n == 0 {
			return out
		}
		out = append(out, batch[:n]...)
	}
}

// expectedBranches filters a drained instruction stream down to the
// BranchRecs the fast path should serve.
func expectedBranches(insts []Inst) []BranchRec {
	var out []BranchRec
	for i := range insts {
		if insts[i].IsBranch() {
			out = append(out, BranchRec{
				InstIndex: int64(i),
				PC:        insts[i].PC,
				Taken:     insts[i].Taken,
			})
		}
	}
	return out
}

func TestBranchIndexMatchesStream(t *testing.T) {
	// Cross two chunk boundaries so chunk-base arithmetic is exercised.
	const n = 2*chunkLen + 321
	insts := drain(&lcgSource{state: 11, n: n}, n)
	rec := Record(&lcgSource{state: 11, n: n}, n)
	want := expectedBranches(insts)
	if rec.Branches() != int64(len(want)) {
		t.Fatalf("Branches() = %d, want %d", rec.Branches(), len(want))
	}
	// Batch sizes around and away from the index granularity: a ragged
	// size, a single-record size, and the recommended one.
	for _, batchLen := range []int{1, 7, BatchLen} {
		cur := rec.ReplayBranches()
		got := drainBranches(cur, batchLen)
		if len(got) != len(want) {
			t.Fatalf("batch %d: %d branches, want %d", batchLen, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: branch %d = %+v, want %+v", batchLen, i, got[i], want[i])
			}
		}
		if cur.InstsScanned() != n {
			t.Fatalf("batch %d: InstsScanned = %d after exhaustion, want %d",
				batchLen, cur.InstsScanned(), n)
		}
	}
}

func TestBranchCursorScannedTracksServed(t *testing.T) {
	const n = chunkLen + 99
	rec := Record(&lcgSource{state: 2, n: n}, n)
	want := expectedBranches(drain(&lcgSource{state: 2, n: n}, n))
	cur := rec.ReplayBranches()
	var batch [13]BranchRec
	served := 0
	for {
		k := cur.NextBranches(batch[:])
		if k == 0 {
			break
		}
		served += k
		// Mid-stream, scanned covers exactly through the last branch
		// served: its InstIndex plus one.
		if got, want := cur.InstsScanned(), want[served-1].InstIndex+1; got != want {
			t.Fatalf("after %d branches: InstsScanned = %d, want %d", served, got, want)
		}
	}
	if cur.InstsScanned() != n {
		t.Fatalf("exhausted: InstsScanned = %d, want %d", cur.InstsScanned(), n)
	}
}

func TestBranchStats(t *testing.T) {
	const n = chunkLen + 1234
	insts := drain(&lcgSource{state: 9, n: n}, n)
	rec := Record(&lcgSource{state: 9, n: n}, n)
	var wantBranches, wantTaken int64
	for i := range insts {
		if insts[i].IsBranch() {
			wantBranches++
			if insts[i].Taken {
				wantTaken++
			}
		}
	}
	branches, taken := rec.BranchStats()
	if branches != wantBranches || taken != wantTaken {
		t.Fatalf("BranchStats = (%d, %d), want (%d, %d)",
			branches, taken, wantBranches, wantTaken)
	}
}

func TestCountBranchesBatchedMatchesScan(t *testing.T) {
	const n = chunkLen + 777
	rec := Record(&lcgSource{state: 4, n: n}, n)
	// Budgets: beyond the stream, exactly the stream, mid-stream (likely
	// landing between branches), and a tiny prefix.
	for _, max := range []int64{n + 5000, n, n / 2, 37} {
		// The opaque wrapper hides the branch index, forcing the scan.
		wantInsts, wantBranches := CountBranches(opaque{rec.Replay()}, max)
		gotInsts, gotBranches := CountBranches(rec.Replay(), max)
		if gotInsts != wantInsts || gotBranches != wantBranches {
			t.Fatalf("max %d: batched CountBranches = (%d, %d), scan = (%d, %d)",
				max, gotInsts, gotBranches, wantInsts, wantBranches)
		}
	}
}

// opaque hides every protocol but Source, forcing consumers down the
// instruction-at-a-time path.
type opaque struct{ src Source }

func (o opaque) Next(inst *Inst) bool { return o.src.Next(inst) }
func (o opaque) Name() string         { return o.src.Name() }

func TestCodecPreservesBranchIndex(t *testing.T) {
	const n = chunkLen + 555
	rec := Record(&lcgSource{state: 6, n: n}, n)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	dec, err := ReadRecording(&buf)
	if err != nil {
		t.Fatalf("ReadRecording: %v", err)
	}
	b1, t1 := rec.BranchStats()
	b2, t2 := dec.BranchStats()
	if b1 != b2 || t1 != t2 {
		t.Fatalf("decoded BranchStats = (%d, %d), want (%d, %d)", b2, t2, b1, t1)
	}
	want := drainBranches(rec.ReplayBranches(), BatchLen)
	got := drainBranches(dec.ReplayBranches(), BatchLen)
	if len(got) != len(want) {
		t.Fatalf("decoded branch stream has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded branch %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentBranchCursors replays one recording from many cursors at
// once; under -race this proves the read-only sharing is clean.
func TestConcurrentBranchCursors(t *testing.T) {
	const n = chunkLen + 444
	rec := Record(&lcgSource{state: 8, n: n}, n)
	want := drainBranches(rec.ReplayBranches(), BatchLen)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(batchLen int) {
			defer wg.Done()
			got := drainBranches(rec.ReplayBranches(), batchLen)
			if len(got) != len(want) {
				t.Errorf("batch %d: %d branches, want %d", batchLen, len(got), len(want))
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("batch %d: branch %d differs", batchLen, i)
					return
				}
			}
		}(16 + g)
	}
	wg.Wait()
}

func TestBranchCursorReset(t *testing.T) {
	const n = chunkLen + 50
	rec := Record(&lcgSource{state: 13, n: n}, n)
	cur := rec.ReplayBranches()
	first := append([]BranchRec(nil), drainBranches(cur, 31)...)
	cur.Reset()
	if cur.InstsScanned() != 0 {
		t.Fatalf("InstsScanned = %d after Reset", cur.InstsScanned())
	}
	second := drainBranches(cur, 31)
	if len(first) != len(second) {
		t.Fatalf("replay after Reset served %d branches, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("branch %d differs after Reset", i)
		}
	}
}

func TestCursorResetCoversBothProtocols(t *testing.T) {
	rec := Record(&lcgSource{state: 21, n: 4000}, 4000)
	cur := rec.Replay()
	var batch [64]BranchRec
	cur.NextBranches(batch[:])
	cur.Reset()
	// After Reset the cursor is fresh: the instruction protocol must work
	// and produce the stream head.
	var inst Inst
	if !cur.Next(&inst) {
		t.Fatal("Next failed after Reset")
	}
	head := drain(rec.Replay(), 1)[0]
	if inst != head {
		t.Fatalf("post-Reset Next = %+v, want stream head %+v", inst, head)
	}
}

func TestCursorProtocolMixPanics(t *testing.T) {
	rec := Record(&lcgSource{state: 17, n: 2000}, 2000)

	mustPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on protocol mix")
				}
			}()
			f()
		})
	}
	mustPanic("next-then-branches", func() {
		cur := rec.Replay()
		var inst Inst
		cur.Next(&inst)
		var batch [8]BranchRec
		cur.NextBranches(batch[:])
	})
	mustPanic("branches-then-next", func() {
		cur := rec.Replay()
		var batch [8]BranchRec
		cur.NextBranches(batch[:])
		var inst Inst
		cur.Next(&inst)
	})
}

func TestNextBranchesEmptyDst(t *testing.T) {
	rec := Record(&lcgSource{state: 3, n: 1000}, 1000)
	cur := rec.ReplayBranches()
	if n := cur.NextBranches(nil); n != 0 {
		t.Fatalf("NextBranches(nil) = %d", n)
	}
	// An empty dst must not disturb the position: the full stream still
	// replays.
	got := drainBranches(cur, BatchLen)
	want := expectedBranches(drain(&lcgSource{state: 3, n: 1000}, 1000))
	if len(got) != len(want) {
		t.Fatalf("after empty dst: %d branches, want %d", len(got), len(want))
	}
}
