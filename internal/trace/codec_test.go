package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	const n = chunkLen + 4567 // cross a chunk boundary
	rec := Record(&lcgSource{state: 11, n: n}, n)

	var buf bytes.Buffer
	written, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
	}

	dec, err := ReadRecording(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadRecording: %v", err)
	}
	if dec.Name() != rec.Name() || dec.Len() != rec.Len() {
		t.Fatalf("decoded (%q, %d), want (%q, %d)", dec.Name(), dec.Len(), rec.Name(), rec.Len())
	}

	// The decoded stream must be byte-identical instruction-for-instruction.
	want := drain(rec.Replay(), n)
	got := drain(dec.Replay(), n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d differs after round trip: %+v vs %+v", i, got[i], want[i])
		}
	}

	// And the format is deterministic: re-encoding reproduces the bytes.
	var buf2 bytes.Buffer
	if _, err := dec.WriteTo(&buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoded trace differs: %d vs %d bytes", buf.Len(), buf2.Len())
	}
}

func TestCodecCompactness(t *testing.T) {
	const n = 50_000
	rec := Record(&lcgSource{state: 2, n: n}, n)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Delta+varint should beat the ~40-byte []Inst representation by a
	// wide margin; anything under 16 bytes/inst proves the deltas engage.
	if perInst := float64(buf.Len()) / n; perInst > 16 {
		t.Fatalf("encoded %.1f bytes/inst; varint-delta encoding not effective", perInst)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadRecording(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadRecording(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated payload: a valid header claiming more instructions than
	// the body holds.
	rec := Record(&lcgSource{state: 9, n: 100}, 100)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecording(bytes.NewReader(buf.Bytes()[:buf.Len()-10])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 4, -4, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", d, got)
		}
	}
}
