package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format (cmd/tracegen -record / -replay): a deterministic
// varint-delta encoding of a Recording. The format is a pure function of
// the instruction stream, so encode→decode→encode is byte-identical (the
// round-trip test in codec_test.go enforces this).
//
//	magic   "BPTRACE1"
//	name    uvarint length + bytes
//	insts   uvarint count
//	then per instruction, in stream order:
//	  meta    1 byte (kind | taken | hasAddr | hasTarget, as in recording.go)
//	  src1, src2, dst   1 byte each (int8)
//	  pc      zigzag varint delta from the previous instruction's PC
//	  addr    zigzag varint delta from the previous recorded Addr (only if hasAddr)
//	  target  zigzag varint delta from the previous recorded Target (only if hasTarget)
//
// Delta+zigzag keeps sequential PCs (usually +4) and strided addresses to
// one or two bytes each.
const traceMagic = "BPTRACE1"

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// countingWriter tracks bytes written for WriteTo's contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo encodes the recording in the binary trace format. It implements
// io.WriterTo.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		bw.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	bw.WriteString(traceMagic)
	putUvarint(uint64(len(r.name)))
	bw.WriteString(r.name)
	putUvarint(uint64(r.insts))

	var inst Inst
	var prevPC, prevAddr, prevTarget uint64
	cur := r.Replay()
	for cur.Next(&inst) {
		m := uint8(inst.Kind) & metaKindMask
		if inst.Taken {
			m |= metaTaken
		}
		if inst.Addr != 0 {
			m |= metaHasAddr
		}
		if inst.Target != 0 {
			m |= metaHasTarget
		}
		bw.WriteByte(m)
		bw.WriteByte(uint8(inst.Src1))
		bw.WriteByte(uint8(inst.Src2))
		bw.WriteByte(uint8(inst.Dst))
		putUvarint(zigzag(int64(inst.PC - prevPC)))
		prevPC = inst.PC
		if m&metaHasAddr != 0 {
			putUvarint(zigzag(int64(inst.Addr - prevAddr)))
			prevAddr = inst.Addr
		}
		if m&metaHasTarget != 0 {
			putUvarint(zigzag(int64(inst.Target - prevTarget)))
			prevTarget = inst.Target
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadRecording decodes a binary trace written by WriteTo.
func ReadRecording(rd io.Reader) (*Recording, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, traceMagic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	const maxNameLen = 1 << 10
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", nameLen, maxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	insts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", err)
	}

	rec := &Recording{name: string(name)}
	var inst Inst
	var prevPC, prevAddr, prevTarget uint64
	for i := uint64(0); i < insts; i++ {
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(br, hdr); err != nil {
			return nil, fmt.Errorf("trace: instruction %d: %w", i, err)
		}
		m := hdr[0]
		if Kind(m&metaKindMask) >= numKinds {
			return nil, fmt.Errorf("trace: instruction %d: invalid kind %d", i, m&metaKindMask)
		}
		inst.Kind = Kind(m & metaKindMask)
		inst.Taken = m&metaTaken != 0
		inst.Src1 = int8(hdr[1])
		inst.Src2 = int8(hdr[2])
		inst.Dst = int8(hdr[3])
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: instruction %d pc: %w", i, err)
		}
		prevPC += uint64(unzigzag(d))
		inst.PC = prevPC
		inst.Addr = 0
		if m&metaHasAddr != 0 {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: instruction %d addr: %w", i, err)
			}
			prevAddr += uint64(unzigzag(d))
			inst.Addr = prevAddr
		}
		inst.Target = 0
		if m&metaHasTarget != 0 {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: instruction %d target: %w", i, err)
			}
			prevTarget += uint64(unzigzag(d))
			inst.Target = prevTarget
		}
		rec.append(&inst)
	}
	return rec, nil
}
