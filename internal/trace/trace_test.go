package trace

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		ALU: "alu", Mul: "mul", FPU: "fpu", Load: "load",
		Store: "store", CondBranch: "br", Jump: "jmp",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() != "?" {
		t.Error("unknown kind should render ?")
	}
}

func TestIsBranch(t *testing.T) {
	if !(&Inst{Kind: CondBranch}).IsBranch() {
		t.Error("CondBranch not a branch")
	}
	for _, k := range []Kind{ALU, Jump, Load, Store} {
		if (&Inst{Kind: k}).IsBranch() {
			t.Errorf("%v reported as branch", k)
		}
	}
}

// fixedGen emits a fixed slice of instructions.
type fixedGen struct {
	insts []Inst
	pos   int
}

func (g *fixedGen) Next(inst *Inst) bool {
	if g.pos >= len(g.insts) {
		return false
	}
	*inst = g.insts[g.pos]
	g.pos++
	return true
}

func (g *fixedGen) Name() string { return "fixed" }

func TestCountBranches(t *testing.T) {
	g := &fixedGen{insts: []Inst{
		{Kind: ALU}, {Kind: CondBranch}, {Kind: Load},
		{Kind: CondBranch}, {Kind: Jump},
	}}
	insts, branches := CountBranches(g, 100)
	if insts != 5 || branches != 2 {
		t.Fatalf("counted %d/%d", insts, branches)
	}
}

func TestCountBranchesBounded(t *testing.T) {
	g := &fixedGen{insts: make([]Inst, 100)}
	insts, _ := CountBranches(g, 10)
	if insts != 10 {
		t.Fatalf("bound ignored: %d", insts)
	}
}

func TestNumKindsConsistent(t *testing.T) {
	if NumKinds != 7 {
		t.Fatalf("NumKinds = %d; update tests when adding kinds", NumKinds)
	}
}
