// Package trace defines the dynamic instruction stream interface between the
// synthetic workload generators and the two simulators: the functional
// branch-accuracy driver and the cycle-level pipeline model. It plays the
// role SimpleScalar's instruction feed plays in the paper's methodology.
package trace

// Kind classifies an instruction for the timing model.
type Kind uint8

// Instruction kinds. The synthetic ISA is deliberately small: enough
// structure for an out-of-order core's timing to be realistic (dependencies,
// memory, multi-cycle ops, control flow) and nothing more.
//
//bplint:enum Kind
const (
	// ALU is a single-cycle integer operation.
	ALU Kind = iota
	// Mul is a multi-cycle integer multiply/divide.
	Mul
	// FPU is a pipelined multi-cycle floating-point operation.
	FPU
	// Load reads memory at Addr into Dst.
	Load
	// Store writes memory at Addr.
	Store
	// CondBranch is a conditional branch with outcome Taken and target
	// Target; it is the only kind the direction predictors see.
	CondBranch
	// Jump is an unconditional control transfer (jump, call, return).
	Jump
	numKinds
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Mul:
		return "mul"
	case FPU:
		return "fpu"
	case Load:
		return "load"
	case Store:
		return "store"
	case CondBranch:
		return "br"
	case Jump:
		return "jmp"
	default:
		return "?"
	}
}

// NumKinds is the number of instruction kinds.
const NumKinds = int(numKinds)

// NoReg marks an absent register operand.
const NoReg = int8(-1)

// NumRegs is the architectural register count of the synthetic ISA.
const NumRegs = 32

// Inst is one dynamic instruction.
type Inst struct {
	// PC is the word-aligned instruction address.
	PC uint64
	// Kind classifies the instruction.
	Kind Kind
	// Src1 and Src2 are source registers, NoReg if absent.
	Src1, Src2 int8
	// Dst is the destination register, NoReg if absent.
	Dst int8
	// Addr is the effective address of a Load or Store.
	Addr uint64
	// Taken is the resolved direction of a CondBranch.
	Taken bool
	// Target is the destination of a taken CondBranch or a Jump.
	Target uint64
}

// IsBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsBranch() bool { return i.Kind == CondBranch }

// Source produces a dynamic instruction stream. Both live generators
// (workload.Program) and recorded-trace cursors (Recording.Replay)
// implement it; the simulators consume either interchangeably.
// Implementations must be deterministic for a given construction seed.
type Source interface {
	// Next fills inst with the next dynamic instruction and reports
	// whether one was produced; false means end of stream.
	Next(inst *Inst) bool
	// Name identifies the workload.
	Name() string
}

// Generator is the historical name for a Source that synthesizes its
// stream live; kept as an alias for the public API.
type Generator = Source

// InstSource is the instruction-batch fast-path protocol: a stream that can
// fill whole batches of Inst records at once instead of reconstructing one
// instruction per virtual call. Recording replay cursors implement it
// straight from the recording's struct-of-arrays chunks; the timing
// simulator (internal/pipeline) detects it and switches to a batched inner
// loop with bit-identical results. Unlike BranchSource, InstSource shares
// the Source protocol's position — Next and NextInsts may be interleaved on
// one cursor — but neither may be mixed with the branch protocol.
type InstSource interface {
	Source
	// NextInsts fills dst with the next instructions of the stream in
	// order and returns how many were written; 0 means end of stream
	// (and is only returned with an empty dst on a stream that has
	// instructions left).
	NextInsts(dst []Inst) int
}

// InstBatchLen is the recommended NextInsts batch length: large enough to
// amortize the per-batch call, small enough that the batch stays resident
// in L1 (256 instructions ≈ 10 KB).
const InstBatchLen = 256

// CountBranches drains up to maxInsts instructions from g and returns the
// instruction and conditional-branch counts — a convenience for tests and
// workload characterization. A BranchSource (a recording's replay cursor,
// a live generator) is counted through its branch index instead of being
// drained one instruction at a time; the counts are identical.
func CountBranches(g Source, maxInsts int64) (insts, branches int64) {
	if bs, ok := g.(BranchSource); ok {
		return countBranchesBatched(bs, maxInsts)
	}
	var in Inst
	for insts < maxInsts && g.Next(&in) {
		insts++
		if in.IsBranch() {
			branches++
		}
	}
	return insts, branches
}

// countBranchesBatched is CountBranches over the batch protocol: branches
// are counted from batch records, and the instruction count is
// reconstructed from InstIndex exactly as the drain would have counted it.
func countBranchesBatched(bs BranchSource, maxInsts int64) (insts, branches int64) {
	var batch [branchBatch]BranchRec
	for {
		n := bs.NextBranches(batch[:])
		if n == 0 {
			insts = bs.InstsScanned()
			if insts > maxInsts {
				insts = maxInsts
			}
			return insts, branches
		}
		for i := 0; i < n; i++ {
			if batch[i].InstIndex >= maxInsts {
				return maxInsts, branches
			}
			branches++
		}
	}
}
