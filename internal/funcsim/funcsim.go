// Package funcsim is the functional (accuracy-only) branch prediction
// driver: it streams a workload's conditional branches through a predictor
// in program order and counts mispredictions. It is the engine behind the
// misprediction-rate experiments (Figures 1, 5 and 6) where timing does not
// matter — except for cycle-aware predictors like gshare.fast, for which it
// approximates fetch timing by advancing one cycle per fetch-width
// instructions.
package funcsim

import (
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
)

// Options configures a functional run.
type Options struct {
	// MaxInsts bounds the dynamic instruction count (branches included).
	MaxInsts int64
	// WarmupInsts are executed and trained on but excluded from the
	// misprediction statistics, mirroring the paper's practice of
	// skipping each benchmark's initialization phase.
	WarmupInsts int64
	// FetchWidth sets the cycle approximation for cycle-aware
	// predictors: the fetch clock advances every FetchWidth
	// instructions. Zero defaults to 3, the *effective* fetch throughput
	// of the simulated core (the nominal width is 8, but stalls and
	// taken-branch fetch breaks keep sustained IPC near 2-3, and the
	// timing simulator supplies real cycles anyway).
	FetchWidth int
	// PerClass, with a generator implementing BranchClassifier, collects
	// misprediction rates per branch behaviour class — a calibration
	// diagnostic, not a paper result.
	PerClass bool
	// BlockBranches caps the branches grouped into one prediction block
	// by RunBlocks (default 8, one fetch block's worth).
	BlockBranches int
}

// BranchClassifier is implemented by workload generators that can report
// the behaviour class of a static branch, enabling per-class diagnostics.
type BranchClassifier interface {
	BranchClassName(pc uint64) (string, bool)
}

// Result summarizes a functional run.
type Result struct {
	Predictor    string
	Workload     string
	Insts        int64
	Branches     int64 // measured branches (after warm-up)
	Mispredicts  int64
	TakenRate    float64
	PredSizeByte int
	// ClassRates maps branch class name to its misprediction rate and
	// dynamic share (filled only with Options.PerClass).
	ClassRates map[string]*stats.Rate
}

// MispredictRate returns mispredictions per measured branch.
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// MispredictPercent returns the misprediction rate as a percentage, the
// unit of Figures 1, 5 and 6.
func (r Result) MispredictPercent() float64 { return 100 * r.MispredictRate() }

// Run streams src through p and returns the accuracy result. src may be a
// live generator or a recorded trace's replay cursor; the two are
// equivalent by construction (see internal/trace). Sources implementing
// trace.BranchSource — replay cursors with a precomputed branch index,
// self-filtering live generators — are driven through the batched branch
// fast path instead of being drained one Inst at a time; the result is
// bit-identical (TestFastPathEquivalenceRun).
func Run(p predictor.Predictor, src trace.Source, opts Options) Result {
	if opts.MaxInsts <= 0 {
		opts.MaxInsts = 1_000_000
	}
	if opts.FetchWidth <= 0 {
		opts.FetchWidth = 3
	}
	cycleAware, _ := p.(predictor.CycleAware)
	var classifier BranchClassifier
	var classRates map[string]*stats.Rate
	if opts.PerClass {
		if c, ok := src.(BranchClassifier); ok {
			classifier = c
			classRates = make(map[string]*stats.Rate)
		}
	}

	if bs, ok := src.(trace.BranchSource); ok {
		r := &branchRun{
			p:          p,
			cycleAware: cycleAware,
			classifier: classifier,
			classRates: classRates,
			opts:       opts,
		}
		// Devirtualizing the dominant concrete type keeps the batch
		// buffer on the driver's stack (the interface call below makes
		// it escape), which is what the zero-allocation guarantee of
		// the batched loop rests on.
		if cur, ok := src.(*trace.Cursor); ok {
			r.driveCursor(cur)
		} else {
			r.drive(bs)
		}
		return r.result(p, src.Name())
	}

	var (
		inst      trace.Inst
		insts     int64
		taken     stats.Rate
		mispred   stats.Rate
		lastCycle uint64
	)
	for insts < opts.MaxInsts && src.Next(&inst) {
		insts++
		if !inst.IsBranch() {
			continue
		}
		if cycleAware != nil {
			if cycle := uint64(insts) / uint64(opts.FetchWidth); cycle != lastCycle {
				lastCycle = cycle
				cycleAware.OnCycle(cycle)
			}
		}
		pred := p.Predict(inst.PC)
		p.Update(inst.PC, inst.Taken)
		if insts > opts.WarmupInsts {
			taken.Add(inst.Taken)
			miss := pred != inst.Taken
			mispred.Add(miss)
			if classifier != nil {
				if name, ok := classifier.BranchClassName(inst.PC); ok {
					r := classRates[name]
					if r == nil {
						r = &stats.Rate{}
						classRates[name] = r
					}
					r.Add(miss)
				}
			}
		}
	}
	return Result{
		ClassRates:   classRates,
		Predictor:    p.Name(),
		Workload:     src.Name(),
		Insts:        insts,
		Branches:     mispred.Total,
		Mispredicts:  mispred.Events,
		TakenRate:    taken.Value(),
		PredSizeByte: p.SizeBytes(),
	}
}

// branchRun is the state of one batched fast-path accuracy run. The slow
// loop above reconstructs per-branch context (instruction count, warm-up
// boundary, fetch cycle) from its running instruction counter; the batched
// loop reconstructs the same values from each record's InstIndex, so the
// two paths are bit-identical:
//
//   - the slow loop processes the branch at 0-based stream index i iff
//     i < MaxInsts, and measures it iff i+1 > WarmupInsts, i.e. iff
//     i >= WarmupInsts;
//   - the fetch-cycle clock it shows CycleAware predictors at that branch
//     is (i+1)/FetchWidth, announced only when it differs from the
//     previous branch's cycle (lastCycle starts at 0, so cycle 0 is never
//     announced) — a function of branch InstIndexes only, because the slow
//     loop also evaluates it only at branches.
//
//bplint:lanecheck
type branchRun struct {
	p          predictor.Predictor    //bplint:lane fusedRun.preds
	cycleAware predictor.CycleAware   //bplint:lane fusedRun.aware
	classifier BranchClassifier       //bplint:lane - PerClass is a per-cell diagnostic; fused callers route such cells through Run
	classRates map[string]*stats.Rate //bplint:lane - PerClass is a per-cell diagnostic; fused callers route such cells through Run
	opts       Options                //bplint:lane fusedRun.opts

	insts     int64      //bplint:lane fusedRun.insts
	taken     stats.Rate //bplint:lane fusedRun.taken
	mispred   stats.Rate //bplint:lane fusedRun.mispred
	lastCycle uint64     //bplint:lane fusedRun.lastCycle
}

// driveCursor is drive specialized to the concrete replay cursor so the
// batch array does not escape to the heap (see Run).
//
//bplint:hotpath accuracy fast path; TestBatchedRunAllocs pins allocs/op to zero
func (r *branchRun) driveCursor(cur *trace.Cursor) {
	var batch [trace.BatchLen]trace.BranchRec
	for {
		n := cur.NextBranches(batch[:])
		if n == 0 {
			r.finish(cur.InstsScanned())
			return
		}
		if r.step(batch[:n]) {
			return
		}
	}
}

// drive runs the batched loop over any BranchSource.
func (r *branchRun) drive(bs trace.BranchSource) {
	batch := make([]trace.BranchRec, trace.BatchLen)
	for {
		n := bs.NextBranches(batch)
		if n == 0 {
			r.finish(bs.InstsScanned())
			return
		}
		if r.step(batch[:n]) {
			return
		}
	}
}

// step processes one filled batch; it reports true when the instruction
// budget is exhausted and the run is complete.
//
//bplint:hotpath batch loop body shared by driveCursor and drive
func (r *branchRun) step(batch []trace.BranchRec) (done bool) {
	for i := range batch {
		rec := &batch[i]
		if rec.InstIndex >= r.opts.MaxInsts {
			r.insts = r.opts.MaxInsts
			return true
		}
		if r.cycleAware != nil {
			if cycle := uint64(rec.InstIndex+1) / uint64(r.opts.FetchWidth); cycle != r.lastCycle {
				r.lastCycle = cycle
				r.cycleAware.OnCycle(cycle)
			}
		}
		pred := r.p.Predict(rec.PC)
		r.p.Update(rec.PC, rec.Taken)
		if rec.InstIndex >= r.opts.WarmupInsts {
			//bplint:twinskip fused tallies taken once per batch into a shared stream-wide counter, not per lane
			r.taken.Add(rec.Taken)
			//bplint:twinskip fused folds the comparison into its lane tally's guard condition
			miss := pred != rec.Taken
			//bplint:twinskip fused counts raw lane mispredicts; Rate denominators reconstruct in results
			r.mispred.Add(miss)
			//bplint:twinskip PerClass is a per-cell diagnostic; fused callers route such cells through Run
			if r.classifier != nil {
				if name, ok := r.classifier.BranchClassName(rec.PC); ok {
					cr := r.classRates[name]
					if cr == nil {
						// One allocation per distinct branch class (a handful
						// per run), only on the PerClass diagnostic path.
						//bplint:allow hotalloc bounded by the class count, not the instruction count
						cr = &stats.Rate{}
						r.classRates[name] = cr
					}
					cr.Add(miss)
				}
			}
		}
	}
	return false
}

// finish fixes the instruction count when the stream ended before the
// budget: the slow loop would have drained min(streamLen, MaxInsts)
// instructions.
func (r *branchRun) finish(streamLen int64) {
	r.insts = streamLen
	if r.insts > r.opts.MaxInsts {
		r.insts = r.opts.MaxInsts
	}
}

func (r *branchRun) result(p predictor.Predictor, workload string) Result {
	return Result{
		ClassRates:   r.classRates,
		Predictor:    p.Name(),
		Workload:     workload,
		Insts:        r.insts,
		Branches:     r.mispred.Total,
		Mispredicts:  r.mispred.Events,
		TakenRate:    r.taken.Value(),
		PredSizeByte: p.SizeBytes(),
	}
}

// BlockPredictor is the block-at-a-time prediction protocol of the
// multiple-branch experiment (§3.3.1).
type BlockPredictor interface {
	PredictBlock(pcs []uint64) []bool
	UpdateBlock(pcs []uint64, takens []bool)
}

// RunBlocks streams src through a block predictor, grouping up to
// BlockBranches consecutive branches into one prediction block (all
// predicted with the history as of the block's start), and returns the
// accuracy result. It measures the accuracy cost of the stale within-block
// history that multiple-branch prediction implies (§3.3.1).
func RunBlocks(p BlockPredictor, name string, src trace.Source, opts Options) Result {
	if opts.MaxInsts <= 0 {
		opts.MaxInsts = 1_000_000
	}
	if opts.FetchWidth <= 0 {
		opts.FetchWidth = 8
	}
	if opts.BlockBranches <= 0 {
		opts.BlockBranches = 8
	}
	if bs, ok := src.(trace.BranchSource); ok {
		return runBlocksBatched(p, name, src.Name(), bs, opts)
	}
	var (
		inst      trace.Inst
		insts     int64
		mispred   stats.Rate
		pcs       []uint64
		takens    []bool
		measured  []bool
		lastCycle uint64 = ^uint64(0)
	)
	flush := func() {
		if len(pcs) == 0 {
			return
		}
		preds := p.PredictBlock(pcs)
		p.UpdateBlock(pcs, takens)
		for i := range preds {
			if measured[i] {
				mispred.Add(preds[i] != takens[i])
			}
		}
		pcs, takens, measured = pcs[:0], takens[:0], measured[:0]
	}
	for insts < opts.MaxInsts && src.Next(&inst) {
		insts++
		if !inst.IsBranch() {
			continue
		}
		cycle := uint64(insts) / uint64(opts.FetchWidth)
		if cycle != lastCycle || len(pcs) >= opts.BlockBranches {
			flush()
			lastCycle = cycle
		}
		pcs = append(pcs, inst.PC)
		takens = append(takens, inst.Taken)
		measured = append(measured, insts > opts.WarmupInsts)
	}
	flush()
	return Result{
		Predictor:   name,
		Workload:    src.Name(),
		Insts:       insts,
		Branches:    mispred.Total,
		Mispredicts: mispred.Events,
	}
}

// runBlocksBatched is RunBlocks over the branch fast path. Block boundaries
// are a function of branch InstIndexes alone — the slow loop groups the
// branch at 0-based index i into fetch cycle (i+1)/FetchWidth and flushes
// on a cycle change or a full block — so the grouping, and therefore every
// prediction's history context, is identical to the slow path's
// (TestFastPathEquivalenceBlocks).
func runBlocksBatched(p BlockPredictor, name, workload string, bs trace.BranchSource, opts Options) Result {
	var (
		insts     int64
		mispred   stats.Rate
		pcs       []uint64
		takens    []bool
		measured  []bool
		lastCycle uint64 = ^uint64(0)
	)
	flush := func() {
		if len(pcs) == 0 {
			return
		}
		preds := p.PredictBlock(pcs)
		p.UpdateBlock(pcs, takens)
		for i := range preds {
			if measured[i] {
				mispred.Add(preds[i] != takens[i])
			}
		}
		pcs, takens, measured = pcs[:0], takens[:0], measured[:0]
	}
	batch := make([]trace.BranchRec, trace.BatchLen)
	done := false
	for !done {
		n := bs.NextBranches(batch)
		if n == 0 {
			insts = bs.InstsScanned()
			if insts > opts.MaxInsts {
				insts = opts.MaxInsts
			}
			break
		}
		for i := 0; i < n; i++ {
			rec := &batch[i]
			if rec.InstIndex >= opts.MaxInsts {
				insts = opts.MaxInsts
				done = true
				break
			}
			cycle := uint64(rec.InstIndex+1) / uint64(opts.FetchWidth)
			if cycle != lastCycle || len(pcs) >= opts.BlockBranches {
				flush()
				lastCycle = cycle
			}
			pcs = append(pcs, rec.PC)
			takens = append(takens, rec.Taken)
			measured = append(measured, rec.InstIndex >= opts.WarmupInsts)
		}
	}
	flush()
	return Result{
		Predictor:   name,
		Workload:    workload,
		Insts:       insts,
		Branches:    mispred.Total,
		Mispredicts: mispred.Events,
	}
}
