// Package funcsim is the functional (accuracy-only) branch prediction
// driver: it streams a workload's conditional branches through a predictor
// in program order and counts mispredictions. It is the engine behind the
// misprediction-rate experiments (Figures 1, 5 and 6) where timing does not
// matter — except for cycle-aware predictors like gshare.fast, for which it
// approximates fetch timing by advancing one cycle per fetch-width
// instructions.
package funcsim

import (
	"branchsim/internal/predictor"
	"branchsim/internal/stats"
	"branchsim/internal/trace"
)

// Options configures a functional run.
type Options struct {
	// MaxInsts bounds the dynamic instruction count (branches included).
	MaxInsts int64
	// WarmupInsts are executed and trained on but excluded from the
	// misprediction statistics, mirroring the paper's practice of
	// skipping each benchmark's initialization phase.
	WarmupInsts int64
	// FetchWidth sets the cycle approximation for cycle-aware
	// predictors: the fetch clock advances every FetchWidth
	// instructions. Zero defaults to 3, the *effective* fetch throughput
	// of the simulated core (the nominal width is 8, but stalls and
	// taken-branch fetch breaks keep sustained IPC near 2-3, and the
	// timing simulator supplies real cycles anyway).
	FetchWidth int
	// PerClass, with a generator implementing BranchClassifier, collects
	// misprediction rates per branch behaviour class — a calibration
	// diagnostic, not a paper result.
	PerClass bool
	// BlockBranches caps the branches grouped into one prediction block
	// by RunBlocks (default 8, one fetch block's worth).
	BlockBranches int
}

// BranchClassifier is implemented by workload generators that can report
// the behaviour class of a static branch, enabling per-class diagnostics.
type BranchClassifier interface {
	BranchClassName(pc uint64) (string, bool)
}

// Result summarizes a functional run.
type Result struct {
	Predictor    string
	Workload     string
	Insts        int64
	Branches     int64 // measured branches (after warm-up)
	Mispredicts  int64
	TakenRate    float64
	PredSizeByte int
	// ClassRates maps branch class name to its misprediction rate and
	// dynamic share (filled only with Options.PerClass).
	ClassRates map[string]*stats.Rate
}

// MispredictRate returns mispredictions per measured branch.
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// MispredictPercent returns the misprediction rate as a percentage, the
// unit of Figures 1, 5 and 6.
func (r Result) MispredictPercent() float64 { return 100 * r.MispredictRate() }

// Run streams src through p and returns the accuracy result. src may be a
// live generator or a recorded trace's replay cursor; the two are
// equivalent by construction (see internal/trace).
func Run(p predictor.Predictor, src trace.Source, opts Options) Result {
	if opts.MaxInsts <= 0 {
		opts.MaxInsts = 1_000_000
	}
	if opts.FetchWidth <= 0 {
		opts.FetchWidth = 3
	}
	cycleAware, _ := p.(predictor.CycleAware)
	var classifier BranchClassifier
	var classRates map[string]*stats.Rate
	if opts.PerClass {
		if c, ok := src.(BranchClassifier); ok {
			classifier = c
			classRates = make(map[string]*stats.Rate)
		}
	}

	var (
		inst      trace.Inst
		insts     int64
		taken     stats.Rate
		mispred   stats.Rate
		lastCycle uint64
	)
	for insts < opts.MaxInsts && src.Next(&inst) {
		insts++
		if !inst.IsBranch() {
			continue
		}
		if cycleAware != nil {
			if cycle := uint64(insts) / uint64(opts.FetchWidth); cycle != lastCycle {
				lastCycle = cycle
				cycleAware.OnCycle(cycle)
			}
		}
		pred := p.Predict(inst.PC)
		p.Update(inst.PC, inst.Taken)
		if insts > opts.WarmupInsts {
			taken.Add(inst.Taken)
			miss := pred != inst.Taken
			mispred.Add(miss)
			if classifier != nil {
				if name, ok := classifier.BranchClassName(inst.PC); ok {
					r := classRates[name]
					if r == nil {
						r = &stats.Rate{}
						classRates[name] = r
					}
					r.Add(miss)
				}
			}
		}
	}
	return Result{
		ClassRates:   classRates,
		Predictor:    p.Name(),
		Workload:     src.Name(),
		Insts:        insts,
		Branches:     mispred.Total,
		Mispredicts:  mispred.Events,
		TakenRate:    taken.Value(),
		PredSizeByte: p.SizeBytes(),
	}
}

// BlockPredictor is the block-at-a-time prediction protocol of the
// multiple-branch experiment (§3.3.1).
type BlockPredictor interface {
	PredictBlock(pcs []uint64) []bool
	UpdateBlock(pcs []uint64, takens []bool)
}

// RunBlocks streams src through a block predictor, grouping up to
// BlockBranches consecutive branches into one prediction block (all
// predicted with the history as of the block's start), and returns the
// accuracy result. It measures the accuracy cost of the stale within-block
// history that multiple-branch prediction implies (§3.3.1).
func RunBlocks(p BlockPredictor, name string, src trace.Source, opts Options) Result {
	if opts.MaxInsts <= 0 {
		opts.MaxInsts = 1_000_000
	}
	if opts.FetchWidth <= 0 {
		opts.FetchWidth = 8
	}
	if opts.BlockBranches <= 0 {
		opts.BlockBranches = 8
	}
	var (
		inst      trace.Inst
		insts     int64
		mispred   stats.Rate
		pcs       []uint64
		takens    []bool
		measured  []bool
		lastCycle uint64 = ^uint64(0)
	)
	flush := func() {
		if len(pcs) == 0 {
			return
		}
		preds := p.PredictBlock(pcs)
		p.UpdateBlock(pcs, takens)
		for i := range preds {
			if measured[i] {
				mispred.Add(preds[i] != takens[i])
			}
		}
		pcs, takens, measured = pcs[:0], takens[:0], measured[:0]
	}
	for insts < opts.MaxInsts && src.Next(&inst) {
		insts++
		if !inst.IsBranch() {
			continue
		}
		cycle := uint64(insts) / uint64(opts.FetchWidth)
		if cycle != lastCycle || len(pcs) >= opts.BlockBranches {
			flush()
			lastCycle = cycle
		}
		pcs = append(pcs, inst.PC)
		takens = append(takens, inst.Taken)
		measured = append(measured, insts > opts.WarmupInsts)
	}
	flush()
	return Result{
		Predictor:   name,
		Workload:    src.Name(),
		Insts:       insts,
		Branches:    mispred.Total,
		Mispredicts: mispred.Events,
	}
}
