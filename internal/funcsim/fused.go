package funcsim

import (
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
)

// This file is the grid-fused accuracy driver: one trace pass feeds every
// predictor in a sweep. Run (funcsim.go) walks the stream once per cell;
// with batch fill at a few ns/branch that walk is cheap, but it is still
// repeated per (kind, budget) cell, and so is the per-branch dispatch
// overhead of the Predict/Update protocol. RunMany pulls each 256-entry
// branch batch once and feeds it to every lane before advancing the
// cursor, so the fill cost amortizes over the whole grid column and cheap
// table predictors step through the batch with one BatchStepper call
// instead of two interface calls per branch.

// A Lane is one predictor's slot in a fused RunMany sweep. Each lane gets
// its own fresh predictor, exactly as if it were run through Run alone.
type Lane struct {
	P predictor.Predictor
}

// RunMany streams src through every lane's predictor in one pass and
// returns one Result per lane, in lane order. Each lane's Result is
// bit-identical to what Run(lane.P, src, opts) would return over its own
// cursor on the same stream (TestRunManyEquivalence): fusion is an
// execution strategy, not an observable one. Cycle-aware predictors see
// the same InstIndex-reconstructed fetch clock as in Run, advanced
// per-lane. The PerClass diagnostic is a per-cell concern and is ignored
// here; fused callers run diagnostic cells through Run.
func RunMany(lanes []Lane, src trace.BranchSource, opts Options) []Result {
	if opts.MaxInsts <= 0 {
		opts.MaxInsts = 1_000_000
	}
	if opts.FetchWidth <= 0 {
		opts.FetchWidth = 3
	}
	r := newFusedRun(lanes, opts)
	// BranchSource is the batch protocol alone; real sources (cursors, live
	// generators) are full trace.Sources and carry the workload name.
	name := ""
	if s, ok := src.(trace.Source); ok {
		name = s.Name()
	}
	// Same devirtualization as Run: the dominant concrete source keeps the
	// batch buffer on the driver's stack.
	if cur, ok := src.(*trace.Cursor); ok {
		r.driveCursor(cur)
	} else {
		r.drive(src)
	}
	return r.results(lanes, name)
}

// fusedRun is the state of one RunMany sweep. Per-lane state is packed
// into index-aligned slices (structure of arrays): the inner loop touches
// mispred and lastCycle contiguously instead of chasing one heap object
// per lane. The warm-up boundary, instruction count and taken tally are
// lane-invariant — they are functions of the stream's InstIndexes alone —
// so they are computed once per batch, not once per lane.
type fusedRun struct {
	opts Options //bplint:lane branchRun.opts

	// Per-lane state, index-aligned with the lanes slice.
	preds []predictor.Predictor //bplint:lane branchRun.p
	//bplint:lane branchRun.cycleAware
	aware []predictor.CycleAware // nil for cycle-oblivious lanes
	//bplint:lane branchRun.p
	steppers  []predictor.BatchStepper // nil for lanes on the scalar loop
	mispred   []int64                  //bplint:lane branchRun.mispred
	lastCycle []uint64                 //bplint:lane branchRun.lastCycle

	// Stream-wide tallies, shared by every lane: insts and the measured
	// count are functions of the stream's InstIndexes alone, and the taken
	// tally with the measured denominator reconstructs every lane's
	// branchRun rates in results.
	insts    int64 //bplint:lane branchRun.insts
	measured int64 //bplint:lane branchRun.taken,branchRun.mispred
	taken    int64 //bplint:lane branchRun.taken

	// SoA view of the current batch, filled once and read by every
	// BatchStepper lane.
	pcs    [trace.BatchLen]uint64 //bplint:lane - column view of the shared batch; the scalar loop reads records directly
	takens [trace.BatchLen]bool   //bplint:lane - column view of the shared batch; the scalar loop reads records directly
}

func newFusedRun(lanes []Lane, opts Options) *fusedRun {
	r := &fusedRun{
		opts:      opts,
		preds:     make([]predictor.Predictor, len(lanes)),
		aware:     make([]predictor.CycleAware, len(lanes)),
		steppers:  make([]predictor.BatchStepper, len(lanes)),
		mispred:   make([]int64, len(lanes)),
		lastCycle: make([]uint64, len(lanes)),
	}
	for i, l := range lanes {
		r.preds[i] = l.P
		if ca, ok := l.P.(predictor.CycleAware); ok {
			// Cycle-aware lanes need OnCycle interleaved per branch; they
			// take the scalar loop even if they could batch-step.
			r.aware[i] = ca
		} else if s, ok := l.P.(predictor.BatchStepper); ok {
			r.steppers[i] = s
		}
	}
	return r
}

// driveCursor is drive specialized to the concrete replay cursor so the
// batch array does not escape to the heap (see Run).
//
//bplint:twin funcsim.branchRun.driveCursor
//bplint:hotpath fused accuracy sweep; TestRunManyAllocs pins steady-state allocs to zero
func (r *fusedRun) driveCursor(cur *trace.Cursor) {
	var batch [trace.BatchLen]trace.BranchRec
	for {
		n := cur.NextBranches(batch[:])
		if n == 0 {
			r.finish(cur.InstsScanned())
			return
		}
		if r.step(batch[:n]) {
			return
		}
	}
}

// drive runs the fused loop over any BranchSource.
//
//bplint:twin funcsim.branchRun.drive
func (r *fusedRun) drive(bs trace.BranchSource) {
	batch := make([]trace.BranchRec, trace.BatchLen)
	for {
		n := bs.NextBranches(batch)
		if n == 0 {
			r.finish(bs.InstsScanned())
			return
		}
		if r.step(batch[:n]) {
			return
		}
	}
}

// step feeds one filled batch to every lane; it reports true when the
// instruction budget is exhausted and the sweep is complete. The
// per-branch context Run's loop reconstructs per record — budget cut,
// warm-up boundary, fetch cycle — is reconstructed here from the same
// InstIndexes; because records ascend by InstIndex, the cut and the
// boundary are single positions valid for every lane.
//
//bplint:twin funcsim.branchRun.step
//bplint:twinmap p=pred cycleaware=aware
//bplint:hotpath fused batch loop shared by driveCursor and drive
func (r *fusedRun) step(batch []trace.BranchRec) (done bool) {
	cut := len(batch)
	for i := range batch {
		if batch[i].InstIndex >= r.opts.MaxInsts {
			cut, done = i, true
			break
		}
	}
	from := 0
	for from < cut && batch[from].InstIndex < r.opts.WarmupInsts {
		from++
	}
	for i := 0; i < cut; i++ {
		r.pcs[i] = batch[i].PC
		r.takens[i] = batch[i].Taken
		if i >= from && batch[i].Taken {
			r.taken++
		}
	}
	r.measured += int64(cut - from)
	pcs, takens := r.pcs[:cut], r.takens[:cut]
	for li := range r.preds {
		if s := r.steppers[li]; s != nil {
			r.mispred[li] += s.StepBatch(pcs, takens, from)
			continue
		}
		p := r.preds[li]
		aware := r.aware[li]
		for i := 0; i < cut; i++ {
			rec := &batch[i]
			if aware != nil {
				if cycle := uint64(rec.InstIndex+1) / uint64(r.opts.FetchWidth); cycle != r.lastCycle[li] {
					r.lastCycle[li] = cycle
					aware.OnCycle(cycle)
				}
			}
			pred := p.Predict(rec.PC)
			p.Update(rec.PC, rec.Taken)
			if i >= from && pred != rec.Taken {
				r.mispred[li]++
			}
		}
	}
	if done {
		r.insts = r.opts.MaxInsts
	}
	return done
}

// finish fixes the instruction count when the stream ended before the
// budget, mirroring branchRun.finish.
//
//bplint:twin funcsim.branchRun.finish
func (r *fusedRun) finish(streamLen int64) {
	r.insts = streamLen
	if r.insts > r.opts.MaxInsts {
		r.insts = r.opts.MaxInsts
	}
}

func (r *fusedRun) results(lanes []Lane, workload string) []Result {
	out := make([]Result, len(lanes))
	takenRate := 0.0
	if r.measured > 0 {
		takenRate = float64(r.taken) / float64(r.measured)
	}
	for i, l := range lanes {
		out[i] = Result{
			Predictor:    l.P.Name(),
			Workload:     workload,
			Insts:        r.insts,
			Branches:     r.measured,
			Mispredicts:  r.mispred[i],
			TakenRate:    takenRate,
			PredSizeByte: l.P.SizeBytes(),
		}
	}
	return out
}
