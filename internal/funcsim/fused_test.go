package funcsim

import (
	"reflect"
	"testing"

	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// fusedLaneKinds is the lane mix for the fused equivalence suite: every
// BatchStepper implementation, the heavy predictors whose lanes take the
// generic scalar loop (the perceptron's Predict-memo must survive many
// lanes interleaving on one stream), and the cycle-aware gshare.fast,
// whose per-lane fetch clock RunMany reconstructs independently.
func fusedLaneKinds() []Lane {
	return []Lane{
		{P: predictor.NewGShareFromBudget(2 << 10)},
		{P: predictor.NewGShareFromBudget(16 << 10)},
		{P: predictor.NewBimodalFromBudget(8 << 10)},
		{P: predictor.NewBiModeFromBudget(16 << 10)},
		{P: predictor.NewPerceptronFromBudget(16 << 10)},
		{P: predictor.NewMultiComponentFromBudget(16 << 10)},
		{P: predictor.NewGSkew2BcFromBudget(16 << 10)},
		{P: core.New(core.Config{Entries: 1 << 14, Latency: 3})},
	}
}

// TestRunManyEquivalence is the fused driver's correctness contract: each
// lane of one fused pass must be bit-identical to a per-cell Run of the
// same predictor over its own cursor — across benchmarks, across predictor
// kinds (batch-stepping, scalar, and cycle-aware lanes), and in both
// termination modes (instruction budget reached, stream exhausted).
func TestRunManyEquivalence(t *testing.T) {
	cases := []struct {
		bench    string
		recorded int64
	}{
		// Recording longer than MaxInsts: the sweep stops at the budget.
		{"gzip", 200_000},
		{"mcf", 200_000},
		// Recording shorter than MaxInsts: the sweep stops at stream end.
		{"twolf", 80_000},
	}
	opts := Options{MaxInsts: 150_000, WarmupInsts: 40_000, FetchWidth: 3}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			prof := mustProfile(t, tc.bench)
			rec := workload.Record(prof, tc.recorded)
			lanes := fusedLaneKinds()
			got := RunMany(lanes, rec.Replay(), opts)
			want := make([]Result, len(lanes))
			for i, l := range fusedLaneKinds() {
				want[i] = Run(l.P, rec.Replay(), opts)
			}
			for i := range lanes {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("lane %d (%s) diverges from per-cell Run:\n got %+v\nwant %+v",
						i, lanes[i].P.Name(), got[i], want[i])
				}
			}
		})
	}
}

// TestRunManySingleLane pins the degenerate sweep: one lane must equal one
// Run, including warm-up boundaries that do not land on a batch edge.
func TestRunManySingleLane(t *testing.T) {
	prof := mustProfile(t, "gcc")
	rec := workload.Record(prof, 120_000)
	for _, warmup := range []int64{0, 1, 33_333, 119_999} {
		opts := Options{MaxInsts: 120_000, WarmupInsts: warmup}
		got := RunMany([]Lane{{P: predictor.NewGShareFromBudget(4 << 10)}}, rec.Replay(), opts)
		want := Run(predictor.NewGShareFromBudget(4<<10), rec.Replay(), opts)
		if len(got) != 1 || !reflect.DeepEqual(got[0], want) {
			t.Errorf("warmup=%d: single-lane RunMany diverges:\n got %+v\nwant %+v", warmup, got, want)
		}
	}
}

// TestRunManyAllocs pins the fused inner loop allocation-free at steady
// state: RunMany's allocations are setup-only (the per-lane SoA slices),
// so a 5x longer stream must allocate exactly as much as a short one.
// Skipped under -race, which instruments allocation.
func TestRunManyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	prof := mustProfile(t, "gzip")
	short := workload.Record(prof, 20_000)
	long := workload.Record(prof, 100_000)
	lanes := []Lane{
		{P: predictor.NewGShareFromBudget(16 << 10)},
		{P: predictor.NewBimodalFromBudget(8 << 10)},
		{P: predictor.NewBiModeFromBudget(16 << 10)},
	}
	opts := Options{MaxInsts: 100_000, WarmupInsts: 20_000}
	measure := func(rec *trace.Recording) float64 {
		cur := rec.Replay()
		return testing.AllocsPerRun(10, func() {
			cur.Reset()
			RunMany(lanes, cur, opts)
		})
	}
	RunMany(lanes, long.Replay(), opts) // warm any lazy state
	allocShort, allocLong := measure(short), measure(long)
	if allocShort != allocLong {
		t.Fatalf("fused loop allocates per batch: %.1f allocs on a short stream, %.1f on a long one",
			allocShort, allocLong)
	}
}
