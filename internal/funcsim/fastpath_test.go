package funcsim

import (
	"reflect"
	"testing"

	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// opaqueSrc hides every protocol but Source, forcing Run and RunBlocks down
// the instruction-at-a-time slow path — the reference the fast path must
// match bit for bit.
type opaqueSrc struct{ src trace.Source }

func (o opaqueSrc) Next(inst *trace.Inst) bool { return o.src.Next(inst) }
func (o opaqueSrc) Name() string               { return o.src.Name() }

// opaqueClassified additionally keeps the branch classifier visible, so
// PerClass runs stay comparable across the two paths.
type opaqueClassified struct {
	opaqueSrc
	c BranchClassifier
}

func (o opaqueClassified) BranchClassName(pc uint64) (string, bool) {
	return o.c.BranchClassName(pc)
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return prof
}

// TestFastPathEquivalenceRun is the tentpole's correctness contract: the
// batched branch fast path must reproduce the slow instruction-at-a-time
// loop bit for bit — across benchmarks, for a plain predictor and for a
// cycle-aware one (whose fetch clock the fast path reconstructs from
// InstIndex), from a replayed recording and from a live generator, whether
// the run ends at the instruction budget or at the end of the stream.
func TestFastPathEquivalenceRun(t *testing.T) {
	predictors := []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"gshare-16KB", func() predictor.Predictor { return predictor.NewGShareFromBudget(16 << 10) }},
		// gshare.fast is CycleAware: it consumes the reconstructed clock.
		{"gshare.fast-64KB", func() predictor.Predictor {
			return core.New(core.Config{Entries: 1 << 15, Latency: 3})
		}},
	}
	cases := []struct {
		bench    string
		recorded int64 // stream length materialized for the replay sources
	}{
		// Recording longer than MaxInsts: the run stops at the budget.
		{"gzip", 200_000},
		{"mcf", 200_000},
		// Recording shorter than MaxInsts: the run stops at stream end.
		{"twolf", 80_000},
	}
	opts := Options{MaxInsts: 150_000, WarmupInsts: 40_000, FetchWidth: 3}
	for _, tc := range cases {
		prof := mustProfile(t, tc.bench)
		rec := workload.Record(prof, tc.recorded)
		for _, pd := range predictors {
			t.Run(tc.bench+"/"+pd.name, func(t *testing.T) {
				// The slow path over the replayed stream is the reference.
				want := Run(pd.mk(), opaqueSrc{rec.Replay()}, opts)
				for name, src := range map[string]trace.Source{
					"replay-fast": rec.Replay(),
					"live-slow":   opaqueSrc{workload.New(prof)},
				} {
					got := Run(pd.mk(), src, opts)
					if tc.recorded < opts.MaxInsts && name == "live-slow" {
						// The live stream does not end at the
						// recording's boundary; only the replayed
						// sources share the short-stream result.
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s diverges from slow replay:\n got %+v\nwant %+v", name, got, want)
					}
				}
				// The live generator's own fast path (Program filters its
				// stream) must match the live slow path exactly, stream
				// boundary or not.
				liveWant := Run(pd.mk(), opaqueSrc{workload.New(prof)}, opts)
				liveGot := Run(pd.mk(), workload.New(prof), opts)
				if !reflect.DeepEqual(liveGot, liveWant) {
					t.Errorf("live fast path diverges:\n got %+v\nwant %+v", liveGot, liveWant)
				}
			})
		}
	}
}

// TestFastPathEquivalencePerClass pins the per-class diagnostic rates across
// the two paths, including the class map contents.
func TestFastPathEquivalencePerClass(t *testing.T) {
	prof := mustProfile(t, "gzip")
	rec := workload.Record(prof, 200_000)
	opts := Options{MaxInsts: 150_000, WarmupInsts: 40_000, PerClass: true}
	slowSrc := workload.Classify(rec.Replay(), prof)
	want := Run(predictor.NewGShareFromBudget(16<<10),
		opaqueClassified{opaqueSrc{slowSrc}, slowSrc.(BranchClassifier)}, opts)
	got := Run(predictor.NewGShareFromBudget(16<<10), workload.Classify(rec.Replay(), prof), opts)
	if len(want.ClassRates) == 0 {
		t.Fatal("slow path collected no class rates")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PerClass fast path diverges:\n got %+v\nwant %+v", got, want)
	}
	for name, w := range want.ClassRates {
		g := got.ClassRates[name]
		if g == nil || *g != *w {
			t.Errorf("class %q: fast %+v, slow %+v", name, g, w)
		}
	}
}

// TestFastPathEquivalenceBlocks pins the block-grouped protocol: block
// boundaries (fetch-cycle changes, full blocks) reconstructed from InstIndex
// must regroup the branches exactly as the slow loop does.
func TestFastPathEquivalenceBlocks(t *testing.T) {
	opts := Options{MaxInsts: 150_000, WarmupInsts: 40_000, FetchWidth: 8, BlockBranches: 4}
	for _, bench := range []string{"gzip", "mcf", "twolf"} {
		prof := mustProfile(t, bench)
		rec := workload.Record(prof, 200_000)
		mk := func() *core.GShareFast {
			return core.New(core.Config{Entries: 1 << 14, Latency: 3})
		}
		want := RunBlocks(mk(), "blk", opaqueSrc{rec.Replay()}, opts)
		got := RunBlocks(mk(), "blk", rec.Replay(), opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: block fast path diverges:\n got %+v\nwant %+v", bench, got, want)
		}
	}
}

// TestBatchedRunAllocs pins the steady-state allocation count of the
// batched accuracy loop at zero: the batch buffer lives on the driver's
// stack (Run devirtualizes the replay cursor) and the run state is
// stack-allocated, so sweeping a predictor grid over a recorded trace costs
// no garbage per cell. Skipped under -race, which instruments allocation.
func TestBatchedRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	prof := mustProfile(t, "gzip")
	rec := workload.Record(prof, 100_000)
	cur := rec.Replay()
	p := predictor.NewGShareFromBudget(16 << 10)
	opts := Options{MaxInsts: 100_000, WarmupInsts: 20_000}
	Run(p, cur, opts) // warm the predictor's lazy state, if any
	allocs := testing.AllocsPerRun(10, func() {
		cur.Reset()
		Run(p, cur, opts)
	})
	if allocs != 0 {
		t.Fatalf("batched Run allocates %.1f objects per run, want 0", allocs)
	}
}
