package funcsim

import (
	"testing"

	"branchsim/internal/core"
	"branchsim/internal/predictor"
	"branchsim/internal/trace"
	"branchsim/internal/workload"
)

// scriptGen emits ALU filler with scripted branches every stride
// instructions.
type scriptGen struct {
	outcomes []bool
	stride   int
	pos      int
	emitted  int
}

func (g *scriptGen) Next(inst *trace.Inst) bool {
	if g.pos >= len(g.outcomes)*g.stride {
		return false
	}
	i := g.pos
	g.pos++
	if i%g.stride == g.stride-1 {
		*inst = trace.Inst{
			PC:     uint64(0x1000 + (i/g.stride%16)*4),
			Kind:   trace.CondBranch,
			Taken:  g.outcomes[i/g.stride],
			Target: 0x100,
		}
		return true
	}
	*inst = trace.Inst{PC: uint64(0x5000 + i*4), Kind: trace.ALU}
	return true
}

func (g *scriptGen) Name() string { return "script" }

func TestRunCountsExactly(t *testing.T) {
	outcomes := make([]bool, 100)
	for i := range outcomes {
		outcomes[i] = true
	}
	g := &scriptGen{outcomes: outcomes, stride: 5}
	res := Run(predictor.NotTaken{}, g, Options{MaxInsts: 1 << 30})
	if res.Branches != 100 {
		t.Fatalf("branches = %d", res.Branches)
	}
	if res.Mispredicts != 100 {
		t.Fatalf("mispredicts = %d (always-not-taken on all-taken)", res.Mispredicts)
	}
	if res.MispredictPercent() != 100 {
		t.Fatalf("percent = %v", res.MispredictPercent())
	}
	if res.TakenRate != 1 {
		t.Fatalf("taken rate = %v", res.TakenRate)
	}
}

func TestWarmupExcluded(t *testing.T) {
	outcomes := make([]bool, 100)
	for i := range outcomes {
		outcomes[i] = true
	}
	g := &scriptGen{outcomes: outcomes, stride: 10}
	// Warm up through the first half: 50 branches measured.
	res := Run(predictor.Taken{}, g, Options{MaxInsts: 1 << 30, WarmupInsts: 500})
	if res.Branches != 50 {
		t.Fatalf("measured branches = %d, want 50", res.Branches)
	}
	if res.Mispredicts != 0 {
		t.Fatalf("mispredicts = %d", res.Mispredicts)
	}
}

func TestMaxInstsBounds(t *testing.T) {
	outcomes := make([]bool, 1000)
	g := &scriptGen{outcomes: outcomes, stride: 10}
	res := Run(predictor.Taken{}, g, Options{MaxInsts: 100})
	if res.Insts != 100 {
		t.Fatalf("insts = %d", res.Insts)
	}
}

func TestPerClassCollection(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	p := workload.New(prof)
	res := Run(predictor.NewGShareFromBudget(8<<10), p, Options{
		MaxInsts: 200000,
		PerClass: true,
	})
	if len(res.ClassRates) == 0 {
		t.Fatal("no class rates collected")
	}
	var total int64
	for _, r := range res.ClassRates {
		total += r.Total
	}
	if total != res.Branches {
		t.Fatalf("class totals %d != branches %d", total, res.Branches)
	}
}

func TestPerClassOffByDefault(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	res := Run(predictor.Taken{}, workload.New(prof), Options{MaxInsts: 10000})
	if res.ClassRates != nil {
		t.Fatal("class rates collected without opting in")
	}
}

func TestRunBlocksWidthOneMatchesRun(t *testing.T) {
	prof, _ := workload.ByName("bzip2")
	mk := func() *core.GShareFast {
		return core.New(core.Config{Entries: 1 << 14, Latency: 3})
	}
	scalar := Run(mk(), workload.New(prof), Options{MaxInsts: 300000, FetchWidth: 8})
	blocks := RunBlocks(mk(), "block", workload.New(prof), Options{
		MaxInsts: 300000, FetchWidth: 8, BlockBranches: 1,
	})
	if scalar.Mispredicts != blocks.Mispredicts {
		t.Fatalf("width-1 block run diverges: %d vs %d mispredicts",
			blocks.Mispredicts, scalar.Mispredicts)
	}
}

func TestRunBlocksWiderCostsAccuracy(t *testing.T) {
	prof, _ := workload.ByName("gcc")
	mk := func() *core.GShareFast {
		return core.New(core.Config{Entries: 1 << 16, Latency: 3})
	}
	narrow := RunBlocks(mk(), "b1", workload.New(prof), Options{
		MaxInsts: 400000, BlockBranches: 1,
	})
	wide := RunBlocks(mk(), "b8", workload.New(prof), Options{
		MaxInsts: 400000, BlockBranches: 8,
	})
	if wide.MispredictRate() < narrow.MispredictRate()-0.002 {
		t.Fatalf("wider blocks should not improve accuracy: %.4f vs %.4f",
			wide.MispredictRate(), narrow.MispredictRate())
	}
	if wide.MispredictRate() > narrow.MispredictRate()+0.06 {
		t.Fatalf("block staleness cost too large: %.4f vs %.4f",
			wide.MispredictRate(), narrow.MispredictRate())
	}
}

func TestCycleAwareReceivesClock(t *testing.T) {
	g := core.New(core.Config{Entries: 1 << 12, Latency: 3})
	prof, _ := workload.ByName("eon")
	// Just verifying it runs through the cycle-aware path without
	// issue and produces sane numbers.
	res := Run(g, workload.New(prof), Options{MaxInsts: 200000, FetchWidth: 4})
	if res.Branches == 0 || res.MispredictRate() > 0.5 {
		t.Fatalf("suspicious result: %+v", res)
	}
}
