//go:build !race

package funcsim

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip themselves when it does.
const raceEnabled = false
