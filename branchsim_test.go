package branchsim_test

import (
	"testing"

	"branchsim"
)

// These tests exercise the public facade the way the examples and a
// downstream user would.

func TestQuickstartFlow(t *testing.T) {
	pred := branchsim.NewGShareFast(64 << 10)
	if pred.Latency() < 2 {
		t.Fatalf("a 64KB PHT should be multi-cycle to read, got %d", pred.Latency())
	}
	bench, ok := branchsim.BenchmarkByName("gzip")
	if !ok {
		t.Fatal("gzip missing")
	}
	res := branchsim.RunAccuracy(pred, branchsim.NewWorkload(bench), branchsim.AccuracyOptions{
		MaxInsts: 400_000,
	})
	if res.Branches == 0 {
		t.Fatal("no branches measured")
	}
	if p := res.MispredictPercent(); p <= 0 || p > 30 {
		t.Fatalf("implausible misprediction %v%%", p)
	}
}

func TestPredictorKindsAllConstructible(t *testing.T) {
	for _, kind := range branchsim.PredictorKinds() {
		p, err := branchsim.NewPredictorByName(kind, 16<<10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		p.Predict(0x1000)
		p.Update(0x1000, true)
	}
}

func TestTimingFlow(t *testing.T) {
	bench, _ := branchsim.BenchmarkByName("eon")
	pred := branchsim.NewGShareFast(32 << 10)
	res := branchsim.RunTiming(branchsim.DefaultMachine(), pred,
		branchsim.NewWorkload(bench), 300_000, 75_000)
	if res.IPC() <= 0.2 || res.IPC() > 8 {
		t.Fatalf("IPC %v", res.IPC())
	}
}

func TestOverridingFlow(t *testing.T) {
	slow := branchsim.NewPerceptron(128 << 10)
	lat := branchsim.DefaultDelayModel.ForPredictor(slow)
	if lat < 2 {
		t.Fatalf("128KB perceptron latency %d", lat)
	}
	over := branchsim.NewOverriding(branchsim.NewGShare(512), slow, lat)
	bench, _ := branchsim.BenchmarkByName("parser")
	res := branchsim.RunTiming(branchsim.DefaultMachine(), over,
		branchsim.NewWorkload(bench), 300_000, 75_000)
	if res.OverrideRate <= 0 {
		t.Fatal("override rate not recorded through the facade")
	}
}

func TestBenchmarksComplete(t *testing.T) {
	if got := len(branchsim.Benchmarks()); got != 12 {
		t.Fatalf("%d benchmarks", got)
	}
}

func TestExperimentRegistryReachable(t *testing.T) {
	ids := branchsim.Experiments()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments", len(ids))
	}
	out, err := branchsim.RunExperiment("table2", branchsim.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Render() == "" {
		t.Fatal("empty render")
	}
	if _, err := branchsim.RunExperiment("bogus", branchsim.ExperimentOptions{}); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestBlockPredictionFacade(t *testing.T) {
	pred := branchsim.NewGShareFast(32 << 10)
	bench, _ := branchsim.BenchmarkByName("gcc")
	res := branchsim.RunAccuracyBlocks(pred, pred.Name(), branchsim.NewWorkload(bench),
		branchsim.AccuracyOptions{MaxInsts: 200_000, BlockBranches: 4})
	if res.Branches == 0 {
		t.Fatal("no branches")
	}
}
