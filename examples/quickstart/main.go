// Quickstart: build the paper's pipelined gshare.fast predictor, run one
// synthetic benchmark through it, and print accuracy — the smallest useful
// program against the public API.
package main

import (
	"fmt"

	"branchsim"
)

func main() {
	// A 64 KB gshare.fast: the PHT read takes several cycles at a 3.5 GHz
	// clock, but the predictor pipeline hides all of it — every
	// prediction arrives in a single cycle.
	pred := branchsim.NewGShareFast(64 << 10)
	fmt.Printf("predictor: %s (%d bytes, PHT read latency %d cycles, effective 1)\n",
		pred.Name(), pred.SizeBytes(), pred.Latency())

	bench, _ := branchsim.BenchmarkByName("gzip")
	prog := branchsim.NewWorkload(bench)

	res := branchsim.RunAccuracy(pred, prog, branchsim.AccuracyOptions{
		MaxInsts:    2_000_000,
		WarmupInsts: 500_000,
	})
	fmt.Printf("workload:  %s (%d instructions, %d conditional branches measured)\n",
		res.Workload, res.Insts, res.Branches)
	fmt.Printf("accuracy:  %.2f%% mispredicted\n", res.MispredictPercent())
}
