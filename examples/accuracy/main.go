// Accuracy bake-off: compare every registered predictor at the same
// hardware budget on one benchmark — the per-benchmark slice of the paper's
// Figures 5 and 6.
package main

import (
	"flag"
	"fmt"
	"os"

	"branchsim"
)

func main() {
	benchmark := flag.String("benchmark", "twolf", "benchmark name")
	budget := flag.Int("budget", 64<<10, "hardware budget in bytes")
	insts := flag.Int64("insts", 4_000_000, "instructions to simulate")
	flag.Parse()

	bench, ok := branchsim.BenchmarkByName(*benchmark)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchmark)
		os.Exit(1)
	}

	fmt.Printf("%s @ %d KB budget, %d instructions\n\n", bench.Name, *budget>>10, *insts)
	fmt.Printf("%-16s %10s %12s\n", "predictor", "size", "mispredict")
	for _, kind := range branchsim.PredictorKinds() {
		if kind == "taken" || kind == "nottaken" {
			continue // static floors are not interesting here
		}
		pred, err := branchsim.NewPredictorByName(kind, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := branchsim.RunAccuracy(pred, branchsim.NewWorkload(bench), branchsim.AccuracyOptions{
			MaxInsts:    *insts,
			WarmupInsts: *insts / 4,
		})
		fmt.Printf("%-16s %9dB %11.2f%%\n", kind, pred.SizeBytes(), res.MispredictPercent())
	}
}
