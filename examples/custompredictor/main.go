// Custom predictor: implement the branchsim.Predictor interface from
// scratch and evaluate it against the library's predictors on the standard
// workloads. The example predictor is a tiny "agree"-style scheme: a
// per-branch bias bit (set on first encounter) plus a gshare-indexed table
// of 2-bit counters that predict whether the branch will *agree* with its
// bias — a classic aliasing-reduction trick.
package main

import (
	"fmt"

	"branchsim"
)

// AgreePredictor predicts agreement with a per-branch bias bit.
type AgreePredictor struct {
	agree   []uint8 // 2-bit counters, "agree with bias" semantics
	bias    map[uint64]bool
	history uint64
	mask    uint64
	bits    uint
}

// NewAgree returns an agree predictor with 2^bits counters.
func NewAgree(bits uint) *AgreePredictor {
	return &AgreePredictor{
		agree: make([]uint8, 1<<bits),
		bias:  make(map[uint64]bool),
		mask:  1<<bits - 1,
		bits:  bits,
	}
}

func (a *AgreePredictor) index(pc uint64) int {
	return int((a.history ^ (pc >> 2)) & a.mask)
}

// biasFor returns the branch's bias bit, fixing it at first encounter.
func (a *AgreePredictor) biasFor(pc uint64, taken bool) bool {
	b, ok := a.bias[pc]
	if !ok {
		a.bias[pc] = taken
		return taken
	}
	return b
}

// Predict implements branchsim.Predictor.
func (a *AgreePredictor) Predict(pc uint64) bool {
	b, ok := a.bias[pc]
	if !ok {
		return true // unseen branch: static taken
	}
	agree := a.agree[a.index(pc)] >= 2
	return agree == b
}

// Update implements branchsim.Predictor.
func (a *AgreePredictor) Update(pc uint64, taken bool) {
	bias := a.biasFor(pc, taken)
	i := a.index(pc)
	if taken == bias {
		if a.agree[i] < 3 {
			a.agree[i]++
		}
	} else if a.agree[i] > 0 {
		a.agree[i]--
	}
	a.history = (a.history<<1 | boolToU64(taken)) & (1<<a.bits - 1)
}

// SizeBytes implements branchsim.Predictor: 2 bits per counter plus one
// bias bit per static branch.
func (a *AgreePredictor) SizeBytes() int {
	return len(a.agree)*2/8 + (len(a.bias)+7)/8
}

// Name implements branchsim.Predictor.
func (a *AgreePredictor) Name() string {
	return fmt.Sprintf("agree-%dentries", len(a.agree))
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func main() {
	const insts = 2_000_000
	fmt.Printf("%-10s %18s %18s %18s\n", "benchmark", "agree(custom)", "gshare", "gshare.fast")
	for _, bench := range branchsim.Benchmarks() {
		var rates []float64
		for _, pred := range []branchsim.Predictor{
			NewAgree(16),
			branchsim.NewGShare(16 << 10),
			branchsim.NewGShareFast(16 << 10),
		} {
			res := branchsim.RunAccuracy(pred, branchsim.NewWorkload(bench), branchsim.AccuracyOptions{
				MaxInsts:    insts,
				WarmupInsts: insts / 4,
			})
			rates = append(rates, res.MispredictPercent())
		}
		fmt.Printf("%-10s %17.2f%% %17.2f%% %17.2f%%\n",
			bench.ShortName(), rates[0], rates[1], rates[2])
	}
}
