// Overriding penalty demo: the paper's central observation, reproduced in
// forty lines. A perceptron predictor behind an overriding organization
// gains accuracy as its budget grows — and loses IPC, because every
// quick/slow disagreement costs a bubble proportional to its access delay.
// gshare.fast, pipelined to a single cycle, keeps its IPC.
package main

import (
	"fmt"

	"branchsim"
)

func main() {
	bench, _ := branchsim.BenchmarkByName("parser")
	cfg := branchsim.DefaultMachine()
	const insts, warmup = 3_000_000, 750_000

	fmt.Printf("%s on the Table-1 machine (%d insts)\n\n", bench.Name, insts)
	fmt.Printf("%8s | %28s | %28s\n", "", "perceptron behind overriding", "gshare.fast (pipelined)")
	fmt.Printf("%8s | %6s %9s %10s | %9s %9s\n",
		"budget", "lat", "override", "IPC", "mispred", "IPC")

	for _, budget := range []int{16 << 10, 64 << 10, 256 << 10, 512 << 10} {
		// Complex predictor: quick 2K gshare overridden by a slow,
		// accurate perceptron with delay-model latency.
		slow := branchsim.NewPerceptron(budget)
		lat := branchsim.DefaultDelayModel.ForPredictor(slow)
		over := branchsim.NewOverriding(branchsim.NewGShare(512), slow, lat)
		overRes := branchsim.RunTiming(cfg, over, branchsim.NewWorkload(bench), insts, warmup)

		// The paper's alternative: pipeline the table instead.
		fast := branchsim.NewGShareFast(budget)
		fastRes := branchsim.RunTiming(cfg, fast, branchsim.NewWorkload(bench), insts, warmup)

		fmt.Printf("%7dK | %5dc %8.2f%% %10.3f | %8.2f%% %9.3f\n",
			budget>>10, lat, 100*overRes.OverrideRate, overRes.IPC(),
			fastRes.MispredictPercent(), fastRes.IPC())
	}
	fmt.Println("\nAs the budget grows, the overriding predictor's latency (lat) and")
	fmt.Println("override bubbles erase its accuracy advantage; gshare.fast does not pay them.")
}
