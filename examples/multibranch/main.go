// Multiple-branch prediction (§3.3.1): gshare.fast extended to predict
// several branches per cycle from one enlarged PHT buffer. All predictions
// in a block share the history as of the block's start; this example
// measures what that staleness costs and prints the paper's buffer-sizing
// rule (b·2^L entries).
package main

import (
	"fmt"

	"branchsim"
)

func main() {
	bench, _ := branchsim.BenchmarkByName("gcc")
	const budget = 64 << 10
	const insts = 4_000_000

	fmt.Printf("%s @ %dKB gshare.fast, %d insts\n\n", bench.Name, budget>>10, insts)
	fmt.Printf("%-12s %14s %16s %12s\n", "block width", "mispredict", "buffer entries", "state bytes")
	for _, width := range []int{1, 2, 4, 8, 16} {
		pred := branchsim.NewGShareFast(budget)
		res := branchsim.RunAccuracyBlocks(pred, pred.Name(), branchsim.NewWorkload(bench), branchsim.AccuracyOptions{
			MaxInsts:      insts,
			WarmupInsts:   insts / 4,
			FetchWidth:    8,
			BlockBranches: width,
		})
		fmt.Printf("b=%-10d %13.2f%% %16d %12d\n",
			width, res.MispredictPercent(),
			pred.BlockBufferEntries(width), pred.BlockSizeBytes(width))
	}
	fmt.Println("\nAccuracy degrades only gradually with block width: within-block")
	fmt.Println("histories are stale, the same compromise the EV8 predictor makes.")
}
