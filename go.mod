module branchsim

go 1.22
