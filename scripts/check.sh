#!/usr/bin/env bash
# check.sh is the repository's full verification gate, run locally and by
# CI (.github/workflows/ci.yml): build, formatting, go vet, the custom
# bplint static-analysis suite (internal/analysis), and race-enabled tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> bplint ./... (all ten analyzers, flow-aware suite included)"
go run ./cmd/bplint ./...

echo "==> replay equivalence (live vs recorded streams, race-enabled)"
go test -race -run 'TestReplayEquivalence|TestConcurrentReplay|TestClassifiedReplay' ./internal/tracestore

echo "==> branch fast-path equivalence (batched vs instruction-at-a-time, race-enabled)"
go test -race -run 'TestFastPathEquivalence' ./internal/funcsim
go test -race -run 'TestBranchIndexMatchesStream|TestCodecPreservesBranchIndex|TestConcurrentBranchCursors' ./internal/trace

echo "==> timing fast-path equivalence (batched/sidecar/memo vs instruction-at-a-time live-cache, race-enabled)"
go test -race -run 'TestTimingFastPathEquivalence|TestSidecarFallback|TestSlotRingWraparound' ./internal/pipeline
go test -race -run 'TestTimingMemoEquivalence|TestTimingMemoDeduplicates|TestTimingMemoConcurrentStress' ./internal/experiments
go test -race -run 'TestNextInstsMatchesStream|TestNextInstsInterleavesWithNext|TestNextInstsProtocolMixPanics' ./internal/trace

echo "==> batched-loop allocation bounds (no race: alloc counts need a plain build)"
go test -run 'TestBatchedRunAllocs' ./internal/funcsim
go test -run 'TestBatchedTimingRunAllocs' ./internal/pipeline

echo "==> go test -race ./..."
go test -race ./...

echo "All checks passed."
